(** Key universe: a bijection from dense indices to well-spread 64-bit keys.

    Workloads reason in indices (0, 1, 2, ...); stores see hashed keys.  The
    mapping never produces the reserved empty-slot key [0L]. *)

val key_of_index : int -> Kv_common.Types.key
(** Deterministic, collision-free for indices < 2^62, never [0L]. *)

val unique_stream : n:int -> (int -> Kv_common.Types.key)
(** [unique_stream ~n] is [fun i -> key_of_index i] with a bounds check, for
    load phases of [n] unique keys. *)
