lib/workload/rng.ml: Int64 Kv_common
