lib/workload/ycsb.mli: Kv_common
