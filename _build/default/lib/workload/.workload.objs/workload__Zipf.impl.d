lib/workload/zipf.ml: Float Int64 Kv_common Rng
