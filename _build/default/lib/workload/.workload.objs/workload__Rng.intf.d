lib/workload/rng.mli:
