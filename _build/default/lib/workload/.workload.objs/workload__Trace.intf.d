lib/workload/trace.mli: Kv_common
