lib/workload/keyspace.mli: Kv_common
