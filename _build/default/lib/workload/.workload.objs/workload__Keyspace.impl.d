lib/workload/keyspace.ml: Int64 Kv_common
