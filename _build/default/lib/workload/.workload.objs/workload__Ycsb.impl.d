lib/workload/ycsb.ml: Keyspace Kv_common Rng Zipf
