lib/workload/trace.ml: Array Fun Int64 Kv_common List Printf String
