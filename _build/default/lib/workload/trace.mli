(** Operation traces: record a workload once, replay it bit-identically
    against every store.

    The YCSB generators are deterministic given a seed, but traces decouple
    experiment runs from generator versions and allow externally produced
    workloads (one line per operation) to drive the stores. *)

type t

val of_ops : Kv_common.Types.op list -> t

val record : n:int -> gen:(unit -> Kv_common.Types.op) -> t
(** Capture [n] operations from a generator. *)

val length : t -> int
val get : t -> int -> Kv_common.Types.op
(** Raises [Invalid_argument] out of range. *)

val iter : t -> (Kv_common.Types.op -> unit) -> unit

val replayer : t -> unit -> Kv_common.Types.op option
(** A stateful generator yielding the trace once, then [None] — plugs into
    {!Harness.Runner.run}-style drivers. *)

(** {1 Persistence}

    Line format: [P <key> <vlen>] put, [G <key>] get, [D <key>] delete,
    [R <key> <vlen>] read-modify-write.  Keys in decimal (unsigned 64-bit). *)

val save : t -> string -> unit
val load : string -> t
(** Raises [Failure] on a malformed line. *)
