(** YCSB workload generator (Cooper et al., SoCC'10), Table 5 of the paper.

    Supported mixes (E is omitted, as in the paper — hashed-key stores do
    not support range scans):

    - [Load]: 100% put of unique keys
    - [A]: 50% get / 50% update, zipfian
    - [B]: 95% get / 5% update, zipfian
    - [C]: 100% get, zipfian
    - [D]: get most-recently-inserted keys ("latest" distribution, with 5%
      inserts extending the universe)
    - [F]: 50% get / 50% read-modify-write, zipfian *)

type mix = Load | A | B | C | D | F

val all : mix list
val name : mix -> string
val description : mix -> string

type t

val create :
  ?seed:int -> ?vlen:int -> mix:mix -> loaded:int -> unit -> t
(** A generator over a store pre-loaded with [loaded] unique keys (indices
    [0, loaded)).  [vlen] is the value size for writes (default 8, as in the
    paper's main experiments). *)

val next : t -> Kv_common.Types.op
(** Produce the next operation.  [Load] mode yields puts of fresh unique
    keys; other mixes choose existing keys per their distribution. *)

val inserted : t -> int
(** Total keys existing after the operations produced so far. *)
