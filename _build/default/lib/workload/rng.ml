type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  Kv_common.Hash.mix64 t.state

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Kv_common.Hash.to_int (next_int64 t) mod n

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L
