(** Deterministic splitmix64 pseudo-random generator.

    Every experiment seeds its own generator, so runs are reproducible
    bit-for-bit regardless of execution order. *)

type t

val create : seed:int -> t
val copy : t -> t

val next_int64 : t -> int64
val int : t -> int -> int
(** [int t n] uniform in [0, n). Requires [n > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
