let key_of_index i =
  let k = Kv_common.Hash.mix64 (Int64.of_int (i + 1)) in
  if Int64.equal k Kv_common.Types.empty_key then 1L else k

let unique_stream ~n =
  fun i ->
    if i < 0 || i >= n then invalid_arg "Keyspace.unique_stream";
    key_of_index i
