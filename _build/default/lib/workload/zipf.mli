(** Zipfian item chooser (Gray et al.'s method, as used by YCSB).

    Items are ranks [0, n); rank 0 is the most popular.  The generator
    supports growing [n] cheaply (incremental zeta update), which the
    YCSB D "latest" distribution needs as inserts arrive. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [theta] defaults to 0.99, the YCSB constant.  Requires [n >= 1]. *)

val n : t -> int

val grow : t -> int -> unit
(** Extend the item count (no-op if smaller than current). *)

val next : t -> Rng.t -> int
(** Sample a rank in [0, n). *)

val scrambled : t -> Rng.t -> universe:int -> int
(** YCSB's scrambled zipfian: spread the skewed ranks over [0, universe)
    via hashing, so popular keys are not clustered. *)
