type t = {
  theta : float;
  mutable nitems : int;
  mutable zetan : float;
  mutable alpha : float;
  mutable eta : float;
  zeta2 : float;
}

let zeta_range lo hi theta =
  let acc = ref 0.0 in
  for i = lo to hi do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let refresh t =
  t.alpha <- 1.0 /. (1.0 -. t.theta);
  t.eta <-
    (1.0 -. Float.pow (2.0 /. float_of_int t.nitems) (1.0 -. t.theta))
    /. (1.0 -. (t.zeta2 /. t.zetan))

let create ?(theta = 0.99) ~n () =
  if n < 1 then invalid_arg "Zipf.create";
  let t =
    { theta;
      nitems = n;
      zetan = zeta_range 1 n theta;
      alpha = 0.0;
      eta = 0.0;
      zeta2 = zeta_range 1 2 theta }
  in
  refresh t;
  t

let n t = t.nitems

let grow t n =
  if n > t.nitems then begin
    t.zetan <- t.zetan +. zeta_range (t.nitems + 1) n t.theta;
    t.nitems <- n;
    refresh t
  end

let next t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else begin
    let rank =
      float_of_int t.nitems
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let rank = int_of_float rank in
    if rank >= t.nitems then t.nitems - 1 else rank
  end

let scrambled t rng ~universe =
  let rank = next t rng in
  Kv_common.Hash.to_int (Kv_common.Hash.mix64 (Int64.of_int rank))
  mod universe
