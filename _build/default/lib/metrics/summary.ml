type t = {
  name : string;
  ops : int;
  sim_ns : float;
  latency : Histogram.t;
  pmem_write_bytes : float;
  pmem_read_bytes : float;
  user_bytes : float;
  dram_bytes : float;
}

let make ~name ~ops ~sim_ns ?latency ?(pmem_write_bytes = 0.0)
    ?(pmem_read_bytes = 0.0) ?(user_bytes = 0.0) ?(dram_bytes = 0.0) () =
  let latency = match latency with Some h -> h | None -> Histogram.create () in
  { name; ops; sim_ns; latency; pmem_write_bytes; pmem_read_bytes;
    user_bytes; dram_bytes }

let throughput_mops t =
  if t.sim_ns <= 0.0 then 0.0
  else float_of_int t.ops /. (t.sim_ns /. 1e9) /. 1e6

let write_amplification t =
  if t.user_bytes <= 0.0 then 0.0 else t.pmem_write_bytes /. t.user_bytes

let bandwidth_gbps bytes ns = if ns <= 0.0 then 0.0 else bytes /. ns
(* bytes/ns = GB/s *)

let pmem_write_gbps t = bandwidth_gbps t.pmem_write_bytes t.sim_ns
let pmem_read_gbps t = bandwidth_gbps t.pmem_read_bytes t.sim_ns

let pp_row ppf t =
  Format.fprintf ppf "%-18s %10.2f Mops/s  WA=%5.2f  %a"
    t.name (throughput_mops t) (write_amplification t)
    Histogram.pp_summary t.latency
