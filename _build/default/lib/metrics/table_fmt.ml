type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns =
  { title;
    headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [] }

let ncols t = List.length t.headers

let add_row t cells =
  let n = List.length cells in
  if n > ncols t then
    invalid_arg
      (Printf.sprintf "Table_fmt.add_row: %d cells for %d columns" n (ncols t));
  let cells =
    if n < ncols t then cells @ List.init (ncols t - n) (fun _ -> "")
    else cells
  in
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Rule -> ()
    | Cells cs ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
        cs
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = width - String.length s in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
  in
  let rule () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        if i < Array.length widths - 1 then Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cs =
    List.iteri
      (fun i c ->
        let a = List.nth t.aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_char buf ' ';
        if i < ncols t - 1 then Buffer.add_char buf '|')
      cs;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  emit_cells t.headers;
  rule ();
  List.iter (function Rule -> rule () | Cells cs -> emit_cells cs) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f v =
  if v = 0.0 then "0"
  else begin
    let a = Float.abs v in
    if a >= 1000.0 then Printf.sprintf "%.0f" v
    else if a >= 10.0 then Printf.sprintf "%.1f" v
    else if a >= 0.01 then Printf.sprintf "%.2f" v
    else Printf.sprintf "%.2e" v
  end

let cell_ns v =
  let a = Float.abs v in
  if a < 1e3 then Printf.sprintf "%.0fns" v
  else if a < 1e6 then Printf.sprintf "%.1fus" (v /. 1e3)
  else if a < 1e9 then Printf.sprintf "%.1fms" (v /. 1e6)
  else Printf.sprintf "%.2fs" (v /. 1e9)

let cell_bytes v =
  let a = Float.abs v in
  if a < 1024.0 then Printf.sprintf "%.0fB" v
  else if a < 1024.0 *. 1024.0 then Printf.sprintf "%.1fKB" (v /. 1024.0)
  else if a < 1024.0 *. 1024.0 *. 1024.0 then
    Printf.sprintf "%.1fMB" (v /. 1024.0 /. 1024.0)
  else Printf.sprintf "%.2fGB" (v /. 1024.0 /. 1024.0 /. 1024.0)
