(** Aggregated result of one benchmark run: operation counts, simulated
    duration, latency histogram and device-traffic totals.  Experiments build
    these and the table printers render them. *)

type t = {
  name : string;            (** store or configuration label *)
  ops : int;                (** operations completed *)
  sim_ns : float;           (** simulated wall-clock duration, ns *)
  latency : Histogram.t;    (** per-operation simulated latency *)
  pmem_write_bytes : float; (** media bytes written (incl. amplification) *)
  pmem_read_bytes : float;  (** bytes read from the device *)
  user_bytes : float;       (** logical bytes the workload asked to write *)
  dram_bytes : float;       (** resident DRAM footprint at end of run *)
}

val make :
  name:string -> ops:int -> sim_ns:float -> ?latency:Histogram.t ->
  ?pmem_write_bytes:float -> ?pmem_read_bytes:float -> ?user_bytes:float ->
  ?dram_bytes:float -> unit -> t

val throughput_mops : t -> float
(** Million operations per simulated second. *)

val write_amplification : t -> float
(** media bytes written / user bytes (0 when no user bytes). *)

val pmem_write_gbps : t -> float
(** Media write bandwidth achieved over the run, GB/s. *)

val pmem_read_gbps : t -> float

val pp_row : Format.formatter -> t -> unit
