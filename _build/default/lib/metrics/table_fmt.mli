(** Aligned ASCII table rendering for the benchmark harness.

    Every paper table/figure is printed as one of these, so the bench output
    reads like the paper's evaluation section. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] starts a table.  Each column is a header plus an
    alignment. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Rows shorter than the header are padded
    with empty cells; longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render the full table, with title, header, separators and aligned cells. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_f : float -> string
(** Format a float compactly (3 significant-ish digits). *)

val cell_ns : float -> string
(** Format a simulated-nanoseconds value with unit scaling (ns/us/ms/s). *)

val cell_bytes : float -> string
(** Format a byte count with unit scaling (B/KB/MB/GB). *)
