lib/metrics/table_fmt.mli:
