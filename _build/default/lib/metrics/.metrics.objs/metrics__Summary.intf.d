lib/metrics/summary.mli: Format Histogram
