lib/metrics/histogram.ml: Array Float Format List Stdlib
