lib/metrics/summary.ml: Format Histogram
