lib/baselines/dram_hash.mli: Kv_common Pmem_sim
