lib/baselines/novelsm.mli: Kv_common Pmem_sim
