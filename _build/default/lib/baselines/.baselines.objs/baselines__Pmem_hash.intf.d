lib/baselines/pmem_hash.mli: Kv_common Pmem_sim
