lib/baselines/novelsm.ml: Array Float Hashtbl Int64 Kv_common List Pmem_sim
