lib/baselines/dram_hash.ml: Int64 Kv_common Pmem_sim
