lib/baselines/matrixkv.ml: Array Hashtbl Int64 Kv_common List Pmem_sim
