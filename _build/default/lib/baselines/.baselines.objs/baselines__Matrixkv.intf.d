lib/baselines/matrixkv.mli: Kv_common Pmem_sim
