lib/baselines/pmem_lsm.ml: Array Chameleondb Float Hashtbl Int64 Kv_common List Pmem_sim
