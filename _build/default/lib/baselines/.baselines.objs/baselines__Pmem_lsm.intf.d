lib/baselines/pmem_lsm.mli: Chameleondb Kv_common Pmem_sim
