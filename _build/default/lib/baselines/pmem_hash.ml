module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Cceh = Kv_common.Cceh

type t = {
  dev : Device.t;
  vlog : Vlog.t;
  index : Cceh.t;
}

let create ?dev () =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  { dev; vlog = Vlog.create ~fenced:true dev; index = Cceh.create dev }

let put t clock key ~vlen =
  let loc = Vlog.append t.vlog clock key ~vlen in
  Cceh.put t.index clock key loc

let get t clock key =
  match Cceh.get t.index clock key with
  | Some loc when not (Types.is_tombstone loc) ->
    let k, _ = Vlog.read t.vlog clock loc in
    if Int64.equal k key then Some loc else None
  | Some _ | None -> None

let delete t clock key =
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  ignore (Cceh.delete t.index clock key)

let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog

let recover t clock =
  let t0 = Clock.now clock in
  Cceh.recover t.index clock;
  Clock.now clock -. t0

let cceh t = t.index

let handle t : Kv_common.Store_intf.handle =
  { name = "Pmem-Hash";
    put = (fun clock key ~vlen -> put t clock key ~vlen);
    get = (fun clock key -> get t clock key);
    delete = (fun clock key -> delete t clock key);
    flush = (fun clock -> Vlog.flush t.vlog clock);
    crash = (fun () -> crash t);
    recover = (fun clock -> ignore (recover t clock));
    dram_footprint =
      (fun () -> Cceh.dram_footprint t.index +. Vlog.dram_footprint t.vlog);
    device = t.dev;
    vlog = t.vlog }
