module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Robinhood = Kv_common.Robinhood

type t = {
  dev : Device.t;
  vlog : Vlog.t;
  mutable index : Robinhood.t;
}

let create ?dev () =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  { dev; vlog = Vlog.create dev; index = Robinhood.create () }

let put t clock key ~vlen =
  let loc = Vlog.append t.vlog clock key ~vlen in
  Robinhood.put t.index clock key loc

let get t clock key =
  match Robinhood.get t.index clock key with
  | Some loc when not (Types.is_tombstone loc) ->
    let k, _ = Vlog.read t.vlog clock loc in
    if Int64.equal k key then Some loc else None
  | Some _ | None -> None

let delete t clock key =
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  ignore (Robinhood.delete t.index clock key)

let count t = Robinhood.count t.index

let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  t.index <- Robinhood.create ()

let recover t clock =
  let t0 = Clock.now clock in
  Vlog.iter_range t.vlog clock ~lo:0 ~hi:(Vlog.persisted t.vlog)
    (fun loc key vlen ->
      if vlen < 0 then ignore (Robinhood.delete t.index clock key)
      else Robinhood.put t.index clock key loc);
  Clock.now clock -. t0

let handle t : Kv_common.Store_intf.handle =
  { name = "Dram-Hash";
    put = (fun clock key ~vlen -> put t clock key ~vlen);
    get = (fun clock key -> get t clock key);
    delete = (fun clock key -> delete t clock key);
    flush = (fun clock -> Vlog.flush t.vlog clock);
    crash = (fun () -> crash t);
    recover = (fun clock -> ignore (recover t clock));
    dram_footprint =
      (fun () ->
        Kv_common.Robinhood.footprint_bytes t.index
        +. Vlog.dram_footprint t.vlog);
    device = t.dev;
    vlog = t.vlog }
