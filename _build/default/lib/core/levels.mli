(** The persistent multi-level structure of one shard.

    Upper levels (L0 .. L(levels-2)) hold lists of immutable persistent
    tables, newest first; the last level is a single table.  Upper tables
    exist for fast recovery — gets bypass them through the ABI — but they
    are also the read source for the level-by-level compaction ablation and
    for degraded (post-restart) gets. *)

type t

val create : cfg:Config.t -> t

val upper : t -> Kv_common.Linear_table.t list array
(** Index 0 = L0 ... newest table first within a level. *)

val last : t -> Kv_common.Linear_table.t option

val set_last : t -> Kv_common.Linear_table.t option -> unit

val add_table : t -> level:int -> Kv_common.Linear_table.t -> unit
(** Prepend a table to an upper level. *)

val level_len : t -> int -> int

val l0_full : t -> bool
(** L0 holds [ratio] tables. *)

val clear_upper_range : t -> upto:int -> unit
(** Free and drop all tables in levels [0, upto] (inclusive). *)

val upper_tables_newest_first : t -> ?upto:int -> unit -> Kv_common.Linear_table.t list
(** All upper tables ordered newest to oldest (L0 head first), optionally
    only levels [0, upto]. *)

val upper_entry_count : t -> int

val table_slots : cfg:Config.t -> level:int -> int
(** Slot count of a level-[level] table: [ratio^level x memtable_slots]. *)

val pmem_bytes : t -> int
(** Total device bytes of all live tables (footprint reporting). *)
