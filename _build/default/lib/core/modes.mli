(** Execution-mode controllers.

    Write-Intensive Mode is a static configuration switch (handled in
    {!Shard}); the dynamic Get-Protect Mode (Section 2.4) lives here: a
    controller watches a sliding window of get latencies and raises
    [active] when the windowed p99 crosses the configured threshold,
    lowering it once the tail subsides below the threshold again. *)

module Gpm : sig
  type t

  val create : cfg:Config.t -> t

  val record_get : t -> float -> unit
  (** Feed one get latency (simulated ns); re-evaluates the window
      periodically. *)

  val active : t -> bool
  (** Whether compactions are currently suspended. *)

  val activations : t -> int
  (** Times the mode has switched on (for experiments). *)

  val current_p99 : t -> float
  (** Most recently evaluated windowed p99 (0 before the first window). *)
end
