module Flat_table = Kv_common.Flat_table
module Hash = Kv_common.Hash

type t = {
  cfg : Config.t;
  shard_id : int;
  mutable tbl : Flat_table.t;
  mutable flush_seq : int;
}

(* Deterministic per-(shard, flush) load factor in [lf_min, lf_max]. *)
let draw_lf cfg ~shard_id ~flush_seq =
  let h =
    Hash.mix64
      (Int64.of_int
         ((cfg.Config.seed * 1_000_003) + (shard_id * 8191) + flush_seq))
  in
  let frac = float_of_int (Hash.to_int h mod 10_000) /. 10_000.0 in
  cfg.Config.lf_min +. (frac *. (cfg.Config.lf_max -. cfg.Config.lf_min))

let make_table cfg ~shard_id ~flush_seq =
  Flat_table.create
    ~load_factor:(draw_lf cfg ~shard_id ~flush_seq)
    ~slots:cfg.Config.memtable_slots ()

let create ~cfg ~shard_id =
  { cfg; shard_id; tbl = make_table cfg ~shard_id ~flush_seq:0; flush_seq = 0 }

let table t = t.tbl
let put t clock key loc = Flat_table.put t.tbl clock key loc
let get t clock key = Flat_table.get t.tbl clock key
let is_full t = Flat_table.is_full t.tbl
let count t = Flat_table.count t.tbl

let has_room_for t n =
  float_of_int (Flat_table.count t.tbl + n)
  <= Flat_table.threshold t.tbl *. float_of_int (Flat_table.slots t.tbl)

let entries t =
  let acc = ref [] in
  Flat_table.iter t.tbl (fun k l -> acc := (k, l) :: !acc);
  !acc

let reset t =
  t.flush_seq <- t.flush_seq + 1;
  t.tbl <- make_table t.cfg ~shard_id:t.shard_id ~flush_seq:t.flush_seq

let load_factor_threshold t = Flat_table.threshold t.tbl
let footprint_bytes t = Flat_table.footprint_bytes t.tbl
