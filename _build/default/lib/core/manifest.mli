(** Persistent root metadata.

    The manifest records, per shard, which persistent tables exist and the
    log watermarks — a few dozen bytes appended and persisted on every
    structural change (flush, compaction, dump).  In the simulation the
    OCaml-side table handles {e are} the recovered metadata; this module
    charges the corresponding device traffic and tracks update counts. *)

type t

val create : Pmem_sim.Device.t -> t

val record_update : t -> Pmem_sim.Clock.t -> unit
(** One structural change: a small appended persist (64 B). *)

val updates : t -> int
val footprint_bytes : t -> float
