(** Per-shard MemTable: a fixed-size in-DRAM hash table whose full-threshold
    is re-randomized at every flush.

    The randomized load factor (Section 2.5) staggers flush — and therefore
    compaction — timings across shards, avoiding synchronized compaction
    bursts under uniformly distributed insertions. *)

type t

val create : cfg:Config.t -> shard_id:int -> t

val table : t -> Kv_common.Flat_table.t

val put :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc ->
  [ `Ok | `Full ]

val get :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc option

val is_full : t -> bool
val count : t -> int

val has_room_for : t -> int -> bool
(** Can [n] more distinct keys be inserted before the threshold? *)

val entries : t -> (Kv_common.Types.key * Kv_common.Types.loc) list
(** Snapshot, arbitrary order (all entries are the newest versions within
    this MemTable). *)

val reset : t -> unit
(** Clear after a flush and draw a fresh randomized load factor. *)

val load_factor_threshold : t -> float
val footprint_bytes : t -> float
