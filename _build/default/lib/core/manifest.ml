type t = { dev : Pmem_sim.Device.t; mutable nupdates : int }

let record_bytes = 64

let create dev = { dev; nupdates = 0 }

let record_update t clock =
  t.nupdates <- t.nupdates + 1;
  Pmem_sim.Device.charge_append t.dev clock ~len:record_bytes

let updates t = t.nupdates
let footprint_bytes t = float_of_int (t.nupdates * record_bytes)
