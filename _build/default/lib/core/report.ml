module Vlog = Kv_common.Vlog
module Linear_table = Kv_common.Linear_table

let pp ppf db =
  let cfg = Store.cfg db in
  let shards = Store.shards db in
  let nshards = Array.length shards in
  Format.fprintf ppf "ChameleonDB state@.";
  Format.fprintf ppf
    "  config: %d shards x %d-slot MemTables, %d levels, r=%d%s%s@."
    cfg.Config.shards cfg.Config.memtable_slots cfg.Config.levels
    cfg.Config.ratio
    (if cfg.Config.write_intensive then ", write-intensive" else "")
    (if cfg.Config.gpm_enabled then ", get-protect" else "");
  (* aggregate level occupancy *)
  let upper = Config.upper_levels cfg in
  let tables = Array.make upper 0 in
  let entries = Array.make upper 0 in
  let last_entries = ref 0 and last_bytes = ref 0 in
  let memtable_entries = ref 0 and abi_entries = ref 0 and dumps = ref 0 in
  Array.iter
    (fun shard ->
      let lv = Shard.levels shard in
      Array.iteri
        (fun k tbls ->
          tables.(k) <- tables.(k) + List.length tbls;
          entries.(k) <-
            entries.(k)
            + List.fold_left (fun a t -> a + Linear_table.count t) 0 tbls)
        (Levels.upper lv);
      (match Levels.last lv with
      | Some t ->
        last_entries := !last_entries + Linear_table.count t;
        last_bytes := !last_bytes + Linear_table.byte_size t
      | None -> ());
      memtable_entries := !memtable_entries + Shard.memtable_count shard;
      abi_entries := !abi_entries + Shard.abi_count shard;
      dumps := !dumps + Shard.dump_count shard)
    shards;
  Format.fprintf ppf "  memtables: %d entries (%d shards)@." !memtable_entries
    nshards;
  Format.fprintf ppf "  abi: %d entries (%.0f%% of capacity)%s@." !abi_entries
    (100.0
    *. float_of_int !abi_entries
    /. float_of_int
         (nshards * cfg.Config.abi_slots_factor * cfg.Config.memtable_slots))
    (if cfg.Config.abi_enabled then "" else " [disabled]");
  Array.iteri
    (fun k n ->
      Format.fprintf ppf "  L%d: %d tables, %d entries@." k n entries.(k))
    tables;
  Format.fprintf ppf "  last level: %d entries, %s@." !last_entries
    (Metrics.Table_fmt.cell_bytes (float_of_int !last_bytes));
  if !dumps > 0 then
    Format.fprintf ppf "  gpm dumps pending merge: %d@." !dumps;
  let t = Store.totals db in
  Format.fprintf ppf
    "  ops: %d flushes, %d tiered + %d last-level compactions, %d absorbs, \
     %d dumps, %s stalled@."
    t.Store.flushes t.Store.upper_compactions t.Store.last_compactions
    t.Store.absorbs t.Store.abi_dumps
    (Metrics.Table_fmt.cell_ns t.Store.stall_ns);
  let vlog = Store.vlog db in
  Format.fprintf ppf "  log: %d entries (head %d, persisted %d), %s live@."
    (Vlog.length vlog) (Vlog.head vlog) (Vlog.persisted vlog)
    (Metrics.Table_fmt.cell_bytes (float_of_int (Vlog.live_bytes vlog)));
  Format.fprintf ppf "  footprints: DRAM %s, Pmem %s@."
    (Metrics.Table_fmt.cell_bytes (Store.dram_footprint db))
    (Metrics.Table_fmt.cell_bytes (Store.pmem_footprint db));
  Format.fprintf ppf "  device: %a@." Pmem_sim.Stats.pp
    (Pmem_sim.Device.stats (Store.device db))

let to_string db = Format.asprintf "%a" pp db
