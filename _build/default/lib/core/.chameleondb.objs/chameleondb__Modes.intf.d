lib/core/modes.mli: Config
