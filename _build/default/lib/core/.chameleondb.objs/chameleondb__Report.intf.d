lib/core/report.mli: Format Store
