lib/core/manifest.mli: Pmem_sim
