lib/core/config.mli:
