lib/core/memtable.ml: Config Int64 Kv_common
