lib/core/shard.mli: Config Kv_common Levels Manifest Pmem_sim
