lib/core/manifest.ml: Pmem_sim
