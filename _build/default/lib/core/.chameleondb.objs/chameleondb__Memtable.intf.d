lib/core/memtable.mli: Config Kv_common Pmem_sim
