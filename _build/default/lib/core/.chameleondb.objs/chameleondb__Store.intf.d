lib/core/store.mli: Config Kv_common Modes Pmem_sim Shard
