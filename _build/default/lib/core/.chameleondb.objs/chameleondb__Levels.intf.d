lib/core/levels.mli: Config Kv_common
