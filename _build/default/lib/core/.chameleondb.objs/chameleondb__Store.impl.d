lib/core/store.ml: Array Config Hashtbl Int64 Kv_common Manifest Modes Pmem_sim Printf Shard
