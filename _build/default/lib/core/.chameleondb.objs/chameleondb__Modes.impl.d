lib/core/modes.ml: Array Config
