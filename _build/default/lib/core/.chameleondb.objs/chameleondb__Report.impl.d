lib/core/report.ml: Array Config Format Kv_common Levels List Metrics Pmem_sim Shard Store
