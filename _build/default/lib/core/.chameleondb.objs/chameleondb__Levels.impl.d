lib/core/levels.ml: Array Config Kv_common List
