lib/core/shard.ml: Array Config Float Hashtbl Kv_common Levels List Manifest Memtable Pmem_sim Printf
