module Linear_table = Kv_common.Linear_table

type t = {
  cfg : Config.t;
  upper : Linear_table.t list array; (* newest first *)
  mutable last : Linear_table.t option;
}

let create ~cfg =
  { cfg; upper = Array.make (Config.upper_levels cfg) []; last = None }

let upper t = t.upper
let last t = t.last
let set_last t table = t.last <- table

let add_table t ~level table =
  t.upper.(level) <- table :: t.upper.(level)

let level_len t k = List.length t.upper.(k)
let l0_full t = level_len t 0 >= t.cfg.Config.ratio

let clear_upper_range t ~upto =
  for k = 0 to upto do
    List.iter Linear_table.free t.upper.(k);
    t.upper.(k) <- []
  done

let upper_tables_newest_first t ?upto () =
  let upto =
    match upto with Some u -> u | None -> Array.length t.upper - 1
  in
  let acc = ref [] in
  for k = upto downto 0 do
    (* prepend level k so that shallower (newer) levels end up first *)
    acc := t.upper.(k) @ !acc
  done;
  !acc

let upper_entry_count t =
  Array.fold_left
    (fun acc tables ->
      List.fold_left (fun a tbl -> a + Linear_table.count tbl) acc tables)
    0 t.upper

let rec pow base = function 0 -> 1 | n -> base * pow base (n - 1)

let table_slots ~cfg ~level =
  pow cfg.Config.ratio level * cfg.Config.memtable_slots

let pmem_bytes t =
  let upper_bytes =
    Array.fold_left
      (fun acc tables ->
        List.fold_left (fun a tbl -> a + Linear_table.byte_size tbl) acc tables)
      0 t.upper
  in
  upper_bytes
  + (match t.last with Some tbl -> Linear_table.byte_size tbl | None -> 0)
