(** Human-readable store state report: structure occupancy, operation
    counters, log and device statistics.  For operators and debugging
    (`ckv inspect` prints one). *)

val pp : Format.formatter -> Store.t -> unit

val to_string : Store.t -> string
