lib/harness/stores.mli: Chameleondb Kv_common Runner
