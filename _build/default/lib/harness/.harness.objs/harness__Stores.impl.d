lib/harness/stores.ml: Baselines Chameleondb Float Kv_common List Pmem_sim Runner Workload
