lib/harness/runner.ml: Array Float Kv_common Metrics Pmem_sim
