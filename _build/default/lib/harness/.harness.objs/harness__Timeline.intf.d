lib/harness/timeline.mli: Kv_common
