lib/harness/runner.mli: Kv_common Metrics Pmem_sim
