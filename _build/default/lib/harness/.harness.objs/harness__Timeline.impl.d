lib/harness/timeline.ml: Array Hashtbl Kv_common List Metrics Pmem_sim
