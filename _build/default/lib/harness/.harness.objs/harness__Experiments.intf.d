lib/harness/experiments.mli: Stores
