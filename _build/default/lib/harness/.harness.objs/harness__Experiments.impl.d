lib/harness/experiments.ml: Array Baselines Chameleondb Float Format Hashtbl Kv_common List Metrics Option Pmem_sim Printf Runner Stores Timeline Workload
