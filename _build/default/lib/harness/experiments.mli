(** One experiment per table and figure of the paper's evaluation, plus
    ablations.  Each experiment builds fresh stores, drives them through the
    discrete-event runner and prints the same rows/series the paper reports
    (see DESIGN.md section 4 for the index and EXPERIMENTS.md for measured
    results). *)

type exp = {
  id : string;          (** e.g. "fig10" *)
  title : string;
  run : Stores.scale -> unit;
}

val all : exp list

val ids : unit -> string list

val run_ids : scale:Stores.scale -> string list -> unit
(** Run the experiments with the given ids in registry order; raises
    [Invalid_argument] on an unknown id. *)
