lib/kv/skiplist.ml: Array Hash Int64 Pmem_sim
