lib/kv/cceh.mli: Pmem_sim Types
