lib/kv/flat_table.ml: Array Hash Int64 Pmem_sim Types
