lib/kv/merge.mli: Types
