lib/kv/bloom.ml: Bytes Char Hash Int64 Pmem_sim
