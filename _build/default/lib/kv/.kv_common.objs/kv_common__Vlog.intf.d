lib/kv/vlog.mli: Pmem_sim Types
