lib/kv/flat_table.mli: Pmem_sim Types
