lib/kv/vlog.ml: Array Bigarray Bytes Hashtbl Int64 Pmem_sim
