lib/kv/hash.ml: Int64
