lib/kv/store_intf.ml: Pmem_sim Types Vlog
