lib/kv/robinhood.ml: Array Hash Int64 Pmem_sim Types
