lib/kv/cceh.ml: Array Bytes Hash Int64 Pmem_sim Types
