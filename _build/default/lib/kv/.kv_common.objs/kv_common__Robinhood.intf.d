lib/kv/robinhood.mli: Pmem_sim Types
