lib/kv/store_intf.mli: Pmem_sim Types Vlog
