lib/kv/types.mli: Format
