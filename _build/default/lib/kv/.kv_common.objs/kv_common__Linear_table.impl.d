lib/kv/linear_table.ml: Array Bytes Hash Int64 List Pmem_sim Types
