lib/kv/skiplist.mli: Pmem_sim Types
