lib/kv/hash.mli:
