lib/kv/merge.ml: Hashtbl List Types
