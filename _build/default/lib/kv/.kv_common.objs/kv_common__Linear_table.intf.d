lib/kv/linear_table.mli: Pmem_sim Types
