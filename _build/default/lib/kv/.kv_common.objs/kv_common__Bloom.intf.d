lib/kv/bloom.mli: Pmem_sim Types
