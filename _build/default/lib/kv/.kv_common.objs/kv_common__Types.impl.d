lib/kv/types.ml: Format
