(** 64-bit hashing utilities (splitmix64 finalizer).

    All index structures hash keys through {!mix64} so that sequential or
    skewed key patterns spread uniformly over shards and slots, as the
    paper's hashed-key placement requires. *)

val mix64 : int64 -> int64
(** Bijective avalanche mixer (splitmix64 finalizer). *)

val to_int : int64 -> int
(** Non-negative OCaml int from a hash (drops the sign bit). *)

val slot_of : hash:int64 -> slots:int -> int
(** Slot index in [0, slots) taken from the low bits of [hash]. *)

val shard_of : hash:int64 -> shards:int -> int
(** Shard index in [0, shards) taken from the {e high} bits of [hash], so the
    bits used for shard routing and in-table slots are independent. *)
