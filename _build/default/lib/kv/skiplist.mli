(** Skiplist whose nodes live on the persistent device — NoveLSM's mutable
    in-Pmem MemTable.

    Every traversal hop is a random Pmem read and every insert persists a
    small node in place, so the structure exhibits exactly the two costs the
    paper attributes to NoveLSM: random Pmem reads on the get path and
    sub-256 B writes (hence write amplification) on the put path. *)

type t

val create : Pmem_sim.Device.t -> t

val count : t -> int

val put : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc -> unit
val get : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc option

val iter : t -> (Types.key -> Types.loc -> unit) -> unit
(** In ascending key order, without cost charging (the caller charges the
    bulk read when flushing the MemTable). *)

val clear : t -> unit
(** Drop all nodes (after a flush) and release their device accounting. *)

val byte_size : t -> int
(** Device bytes occupied by the nodes. *)
