(** Growable in-DRAM robin-hood hash table — the index of the Dram-Hash
    baseline (the paper uses the martinus/robin-hood-hashing C++ library).

    Robin-hood insertion steals slots from richer entries, keeping probe
    sequences short; deletion uses backward shifting.  The table doubles and
    rehashes at 80% load — that rehash is charged, in full, to the clock of
    the operation that triggered it, reproducing Dram-Hash's multi-second
    worst-case put latency (Table 2). *)

type t

val create : ?initial_slots:int -> unit -> t

val count : t -> int
val capacity : t -> int

val put : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc -> unit
val get : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc option
val delete : t -> Pmem_sim.Clock.t -> Types.key -> bool
(** [true] if the key was present. *)

val iter : t -> (Types.key -> Types.loc -> unit) -> unit
val clear : t -> unit

val footprint_bytes : t -> float
val rehash_count : t -> int
(** Number of doublings performed (tests / latency attribution). *)
