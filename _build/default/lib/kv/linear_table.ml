module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model

type t = {
  dev : Device.t;
  off : int;
  nslots : int;
  mutable live : int;
  mutable tag : int;
}

let slot_off t i = t.off + (i * Types.slot_bytes)

let build dev clock ~slots entries =
  if slots <= 0 then invalid_arg "Linear_table.build";
  let keys = Array.make slots Types.empty_key in
  let locs = Array.make slots 0 in
  let live = ref 0 in
  let insert (key, loc) =
    assert (not (Int64.equal key Types.empty_key));
    let h = Hash.mix64 key in
    let rec probe i =
      if Int64.equal keys.(i) key then locs.(i) <- loc
      else if Int64.equal keys.(i) Types.empty_key then begin
        keys.(i) <- key;
        locs.(i) <- loc;
        incr live
      end
      else probe ((i + 1) mod slots)
    in
    if !live >= slots then invalid_arg "Linear_table.build: overfull";
    Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
    probe (Hash.slot_of ~hash:h ~slots)
  in
  List.iter insert entries;
  let bytes = Bytes.create (slots * Types.slot_bytes) in
  for i = 0 to slots - 1 do
    Bytes.set_int64_le bytes (i * Types.slot_bytes) keys.(i);
    Bytes.set_int64_le bytes ((i * Types.slot_bytes) + 8)
      (Int64.of_int locs.(i))
  done;
  let off = Device.alloc dev (slots * Types.slot_bytes) in
  Device.write_bytes dev clock ~off bytes;
  Device.persist dev clock ~off ~len:(slots * Types.slot_bytes);
  { dev; off; nslots = slots; live = !live; tag = 0 }

let slots t = t.nslots
let count t = t.live
let tag t = t.tag
let set_tag t v = t.tag <- v
let byte_size t = t.nslots * Types.slot_bytes

let get t clock key =
  let h = Hash.mix64 key in
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  let start = Hash.slot_of ~hash:h ~slots:t.nslots in
  let rec probe i prev_line =
    let off = slot_off t i in
    let line = off / unit in
    let hint : Device.read_hint =
      if prev_line = line then Adjacent else Random
    in
    let k = Device.read_u64 t.dev clock ~off ~hint in
    if Int64.equal k key then begin
      let loc = Device.read_u64 t.dev clock ~off:(off + 8) ~hint:Adjacent in
      Some (Int64.to_int loc)
    end
    else if Int64.equal k Types.empty_key then None
    else probe ((i + 1) mod t.nslots) line
  in
  probe start (-1)

let iter t clock f =
  let len = t.nslots * Types.slot_bytes in
  let bytes = Device.read_bytes t.dev clock ~off:t.off ~len ~hint:Bulk in
  for i = 0 to t.nslots - 1 do
    let k = Bytes.get_int64_le bytes (i * Types.slot_bytes) in
    if not (Int64.equal k Types.empty_key) then begin
      let loc = Int64.to_int (Bytes.get_int64_le bytes ((i * Types.slot_bytes) + 8)) in
      f k loc
    end
  done

let free t = Device.dealloc t.dev ~off:t.off ~len:(byte_size t)

(* Silent accessors: no device-cost charging.  Used by stores that keep a
   DRAM copy of a table (Pmem-LSM-PinK) and charge DRAM costs themselves.
   [get_silent] also reports the probe count so callers can price the walk. *)

let get_silent t key =
  let h = Hash.mix64 key in
  let start = Hash.slot_of ~hash:h ~slots:t.nslots in
  let rec probe i steps =
    let off = slot_off t i in
    let k = Device.peek_u64 t.dev ~off in
    if Int64.equal k key then begin
      let loc = Device.peek_u64 t.dev ~off:(off + 8) in
      (Some (Int64.to_int loc), steps + 1)
    end
    else if Int64.equal k Types.empty_key then (None, steps + 1)
    else probe ((i + 1) mod t.nslots) (steps + 1)
  in
  probe start 0

let iter_silent t f =
  for i = 0 to t.nslots - 1 do
    let off = slot_off t i in
    let k = Device.peek_u64 t.dev ~off in
    if not (Int64.equal k Types.empty_key) then begin
      let loc = Int64.to_int (Device.peek_u64 t.dev ~off:(off + 8)) in
      f k loc
    end
  done
