type handle = {
  name : string;
  put : Pmem_sim.Clock.t -> Types.key -> vlen:int -> unit;
  get : Pmem_sim.Clock.t -> Types.key -> Types.loc option;
  delete : Pmem_sim.Clock.t -> Types.key -> unit;
  flush : Pmem_sim.Clock.t -> unit;
  crash : unit -> unit;
  recover : Pmem_sim.Clock.t -> unit;
  dram_footprint : unit -> float;
  device : Pmem_sim.Device.t;
  vlog : Vlog.t;
}

let apply h clock (op : Types.op) =
  match op with
  | Types.Put (k, vlen) -> h.put clock k ~vlen
  | Types.Get k -> ignore (h.get clock k)
  | Types.Delete k -> h.delete clock k
  | Types.Read_modify_write (k, vlen) ->
    ignore (h.get clock k);
    h.put clock k ~vlen
