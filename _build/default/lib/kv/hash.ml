let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let to_int h = Int64.to_int h land max_int

let slot_of ~hash ~slots = to_int hash mod slots

let shard_of ~hash ~shards =
  (* take high bits: shift so that the slot bits (low) are not reused *)
  Int64.to_int (Int64.shift_right_logical hash 40) mod shards
