(** Newest-first compaction merge.

    Every LSM-style store in this repository compacts by visiting sources in
    recency order and keeping the first (newest) binding of each key.  This
    is that dedup step, shared so its semantics — including tombstone
    handling at the bottom of the tree — stay identical everywhere. *)

type source = (Types.key -> Types.loc -> unit) -> unit
(** A source is an iterator over its entries (e.g. a table's [iter],
    partially applied).  Sources are consumed newest first. *)

val of_list : (Types.key * Types.loc) list -> source

val newest_first :
  ?drop_tombstones:bool ->
  ?on_entry:(unit -> unit) ->
  source list ->
  (Types.key * Types.loc) list
(** [newest_first sources] merges, keeping the newest binding per key.
    [drop_tombstones] (default false) discards deletion markers — only
    correct when merging into the bottom of the tree, where nothing older
    can be masked.  [on_entry] is invoked once per visited entry (cost
    charging).  Order of the result is unspecified. *)
