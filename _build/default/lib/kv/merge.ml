type source = (Types.key -> Types.loc -> unit) -> unit

let of_list entries f = List.iter (fun (k, l) -> f k l) entries

let newest_first ?(drop_tombstones = false) ?(on_entry = fun () -> ()) sources
    =
  let seen = Hashtbl.create 1024 in
  let acc = ref [] in
  let visit key loc =
    on_entry ();
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if not (drop_tombstones && Types.is_tombstone loc) then
        acc := (key, loc) :: !acc
    end
  in
  List.iter (fun source -> source visit) sources;
  !acc
