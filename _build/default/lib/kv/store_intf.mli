(** Uniform store handle used by the experiment harness.

    Each store design (ChameleonDB and the five baselines) wraps itself in a
    [handle]; the harness drives handles without knowing the design.  All
    operations charge simulated time to the supplied clock.  [get] includes
    reading the value payload from the log on a hit, as a real get must. *)

type handle = {
  name : string;
  put : Pmem_sim.Clock.t -> Types.key -> vlen:int -> unit;
  get : Pmem_sim.Clock.t -> Types.key -> Types.loc option;
      (** [None] for absent or deleted keys. *)
  delete : Pmem_sim.Clock.t -> Types.key -> unit;
  flush : Pmem_sim.Clock.t -> unit;
      (** Push buffered state (log batch, MemTables) to the device. *)
  crash : unit -> unit;
      (** Simulate power failure: volatile state is lost. *)
  recover : Pmem_sim.Clock.t -> unit;
      (** Rebuild to service-ready; the clock advance is the restart time. *)
  dram_footprint : unit -> float;  (** resident DRAM bytes *)
  device : Pmem_sim.Device.t;
  vlog : Vlog.t;
}

val apply : handle -> Pmem_sim.Clock.t -> Types.op -> unit
(** Run one workload operation against a handle (RMW = get then put). *)
