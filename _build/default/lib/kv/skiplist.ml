module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model

let max_level = 16

type node = {
  key : int64;
  mutable loc : int;
  forward : node option array; (* length = node level *)
}

type t = {
  dev : Device.t;
  head : node; (* sentinel with max_level forwards *)
  mutable level : int;
  mutable n : int;
  mutable bytes : int;
}

let node_bytes levels = 16 + (8 * levels)

let create dev =
  { dev;
    head =
      { key = Int64.min_int; loc = 0; forward = Array.make max_level None };
    level = 1;
    n = 0;
    bytes = 0 }

let count t = t.n

(* Deterministic tower height from the key hash: geometric(1/2). *)
let level_of key =
  let h = Hash.to_int (Hash.mix64 (Int64.add key 0x5851f42d4c957f2dL)) in
  let rec go lvl bits =
    if lvl >= max_level || bits land 1 = 0 then lvl
    else go (lvl + 1) (bits lsr 1)
  in
  go 1 h

let charge_hop t clock =
  Device.charge_read_bytes t.dev clock ~len:16 ~hint:Random;
  Clock.advance clock Cost_model.skiplist_probe_ns

(* Walk down from the top level, recording the rightmost node < key at each
   level.  Charges one device hop per node visited. *)
let find_predecessors t clock key =
  let update = Array.make max_level t.head in
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(lvl) with
      | Some nxt when Int64.compare nxt.key key < 0 ->
        charge_hop t clock;
        x := nxt
      | _ -> continue := false
    done;
    update.(lvl) <- !x
  done;
  update

let put t clock key loc =
  let update = find_predecessors t clock key in
  match update.(0).forward.(0) with
  | Some nxt when Int64.equal nxt.key key ->
    nxt.loc <- loc;
    (* in-place 8 B update, persisted: one RMW media write *)
    Device.charge_write_random t.dev clock ~len:8
  | _ ->
    let lvl = level_of key in
    if lvl > t.level then begin
      for l = t.level to lvl - 1 do
        update.(l) <- t.head
      done;
      t.level <- lvl
    end;
    let node = { key; loc; forward = Array.make lvl None } in
    for l = 0 to lvl - 1 do
      node.forward.(l) <- update.(l).forward.(l);
      update.(l).forward.(l) <- Some node
    done;
    t.n <- t.n + 1;
    t.bytes <- t.bytes + node_bytes lvl;
    (* persist the new node, then the predecessor pointer updates: each is a
       small random Pmem write *)
    Device.charge_write_random t.dev clock ~len:(node_bytes lvl);
    Device.charge_write_random t.dev clock ~len:8

let get t clock key =
  let x = ref t.head in
  let found = ref None in
  for lvl = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !x.forward.(lvl) with
      | Some nxt when Int64.compare nxt.key key < 0 ->
        charge_hop t clock;
        x := nxt
      | _ -> continue := false
    done
  done;
  (match !x.forward.(0) with
  | Some nxt when Int64.equal nxt.key key ->
    charge_hop t clock;
    found := Some nxt.loc
  | _ -> ());
  !found

let iter t f =
  let rec go = function
    | None -> ()
    | Some node ->
      f node.key node.loc;
      go node.forward.(0)
  in
  go t.head.forward.(0)

let clear t =
  Array.fill t.head.forward 0 max_level None;
  t.level <- 1;
  t.n <- 0;
  t.bytes <- 0

let byte_size t = t.bytes
