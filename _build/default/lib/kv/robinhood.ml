module Clock = Pmem_sim.Clock
module Cost_model = Pmem_sim.Cost_model

type t = {
  mutable keys : int64 array;
  mutable locs : int array;
  mutable cap : int;
  mutable n : int;
  mutable rehashes : int;
}

let max_load = 0.80

let create ?(initial_slots = 64) () =
  { keys = Array.make initial_slots Types.empty_key;
    locs = Array.make initial_slots 0;
    cap = initial_slots;
    n = 0;
    rehashes = 0 }

let count t = t.n
let capacity t = t.cap
let home t key = Hash.slot_of ~hash:(Hash.mix64 key) ~slots:t.cap

(* Probe-sequence length of the entry currently in slot [i]. *)
let psl_of t i =
  let h = home t t.keys.(i) in
  (i - h + t.cap) mod t.cap

let insert_raw t key loc =
  let rec place key loc i psl =
    if Int64.equal t.keys.(i) Types.empty_key then begin
      t.keys.(i) <- key;
      t.locs.(i) <- loc;
      t.n <- t.n + 1
    end
    else if Int64.equal t.keys.(i) key then t.locs.(i) <- loc
    else if psl_of t i < psl then begin
      (* rob the rich: swap and keep placing the displaced entry *)
      let k' = t.keys.(i) and l' = t.locs.(i) in
      let psl' = psl_of t i in
      t.keys.(i) <- key;
      t.locs.(i) <- loc;
      place k' l' ((i + 1) mod t.cap) (psl' + 1)
    end
    else place key loc ((i + 1) mod t.cap) (psl + 1)
  in
  place key loc (home t key) 0

let grow t clock =
  let old_keys = t.keys and old_locs = t.locs and old_cap = t.cap in
  t.cap <- t.cap * 2;
  t.keys <- Array.make t.cap Types.empty_key;
  t.locs <- Array.make t.cap 0;
  t.n <- 0;
  t.rehashes <- t.rehashes + 1;
  for i = 0 to old_cap - 1 do
    if not (Int64.equal old_keys.(i) Types.empty_key) then
      insert_raw t old_keys.(i) old_locs.(i)
  done;
  (* The whole rehash stalls the inserting operation; the scan itself is
     sequential and cache-friendly. *)
  Clock.advance clock (float_of_int old_cap *. Cost_model.rehash_per_key_ns)

let put t clock key loc =
  assert (not (Int64.equal key Types.empty_key));
  if float_of_int (t.n + 1) >= (max_load *. float_of_int t.cap) then
    grow t clock;
  (* charge the probe walk *)
  let rec charge i first =
    Clock.advance clock
      (if first then Cost_model.dram_read_ns else Cost_model.dram_hit_ns);
    if
      (not (Int64.equal t.keys.(i) Types.empty_key))
      && not (Int64.equal t.keys.(i) key)
    then charge ((i + 1) mod t.cap) false
  in
  charge (home t key) true;
  insert_raw t key loc

let get t clock key =
  let rec probe i psl first =
    Clock.advance clock
      (if first then Cost_model.dram_read_ns else Cost_model.dram_hit_ns);
    if Int64.equal t.keys.(i) key then Some t.locs.(i)
    else if Int64.equal t.keys.(i) Types.empty_key then None
    else if psl_of t i < psl then None (* robin-hood early termination *)
    else probe ((i + 1) mod t.cap) (psl + 1) false
  in
  probe (home t key) 0 true

let delete t clock key =
  let rec find i psl =
    if Int64.equal t.keys.(i) key then Some i
    else if Int64.equal t.keys.(i) Types.empty_key then None
    else if psl_of t i < psl then None
    else find ((i + 1) mod t.cap) (psl + 1)
  in
  Clock.advance clock Cost_model.dram_read_ns;
  match find (home t key) 0 with
  | None -> false
  | Some i ->
    (* backward-shift deletion: pull successors left while they are
       displaced from their home slot *)
    let rec shift i =
      let j = (i + 1) mod t.cap in
      if
        Int64.equal t.keys.(j) Types.empty_key
        || psl_of t j = 0
      then t.keys.(i) <- Types.empty_key
      else begin
        Clock.advance clock Cost_model.dram_hit_ns;
        t.keys.(i) <- t.keys.(j);
        t.locs.(i) <- t.locs.(j);
        shift j
      end
    in
    shift i;
    t.n <- t.n - 1;
    true

let iter t f =
  for i = 0 to t.cap - 1 do
    if not (Int64.equal t.keys.(i) Types.empty_key) then f t.keys.(i) t.locs.(i)
  done

let clear t =
  Array.fill t.keys 0 t.cap Types.empty_key;
  t.n <- 0

let footprint_bytes t = float_of_int (t.cap * Types.slot_bytes)
let rehash_count t = t.rehashes
