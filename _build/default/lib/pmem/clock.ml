type t = { mutable now : float }

let create ?(at = 0.0) () = { now = at }
let now c = c.now

let advance c ns =
  assert (ns >= 0.0);
  c.now <- c.now +. ns

let wait_until c deadline =
  if deadline > c.now then begin
    let stall = deadline -. c.now in
    c.now <- deadline;
    stall
  end
  else 0.0

let set c t = c.now <- t
let copy c = { now = c.now }
