lib/pmem/clock.ml:
