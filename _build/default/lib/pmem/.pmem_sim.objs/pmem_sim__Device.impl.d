lib/pmem/device.ml: Bytes Clock Cost_model Float List Stats
