lib/pmem/clock.mli:
