lib/pmem/device.mli: Clock Cost_model Stats
