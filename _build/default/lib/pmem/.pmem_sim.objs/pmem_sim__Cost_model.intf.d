lib/pmem/cost_model.mli:
