lib/pmem/cost_model.ml: Array Float
