(** Traffic counters for a simulated device.

    [media_write_bytes] counts bytes actually written to the media, including
    the 256 B-unit read-modify-write amplification; [user_write_bytes] counts
    the bytes the caller asked to persist.  Their ratio is the paper's device-
    level write amplification. *)

type t = {
  mutable user_write_bytes : float;
  mutable media_write_bytes : float;
  mutable media_read_bytes : float;
  mutable rmw_read_bytes : float;  (** reads induced by sub-unit writes *)
  mutable read_ops : int;
  mutable write_ops : int;
  mutable persist_ops : int;
  mutable live_bytes : float;      (** allocated minus deallocated *)
  mutable write_wait_ns : float;   (** time spent queued on the write server *)
  mutable read_wait_ns : float;
}

val create : unit -> t
val copy : t -> t

val diff : after:t -> before:t -> t
(** Counter deltas between two snapshots (live_bytes is taken from [after]). *)

val write_amplification : t -> float
(** media / user write bytes; 0 when nothing was written. *)

val pp : Format.formatter -> t -> unit
