type t = {
  mutable user_write_bytes : float;
  mutable media_write_bytes : float;
  mutable media_read_bytes : float;
  mutable rmw_read_bytes : float;
  mutable read_ops : int;
  mutable write_ops : int;
  mutable persist_ops : int;
  mutable live_bytes : float;
  mutable write_wait_ns : float;
  mutable read_wait_ns : float;
}

let create () =
  { user_write_bytes = 0.0;
    media_write_bytes = 0.0;
    media_read_bytes = 0.0;
    rmw_read_bytes = 0.0;
    read_ops = 0;
    write_ops = 0;
    persist_ops = 0;
    live_bytes = 0.0;
    write_wait_ns = 0.0;
    read_wait_ns = 0.0 }

let copy t = { t with user_write_bytes = t.user_write_bytes }

let diff ~after ~before =
  { user_write_bytes = after.user_write_bytes -. before.user_write_bytes;
    media_write_bytes = after.media_write_bytes -. before.media_write_bytes;
    media_read_bytes = after.media_read_bytes -. before.media_read_bytes;
    rmw_read_bytes = after.rmw_read_bytes -. before.rmw_read_bytes;
    read_ops = after.read_ops - before.read_ops;
    write_ops = after.write_ops - before.write_ops;
    persist_ops = after.persist_ops - before.persist_ops;
    live_bytes = after.live_bytes;
    write_wait_ns = after.write_wait_ns -. before.write_wait_ns;
    read_wait_ns = after.read_wait_ns -. before.read_wait_ns }

let write_amplification t =
  if t.user_write_bytes <= 0.0 then 0.0
  else t.media_write_bytes /. t.user_write_bytes

let pp ppf t =
  Format.fprintf ppf
    "user_w=%.0fB media_w=%.0fB (WA=%.2f) media_r=%.0fB rmw_r=%.0fB \
     ops(r/w/p)=%d/%d/%d live=%.0fB"
    t.user_write_bytes t.media_write_bytes (write_amplification t)
    t.media_read_bytes t.rmw_read_bytes t.read_ops t.write_ops t.persist_ops
    t.live_bytes
