(** Virtual per-thread clock, in simulated nanoseconds.

    Every store operation charges its costs to a clock.  The harness runs one
    clock per simulated thread and always advances the thread whose clock is
    smallest, which makes shared-resource queueing (see {!Device}) a proper
    discrete-event simulation. *)

type t

val create : ?at:float -> unit -> t
(** A clock starting at [at] (default 0) simulated ns. *)

val now : t -> float

val advance : t -> float -> unit
(** [advance c ns] moves the clock forward by [ns] (>= 0). *)

val wait_until : t -> float -> float
(** [wait_until c deadline] advances the clock to [deadline] if it is in the
    future and returns the stall duration (0 if none).  Used for queueing on
    busy resources and for flush-blocked puts. *)

val set : t -> float -> unit
(** Force the clock to an absolute time (used when handing work to a
    background compaction thread that may be ahead). *)

val copy : t -> t
(** Fresh clock at the same instant. *)
