bench/main.mli:
