bench/bechamel_suite.ml: Analyze Baselines Bechamel Benchmark Chameleondb Harness Hashtbl Kv_common List Measure Metrics Pmem_sim Printf Staged Test Time Toolkit Workload
