(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # all experiments, default scale
     dune exec bench/main.exe -- --quick      # reduced scale
     dune exec bench/main.exe -- fig10 tab4   # a subset by id
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --bechamel   # also run Bechamel micro-benches *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let list_only = List.mem "--list" args in
  let bechamel = List.mem "--bechamel" args in
  let ids =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  if list_only then begin
    List.iter
      (fun e ->
        Printf.printf "%-12s %s\n" e.Harness.Experiments.id
          e.Harness.Experiments.title)
      Harness.Experiments.all
  end
  else begin
    let scale =
      if quick then Harness.Stores.quick else Harness.Stores.default
    in
    Printf.printf
      "ChameleonDB reproduction benchmarks (%s scale: %d shards, %d-slot \
       MemTables, %d keys)\n"
      (if quick then "quick" else "default")
      scale.Harness.Stores.shards scale.Harness.Stores.memtable_slots
      scale.Harness.Stores.load_keys;
    Printf.printf
      "All latencies/throughputs are simulated-time values from the Pmem \
       device model.\n\n";
    let t0 = Unix.gettimeofday () in
    Harness.Experiments.run_ids ~scale ids;
    if bechamel then Bechamel_suite.run ();
    Printf.printf "\n[bench complete in %.1fs real time]\n"
      (Unix.gettimeofday () -. t0)
  end
