(* A tour of the simulated Optane device — the substrate every store in this
   repository runs on.  Reproduces the device-level behaviours the paper's
   Section 1 derives its design from.

   Run with:  dune exec examples/device_model.exe *)

module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module CM = Pmem_sim.Cost_model
module Stats = Pmem_sim.Stats

let () =
  (* 1. The 256 B write unit (Challenge 1): persisting 16 bytes costs a full
     media unit plus a read-modify-write. *)
  let dev = Device.create CM.optane in
  let c = Clock.create () in
  let off = Device.alloc dev 4096 in
  Device.write_u64 dev c ~off 1L;
  Device.write_u64 dev c ~off:(off + 8) 2L;
  Device.persist dev c ~off ~len:16;
  let st = Device.stats dev in
  Printf.printf
    "a persisted 16 B store: %.0f user bytes -> %.0f media bytes written \
     (%.0fx amplification), %.0f RMW bytes read\n"
    st.Stats.user_write_bytes st.Stats.media_write_bytes
    (Stats.write_amplification st)
    st.Stats.rmw_read_bytes;

  (* 2. Batched sequential appends have no amplification. *)
  let dev2 = Device.create CM.optane in
  let c2 = Clock.create () in
  Device.charge_append dev2 c2 ~len:4096;
  Printf.printf "a 4 KB batched append: amplification %.2fx\n"
    (Stats.write_amplification (Device.stats dev2));

  (* 3. Random reads cost ~3x DRAM — cheap enough that per-level Bloom
     checks stop being free (Challenge 2). *)
  let lat profile =
    let d = Device.create profile in
    let o = Device.alloc d 64 in
    let cl = Clock.create () in
    ignore (Device.read_u64 d cl ~off:o ~hint:Device.Random);
    Clock.now cl
  in
  Printf.printf
    "random read latency: dram %.0f ns, optane %.0f ns, nvme-ssd %.0f ns, \
     sata-ssd %.0f ns\n"
    (lat CM.dram) (lat CM.optane) (lat CM.nvme_ssd) (lat CM.sata_ssd);
  Printf.printf "one bloom check costs %.0f ns of CPU — %d%% of an Optane read\n"
    CM.bloom_check_ns
    (int_of_float (100.0 *. CM.bloom_check_ns /. CM.optane.CM.read_latency_ns));

  (* 4. Write floods self-throttle at the media rate (the WPQ), and reads
     issued during the flood see a bounded latency spike — the mechanism
     behind the paper's Fig. 16. *)
  let dev3 = Device.create CM.optane in
  let w = Clock.create () in
  for _ = 1 to 500 do
    Device.charge_append dev3 w ~len:65536
  done;
  let flooded = Clock.create ~at:(Clock.now w) () in
  ignore (Device.charge_read_bytes dev3 flooded ~len:8 ~hint:Device.Random);
  Printf.printf
    "sustained 64 KB appends: effective bandwidth %.2f GB/s (configured \
     %.2f); a read during the flood takes %.0f ns (baseline %.0f)\n"
    (float_of_int (500 * 65536) /. Clock.now w)
    (CM.optane.CM.write_bw_gbps *. CM.write_bw_scale ~threads:1)
    (Clock.now flooded -. Clock.now w)
    CM.optane.CM.read_latency_ns;

  (* 5. Crash semantics: stores are volatile until persisted. *)
  let dev4 = Device.create CM.optane in
  let c4 = Clock.create () in
  let o = Device.alloc dev4 64 in
  Device.write_u64 dev4 c4 ~off:o 7L;
  Device.persist dev4 c4 ~off:o ~len:8;
  Device.write_u64 dev4 c4 ~off:(o + 8) 8L; (* no persist *)
  Device.crash dev4;
  Printf.printf
    "after crash: persisted slot = %Ld (survives), unpersisted slot = %Ld \
     (reverted)\n"
    (Device.peek_u64 dev4 ~off:o)
    (Device.peek_u64 dev4 ~off:(o + 8));
  print_endline "device_model OK"
