examples/crash_recovery.ml: Baselines Chameleondb Metrics Pmem_sim Printf Workload
