examples/device_model.mli:
