examples/ycsb_run.mli:
