examples/quickstart.ml: Bytes Chameleondb Pmem_sim Printf Workload
