examples/ycsb_run.ml: Array Harness List Metrics Printf Sys Workload
