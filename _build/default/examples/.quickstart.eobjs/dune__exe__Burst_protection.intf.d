examples/burst_protection.mli:
