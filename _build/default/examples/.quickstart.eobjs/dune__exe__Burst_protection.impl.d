examples/burst_protection.ml: Array Chameleondb Float Harness Kv_common List Metrics Pmem_sim Printf Workload
