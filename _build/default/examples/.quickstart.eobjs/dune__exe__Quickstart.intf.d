examples/quickstart.mli:
