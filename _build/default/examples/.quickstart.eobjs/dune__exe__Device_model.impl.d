examples/device_model.ml: Pmem_sim Printf
