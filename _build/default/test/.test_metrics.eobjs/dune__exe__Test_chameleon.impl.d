test/test_chameleon.ml: Alcotest Bytes Chameleondb Hashtbl Int64 Kv_common List Model_check Option Pmem_sim Printf QCheck QCheck_alcotest String Workload
