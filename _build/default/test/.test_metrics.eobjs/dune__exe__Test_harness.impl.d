test/test_harness.ml: Alcotest Array Harness Int64 Kv_common List Metrics Pmem_sim Workload
