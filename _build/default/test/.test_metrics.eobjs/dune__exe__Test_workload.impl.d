test/test_workload.ml: Alcotest Array Chameleondb Filename Fun Hashtbl Int64 Kv_common List Option Pmem_sim Printf QCheck QCheck_alcotest String Sys Workload
