test/test_chameleon.mli:
