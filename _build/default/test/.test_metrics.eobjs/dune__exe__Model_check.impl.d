test/model_check.ml: Alcotest Hashtbl Kv_common List Option Pmem_sim Printf Workload
