test/test_pmem.ml: Alcotest Array Bytes Float Int64 List Pmem_sim Printf QCheck QCheck_alcotest
