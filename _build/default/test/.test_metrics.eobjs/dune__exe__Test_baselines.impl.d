test/test_baselines.ml: Alcotest Baselines Chameleondb Kv_common List Model_check Pmem_sim Printf Workload
