test/test_kv.ml: Alcotest Array Float Gen Hashtbl Int64 Kv_common List Pmem_sim Printf QCheck QCheck_alcotest Workload
