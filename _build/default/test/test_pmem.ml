module Clock = Pmem_sim.Clock
module CM = Pmem_sim.Cost_model
module Device = Pmem_sim.Device
module Stats = Pmem_sim.Stats

(* --------------------------------- Clock -------------------------------- *)

let test_clock_basics () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Clock.now c);
  Clock.advance c 100.0;
  Alcotest.(check (float 0.0)) "advanced" 100.0 (Clock.now c);
  let stall = Clock.wait_until c 250.0 in
  Alcotest.(check (float 0.0)) "stall" 150.0 stall;
  Alcotest.(check (float 0.0)) "at deadline" 250.0 (Clock.now c);
  let no_stall = Clock.wait_until c 10.0 in
  Alcotest.(check (float 0.0)) "past deadline: no stall" 0.0 no_stall;
  Alcotest.(check (float 0.0)) "clock unchanged" 250.0 (Clock.now c)

let test_clock_copy () =
  let a = Clock.create ~at:42.0 () in
  let b = Clock.copy a in
  Clock.advance b 8.0;
  Alcotest.(check (float 0.0)) "original unchanged" 42.0 (Clock.now a);
  Alcotest.(check (float 0.0)) "copy advanced" 50.0 (Clock.now b)

(* ------------------------------- Cost model ----------------------------- *)

let test_aligned_span () =
  let span = CM.aligned_span ~unit:256 in
  Alcotest.(check int) "zero len" 0 (span ~off:0 ~len:0);
  Alcotest.(check int) "sub-unit aligned" 256 (span ~off:0 ~len:8);
  Alcotest.(check int) "exact unit" 256 (span ~off:0 ~len:256);
  Alcotest.(check int) "unaligned small straddles" 512 (span ~off:250 ~len:16);
  Alcotest.(check int) "aligned large" 1024 (span ~off:256 ~len:1024);
  Alcotest.(check int) "unaligned large" 1280 (span ~off:100 ~len:1024)

let test_bw_scaling () =
  (* rises with threads up to ~4, write side declines at high counts *)
  Alcotest.(check bool) "write 1 < 4" true
    (CM.write_bw_scale ~threads:1 < CM.write_bw_scale ~threads:4);
  Alcotest.(check bool) "write 16 < 4 (iMC contention)" true
    (CM.write_bw_scale ~threads:16 < CM.write_bw_scale ~threads:4);
  Alcotest.(check bool) "read 1 < 8" true
    (CM.read_bw_scale ~threads:1 < CM.read_bw_scale ~threads:8);
  Alcotest.(check bool) "clamped at 0 threads" true
    (CM.write_bw_scale ~threads:0 = CM.write_bw_scale ~threads:1);
  Alcotest.(check bool) "beyond table" true
    (CM.write_bw_scale ~threads:64 = CM.write_bw_scale ~threads:32)

let test_profiles () =
  Alcotest.(check int) "optane unit" 256 CM.optane.CM.write_unit;
  Alcotest.(check bool) "optane ~3x dram read latency" true
    (CM.optane.CM.read_latency_ns > 2.0 *. CM.dram.CM.read_latency_ns
    && CM.optane.CM.read_latency_ns < 5.0 *. CM.dram.CM.read_latency_ns);
  Alcotest.(check bool) "ssd read latencies dominate optane" true
    (CM.sata_ssd.CM.read_latency_ns > 100.0 *. CM.optane.CM.read_latency_ns)

(* --------------------------------- Stats -------------------------------- *)

let test_stats_diff () =
  let a = Stats.create () in
  a.Stats.media_write_bytes <- 100.0;
  a.Stats.read_ops <- 5;
  let b = Stats.copy a in
  b.Stats.media_write_bytes <- 350.0;
  b.Stats.read_ops <- 9;
  let d = Stats.diff ~after:b ~before:a in
  Alcotest.(check (float 0.0)) "bytes delta" 250.0 d.Stats.media_write_bytes;
  Alcotest.(check int) "ops delta" 4 d.Stats.read_ops

let test_stats_wa () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "no writes" 0.0 (Stats.write_amplification s);
  s.Stats.user_write_bytes <- 16.0;
  s.Stats.media_write_bytes <- 256.0;
  Alcotest.(check (float 0.0)) "16x" 16.0 (Stats.write_amplification s)

(* --------------------------------- Device ------------------------------- *)

let mk () = Device.create ~capacity:4096 CM.optane

let test_alloc_alignment () =
  let d = mk () in
  let a = Device.alloc d 100 in
  let b = Device.alloc d 100 in
  Alcotest.(check int) "first aligned" 0 (a mod 256);
  Alcotest.(check int) "second aligned" 0 (b mod 256);
  Alcotest.(check bool) "disjoint" true (b >= a + 100);
  Alcotest.(check (float 0.0)) "live bytes" 200.0 (Device.used_bytes d);
  Device.dealloc d ~off:a ~len:100;
  Alcotest.(check (float 0.0)) "after dealloc" 100.0 (Device.used_bytes d)

let test_alloc_grows () =
  let d = Device.create ~capacity:512 CM.optane in
  let off = Device.alloc d 1_000_000 in
  let c = Clock.create () in
  Device.write_u64 d c ~off:(off + 999_000) 42L;
  Alcotest.(check int64) "read back" 42L
    (Device.peek_u64 d ~off:(off + 999_000))

let test_write_read_roundtrip () =
  let d = mk () in
  let c = Clock.create () in
  let off = Device.alloc d 64 in
  Device.write_bytes d c ~off (Bytes.of_string "hello");
  let back = Device.read_bytes d c ~off ~len:5 ~hint:Device.Random in
  Alcotest.(check string) "roundtrip" "hello" (Bytes.to_string back);
  Alcotest.(check bool) "time advanced" true (Clock.now c > 0.0)

let test_persist_then_crash () =
  let d = mk () in
  let c = Clock.create () in
  let off = Device.alloc d 64 in
  Device.write_u64 d c ~off 1L;
  Device.persist d c ~off ~len:8;
  Device.write_u64 d c ~off:(off + 8) 2L; (* never persisted *)
  Device.crash d;
  Alcotest.(check int64) "persisted survives" 1L (Device.peek_u64 d ~off);
  Alcotest.(check int64) "unpersisted reverted" 0L
    (Device.peek_u64 d ~off:(off + 8));
  Alcotest.(check bool) "pending cleared" true (Device.pending_ranges d = [])

let test_crash_overlapping_writes () =
  let d = mk () in
  let c = Clock.create () in
  let off = Device.alloc d 64 in
  Device.write_u64 d c ~off 1L;
  Device.persist d c ~off ~len:8;
  Device.write_u64 d c ~off 2L;
  Device.write_u64 d c ~off 3L;
  (* two unpersisted overwrites of a persisted value: crash must restore
     the persisted state, not an intermediate one *)
  Device.crash d;
  Alcotest.(check int64) "restored to persisted" 1L (Device.peek_u64 d ~off)

let test_media_accounting_small_write () =
  let d = mk () in
  let c = Clock.create () in
  let off = Device.alloc d 256 in
  Device.write_u64 d c ~off 9L;
  Device.persist d c ~off ~len:8;
  let st = Device.stats d in
  Alcotest.(check (float 0.0)) "user bytes" 8.0 st.Stats.user_write_bytes;
  Alcotest.(check (float 0.0)) "one full unit" 256.0
    st.Stats.media_write_bytes;
  Alcotest.(check bool) "RMW read charged" true (st.Stats.rmw_read_bytes > 0.0)

let test_media_accounting_aligned_write () =
  let d = mk () in
  let c = Clock.create () in
  let off = Device.alloc d 1024 in
  Device.write_bytes d c ~off (Bytes.make 1024 'x');
  Device.persist d c ~off ~len:1024;
  let st = Device.stats d in
  Alcotest.(check (float 0.0)) "no amplification" 1024.0
    st.Stats.media_write_bytes;
  Alcotest.(check (float 0.0)) "no RMW" 0.0 st.Stats.rmw_read_bytes

let test_charge_append_no_amp () =
  let d = mk () in
  let c = Clock.create () in
  Device.charge_append d c ~len:4096;
  let st = Device.stats d in
  Alcotest.(check (float 0.0)) "media = user" st.Stats.user_write_bytes
    st.Stats.media_write_bytes

let test_charge_write_random_amp () =
  let d = mk () in
  let c = Clock.create () in
  Device.charge_write_random d c ~len:16;
  let st = Device.stats d in
  Alcotest.(check bool) "amplified" true
    (st.Stats.media_write_bytes >= 256.0)

let test_write_backpressure () =
  (* sustained writes throttle to the media rate: the WPQ caps backlog *)
  let d = mk () in
  let c = Clock.create () in
  let n = 2_000 in
  for _ = 1 to n do
    Device.charge_append d c ~len:4096
  done;
  let wall = Clock.now c in
  let bytes = float_of_int (n * 4096) in
  let bw = bytes /. wall in
  (* effective bandwidth within 2x of the configured single-thread rate *)
  let expected =
    CM.optane.CM.write_bw_gbps *. CM.write_bw_scale ~threads:1
  in
  Alcotest.(check bool)
    (Printf.sprintf "throttled to media rate (got %.2f GB/s)" bw)
    true
    (bw < expected *. 1.5 && bw > expected /. 2.0)

let test_read_rate_cap () =
  (* aggregate random reads are bounded by the occupancy-derived IOPS cap *)
  let d = mk () in
  Device.set_active_threads d 16;
  let clocks = Array.init 16 (fun _ -> Clock.create ()) in
  let n = 50_000 in
  for _ = 1 to n do
    let bi = ref 0 in
    Array.iteri
      (fun i c -> if Clock.now c < Clock.now clocks.(!bi) then bi := i)
      clocks;
    Device.charge_read_bytes d clocks.(!bi) ~len:8 ~hint:Device.Random
  done;
  let wall = Array.fold_left (fun a c -> Float.max a (Clock.now c)) 0.0 clocks in
  let rate_mops = float_of_int n /. wall *. 1000.0 in
  let cap = 1000.0 /. CM.optane.CM.random_read_occupancy_ns in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.1f <= cap %.1f" rate_mops cap)
    true
    (rate_mops <= cap *. 1.05)

let test_quiesce_at () =
  let d = mk () in
  let c = Clock.create () in
  Device.charge_append d c ~len:1_000_000;
  Alcotest.(check bool) "backlog visible" true
    (Device.quiesce_at d > 0.0)

let test_adjacent_cheaper () =
  let d = mk () in
  let off = Device.alloc d 64 in
  let c1 = Clock.create () in
  ignore (Device.read_u64 d c1 ~off ~hint:Device.Random);
  let c2 = Clock.create () in
  ignore (Device.read_u64 d c2 ~off ~hint:Device.Adjacent);
  Alcotest.(check bool) "adjacent < random" true
    (Clock.now c2 < Clock.now c1)

let prop_media_at_least_user =
  QCheck.Test.make ~name:"media bytes >= user bytes for isolated persists"
    ~count:300
    QCheck.(pair (int_bound 4000) (int_bound 5000))
    (fun (off, len) ->
      let len = len + 1 in
      let d = Device.create ~capacity:16384 CM.optane in
      let c = Clock.create () in
      Device.charge_write_at d c ~off ~len;
      let st = Device.stats d in
      st.Stats.media_write_bytes >= st.Stats.user_write_bytes
      && st.Stats.media_write_bytes <= st.Stats.user_write_bytes +. 512.0
      && int_of_float st.Stats.media_write_bytes mod 256 = 0)

let prop_crash_restores_unpersisted =
  QCheck.Test.make ~name:"crash restores exactly unpersisted writes"
    ~count:100
    QCheck.(small_list (pair (int_bound 30) (int_bound 255)))
    (fun writes ->
      let d = Device.create ~capacity:4096 CM.optane in
      let c = Clock.create () in
      let off = Device.alloc d 512 in
      (* persist even-indexed writes, leave odd ones volatile *)
      let expected = Array.make 32 0 in
      List.iteri
        (fun i (slot, v) ->
          let o = off + (slot * 8) in
          Device.write_u64 d c ~off:o (Int64.of_int v);
          if i mod 2 = 0 then begin
            Device.persist d c ~off:o ~len:8;
            expected.(slot) <- v
          end
          else
            (* a later persisted write to the same slot wins; model it *)
            ())
        writes;
      (* replay the model to compute the final durable state precisely *)
      let durable = Array.make 32 0 in
      List.iteri
        (fun i (slot, v) -> if i mod 2 = 0 then durable.(slot) <- v)
        writes;
      ignore expected;
      Device.crash d;
      let ok = ref true in
      (* volatile overwrites of never-persisted slots must be zero; persisted
         slots must hold their last persisted value, except where a volatile
         write landed after the persist (undo restores the persisted value) *)
      List.iteri
        (fun _ (slot, _) ->
          let v = Int64.to_int (Device.peek_u64 d ~off:(off + (slot * 8))) in
          if v <> durable.(slot) then ok := false)
        writes;
      !ok)


let test_write_bytes_empty_noop () =
  let d = mk () in
  let c = Clock.create () in
  let off = Device.alloc d 64 in
  Device.write_bytes d c ~off (Bytes.create 0);
  Alcotest.(check (float 0.0)) "no time charged" 0.0 (Clock.now c);
  Alcotest.(check int) "no pending" 0 (List.length (Device.pending_ranges d))

let test_bulk_read_charges_bandwidth () =
  let d = mk () in
  let off = Device.alloc d (1 lsl 20) in
  let c1 = Clock.create () in
  ignore (Device.read_bytes d c1 ~off ~len:(1 lsl 20) ~hint:Device.Bulk);
  (* 1 MiB at 12 GB/s single-thread-scaled: tens of microseconds *)
  Alcotest.(check bool) "bulk read takes real time" true
    (Clock.now c1 > 50_000.0)

let test_threads_scale_write_bandwidth () =
  let run threads =
    let d = mk () in
    Device.set_active_threads d threads;
    let c = Clock.create () in
    for _ = 1 to 500 do
      Device.charge_append d c ~len:65536
    done;
    Clock.now c
  in
  Alcotest.(check bool) "4 threads drain the same bytes faster" true
    (run 4 < run 1)

let test_ssd_profile_unit () =
  let d = Device.create CM.sata_ssd in
  let c = Clock.create () in
  Device.charge_write_random d c ~len:100;
  (* SSD write unit is a 4 KB page *)
  Alcotest.(check bool) "page-sized media write" true
    ((Device.stats d).Stats.media_write_bytes >= 4096.0)

let test_quiesce_monotone () =
  let d = mk () in
  let c = Clock.create () in
  let q0 = Device.quiesce_at d in
  Device.charge_append d c ~len:100_000;
  let q1 = Device.quiesce_at d in
  Device.charge_append d c ~len:100_000;
  let q2 = Device.quiesce_at d in
  Alcotest.(check bool) "monotone" true (q0 <= q1 && q1 <= q2)

let test_write_flood_bounds_read_wait () =
  (* reads under a write flood spike, but only by a bounded amount (the
     write-pending-queue depth), as on the real device *)
  let d = mk () in
  let c = Clock.create () in
  for _ = 1 to 200 do
    Device.charge_append d c ~len:65536
  done;
  let r = Clock.create ~at:(Clock.now c) () in
  Device.charge_read_bytes d r ~len:8 ~hint:Device.Random;
  let lat = Clock.now r -. Clock.now c in
  Alcotest.(check bool)
    (Printf.sprintf "read latency %.0fns elevated but bounded" lat)
    true
    (lat > CM.optane.CM.read_latency_ns && lat < 20_000.0)

let () =
  Alcotest.run "pmem_sim"
    [ ( "clock",
        [ Alcotest.test_case "basics" `Quick test_clock_basics;
          Alcotest.test_case "copy" `Quick test_clock_copy ] );
      ( "cost_model",
        [ Alcotest.test_case "aligned span" `Quick test_aligned_span;
          Alcotest.test_case "bandwidth scaling" `Quick test_bw_scaling;
          Alcotest.test_case "profiles" `Quick test_profiles ] );
      ( "stats",
        [ Alcotest.test_case "diff" `Quick test_stats_diff;
          Alcotest.test_case "write amplification" `Quick test_stats_wa ] );
      ( "device",
        [ Alcotest.test_case "alloc alignment" `Quick test_alloc_alignment;
          Alcotest.test_case "alloc grows" `Quick test_alloc_grows;
          Alcotest.test_case "write/read roundtrip" `Quick
            test_write_read_roundtrip;
          Alcotest.test_case "persist then crash" `Quick
            test_persist_then_crash;
          Alcotest.test_case "crash with overlapping writes" `Quick
            test_crash_overlapping_writes;
          Alcotest.test_case "media accounting: small write" `Quick
            test_media_accounting_small_write;
          Alcotest.test_case "media accounting: aligned write" `Quick
            test_media_accounting_aligned_write;
          Alcotest.test_case "append has no amplification" `Quick
            test_charge_append_no_amp;
          Alcotest.test_case "random small write amplified" `Quick
            test_charge_write_random_amp;
          Alcotest.test_case "write back-pressure" `Quick
            test_write_backpressure;
          Alcotest.test_case "random-read rate cap" `Quick test_read_rate_cap;
          Alcotest.test_case "quiesce_at" `Quick test_quiesce_at;
          Alcotest.test_case "adjacent reads cheaper" `Quick
            test_adjacent_cheaper;
          Alcotest.test_case "empty write is a no-op" `Quick
            test_write_bytes_empty_noop;
          Alcotest.test_case "bulk read bandwidth" `Quick
            test_bulk_read_charges_bandwidth;
          Alcotest.test_case "thread scaling" `Quick
            test_threads_scale_write_bandwidth;
          Alcotest.test_case "ssd write unit" `Quick test_ssd_profile_unit;
          Alcotest.test_case "quiesce monotone" `Quick test_quiesce_monotone;
          Alcotest.test_case "bounded read wait under write flood" `Quick
            test_write_flood_bounds_read_wait;
          QCheck_alcotest.to_alcotest prop_media_at_least_user;
          QCheck_alcotest.to_alcotest prop_crash_restores_unpersisted ] ) ]
