type target = { slo_name : string; slo_ns : float }

let target ~name ~ns = { slo_name = name; slo_ns = ns }

let attainment hist t = Histogram.fraction_below hist t.slo_ns

let cell_pct f = Printf.sprintf "%.2f%%" (100.0 *. f)

let table ~title ~targets rows =
  let tbl =
    Table_fmt.create ~title
      ~columns:
        (("series", Table_fmt.Left)
        :: ("n", Table_fmt.Right)
        :: List.map
             (fun t ->
               ( Printf.sprintf "%s (<=%s)" t.slo_name
                   (Table_fmt.cell_ns t.slo_ns),
                 Table_fmt.Right ))
             targets)
  in
  List.iter
    (fun (name, hist) ->
      Table_fmt.add_row tbl
        (name
        :: string_of_int (Histogram.count hist)
        :: List.map (fun t -> cell_pct (attainment hist t)) targets))
    rows;
  tbl
