(** SLO attainment reporting.

    A service-level objective is a latency threshold; attainment is the
    fraction of requests at or under it.  Attainment is computed with
    {!Histogram.fraction_below}, i.e. it is a lower bound within one
    histogram bucket — an SLO table never flatters the system.  Used by the
    open-loop service experiment, where latencies are measured from
    intended arrival time and therefore include queueing delay. *)

type target = { slo_name : string; slo_ns : float }

val target : name:string -> ns:float -> target

val attainment : Histogram.t -> target -> float
(** Fraction of observations meeting the target, in [0, 1]. *)

val cell_pct : float -> string
(** Render a [0, 1] fraction as a percentage cell. *)

val table :
  title:string -> targets:target list -> (string * Histogram.t) list ->
  Table_fmt.t
(** One row per (series, histogram), one column per target, cells are
    attainment percentages. *)
