(* Geometric bucketing: bucket index for value v is
   [octave * sub + position within octave], where octave = floor(log2 v).
   With [sub] sub-buckets per octave the relative width of a bucket is
   2^(1/sub) - 1, i.e. ~4.4% for sub = 16. *)

let sub = 16
let octaves = 62
let nbuckets = (octaves * sub) + 1 (* +1 for the [0, 1) bucket *)

type t = {
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  { buckets = Array.make nbuckets 0;
    total = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity }

let bucket_of_value v =
  if v < 1.0 then 0
  else begin
    let octave = int_of_float (Float.log2 v) in
    let octave = if octave >= octaves then octaves - 1 else octave in
    let base = Float.pow 2.0 (float_of_int octave) in
    let frac = (v -. base) /. base in
    let slot = int_of_float (frac *. float_of_int sub) in
    let slot = if slot >= sub then sub - 1 else slot in
    1 + (octave * sub) + slot
  end

(* Upper edge of a bucket: the largest value that maps into it. *)
let value_of_bucket i =
  if i = 0 then 1.0
  else begin
    let i = i - 1 in
    let octave = i / sub and slot = i mod sub in
    let base = Float.pow 2.0 (float_of_int octave) in
    base +. (base *. float_of_int (slot + 1) /. float_of_int sub)
  end

let record_n h v n =
  if n > 0 then begin
    let v = if v < 0.0 then 0.0 else v in
    let i = bucket_of_value v in
    h.buckets.(i) <- h.buckets.(i) + n;
    h.total <- h.total + n;
    h.sum <- h.sum +. (v *. float_of_int n);
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v
  end

let record h v = record_n h v 1
let count h = h.total
let min_value h = if h.total = 0 then 0.0 else h.vmin
let max_value h = if h.total = 0 then 0.0 else h.vmax
let mean h = if h.total = 0 then 0.0 else h.sum /. float_of_int h.total

let percentile h p =
  if h.total = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let target = p /. 100.0 *. float_of_int h.total in
    let rec scan i acc =
      if i >= nbuckets then max_value h
      else begin
        let acc = acc + h.buckets.(i) in
        if float_of_int acc >= target then Float.min (value_of_bucket i) h.vmax
        else scan (i + 1) acc
      end
    in
    scan 0 0
  end

let median h = percentile h 50.0

let fraction_below h v =
  if h.total = 0 then 0.0
  else if v < h.vmin then 0.0
  else if v >= h.vmax then 1.0
  else begin
    (* count whole buckets whose upper edge is <= v; the bucket containing
       [v] is included iff its upper edge does not exceed it, keeping the
       result a lower bound consistent with [percentile]'s upper bound *)
    let acc = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         if value_of_bucket i > v then raise Exit
         else acc := !acc + h.buckets.(i)
       done
     with Exit -> ());
    float_of_int !acc /. float_of_int h.total
  end

let cdf h ?(points = 50) () =
  if h.total = 0 then []
  else begin
    let nonempty = ref 0 in
    Array.iter (fun c -> if c > 0 then incr nonempty) h.buckets;
    let stride = Stdlib.max 1 (!nonempty / points) in
    let acc = ref 0 and seen = ref 0 and out = ref [] in
    let totalf = float_of_int h.total in
    for i = 0 to nbuckets - 1 do
      if h.buckets.(i) > 0 then begin
        acc := !acc + h.buckets.(i);
        incr seen;
        if !seen mod stride = 0 || !acc = h.total then begin
          let v = Float.min (value_of_bucket i) h.vmax in
          out := (v, float_of_int !acc /. totalf) :: !out
        end
      end
    done;
    List.rev !out
  end

let merge a b =
  let m = create () in
  Array.blit a.buckets 0 m.buckets 0 nbuckets;
  Array.iteri (fun i c -> m.buckets.(i) <- m.buckets.(i) + c) b.buckets;
  m.total <- a.total + b.total;
  m.sum <- a.sum +. b.sum;
  m.vmin <- Float.min a.vmin b.vmin;
  m.vmax <- Float.max a.vmax b.vmax;
  m

let clear h =
  Array.fill h.buckets 0 nbuckets 0;
  h.total <- 0;
  h.sum <- 0.0;
  h.vmin <- infinity;
  h.vmax <- neg_infinity

let pp_summary ppf h =
  Format.fprintf ppf
    "n=%d p50=%.0f p99=%.0f p99.9=%.0f p99.99=%.0f max=%.0f"
    h.total (percentile h 50.0) (percentile h 99.0) (percentile h 99.9)
    (percentile h 99.99) (max_value h)
