(** Log-bucketed histogram for latency measurements.

    Values (simulated nanoseconds, or any non-negative quantity) are recorded
    into geometrically spaced buckets, giving bounded memory and a relative
    quantile error of at most [1 / sub_buckets_per_octave].  This is the same
    trade-off HdrHistogram makes; it is sufficient for the p50/p99/p99.9/
    p99.99 figures the paper reports. *)

type t

val create : unit -> t
(** [create ()] is an empty histogram covering values in [0, 2^62). *)

val record : t -> float -> unit
(** [record h v] adds one observation of value [v] (clamped to >= 0). *)

val record_n : t -> float -> int -> unit
(** [record_n h v n] adds [n] observations of value [v]. *)

val count : t -> int
(** Number of recorded observations. *)

val min_value : t -> float
(** Smallest recorded value exactly (not bucketed). 0 when empty. *)

val max_value : t -> float
(** Largest recorded value exactly (not bucketed). 0 when empty. *)

val mean : t -> float
(** Exact arithmetic mean of recorded values. 0 when empty. *)

val percentile : t -> float -> float
(** [percentile h p] for [p] in [0, 100]: an upper bound on the value below
    which [p]% of observations fall, within one bucket of the true quantile.
    0 when empty. *)

val median : t -> float

val fraction_below : t -> float -> float
(** [fraction_below h v] is the fraction of observations [<= v], in
    [0, 1] — the SLO-attainment primitive.  A lower bound within one
    bucket of the true fraction (the dual of {!percentile}'s upper
    bound), so an SLO report never overstates attainment. *)

val cdf : t -> ?points:int -> unit -> (float * float) list
(** [cdf h ()] is a list of [(value, fraction <= value)] pairs suitable for
    plotting a CDF curve, sampled at up to [points] (default 50) non-empty
    buckets. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding the observations of both. *)

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One-line [p50/p99/p99.9/p99.99/max] rendering. *)
