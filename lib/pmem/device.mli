(** Simulated byte-addressable persistent memory device.

    The device plays the role of one socket's interleaved Optane Pmem DIMMs
    in App Direct mode.  It provides:

    - a flat byte space with a bump allocator ({!alloc} / {!dealloc});
    - loads and stores ({!read_u64}, {!write_bytes}, ...) that charge
      simulated time to a {!Clock.t} according to the device {!Cost_model.profile};
    - explicit persistence ({!persist} = clwb/ntstore + sfence): a store is
      volatile (reverted by {!crash}) until the covering range is persisted;
    - media write-unit accounting: persisting a range smaller than (or
      misaligned to) the 256 B write unit charges a read-modify-write of
      whole units, which is exactly the write amplification the paper's
      Challenge 1 is about;
    - shared bandwidth servers: reads and writes queue on per-direction
      resources whose rate scales with {!set_active_threads}, so throughput
      saturation, iMC contention and compaction interference emerge from the
      simulation rather than being scripted.

    Accounting-only variants ({!charge_append}, {!charge_read_bytes}) charge
    time and traffic without materializing bytes; the value log uses them so
    that multi-GB experiments fit in memory (see DESIGN.md). *)

type t

type read_hint =
  | Random    (** independent cache-missing access *)
  | Adjacent  (** next slot within the line fetched by the previous access *)
  | Bulk      (** part of a large sequential transfer *)

val create : ?capacity:int -> Cost_model.profile -> t
(** [create profile] makes an empty device.  [capacity] (default 4 MiB) is
    the initial size of the materialized byte space; it grows on demand. *)

val profile : t -> Cost_model.profile
val stats : t -> Stats.t

val set_active_threads : t -> int -> unit
(** Number of threads driving the device; sets the bandwidth scaling point
    (default 1). *)

val active_threads : t -> int

(** {1 Allocation} *)

val alloc : t -> int -> int
(** [alloc t len] reserves [len] bytes aligned to the media write unit and
    returns the offset. *)

val dealloc : t -> off:int -> len:int -> unit
(** Returns space to the accounting (the simulator does not reuse it). *)

val used_bytes : t -> float
(** Live allocated bytes. *)

(** {1 Stores (volatile until persisted)} *)

val write_bytes : t -> Clock.t -> off:int -> bytes -> unit
val write_u64 : t -> Clock.t -> off:int -> int64 -> unit

val persist : t -> Clock.t -> off:int -> len:int -> unit
(** Flush the range to the media: charges media-unit-aligned bandwidth plus
    write latency, commits the covered stores (they now survive {!crash}),
    and charges RMW reads for partially covered edge units. *)

(** {1 Loads} *)

val read_u64 : t -> Clock.t -> off:int -> hint:read_hint -> int64
val read_bytes : t -> Clock.t -> off:int -> len:int -> hint:read_hint -> bytes

(** {1 Accounting-only traffic (value log)} *)

val charge_append : t -> Clock.t -> len:int -> unit
(** Persist [len] bytes appended contiguously to a stream: no RMW (the write-
    combining buffer merges unit boundaries of a contiguous stream), media
    bytes = [len] rounded up to the unit only at stream granularity. *)

val charge_write_random : t -> Clock.t -> len:int -> unit
(** Persist [len] bytes at an arbitrary (unaligned, isolated) location:
    worst-case unit rounding plus RMW reads, as for {!persist}. *)

val charge_write_at : t -> Clock.t -> off:int -> len:int -> unit
(** Persist [len] bytes at a specific offset, charging exactly the aligned
    span (and edge RMWs) that {!persist} would — without materializing the
    bytes.  The raw-device microbenchmark (Fig. 1) uses this. *)

val charge_read_bytes : t -> Clock.t -> len:int -> hint:read_hint -> unit

val quiesce_at : t -> float
(** Simulated time at which both bandwidth servers are free.  Experiment
    phases start measurement clocks past this point so that one phase's
    background backlog does not bleed into the next phase's latencies. *)

(** {1 Uncharged access} *)

val peek_u64 : t -> off:int -> int64
(** Read without charging time or traffic — for stores that hold a DRAM
    mirror of device-resident data (and for tests). *)

val peek_bytes : t -> off:int -> len:int -> bytes

(** {1 Crash model} *)

val crash : t -> unit
(** Power failure: every store not yet covered by a {!persist} is reverted to
    its previous contents.  Bandwidth servers and allocation are unaffected
    (allocation metadata is assumed to be recoverable from the manifest).
    With a tear function installed ({!set_tear}), survival of unpersisted
    stores is instead decided per media write unit: the unit either reached
    the media before power failed (kept) or it did not (reverted). *)

val set_persist_hook : t -> (unit -> unit) option -> unit
(** Install a hook fired at the start of every persist-class operation
    ({!persist}, {!charge_append}, {!charge_write_random},
    {!charge_write_at}).  The fault injector uses it to count durable
    writes and to raise a crash exception just before the Nth one — at
    that point nothing the interrupted operation meant to persist is
    durable yet.  [None] uninstalls. *)

val set_tear : t -> (int -> bool) option -> unit
(** Install a torn-write decision function for the next {!crash}: given the
    unit-aligned offset of a media write unit holding unpersisted stores,
    return [true] to keep the new (unpersisted) bytes of that unit and
    [false] to revert them.  Decisions are memoised per unit within one
    crash.  [None] restores revert-everything semantics. *)

val tear : t -> (int -> bool) option
(** Currently installed tear function (the value log consults it so that a
    torn crash truncates its open batch at the same granularity). *)

val pending_ranges : t -> (int * int) list
(** Offsets and lengths of currently unpersisted stores (for tests). *)

(** {1 Media faults}

    Silent-corruption model, complementing the crash model: a {e poisoned}
    media write unit models an uncorrectable media error (any load touching
    it returns poison rather than data), and {!flip_bit} models bit rot that
    ECC missed (the load succeeds and returns wrong bytes — only a software
    checksum can catch it).  Poison is keyed by unit-aligned offset and does
    not require the range to be materialized, so accounting-only value-log
    addresses can be poisoned too.  Poison survives {!crash}; it is cleared
    by {!dealloc}, by an explicit {!clear_poison}, or by a persist that
    rewrites the whole unit (re-ECC on full-line write). *)

val inject_poison : t -> off:int -> len:int -> unit
(** Poison every media write unit intersecting [off, off+len). *)

val clear_poison : t -> off:int -> len:int -> unit

val poisoned_in : t -> off:int -> len:int -> bool
(** Does any poisoned unit intersect the range?  Read paths consult this to
    decide whether a load would have returned poison. *)

val poisoned_units : t -> int
(** Number of currently poisoned units (for stats and tests). *)

val flip_bit : t -> off:int -> bit:int -> unit
(** Flip bit [bit land 7] of the materialized byte at [off] — undetectable
    at the device level by design.  Raises [Invalid_argument] if [off] is
    outside the allocated byte space. *)
