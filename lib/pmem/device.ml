type read_hint = Random | Adjacent | Bulk

type pending = { p_off : int; p_undo : Bytes.t }

(* Read-side service as a leaky bucket: [backlog] is outstanding service
   time, drained at rate 1 (one service-ns per simulated ns).  A read waits
   only for backlog beyond a small burst allowance, so concurrent threads
   interleave (the device pipelines reads) while sustained oversubscription
   still throttles to the aggregate random-read rate.  A plain FIFO server
   would be wrong for reads: the discrete-event scheduler runs a whole
   multi-access operation atomically, and its later accesses would
   head-of-line-block every other thread. *)
type server = { mutable backlog : float; mutable last : float }

let burst_allowance_ns = 3_000.0

(* Writes use the same bucket shape with a small elastic buffer (the iMC's
   write-pending queue): a writer stalls for the backlog beyond that
   capacity, so write floods self-throttle to the media rate — the
   back-pressure that bounds Fig. 16's read-tail spikes.  Crucially the
   wait is NOT deducted from the backlog (the waiting writer's own later
   arrivals leak it through elapsed time); deducting it would let N
   concurrent writers drain the shared bucket N times too fast. *)
let wpq_cap_ns = 6_000.0

let leak srv ~now =
  let elapsed = Float.max 0.0 (now -. srv.last) in
  srv.backlog <- Float.max 0.0 (srv.backlog -. elapsed);
  srv.last <- Float.max srv.last now

let serve srv ~now ~occupancy ~allowance =
  leak srv ~now;
  let wait = Float.max 0.0 (srv.backlog +. occupancy -. allowance) in
  srv.backlog <- srv.backlog +. occupancy;
  wait

type t = {
  prof : Cost_model.profile;
  mutable mem : Bytes.t;
  mutable brk : int;
  st : Stats.t;
  mutable pending : pending list; (* newest first *)
  read_srv : server;
  write_srv : server;
  mutable threads : int;
  mutable persist_hook : (unit -> unit) option;
  mutable tear : (int -> bool) option;
  poison : (int, unit) Hashtbl.t; (* unit-aligned offsets with media errors *)
}

let create ?(capacity = 4 * 1024 * 1024) prof =
  { prof;
    mem = Bytes.make capacity '\000';
    brk = 0;
    st = Stats.create ();
    pending = [];
    read_srv = { backlog = 0.0; last = 0.0 };
    write_srv = { backlog = 0.0; last = 0.0 };
    threads = 1;
    persist_hook = None;
    tear = None;
    poison = Hashtbl.create 8 }

let profile t = t.prof
let stats t = t.st

let set_persist_hook t hook = t.persist_hook <- hook
let set_tear t f = t.tear <- f
let tear t = t.tear

(* Fired at the START of every persist-class operation, so a hook that
   raises models a crash just before the Nth durable write: everything
   the operation was about to make durable is still volatile. *)
let fire_persist_hook t =
  match t.persist_hook with None -> () | Some hook -> hook ()
let set_active_threads t n = t.threads <- max 1 n
let active_threads t = t.threads

let grow_to t needed =
  let cap = ref (Bytes.length t.mem) in
  while !cap < needed do
    cap := !cap * 2
  done;
  if !cap > Bytes.length t.mem then begin
    let bigger = Bytes.make !cap '\000' in
    Bytes.blit t.mem 0 bigger 0 t.brk;
    t.mem <- bigger
  end

let align_up v unit = (v + unit - 1) / unit * unit

let alloc t len =
  let off = align_up t.brk t.prof.Cost_model.write_unit in
  grow_to t (off + len);
  t.brk <- off + len;
  t.st.Stats.live_bytes <- t.st.Stats.live_bytes +. float_of_int len;
  off

(* Media faults.  A poisoned write unit models an uncorrectable media error:
   any load touching it returns poison instead of data.  The registry is
   keyed by unit-aligned offset and is independent of the materialized byte
   space, so accounting-only ranges (the value log's virtual addresses) can
   be poisoned too.  Poison is damage to the media, not volatile state: it
   survives [crash] and is cleared only by rewriting the whole unit
   ([charge_persist_range] with full coverage) or freeing the range. *)

let iter_units t ~off ~len f =
  if len > 0 then begin
    let unit = t.prof.Cost_model.write_unit in
    let u0 = off / unit and u1 = (off + len - 1) / unit in
    for u = u0 to u1 do
      f (u * unit)
    done
  end

let inject_poison t ~off ~len =
  iter_units t ~off ~len (fun u -> Hashtbl.replace t.poison u ())

let clear_poison t ~off ~len =
  if Hashtbl.length t.poison > 0 then
    iter_units t ~off ~len (fun u -> Hashtbl.remove t.poison u)

let poisoned_in t ~off ~len =
  Hashtbl.length t.poison > 0
  &&
  let hit = ref false in
  iter_units t ~off ~len (fun u -> if Hashtbl.mem t.poison u then hit := true);
  !hit

let poisoned_units t = Hashtbl.length t.poison

let flip_bit t ~off ~bit =
  if off < 0 || off >= t.brk then invalid_arg "Device.flip_bit";
  let b = Char.code (Bytes.get t.mem off) in
  Bytes.set t.mem off (Char.chr (b lxor (1 lsl (bit land 7))))

let dealloc t ~off ~len =
  clear_poison t ~off ~len;
  t.st.Stats.live_bytes <- t.st.Stats.live_bytes -. float_of_int len

let used_bytes t = t.st.Stats.live_bytes

let queue_read t clock ~occupancy ~latency =
  let now = Clock.now clock in
  let rwait =
    serve t.read_srv ~now ~occupancy ~allowance:burst_allowance_ns
  in
  (* reads have priority over queued writes but still wait for the units in
     flight: bounded pressure from the write queue *)
  leak t.write_srv ~now;
  let wpressure = Float.min t.write_srv.backlog wpq_cap_ns in
  let wait = Float.max rwait wpressure in
  t.st.Stats.read_wait_ns <- t.st.Stats.read_wait_ns +. wait;
  Clock.advance clock (wait +. latency)

let queue_write t clock ~occupancy ~latency =
  let wait =
    serve t.write_srv ~now:(Clock.now clock) ~occupancy ~allowance:wpq_cap_ns
  in
  t.st.Stats.write_wait_ns <- t.st.Stats.write_wait_ns +. wait;
  Clock.advance clock (wait +. latency)

let read_bw t =
  t.prof.Cost_model.read_bw_gbps *. Cost_model.read_bw_scale ~threads:t.threads

let write_bw t =
  t.prof.Cost_model.write_bw_gbps
  *. Cost_model.write_bw_scale ~threads:t.threads

(* Stores: copied into the byte space immediately, with an undo record so a
   crash before [persist] can revert them.  Only CPU copy cost is charged;
   the media cost is charged at persist time. *)

let write_bytes t clock ~off src =
  let len = Bytes.length src in
  if len > 0 then begin
    grow_to t (off + len);
    let undo = Bytes.sub t.mem off len in
    Bytes.blit src 0 t.mem off len;
    t.pending <- { p_off = off; p_undo = undo } :: t.pending;
    t.st.Stats.write_ops <- t.st.Stats.write_ops + 1;
    Clock.advance clock
      (Cost_model.cpu_op_ns /. 4.0
      +. (Cost_model.memcpy_ns_per_byte *. float_of_int len))
  end

let write_u64 t clock ~off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write_bytes t clock ~off b

let intersects p ~off ~len =
  let plen = Bytes.length p.p_undo in
  p.p_off < off + len && off < p.p_off + plen

let charge_persist_range t clock ~off ~len =
  let unit = t.prof.Cost_model.write_unit in
  let span = Cost_model.aligned_span ~unit ~off ~len in
  (* Edge units not fully covered by the write require a media-level
     read-modify-write. *)
  let head_partial = off mod unit <> 0 in
  let tail_partial = (off + len) mod unit <> 0 in
  let covered_partial_twice =
    (* whole range inside a single unit: only one RMW *)
    head_partial && tail_partial && span = unit
  in
  let rmw_units =
    (if head_partial then 1 else 0)
    + (if tail_partial && not covered_partial_twice then 1 else 0)
  in
  let rmw_bytes = rmw_units * unit in
  t.st.Stats.user_write_bytes <-
    t.st.Stats.user_write_bytes +. float_of_int len;
  t.st.Stats.media_write_bytes <-
    t.st.Stats.media_write_bytes +. float_of_int span;
  t.st.Stats.rmw_read_bytes <-
    t.st.Stats.rmw_read_bytes +. float_of_int rmw_bytes;
  t.st.Stats.media_read_bytes <-
    t.st.Stats.media_read_bytes +. float_of_int rmw_bytes;
  t.st.Stats.persist_ops <- t.st.Stats.persist_ops + 1;
  if rmw_bytes > 0 then begin
    let occ = float_of_int rmw_bytes /. read_bw t in
    queue_read t clock ~occupancy:occ ~latency:t.prof.Cost_model.read_latency_ns
  end;
  (* rewriting a whole unit re-ECCs it: fully covered units are healed *)
  if Hashtbl.length t.poison > 0 then
    iter_units t ~off ~len (fun u ->
        if off <= u && off + len >= u + unit then Hashtbl.remove t.poison u);
  let occupancy = float_of_int span /. write_bw t in
  (* service time lives in the bucket (the serve wait covers it under
     contention); the caller sees only the post-fence latency *)
  queue_write t clock ~occupancy ~latency:t.prof.Cost_model.write_latency_ns

let persist t clock ~off ~len =
  if len > 0 then begin
    fire_persist_hook t;
    charge_persist_range t clock ~off ~len;
    t.pending <- List.filter (fun p -> not (intersects p ~off ~len)) t.pending
  end

let read_cost t clock ~len ~hint =
  let prof = t.prof in
  t.st.Stats.read_ops <- t.st.Stats.read_ops + 1;
  t.st.Stats.media_read_bytes <-
    t.st.Stats.media_read_bytes +. float_of_int len;
  match hint with
  | Random ->
    queue_read t clock ~occupancy:prof.Cost_model.random_read_occupancy_ns
      ~latency:prof.Cost_model.read_latency_ns
  | Adjacent ->
    (* Same media line as the previous access: served from the on-DIMM
       buffer / CPU cache; no device occupancy. *)
    Clock.advance clock (prof.Cost_model.read_latency_ns *. 0.2)
  | Bulk ->
    let occ = float_of_int len /. read_bw t in
    queue_read t clock ~occupancy:occ ~latency:prof.Cost_model.read_latency_ns

let read_u64 t clock ~off ~hint =
  read_cost t clock ~len:8 ~hint;
  Bytes.get_int64_le t.mem off

let read_bytes t clock ~off ~len ~hint =
  read_cost t clock ~len ~hint;
  Bytes.sub t.mem off len

(* Accounting-only paths. *)

let charge_append t clock ~len =
  fire_persist_hook t;
  t.st.Stats.user_write_bytes <-
    t.st.Stats.user_write_bytes +. float_of_int len;
  t.st.Stats.media_write_bytes <-
    t.st.Stats.media_write_bytes +. float_of_int len;
  t.st.Stats.persist_ops <- t.st.Stats.persist_ops + 1;
  let occupancy = float_of_int len /. write_bw t in
  queue_write t clock ~occupancy ~latency:t.prof.Cost_model.write_latency_ns

let charge_write_random t clock ~len =
  fire_persist_hook t;
  (* Model an isolated store at an arbitrary address: worst-case alignment. *)
  charge_persist_range t clock ~off:1 ~len

let charge_write_at t clock ~off ~len =
  if len > 0 then begin
    fire_persist_hook t;
    charge_persist_range t clock ~off ~len
  end

let charge_read_bytes t clock ~len ~hint = read_cost t clock ~len ~hint

let quiesce_at t =
  Float.max
    (t.write_srv.last +. t.write_srv.backlog)
    (t.read_srv.last +. t.read_srv.backlog)

let peek_u64 t ~off = Bytes.get_int64_le t.mem off
let peek_bytes t ~off ~len = Bytes.sub t.mem off len

(* Crash semantics: unpersisted stores normally revert wholesale.  With a
   tear function installed, survival is decided per media write unit —
   modelling the 256 B (write_unit) atomicity of the media: a unit either
   reached the media before power failed or it did not.  The decision is
   memoised per unit so overlapping pendings see one coherent outcome;
   reverted units restore undos newest-first (as in the untorn path) so the
   final bytes are the oldest pre-image. *)
let crash t =
  let revert_unit =
    match t.tear with
    | None -> fun _ -> true
    | Some keep ->
      let memo = Hashtbl.create 16 in
      fun u ->
        (match Hashtbl.find_opt memo u with
        | Some r -> r
        | None ->
          let r = not (keep u) in
          Hashtbl.add memo u r;
          r)
  in
  let unit = t.prof.Cost_model.write_unit in
  List.iter
    (fun p ->
      let len = Bytes.length p.p_undo in
      let u0 = p.p_off / unit and u1 = (p.p_off + len - 1) / unit in
      for u = u0 to u1 do
        if revert_unit (u * unit) then begin
          let lo = max p.p_off (u * unit) in
          let hi = min (p.p_off + len) ((u + 1) * unit) in
          Bytes.blit p.p_undo (lo - p.p_off) t.mem lo (hi - lo)
        end
      done)
    t.pending;
  t.pending <- []

let pending_ranges t =
  List.map (fun p -> (p.p_off, Bytes.length p.p_undo)) t.pending
