(** CRC32C (Castagnoli) — per-record checksums for durable artifacts.

    Streaming API in zlib style: every function takes the running checksum
    and returns the extended one, so a record checksum can be folded over a
    header encoding plus a payload without materializing either.  Start from
    {!empty}.  The time cost is the caller's business: charge
    [Cost_model.crc_ns_per_byte] per covered byte on the relevant clock. *)

val empty : int32
(** Checksum of the empty string (the fold seed). *)

val bytes : ?crc:int32 -> bytes -> int32
(** [bytes ~crc b] extends [crc] (default {!empty}) with all of [b]. *)

val update : int32 -> bytes -> off:int -> len:int -> int32
(** Extend with a sub-range. *)

val int64 : int32 -> int64 -> int32
(** Extend with the 8 little-endian bytes of [v]. *)

val int : int32 -> int -> int32
(** [int crc v] = [int64 crc (Int64.of_int v)]. *)
