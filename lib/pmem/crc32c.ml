(* Software CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the
   checksum real Pmem stores use because SSE4.2 computes it at ~1 B/cycle.
   The simulation only needs the value (for integrity tests) and the cost
   (charged by callers via [Cost_model.crc_ns_per_byte]); a table-driven
   byte-at-a-time implementation is plenty. *)

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         c :=
           if Int32.logand !c 1l <> 0l then
             Int32.logxor 0x82F63B78l (Int32.shift_right_logical !c 1)
           else Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let empty = 0l

let feed_byte t c b =
  let idx = Int32.to_int (Int32.logand (Int32.logxor c (Int32.of_int b)) 0xFFl) in
  Int32.logxor t.(idx) (Int32.shift_right_logical c 8)

let update crc buf ~off ~len =
  let t = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = off to off + len - 1 do
    c := feed_byte t !c (Char.code (Bytes.get buf i))
  done;
  Int32.lognot !c

let bytes ?(crc = empty) b = update crc b ~off:0 ~len:(Bytes.length b)

let int64 crc v =
  let t = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = 0 to 7 do
    let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
    c := feed_byte t !c b
  done;
  Int32.lognot !c

let int crc v = int64 crc (Int64.of_int v)
