(** Calibrated cost model for the simulated devices.

    Constants come from the paper itself and from the empirical Optane study
    it relies on (Yang et al., FAST'20): Optane random read latency is about
    3x DRAM, the media write unit is 256 B, sequential read bandwidth of the
    two interleaved DIMMs is around 12 GB/s, and sustained write bandwidth is
    a few GB/s with an iMC-contention decline beyond ~8 threads.  Absolute
    values only need to be plausible; the experiments report ratios and
    shapes. *)

type profile = {
  name : string;
  read_latency_ns : float;
      (** latency of one small random read (a cache-miss load, or an IO on
          the SSD profiles) *)
  write_latency_ns : float;
      (** visible latency of a persisted small write (ntstore + sfence, or an
          IO on the SSD profiles) *)
  read_bw_gbps : float;  (** peak aggregate read bandwidth, GB/s *)
  write_bw_gbps : float; (** peak aggregate media write bandwidth, GB/s *)
  write_unit : int;
      (** media write granularity in bytes; internal writes smaller than this
          are read-modify-write amplified (256 for Optane) *)
  random_read_occupancy_ns : float;
      (** how long one random access occupies the device's internal
          read-service resource; bounds aggregate random-read IOPS *)
}

val optane : profile
val dram : profile
val sata_ssd : profile
val nvme_ssd : profile

(** {1 CPU and DRAM cost constants (simulated ns)} *)

val dram_read_ns : float
(** One random (cache-missing) DRAM access. *)

val dram_hit_ns : float
(** An access expected to hit cache (adjacent slot, hot metadata). *)

val hash_ns : float
(** Computing one 64-bit hash. *)

val key_compare_ns : float

val bloom_check_ns : float
(** Probing one Bloom filter (a few cache lines + hashing). *)

val bloom_build_per_key_ns : float
(** Inserting one key while constructing a Bloom filter; the paper blames
    this CPU cost for Pmem-LSM-F's low put throughput. *)

val memcpy_ns_per_byte : float
(** Streaming copy cost per byte (used for batching, table writes). *)

val crc_ns_per_byte : float
(** CRC32C computation per byte (hardware-assisted rate, slightly above a
    streaming copy); charged wherever a record checksum is computed or
    verified. *)

val cpu_op_ns : float
(** Fixed per-request software overhead (dispatch, branch, allocation). *)

val sort_per_key_ns : float
(** Per-key cost of comparison-based merge/sort during compaction; hash-based
    stores avoid it but NoveLSM/MatrixKV pay it. *)

val skiplist_probe_ns : float
(** One pointer chase in a skiplist level (NoveLSM's in-Pmem MemTable). *)

val rehash_per_key_ns : float
(** Per-key cost of a sequential table rehash (Dram-Hash doubling); the
    whole rehash stalls the triggering insert, producing the multi-second
    worst-case put latencies of Table 2. *)

val scan_per_entry_ns : float
(** Per-entry cost of sequentially scanning an in-DRAM table (the ABI-fed
    last-level compaction of Fig. 8). *)

val mph_build_per_key_ns : float
(** Per-key bookkeeping of a minimal-perfect-hash construction (bucket
    partition, occupancy tracking); the displacement search itself is
    charged per attempt at [hash_ns] + [dram_hit_ns]. *)

(** {1 Thread scaling} *)

val read_bw_scale : threads:int -> float
(** Multiplier on [read_bw_gbps] when [threads] threads drive the device. *)

val write_bw_scale : threads:int -> float
(** Multiplier on [write_bw_gbps]; rises to 1.0 around 4-8 threads, then
    declines (iMC contention, Fig. 1). *)

val aligned_span : unit:int -> off:int -> len:int -> int
(** [aligned_span ~unit ~off ~len] is the number of media bytes actually
    written when persisting [len] user bytes at [off]: the [unit]-aligned
    span covering the range (0 when [len = 0]). *)
