type profile = {
  name : string;
  read_latency_ns : float;
  write_latency_ns : float;
  read_bw_gbps : float;
  write_bw_gbps : float;
  write_unit : int;
  random_read_occupancy_ns : float;
}

let optane =
  { name = "optane";
    read_latency_ns = 250.0;
    write_latency_ns = 90.0;
    read_bw_gbps = 12.0;
    write_bw_gbps = 4.0;
    write_unit = 256;
    random_read_occupancy_ns = 18.0 }

let dram =
  { name = "dram";
    read_latency_ns = 80.0;
    write_latency_ns = 80.0;
    read_bw_gbps = 30.0;
    write_bw_gbps = 30.0;
    write_unit = 64;
    random_read_occupancy_ns = 2.0 }

let sata_ssd =
  { name = "sata-ssd";
    read_latency_ns = 90_000.0;
    write_latency_ns = 70_000.0;
    read_bw_gbps = 0.5;
    write_bw_gbps = 0.45;
    write_unit = 4096;
    random_read_occupancy_ns = 15_000.0 }

let nvme_ssd =
  { name = "nvme-ssd";
    read_latency_ns = 25_000.0;
    write_latency_ns = 20_000.0;
    read_bw_gbps = 3.0;
    write_bw_gbps = 2.0;
    write_unit = 4096;
    random_read_occupancy_ns = 2_000.0 }

let dram_read_ns = 80.0
let dram_hit_ns = 12.0
let hash_ns = 18.0
let key_compare_ns = 2.0
let bloom_check_ns = 110.0
let bloom_build_per_key_ns = 140.0
let memcpy_ns_per_byte = 0.04
let crc_ns_per_byte = 0.05
let cpu_op_ns = 45.0
let sort_per_key_ns = 60.0
let skiplist_probe_ns = 85.0
let rehash_per_key_ns = 5.0
let scan_per_entry_ns = 5.0
let mph_build_per_key_ns = 30.0

(* Piecewise-linear interpolation over log2(threads) through measured-shape
   anchor points at 1, 2, 4, 8, 16, 32 threads. *)
let interp anchors threads =
  let t = float_of_int (max 1 threads) in
  let x = Float.log2 t in
  let n = Array.length anchors in
  if x >= float_of_int (n - 1) then anchors.(n - 1)
  else begin
    let i = int_of_float x in
    let frac = x -. float_of_int i in
    anchors.(i) +. (frac *. (anchors.(i + 1) -. anchors.(i)))
  end

let write_anchors = [| 0.50; 0.85; 1.00; 0.96; 0.86; 0.72 |]
let read_anchors = [| 0.40; 0.70; 0.95; 1.00; 1.00; 0.95 |]

let write_bw_scale ~threads = interp write_anchors threads
let read_bw_scale ~threads = interp read_anchors threads

let aligned_span ~unit ~off ~len =
  if len <= 0 then 0
  else begin
    let first = off / unit in
    let last = (off + len - 1) / unit in
    (last - first + 1) * unit
  end
