(** Node-granularity crash hooks: the PR 2 crash model applied to a whole
    store, for the cluster layer's node failures. *)

val kill : ?tear:bool -> seed:int -> Kv_common.Store_intf.store -> unit
(** Power-fail the node's store: install a deterministic torn-write
    function (each unpersisted 256 B unit survives independently, decided
    by [seed]), run the store's real [crash] path, clear the tear.
    [tear:false] gives a clean cut at the persistence watermark. *)

val rejoin : Kv_common.Store_intf.store -> Pmem_sim.Clock.t -> float
(** Run the store's real [recover] path on the given clock; returns the
    simulated restart time in ns.  The caller (cluster membership) then
    catches the node up from a peer's log. *)
