(** Crash-consistency checker.

    Drives a store and an in-DRAM oracle through a randomized, seeded
    workload; on an injected crash it recovers the store, prunes the oracle
    at the post-crash [Vlog.persisted] watermark, and verifies:

    - no acknowledged put whose log record persisted is lost;
    - no deleted key is resurrected;
    - [check_invariants] holds after recovery;
    - the store keeps serving a further workload consistently;
    - optionally, recovery itself is idempotent when crashed partway.

    The single operation interrupted mid-flight by the crash is ambiguous
    (its record may or may not have reached the persisted prefix) and is
    exempt from checks until a later completed write resolves it.

    A crash inside a grouped write ([write_batch]) leaves each key of
    the group ambiguous for the state sweep, but additionally asserts
    the batched-ack order directly: among the group's fresh keys,
    post-recovery survivors must form a prefix of the group — a store
    that keeps a middle op while losing its predecessor fails. *)

type outcome = {
  store_name : string;
  seed : int;
  crashed : bool;  (** the armed crash actually fired *)
  crash_site : Kv_common.Fault_point.site option;
  crash_step : int;  (** workload step during which the crash fired *)
  recovery_crashed : bool;
      (** a second crash was injected during recovery and survived *)
  violations : string list;  (** empty = the case passed *)
}

val run_case :
  make:(unit -> Kv_common.Store_intf.store) ->
  ?ops:int ->
  ?universe:int ->
  ?crash_site:Kv_common.Fault_point.site ->
  ?crash_after:int ->
  ?recovery_crash_after:int ->
  ?tear:bool ->
  ?post_ops:int ->
  seed:int ->
  unit ->
  outcome
(** One checker case.  [crash_site] restricts the crash to a fault-point
    site; [crash_after] skips that many matching persist events first (so
    [crash_after:0] crashes at the site's first durable write).  With
    neither, the run is a clean oracle-validated workload.
    [recovery_crash_after] additionally crashes recovery at its n-th
    persist event and recovers again.  [tear] (default on) makes each 256 B
    unit of unpersisted data survive the crash independently.  Everything
    is deterministic in [seed]. *)

val profile :
  make:(unit -> Kv_common.Store_intf.store) ->
  ?ops:int ->
  ?universe:int ->
  seed:int ->
  unit ->
  (Kv_common.Fault_point.site * int) list
(** Persist-event counts per site for the identical (crash-free) workload —
    the enumeration of available crash points for [run_case]. *)
