(* Deliberately broken stores used to prove the checker has teeth: each
   mutant miscompiles one recovery rule, and test_fault asserts the sweep
   flags it. *)

module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Robinhood = Kv_common.Robinhood
module Fault_point = Kv_common.Fault_point

(* A Dram-Hash clone whose recovery replays the persisted log NEWEST-first,
   so the oldest record of each key wins: stale values reappear and deleted
   keys resurrect whenever a key has several persisted records. *)
let broken_replay () : Kv_common.Store_intf.store =
  let dev = Device.create Pmem_sim.Cost_model.optane in
  let vlog = Vlog.create dev in
  let index = ref (Robinhood.create ()) in
  (module struct
    let name = "Broken-Replay"

    let write clock key spec =
      let vlen = Kv_common.Store_intf.spec_vlen spec in
      let loc = Vlog.append vlog clock key ~vlen in
      Robinhood.put !index clock key loc

    let write_batch = Kv_common.Store_intf.sequential_write_batch write

    let read clock key : Kv_common.Store_intf.read_result =
      match Robinhood.get !index clock key with
      | Some loc when not (Types.is_tombstone loc) -> (
        match Vlog.read vlog clock loc with
        | Ok (k, _) when Int64.equal k key ->
          { loc = Some loc; stage = Kv_common.Store_intf.Index; value = None }
        | Ok _ | Error `Corrupt ->
          { loc = None; stage = Kv_common.Store_intf.Corrupt; value = None })
      | Some _ | None ->
        { loc = None; stage = Kv_common.Store_intf.Miss; value = None }

    let delete clock key =
      let _loc = Vlog.append vlog clock key ~vlen:(-1) in
      ignore (Robinhood.delete !index clock key)

    let scan clock ~start ~limit =
      let module Scan = Kv_common.Scan in
      let snap = Scan.of_iter clock ~start (fun f -> Robinhood.iter !index f) in
      fst (Scan.take (Scan.live snap) ~limit)

    let flush clock = Vlog.flush vlog clock
    let maintenance _ = ()

    let crash () =
      Device.crash dev;
      Vlog.crash vlog;
      index := Robinhood.create ()

    let recover clock =
      Fault_point.with_site Fault_point.Recovery @@ fun () ->
      let entries = ref [] in
      Vlog.iter_range vlog clock ~lo:(Vlog.head vlog)
        ~hi:(Vlog.persisted vlog) (fun loc key vlen ->
          entries := (loc, key, vlen) :: !entries);
      (* BUG: [entries] is already newest-first; a correct replay would
         List.rev it so later records overwrite earlier ones *)
      List.iter
        (fun (loc, key, vlen) ->
          if vlen < 0 then ignore (Robinhood.delete !index clock key)
          else Robinhood.put !index clock key loc)
        !entries

    let check_invariants () = Ok ()
    let scrub _ ~budget_bytes:_ = Kv_common.Store_intf.empty_scrub_report
    let health () = Kv_common.Store_intf.Healthy
    let shard_degraded _ = false
    let dram_footprint () = Robinhood.footprint_bytes !index
    let pmem_footprint () = Device.used_bytes dev
    let device = dev
    let vlog = vlog
    let fault_points = Fault_point.[ Foreground; Recovery ]
  end)
