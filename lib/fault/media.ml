(* Seeded media-fault sweep: the silent-corruption counterpart to the
   crash {!Sweep}.  For every store it injects bit rot and poisoned media
   units into persisted value-log records and asserts the integrity
   contract: a read of an affected key answers either the correct value or
   an explicit [Corrupt] — never wrong data and never a silent miss.
   Stores that declare the [Scrub] fault site additionally must detect
   every injected log fault in one full-budget scrub pass, contain the
   affected keys, and serve them again after a superseding write. *)

module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Store_intf = Kv_common.Store_intf
module Fault_point = Kv_common.Fault_point
module Rng = Workload.Rng
module Keyspace = Workload.Keyspace

type verdict = {
  m_store : string;
  m_seeds : int list;
  m_injected : int;       (** faults injected across all seeds *)
  m_corrupt_reads : int;  (** reads that answered an explicit [Corrupt] *)
  m_scrub_detected : int; (** scrub-pass detections (scrubbing stores) *)
  m_recovered : int;      (** victims serving again after a fresh write *)
  m_violations : string list;
}

let passed v = v.m_violations = []

(* Seeded in-place shuffle (Fisher–Yates) so victim choice is reproducible. *)
let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let run_seed ~make ~ops ~universe ~faults ~seed ~violations =
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let store = make () in
  let vlog = Store_intf.vlog store in
  let dev = Store_intf.device store in
  let rng = Rng.create ~seed in
  let clock = Clock.create () in
  let scratch = Clock.create () in
  (* newest completed op per key: (log location, is_delete) *)
  let newest : (Types.key, int * bool) Hashtbl.t = Hashtbl.create universe in
  for _ = 1 to ops do
    let key = Keyspace.key_of_index (Rng.int rng universe) in
    match Rng.int rng 10 with
    | 0 ->
      Store_intf.delete store clock key;
      Hashtbl.replace newest key (Vlog.length vlog - 1, true)
    | _ ->
      Store_intf.write store clock key (Store_intf.Sized 24);
      Hashtbl.replace newest key (Vlog.length vlog - 1, false)
  done;
  Store_intf.flush store clock;
  (* victims: live keys whose newest record is persisted *)
  let live =
    Hashtbl.fold
      (fun key (loc, deleted) acc ->
        if
          (not deleted) && loc >= Vlog.head vlog && loc < Vlog.persisted vlog
        then (key, loc) :: acc
        else acc)
      newest []
    |> List.sort compare |> Array.of_list
  in
  shuffle rng live;
  let nvict = min faults (Array.length live) in
  let victims = Array.sub live 0 nvict in
  Array.iteri
    (fun i (_, loc) ->
      if i land 1 = 0 then begin
        (* uncorrectable media error over the record's units *)
        let off, len = Vlog.entry_range vlog loc in
        Device.inject_poison dev ~off ~len
      end
      else
        (* bit rot ECC missed: only the record checksum can catch it *)
        Vlog.corrupt_entry vlog loc)
    victims;
  (* poison covers whole 256 B units, so records adjacent to a victim can
     be collateral damage: classify every key by whether its newest record
     still verifies, not by victim membership *)
  let corrupt_reads = ref 0 in
  let check_key ~context key =
    let affected =
      match Hashtbl.find_opt newest key with
      | Some (loc, false)
        when loc >= Vlog.head vlog && loc < Vlog.persisted vlog ->
        not (Vlog.intact vlog scratch loc)
      | _ -> false
    in
    let expect_present =
      match Hashtbl.find_opt newest key with
      | Some (_, deleted) -> not deleted
      | None -> false
    in
    let r = Store_intf.read store clock key in
    if affected then begin
      match r.Store_intf.loc with
      | Some _ ->
        violate "%s: seed %d key %Ld: served a corrupted record" context seed
          key
      | None ->
        if r.Store_intf.stage = Store_intf.Corrupt then incr corrupt_reads
        else
          violate
            "%s: seed %d key %Ld: corruption surfaced as a silent miss"
            context seed key
    end
    else if expect_present && r.Store_intf.loc = None then
      violate "%s: seed %d key %Ld: healthy key lost" context seed key
    else if (not expect_present) && r.Store_intf.loc <> None then
      violate "%s: seed %d key %Ld: deleted key resurrected" context seed key
  in
  for i = 0 to universe - 1 do
    check_key ~context:"post-inject" (Keyspace.key_of_index i)
  done;
  (* scrubbing stores: one unbounded pass must find every injected log
     fault, and a superseding write must bring each victim back *)
  let scrub_detected = ref 0 in
  let recovered = ref 0 in
  if List.mem Fault_point.Scrub (Store_intf.fault_points store) then begin
    let report = Store_intf.scrub store clock ~budget_bytes:max_int in
    scrub_detected := report.Store_intf.sr_detected;
    if report.Store_intf.sr_detected < nvict then
      violate
        "scrub: seed %d detected %d of %d injected log faults" seed
        report.Store_intf.sr_detected nvict;
    for i = 0 to universe - 1 do
      check_key ~context:"post-scrub" (Keyspace.key_of_index i)
    done;
    (match Store_intf.check_invariants store with
    | Ok () -> ()
    | Error msg -> violate "post-scrub: seed %d invariant violated: %s" seed msg);
    Array.iter
      (fun (key, _) ->
        Store_intf.write store clock key (Store_intf.Sized 24);
        let r = Store_intf.read store clock key in
        if r.Store_intf.loc <> None then incr recovered
        else
          violate
            "post-rewrite: seed %d key %Ld still unreadable after a fresh \
             write"
            seed key)
      victims
  end;
  (nvict, !corrupt_reads, !scrub_detected, !recovered)

let run_store ~name ~make ?(seeds = [ 1; 11; 101 ]) ?(ops = 3_000)
    ?(universe = 300) ?(faults = 12) () =
  let violations = ref [] in
  let injected = ref 0 in
  let corrupt_reads = ref 0 in
  let scrub_detected = ref 0 in
  let recovered = ref 0 in
  List.iter
    (fun seed ->
      let n, c, d, r =
        run_seed ~make ~ops ~universe ~faults ~seed ~violations
      in
      injected := !injected + n;
      corrupt_reads := !corrupt_reads + c;
      scrub_detected := !scrub_detected + d;
      recovered := !recovered + r)
    seeds;
  { m_store = name;
    m_seeds = seeds;
    m_injected = !injected;
    m_corrupt_reads = !corrupt_reads;
    m_scrub_detected = !scrub_detected;
    m_recovered = !recovered;
    m_violations = List.rev !violations }

(* ChameleonDB-specific artifact faults (table runs and manifest floor
   records are its own formats, so this leg drives the concrete store):
   a poisoned run must fail probes closed and be rebuilt from the log by
   scrub; a poisoned floor record must push recovery to its conservative
   full-log replay, then be repaired in place. *)
let run_chameleon_artifacts ?(seed = 7) ?(ops = 4_000) ?(universe = 300) () =
  let module Store = Chameleondb.Store in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let db = Store.create () in
  let dev = Store.device db in
  let rng = Rng.create ~seed in
  let clock = Clock.create () in
  let present : (Types.key, bool) Hashtbl.t = Hashtbl.create universe in
  for _ = 1 to ops do
    let key = Keyspace.key_of_index (Rng.int rng universe) in
    if Rng.int rng 10 = 0 then begin
      Store.delete db clock key;
      Hashtbl.replace present key false
    end
    else begin
      Store.write db clock key (Store_intf.Sized 24);
      Hashtbl.replace present key true
    end
  done;
  Store.flush_all db clock;
  Store.wait_background db clock;
  let sweep context =
    for i = 0 to universe - 1 do
      let key = Keyspace.key_of_index i in
      let expect =
        Option.value ~default:false (Hashtbl.find_opt present key)
      in
      let r = Store.read db clock key in
      if r.Store_intf.stage = Store_intf.Corrupt then
        violate "%s: key %Ld answered Corrupt" context key
      else if expect <> (r.Store_intf.loc <> None) then
        violate "%s: key %Ld expected %s" context key
          (if expect then "present" else "absent")
    done
  in
  (* table-run fault: poison one persistent run, then scrub-repair *)
  (match
     Array.find_map
       (fun sh ->
         match Chameleondb.Shard.persistent_tables sh with
         | tbl :: _ -> Some tbl
         | [] -> None)
       (Store.shards db)
   with
  | None -> violate "artifacts: no persistent run to corrupt (ops too low?)"
  | Some tbl ->
    let off, len = Kv_common.Linear_table.media_range tbl in
    Device.inject_poison dev ~off ~len:(min len 256);
    let report = Store.scrub db clock ~budget_bytes:max_int in
    if report.Store_intf.sr_detected < 1 then
      violate "artifacts: poisoned run not detected by scrub";
    if report.Store_intf.sr_repaired < 1 then
      violate "artifacts: poisoned run not repaired by scrub";
    if Store.health db <> Store_intf.Healthy then
      violate "artifacts: store not healthy after scrub repair";
    sweep "post-run-repair");
  (* manifest floor fault: corrupt shard 0's record, crash, recover —
     recovery must fall back to the conservative full-log replay — then
     scrub repairs the record in place *)
  let m = Store.manifest db in
  let off, len = Chameleondb.Manifest.floor_range m ~shard:0 in
  Device.inject_poison dev ~off ~len;
  Store.crash db;
  ignore (Store.recover db clock);
  sweep "post-floor-fault recovery";
  let report = Store.scrub db clock ~budget_bytes:max_int in
  if report.Store_intf.sr_detected < 1 then
    violate "artifacts: corrupt floor record not detected by scrub";
  if not (Chameleondb.Manifest.floor_intact m ~shard:0) then
    violate "artifacts: floor record not repaired by scrub";
  sweep "post-floor-repair";
  (match Store.check_invariants db with
  | Ok () -> ()
  | Error msg -> violate "artifacts: invariant violated: %s" msg);
  List.rev !violations
