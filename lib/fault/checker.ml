module Clock = Pmem_sim.Clock
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Store_intf = Kv_common.Store_intf
module Fault_point = Kv_common.Fault_point
module Rng = Workload.Rng
module Keyspace = Workload.Keyspace

type outcome = {
  store_name : string;
  seed : int;
  crashed : bool;
  crash_site : Fault_point.site option;
  crash_step : int;
  recovery_crashed : bool;
  violations : string list;
}

(* In-DRAM oracle: per-key history of (log location, is_delete), newest
   first, recorded only for operations that COMPLETED before the crash.
   Pruning at the post-crash [Vlog.persisted] watermark yields exactly the
   state an honest store must expose: an acknowledged op whose record made
   it below the watermark is durable; one above it is legitimately lost. *)
type oracle = (Types.key, (int * bool) list) Hashtbl.t

let oracle_record (o : oracle) key loc ~deleted =
  let hist = Option.value ~default:[] (Hashtbl.find_opt o key) in
  Hashtbl.replace o key ((loc, deleted) :: hist)

let oracle_mem (o : oracle) key =
  match Hashtbl.find_opt o key with
  | Some ((_, deleted) :: _) -> not deleted
  | Some [] | None -> false

let oracle_prune (o : oracle) ~persisted =
  Hashtbl.iter
    (fun key hist ->
      Hashtbl.replace o key
        (List.filter (fun (loc, _) -> loc < persisted) hist))
    (Hashtbl.copy o)

let default_post_ops ops = ops / 4

let run_case ~make ?(ops = 4_000) ?(universe = 400) ?crash_site ?crash_after
    ?recovery_crash_after ?(tear = true) ?post_ops ~seed () =
  let store = make () in
  let name = Store_intf.name store in
  let dev = Store_intf.device store in
  let vlog = Store_intf.vlog store in
  let inj = Injector.attach dev in
  let rng = Rng.create ~seed in
  let clock = Clock.create () in
  let oracle : oracle = Hashtbl.create (2 * universe) in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let crashed = ref false in
  let crash_step = ref 0 in
  let crash_site_fired = ref None in
  let recovery_crashed = ref false in
  (* [inflight] holds the key of the single operation currently executing;
     if the crash interrupts it, that key becomes [ambiguous]: its pre- and
     post-op states are both acceptable (the append may or may not have
     persisted), so it is exempt from checks until a later COMPLETED write
     resolves it.

     A crash inside a grouped write leaves every key of the group
     individually ambiguous (a store may commit anywhere from none to all
     of them, and its commit point need not be the log append — Pmem-Hash
     commits on the slot update), but the ACK ORDER is not ambiguous:
     batched acks promise that what survives is a prefix of the group.
     [inflight_group] remembers (base, keys); on a crash mid-group the
     keys join [ambiguous] for the state sweep, and the group's fresh
     keys (no earlier history that could mask the outcome) get a direct
     suffix-only assertion after recovery: a surviving key with a lost
     predecessor fails the case. *)
  let inflight = ref [] in
  let ambiguous = ref [] in
  let inflight_group = ref None in
  let group_suffix_check = ref [] in
  let crash_with_tear () =
    if tear then Injector.set_tear inj ~seed ~keep_prob:0.5;
    Store_intf.crash store;
    Injector.clear_tear inj;
    oracle_prune oracle ~persisted:(Vlog.persisted vlog)
  in
  let recover_once () = Store_intf.recover store clock in
  (* Recovery, optionally crashing partway through it and recovering again:
     a correct store's recovery must be idempotent under its own crash. *)
  let recover () =
    match recovery_crash_after with
    | None -> recover_once ()
    | Some k -> (
      Injector.arm inj ~after:k ();
      match recover_once () with
      | () -> Injector.disarm inj
      | exception Injector.Crash_injected ->
        recovery_crashed := true;
        crash_with_tear ();
        recover_once ())
  in
  let check_key ~context key =
    if not (List.mem key !ambiguous) then begin
      let expect = oracle_mem oracle key in
      let got = (Store_intf.read store clock key).Store_intf.loc <> None in
      if expect <> got then
        violate "%s: key %Ld expected %s, store says %s" context key
          (if expect then "present" else "absent")
          (if got then "present" else "absent")
    end
  in
  (* Ordered-scan oracle: the store's scan must return exactly the live
     oracle keys >= start, in ascending order, truncated at the limit — no
     phantom, lost, duplicated, or mis-ordered keys.  When the ambiguous
     key falls inside the range its presence would shift the cut-off, so
     the check is skipped for that one verification. *)
  let check_scan ~context ~start ~limit =
    let ambiguous_in_range =
      List.exists (fun k -> Types.key_compare k start >= 0) !ambiguous
    in
    if not ambiguous_in_range then begin
      let rec firstn n = function
        | x :: tl when n > 0 -> x :: firstn (n - 1) tl
        | _ -> []
      in
      let expect =
        List.init universe Keyspace.key_of_index
        |> List.filter (fun k ->
               Types.key_compare k start >= 0 && oracle_mem oracle k)
        |> List.sort Types.key_compare
        |> firstn limit
      in
      let got = List.map fst (Store_intf.scan store clock ~start ~limit) in
      if got <> expect then
        violate "%s: scan(%Lu,%d) returned %d keys [%s], oracle expects %d [%s]"
          context start limit (List.length got)
          (String.concat ";" (List.map (Printf.sprintf "%Lu") (firstn 8 got)))
          (List.length expect)
          (String.concat ";" (List.map (Printf.sprintf "%Lu") (firstn 8 expect)))
    end
  in
  let verify_sweep ~context =
    for i = 0 to universe - 1 do
      check_key ~context (Keyspace.key_of_index i)
    done;
    (* full-range and mid-range ordered scans against the oracle *)
    check_scan ~context ~start:0L ~limit:universe;
    check_scan ~context
      ~start:(Keyspace.key_of_index (universe / 2))
      ~limit:(max 1 (universe / 8));
    match Store_intf.check_invariants store with
    | Ok () -> ()
    | Error msg -> violate "%s: invariant violated: %s" context msg
  in
  let run_op step =
    let key = Keyspace.key_of_index (Rng.int rng universe) in
    match Rng.int rng 20 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
      inflight := [ key ];
      Store_intf.write store clock key (Store_intf.Sized 8);
      oracle_record oracle key (Vlog.length vlog - 1) ~deleted:false;
      inflight := [];
      ambiguous := List.filter (fun k -> k <> key) !ambiguous
    | 7 | 8 ->
      (* grouped write through [write_batch]: acked as a unit, and a crash
         inside the group must lose a suffix only — the optimistic group
         recording in the crash handler plus the watermark prune enforce
         exactly that *)
      let n = 2 + Rng.int rng 7 in
      let keys =
        List.init n (fun _ -> Keyspace.key_of_index (Rng.int rng universe))
      in
      let base = Vlog.length vlog in
      inflight_group := Some (base, keys);
      Store_intf.write_batch store clock
        (List.map (fun k -> (k, Store_intf.Sized 8)) keys);
      inflight_group := None;
      List.iteri
        (fun i k -> oracle_record oracle k (base + i) ~deleted:false)
        keys;
      ambiguous := List.filter (fun k -> not (List.mem k keys)) !ambiguous
    | 9 | 10 ->
      inflight := [ key ];
      Store_intf.delete store clock key;
      oracle_record oracle key (Vlog.length vlog - 1) ~deleted:true;
      inflight := [];
      ambiguous := List.filter (fun k -> k <> key) !ambiguous
    | 11 | 12 ->
      check_scan
        ~context:(Printf.sprintf "step %d" step)
        ~start:key
        ~limit:(1 + Rng.int rng 16)
    | _ -> check_key ~context:(Printf.sprintf "step %d" step) key
  in
  let drive lo hi =
    let step = ref lo in
    (try
       while !step < hi do
         incr step;
         run_op !step;
         if !step mod 701 = 0 then Store_intf.flush store clock;
         if !step mod 907 = 0 then Store_intf.maintenance store clock;
         if !step mod 1103 = 0 then
           ignore (Store_intf.scrub store clock ~budget_bytes:65536)
       done
     with
    | Injector.Crash_injected ->
      crashed := true;
      crash_step := !step;
      crash_site_fired := Injector.fired_site inj;
      (match !inflight_group with
      | Some (_base, keys) ->
        (* fresh keys: no prior history and a single occurrence, so
           post-recovery presence can only come from this group *)
        group_suffix_check :=
          List.filter
            (fun k ->
              (not (Hashtbl.mem oracle k))
              && List.length (List.filter (Int64.equal k) keys) = 1)
            keys;
        ambiguous := keys;
        inflight_group := None
      | None -> ());
      ambiguous := !inflight @ !ambiguous;
      inflight := [];
      crash_with_tear ();
      recover ();
      (* batched-ack order: among the group's fresh keys, survivors must
         form a prefix — a present key after an absent one means the
         store acked (or replayed) a middle op without its predecessor *)
      (match !group_suffix_check with
      | [] -> ()
      | fresh ->
        let flags =
          List.map
            (fun k ->
              (Store_intf.read store clock k).Store_intf.loc <> None)
            fresh
        in
        let rec prefix_ok = function
          | a :: (b :: _ as tl) -> ((a || not b) && prefix_ok tl)
          | _ -> true
        in
        if not (prefix_ok flags) then
          violate
            "crash in group commit (step %d): surviving batch keys are \
             not a prefix [%s]"
            !step
            (String.concat ";"
               (List.map (fun b -> if b then "1" else "0") flags));
        group_suffix_check := []);
      verify_sweep ~context:(Printf.sprintf "post-recovery (step %d)" !step)
    | exn ->
      violate "step %d: unexpected exception %s" !step
        (Printexc.to_string exn));
    !step
  in
  (match crash_site with
  | Some site -> Injector.arm inj ~site ~after:(Option.value ~default:0 crash_after) ()
  | None -> (
    match crash_after with
    | Some after -> Injector.arm inj ~after ()
    | None -> ()));
  let reached = drive 0 ops in
  (* exercise the store after recovery: a correct store keeps serving and
     stays consistent with the (pruned) oracle *)
  if !crashed then begin
    let extra = Option.value ~default:(default_post_ops ops) post_ops in
    ignore (drive reached (reached + extra));
    verify_sweep ~context:"post-crash workload"
  end
  else begin
    (* no crash fired: still sweep so clean runs validate the oracle *)
    verify_sweep ~context:"clean run"
  end;
  Injector.detach inj;
  { store_name = name;
    seed;
    crashed = !crashed;
    crash_site = !crash_site_fired;
    crash_step = !crash_step;
    recovery_crashed = !recovery_crashed;
    violations = List.rev !violations }

(* Run the identical workload with the injector only counting persist
   events: the per-site totals enumerate every crash point a site offers. *)
let profile ~make ?(ops = 4_000) ?(universe = 400) ~seed () =
  let store = make () in
  let dev = Store_intf.device store in
  let inj = Injector.attach dev in
  Injector.observe inj;
  let rng = Rng.create ~seed in
  let clock = Clock.create () in
  for step = 1 to ops do
    let key = Keyspace.key_of_index (Rng.int rng universe) in
    (match Rng.int rng 20 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
      Store_intf.write store clock key (Store_intf.Sized 8)
    | 7 | 8 ->
      (* mirror [run_case]'s grouped-write draw so the profiled persist
         events enumerate the same crash points *)
      let n = 2 + Rng.int rng 7 in
      let keys =
        List.init n (fun _ -> Keyspace.key_of_index (Rng.int rng universe))
      in
      Store_intf.write_batch store clock
        (List.map (fun k -> (k, Store_intf.Sized 8)) keys)
    | 9 | 10 -> Store_intf.delete store clock key
    | 11 | 12 -> ignore (Store_intf.scan store clock ~start:key ~limit:8)
    | _ -> ignore (Store_intf.read store clock key));
    if step mod 701 = 0 then Store_intf.flush store clock;
    if step mod 907 = 0 then Store_intf.maintenance store clock;
    if step mod 1103 = 0 then
      ignore (Store_intf.scrub store clock ~budget_bytes:65536)
  done;
  let counts = Injector.counts inj in
  Injector.detach inj;
  counts
