(** Crash-point sweep: enumerate every fault-injection site a store
    declares, crash at the first/middle/last persist event of each across a
    seed matrix, and aggregate the checker verdicts. *)

type case = {
  c_store : string;
  c_seed : int;
  c_site : Kv_common.Fault_point.site;
  c_after : int;
  c_recovery_after : int option;
}

type failure = {
  f_case : case;
  f_violations : string list;
}

type verdict = {
  v_store : string;
  v_cases : int;
  v_fired : int;
  v_recovery_crashes : int;
  v_failures : failure list;
}

val passed : verdict -> bool

val repro_hint : case -> string
(** The [ckv crash] command line that reproduces this exact case. *)

val run_case_of :
  make:(unit -> Kv_common.Store_intf.store) ->
  ops:int ->
  universe:int ->
  tear:bool ->
  case ->
  Checker.outcome

val run_store :
  name:string ->
  make:(unit -> Kv_common.Store_intf.store) ->
  ?seeds:int list ->
  ?per_site:int ->
  ?ops:int ->
  ?universe:int ->
  ?tear:bool ->
  ?sites:Kv_common.Fault_point.site list ->
  unit ->
  verdict
(** Sweep one store.  Per seed: profile the workload's persist events, then
    run one checker case per (site, first/middle/last event) pair, plus two
    crash-during-recovery cases on the busiest site.  [sites] restricts the
    sweep to a subset of the store's declared fault points. *)

val export_failures :
  make:(unit -> Kv_common.Store_intf.store) ->
  ops:int ->
  universe:int ->
  tear:bool ->
  dir:string ->
  ?cap:int ->
  verdict ->
  string list
(** Re-run up to [cap] violating cases under {!Obs.Trace} and write one
    Chrome-trace JSON per case into [dir]; returns the paths written. *)
