module Store_intf = Kv_common.Store_intf
module Fault_point = Kv_common.Fault_point

type case = {
  c_store : string;
  c_seed : int;
  c_site : Fault_point.site;
  c_after : int;
  c_recovery_after : int option;
}

type failure = {
  f_case : case;
  f_violations : string list;
}

type verdict = {
  v_store : string;
  v_cases : int;
  v_fired : int;  (** cases where the armed crash actually fired *)
  v_recovery_crashes : int;
  v_failures : failure list;
}

let passed v = v.v_failures = []

(* First, middle and last persist events of a site, capped at [per_site]:
   the edges are where ordering bugs live, the middle catches steady state. *)
let afters ~per_site count =
  if count <= 0 then []
  else
    List.sort_uniq compare [ 0; count / 2; count - 1 ]
    |> List.filteri (fun i _ -> i < per_site)

let repro_hint c =
  Printf.sprintf
    "ckv crash --store %s --seed %d --site %s --at %d%s" c.c_store c.c_seed
    (Fault_point.to_string c.c_site)
    c.c_after
    (match c.c_recovery_after with
    | None -> ""
    | Some r -> Printf.sprintf " --recovery-at %d" r)

let run_case_of ~make ~ops ~universe ~tear c =
  Checker.run_case ~make ~ops ~universe ~crash_site:c.c_site
    ~crash_after:c.c_after ?recovery_crash_after:c.c_recovery_after ~tear
    ~seed:c.c_seed ()

(* Sweep one store: for every seed, profile the workload's persist events,
   then crash at the first/middle/last event of every site the store
   declares, plus crash-during-recovery cases on the busiest site. *)
let run_store ~name ~make ?(seeds = [ 1; 2; 3 ]) ?(per_site = 3)
    ?(ops = 4_000) ?(universe = 400) ?(tear = true) ?sites () =
  let declared = Store_intf.fault_points (make ()) in
  let wanted =
    match sites with
    | None -> declared
    | Some l -> List.filter (fun s -> List.mem s declared) l
  in
  let cases = ref [] in
  List.iter
    (fun seed ->
      let counts = Checker.profile ~make ~ops ~universe ~seed () in
      let count_of site =
        Option.value ~default:0 (List.assoc_opt site counts)
      in
      List.iter
        (fun site ->
          if site <> Fault_point.Recovery then
            List.iter
              (fun after ->
                cases :=
                  { c_store = name; c_seed = seed; c_site = site;
                    c_after = after; c_recovery_after = None }
                  :: !cases)
              (afters ~per_site (count_of site)))
        wanted;
      (* crash-during-recovery: crash the busiest non-recovery site at its
         midpoint, then crash recovery at its 0th / 1st persist event *)
      let busiest =
        List.fold_left
          (fun acc (site, n) ->
            match acc with
            | Some (_, m) when m >= n -> acc
            | _ when site = Fault_point.Recovery -> acc
            | _ when not (List.mem site wanted) -> acc
            | _ -> Some (site, n))
          None counts
      in
      match busiest with
      | Some (site, n) when List.mem Fault_point.Recovery declared ->
        List.iter
          (fun r ->
            cases :=
              { c_store = name; c_seed = seed; c_site = site;
                c_after = n / 2; c_recovery_after = Some r }
              :: !cases)
          [ 0; 1 ]
      | Some _ | None -> ())
    seeds;
  let cases = List.rev !cases in
  let fired = ref 0 in
  let recovery_crashes = ref 0 in
  let failures = ref [] in
  List.iter
    (fun c ->
      let o = run_case_of ~make ~ops ~universe ~tear c in
      if o.Checker.crashed then incr fired;
      if o.Checker.recovery_crashed then incr recovery_crashes;
      if o.Checker.violations <> [] then
        failures := { f_case = c; f_violations = o.Checker.violations }
                    :: !failures)
    cases;
  { v_store = name;
    v_cases = List.length cases;
    v_fired = !fired;
    v_recovery_crashes = !recovery_crashes;
    v_failures = List.rev !failures }

(* Re-run up to [cap] violating cases with span tracing enabled and export
   one Chrome-trace JSON per case for offline inspection. *)
let export_failures ~make ~ops ~universe ~tear ~dir ?(cap = 5) v =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.filteri (fun i _ -> i < cap) v.v_failures
  |> List.map (fun f ->
         let c = f.f_case in
         Obs.Trace.enable ();
         (try ignore (run_case_of ~make ~ops ~universe ~tear c)
          with _ -> ());
         let path =
           Filename.concat dir
             (Printf.sprintf "crash-%s-seed%d-%s-at%d%s.json" c.c_store
                c.c_seed
                (Fault_point.to_string c.c_site)
                c.c_after
                (match c.c_recovery_after with
                | None -> ""
                | Some r -> Printf.sprintf "-rec%d" r))
         in
         Obs.Export.write_chrome_trace path;
         Obs.Trace.disable ();
         path)
