(** Seeded media-fault (silent corruption) sweep.

    Complements the crash {!Sweep}: instead of power failures it injects
    bit rot ([Vlog.corrupt_entry]) and poisoned media units
    ([Device.inject_poison]) into persisted value-log records and asserts
    that no store ever serves a corrupted record as a successful read —
    every fault surfaces as an explicit [Corrupt] (or the correct value),
    never wrong data and never a silent miss.  Stores that declare the
    [Scrub] fault site must additionally detect every injected log fault
    in one unbounded scrub pass and serve each victim again after a
    superseding write. *)

type verdict = {
  m_store : string;
  m_seeds : int list;
  m_injected : int;       (** faults injected across all seeds *)
  m_corrupt_reads : int;  (** reads that answered an explicit [Corrupt] *)
  m_scrub_detected : int; (** scrub-pass detections (scrubbing stores) *)
  m_recovered : int;      (** victims serving again after a fresh write *)
  m_violations : string list;
}

val passed : verdict -> bool

val run_store :
  name:string ->
  make:(unit -> Kv_common.Store_intf.store) ->
  ?seeds:int list -> ?ops:int -> ?universe:int -> ?faults:int -> unit ->
  verdict
(** Run the sweep: per seed, a put/delete workload over [universe] keys,
    [faults] injected corruptions into newest persisted records (poison
    and bit rot alternating), a full read sweep, and — for scrubbing
    stores — a scrub pass, a second read sweep and superseding writes. *)

val run_chameleon_artifacts :
  ?seed:int -> ?ops:int -> ?universe:int -> unit -> string list
(** ChameleonDB-specific artifact faults: a poisoned table run must fail
    probes closed and be rebuilt from the log by scrub; a poisoned
    manifest floor record must push recovery to its conservative full-log
    replay and then be repaired in place.  Returns violations (empty =
    pass). *)
