(* Node-granularity crash hooks for the cluster layer.

   A cluster "node failure" is the PR 2 crash model applied to a whole
   store at once: install a deterministic torn-write function on the
   node's device, run the store's real [crash] path (volatile state lost,
   unpersisted 256 B media units survive independently), then clear the
   tear.  Rejoin is the store's real [recover] path — the instant-restart
   property the paper claims is exactly what makes node rejoin cheap, and
   charging it to a clock makes the downtime measurable. *)

module Clock = Pmem_sim.Clock
module Store_intf = Kv_common.Store_intf

let kill ?(tear = true) ~seed store =
  let inj = Injector.attach (Store_intf.device store) in
  if tear then Injector.set_tear inj ~seed ~keep_prob:0.5;
  Store_intf.crash store;
  Injector.clear_tear inj;
  Injector.detach inj

let rejoin store clock =
  let t0 = Clock.now clock in
  Store_intf.recover store clock;
  Clock.now clock -. t0
