(** Deliberately broken stores that the checker must reject — mutation
    tests for the fault harness itself. *)

val broken_replay : unit -> Kv_common.Store_intf.store
(** A Dram-Hash clone whose recovery replays the persisted log in reversed
    (newest-first) order, so the oldest record of each key wins.  Any sweep
    that crashes after a key accumulates two persisted records must report
    violations against it. *)
