(** Seeded message-level network fault injection.

    Every router<->node and node<->node exchange in the cluster layer asks
    this module what happens to each frame: delivered once after the base
    hop cost, delivered late, delivered more than once, or not at all.
    Faults are scripted as time-windowed rules — per-link loss, delay,
    duplication and reordering distributions, symmetric and asymmetric
    partitions, and fail-slow nodes whose service times inflate by a
    factor — and all randomness comes from one splitmix64 stream, so a
    run is deterministic per seed under the discrete-event clock.

    The injector is pure policy: it decides arrival times and factors but
    never touches a clock itself.  Callers (the router's RPC layer,
    catch-up streaming, migration copy) charge the costs it dictates. *)

type endpoint =
  | Client       (** the router's client side *)
  | Node of int  (** a cluster node, by id *)

val endpoint_name : endpoint -> string

type fault =
  | Loss of float
      (** i.i.d. drop probability per frame *)
  | Delay of { frac : float; mean_ns : float }
      (** with probability [frac], add an exponentially distributed extra
          delay with the given mean *)
  | Duplicate of float
      (** probability that a frame is delivered twice *)
  | Reorder of { frac : float; extra_ns : float }
      (** with probability [frac], hold a frame back by [extra_ns] — long
          enough that later frames overtake it *)
  | Partition of { a : endpoint list; b : endpoint list; symmetric : bool }
      (** drop every frame from side [a] to side [b]; symmetric
          partitions drop [b] to [a] too, asymmetric ones deliver it (the
          gray-failure shape: requests arrive, acks vanish).  Endpoints
          on neither side are unaffected. *)
  | Fail_slow of { node : int; factor : float }
      (** inflate the node's service time by [factor] (>= 1.0) *)

type t

val create : ?seed:int -> unit -> t
(** A fresh injector with no rules: every frame is delivered exactly
    once after the base hop cost. *)

val add_rule :
  t ->
  ?from_ns:float -> ?until_ns:float ->
  ?src:endpoint -> ?dst:endpoint ->
  fault -> unit
(** Install a rule active on frames sent in [\[from_ns, until_ns)]
    (default: always) whose source/destination match the optional
    filters (default: any).  [src]/[dst] filters are ignored by
    [Partition] and [Fail_slow], which carry their own scope.  Rules
    apply in installation order; their effects compose. *)

val send :
  t -> now:float -> src:endpoint -> dst:endpoint -> net_ns:float ->
  float list
(** Fate of one frame departing [src] at [now] toward [dst] over a hop
    of base cost [net_ns]: the ascending list of arrival times — [[]]
    when the frame is lost or crosses an active partition cut, more than
    one entry when it is duplicated.  Consumes randomness; draws are in
    rule order, so call order is part of the deterministic schedule. *)

val reachable : t -> now:float -> src:endpoint -> dst:endpoint -> bool
(** Whether an active partition cuts [src -> dst] at [now].  Pure (no
    randomness consumed): loss/delay rules do not make a link
    unreachable.  Catch-up and migration streams use this to gate
    progress. *)

val slow_factor : t -> now:float -> node:int -> float
(** Service-time inflation factor for [node] at [now] (largest active
    [Fail_slow] rule; 1.0 when none). *)

(** {1 Stats} (also mirrored in [Obs.Counters] under [netem.*]) *)

val sent : t -> int
val dropped : t -> int
(** Frames lost to [Loss] rules. *)

val partition_dropped : t -> int
(** Frames lost to partition cuts. *)

val duplicated : t -> int
(** Extra deliveries created by [Duplicate] rules. *)

val delayed : t -> int
(** Deliveries that left later than the base hop cost. *)
