module Device = Pmem_sim.Device
module Fault_point = Kv_common.Fault_point

exception Crash_injected

type mode =
  | Off
  | Observe
  | Armed of Fault_point.site option

type t = {
  dev : Device.t;
  counts : (Fault_point.site, int) Hashtbl.t;
  mutable mode : mode;
  mutable remaining : int;
  mutable fired_site : Fault_point.site option;
}

let bump t site =
  Hashtbl.replace t.counts site
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts site))

(* The hook fires at the START of every persist-class device operation, so a
   raised crash models power failing just before that durable write: every
   earlier persist took effect, this one (and everything after) did not. *)
let hook t () =
  match t.mode with
  | Off -> ()
  | Observe -> bump t (Fault_point.current ())
  | Armed target ->
    let site = Fault_point.current () in
    bump t site;
    let matches = match target with None -> true | Some s -> s = site in
    if matches then
      if t.remaining <= 0 then begin
        t.fired_site <- Some site;
        t.mode <- Off;
        raise Crash_injected
      end
      else t.remaining <- t.remaining - 1

let attach dev =
  let t =
    { dev; counts = Hashtbl.create 16; mode = Off; remaining = 0;
      fired_site = None }
  in
  Device.set_persist_hook dev (Some (fun () -> hook t ()));
  t

let detach t =
  Device.set_persist_hook t.dev None;
  Device.set_tear t.dev None

let arm t ?site ~after () =
  t.mode <- Armed site;
  t.remaining <- after;
  t.fired_site <- None

let observe t = t.mode <- Observe
let disarm t = t.mode <- Off
let fired_site t = t.fired_site
let reset_counts t = Hashtbl.reset t.counts

let counts t =
  List.filter_map
    (fun site ->
      match Hashtbl.find_opt t.counts site with
      | Some n when n > 0 -> Some (site, n)
      | Some _ | None -> None)
    Fault_point.all

(* Deterministic per-unit survival function: hashing (seed, unit offset)
   keeps the decision stable for a whole crash without any hidden state. *)
let set_tear t ~seed ~keep_prob =
  Device.set_tear t.dev
    (Some
       (fun off ->
         let h = Hashtbl.hash (seed, off) land 0xFFFF in
         float_of_int h < keep_prob *. 65536.0))

let clear_tear t = Device.set_tear t.dev None
