(* Seeded message-level network fault injection.

   One injector interposes on every cluster exchange.  It is policy
   only: [send] answers "when does this frame arrive, and how many
   times?", and the caller charges those arrivals to the right service
   loops.  All randomness comes from a single splitmix64 stream, so with
   a fixed rule script and a fixed call order (both are, under the
   discrete-event runner) the whole fault schedule is a pure function of
   the seed. *)

module Rng = Workload.Rng

type endpoint = Client | Node of int

let endpoint_name = function
  | Client -> "client"
  | Node i -> Printf.sprintf "node%d" i

type fault =
  | Loss of float
  | Delay of { frac : float; mean_ns : float }
  | Duplicate of float
  | Reorder of { frac : float; extra_ns : float }
  | Partition of { a : endpoint list; b : endpoint list; symmetric : bool }
  | Fail_slow of { node : int; factor : float }

type rule = {
  r_from : float;
  r_until : float;
  r_src : endpoint option;
  r_dst : endpoint option;
  r_fault : fault;
}

type t = {
  rng : Rng.t;
  mutable rules : rule list; (* installation order *)
  mutable sent : int;
  mutable dropped : int;
  mutable partition_dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let c_sent = Obs.Counters.counter "netem.sent"
let c_dropped = Obs.Counters.counter "netem.dropped"
let c_partition = Obs.Counters.counter "netem.partition_dropped"
let c_dup = Obs.Counters.counter "netem.duplicated"
let c_delayed = Obs.Counters.counter "netem.delayed"

let create ?(seed = 1) () =
  { rng = Rng.create ~seed;
    rules = [];
    sent = 0;
    dropped = 0;
    partition_dropped = 0;
    duplicated = 0;
    delayed = 0 }

let add_rule t ?(from_ns = neg_infinity) ?(until_ns = infinity) ?src ?dst
    fault =
  (match fault with
  | Loss p | Duplicate p ->
      if p < 0.0 || p > 1.0 then invalid_arg "Netem.add_rule: probability"
  | Delay { frac; mean_ns } ->
      if frac < 0.0 || frac > 1.0 || mean_ns < 0.0 then
        invalid_arg "Netem.add_rule: delay"
  | Reorder { frac; extra_ns } ->
      if frac < 0.0 || frac > 1.0 || extra_ns < 0.0 then
        invalid_arg "Netem.add_rule: reorder"
  | Partition _ -> ()
  | Fail_slow { factor; _ } ->
      if factor < 1.0 then invalid_arg "Netem.add_rule: fail-slow factor");
  t.rules <-
    t.rules
    @ [ { r_from = from_ns; r_until = until_ns; r_src = src; r_dst = dst;
          r_fault = fault } ]

let active r ~now = now >= r.r_from && now < r.r_until

let ep_match filt ep =
  match filt with None -> true | Some e -> e = ep

let link_match r ~src ~dst = ep_match r.r_src src && ep_match r.r_dst dst

let cuts r ~src ~dst =
  match r.r_fault with
  | Partition { a; b; symmetric } ->
      (List.mem src a && List.mem dst b)
      || (symmetric && List.mem src b && List.mem dst a)
  | _ -> false

let reachable t ~now ~src ~dst =
  not (List.exists (fun r -> active r ~now && cuts r ~src ~dst) t.rules)

let slow_factor t ~now ~node =
  List.fold_left
    (fun acc r ->
      match r.r_fault with
      | Fail_slow { node = n; factor } when n = node && active r ~now ->
          Float.max acc factor
      | _ -> acc)
    1.0 t.rules

(* exponential with the given mean; [Rng.float] is in [0, 1) so the log
   argument stays in (0, 1] *)
let exp_delay rng mean_ns = mean_ns *. -.log (1.0 -. Rng.float rng)

let send t ~now ~src ~dst ~net_ns =
  t.sent <- t.sent + 1;
  Obs.Counters.incr c_sent;
  if not (reachable t ~now ~src ~dst) then begin
    t.partition_dropped <- t.partition_dropped + 1;
    Obs.Counters.incr c_partition;
    []
  end
  else begin
    let matching =
      List.filter (fun r -> active r ~now && link_match r ~src ~dst) t.rules
    in
    let lost =
      List.exists
        (fun r ->
          match r.r_fault with
          | Loss p -> Rng.float t.rng < p
          | _ -> false)
        matching
    in
    if lost then begin
      t.dropped <- t.dropped + 1;
      Obs.Counters.incr c_dropped;
      []
    end
    else begin
      let copies =
        List.fold_left
          (fun acc r ->
            match r.r_fault with
            | Duplicate p when Rng.float t.rng < p -> acc + 1
            | _ -> acc)
          1 matching
      in
      if copies > 1 then begin
        t.duplicated <- t.duplicated + (copies - 1);
        Obs.Counters.add_int c_dup (copies - 1)
      end;
      let arrival () =
        let extra =
          List.fold_left
            (fun acc r ->
              match r.r_fault with
              | Delay { frac; mean_ns } when Rng.float t.rng < frac ->
                  acc +. exp_delay t.rng mean_ns
              | Reorder { frac; extra_ns } when Rng.float t.rng < frac ->
                  acc +. extra_ns
              | _ -> acc)
            0.0 matching
        in
        if extra > 0.0 then begin
          t.delayed <- t.delayed + 1;
          Obs.Counters.incr c_delayed
        end;
        now +. net_ns +. extra
      in
      List.sort compare (List.init copies (fun _ -> arrival ()))
    end
  end

let sent t = t.sent
let dropped t = t.dropped
let partition_dropped t = t.partition_dropped
let duplicated t = t.duplicated
let delayed t = t.delayed
