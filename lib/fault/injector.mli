(** Crash-fault injection over {!Pmem_sim.Device}.

    An injector installs the device's persist hook and, when armed, raises
    {!Crash_injected} just before the [after]-th persist-class operation
    (optionally restricted to one {!Kv_common.Fault_point.site}).  Because
    the hook fires before the write takes effect, the exception models a
    power cut between two durable writes; unwinding then leaves the store's
    persistent image exactly as a real crash would (DRAM state is discarded
    by the store's own [crash]). *)

exception Crash_injected

type t

val attach : Pmem_sim.Device.t -> t
(** Install the persist hook on the device.  The injector starts disarmed. *)

val detach : t -> unit
(** Remove the persist hook and any tear function. *)

val arm : t -> ?site:Kv_common.Fault_point.site -> after:int -> unit -> unit
(** Crash at the [after]-th matching persist event from now (0 = the very
    next one).  Without [site], any site matches.  Auto-disarms on firing. *)

val observe : t -> unit
(** Count persist events per site without crashing (used for profiling a
    workload to enumerate crash points). *)

val disarm : t -> unit

val fired_site : t -> Kv_common.Fault_point.site option
(** Site of the last injected crash, reset by {!arm}. *)

val counts : t -> (Kv_common.Fault_point.site * int) list
(** Persist-class operations seen per site while armed or observing. *)

val reset_counts : t -> unit

val set_tear : t -> seed:int -> keep_prob:float -> unit
(** Install a deterministic torn-write function: each 256 B unit of
    unpersisted data independently survives the next crash with probability
    [keep_prob], decided by hashing [(seed, unit offset)]. *)

val clear_tear : t -> unit
