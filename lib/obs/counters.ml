type t = { cname : string; mutable v : float }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
    let c = { cname = name; v = 0.0 } in
    Hashtbl.add registry name c;
    c

let name c = c.cname
let value c = c.v
let add c x = c.v <- c.v +. x
let add_int c n = c.v <- c.v +. float_of_int n
let incr c = c.v <- c.v +. 1.0
let reset c = c.v <- 0.0
let reset_all () = Hashtbl.iter (fun _ c -> c.v <- 0.0) registry
let find name = Option.map value (Hashtbl.find_opt registry name)

let snapshot () =
  Hashtbl.fold (fun _ c acc -> (c.cname, c.v) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Both snapshots are name-sorted; counters are created on first use, so
   [after] can only contain extra names, never fewer. *)
let diff_snapshots ~after ~before =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace tbl n v) before;
  List.filter_map
    (fun (n, v) ->
      let d =
        match Hashtbl.find_opt tbl n with Some v0 -> v -. v0 | None -> v
      in
      if d = 0.0 then None else Some (n, d))
    after

let pp ppf () =
  List.iter
    (fun (n, v) ->
      if Float.is_integer v then Format.fprintf ppf "%-28s %12.0f@." n v
      else Format.fprintf ppf "%-28s %12.1f@." n v)
    (snapshot ())
