(** Structured tracing over the simulated clocks.

    A single global, bounded ring of trace events.  Spans ({!begin_span} /
    {!end_span} or {!with_span}) nest per virtual thread ([tid]); timestamps
    are taken from the {!Pmem_sim.Clock} passed at the call site, i.e. they
    are {e simulated} nanoseconds, not wall time (see DESIGN.md).

    When disabled (the default) every recording function is a no-op guarded
    by a single flag check, so instrumented fast paths cost nothing
    measurable.  When the ring fills, the oldest events are overwritten and
    counted in {!dropped} — the newest window of activity always survives. *)

type phase = B | E | I | C
(** Span begin / span end / instant / counter sample, mirroring the Chrome
    trace-event phases. *)

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float;  (** simulated ns *)
  tid : int;   (** virtual thread: workload threads 0.., background 1000+shard *)
  value : float option;  (** [C] events only *)
}

val enable : ?capacity:int -> unit -> unit
(** Start recording into a fresh ring of [capacity] events (default 65536).
    Raises [Invalid_argument] on a non-positive capacity. *)

val disable : unit -> unit
(** Stop recording.  Already-recorded events remain readable. *)

val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events and reset the dropped-event count. *)

val set_tid : int -> unit
(** Set the current virtual-thread id, used when an emitter passes no
    explicit [?tid].  The discrete-event runner calls this before each
    operation. *)

val current_tid : unit -> int

val begin_span : Pmem_sim.Clock.t -> ?tid:int -> cat:string -> string -> unit
val end_span : Pmem_sim.Clock.t -> ?tid:int -> cat:string -> string -> unit
val instant : Pmem_sim.Clock.t -> ?tid:int -> cat:string -> string -> unit

val counter : Pmem_sim.Clock.t -> ?tid:int -> string -> float -> unit
(** Record a counter sample (rendered as a track in the trace viewer). *)

val with_span :
  Pmem_sim.Clock.t -> ?tid:int -> cat:string -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a span; the end event is emitted even on exception. *)

val events : unit -> event list
(** Recorded events, oldest first. *)

val length : unit -> int
val dropped : unit -> int
(** Events lost to ring overwrite since {!enable} / {!clear}. *)

val capacity : unit -> int
