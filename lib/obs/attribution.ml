type stage =
  | Get_cache
  | Get_memtable
  | Get_abi
  | Get_level_probe
  | Get_mph
  | Get_log_read
  | Put_batch_copy
  | Put_index_insert
  | Put_flush_stall
  | Put_compaction_stall
  | Put_group_commit
  | Svc_decode
  | Svc_queue
  | Svc_execute
  | Svc_encode
  | Scan_stream
  | Rpc_backoff
  | Rpc_hedge
  | Rpc_timeout

let nstages = 19

let index = function
  | Get_cache -> 0
  | Get_memtable -> 1
  | Get_abi -> 2
  | Get_level_probe -> 3
  | Get_mph -> 4
  | Get_log_read -> 5
  | Put_batch_copy -> 6
  | Put_index_insert -> 7
  | Put_flush_stall -> 8
  | Put_compaction_stall -> 9
  | Put_group_commit -> 10
  | Svc_decode -> 11
  | Svc_queue -> 12
  | Svc_execute -> 13
  | Svc_encode -> 14
  | Scan_stream -> 15
  | Rpc_backoff -> 16
  | Rpc_hedge -> 17
  | Rpc_timeout -> 18

let all =
  [ Get_cache; Get_memtable; Get_abi; Get_level_probe; Get_mph;
    Get_log_read; Put_batch_copy; Put_index_insert; Put_flush_stall;
    Put_compaction_stall; Put_group_commit; Svc_decode; Svc_queue;
    Svc_execute; Svc_encode; Scan_stream; Rpc_backoff; Rpc_hedge;
    Rpc_timeout ]

let name = function
  | Get_cache -> "cache"
  | Get_memtable -> "memtable"
  | Get_abi -> "abi"
  | Get_level_probe -> "level-probe"
  | Get_mph -> "mph"
  | Get_log_read -> "log-read"
  | Put_batch_copy -> "batch-copy"
  | Put_index_insert -> "index-insert"
  | Put_flush_stall -> "flush-stall"
  | Put_compaction_stall -> "compaction-stall"
  | Put_group_commit -> "group-commit"
  | Svc_decode -> "svc-decode"
  | Svc_queue -> "svc-queue"
  | Svc_execute -> "svc-execute"
  | Svc_encode -> "svc-encode"
  | Scan_stream -> "scan-stream"
  | Rpc_backoff -> "rpc-backoff"
  | Rpc_hedge -> "rpc-hedge"
  | Rpc_timeout -> "rpc-timeout"

let op_of = function
  | Get_cache | Get_memtable | Get_abi | Get_level_probe | Get_mph
  | Get_log_read ->
    `Get
  | Put_batch_copy | Put_index_insert | Put_flush_stall
  | Put_compaction_stall | Put_group_commit ->
    `Put
  | Svc_decode | Svc_queue | Svc_execute | Svc_encode -> `Svc
  | Scan_stream -> `Scan
  | Rpc_backoff | Rpc_hedge | Rpc_timeout -> `Rpc

let on = ref false
let acc = Array.make nstages 0.0

let enabled () = !on
let enable () = on := true
let disable () = on := false
let reset () = Array.fill acc 0 nstages 0.0

let add stage ns = acc.(index stage) <- acc.(index stage) +. ns

type snapshot = float array

let snapshot () = Array.copy acc
let diff ~after ~before = Array.init nstages (fun i -> after.(i) -. before.(i))
let stage_ns snap stage = snap.(index stage)

let total ~op snap =
  List.fold_left
    (fun a s -> if op_of s = op then a +. stage_ns snap s else a)
    0.0 all
