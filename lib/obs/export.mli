(** Trace export: Chrome trace-event JSON and a plain-text summary. *)

val balanced_events : Trace.event list -> Trace.event list
(** Repair stack discipline per virtual thread: drop end events whose begin
    was lost to ring overwrite, and close still-open spans with synthetic
    end events at the final timestamp.  Exposed for tests. *)

val to_chrome_json : ?pid:int -> Trace.event list -> string
(** Serialize to the catapult JSON object format ([{"traceEvents": [...]}]),
    loadable in [chrome://tracing] and Perfetto.  Events are stably sorted
    by timestamp and balanced with {!balanced_events}; simulated nanoseconds
    map onto the format's microsecond [ts] field. *)

val write_chrome_trace : ?pid:int -> string -> unit
(** Write the currently recorded events ({!Trace.events}) to a file. *)

val summary : unit -> string
(** Human-readable dump: ring statistics plus every non-zero counter. *)
