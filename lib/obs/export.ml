(* Chrome trace-event export (the "catapult" JSON array format understood by
   chrome://tracing and https://ui.perfetto.dev).

   The ring buffer may have overwritten the begin event of a span whose end
   survived (or the run may have ended inside a span), so exported events
   pass through a balancing pass first: an [E] with no open span on its
   thread is dropped, and every span still open at the end of the stream is
   closed with a synthetic [E] at the final timestamp.  The result is a
   well-formed stream — per thread, begins and ends pair up with proper
   stack discipline. *)

let balanced_events evs =
  (* per-tid stack of open (name, cat) spans *)
  let stacks : (int, (string * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let max_ts = List.fold_left (fun a e -> Float.max a e.Trace.ts) 0.0 evs in
  let kept =
    List.filter
      (fun e ->
        match e.Trace.ph with
        | Trace.B ->
          let s = stack e.Trace.tid in
          s := (e.Trace.name, e.Trace.cat) :: !s;
          true
        | Trace.E -> (
          let s = stack e.Trace.tid in
          match !s with
          | [] -> false (* orphan end: its begin was overwritten *)
          | _ :: rest ->
            s := rest;
            true)
        | Trace.I | Trace.C -> true)
      evs
  in
  let closers =
    Hashtbl.fold
      (fun tid s acc ->
        List.fold_left
          (fun acc (name, cat) ->
            { Trace.ph = Trace.E; name; cat; ts = max_ts; tid; value = None }
            :: acc)
          acc !s)
      stacks []
  in
  kept @ closers

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ph_string = function
  | Trace.B -> "B"
  | Trace.E -> "E"
  | Trace.I -> "i"
  | Trace.C -> "C"

let event_json ~pid b e =
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.4f,\"pid\":%d,\"tid\":%d"
       (escape e.Trace.name) (escape e.Trace.cat)
       (ph_string e.Trace.ph)
       (e.Trace.ts /. 1e3) (* simulated ns -> trace-format microseconds *)
       pid e.Trace.tid);
  (match e.Trace.ph with
  | Trace.I -> Buffer.add_string b ",\"s\":\"t\""
  | Trace.C ->
    let v = match e.Trace.value with Some v -> v | None -> 0.0 in
    Buffer.add_string b (Printf.sprintf ",\"args\":{\"value\":%.4f}" v)
  | Trace.B | Trace.E -> ());
  Buffer.add_char b '}'

let to_chrome_json ?(pid = 1) evs =
  (* stable sort by timestamp: per-tid append order is time-ordered already,
     so equal timestamps keep their original (correctly nested) order *)
  let evs =
    List.stable_sort (fun a b -> compare a.Trace.ts b.Trace.ts) evs
  in
  let evs = balanced_events evs in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      event_json ~pid b e)
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write_chrome_trace ?pid path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ?pid (Trace.events ())))

let summary () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "trace: %d events recorded, %d dropped (capacity %d)\n"
       (Trace.length ()) (Trace.dropped ()) (Trace.capacity ()));
  Buffer.add_string b "counters:\n";
  List.iter
    (fun (n, v) ->
      if v <> 0.0 then
        Buffer.add_string b
          (if Float.is_integer v then Printf.sprintf "  %-28s %14.0f\n" n v
           else Printf.sprintf "  %-28s %14.1f\n" n v))
    (Counters.snapshot ());
  Buffer.contents b
