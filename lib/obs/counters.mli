(** Unified global-counter registry.

    One process-wide namespace of named monotone counters (ABI hits, Bloom
    probes and false positives, flush/compaction bytes, put stalls, GC
    relocations, ...).  Instrumentation sites obtain their counter handle
    once at module initialisation — {!counter} is get-or-create — so the
    per-event cost is a single float add.

    The per-device {!Pmem_sim.Stats} records stay authoritative for
    per-store byte accounting (several stores with independent devices can
    coexist in one run); this registry is the cross-cutting, resettable view
    the harness reads and the export writes out. *)

type t

val counter : string -> t
(** Get or create the counter registered under a name.  Use a dotted
    hierarchy, e.g. ["get.abi_hits"], ["compaction.bytes"]. *)

val name : t -> string
val value : t -> float

val add : t -> float -> unit
val add_int : t -> int -> unit
val incr : t -> unit

val reset : t -> unit

val reset_all : unit -> unit
(** Zero every registered counter (harness calls this between runs). *)

val find : string -> float option
(** Value of a counter by name, [None] if never registered. *)

val snapshot : unit -> (string * float) list
(** All registered counters, sorted by name. *)

val diff_snapshots :
  after:(string * float) list ->
  before:(string * float) list ->
  (string * float) list
(** Per-run counter deltas: for every counter in [after], its value minus
    the value in [before] (0 if absent), dropping zero deltas.  The harness
    brackets each run with {!snapshot} so that back-to-back experiments in
    one process report per-run numbers instead of process-lifetime
    accumulations. *)

val pp : Format.formatter -> unit -> unit
