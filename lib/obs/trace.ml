module Clock = Pmem_sim.Clock

type phase = B | E | I | C

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float; (* simulated ns *)
  tid : int;
  value : float option; (* C (counter) events only *)
}

(* One global trace: the whole simulation is single-OS-threaded, virtual
   threads are distinguished by the [tid] carried on every event.  A bounded
   ring keeps the newest events; the oldest are overwritten and counted in
   [dropped]. *)
type state = {
  mutable buf : event array;
  mutable cap : int;
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
  mutable on : bool;
  mutable cur_tid : int;
}

let dummy = { ph = I; name = ""; cat = ""; ts = 0.0; tid = 0; value = None }

let st =
  { buf = [||]; cap = 0; start = 0; len = 0; dropped = 0; on = false;
    cur_tid = 0 }

let enabled () = st.on
let default_capacity = 1 lsl 16

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then
    invalid_arg "Obs.Trace.enable: capacity must be positive";
  st.buf <- Array.make capacity dummy;
  st.cap <- capacity;
  st.start <- 0;
  st.len <- 0;
  st.dropped <- 0;
  st.on <- true

let disable () = st.on <- false

let clear () =
  st.start <- 0;
  st.len <- 0;
  st.dropped <- 0

let set_tid tid = st.cur_tid <- tid
let current_tid () = st.cur_tid

let push ev =
  if st.len < st.cap then begin
    st.buf.((st.start + st.len) mod st.cap) <- ev;
    st.len <- st.len + 1
  end
  else begin
    st.buf.(st.start) <- ev;
    st.start <- (st.start + 1) mod st.cap;
    st.dropped <- st.dropped + 1
  end

let emit clock ph ?tid ~cat name =
  let tid = match tid with Some t -> t | None -> st.cur_tid in
  push { ph; name; cat; ts = Clock.now clock; tid; value = None }

let begin_span clock ?tid ~cat name =
  if st.on then emit clock B ?tid ~cat name

let end_span clock ?tid ~cat name =
  if st.on then emit clock E ?tid ~cat name

let instant clock ?tid ~cat name =
  if st.on then emit clock I ?tid ~cat name

let counter clock ?tid name v =
  if st.on then begin
    let tid = match tid with Some t -> t | None -> st.cur_tid in
    push
      { ph = C; name; cat = "counter"; ts = Clock.now clock; tid;
        value = Some v }
  end

let with_span clock ?tid ~cat name f =
  if not st.on then f ()
  else begin
    begin_span clock ?tid ~cat name;
    match f () with
    | r ->
      end_span clock ?tid ~cat name;
      r
    | exception e ->
      end_span clock ?tid ~cat name;
      raise e
  end

let events () = List.init st.len (fun i -> st.buf.((st.start + i) mod st.cap))
let length () = st.len
let dropped () = st.dropped
let capacity () = st.cap
