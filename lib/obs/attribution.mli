(** Per-operation stage attribution.

    Where does a get or put spend its simulated time?  Instrumentation on
    the data path measures the clock delta of each stage and accumulates it
    here; the harness snapshots the accumulators around a run and prints a
    per-stage breakdown whose sums reconcile with the end-to-end mean
    latency.

    Get stages: DRAM read-cache probe/serve/fill, MemTable probe, ABI
    probe, persistent-level probes (dumped / upper / last tables),
    value-log read.  Put stages: log batch copy,
    index (MemTable) insert, and the two stall flavours — waiting behind a
    background flush vs. behind a compaction.  Service stages (the [`Svc]
    class) attribute a request's life inside the serving pipeline: frame
    decode, scheduler-queue wait, store execution, reply encode — their sum
    is the coordinated-omission-free service latency.  The [`Scan]
    class covers the ordered-range path: per-shard stream setup (snapshot
    sorts, fence searches) plus the k-way merge pull, charged as one
    [Scan_stream] stage.  The [`Rpc] class attributes the defensive
    cluster RPC path: retry backoff waits, hedge delays, and deadline
    budget burned by attempts that never acked.

    Like {!Trace}, recording is a no-op unless {!enable}d. *)

type stage =
  | Get_cache
  | Get_memtable
  | Get_abi
  | Get_level_probe
  | Get_mph
      (** last-level probe through the minimal-perfect-hash index (DRAM
          evaluation + one device read) *)
  | Get_log_read
  | Put_batch_copy
  | Put_index_insert
  | Put_flush_stall
  | Put_compaction_stall
  | Put_group_commit
      (** the persist fence a [write_batch] group commit pays once for the
          whole group (amortized across the group's puts) *)
  | Svc_decode
  | Svc_queue
  | Svc_execute
  | Svc_encode
  | Scan_stream
  | Rpc_backoff
      (** time a routed op spends waiting out retry backoff windows *)
  | Rpc_hedge
      (** hedge delay waited before duplicating a read to another replica *)
  | Rpc_timeout
      (** deadline budget burned by RPC attempts that never acked *)

val all : stage list
val name : stage -> string
val op_of : stage -> [ `Get | `Put | `Svc | `Scan | `Rpc ]

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero the accumulators. *)

val add : stage -> float -> unit
(** Accumulate [ns] against a stage.  Callers are expected to guard with
    {!enabled} so the disabled fast path never computes the delta. *)

type snapshot

val snapshot : unit -> snapshot
val diff : after:snapshot -> before:snapshot -> snapshot
val stage_ns : snapshot -> stage -> float
val total : op:[ `Get | `Put | `Svc | `Scan | `Rpc ] -> snapshot -> float
(** Sum of the stage times belonging to one operation kind. *)
