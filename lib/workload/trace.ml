module Types = Kv_common.Types

type t = { ops : Types.op array }

let of_ops ops = { ops = Array.of_list ops }
let record ~n ~gen = { ops = Array.init n (fun _ -> gen ()) }
let length t = Array.length t.ops

let get t i =
  if i < 0 || i >= Array.length t.ops then invalid_arg "Trace.get";
  t.ops.(i)

let iter t f = Array.iter f t.ops

let replayer t =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length t.ops then None
    else begin
      let op = t.ops.(!i) in
      incr i;
      Some op
    end

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun (op : Types.op) ->
          match op with
          | Types.Put (k, vlen) -> Printf.fprintf oc "P %Lu %d\n" k vlen
          | Types.Get k -> Printf.fprintf oc "G %Lu\n" k
          | Types.Delete k -> Printf.fprintf oc "D %Lu\n" k
          | Types.Read_modify_write (k, vlen) ->
            Printf.fprintf oc "R %Lu %d\n" k vlen
          | Types.Scan (k, limit) -> Printf.fprintf oc "S %Lu %d\n" k limit)
        t.ops)

let parse_line lineno line =
  let fail () =
    failwith (Printf.sprintf "Trace.load: malformed line %d: %S" lineno line)
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "P"; k; v ] -> (
    try Types.Put (Int64.of_string ("0u" ^ k), int_of_string v)
    with _ -> fail ())
  | [ "G"; k ] -> (
    try Types.Get (Int64.of_string ("0u" ^ k)) with _ -> fail ())
  | [ "D"; k ] -> (
    try Types.Delete (Int64.of_string ("0u" ^ k)) with _ -> fail ())
  | [ "R"; k; v ] -> (
    try Types.Read_modify_write (Int64.of_string ("0u" ^ k), int_of_string v)
    with _ -> fail ())
  | [ "S"; k; n ] -> (
    try Types.Scan (Int64.of_string ("0u" ^ k), int_of_string n)
    with _ -> fail ())
  | _ -> fail ()

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ops = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = input_line ic in
           if String.trim line <> "" then
             ops := parse_line !lineno line :: !ops
         done
       with End_of_file -> ());
      { ops = Array.of_list (List.rev !ops) })
