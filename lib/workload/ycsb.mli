(** YCSB workload generator (Cooper et al., SoCC'10), Table 5 of the paper.

    Supported mixes:

    - [Load]: 100% put of unique keys
    - [A]: 50% get / 50% update, zipfian
    - [B]: 95% get / 5% update, zipfian
    - [C]: 100% get, zipfian
    - [D]: get most-recently-inserted keys ("latest" distribution, with 5%
      inserts extending the universe)
    - [E]: 95% short range scan (zipfian start key, uniform length 1-100)
      / 5% insert — the mix the paper omits because its hashed stores
      cannot scan; the ordered last level makes it runnable here
    - [F]: 50% get / 50% read-modify-write, zipfian *)

type mix = Load | A | B | C | D | E | F

val all : mix list
val name : mix -> string
val description : mix -> string

type t

val create :
  ?seed:int -> ?vlen:int -> mix:mix -> loaded:int -> unit -> t
(** A generator over a store pre-loaded with [loaded] unique keys (indices
    [0, loaded)).  [vlen] is the value size for writes (default 8, as in the
    paper's main experiments). *)

val next : t -> Kv_common.Types.op
(** Produce the next operation.  [Load] mode yields puts of fresh unique
    keys; other mixes choose existing keys per their distribution. *)

val inserted : t -> int
(** Total keys existing after the operations produced so far. *)
