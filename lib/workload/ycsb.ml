module Types = Kv_common.Types

type mix = Load | A | B | C | D | E | F

let all = [ Load; A; B; C; D; E; F ]

let name = function
  | Load -> "YCSB_LOAD"
  | A -> "YCSB_A"
  | B -> "YCSB_B"
  | C -> "YCSB_C"
  | D -> "YCSB_D"
  | E -> "YCSB_E"
  | F -> "YCSB_F"

let description = function
  | Load -> "100% put"
  | A -> "50% get / 50% update"
  | B -> "95% get / 5% update"
  | C -> "100% get"
  | D -> "Get most recently inserted keys"
  | E -> "95% short scan / 5% insert"
  | F -> "50% get / 50% read-modify-write"

type t = {
  mix : mix;
  rng : Rng.t;
  vlen : int;
  zipf : Zipf.t;
  latest : Zipf.t; (* small-window skew for D *)
  mutable ninserted : int;
}

let create ?(seed = 42) ?(vlen = 8) ~mix ~loaded () =
  let loaded = max 1 loaded in
  { mix;
    rng = Rng.create ~seed;
    vlen;
    zipf = Zipf.create ~n:loaded ();
    latest = Zipf.create ~n:loaded ();
    ninserted = loaded }

let inserted t = t.ninserted

let existing_key t =
  (* scrambled zipfian over the loaded universe *)
  let ix = Zipf.scrambled t.zipf t.rng ~universe:t.ninserted in
  Keyspace.key_of_index ix

let latest_key t =
  (* "latest": the paper's D reads only the most recently inserted keys
     (10 K of a billion); zipfian recency rank within that narrow window *)
  let window = max 256 (t.ninserted / 1000) in
  let rank = Zipf.next t.latest t.rng mod window in
  let ix = t.ninserted - 1 - rank in
  Keyspace.key_of_index (max 0 ix)

let fresh_key t =
  let ix = t.ninserted in
  t.ninserted <- t.ninserted + 1;
  Zipf.grow t.latest t.ninserted;
  Keyspace.key_of_index ix

let next t : Types.op =
  match t.mix with
  | Load -> Types.Put (fresh_key t, t.vlen)
  | A ->
    if Rng.bool t.rng then Types.Get (existing_key t)
    else Types.Put (existing_key t, t.vlen)
  | B ->
    if Rng.int t.rng 100 < 95 then Types.Get (existing_key t)
    else Types.Put (existing_key t, t.vlen)
  | C -> Types.Get (existing_key t)
  | D ->
    if Rng.int t.rng 100 < 95 then Types.Get (latest_key t)
    else Types.Put (fresh_key t, t.vlen)
  | E ->
    (* zipfian start key, short uniform scan length (YCSB's default 1-100) *)
    if Rng.int t.rng 100 < 95 then
      Types.Scan (existing_key t, 1 + Rng.int t.rng 100)
    else Types.Put (fresh_key t, t.vlen)
  | F ->
    if Rng.bool t.rng then Types.Get (existing_key t)
    else Types.Read_modify_write (existing_key t, t.vlen)
