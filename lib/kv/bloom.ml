type t = {
  bits : Bytes.t;
  nbits : int;
  k : int;
  mutable count : int;
}

let create ~expected ~bits_per_key =
  let nbits = max 64 (expected * bits_per_key) in
  let k = max 1 (int_of_float (0.69 *. float_of_int bits_per_key +. 0.5)) in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; k; count = 0 }

let set_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  let v = Char.code (Bytes.get t.bits byte) lor (1 lsl bit) in
  Bytes.set t.bits byte (Char.chr v)

let get_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

(* Double hashing: bit_j = h1 + j*h2 (Kirsch & Mitzenmacher). *)
let probe t key j =
  let h1 = Hash.to_int (Hash.mix64 key) in
  let h2 = Hash.to_int (Hash.mix64 (Int64.add key 0x9e3779b97f4a7c15L)) in
  (* mask after the addition: the multiply may wrap negative *)
  ((h1 + (j * (h2 lor 1))) land max_int) mod t.nbits

let add_silent t key =
  for j = 0 to t.k - 1 do
    set_bit t (probe t key j)
  done;
  t.count <- t.count + 1

let mem_silent t key =
  let rec go j = j >= t.k || (get_bit t (probe t key j) && go (j + 1)) in
  go 0

let c_probes = Obs.Counters.counter "bloom.probes"
let c_negatives = Obs.Counters.counter "bloom.negatives"

(* Per-level probe/negative counters, registered on first use.  Levels are
   small integers, so a memoized array of counter handles keeps the hot
   path free of string formatting. *)
let per_level_cache = Hashtbl.create 8

let level_counters level =
  match Hashtbl.find_opt per_level_cache level with
  | Some c -> c
  | None ->
    let c =
      ( Obs.Counters.counter (Printf.sprintf "bloom.probes.L%d" level),
        Obs.Counters.counter (Printf.sprintf "bloom.negatives.L%d" level) )
    in
    Hashtbl.add per_level_cache level c;
    c

let add t clock key =
  Pmem_sim.Clock.advance clock Pmem_sim.Cost_model.bloom_build_per_key_ns;
  add_silent t key

let mem ?level t clock key =
  Pmem_sim.Clock.advance clock Pmem_sim.Cost_model.bloom_check_ns;
  Obs.Counters.incr c_probes;
  let hit = mem_silent t key in
  if not hit then Obs.Counters.incr c_negatives;
  (match level with
  | Some l ->
    let probes, negatives = level_counters l in
    Obs.Counters.incr probes;
    if not hit then Obs.Counters.incr negatives
  | None -> ());
  hit

let footprint_bytes t = float_of_int (Bytes.length t.bits)
let nkeys t = t.count
