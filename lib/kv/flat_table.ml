module Clock = Pmem_sim.Clock
module Cost_model = Pmem_sim.Cost_model

type t = {
  keys : int64 array;
  locs : int array;
  nslots : int;
  thresh : float;
  mutable n : int;
}

let create ?(load_factor = 0.75) ~slots () =
  if slots <= 0 then invalid_arg "Flat_table.create";
  { keys = Array.make slots Types.empty_key;
    locs = Array.make slots 0;
    nslots = slots;
    thresh = load_factor;
    n = 0 }

let slots t = t.nslots
let count t = t.n
let load_factor t = float_of_int t.n /. float_of_int t.nslots
let threshold t = t.thresh
let is_full t = float_of_int t.n >= (t.thresh *. float_of_int t.nslots)

let charge_probe clock ~first =
  Clock.advance clock
    (if first then Cost_model.dram_read_ns else Cost_model.dram_hit_ns)

(* Returns the slot holding [key], or the first empty slot of its probe
   chain.  The table is never 100% full (threshold < 1), so a chain always
   terminates. *)
let find_slot t clock key =
  let h = Hash.mix64 key in
  let start = Hash.slot_of ~hash:h ~slots:t.nslots in
  let rec probe i steps =
    charge_probe clock ~first:(steps = 0);
    if Int64.equal t.keys.(i) key || Int64.equal t.keys.(i) Types.empty_key
    then i
    else probe ((i + 1) mod t.nslots) (steps + 1)
  in
  probe start 0

let put t clock key loc =
  assert (not (Int64.equal key Types.empty_key));
  let i = find_slot t clock key in
  if Int64.equal t.keys.(i) key then begin
    t.locs.(i) <- loc;
    Clock.advance clock Cost_model.dram_hit_ns;
    `Ok
  end
  else if is_full t then `Full
  else begin
    t.keys.(i) <- key;
    t.locs.(i) <- loc;
    t.n <- t.n + 1;
    Clock.advance clock Cost_model.dram_hit_ns;
    `Ok
  end

let put_exn t clock key loc =
  match put t clock key loc with
  | `Ok -> ()
  | `Full -> failwith "Flat_table.put_exn: table full"

let get t clock key =
  let i = find_slot t clock key in
  if Int64.equal t.keys.(i) key then Some t.locs.(i) else None

let iter t f =
  for i = 0 to t.nslots - 1 do
    if not (Int64.equal t.keys.(i) Types.empty_key) then f t.keys.(i) t.locs.(i)
  done

let clear t =
  Array.fill t.keys 0 t.nslots Types.empty_key;
  t.n <- 0

(* Order-independent content digest: XOR of per-binding record CRCs.  The
   table is DRAM-resident (not subject to media faults), but integrity
   tests use this to assert that a rebuild reproduced the same logical
   contents regardless of probe order. *)
let digest t =
  let module Crc = Pmem_sim.Crc32c in
  let d = ref 0l in
  iter t (fun k loc ->
      d := Int32.logxor !d (Crc.int (Crc.int64 Crc.empty k) loc));
  !d

let footprint_bytes t = float_of_int (t.nslots * Types.slot_bytes)
