(** Minimal perfect hash over an immutable key set (CHD-style hash and
    displace, after CompassDB).

    [build] maps n distinct keys bijectively onto slots [0, n): keys fall
    into m ~ n/2 buckets by a first hash; buckets are placed in decreasing
    size order, each retrying displacement values deterministically until
    its keys land on distinct free slots; singleton buckets are
    direct-assigned the remaining free slots (flag-bit encoding), so the
    search cannot stall at load factor 1.0.  A bucket that exhausts its
    displacement budget restarts the whole build under the next global
    seed — still deterministic.

    The function is total: a {e non-member} key evaluates to some slot in
    [0, n), so membership must be confirmed against the key stored in the
    slot (which the last-level run format provides for free).

    Construction is charged by the caller (see
    [Cost_model.mph_build_per_key_ns] and the [mph.build_*] counters);
    {!eval_charged} prices one lookup as hash + DRAM-mirror costs. *)

type t

val build : ?seed:int -> Types.key array -> t * int
(** [build ~seed keys] constructs the MPH for the distinct [keys] (order
    does not matter; the result is a function of the key set and [seed])
    and returns the number of displacement attempts, so the caller can
    charge the search at [hash_ns + dram_hit_ns] per attempt.  Increments
    the [mph.builds] / [mph.build_keys] / [mph.build_attempts] /
    [mph.build_restarts] counters.  Handles the empty set (every key then
    evaluates to slot 0).  Raises [Failure] if the displacement search
    does not converge after 64 seed restarts (not expected in
    practice). *)

val n : t -> int
(** Member keys (= slots). *)

val m : t -> int
(** Displacement buckets (DRAM mirror entries). *)

val seed : t -> int

val eval : t -> Types.key -> int
(** Slot of [key] in [0, max 1 n), uncharged.  Injective over the member
    keys; arbitrary (but stable) for non-members. *)

val eval_charged : t -> Pmem_sim.Clock.t -> Types.key -> int
(** {!eval}, charging the bucket hash, the displacement-array DRAM hit
    and (for displacement-searched buckets) the slot hash. *)

(** {1 Durable artifact}

    32 B header (magic, n, m, seed) + m little-endian u32 displacement
    codes + trailing CRC32C.  The DRAM mirror is the deserialized form;
    {!dram_bytes} is what it contributes to [dram_footprint]. *)

val serialized_bytes : t -> int
val serialize : t -> bytes

val deserialize : bytes -> t option
(** [None] on bad magic, bad length or CRC mismatch — the caller treats
    that as artifact corruption and rebuilds from the run. *)

val verify : bytes -> bool
(** Magic + CRC check only (= [deserialize b <> None]). *)

val dram_bytes : t -> int

val equal : t -> t -> bool
