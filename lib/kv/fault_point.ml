type site =
  | Foreground
  | Flush
  | Upper_compaction
  | Direct_compaction
  | Abi_dump
  | Last_level_merge
  | Gc
  | Manifest_update
  | Recovery
  | Scrub

let all =
  [ Foreground; Flush; Upper_compaction; Direct_compaction; Abi_dump;
    Last_level_merge; Gc; Manifest_update; Recovery; Scrub ]

let to_string = function
  | Foreground -> "foreground"
  | Flush -> "flush"
  | Upper_compaction -> "upper-compaction"
  | Direct_compaction -> "direct-compaction"
  | Abi_dump -> "abi-dump"
  | Last_level_merge -> "last-level-merge"
  | Gc -> "gc"
  | Manifest_update -> "manifest-update"
  | Recovery -> "recovery"
  | Scrub -> "scrub"

let of_string s =
  List.find_opt (fun site -> to_string site = s) all

(* The simulator is single-threaded (the multi-thread harness interleaves
   virtual clocks, not OCaml threads), so one global stack is enough. *)
let stack : site list ref = ref []

let current () = match !stack with [] -> Foreground | s :: _ -> s

let with_site site f =
  stack := site :: !stack;
  Fun.protect ~finally:(fun () ->
      match !stack with [] -> () | _ :: tl -> stack := tl)
    f

let reset () = stack := []
