module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Crc32c = Pmem_sim.Crc32c

type layout = Hashed | Sorted | Mph

type mph_art = {
  ma_idx : Mph.t; (* DRAM mirror (counted in dram_bytes) *)
  mutable ma_off : int; (* device offset of the serialized artifact *)
  ma_len : int;
}

type t = {
  dev : Device.t;
  off : int;
  nslots : int;
  mutable live : int;
  mutable tag : int;
  unit_crcs : int32 array; (* per-write-unit block checksums *)
  layout : layout;
  fences : Types.key array;
      (* Sorted only: first key of each write unit, kept in DRAM.  Point
         gets binary-search the fences and touch exactly one unit. *)
  mph : mph_art option;
      (* Mph only: the perfect-hash index — DRAM mirror plus its durable
         CRC-checked artifact in its own device allocation. *)
}

type probe = Found of Types.loc | Absent | Corrupted

let slot_off t i = t.off + (i * Types.slot_bytes)

(* Per-unit checksums over the run's bytes.  [off] is unit-aligned (the
   allocator aligns), so run-relative unit boundaries coincide with media
   units: a probe can verify exactly the block it loads. *)
let compute_unit_crcs ~unit bytes =
  let len = Bytes.length bytes in
  let n = (len + unit - 1) / unit in
  Array.init n (fun u ->
      let lo = u * unit in
      Crc32c.update Crc32c.empty bytes ~off:lo ~len:(min unit (len - lo)))

let build dev clock ~slots entries =
  if slots <= 0 then invalid_arg "Linear_table.build";
  let keys = Array.make slots Types.empty_key in
  let locs = Array.make slots 0 in
  let live = ref 0 in
  let insert (key, loc) =
    assert (not (Int64.equal key Types.empty_key));
    let h = Hash.mix64 key in
    let rec probe i =
      if Int64.equal keys.(i) key then locs.(i) <- loc
      else if Int64.equal keys.(i) Types.empty_key then begin
        keys.(i) <- key;
        locs.(i) <- loc;
        incr live
      end
      else probe ((i + 1) mod slots)
    in
    if !live >= slots then invalid_arg "Linear_table.build: overfull";
    Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
    probe (Hash.slot_of ~hash:h ~slots)
  in
  List.iter insert entries;
  let bytes = Bytes.create (slots * Types.slot_bytes) in
  for i = 0 to slots - 1 do
    Bytes.set_int64_le bytes (i * Types.slot_bytes) keys.(i);
    Bytes.set_int64_le bytes ((i * Types.slot_bytes) + 8)
      (Int64.of_int locs.(i))
  done;
  let unit = (Device.profile dev).Cost_model.write_unit in
  (* checksum the staged run before it goes out: one streaming CRC pass *)
  Clock.advance clock
    (Cost_model.crc_ns_per_byte *. float_of_int (Bytes.length bytes));
  let unit_crcs = compute_unit_crcs ~unit bytes in
  let off = Device.alloc dev (slots * Types.slot_bytes) in
  Device.write_bytes dev clock ~off bytes;
  Device.persist dev clock ~off ~len:(slots * Types.slot_bytes);
  { dev; off; nslots = slots; live = !live; tag = 0; unit_crcs;
    layout = Hashed; fences = [||]; mph = None }

(* Ordered variant of the run format: the same dense 16 B-slot array, but
   slots are filled in ascending key order (no probing, no holes except
   trailing padding) and a DRAM fence array records the first key of each
   write unit.  A point get binary-searches the fences and touches exactly
   one unit — cost parity with the hashed probe — while [iter] and a
   [cursor] stream the run in key order. *)
let build_sorted dev clock entries =
  let entries = List.stable_sort (fun (a, _) (b, _) -> Types.key_compare a b) entries in
  (* later bindings of the same key override earlier ones, as in [build] *)
  let entries =
    let rec dedup = function
      | (k1, _) :: ((k2, _) :: _ as rest) when Int64.equal k1 k2 -> dedup rest
      | e :: rest -> e :: dedup rest
      | [] -> []
    in
    dedup entries
  in
  let n = List.length entries in
  Clock.advance clock (Cost_model.sort_per_key_ns *. float_of_int n);
  let slots = max 1 n in
  let bytes = Bytes.make (slots * Types.slot_bytes) '\000' in
  List.iteri
    (fun i (k, loc) ->
      assert (not (Int64.equal k Types.empty_key));
      Bytes.set_int64_le bytes (i * Types.slot_bytes) k;
      Bytes.set_int64_le bytes ((i * Types.slot_bytes) + 8) (Int64.of_int loc))
    entries;
  let unit = (Device.profile dev).Cost_model.write_unit in
  assert (unit mod Types.slot_bytes = 0);
  let slots_per_unit = unit / Types.slot_bytes in
  Clock.advance clock
    (Cost_model.crc_ns_per_byte *. float_of_int (Bytes.length bytes));
  let unit_crcs = compute_unit_crcs ~unit bytes in
  let fences =
    Array.init (Array.length unit_crcs) (fun u ->
        Bytes.get_int64_le bytes (u * slots_per_unit * Types.slot_bytes))
  in
  let off = Device.alloc dev (slots * Types.slot_bytes) in
  Device.write_bytes dev clock ~off bytes;
  Device.persist dev clock ~off ~len:(slots * Types.slot_bytes);
  { dev; off; nslots = slots; live = n; tag = 0; unit_crcs;
    layout = Sorted; fences; mph = None }

(* Perfect-hash variant of the run format: the same dense 16 B-slot array,
   but each key sits at the slot a minimal perfect hash assigns it, and the
   MPH (a DRAM mirror backed by a CRC-checked device artifact in its own
   allocation) replaces both the Bloom filter and the probe chain: a point
   get evaluates the MPH in DRAM and issues exactly one device read.  The
   slot read back holds the key, so membership is verified for free — a
   missing key hits some slot, mismatches, and answers [Absent]; it can
   never alias to a wrong value. *)
let build_mph dev clock ?(seed = 0) entries =
  (* later bindings of the same key override earlier ones, as in [build] *)
  let newest = Hashtbl.create (max 16 (2 * List.length entries)) in
  List.iter
    (fun (k, loc) ->
      assert (not (Int64.equal k Types.empty_key));
      Hashtbl.replace newest k loc)
    entries;
  let n = Hashtbl.length newest in
  let keys = Array.make (max 1 n) Types.empty_key in
  let i = ref 0 in
  Hashtbl.iter
    (fun k _ ->
      keys.(!i) <- k;
      incr i)
    newest;
  let keys = Array.sub keys 0 n in
  let idx, attempts = Mph.build ~seed keys in
  (* construction cost: per-key partition/bookkeeping plus the
     displacement search (one hash + one DRAM occupancy check each) *)
  Clock.advance clock
    ((Cost_model.mph_build_per_key_ns *. float_of_int n)
    +. ((Cost_model.hash_ns +. Cost_model.dram_hit_ns)
       *. float_of_int attempts));
  let slots = max 1 n in
  let bytes = Bytes.make (slots * Types.slot_bytes) '\000' in
  Array.iter
    (fun k ->
      let s = Mph.eval idx k in
      Bytes.set_int64_le bytes (s * Types.slot_bytes) k;
      Bytes.set_int64_le bytes
        ((s * Types.slot_bytes) + 8)
        (Int64.of_int (Hashtbl.find newest k)))
    keys;
  let unit = (Device.profile dev).Cost_model.write_unit in
  Clock.advance clock
    (Cost_model.crc_ns_per_byte *. float_of_int (Bytes.length bytes));
  let unit_crcs = compute_unit_crcs ~unit bytes in
  let off = Device.alloc dev (slots * Types.slot_bytes) in
  Device.write_bytes dev clock ~off bytes;
  Device.persist dev clock ~off ~len:(slots * Types.slot_bytes);
  (* the durable artifact goes out before the run is published, so a crash
     recovering from the manifest always finds both or neither *)
  let art = Mph.serialize idx in
  let alen = Bytes.length art in
  Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int alen);
  let aoff = Device.alloc dev alen in
  Device.write_bytes dev clock ~off:aoff art;
  Device.persist dev clock ~off:aoff ~len:alen;
  { dev; off; nslots = slots; live = n; tag = 0; unit_crcs;
    layout = Mph; fences = [||];
    mph = Some { ma_idx = idx; ma_off = aoff; ma_len = alen } }

let slots t = t.nslots
let is_sorted t = t.layout = Sorted
let is_mph t = t.layout = Mph

let dram_bytes t =
  (8 * Array.length t.fences)
  + match t.mph with Some a -> Mph.dram_bytes a.ma_idx | None -> 0
let count t = t.live
let tag t = t.tag
let set_tag t v = t.tag <- v
let byte_size t = t.nslots * Types.slot_bytes

(* Does the media block holding run-relative unit [u] still carry the bytes
   the run was built with?  Uncharged: the caller prices the CRC pass. *)
let unit_intact_unpriced t u =
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  let lo = u * unit in
  let len = min unit (byte_size t - lo) in
  (not (Device.poisoned_in t.dev ~off:(t.off + lo) ~len))
  && Int32.equal t.unit_crcs.(u)
       (Crc32c.bytes (Device.peek_bytes t.dev ~off:(t.off + lo) ~len))

(* Largest fence index whose key is <= [key]; -1 if [key] precedes the run.
   Fences live in DRAM: each bisection step is charged as a key compare.
   [charge] is off for the silent path (DRAM-mirror callers price walks). *)
let fence_floor ?(clock = None) t key =
  let steps = ref 0 in
  let lo = ref 0 and hi = ref (Array.length t.fences - 1) and res = ref (-1) in
  while !lo <= !hi do
    incr steps;
    (match clock with
    | Some c -> Clock.advance c Cost_model.key_compare_ns
    | None -> ());
    let mid = (!lo + !hi) / 2 in
    if Types.key_compare t.fences.(mid) key <= 0 then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  (!res, !steps)

let slots_per_unit t = (Device.profile t.dev).Cost_model.write_unit / Types.slot_bytes

let get_sorted t clock key =
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  let u, _ = fence_floor ~clock:(Some clock) t key in
  if u < 0 then Absent
  else begin
    (* verify the one unit the key can live in, then scan its slots *)
    Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int unit);
    if not (unit_intact_unpriced t u) then Corrupted
    else begin
      let spu = slots_per_unit t in
      let stop = min t.nslots ((u + 1) * spu) in
      let rec scan i hint =
        if i >= stop then Absent
        else begin
          let off = slot_off t i in
          let k = Device.read_u64 t.dev clock ~off ~hint in
          if Int64.equal k key then
            Found
              (Int64.to_int
                 (Device.read_u64 t.dev clock ~off:(off + 8) ~hint:Adjacent))
          else if
            Int64.equal k Types.empty_key || Types.key_compare k key > 0
          then Absent
          else scan (i + 1) Device.Adjacent
        end
      in
      scan (u * spu) Device.Random
    end
  end

let get_hashed t clock key =
  let h = Hash.mix64 key in
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  let start = Hash.slot_of ~hash:h ~slots:t.nslots in
  let rec probe i prev_line =
    let off = slot_off t i in
    let line = off / unit in
    let hint : Device.read_hint =
      if prev_line = line then Adjacent else Random
    in
    (* first touch of a block verifies its checksum before any slot in it
       is trusted (the block is in cache; the CRC pass is CPU cost) *)
    if line <> prev_line then
      Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int unit);
    if line <> prev_line && not (unit_intact_unpriced t (line - (t.off / unit)))
    then Corrupted
    else begin
      let k = Device.read_u64 t.dev clock ~off ~hint in
      if Int64.equal k key then begin
        let loc = Device.read_u64 t.dev clock ~off:(off + 8) ~hint:Adjacent in
        Found (Int64.to_int loc)
      end
      else if Int64.equal k Types.empty_key then Absent
      else probe ((i + 1) mod t.nslots) line
    end
  in
  probe start (-1)

(* MPH get: the whole index walk happens in DRAM (bucket hash,
   displacement lookup, slot hash), the target unit is checksum-verified
   from the device's materialized bytes (CPU cost), and then exactly one
   device read fetches the 16 B slot.  The slot holds the key, so the read
   doubles as the membership check: a non-member key lands on some slot,
   mismatches, and answers [Absent] — never a wrong value. *)
let get_mph t clock key =
  match t.mph with
  | None -> Corrupted (* artifact lost and not yet rebuilt: fail closed *)
  | Some a ->
    let slot = Mph.eval_charged a.ma_idx clock key in
    let unit = (Device.profile t.dev).Cost_model.write_unit in
    let u = slot * Types.slot_bytes / unit in
    Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int unit);
    if not (unit_intact_unpriced t u) then Corrupted
    else begin
      let b =
        Device.read_bytes t.dev clock ~off:(slot_off t slot)
          ~len:Types.slot_bytes ~hint:Random
      in
      let k = Bytes.get_int64_le b 0 in
      if Int64.equal k key then
        Found (Int64.to_int (Bytes.get_int64_le b 8))
      else Absent
    end

let get t clock key =
  match t.layout with
  | Hashed -> get_hashed t clock key
  | Sorted -> get_sorted t clock key
  | Mph -> get_mph t clock key

(* Whole-run verification: poison over the span plus every block checksum.
   Charges the CRC pass always, and the bulk device read only when asked —
   compaction piggybacks verification on the streaming read it already does
   ([iter]), while the standalone scrubber pays for its own read. *)
let slots_intact ?(charge_read = false) t clock =
  let len = byte_size t in
  if charge_read then
    Device.charge_read_bytes t.dev clock ~len ~hint:Bulk;
  Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int len);
  (not (Device.poisoned_in t.dev ~off:t.off ~len))
  &&
  let ok = ref true in
  for u = 0 to Array.length t.unit_crcs - 1 do
    if !ok && not (unit_intact_unpriced t u) then ok := false
  done;
  !ok

(* Verify the durable MPH artifact (poison + magic + trailing CRC32C);
   vacuously true for non-MPH runs. *)
let mph_intact ?(charge_read = false) t clock =
  match t.mph with
  | None -> t.layout <> Mph
  | Some a ->
    if charge_read then
      Device.charge_read_bytes t.dev clock ~len:a.ma_len ~hint:Bulk;
    Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int a.ma_len);
    (not (Device.poisoned_in t.dev ~off:a.ma_off ~len:a.ma_len))
    && Mph.verify (Device.peek_bytes t.dev ~off:a.ma_off ~len:a.ma_len)

let intact ?charge_read t clock =
  slots_intact ?charge_read t clock && mph_intact ?charge_read t clock

(* Targeted repair for an MPH run whose slots verify but whose artifact
   does not: re-serialize the DRAM mirror into a fresh allocation and drop
   the damaged one (dealloc clears its poison).  The scrubber uses this so
   artifact rot costs one small write instead of a full shard rebuild. *)
let rebuild_mph_artifact t clock =
  match t.mph with
  | None -> ()
  | Some a ->
    let art = Mph.serialize a.ma_idx in
    let alen = Bytes.length art in
    Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int alen);
    let aoff = Device.alloc t.dev alen in
    Device.write_bytes t.dev clock ~off:aoff art;
    Device.persist t.dev clock ~off:aoff ~len:alen;
    Device.dealloc t.dev ~off:a.ma_off ~len:a.ma_len;
    a.ma_off <- aoff

let iter t clock f =
  let len = t.nslots * Types.slot_bytes in
  let bytes = Device.read_bytes t.dev clock ~off:t.off ~len ~hint:Bulk in
  for i = 0 to t.nslots - 1 do
    let k = Bytes.get_int64_le bytes (i * Types.slot_bytes) in
    if not (Int64.equal k Types.empty_key) then begin
      let loc = Int64.to_int (Bytes.get_int64_le bytes ((i * Types.slot_bytes) + 8)) in
      f k loc
    end
  done

let media_range t = (t.off, byte_size t)

let mph_media_range t =
  match t.mph with Some a -> Some (a.ma_off, a.ma_len) | None -> None

let free t =
  Device.dealloc t.dev ~off:t.off ~len:(byte_size t);
  match t.mph with
  | Some a -> Device.dealloc t.dev ~off:a.ma_off ~len:a.ma_len
  | None -> ()

(* Silent accessors: no device-cost charging.  Used by stores that keep a
   DRAM copy of a table (Pmem-LSM-PinK) and charge DRAM costs themselves.
   [get_silent] also reports the probe count so callers can price the walk.
   The DRAM mirror is not subject to media faults, so these do not verify. *)

let get_silent t key =
  match t.layout with
  | Mph ->
      (match t.mph with
      | None -> (None, 0)
      | Some a ->
          let slot = Mph.eval a.ma_idx key in
          let off = slot_off t slot in
          if Int64.equal (Device.peek_u64 t.dev ~off) key then
            (Some (Int64.to_int (Device.peek_u64 t.dev ~off:(off + 8))), 1)
          else (None, 1))
  | Sorted ->
      let u, steps = fence_floor t key in
      if u < 0 then (None, steps)
      else begin
        let spu = slots_per_unit t in
        let stop = min t.nslots ((u + 1) * spu) in
        let rec scan i steps =
          if i >= stop then (None, steps)
          else begin
            let off = slot_off t i in
            let k = Device.peek_u64 t.dev ~off in
            if Int64.equal k key then
              (Some (Int64.to_int (Device.peek_u64 t.dev ~off:(off + 8))), steps + 1)
            else if Int64.equal k Types.empty_key || Types.key_compare k key > 0
            then (None, steps + 1)
            else scan (i + 1) (steps + 1)
          end
        in
        scan (u * spu) steps
      end
  | Hashed ->
      let h = Hash.mix64 key in
      let start = Hash.slot_of ~hash:h ~slots:t.nslots in
      let rec probe i steps =
        let off = slot_off t i in
        let k = Device.peek_u64 t.dev ~off in
        if Int64.equal k key then begin
          let loc = Device.peek_u64 t.dev ~off:(off + 8) in
          (Some (Int64.to_int loc), steps + 1)
        end
        else if Int64.equal k Types.empty_key then (None, steps + 1)
        else probe ((i + 1) mod t.nslots) (steps + 1)
      in
      probe start 0

let iter_silent t f =
  for i = 0 to t.nslots - 1 do
    let off = slot_off t i in
    let k = Device.peek_u64 t.dev ~off in
    if not (Int64.equal k Types.empty_key) then begin
      let loc = Int64.to_int (Device.peek_u64 t.dev ~off:(off + 8)) in
      f k loc
    end
  done

(* Ordered cursor over a Sorted run.  Lazy: units are bulk-read and
   checksum-verified one at a time as the cursor crosses into them, so a
   short scan touching one unit pays for one unit.  Entries are served
   from the unit's DRAM copy at [scan_per_entry_ns] each.  Tombstones and
   quarantine markers ARE emitted — shadowing and suppression are the
   merge layer's job.  A failing unit is fail-stop: the cursor answers
   [`Corrupt] from then on. *)
type cursor = {
  ct : t;
  cclock : Clock.t;
  start : Types.key;
  mutable i : int; (* next slot to serve *)
  mutable buf : Bytes.t; (* current unit's bytes *)
  mutable buf_unit : int; (* unit index of [buf]; -1 = none loaded *)
  mutable positioned : bool; (* past the < start prefix of the start unit *)
  mutable dead : bool;
}

let cursor t clock ~start =
  if t.layout <> Sorted then invalid_arg "Linear_table.cursor: unsorted run";
  let u, _ = fence_floor ~clock:(Some clock) t start in
  let spu = slots_per_unit t in
  { ct = t;
    cclock = clock;
    start;
    i = (if u <= 0 then 0 else u * spu);
    buf = Bytes.empty;
    buf_unit = -1;
    positioned = false;
    dead = false }

let rec cursor_next c =
  if c.dead then `Corrupt
  else if c.i >= c.ct.nslots then `End
  else begin
    let t = c.ct in
    let unit = (Device.profile t.dev).Cost_model.write_unit in
    let u = c.i * Types.slot_bytes / unit in
    if u <> c.buf_unit then begin
      Clock.advance c.cclock (Cost_model.crc_ns_per_byte *. float_of_int unit);
      if not (unit_intact_unpriced t u) then begin
        c.dead <- true;
        `Corrupt
      end
      else begin
        let lo = u * unit in
        let len = min unit (byte_size t - lo) in
        c.buf <-
          Device.read_bytes t.dev c.cclock ~off:(t.off + lo) ~len ~hint:Bulk;
        c.buf_unit <- u;
        cursor_serve c
      end
    end
    else cursor_serve c
  end

and cursor_serve c =
  let t = c.ct in
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  let rel = (c.i * Types.slot_bytes) - (c.buf_unit * unit) in
  let k = Bytes.get_int64_le c.buf rel in
  Clock.advance c.cclock Cost_model.scan_per_entry_ns;
  c.i <- c.i + 1;
  if Int64.equal k Types.empty_key then `End (* dense: only trailing padding *)
  else if (not c.positioned) && Types.key_compare k c.start < 0 then
    cursor_next c
  else begin
    c.positioned <- true;
    `Entry (k, Int64.to_int (Bytes.get_int64_le c.buf (rel + 8)))
  end
