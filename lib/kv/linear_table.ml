module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Crc32c = Pmem_sim.Crc32c

type t = {
  dev : Device.t;
  off : int;
  nslots : int;
  mutable live : int;
  mutable tag : int;
  unit_crcs : int32 array; (* per-write-unit block checksums *)
}

type probe = Found of Types.loc | Absent | Corrupted

let slot_off t i = t.off + (i * Types.slot_bytes)

(* Per-unit checksums over the run's bytes.  [off] is unit-aligned (the
   allocator aligns), so run-relative unit boundaries coincide with media
   units: a probe can verify exactly the block it loads. *)
let compute_unit_crcs ~unit bytes =
  let len = Bytes.length bytes in
  let n = (len + unit - 1) / unit in
  Array.init n (fun u ->
      let lo = u * unit in
      Crc32c.update Crc32c.empty bytes ~off:lo ~len:(min unit (len - lo)))

let build dev clock ~slots entries =
  if slots <= 0 then invalid_arg "Linear_table.build";
  let keys = Array.make slots Types.empty_key in
  let locs = Array.make slots 0 in
  let live = ref 0 in
  let insert (key, loc) =
    assert (not (Int64.equal key Types.empty_key));
    let h = Hash.mix64 key in
    let rec probe i =
      if Int64.equal keys.(i) key then locs.(i) <- loc
      else if Int64.equal keys.(i) Types.empty_key then begin
        keys.(i) <- key;
        locs.(i) <- loc;
        incr live
      end
      else probe ((i + 1) mod slots)
    in
    if !live >= slots then invalid_arg "Linear_table.build: overfull";
    Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
    probe (Hash.slot_of ~hash:h ~slots)
  in
  List.iter insert entries;
  let bytes = Bytes.create (slots * Types.slot_bytes) in
  for i = 0 to slots - 1 do
    Bytes.set_int64_le bytes (i * Types.slot_bytes) keys.(i);
    Bytes.set_int64_le bytes ((i * Types.slot_bytes) + 8)
      (Int64.of_int locs.(i))
  done;
  let unit = (Device.profile dev).Cost_model.write_unit in
  (* checksum the staged run before it goes out: one streaming CRC pass *)
  Clock.advance clock
    (Cost_model.crc_ns_per_byte *. float_of_int (Bytes.length bytes));
  let unit_crcs = compute_unit_crcs ~unit bytes in
  let off = Device.alloc dev (slots * Types.slot_bytes) in
  Device.write_bytes dev clock ~off bytes;
  Device.persist dev clock ~off ~len:(slots * Types.slot_bytes);
  { dev; off; nslots = slots; live = !live; tag = 0; unit_crcs }

let slots t = t.nslots
let count t = t.live
let tag t = t.tag
let set_tag t v = t.tag <- v
let byte_size t = t.nslots * Types.slot_bytes

(* Does the media block holding run-relative unit [u] still carry the bytes
   the run was built with?  Uncharged: the caller prices the CRC pass. *)
let unit_intact_unpriced t u =
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  let lo = u * unit in
  let len = min unit (byte_size t - lo) in
  (not (Device.poisoned_in t.dev ~off:(t.off + lo) ~len))
  && Int32.equal t.unit_crcs.(u)
       (Crc32c.bytes (Device.peek_bytes t.dev ~off:(t.off + lo) ~len))

let get t clock key =
  let h = Hash.mix64 key in
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  let start = Hash.slot_of ~hash:h ~slots:t.nslots in
  let rec probe i prev_line =
    let off = slot_off t i in
    let line = off / unit in
    let hint : Device.read_hint =
      if prev_line = line then Adjacent else Random
    in
    (* first touch of a block verifies its checksum before any slot in it
       is trusted (the block is in cache; the CRC pass is CPU cost) *)
    if line <> prev_line then
      Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int unit);
    if line <> prev_line && not (unit_intact_unpriced t (line - (t.off / unit)))
    then Corrupted
    else begin
      let k = Device.read_u64 t.dev clock ~off ~hint in
      if Int64.equal k key then begin
        let loc = Device.read_u64 t.dev clock ~off:(off + 8) ~hint:Adjacent in
        Found (Int64.to_int loc)
      end
      else if Int64.equal k Types.empty_key then Absent
      else probe ((i + 1) mod t.nslots) line
    end
  in
  probe start (-1)

(* Whole-run verification: poison over the span plus every block checksum.
   Charges the CRC pass always, and the bulk device read only when asked —
   compaction piggybacks verification on the streaming read it already does
   ([iter]), while the standalone scrubber pays for its own read. *)
let intact ?(charge_read = false) t clock =
  let len = byte_size t in
  if charge_read then
    Device.charge_read_bytes t.dev clock ~len ~hint:Bulk;
  Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int len);
  (not (Device.poisoned_in t.dev ~off:t.off ~len))
  &&
  let ok = ref true in
  for u = 0 to Array.length t.unit_crcs - 1 do
    if !ok && not (unit_intact_unpriced t u) then ok := false
  done;
  !ok

let iter t clock f =
  let len = t.nslots * Types.slot_bytes in
  let bytes = Device.read_bytes t.dev clock ~off:t.off ~len ~hint:Bulk in
  for i = 0 to t.nslots - 1 do
    let k = Bytes.get_int64_le bytes (i * Types.slot_bytes) in
    if not (Int64.equal k Types.empty_key) then begin
      let loc = Int64.to_int (Bytes.get_int64_le bytes ((i * Types.slot_bytes) + 8)) in
      f k loc
    end
  done

let media_range t = (t.off, byte_size t)
let free t = Device.dealloc t.dev ~off:t.off ~len:(byte_size t)

(* Silent accessors: no device-cost charging.  Used by stores that keep a
   DRAM copy of a table (Pmem-LSM-PinK) and charge DRAM costs themselves.
   [get_silent] also reports the probe count so callers can price the walk.
   The DRAM mirror is not subject to media faults, so these do not verify. *)

let get_silent t key =
  let h = Hash.mix64 key in
  let start = Hash.slot_of ~hash:h ~slots:t.nslots in
  let rec probe i steps =
    let off = slot_off t i in
    let k = Device.peek_u64 t.dev ~off in
    if Int64.equal k key then begin
      let loc = Device.peek_u64 t.dev ~off:(off + 8) in
      (Some (Int64.to_int loc), steps + 1)
    end
    else if Int64.equal k Types.empty_key then (None, steps + 1)
    else probe ((i + 1) mod t.nslots) (steps + 1)
  in
  probe start 0

let iter_silent t f =
  for i = 0 to t.nslots - 1 do
    let off = slot_off t i in
    let k = Device.peek_u64 t.dev ~off in
    if not (Int64.equal k Types.empty_key) then begin
      let loc = Int64.to_int (Device.peek_u64 t.dev ~off:(off + 8)) in
      f k loc
    end
  done
