(** Persistence-site registry for crash fault injection.

    Every code path that issues persist-class device operations declares
    which logical site it is running under ([with_site]); the fault
    injector reads [current ()] from the device persist hook to decide
    whether the scheduled crash point has been reached.  Sites nest
    (e.g. an ABI dump triggered from inside a flush reports [Abi_dump]);
    the innermost site wins. *)

type site =
  | Foreground        (** no background site active: user op / vlog append *)
  | Flush             (** MemTable flush into L0 (or baseline level 0) *)
  | Upper_compaction  (** upper-level to upper-level compaction *)
  | Direct_compaction (** ChameleonDB direct compaction (skip levels) *)
  | Abi_dump          (** GPM dump of the ABI into the upper levels *)
  | Last_level_merge  (** merge into the terminal KV-separated level *)
  | Gc                (** value-log garbage collection *)
  | Manifest_update   (** persisting manifest records (recovery floors) *)
  | Recovery          (** post-crash recovery itself (for crash-during-recovery) *)
  | Scrub             (** background integrity scrub / repair rewrites *)

val all : site list
val to_string : site -> string
val of_string : string -> site option

val current : unit -> site
(** Innermost active site, [Foreground] when none. *)

val with_site : site -> (unit -> 'a) -> 'a
(** Run [f] with [site] pushed; exception-safe (the injector unwinds
    through these frames when it raises a crash). *)

val reset : unit -> unit
(** Clear the site stack.  Harness hygiene between independent runs. *)
