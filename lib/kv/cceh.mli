(** CCEH — Cacheline-Conscious Extendible Hashing (Nam et al., FAST'19) —
    the paper's Pmem-Hash baseline.

    A directory of segments; a key hashes to a directory entry (top bits)
    and linear-probes a bounded window inside the 16 KB segment.  A
    successful insertion is a single in-place 16 B slot write persisted
    immediately — which on Optane turns into a full 256 B media unit, the
    write amplification that makes Pmem-Hash the slowest writer in the
    evaluation.  When a probe window overflows, the segment splits (bulk
    read + two bulk writes) and the directory may double.

    Because both segments and slots are persisted in place, recovery only
    rebuilds the small DRAM directory cache. *)

type t

val create : ?segment_slots:int -> ?probe_limit:int -> Pmem_sim.Device.t -> t
(** Defaults: 1024 slots per segment (16 KB), probe window 16. *)

val count : t -> int
val segments : t -> int
val global_depth : t -> int

val put : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc -> unit
val get : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc option
(** Returns the stored location; tombstones are returned as-is (the caller
    interprets them). *)

val delete : t -> Pmem_sim.Clock.t -> Types.key -> bool
(** In-place tombstone write; [true] if the key was present. *)

val iter : t -> Pmem_sim.Clock.t -> (Types.key -> Types.loc -> unit) -> unit
(** Visit every occupied slot (tombstones included), one bulk device read
    per distinct segment — the honest enumeration cost a hash index pays
    for a snapshot scan. *)

val dram_footprint : t -> float
(** Directory cache plus per-segment metadata kept in DRAM. *)

val recover : t -> Pmem_sim.Clock.t -> unit
(** Rebuild the DRAM directory from segment metadata: one small read per
    segment. *)

val splits : t -> int
(** Number of segment splits performed (tests / latency attribution). *)
