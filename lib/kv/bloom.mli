(** Bloom filters, as used by the Pmem-LSM-F baseline (and by NoveLSM /
    MatrixKV models).

    The filter itself lives in DRAM; what matters to the simulation is the
    CPU cost: {!add} charges the construction cost the paper identifies as
    Pmem-LSM-F's put bottleneck, and {!mem} charges the per-filter check cost
    that dominates read latency on Optane (Challenge 2 / Fig. 2). *)

type t

val create : expected:int -> bits_per_key:int -> t
(** A filter sized for [expected] keys at [bits_per_key] (k is derived as
    [max 1 (round (0.69 * bits_per_key))]). *)

val add : t -> Pmem_sim.Clock.t -> Types.key -> unit

val mem : ?level:int -> t -> Pmem_sim.Clock.t -> Types.key -> bool
(** May return false positives; never false negatives.  Always counted
    against the global [bloom.probes] / [bloom.negatives]; with [?level],
    additionally against [bloom.probes.L<n>] / [bloom.negatives.L<n>], so
    experiments can report per-level filter traffic. *)

val add_silent : t -> Types.key -> unit
(** Insert without charging time (used when rebuilding in tests). *)

val mem_silent : t -> Types.key -> bool

val footprint_bytes : t -> float
val nkeys : t -> int
