module Clock = Pmem_sim.Clock
module Cost_model = Pmem_sim.Cost_model
module Crc32c = Pmem_sim.Crc32c

(* Minimal perfect hash over an immutable key set, CHD-style (hash and
   displace): keys are partitioned into m ~ n/2 buckets by a first hash;
   buckets are processed in decreasing size order, each trying displacement
   values d = 0, 1, 2, ... until every key in the bucket lands on a distinct
   free slot of the n-slot table.  Singleton buckets skip the search and are
   assigned the remaining free slots directly (encoded with a flag bit), so
   construction cannot stall hunting for the last free slot at load factor
   1.0.  If any bucket exhausts its displacement budget the whole build
   deterministically restarts under the next global seed.

   Bucket sizing matters at load factor 1.0: with an average of two keys
   per bucket the tail of the placement (the last 2-key buckets) still
   sees ~e^-2 = 13.5% of slots free — those reserved for the singleton
   buckets placed after the search — so a displacement attempt succeeds
   with probability ~1.8% and the 2000-attempt budget fails with
   probability ~e^-36 per bucket.  At four keys per bucket the same tail
   sees only ~e^-4 = 1.8% free and entire builds fail routinely. *)

type t = {
  seed : int;
  n : int; (* member keys = table slots *)
  m : int; (* displacement buckets *)
  disps : int array; (* per-bucket displacement code (u32 range) *)
}

(* construction counters (registry names, see DESIGN.md observability) *)
let c_builds = Obs.Counters.counter "mph.builds"
let c_build_keys = Obs.Counters.counter "mph.build_keys"
let c_build_attempts = Obs.Counters.counter "mph.build_attempts"
let c_build_restarts = Obs.Counters.counter "mph.build_restarts"

let direct_flag = 0x4000_0000
let retry_cap = 2_000
let max_restarts = 64

let salt_a seed = Hash.mix64 (Int64.of_int ((2 * seed) + 0x5bf0_3635))
let salt_b seed = Hash.mix64 (Int64.of_int ((2 * seed) + 0x1b87_3593))

let bucket_of ~seed ~m key =
  Hash.to_int (Hash.mix64 (Int64.logxor key (salt_a seed))) mod m

(* slot for [key] under displacement [d]; the per-key base hash can be
   computed once per bucket attempt sequence *)
let pos_of_base base ~n d =
  Hash.to_int
    (Hash.mix64 (Int64.add base (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (d + 1)))))
  mod n

let pos ~seed ~n key d =
  pos_of_base (Hash.mix64 (Int64.logxor key (salt_b seed))) ~n d

let n t = t.n
let m t = t.m
let seed t = t.seed

exception Restart

(* One construction attempt under a fixed global seed.  Deterministic in
   the key *set*: buckets sort their keys and ties between equal-size
   buckets break on bucket index, so rebuilding from the same keys (in any
   order) reproduces the identical function. *)
let try_build ~seed keys attempts =
  let nn = Array.length keys in
  let m = max 1 ((nn + 1) / 2) in
  let buckets = Array.make m [] in
  Array.iter
    (fun k ->
      let b = bucket_of ~seed ~m k in
      buckets.(b) <- k :: buckets.(b))
    keys;
  Array.iteri
    (fun i l -> buckets.(i) <- List.sort Types.key_compare l)
    buckets;
  let order = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      match
        compare (List.length buckets.(b)) (List.length buckets.(a))
      with
      | 0 -> compare a b
      | c -> c)
    order;
  let occupied = Array.make nn false in
  let disps = Array.make m 0 in
  let place_bucket b =
    match buckets.(b) with
    | [] | [ _ ] -> () (* singletons direct-assigned below *)
    | ks ->
      let bases =
        List.map (fun k -> Hash.mix64 (Int64.logxor k (salt_b seed))) ks
      in
      let rec search d =
        if d > retry_cap then raise Restart;
        incr attempts;
        let slots = List.map (fun base -> pos_of_base base ~n:nn d) bases in
        let ok =
          List.for_all (fun s -> not occupied.(s)) slots
          && List.length (List.sort_uniq compare slots) = List.length slots
        in
        if ok then begin
          List.iter (fun s -> occupied.(s) <- true) slots;
          disps.(b) <- d
        end
        else search (d + 1)
      in
      search 0
  in
  Array.iter place_bucket order;
  (* free slots in ascending order feed the singleton buckets in bucket
     order — O(n), collision-free by construction *)
  let free = ref [] in
  for s = nn - 1 downto 0 do
    if not occupied.(s) then free := s :: !free
  done;
  Array.iter
    (fun b ->
      match buckets.(b) with
      | [ _ ] ->
        incr attempts;
        (match !free with
        | s :: rest ->
          occupied.(s) <- true;
          disps.(b) <- direct_flag lor s;
          free := rest
        | [] -> assert false)
      | _ -> ())
    order;
  { seed; n = nn; m; disps }

let build ?(seed = 0) keys =
  Obs.Counters.incr c_builds;
  Obs.Counters.add_int c_build_keys (Array.length keys);
  if Array.length keys = 0 then ({ seed; n = 0; m = 0; disps = [||] }, 0)
  else begin
    let attempts = ref 0 in
    let rec go s tries =
      if tries >= max_restarts then
        failwith "Mph.build: displacement search did not converge"
      else
        try try_build ~seed:s keys attempts
        with Restart ->
          Obs.Counters.incr c_build_restarts;
          go (s + 1) (tries + 1)
    in
    let t = go seed 0 in
    Obs.Counters.add_int c_build_attempts !attempts;
    (t, !attempts)
  end

(* {2 Evaluation.} *)

let eval t key =
  if t.m = 0 then 0
  else begin
    let b = bucket_of ~seed:t.seed ~m:t.m key in
    let d = t.disps.(b) in
    if d land direct_flag <> 0 then d land (direct_flag - 1)
    else pos ~seed:t.seed ~n:t.n key d
  end

let eval_charged t clock key =
  if t.m = 0 then begin
    Clock.advance clock Cost_model.hash_ns;
    0
  end
  else begin
    (* bucket hash + displacement lookup in the DRAM mirror *)
    Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
    let b = bucket_of ~seed:t.seed ~m:t.m key in
    let d = t.disps.(b) in
    if d land direct_flag <> 0 then d land (direct_flag - 1)
    else begin
      Clock.advance clock Cost_model.hash_ns;
      pos ~seed:t.seed ~n:t.n key d
    end
  end

(* {2 Serialization.}

   Device-resident artifact: 32 B header (magic, n, m, seed), m little-
   endian u32 displacement codes, trailing CRC32C over everything before
   it.  The DRAM mirror is the deserialized form. *)

let magic = 0x314850_4D__343464L (* "d44MPH1" *)
let header_bytes = 32

let serialized_bytes t = header_bytes + (4 * t.m) + 4

let dram_bytes t = header_bytes + (4 * t.m)

let serialize t =
  let len = serialized_bytes t in
  let b = Bytes.create len in
  Bytes.set_int64_le b 0 magic;
  Bytes.set_int64_le b 8 (Int64.of_int t.n);
  Bytes.set_int64_le b 16 (Int64.of_int t.m);
  Bytes.set_int64_le b 24 (Int64.of_int t.seed);
  for i = 0 to t.m - 1 do
    Bytes.set_int32_le b (header_bytes + (4 * i)) (Int32.of_int t.disps.(i))
  done;
  Bytes.set_int32_le b (len - 4) (Crc32c.update Crc32c.empty b ~off:0 ~len:(len - 4));
  b

let deserialize b =
  let len = Bytes.length b in
  if len < header_bytes + 4 then None
  else if not (Int64.equal (Bytes.get_int64_le b 0) magic) then None
  else begin
    let crc = Crc32c.update Crc32c.empty b ~off:0 ~len:(len - 4) in
    if not (Int32.equal crc (Bytes.get_int32_le b (len - 4))) then None
    else begin
      let n = Int64.to_int (Bytes.get_int64_le b 8) in
      let m = Int64.to_int (Bytes.get_int64_le b 16) in
      let seed = Int64.to_int (Bytes.get_int64_le b 24) in
      if n < 0 || m < 0 || len <> header_bytes + (4 * m) + 4 then None
      else begin
        let disps =
          Array.init m (fun i ->
              Int32.to_int (Bytes.get_int32_le b (header_bytes + (4 * i)))
              land 0x7fff_ffff)
        in
        Some { seed; n; m; disps }
      end
    end
  end

let verify b = deserialize b <> None

let equal a b =
  a.seed = b.seed && a.n = b.n && a.m = b.m && a.disps = b.disps
