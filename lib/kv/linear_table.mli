(** Immutable persistent hash table laid out on the simulated Pmem device.

    This is the paper's on-Pmem table format (a sub-level of an LSM level):
    a fixed array of 16 B slots (8 B key, 8 B location), filled by linear
    probing, written to the device as one large aligned write — which is why
    flushing/compacting tables "can fully utilize the write bandwidth of
    Optane Pmem" (Section 2.1).  Once built, a table is immutable; it is
    dropped as a whole after compaction. *)

type t

type probe =
  | Found of Types.loc
  | Absent
  | Corrupted
      (** a block the probe touched is poisoned or fails its checksum *)

val build :
  Pmem_sim.Device.t -> Pmem_sim.Clock.t -> slots:int ->
  (Types.key * Types.loc) list -> t
(** [build dev c ~slots entries] assembles the slot array in a DRAM staging
    buffer (charging hashing and copy costs), writes it to a fresh device
    allocation and persists it with a single large write.  Later bindings of
    the same key override earlier ones.  Raises [Invalid_argument] if
    [entries] exceed [slots]. *)

val build_sorted :
  Pmem_sim.Device.t -> Pmem_sim.Clock.t ->
  (Types.key * Types.loc) list -> t
(** Ordered variant of the run format used for the last level: the same
    dense 16 B-slot array, but slots hold the entries in ascending
    {!Types.key_compare} order (no probing, no holes) and a DRAM fence
    array records the first key of each write unit.  Charges
    [sort_per_key_ns] per entry plus the usual checksum/copy/write costs.
    Later bindings of the same key override earlier ones.  Point {!get}s
    binary-search the fences and touch exactly one unit; {!iter} and
    {!cursor} stream in key order. *)

val build_mph :
  Pmem_sim.Device.t -> Pmem_sim.Clock.t -> ?seed:int ->
  (Types.key * Types.loc) list -> t
(** Perfect-hash variant of the run format (CompassDB-style, see {!Mph}):
    the same dense 16 B-slot array, but each key occupies the slot the
    minimal perfect hash assigns it.  The MPH lives in DRAM (counted in
    {!dram_bytes}) and is additionally serialized to a CRC32C-checked
    device artifact in its own allocation, persisted before the run is
    published.  Later bindings of the same key override earlier ones.
    Construction charges [mph_build_per_key_ns] per key plus
    [hash_ns + dram_hit_ns] per displacement attempt; a point {!get}
    evaluates the MPH in DRAM and issues exactly one device read. *)

val is_sorted : t -> bool

val is_mph : t -> bool

val dram_bytes : t -> int
(** DRAM resident bytes of the run's index: the fence array for sorted
    runs, the MPH mirror for perfect-hash runs, 0 for hashed runs. *)

val slots : t -> int
val count : t -> int
(** Live entries. *)

val tag : t -> int
val set_tag : t -> int -> unit
(** Client-managed recency tag: ChameleonDB orders a shard's tables by
    creation sequence to resolve key versions across levels and GPM dumps. *)

val byte_size : t -> int

val media_range : t -> int * int
(** [(off, len)] of the run on the device — the media-fault injection
    target for tests and the sweep. *)

val get : t -> Pmem_sim.Clock.t -> Types.key -> probe
(** Probe the persistent table.  The first probe is a random device read;
    linear-probe successors within the same 256 B unit are charged as
    adjacent accesses.  Each block is checksum-verified on first touch
    (charged at [crc_ns_per_byte]); a failing block answers [Corrupted]
    rather than trusting its slots. *)

val intact : ?charge_read:bool -> t -> Pmem_sim.Clock.t -> bool
(** Verify the whole run: no poisoned media units and every per-unit block
    checksum matches the device bytes — plus, on a perfect-hash run, the
    durable MPH artifact ({!mph_intact}).  Always charges the streaming
    CRC pass; [charge_read] (default false) additionally charges the bulk
    device read — the scrubber sets it, while compaction piggybacks
    verification on the streaming read {!iter} already performs. *)

val slots_intact : ?charge_read:bool -> t -> Pmem_sim.Clock.t -> bool
(** {!intact} restricted to the slot array.  The scrubber uses the
    [slots_intact] / [mph_intact] split to tell artifact-only damage
    (repairable in place via {!rebuild_mph_artifact}) from slot damage
    (full shard rebuild). *)

val mph_intact : ?charge_read:bool -> t -> Pmem_sim.Clock.t -> bool
(** Verify the durable MPH artifact: poison, magic and trailing CRC32C.
    Vacuously true for non-MPH runs. *)

val rebuild_mph_artifact : t -> Pmem_sim.Clock.t -> unit
(** Re-serialize the DRAM mirror of the MPH into a fresh allocation and
    drop the damaged artifact (dealloc clears its poison).  No-op on
    non-MPH runs. *)

val mph_media_range : t -> (int * int) option
(** [(off, len)] of the durable MPH artifact — the media-fault injection
    target for artifact-corruption tests.  [None] for non-MPH runs. *)

val iter : t -> Pmem_sim.Clock.t -> (Types.key -> Types.loc -> unit) -> unit
(** Stream the whole table from the device (one bulk read) and apply [f] to
    live slots — the read half of a compaction.  On a sorted run the order
    is ascending {!Types.key_compare}. *)

type cursor
(** Lazy ordered iterator over a {!build_sorted} run: units are bulk-read
    and checksum-verified one at a time as the cursor crosses into them, so
    a short scan touching one unit pays for one unit. *)

val cursor : t -> Pmem_sim.Clock.t -> start:Types.key -> cursor
(** Position a cursor at the first entry whose key is [>= start] (fence
    binary search, charged per compare).  Raises [Invalid_argument] on a
    hashed run. *)

val cursor_next :
  cursor -> [ `Entry of Types.key * Types.loc | `End | `Corrupt ]
(** Next entry in ascending key order.  Tombstone and quarantine locations
    are emitted as-is — suppression is the merge layer's job.  A unit that
    fails verification makes the cursor fail-stop: [`Corrupt] from then
    on. *)

val free : t -> unit
(** Return the allocation to the device accounting. *)

val get_silent : t -> Types.key -> Types.loc option * int
(** Probe without charging device costs; also returns the number of slots
    probed so a caller holding a DRAM mirror (Pmem-LSM-PinK) can charge
    DRAM costs for the walk. *)

val iter_silent : t -> (Types.key -> Types.loc -> unit) -> unit
(** Iterate live slots without cost charging. *)
