module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model

type segment = {
  off : int;
  mutable local_depth : int;
  mutable n : int; (* occupied slots, tombstones included *)
}

type t = {
  dev : Device.t;
  seg_slots : int;
  probe_limit : int;
  mutable dir : segment array; (* length 2^global_depth *)
  mutable global_depth : int;
  mutable nsegments : int;
  mutable count : int;
  mutable nsplits : int;
}

let seg_bytes t = t.seg_slots * Types.slot_bytes

let alloc_segment t clock ~local_depth =
  let off = Device.alloc t.dev (seg_bytes t) in
  (* zero-fill the fresh segment (one bulk write) *)
  Device.write_bytes t.dev clock ~off (Bytes.make (seg_bytes t) '\000');
  Device.persist t.dev clock ~off ~len:(seg_bytes t);
  t.nsegments <- t.nsegments + 1;
  { off; local_depth; n = 0 }

let create ?(segment_slots = 1024) ?(probe_limit = 16) dev =
  let t =
    { dev;
      seg_slots = segment_slots;
      probe_limit;
      dir = [||];
      global_depth = 1;
      nsegments = 0;
      count = 0;
      nsplits = 0 }
  in
  let clock = Clock.create () in
  let s0 = alloc_segment t clock ~local_depth:1 in
  let s1 = alloc_segment t clock ~local_depth:1 in
  t.dir <- [| s0; s1 |];
  t

let count t = t.count
let segments t = t.nsegments
let global_depth t = t.global_depth

let dir_index t hash =
  if t.global_depth = 0 then 0
  else Int64.to_int (Int64.shift_right_logical hash (64 - t.global_depth))

let slot_off _t seg i = seg.off + (i * Types.slot_bytes)

(* Probe the bounded window; [`Hit i] key found at slot i, [`Empty i] first
   free slot, [`Full] window exhausted. *)
let probe_window t clock seg key =
  let hash = Hash.mix64 key in
  let unit = (Device.profile t.dev).Cost_model.write_unit in
  (* reading a segment starts with its header (version word for CCEH's
     lock-free probing): one random device access *)
  Device.charge_read_bytes t.dev clock ~len:8 ~hint:Random;
  let start = Hash.slot_of ~hash ~slots:t.seg_slots in
  let rec go j prev_line =
    if j >= t.probe_limit then `Full
    else begin
      let i = (start + j) mod t.seg_slots in
      let off = slot_off t seg i in
      let line = off / unit in
      let hint : Device.read_hint =
        if line = prev_line then Adjacent else Random
      in
      let k = Device.read_u64 t.dev clock ~off ~hint in
      if Int64.equal k key then `Hit i
      else if Int64.equal k Types.empty_key then `Empty i
      else go (j + 1) line
    end
  in
  go 0 (-1)

let write_slot t clock seg i key loc =
  let off = slot_off t seg i in
  Device.write_u64 t.dev clock ~off key;
  Device.write_u64 t.dev clock ~off:(off + 8) (Int64.of_int loc);
  Device.persist t.dev clock ~off ~len:16

let write_loc t clock seg i loc =
  let off = slot_off t seg i + 8 in
  Device.write_u64 t.dev clock ~off (Int64.of_int loc);
  Device.persist t.dev clock ~off ~len:8

(* Directory-entry range covered by the segment reachable from [dir_ix]. *)
let seg_range t seg dir_ix =
  let width = 1 lsl (t.global_depth - seg.local_depth) in
  let base = dir_ix / width * width in
  (base, width)

let double_directory t =
  let old = t.dir in
  let n = Array.length old in
  t.dir <- Array.init (2 * n) (fun i -> old.(i / 2));
  t.global_depth <- t.global_depth + 1

let split t clock seg dir_ix =
  t.nsplits <- t.nsplits + 1;
  if seg.local_depth = t.global_depth then begin
    double_directory t;
    (* DRAM copy of the directory *)
    Clock.advance clock
      (float_of_int (Array.length t.dir) *. Cost_model.dram_hit_ns)
  end;
  (* dir_ix may have shifted after doubling: recompute from any entry that
     still points at [seg] *)
  let dir_ix =
    if t.dir.(min dir_ix (Array.length t.dir - 1)) == seg then
      min dir_ix (Array.length t.dir - 1)
    else begin
      let found = ref (-1) in
      Array.iteri (fun i s -> if !found < 0 && s == seg then found := i) t.dir;
      !found
    end
  in
  let base, width = seg_range t seg dir_ix in
  let child_depth = seg.local_depth + 1 in
  let left = alloc_segment t clock ~local_depth:child_depth in
  let right = alloc_segment t clock ~local_depth:child_depth in
  (* read the whole old segment, redistribute by the next hash bit *)
  let raw =
    Device.read_bytes t.dev clock ~off:seg.off ~len:(seg_bytes t) ~hint:Bulk
  in
  let lbuf = Bytes.make (seg_bytes t) '\000' in
  let rbuf = Bytes.make (seg_bytes t) '\000' in
  let place buf child key loc =
    let hash = Hash.mix64 key in
    let start = Hash.slot_of ~hash ~slots:t.seg_slots in
    let rec free j =
      let i = (start + j) mod t.seg_slots in
      if
        Int64.equal
          (Bytes.get_int64_le buf (i * Types.slot_bytes))
          Types.empty_key
      then i
      else free (j + 1)
    in
    let i = free 0 in
    Bytes.set_int64_le buf (i * Types.slot_bytes) key;
    Bytes.set_int64_le buf ((i * Types.slot_bytes) + 8) (Int64.of_int loc);
    child.n <- child.n + 1
  in
  for i = 0 to t.seg_slots - 1 do
    let key = Bytes.get_int64_le raw (i * Types.slot_bytes) in
    if not (Int64.equal key Types.empty_key) then begin
      let loc =
        Int64.to_int (Bytes.get_int64_le raw ((i * Types.slot_bytes) + 8))
      in
      let hash = Hash.mix64 key in
      let bit =
        Int64.to_int (Int64.shift_right_logical hash (64 - child_depth))
        land 1
      in
      Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
      if bit = 0 then place lbuf left key loc else place rbuf right key loc
    end
  done;
  Device.write_bytes t.dev clock ~off:left.off lbuf;
  Device.persist t.dev clock ~off:left.off ~len:(seg_bytes t);
  Device.write_bytes t.dev clock ~off:right.off rbuf;
  Device.persist t.dev clock ~off:right.off ~len:(seg_bytes t);
  Device.dealloc t.dev ~off:seg.off ~len:(seg_bytes t);
  t.nsegments <- t.nsegments - 1;
  (* rewire directory: first half of the range -> left, second -> right *)
  for i = base to base + (width / 2) - 1 do
    t.dir.(i) <- left
  done;
  for i = base + (width / 2) to base + width - 1 do
    t.dir.(i) <- right
  done

let rec put t clock key loc =
  assert (not (Int64.equal key Types.empty_key));
  Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
  let hash = Hash.mix64 key in
  let ix = dir_index t hash in
  let seg = t.dir.(ix) in
  match probe_window t clock seg key with
  | `Hit i -> write_loc t clock seg i loc
  | `Empty i ->
    write_slot t clock seg i key loc;
    seg.n <- seg.n + 1;
    t.count <- t.count + 1
  | `Full ->
    split t clock seg ix;
    put t clock key loc

let get t clock key =
  Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
  let hash = Hash.mix64 key in
  let seg = t.dir.(dir_index t hash) in
  match probe_window t clock seg key with
  | `Hit i ->
    let loc =
      Device.read_u64 t.dev clock ~off:(slot_off t seg i + 8) ~hint:Adjacent
    in
    Some (Int64.to_int loc)
  | `Empty _ | `Full -> None

let delete t clock key =
  Clock.advance clock (Cost_model.hash_ns +. Cost_model.dram_hit_ns);
  let hash = Hash.mix64 key in
  let seg = t.dir.(dir_index t hash) in
  match probe_window t clock seg key with
  | `Hit i ->
    write_loc t clock seg i Types.tombstone;
    true
  | `Empty _ | `Full -> false

let iter t clock f =
  (* one bulk read per distinct segment (directory entries alias segments
     whose local depth trails the global depth) *)
  let seen = Hashtbl.create (t.nsegments * 2) in
  Array.iter
    (fun seg ->
      if not (Hashtbl.mem seen seg.off) then begin
        Hashtbl.add seen seg.off ();
        let raw =
          Device.read_bytes t.dev clock ~off:seg.off ~len:(seg_bytes t)
            ~hint:Bulk
        in
        for i = 0 to t.seg_slots - 1 do
          let key = Bytes.get_int64_le raw (i * Types.slot_bytes) in
          if not (Int64.equal key Types.empty_key) then
            f key
              (Int64.to_int
                 (Bytes.get_int64_le raw ((i * Types.slot_bytes) + 8)))
        done
      end)
    t.dir

let dram_footprint t =
  float_of_int ((Array.length t.dir * 8) + (t.nsegments * 64))

let recover t clock =
  (* one metadata read per segment to rebuild the DRAM directory *)
  for _ = 1 to t.nsegments do
    Device.charge_read_bytes t.dev clock ~len:64 ~hint:Random;
    Clock.advance clock Cost_model.dram_hit_ns
  done

let splits t = t.nsplits
