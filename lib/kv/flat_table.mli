(** Fixed-size in-DRAM hash table with linear probing.

    This is the building block for ChameleonDB's MemTable and Auxiliary
    Bypass Index: a fixed slot count (no rehashing, Section 2.5), a load-
    factor threshold that declares the table full, and linear probing for
    collisions.  Deletions are represented by tombstone locations stored as
    values, never by slot removal, so probe chains stay valid.

    Every access charges DRAM costs to the clock: the first probe is a
    cache-missing random access, subsequent linear probes hit the same or
    the next cache line. *)

type t

val create : ?load_factor:float -> slots:int -> unit -> t
(** [create ~slots ()] with a full-threshold of [load_factor] (default 0.75,
    the paper randomizes it per shard between 0.65 and 0.85). *)

val slots : t -> int
val count : t -> int
val load_factor : t -> float
val threshold : t -> float

val is_full : t -> bool
(** True once [count >= load_factor * slots]. *)

val put : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc -> [ `Ok | `Full ]
(** Insert or update.  [`Full] is returned (and nothing is inserted) when
    inserting a {e new} key while {!is_full}; updates of present keys always
    succeed. *)

val put_exn : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc -> unit
(** Like {!put} but raises [Failure] on [`Full]. *)

val get : t -> Pmem_sim.Clock.t -> Types.key -> Types.loc option
(** [Some loc] if present (the location may be a tombstone). *)

val iter : t -> (Types.key -> Types.loc -> unit) -> unit
(** Iterate live entries without cost charging (cost is charged by the bulk
    operation driving the iteration, e.g. a flush). *)

val clear : t -> unit

val digest : t -> int32
(** Order-independent digest of the live bindings (XOR of per-binding
    CRC32Cs): two tables holding the same key/location set digest equal.
    Integrity tests use it to check that a rebuilt index reproduced the
    original contents.  Uncharged. *)

val footprint_bytes : t -> float
(** slots x 16 B. *)
