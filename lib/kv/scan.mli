(** Ordered k-way merge streams — the engine behind every store's [scan].

    A stream yields (key, loc) pairs in ascending {!Types.key_compare}
    order.  {!merge} stitches streams with newest-wins shadowing; {!live}
    drops tombstones and quarantine markers (which must survive the merge
    to mask older versions); {!take} materialises a bounded prefix. *)

type event = Next of (Types.key * Types.loc) | Done | Error

type stream = unit -> event
(** Pull iterator: each call yields the next entry in ascending key order.
    [Error] is fail-stop — once raised, every later pull answers [Error]. *)

val of_sorted : (Types.key * Types.loc) list -> stream
(** The list must already be in ascending {!Types.key_compare} order. *)

val sorted_snapshot :
  Pmem_sim.Clock.t -> (Types.key * Types.loc) list -> stream
(** Snapshot of an unordered DRAM structure: sorts into scan order,
    charging [sort_per_key_ns] per entry. *)

val of_iter :
  Pmem_sim.Clock.t -> start:Types.key ->
  ((Types.key -> Types.loc -> unit) -> unit) -> stream
(** Snapshot an unordered iterator-shaped source into an ordered stream of
    its keys [>= start]: the walk is charged per entry visited, the sort
    per kept entry.  The iterator charges its own read costs. *)

val of_cursor : Linear_table.cursor -> stream

val merge : stream list -> stream
(** K-way merge.  When several streams carry the same key, the stream
    earliest in the list (the newest source) supplies the binding and the
    shadowed streams discard theirs.  Any underlying [Error] fails the
    whole merged stream: a scan never fabricates a partial answer over a
    broken run. *)

val live : stream -> stream
(** Drop tombstones and quarantine markers; apply only after {!merge}. *)

val take :
  stream -> limit:int -> (Types.key * Types.loc) list * [ `Ok | `Corrupt ]
(** First [limit] entries (fewer if the stream ends).  [`Corrupt] reports
    a fail-stopped stream; the entries already pulled are returned. *)
