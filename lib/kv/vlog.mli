(** Persistent value log (storage log).

    Every store in the evaluation keeps the KV payloads in an append-only log
    on the Pmem, exactly as in Section 2.5 of the paper: each entry is
    [{key, value_size, value}] with 8 B key and 8 B value_size; entries are
    buffered in a DRAM batch and appended to the log tail when the batch
    reaches [batch_bytes] (4 KB by default).

    Payload bytes are synthesized deterministically from the key rather than
    materialized (see DESIGN.md): all device traffic is charged for the full
    entry size, and {!verify} checks reads end-to-end. *)

type t

val create :
  ?fenced:bool -> ?materialize:bool -> ?batch_bytes:int ->
  Pmem_sim.Device.t -> t
(** [fenced] (default false) persists every entry individually with its own
    fence instead of batching — the Pmem-Hash discipline, where "KV items
    are persisted with small writes in individual put operations".
    [materialize] (default false) keeps value payloads so {!value_at} can
    return them; the default accounting-only mode charges identical device
    traffic without retaining bytes (DESIGN.md's memory-bounding
    substitution for the large benchmark sweeps). *)

val device : t -> Pmem_sim.Device.t

val append : t -> Pmem_sim.Clock.t -> Types.key -> vlen:int -> Types.loc
(** Append an entry; returns its location.  Charges the DRAM batching copy,
    and a contiguous device append whenever the batch fills. *)

val flush : t -> Pmem_sim.Clock.t -> unit
(** Force out a partial batch (persistence point for MemTable flushes). *)

val append_value : t -> Pmem_sim.Clock.t -> Types.key -> bytes -> Types.loc
(** Append an entry carrying a real payload (retained only in materialized
    mode; device traffic is charged either way). *)

val value_at : t -> Pmem_sim.Clock.t -> Types.loc -> bytes option
(** Read back a materialized payload ([None] in accounting mode or for
    entries appended without one).  Charges the same device read as
    {!read}.  Raises [Invalid_argument] for reclaimed or out-of-range
    locations. *)

val copy_entry : t -> Pmem_sim.Clock.t -> Types.loc -> Types.loc
(** Re-append entry [loc] at the tail, payload included when present — the
    GC's relocation primitive. *)

val materialized : t -> bool

val read : t -> Pmem_sim.Clock.t -> Types.loc -> Types.key * int
(** [read t c loc] charges a device read of the full entry and returns
    [(key, vlen)].  Raises [Invalid_argument] on an out-of-range location. *)

val read_entry :
  t -> Pmem_sim.Clock.t -> Types.loc -> Types.key * int * bytes option
(** [read_entry t c loc] is {!read} plus the materialized payload when one
    exists ([None] in accounting mode): one device read charge covers the
    whole entry, payload included.  The unified store read path uses this
    so a cache fill can capture the bytes without a second read. *)

val verify : t -> Pmem_sim.Clock.t -> Types.loc -> Types.key -> bool
(** [verify t c loc key]: read the entry and check it carries [key] (the
    synthesized payload is a function of the key, so a key match validates
    the payload too). *)

val key_at : t -> Types.loc -> Types.key
(** Metadata peek without cost charging (tests, recovery bookkeeping). *)

val vlen_at : t -> Types.loc -> int

val length : t -> int
(** Number of appended entries (including unpersisted tail). *)

val persisted : t -> int
(** Number of entries guaranteed durable. *)

val head : t -> int
(** First live entry: everything below has been garbage-collected.  0 until
    a GC pass advances it. *)

val advance_head : t -> int -> unit
(** Reclaim the prefix [0, upto): the caller (the GC) guarantees no index
    references locations below [upto].  Monotone; must not exceed
    {!persisted}.  Raises [Invalid_argument] otherwise. *)

val live_bytes : t -> int
(** Log bytes between {!head} and the tail. *)

val entry_bytes : vlen:int -> int
(** [16 + max vlen 0].  A negative [vlen] encodes a tombstone (deletion
    record): header only. *)

val bytes_upto : t -> int -> int
(** Total log bytes occupied by entries [0, n). *)

val iter_range :
  t -> Pmem_sim.Clock.t -> lo:int -> hi:int ->
  (Types.loc -> Types.key -> int -> unit) -> unit
(** Recovery scan of persisted entries [lo, hi): charges a bulk device read
    of the byte range and the per-entry parse cost, then applies [f]. *)

val crash : t -> unit
(** Drop the unpersisted tail (entries beyond {!persisted}).  If the device
    has a tear function installed ({!Pmem_sim.Device.set_tear}), the open
    batch is instead truncated at 256 B media-unit granularity: the longest
    prefix of whole entries whose units all survived the torn write extends
    {!persisted} — entries past the first torn record are unreachable (log
    traversal cannot walk past a hole) and are dropped. *)

val dram_footprint : t -> float
(** DRAM used by the open batch buffer. *)
