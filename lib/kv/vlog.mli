(** Persistent value log (storage log).

    Every store in the evaluation keeps the KV payloads in an append-only log
    on the Pmem, exactly as in Section 2.5 of the paper: each entry is
    [{key, value_size, value}] with 8 B key and 8 B value_size; entries are
    buffered in a DRAM batch and appended to the log tail when the batch
    reaches [batch_bytes] (4 KB by default).

    Every record carries a CRC32C over its header encoding and payload,
    verified (and charged at [Cost_model.crc_ns_per_byte]) by every consumer
    — point reads, the recovery scan, GC — so silent media corruption
    surfaces as an explicit [`Corrupt] result, never as wrong data.  The log
    is accounting-only by default, so its bytes occupy a {e virtual} device
    range starting at a high media base; {!entry_range} exposes each
    record's span in that namespace for
    {!Pmem_sim.Device.inject_poison}-style media faults.

    Payload bytes are synthesized deterministically from the key rather than
    materialized (see DESIGN.md): all device traffic is charged for the full
    entry size, and {!verify} checks reads end-to-end. *)

type t

val create :
  ?fenced:bool -> ?materialize:bool -> ?batch_bytes:int ->
  Pmem_sim.Device.t -> t
(** [fenced] (default false) persists every entry individually with its own
    fence instead of batching — the Pmem-Hash discipline, where "KV items
    are persisted with small writes in individual put operations".
    [materialize] (default false) keeps value payloads so {!value_at} can
    return them; the default accounting-only mode charges identical device
    traffic without retaining bytes (DESIGN.md's memory-bounding
    substitution for the large benchmark sweeps). *)

val device : t -> Pmem_sim.Device.t

val append : t -> Pmem_sim.Clock.t -> Types.key -> vlen:int -> Types.loc
(** Append an entry; returns its location.  Charges the record-CRC pass and
    the DRAM batching copy, and a contiguous device append whenever the
    batch fills. *)

val flush : t -> Pmem_sim.Clock.t -> unit
(** Force out a partial batch (persistence point for MemTable flushes). *)

val append_value : t -> Pmem_sim.Clock.t -> Types.key -> bytes -> Types.loc
(** Append an entry carrying a real payload (retained only in materialized
    mode; device traffic is charged either way). *)

val value_at :
  t -> Pmem_sim.Clock.t -> Types.loc -> (bytes option, [ `Corrupt ]) result
(** Read back a materialized payload ([Ok None] in accounting mode or for
    entries appended without one).  Charges the same device read + CRC
    verification as {!read}; [Error `Corrupt] if the record fails it.
    Raises [Invalid_argument] for reclaimed or out-of-range locations. *)

val copy_entry : t -> Pmem_sim.Clock.t -> Types.loc -> Types.loc
(** Re-append entry [loc] at the tail, payload included when present — the
    GC's relocation primitive.  The caller is expected to have checked
    {!intact} first (GC must not relocate garbage). *)

val materialized : t -> bool

val read :
  t -> Pmem_sim.Clock.t -> Types.loc -> (Types.key * int, [ `Corrupt ]) result
(** [read t c loc] charges a device read of the full entry plus its CRC
    verification and returns [(key, vlen)], or [Error `Corrupt] when the
    record's media units are poisoned or its checksum no longer verifies.
    Raises [Invalid_argument] on an out-of-range location. *)

val read_entry :
  t -> Pmem_sim.Clock.t -> Types.loc ->
  (Types.key * int * bytes option, [ `Corrupt ]) result
(** [read_entry t c loc] is {!read} plus the materialized payload when one
    exists ([None] in accounting mode): one device read charge covers the
    whole entry, payload included.  The unified store read path uses this
    so a cache fill can capture the bytes without a second read. *)

val verify : t -> Pmem_sim.Clock.t -> Types.loc -> Types.key -> bool
(** [verify t c loc key]: read the entry and check it carries [key] (the
    synthesized payload is a function of the key, so a key match validates
    the payload too).  [false] on a corrupt record. *)

val key_at : t -> Types.loc -> Types.key
(** Metadata peek without cost charging (tests, recovery bookkeeping). *)

val vlen_at : t -> Types.loc -> int

val length : t -> int
(** Number of appended entries (including unpersisted tail). *)

val persisted : t -> int
(** Number of entries guaranteed durable. *)

val head : t -> int
(** First live entry: everything below has been garbage-collected.  0 until
    a GC pass advances it. *)

val advance_head : t -> int -> unit
(** Reclaim the prefix [0, upto): the caller (the GC) guarantees no index
    references locations below [upto].  Clears media poison over the
    reclaimed range (the space is returned to the allocator).  Monotone;
    must not exceed {!persisted}.  Raises [Invalid_argument] otherwise. *)

val live_bytes : t -> int
(** Log bytes between {!head} and the tail. *)

val entry_bytes : vlen:int -> int
(** [16 + max vlen 0].  A negative [vlen] encodes a tombstone (deletion
    record): header only. *)

val bytes_upto : t -> int -> int
(** Total log bytes occupied by entries [0, n). *)

val iter_range :
  ?on_corrupt:(Types.loc -> Types.key -> int -> unit) ->
  t -> Pmem_sim.Clock.t -> lo:int -> hi:int ->
  (Types.loc -> Types.key -> int -> unit) -> unit
(** Recovery scan of persisted entries [lo, hi): charges a bulk device read
    of the byte range plus a streaming CRC pass, then applies [f] to every
    record that verifies.  Records that fail verification are passed to
    [on_corrupt] instead (default: skipped).  The key/vlen given to
    [on_corrupt] are {e untrusted} — the record failed its checksum — and
    may only be used for conservative containment (quarantine), never to
    serve data. *)

(** {1 Integrity} *)

val entry_range : t -> Types.loc -> int * int
(** [(off, len)] of the record in the device's media namespace (a virtual
    range above [2^46]; the log's bytes are accounting-only).  Feed to
    {!Pmem_sim.Device.inject_poison} / [poisoned_in]. *)

val intact : t -> Pmem_sim.Clock.t -> Types.loc -> bool
(** Verify one record in place (poison check + CRC recomputation), charging
    the CRC pass — the scrubber's unit of work. *)

val corrupt_entry : t -> Types.loc -> unit
(** Test-only media-fault injection: flip the record's stored checksum
    state, as a bit flip inside the record would.  Detected by every
    subsequent verification of that location. *)

val crash : t -> unit
(** Drop the unpersisted tail (entries beyond {!persisted}).  If the device
    has a tear function installed ({!Pmem_sim.Device.set_tear}), the open
    batch is instead truncated at 256 B media-unit granularity: the longest
    prefix of whole entries whose units all survived the torn write {e and}
    whose record CRCs still verify extends {!persisted} — entries past the
    first torn or checksum-failing record are unreachable (log traversal
    cannot walk past a hole) and are dropped. *)

val dram_footprint : t -> float
(** DRAM used by the open batch buffer. *)
