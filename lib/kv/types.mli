(** Shared key/value vocabulary.

    Keys are 8-byte integers (the paper evaluates with 8 B keys); the value
    payload lives in the storage log and indexes hold a location in that log.
    Key [0L] is reserved as the empty-slot sentinel of the open-addressing
    tables; {!Workload.Keyspace} never generates it. *)

type key = int64

type loc = int
(** Index of an entry in the value log. *)

val empty_key : key
(** [0L]; never a valid user key. *)

val tombstone : loc
(** Location value marking a deletion; negative, never a valid log index. *)

val corrupt_marker : loc
(** Location value marking a quarantined key: its newest log record failed
    integrity verification, so reads must answer an explicit corrupt error
    — not a miss, and not an older version.  Negative, distinct from
    {!tombstone}; like a tombstone it masks older versions in the level
    structure, but unlike one it is never dropped by merges (only a fresh
    put or delete of the key clears it). *)

val is_tombstone : loc -> bool
(** True exactly for {!tombstone} (corrupt markers are not tombstones). *)

val is_corrupt : loc -> bool

val is_live : loc -> bool
(** [loc >= 0]: an actual log location, neither tombstone nor quarantine. *)

val slot_bytes : int
(** Bytes per index slot: 8 B key + 8 B location, the 16 B index-entry size
    the paper uses when computing write amplification. *)

val key_compare : key -> key -> int
(** The canonical key order for range scans: unsigned 64-bit comparison.
    Every sorted structure (ordered last level, merge iterator, oracle,
    snapshot scans) must use this single order. *)

type op =
  | Put of key * int       (** insert/update with value length *)
  | Get of key
  | Delete of key
  | Read_modify_write of key * int
      (** YCSB F: get then put of the same key *)
  | Scan of key * int
      (** YCSB E: ordered range scan from a start key, inclusive, for a
          bounded number of live entries *)

val pp_op : Format.formatter -> op -> unit
