(* First-class store API.  Each store design packs itself as a
   [(module STORE)]; the harness and the fault injector drive stores
   through the accessor functions below without knowing the design. *)

module type STORE = sig
  val name : string
  val put : Pmem_sim.Clock.t -> Types.key -> vlen:int -> unit
  val get : Pmem_sim.Clock.t -> Types.key -> Types.loc option
  val delete : Pmem_sim.Clock.t -> Types.key -> unit
  val flush : Pmem_sim.Clock.t -> unit
  val maintenance : Pmem_sim.Clock.t -> unit
  val crash : unit -> unit
  val recover : Pmem_sim.Clock.t -> unit
  val check_invariants : unit -> (unit, string) result
  val dram_footprint : unit -> float
  val pmem_footprint : unit -> float
  val device : Pmem_sim.Device.t
  val vlog : Vlog.t
  val fault_points : Fault_point.site list
end

type store = (module STORE)

let name (module S : STORE) = S.name
let put (module S : STORE) clock key ~vlen = S.put clock key ~vlen
let get (module S : STORE) clock key = S.get clock key
let delete (module S : STORE) clock key = S.delete clock key
let flush (module S : STORE) clock = S.flush clock
let maintenance (module S : STORE) clock = S.maintenance clock
let crash (module S : STORE) = S.crash ()
let recover (module S : STORE) clock = S.recover clock
let check_invariants (module S : STORE) = S.check_invariants ()
let dram_footprint (module S : STORE) = S.dram_footprint ()
let pmem_footprint (module S : STORE) = S.pmem_footprint ()
let device (module S : STORE) = S.device
let vlog (module S : STORE) = S.vlog
let fault_points (module S : STORE) = S.fault_points

let apply (module S : STORE) clock (op : Types.op) =
  match op with
  | Types.Put (k, vlen) -> S.put clock k ~vlen
  | Types.Get k -> ignore (S.get clock k)
  | Types.Delete k -> S.delete clock k
  | Types.Read_modify_write (k, vlen) ->
    ignore (S.get clock k);
    S.put clock k ~vlen
