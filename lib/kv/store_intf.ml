(* First-class store API.  Each store design packs itself as a
   [(module STORE)]; the harness and the fault injector drive stores
   through the accessor functions below without knowing the design. *)

type read_stage =
  | Memtable
  | Cache
  | Abi
  | Dump
  | Upper
  | Last
  | Index
  | Miss
  | Corrupt

let stage_name = function
  | Memtable -> "memtable"
  | Cache -> "cache"
  | Abi -> "abi"
  | Dump -> "dump"
  | Upper -> "upper"
  | Last -> "last"
  | Index -> "index"
  | Miss -> "miss"
  | Corrupt -> "corrupt"

type health = Healthy | Scrubbing | Degraded

let health_name = function
  | Healthy -> "healthy"
  | Scrubbing -> "scrubbing"
  | Degraded -> "degraded"

type scrub_report = {
  sr_scanned_bytes : int;
  sr_scanned_entries : int;
  sr_detected : int;
  sr_repaired : int;
  sr_quarantined : int;
}

let empty_scrub_report =
  { sr_scanned_bytes = 0;
    sr_scanned_entries = 0;
    sr_detected = 0;
    sr_repaired = 0;
    sr_quarantined = 0 }

type read_result = {
  loc : Types.loc option;
  stage : read_stage;
  value : bytes option;
}

type value_spec = Sized of int | Payload of bytes

let spec_vlen = function
  | Sized vlen -> vlen
  | Payload v -> Bytes.length v

module type STORE = sig
  val name : string
  val write : Pmem_sim.Clock.t -> Types.key -> value_spec -> unit

  val write_batch : Pmem_sim.Clock.t -> (Types.key * value_spec) list -> unit
  (* Group commit: apply the puts in list order and make them durable
     with (at most) one persist fence for the whole group.  A crash in
     the middle of a batch may lose a suffix of the group but never an
     interior element — the log-append order is the list order.  Stores
     with no cheaper path use [sequential_write_batch]. *)

  val read : Pmem_sim.Clock.t -> Types.key -> read_result
  val delete : Pmem_sim.Clock.t -> Types.key -> unit

  val scan :
    Pmem_sim.Clock.t -> start:Types.key -> limit:int ->
    (Types.key * Types.loc) list
  (* Up to [limit] live entries with key >= [start], in ascending
     [Types.key_compare] order, newest version of each key, tombstones
     and quarantined keys suppressed.  A scan that hits a corrupt run
     fail-stops: it returns the prefix gathered so far and marks the
     shard degraded rather than fabricate results past the damage. *)

  val flush : Pmem_sim.Clock.t -> unit
  val maintenance : Pmem_sim.Clock.t -> unit
  val crash : unit -> unit
  val recover : Pmem_sim.Clock.t -> unit
  val check_invariants : unit -> (unit, string) result
  val scrub : Pmem_sim.Clock.t -> budget_bytes:int -> scrub_report
  val health : unit -> health
  val shard_degraded : Types.key -> bool
  val dram_footprint : unit -> float
  val pmem_footprint : unit -> float
  val device : Pmem_sim.Device.t
  val vlog : Vlog.t
  val fault_points : Fault_point.site list
end

(* Fallback [write_batch] for stores whose [write] already persists each
   op (or whose log batches internally): per-op writes in list order give
   the same prefix-loss crash semantics, just without fence amortization. *)
let sequential_write_batch write clock items =
  List.iter (fun (key, spec) -> write clock key spec) items

type store = (module STORE)

let name (module S : STORE) = S.name
let write (module S : STORE) clock key spec = S.write clock key spec

let write_batch (module S : STORE) clock items =
  match items with
  | [] -> ()
  | [ (key, spec) ] -> S.write clock key spec
  | _ -> S.write_batch clock items
let read (module S : STORE) clock key = S.read clock key
let delete (module S : STORE) clock key = S.delete clock key
let scan (module S : STORE) clock ~start ~limit = S.scan clock ~start ~limit

let scan_fold (module S : STORE) clock ~start ~limit ~init f =
  List.fold_left
    (fun acc (k, loc) -> f acc k loc)
    init
    (S.scan clock ~start ~limit)
let flush (module S : STORE) clock = S.flush clock
let maintenance (module S : STORE) clock = S.maintenance clock
let crash (module S : STORE) = S.crash ()
let recover (module S : STORE) clock = S.recover clock
let check_invariants (module S : STORE) = S.check_invariants ()
let scrub (module S : STORE) clock ~budget_bytes = S.scrub clock ~budget_bytes
let health (module S : STORE) = S.health ()
let shard_degraded (module S : STORE) key = S.shard_degraded key
let dram_footprint (module S : STORE) = S.dram_footprint ()
let pmem_footprint (module S : STORE) = S.pmem_footprint ()
let device (module S : STORE) = S.device
let vlog (module S : STORE) = S.vlog
let fault_points (module S : STORE) = S.fault_points

let apply (module S : STORE) clock (op : Types.op) =
  match op with
  | Types.Put (k, vlen) -> S.write clock k (Sized vlen)
  | Types.Get k -> ignore (S.read clock k)
  | Types.Delete k -> S.delete clock k
  | Types.Read_modify_write (k, vlen) ->
    ignore (S.read clock k);
    S.write clock k (Sized vlen)
  | Types.Scan (k, limit) -> ignore (S.scan clock ~start:k ~limit)
