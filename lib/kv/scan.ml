(* Ordered k-way merge streams — the engine behind every store's [scan].

   A [stream] is a pull iterator yielding (key, loc) pairs in ascending
   {!Types.key_compare} order.  [merge] stitches several streams into one,
   with newest-wins shadowing: when multiple streams carry the same key,
   the stream earliest in the list supplies the binding and the others
   discard theirs.  Per-shard scans list their sources newest first
   (MemTable, ABI, dumps/upper by recency, last level); the global scan
   then merges the per-shard streams, whose key sets are disjoint.

   Tombstones and quarantine markers flow through [merge] — they must,
   to mask older versions — and are dropped at the very end by [live].
   A [`Corrupt] from any underlying cursor is fail-stop for the whole
   merged stream: we cannot know which keys the broken run would have
   contributed, so the scan refuses to fabricate a partial answer. *)

module Clock = Pmem_sim.Clock
module Cost_model = Pmem_sim.Cost_model

type event = Next of (Types.key * Types.loc) | Done | Error

type stream = unit -> event

let of_sorted entries =
  let r = ref entries in
  fun () ->
    match !r with
    | [] -> Done
    | e :: rest ->
        r := rest;
        Next e

(* Snapshot of an unordered DRAM structure (memtable, hash index): sort it
   into scan order, charging the comparison sort like any run build. *)
let sorted_snapshot clock entries =
  Clock.advance clock
    (Cost_model.sort_per_key_ns *. float_of_int (List.length entries));
  of_sorted
    (List.sort (fun (a, _) (b, _) -> Types.key_compare a b) entries)

(* Snapshot an unordered iterator-shaped source (DRAM table, hashed run)
   into an ordered stream over the keys in range: the walk is charged per
   entry visited, the sort per kept entry.  The iterator itself charges
   whatever reading the structure costs. *)
let of_iter clock ~start iter =
  let entries = ref [] in
  let visited = ref 0 in
  iter (fun k l ->
      incr visited;
      if Types.key_compare k start >= 0 then entries := (k, l) :: !entries);
  Clock.advance clock
    (float_of_int !visited *. Cost_model.scan_per_entry_ns);
  sorted_snapshot clock !entries

let of_cursor cur () =
  match Linear_table.cursor_next cur with
  | `Entry (k, l) -> Next (k, l)
  | `End -> Done
  | `Corrupt -> Error

let merge streams =
  let arr = Array.of_list streams in
  let n = Array.length arr in
  let heads = Array.map (fun s -> s ()) arr in
  let dead = ref false in
  fun () ->
    if !dead then Error
    else if Array.exists (function Error -> true | _ -> false) heads then begin
      dead := true;
      Error
    end
    else begin
      (* smallest head key; on ties the earliest (newest) stream wins *)
      let best = ref None in
      for i = n - 1 downto 0 do
        match heads.(i) with
        | Next (k, _) -> (
            match !best with
            | None -> best := Some (i, k)
            | Some (_, bk) ->
                if Types.key_compare k bk <= 0 then best := Some (i, k))
        | _ -> ()
      done;
      match !best with
      | None -> Done
      | Some (wi, wk) ->
          let won = heads.(wi) in
          (* advance the winner and every stream it shadows at this key *)
          for i = 0 to n - 1 do
            match heads.(i) with
            | Next (k, _) when Int64.equal k wk -> heads.(i) <- arr.(i) ()
            | _ -> ()
          done;
          won
    end

let live stream =
  let rec next () =
    match stream () with
    | Next (_, loc) when not (Types.is_live loc) -> next ()
    | e -> e
  in
  next

let take stream ~limit =
  let rec go acc n =
    if n <= 0 then (List.rev acc, `Ok)
    else
      match stream () with
      | Done -> (List.rev acc, `Ok)
      | Error -> (List.rev acc, `Corrupt)
      | Next e -> go (e :: acc) (n - 1)
  in
  go [] limit
