(** First-class store API.

    Each store design (ChameleonDB and the five baselines) packs itself as
    a [(module STORE)] value; the harness, checker and fault injector drive
    stores through the accessors below without knowing the design.  All
    operations charge simulated time to the supplied clock.  [get] includes
    reading the value payload from the log on a hit, as a real get must. *)

module type STORE = sig
  val name : string

  val put : Pmem_sim.Clock.t -> Types.key -> vlen:int -> unit
  val get : Pmem_sim.Clock.t -> Types.key -> Types.loc option
  (** [None] for absent or deleted keys. *)

  val delete : Pmem_sim.Clock.t -> Types.key -> unit

  val flush : Pmem_sim.Clock.t -> unit
  (** Push buffered state (log batch, MemTables) to the device. *)

  val maintenance : Pmem_sim.Clock.t -> unit
  (** One background-maintenance pass (value-log GC where the design has
      it; a no-op otherwise).  The fault harness calls it to reach the
      [Gc] crash site. *)

  val crash : unit -> unit
  (** Simulate power failure: volatile state is lost; unpersisted device
      stores revert (or tear, see {!Pmem_sim.Device.set_tear}). *)

  val recover : Pmem_sim.Clock.t -> unit
  (** Rebuild to service-ready; the clock advance is the restart time.
      Must be restartable: if interrupted by a crash, a following
      [crash]+[recover] must converge to the same service-ready state. *)

  val check_invariants : unit -> (unit, string) result
  (** Structural self-check; the crash checker runs it after recovery. *)

  val dram_footprint : unit -> float  (** resident DRAM bytes *)

  val pmem_footprint : unit -> float  (** allocated device bytes *)

  val device : Pmem_sim.Device.t
  val vlog : Vlog.t

  val fault_points : Fault_point.site list
  (** Persistence sites this design actually executes; the crash sweep
      enumerates exactly these. *)
end

type store = (module STORE)

(** {1 Accessors} — call these rather than unpacking at every site. *)

val name : store -> string
val put : store -> Pmem_sim.Clock.t -> Types.key -> vlen:int -> unit
val get : store -> Pmem_sim.Clock.t -> Types.key -> Types.loc option
val delete : store -> Pmem_sim.Clock.t -> Types.key -> unit
val flush : store -> Pmem_sim.Clock.t -> unit
val maintenance : store -> Pmem_sim.Clock.t -> unit
val crash : store -> unit
val recover : store -> Pmem_sim.Clock.t -> unit
val check_invariants : store -> (unit, string) result
val dram_footprint : store -> float
val pmem_footprint : store -> float
val device : store -> Pmem_sim.Device.t
val vlog : store -> Vlog.t
val fault_points : store -> Fault_point.site list

val apply : store -> Pmem_sim.Clock.t -> Types.op -> unit
(** Run one workload operation against a store (RMW = get then put). *)
