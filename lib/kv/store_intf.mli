(** First-class store API.

    Each store design (ChameleonDB and the five baselines) packs itself as
    a [(module STORE)] value; the harness, checker and fault injector drive
    stores through the accessors below without knowing the design.  All
    operations charge simulated time to the supplied clock.

    The op surface is deliberately narrow: one {!STORE.read} that returns
    everything a get can know (location, answering structure, payload when
    available), one {!STORE.write} that takes a {!value_spec} (a size for
    accounting-only runs, real bytes for materialized ones), and one
    {!STORE.scan} for ordered ranges.  The old [get]/[put] sprawl — and
    the thin wrappers that briefly survived it — is gone: every caller
    drives [read]/[write]/[scan] directly. *)

type read_stage =
  | Memtable  (** DRAM MemTable *)
  | Cache     (** DRAM read cache (positive or negative hit) *)
  | Abi       (** asynchronous DRAM index *)
  | Dump      (** GPM-dumped un-merged Pmem table *)
  | Upper     (** upper Pmem levels (degraded window) *)
  | Last      (** last-level Pmem table *)
  | Index     (** design-specific index (baselines report this) *)
  | Miss
  | Corrupt
      (** the newest version of the key failed integrity verification (or
          the key is quarantined): an explicit error, never wrong data and
          never a silent miss *)

val stage_name : read_stage -> string

type health =
  | Healthy
  | Scrubbing  (** a scrub pass is underway; service continues *)
  | Degraded
      (** unrepaired corruption detected; writes to this shard should be
          throttled until a scrub pass covers it *)

val health_name : health -> string

type scrub_report = {
  sr_scanned_bytes : int;   (** artifact bytes verified this pass *)
  sr_scanned_entries : int; (** records/runs verified *)
  sr_detected : int;        (** verification failures found *)
  sr_repaired : int;        (** rebuilt from redundant state (vlog) *)
  sr_quarantined : int;     (** keys marked {!Types.corrupt_marker} *)
}

val empty_scrub_report : scrub_report
(** All-zero report — what a store without a scrubber returns. *)

type read_result = {
  loc : Types.loc option;  (** [None] for absent or deleted keys *)
  stage : read_stage;      (** which structure answered *)
  value : bytes option;
      (** the payload, when the store materializes values (or the cache
          holds them); [None] in accounting-only mode *)
}

type value_spec =
  | Sized of int     (** accounting-only payload of [vlen] bytes *)
  | Payload of bytes (** real payload (retained in materialized mode) *)

val spec_vlen : value_spec -> int
(** The payload size a spec charges for. *)

module type STORE = sig
  val name : string

  val write : Pmem_sim.Clock.t -> Types.key -> value_spec -> unit
  (** Append the value to the storage log and index it.  May trigger
      flushes and compactions on background clocks. *)

  val write_batch : Pmem_sim.Clock.t -> (Types.key * value_spec) list -> unit
  (** Group commit: apply the puts in list order, made durable with (at
      most) one persist fence for the whole group.  Crash semantics are
      prefix loss — a power failure mid-batch may drop a suffix of the
      group, never an interior element, because the log-append order is
      the list order.  Stores whose per-op [write] already persists (or
      whose log batches internally) use {!sequential_write_batch}. *)

  val read : Pmem_sim.Clock.t -> Types.key -> read_result
  (** Index (or cache) lookup plus a log read of the value on a hit, as a
      real get must. *)

  val delete : Pmem_sim.Clock.t -> Types.key -> unit

  val scan :
    Pmem_sim.Clock.t -> start:Types.key -> limit:int ->
    (Types.key * Types.loc) list
  (** Up to [limit] live entries with key [>= start], in ascending
      {!Types.key_compare} order: newest version of each key, tombstones
      and quarantined keys suppressed.  A scan that reaches a corrupt run
      fail-stops — it returns the prefix gathered before the damage and
      degrades the shard — rather than fabricate results. *)

  val flush : Pmem_sim.Clock.t -> unit
  (** Push buffered state (log batch, MemTables) to the device. *)

  val maintenance : Pmem_sim.Clock.t -> unit
  (** One background-maintenance pass (value-log GC where the design has
      it; a no-op otherwise).  The fault harness calls it to reach the
      [Gc] crash site. *)

  val crash : unit -> unit
  (** Simulate power failure: volatile state is lost; unpersisted device
      stores revert (or tear, see {!Pmem_sim.Device.set_tear}). *)

  val recover : Pmem_sim.Clock.t -> unit
  (** Rebuild to service-ready; the clock advance is the restart time.
      Must be restartable: if interrupted by a crash, a following
      [crash]+[recover] must converge to the same service-ready state. *)

  val check_invariants : unit -> (unit, string) result
  (** Structural self-check; the crash checker runs it after recovery. *)

  val scrub : Pmem_sim.Clock.t -> budget_bytes:int -> scrub_report
  (** One background integrity pass over up to [budget_bytes] of durable
      artifacts: verify record/run checksums, repair what redundant state
      allows, quarantine what it does not.  Stores without an integrity
      subsystem return {!empty_scrub_report} (detection still happens on
      their read paths via the shared log/table verification). *)

  val health : unit -> health
  (** Worst health across the store's shards. *)

  val shard_degraded : Types.key -> bool
  (** Is the shard owning [key] currently {!Degraded}?  Admission control
      uses this to throttle writes into damaged shards.  [false] for
      designs without shard health. *)

  val dram_footprint : unit -> float  (** resident DRAM bytes *)

  val pmem_footprint : unit -> float  (** allocated device bytes *)

  val device : Pmem_sim.Device.t
  val vlog : Vlog.t

  val fault_points : Fault_point.site list
  (** Persistence sites this design actually executes; the crash sweep
      enumerates exactly these. *)
end

val sequential_write_batch :
  (Pmem_sim.Clock.t -> Types.key -> value_spec -> unit) ->
  Pmem_sim.Clock.t -> (Types.key * value_spec) list -> unit
(** Fallback {!STORE.write_batch} built from a per-op write function:
    same prefix-loss crash semantics, no fence amortization. *)

type store = (module STORE)

(** {1 Accessors} — call these rather than unpacking at every site. *)

val name : store -> string
val write : store -> Pmem_sim.Clock.t -> Types.key -> value_spec -> unit

(** {!STORE.write_batch} with the trivial cases short-circuited: an empty
    group is a no-op and a singleton goes through plain [write]. *)
val write_batch :
  store -> Pmem_sim.Clock.t -> (Types.key * value_spec) list -> unit
val read : store -> Pmem_sim.Clock.t -> Types.key -> read_result
val delete : store -> Pmem_sim.Clock.t -> Types.key -> unit

val scan :
  store -> Pmem_sim.Clock.t -> start:Types.key -> limit:int ->
  (Types.key * Types.loc) list

val scan_fold :
  store -> Pmem_sim.Clock.t -> start:Types.key -> limit:int ->
  init:'a -> ('a -> Types.key -> Types.loc -> 'a) -> 'a
(** Fold form of {!scan} over the same ordered, shadow-resolved entries. *)

val flush : store -> Pmem_sim.Clock.t -> unit
val maintenance : store -> Pmem_sim.Clock.t -> unit
val crash : store -> unit
val recover : store -> Pmem_sim.Clock.t -> unit
val check_invariants : store -> (unit, string) result
val scrub : store -> Pmem_sim.Clock.t -> budget_bytes:int -> scrub_report
val health : store -> health
val shard_degraded : store -> Types.key -> bool
val dram_footprint : store -> float
val pmem_footprint : store -> float
val device : store -> Pmem_sim.Device.t
val vlog : store -> Vlog.t
val fault_points : store -> Fault_point.site list

val apply : store -> Pmem_sim.Clock.t -> Types.op -> unit
(** Run one workload operation against a store (RMW = read then write;
    Scan discards its results after charging their cost). *)
