module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Crc32c = Pmem_sim.Crc32c

let c_append_bytes = Obs.Counters.counter "vlog.append_bytes"
let c_batch_flushes = Obs.Counters.counter "vlog.batch_flushes"
let c_reads = Obs.Counters.counter "vlog.reads"
let c_corrupt_reads = Obs.Counters.counter "vlog.corrupt_reads"

(* The log is accounting-only by default, so its bytes have no materialized
   device offsets.  Entry [i] is modelled as occupying
   [media_base + bytes_upto i, media_base + bytes_upto (i+1)) in the
   device's media-fault namespace: high enough never to collide with real
   allocations, stable across GC (offsets are absolute, not head-relative). *)
let media_base = 1 lsl 46

(* Growable parallel arrays for entry metadata: key, value length, and the
   record CRC32C (over the 16 B header encoding plus the payload when one is
   materialized — exactly what the durable record would carry). *)
type meta = {
  mutable keys : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable vlens : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable crcs : (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable cap : int;
}

let meta_create () =
  { keys = Bigarray.Array1.create Int64 C_layout 1024;
    vlens = Bigarray.Array1.create Int C_layout 1024;
    crcs = Bigarray.Array1.create Int32 C_layout 1024;
    cap = 1024 }

let meta_ensure m n =
  if n > m.cap then begin
    let cap = ref m.cap in
    while !cap < n do
      cap := !cap * 2
    done;
    let keys = Bigarray.Array1.create Int64 C_layout !cap in
    let vlens = Bigarray.Array1.create Int C_layout !cap in
    let crcs = Bigarray.Array1.create Int32 C_layout !cap in
    Bigarray.Array1.blit m.keys (Bigarray.Array1.sub keys 0 m.cap);
    Bigarray.Array1.blit m.vlens (Bigarray.Array1.sub vlens 0 m.cap);
    Bigarray.Array1.blit m.crcs (Bigarray.Array1.sub crcs 0 m.cap);
    m.keys <- keys;
    m.vlens <- vlens;
    m.crcs <- crcs;
    m.cap <- !cap
  end

type t = {
  dev : Device.t;
  fenced : bool;
  materialize : bool;
  payloads : (int, Bytes.t) Hashtbl.t; (* loc -> value, materialized mode *)
  batch_bytes : int;
  meta : meta;
  mutable n : int;
  mutable head : int; (* entries below are garbage-collected *)
  mutable persisted_n : int;
  mutable open_batch_bytes : int;
  mutable total_bytes : int; (* bytes of entries [0, n) *)
  mutable byte_offsets : int array; (* prefix sums over entries [0, offsets_n) *)
  mutable offsets_n : int; (* entries the prefix sums cover *)
}

(* A negative [vlen] encodes a tombstone entry: header only, no payload. *)
let entry_bytes ~vlen = 16 + max vlen 0

let create ?(fenced = false) ?(materialize = false) ?(batch_bytes = 4096) dev
    =
  { dev;
    fenced;
    materialize;
    payloads = Hashtbl.create (if materialize then 1024 else 1);
    batch_bytes;
    meta = meta_create ();
    n = 0;
    head = 0;
    persisted_n = 0;
    open_batch_bytes = 0;
    total_bytes = 0;
    byte_offsets = Array.make 1025 0;
    offsets_n = 0 }

let device t = t.dev
let length t = t.n
let persisted t = t.persisted_n
let head t = t.head

let key_at t loc =
  if loc < 0 || loc >= t.n then invalid_arg "Vlog.key_at";
  Bigarray.Array1.get t.meta.keys loc

let vlen_at t loc =
  if loc < 0 || loc >= t.n then invalid_arg "Vlog.vlen_at";
  Bigarray.Array1.get t.meta.vlens loc

(* Prefix sums are extended incrementally (appends only ever add entries at
   the tail), so a read after an append costs O(new entries), not O(n). *)
let bytes_upto t n =
  if n <= 0 then 0
  else begin
    if t.offsets_n < t.n then begin
      if Array.length t.byte_offsets < t.n + 1 then begin
        let cap = ref (Array.length t.byte_offsets) in
        while !cap < t.n + 1 do
          cap := !cap * 2
        done;
        let bigger = Array.make !cap 0 in
        Array.blit t.byte_offsets 0 bigger 0 (t.offsets_n + 1);
        t.byte_offsets <- bigger
      end;
      for i = t.offsets_n to t.n - 1 do
        t.byte_offsets.(i + 1) <-
          t.byte_offsets.(i) + entry_bytes ~vlen:(vlen_at t i)
      done;
      t.offsets_n <- t.n
    end;
    t.byte_offsets.(min n t.n)
  end

let entry_range t loc =
  if loc < 0 || loc >= t.n then invalid_arg "Vlog.entry_range";
  (media_base + bytes_upto t loc, entry_bytes ~vlen:(vlen_at t loc))

let advance_head t upto =
  if upto < t.head || upto > t.persisted_n then
    invalid_arg "Vlog.advance_head";
  (* reclaimed media is returned to the allocator: its faults go with it *)
  if upto > t.head then begin
    let off = media_base + bytes_upto t t.head in
    let len = bytes_upto t upto - bytes_upto t t.head in
    Device.clear_poison t.dev ~off ~len
  end;
  t.head <- upto

(* ------------------------------ checksums ------------------------------ *)

let entry_crc ~key ~vlen ~payload =
  let c = Crc32c.int (Crc32c.int64 Crc32c.empty key) vlen in
  match payload with None -> c | Some v -> Crc32c.bytes ~crc:c v

let stored_crc t loc = Bigarray.Array1.get t.meta.crcs loc

(* Would a load of this record return exactly what was appended?  False if
   a poisoned media unit covers the record, or the stored bytes no longer
   checksum to the recorded CRC (bit rot).  Uncharged: callers price the
   verification (a CRC pass over the record) themselves. *)
let intact_unpriced t loc =
  let off, len = entry_range t loc in
  (not (Device.poisoned_in t.dev ~off ~len))
  && Int32.equal (stored_crc t loc)
       (entry_crc ~key:(key_at t loc) ~vlen:(vlen_at t loc)
          ~payload:(Hashtbl.find_opt t.payloads loc))

let charge_crc clock ~bytes =
  Clock.advance clock (Cost_model.crc_ns_per_byte *. float_of_int bytes)

let intact t clock loc =
  charge_crc clock ~bytes:(entry_bytes ~vlen:(vlen_at t loc));
  intact_unpriced t loc

let corrupt_entry t loc =
  if loc < 0 || loc >= t.n then invalid_arg "Vlog.corrupt_entry";
  Bigarray.Array1.set t.meta.crcs loc (Int32.lognot (stored_crc t loc))

(* ------------------------------- appends ------------------------------- *)

let flush t clock =
  if t.open_batch_bytes > 0 then begin
    Obs.Counters.incr c_batch_flushes;
    Device.charge_append t.dev clock ~len:t.open_batch_bytes;
    t.open_batch_bytes <- 0;
    t.persisted_n <- t.n
  end

let append_raw t clock key ~vlen ~payload =
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  let loc = t.n in
  meta_ensure t.meta (t.n + 1);
  Bigarray.Array1.set t.meta.keys loc key;
  Bigarray.Array1.set t.meta.vlens loc vlen;
  Bigarray.Array1.set t.meta.crcs loc (entry_crc ~key ~vlen ~payload);
  t.n <- t.n + 1;
  let bytes = entry_bytes ~vlen in
  t.total_bytes <- t.total_bytes + bytes;
  (* sealing the record: one CRC pass over header + payload *)
  charge_crc clock ~bytes;
  if t.fenced then begin
    (* per-operation persistence: every append is an individually fenced
       small write — the tail media unit is rewritten each time *)
    Device.charge_write_random t.dev clock ~len:bytes;
    t.persisted_n <- t.n
  end
  else begin
    (* copy into the DRAM batch buffer *)
    Clock.advance clock (Cost_model.memcpy_ns_per_byte *. float_of_int bytes);
    t.open_batch_bytes <- t.open_batch_bytes + bytes;
    if t.open_batch_bytes >= t.batch_bytes then flush t clock
  end;
  Obs.Counters.add_int c_append_bytes bytes;
  if attr then
    Obs.Attribution.add Obs.Attribution.Put_batch_copy (Clock.now clock -. t0);
  loc

let append t clock key ~vlen = append_raw t clock key ~vlen ~payload:None

let append_value t clock key value =
  let loc =
    append_raw t clock key ~vlen:(Bytes.length value)
      ~payload:(if t.materialize then Some (Bytes.copy value) else None)
  in
  if t.materialize then Hashtbl.replace t.payloads loc (Bytes.copy value);
  loc

let copy_entry t clock loc =
  let vlen = vlen_at t loc in
  let key = key_at t loc in
  match Hashtbl.find_opt t.payloads loc with
  | Some v -> append_value t clock key v
  | None -> append t clock key ~vlen

(* -------------------------------- reads -------------------------------- *)

let charge_entry_read t clock ~bytes =
  (* First line is a random access; a large value streams the rest. *)
  Device.charge_read_bytes t.dev clock ~len:(min bytes 256) ~hint:Random;
  if bytes > 256 then
    Device.charge_read_bytes t.dev clock ~len:(bytes - 256) ~hint:Bulk;
  (* every consumer verifies the record CRC before trusting the bytes *)
  charge_crc clock ~bytes;
  Obs.Counters.incr c_reads

let read t clock loc =
  if loc < 0 || loc >= t.n then invalid_arg "Vlog.read";
  if loc < t.head then invalid_arg "Vlog.read: reclaimed location";
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  let vlen = vlen_at t loc in
  charge_entry_read t clock ~bytes:(entry_bytes ~vlen);
  let r =
    if intact_unpriced t loc then Ok (key_at t loc, vlen)
    else begin
      Obs.Counters.incr c_corrupt_reads;
      Error `Corrupt
    end
  in
  if attr then
    Obs.Attribution.add Obs.Attribution.Get_log_read (Clock.now clock -. t0);
  r

let read_entry t clock loc =
  if loc < 0 || loc >= t.n then invalid_arg "Vlog.read_entry";
  if loc < t.head then invalid_arg "Vlog.read_entry: reclaimed location";
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  let vlen = vlen_at t loc in
  charge_entry_read t clock ~bytes:(entry_bytes ~vlen);
  let r =
    if intact_unpriced t loc then
      (* the payload rode along in the same entry read — no further charge *)
      Ok
        ( key_at t loc,
          vlen,
          Option.map Bytes.copy (Hashtbl.find_opt t.payloads loc) )
    else begin
      Obs.Counters.incr c_corrupt_reads;
      Error `Corrupt
    end
  in
  if attr then
    Obs.Attribution.add Obs.Attribution.Get_log_read (Clock.now clock -. t0);
  r

let value_at t clock loc =
  if loc < t.head || loc >= t.n then invalid_arg "Vlog.value_at";
  match Hashtbl.find_opt t.payloads loc with
  | Some v ->
    let attr = Obs.Attribution.enabled () in
    let t0 = if attr then Clock.now clock else 0.0 in
    charge_entry_read t clock ~bytes:(entry_bytes ~vlen:(Bytes.length v));
    let r =
      if intact_unpriced t loc then Ok (Some (Bytes.copy v))
      else begin
        Obs.Counters.incr c_corrupt_reads;
        Error `Corrupt
      end
    in
    if attr then
      Obs.Attribution.add Obs.Attribution.Get_log_read
        (Clock.now clock -. t0);
    r
  | None -> if intact_unpriced t loc then Ok None else Error `Corrupt

let verify t clock loc key =
  match read t clock loc with
  | Ok (k, _) -> Int64.equal k key
  | Error `Corrupt -> false

let live_bytes t = bytes_upto t t.n - bytes_upto t t.head

let iter_range ?on_corrupt t clock ~lo ~hi f =
  let lo = max lo t.head in
  let hi = min hi t.persisted_n in
  if lo < hi then begin
    let bytes = bytes_upto t hi - bytes_upto t lo in
    Device.charge_read_bytes t.dev clock ~len:bytes ~hint:Bulk;
    (* the scan verifies every record's CRC as it parses — one streaming
       pass over the same bytes *)
    charge_crc clock ~bytes;
    for loc = lo to hi - 1 do
      Clock.advance clock Pmem_sim.Cost_model.cpu_op_ns;
      if intact_unpriced t loc then f loc (key_at t loc) (vlen_at t loc)
      else begin
        Obs.Counters.incr c_corrupt_reads;
        match on_corrupt with
        | Some g -> g loc (key_at t loc) (vlen_at t loc)
        | None -> ()
      end
    done
  end

(* Torn-batch crash: with a tear function on the device, a crash while the
   open batch streams toward the tail keeps whichever whole 256 B media
   units reached the device.  An entry is recoverable only if every unit it
   touches survived, its record CRC verifies over the surviving bytes (a
   torn-but-length-plausible tail record is rejected by its checksum, not
   accepted because its size field parses), AND every earlier entry in the
   batch is recoverable — log traversal stops at the first rejected record
   (length-chained records cannot be walked past a hole), so the surviving
   prefix simply extends [persisted_n]. *)
let torn_survivors t =
  match Device.tear t.dev with
  | None -> t.persisted_n
  | Some keep ->
    let unit = (Device.profile t.dev).Pmem_sim.Cost_model.write_unit in
    let base = bytes_upto t t.persisted_n in
    let keep_memo = Hashtbl.create 16 in
    let unit_kept u =
      match Hashtbl.find_opt keep_memo u with
      | Some r -> r
      | None ->
        let r = keep u in
        Hashtbl.add keep_memo u r;
        r
    in
    let rec extend loc off =
      if loc >= t.n then loc
      else begin
        let off' = off + entry_bytes ~vlen:(vlen_at t loc) in
        let u0 = (off - base) / unit and u1 = (off' - 1 - base) / unit in
        let ok = ref true in
        for u = u0 to u1 do
          if not (unit_kept (base + (u * unit))) then ok := false
        done;
        if !ok && intact_unpriced t loc then extend (loc + 1) off' else loc
      end
    in
    extend t.persisted_n base

let crash t =
  if not t.fenced then t.persisted_n <- torn_survivors t;
  t.n <- t.persisted_n;
  t.open_batch_bytes <- 0;
  t.offsets_n <- min t.offsets_n t.n;
  t.total_bytes <- bytes_upto t t.n;
  if t.materialize then
    Hashtbl.iter
      (fun loc _ -> if loc >= t.n then Hashtbl.remove t.payloads loc)
      (Hashtbl.copy t.payloads)

let dram_footprint t = float_of_int t.batch_bytes

let materialized t = t.materialize
