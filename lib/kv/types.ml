type key = int64
type loc = int

let empty_key = 0L
let tombstone = -1
let corrupt_marker = -2
let is_tombstone loc = loc = tombstone
let is_corrupt loc = loc = corrupt_marker
let is_live loc = loc >= 0
let slot_bytes = 16
let key_compare = Int64.unsigned_compare

type op =
  | Put of key * int
  | Get of key
  | Delete of key
  | Read_modify_write of key * int
  | Scan of key * int

let pp_op ppf = function
  | Put (k, n) -> Format.fprintf ppf "Put(%Ld,%d)" k n
  | Get k -> Format.fprintf ppf "Get(%Ld)" k
  | Delete k -> Format.fprintf ppf "Delete(%Ld)" k
  | Read_modify_write (k, n) -> Format.fprintf ppf "RMW(%Ld,%d)" k n
  | Scan (k, n) -> Format.fprintf ppf "Scan(%Ld,%d)" k n
