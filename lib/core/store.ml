module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Hash = Kv_common.Hash
module Fault_point = Kv_common.Fault_point
module Store_intf = Kv_common.Store_intf

let c_gc_relocations = Obs.Counters.counter "gc.relocations"
let c_gc_reclaimed = Obs.Counters.counter "gc.reclaimed_bytes"
let c_scrub_scanned_bytes = Obs.Counters.counter "scrub.scanned_bytes"
let c_scrub_scanned = Obs.Counters.counter "scrub.scanned_entries"
let c_scrub_detected = Obs.Counters.counter "scrub.detected"
let c_scrub_repaired = Obs.Counters.counter "scrub.repaired"
let c_quarantined = Obs.Counters.counter "scrub.quarantined"

type t = {
  cfg : Config.t;
  dev : Device.t;
  vlog : Vlog.t;
  shards : Shard.t array;
  gpm : Modes.Gpm.t;
  manifest : Manifest.t;
  cache : Cache.t option;
  health : Store_intf.health array; (* per shard *)
  mutable scrub_cursor : int; (* next log location the scrubber verifies *)
  mutable scrub_shard : int; (* first shard the next table pass covers *)
  mutable scrub_deficit : int; (* bytes the previous pass overshot by *)
  mutable nquarantined : int; (* lifetime quarantine events *)
}

let create ?(cfg = Config.default) ?dev () =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Chameleondb.Store.create: " ^ msg));
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  let vlog =
    Vlog.create ~materialize:cfg.Config.materialize_values
      ~batch_bytes:cfg.Config.vlog_batch_bytes dev
  in
  let manifest = Manifest.create ~shards:cfg.Config.shards dev in
  let t =
    { cfg;
      dev;
      vlog;
      shards =
        Array.init cfg.Config.shards (fun id ->
            Shard.create ~manifest ~cfg ~id dev vlog);
      gpm = Modes.Gpm.create ~cfg;
      manifest;
      cache =
        (if cfg.Config.cache_bytes > 0 then
           Some
             (Cache.create ~negative:cfg.Config.cache_negative
                ~shards:cfg.Config.shards
                ~capacity_bytes:cfg.Config.cache_bytes ())
         else None);
      health = Array.make cfg.Config.shards Store_intf.Healthy;
      scrub_cursor = 0;
      scrub_shard = 0;
      scrub_deficit = 0;
      nquarantined = 0 }
  in
  (* Shard-internal repair (value-log rebuilds) quarantines keys without
     going through the store: hook cache invalidation and accounting so a
     cached copy can never outlive its quarantine. *)
  Array.iter
    (fun shard ->
      Shard.set_notify_quarantine shard (fun key ->
          t.nquarantined <- t.nquarantined + 1;
          Obs.Counters.incr c_quarantined;
          match t.cache with
          | None -> ()
          | Some cache -> Cache.invalidate cache (Clock.create ()) key))
    t.shards;
  t

let cfg t = t.cfg
let shards t = t.shards
let device t = t.dev
let vlog t = t.vlog
let manifest t = t.manifest
let gpm t = t.gpm
let gpm_active t = Modes.Gpm.active t.gpm

let shard_index t key =
  Hash.shard_of ~hash:(Hash.mix64 key) ~shards:t.cfg.Config.shards

let shard_of t key = t.shards.(shard_index t key)

(* {2 Shard health.}  [Degraded] is set at detection (a read or GC pass
   that hits unverifiable state) and cleared by the scrub pass that repairs
   or contains the damage; [Scrubbing] marks shards a pass is covering. *)

let mark_degraded t key =
  t.health.(shard_index t key) <- Store_intf.Degraded

let shard_degraded t key =
  t.health.(shard_index t key) = Store_intf.Degraded

let degraded_fraction t =
  let n =
    Array.fold_left
      (fun a h -> if h = Store_intf.Degraded then a + 1 else a)
      0 t.health
  in
  float_of_int n /. float_of_int (Array.length t.health)

let health t =
  Array.fold_left
    (fun acc h ->
      match (acc, h) with
      | Store_intf.Degraded, _ | _, Store_intf.Degraded -> Store_intf.Degraded
      | Store_intf.Scrubbing, _ | _, Store_intf.Scrubbing ->
        Store_intf.Scrubbing
      | Store_intf.Healthy, Store_intf.Healthy -> Store_intf.Healthy)
    Store_intf.Healthy t.health

let signals t =
  { (Modes.Signals.of_gpm ~write_intensive:t.cfg.Config.write_intensive t.gpm)
    with
    Modes.Signals.shard_degraded = (fun key -> shard_degraded t key);
    degraded_fraction = (fun () -> degraded_fraction t) }

let suspend_compactions t =
  t.cfg.Config.abi_enabled
  && (t.cfg.Config.write_intensive || Modes.Gpm.active t.gpm)

(* dumping the ABI as an un-merged level is a Get-Protect-Mode action;
   Write-Intensive Mode merges a full ABI into the last level instead *)
let can_dump t = t.cfg.Config.abi_enabled && Modes.Gpm.active t.gpm

(* Every put/delete must drop any cached entry for the key in the same
   breath as the index insert, or a later cached read would serve a stale
   location.  The cost is attributed to the index-insert stage: the cache
   probe is index maintenance riding on the already-computed key hash. *)
let cache_invalidate ?(attributed = true) t clock key =
  match t.cache with
  | None -> ()
  | Some cache ->
    let attr = attributed && Obs.Attribution.enabled () in
    let t0 = if attr then Clock.now clock else 0.0 in
    Cache.invalidate cache clock key;
    if attr then
      Obs.Attribution.add Obs.Attribution.Put_index_insert
        (Clock.now clock -. t0)

(* {2 Range scan.}

   One ordered stream per shard (shadowing resolved inside the shard, see
   [Shard.scan_stream]), k-way merged into a single global stream — shard
   key sets are disjoint, so the cross-shard merge is a pure min-merge —
   then filtered to live entries and capped at [limit].  A shard stream
   that fail-stops (corrupt run) degrades that shard and truncates the
   scan at the damage: no fabricated results past it. *)
let scan t clock ~start ~limit =
  if limit < 0 then invalid_arg "Store.scan: negative limit";
  Obs.Trace.begin_span clock ~cat:"op" "scan";
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  let shard_stream i =
    let s = Shard.scan_stream t.shards.(i) clock ~start in
    fun () ->
      match s () with
      | Kv_common.Scan.Error ->
        t.health.(i) <- Store_intf.Degraded;
        Kv_common.Scan.Error
      | e -> e
  in
  let merged =
    Kv_common.Scan.merge
      (List.init (Array.length t.shards) shard_stream)
  in
  let entries, _status = Kv_common.Scan.take (Kv_common.Scan.live merged) ~limit in
  if attr then
    Obs.Attribution.add Obs.Attribution.Scan_stream (Clock.now clock -. t0);
  Obs.Trace.end_span clock ~cat:"op" "scan";
  entries

let write t clock key spec =
  (match spec with
  | Store_intf.Sized vlen when vlen < 0 ->
    invalid_arg "Store.put: negative value length"
  | _ -> ());
  Obs.Trace.begin_span clock ~cat:"op" "put";
  let shard = shard_of t key in
  let loc =
    match spec with
    | Store_intf.Sized vlen -> Vlog.append t.vlog clock key ~vlen
    | Store_intf.Payload v -> Vlog.append_value t.vlog clock key v
  in
  cache_invalidate t clock key;
  Shard.put shard clock key loc ~suspend_compactions:(suspend_compactions t)
    ~can_dump:(can_dump t);
  Obs.Trace.end_span clock ~cat:"op" "put"

let delete t clock key =
  Obs.Trace.begin_span clock ~cat:"op" "delete";
  let shard = shard_of t key in
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  cache_invalidate ~attributed:false t clock key;
  Shard.put shard clock key Types.tombstone
    ~suspend_compactions:(suspend_compactions t) ~can_dump:(can_dump t);
  Obs.Trace.end_span clock ~cat:"op" "delete"

let stage_of_hit : Shard.hit_stage -> Store_intf.read_stage = function
  | Shard.Hit_memtable -> Store_intf.Memtable
  | Shard.Hit_abi -> Store_intf.Abi
  | Shard.Hit_dump -> Store_intf.Dump
  | Shard.Hit_upper -> Store_intf.Upper
  | Shard.Hit_last -> Store_intf.Last
  | Shard.Miss -> Store_intf.Miss
  | Shard.Hit_corrupt | Shard.Hit_quarantined -> Store_intf.Corrupt

(* Quarantine a key whose newest log record failed verification: tombstone
   the index entry to the corrupt marker (reads answer an explicit error,
   never a silent miss or a stale version) and append a durable quarantine
   record — a header-only entry with vlen = corrupt_marker — so the
   containment survives crashes and GC passes.  The cache entry is dropped
   in the same breath: a cached copy must never outlive its quarantine. *)
let quarantine t clock key =
  match Shard.raw_lookup (shard_of t key) clock key with
  | Some cur when Types.is_corrupt cur ->
    (* already contained: a second marker record would double-count the
       same incident on every later scan of the rotted entry *)
    ()
  | _ ->
    ignore (Vlog.append t.vlog clock key ~vlen:Types.corrupt_marker);
    cache_invalidate ~attributed:false t clock key;
    Shard.put (shard_of t key) clock key Types.corrupt_marker
      ~suspend_compactions:(suspend_compactions t) ~can_dump:(can_dump t);
    t.nquarantined <- t.nquarantined + 1;
    Obs.Counters.incr c_quarantined

(* Index walk + log read, byte-for-byte the pre-cache get path: with the
   cache disabled this is the whole read, so [cache_bytes = 0] reproduces
   pre-cache latencies exactly. *)
let slow_read t clock key : Store_intf.read_result =
  let shard = shard_of t key in
  if not (Modes.Gpm.active t.gpm) then
    Shard.drain_dumps_if_idle shard ~now:(Clock.now clock);
  match Shard.get shard clock key with
  | None, Shard.Hit_corrupt ->
    mark_degraded t key;
    { loc = None; stage = Store_intf.Corrupt; value = None }
  | None, Shard.Hit_quarantined ->
    (* containment already in place: the read answers the explicit error
       but must NOT re-degrade the shard — that would send the scrubber
       rebuilding a shard whose damage is already contained, forever *)
    { loc = None; stage = Store_intf.Corrupt; value = None }
  | None, stage -> { loc = None; stage = stage_of_hit stage; value = None }
  | Some loc, stage -> (
    match Vlog.read_entry t.vlog clock loc with
    | Error `Corrupt ->
      (* detection on the read path: answer the explicit error and flag
         the shard; the scrub pass quarantines/repairs off the hot path *)
      mark_degraded t key;
      { loc = None; stage = Store_intf.Corrupt; value = None }
    | Ok (k, _vlen, value) ->
      if Int64.equal k key then
        { loc = Some loc; stage = stage_of_hit stage; value }
      else begin
        (* the record verifies but belongs to another key: the index entry
           itself is damaged — an explicit error, not a miss *)
        mark_degraded t key;
        { loc = None; stage = Store_intf.Corrupt; value = None }
      end)

let read t clock key : Store_intf.read_result =
  Obs.Trace.begin_span clock ~cat:"op" "get";
  let t0 = Clock.now clock in
  let result =
    match t.cache with
    | None -> slow_read t clock key
    | Some cache -> begin
      let attr = Obs.Attribution.enabled () in
      let c0 = if attr then Clock.now clock else 0.0 in
      let outcome = Cache.find cache clock key in
      if attr then
        Obs.Attribution.add Obs.Attribution.Get_cache (Clock.now clock -. c0);
      match outcome with
      | Cache.Hit { loc; vlen = _; value } ->
        { Store_intf.loc = Some loc; stage = Store_intf.Cache; value }
      | Cache.Negative ->
        { Store_intf.loc = None; stage = Store_intf.Cache; value = None }
      | Cache.Miss ->
        let r = slow_read t clock key in
        let f0 = if attr then Clock.now clock else 0.0 in
        (match r.Store_intf.loc with
        | Some loc ->
          Cache.insert cache clock key ~loc
            ~vlen:(Vlog.vlen_at t.vlog loc)
            ?value:r.Store_intf.value ()
        | None when r.Store_intf.stage = Store_intf.Corrupt ->
          (* never cache a corrupt outcome: a negative entry would turn
             the explicit error into a silent miss *)
          ()
        | None -> Cache.insert_negative cache clock key);
        if attr then
          Obs.Attribution.add Obs.Attribution.Get_cache
            (Clock.now clock -. f0);
        r
    end
  in
  Modes.Gpm.record_get t.gpm (Clock.now clock -. t0);
  Obs.Trace.end_span clock ~cat:"op" "get";
  result

let flush_all t clock =
  Array.iter (fun shard -> Shard.force_flush shard clock) t.shards;
  Manifest.record_update t.manifest clock

let wait_background t clock =
  Array.iter
    (fun shard ->
      ignore (Clock.wait_until clock (Shard.background_free_at shard)))
    t.shards

let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  Array.iter Shard.lose_volatile t.shards;
  (* the read cache is volatile: it must not survive into recovery, or a
     cached location could resurrect state the crash rolled back *)
  Option.iter Cache.clear t.cache;
  (* health marks and the scrub cursor are DRAM state; detection (on read,
     GC or replay) re-establishes them *)
  Array.fill t.health 0 (Array.length t.health) Store_intf.Healthy;
  t.scrub_cursor <- 0;
  t.scrub_shard <- 0;
  t.scrub_deficit <- 0

let recover t clock =
  Fault_point.with_site Fault_point.Recovery @@ fun () ->
  Obs.Trace.begin_span clock ~cat:"recovery" "recover";
  let t0 = Clock.now clock in
  let marks = Array.map Shard.persisted_mark t.shards in
  let lo = Array.fold_left min (Vlog.persisted t.vlog) marks in
  Vlog.iter_range t.vlog clock ~lo ~hi:(Vlog.persisted t.vlog)
    ~on_corrupt:(fun loc key _vlen ->
      (* a replayed record that fails verification: quarantine the
         (untrusted) key conservatively — served reads answer Corrupt
         until a scrub pass re-examines the shard *)
      let shard_ix = shard_index t key in
      if loc >= marks.(shard_ix) then begin
        Shard.replay t.shards.(shard_ix) clock key Types.corrupt_marker;
        t.health.(shard_ix) <- Store_intf.Degraded;
        t.nquarantined <- t.nquarantined + 1;
        Obs.Counters.incr c_quarantined
      end)
    (fun loc key vlen ->
      let shard_ix = shard_index t key in
      if loc >= marks.(shard_ix) then begin
        let index_loc =
          if vlen = Types.corrupt_marker then Types.corrupt_marker
          else if vlen < 0 then Types.tombstone
          else loc
        in
        Shard.replay t.shards.(shard_ix) clock key index_loc
      end);
  let restart_ns = Clock.now clock -. t0 in
  Obs.Trace.end_span clock ~cat:"recovery" "recover";
  (* ABI rebuild proceeds in the background after service resumes *)
  Array.iter
    (fun shard -> Shard.schedule_abi_rebuild shard ~start_at:(Clock.now clock))
    t.shards;
  restart_ns

(* {2 Value-log garbage collection.}

   The paper leaves log GC out of scope; this is the natural extension for
   a log-structured store.  A pass scans the oldest log entries: an entry is
   live iff the index still resolves its key to that exact location.  Live
   entries are copied to the log tail through the ordinary put path (so the
   copy is crash-consistent by construction: recovery simply replays it);
   dead entries — superseded versions, tombstone records already reflected
   in the persistent index — are dropped.  After the batch is flushed, the
   log head advances and the prefix is reclaimed. *)

type gc_stats = {
  gc_scanned : int;
  gc_live : int;
  gc_dead : int;
  gc_reclaimed_bytes : int;
}

let gc t clock ?max_entries () =
  let max_entries =
    match max_entries with
    | Some n -> n
    | None -> t.cfg.Config.gc_max_entries
  in
  Fault_point.with_site Fault_point.Gc @@ fun () ->
  Obs.Trace.begin_span clock ~cat:"gc" "gc";
  (* flush the open batch so the scan limit can include the current tail *)
  Vlog.flush t.vlog clock;
  let head = Vlog.head t.vlog in
  let limit = min (Vlog.persisted t.vlog) (head + max_entries) in
  let scanned = ref 0 and live = ref 0 and dead = ref 0 in
  (* If a lookup runs into an unverifiable table block, liveness of the
     scanned prefix is unknowable: abort the pass without advancing the
     head (copies already made are merely duplicated, never lost) and let
     a scrub pass repair the shard first. *)
  let aborted = ref false in
  Vlog.iter_range t.vlog clock ~lo:head ~hi:limit
    ~on_corrupt:(fun loc key _vlen ->
      (* GC rewrite is a verification point: a corrupt record about to be
         reclaimed must leave a durable quarantine behind if the index
         still references it (the key is untrusted — conservative
         containment only) *)
      if not !aborted then begin
        incr scanned;
        let shard = shard_of t key in
        match Shard.lookup shard clock key with
        | _, Shard.Hit_corrupt ->
          mark_degraded t key;
          aborted := true
        | Some cur, _ when cur = loc ->
          incr live;
          quarantine t clock key
        | _ -> incr dead
      end)
    (fun loc key vlen ->
      if not !aborted then begin
        incr scanned;
        let shard = shard_of t key in
        match Shard.lookup shard clock key with
        | _, Shard.Hit_corrupt ->
          mark_degraded t key;
          aborted := true
        | Some cur, _ when cur = loc ->
          incr live;
          Obs.Counters.incr c_gc_relocations;
          let fresh = Vlog.copy_entry t.vlog clock loc in
          (* keep any cached entry pointing at the key's current version:
             the old location is about to be reclaimed *)
          Option.iter
            (fun cache ->
              Cache.relocate cache clock key ~expect:loc ~loc:fresh)
            t.cache;
          Shard.put shard clock key fresh
            ~suspend_compactions:(suspend_compactions t)
            ~can_dump:(can_dump t)
        | Some cur, _ when Types.is_corrupt cur && vlen = Types.corrupt_marker
          ->
          (* quarantine record for a still-quarantined key: it must
             survive the pass exactly like a live tombstone, or a crash
             would resurrect an older version *)
          incr live;
          Obs.Counters.incr c_gc_relocations;
          let _fresh =
            Vlog.append t.vlog clock key ~vlen:Types.corrupt_marker
          in
          Shard.put shard clock key Types.corrupt_marker
            ~suspend_compactions:(suspend_compactions t)
            ~can_dump:(can_dump t)
        | Some cur, _ when Types.is_tombstone cur && vlen < 0 ->
          (* the key is currently deleted and this is a deletion record:
             it must survive, or a crash could resurrect an older version
             still sitting in the persistent index *)
          incr live;
          Obs.Counters.incr c_gc_relocations;
          let _fresh = Vlog.append t.vlog clock key ~vlen:(-1) in
          Shard.put shard clock key Types.tombstone
            ~suspend_compactions:(suspend_compactions t)
            ~can_dump:(can_dump t)
        | (Some _ | None), _ -> incr dead
      end);
  (* the copies must be durable before the originals are reclaimed *)
  Vlog.flush t.vlog clock;
  let reclaimed =
    if !aborted then 0
    else begin
      let r = Vlog.bytes_upto t.vlog limit - Vlog.bytes_upto t.vlog head in
      Vlog.advance_head t.vlog limit;
      Manifest.record_update t.manifest clock;
      Obs.Counters.add_int c_gc_reclaimed r;
      r
    end
  in
  Obs.Trace.end_span clock ~cat:"gc" "gc";
  { gc_scanned = !scanned;
    gc_live = !live;
    gc_dead = !dead;
    gc_reclaimed_bytes = reclaimed }

(* {2 Background scrubber.}

   One pass verifies up to [budget_bytes] of durable artifacts, cheapest
   containment first:

   - manifest floor records (24 B each — always verified, repaired in
     place from the shard's in-DRAM floors);
   - table runs, whole-run checksum verification; a failing run flags the
     shard, which is then rebuilt from the value log (the log holds every
     live entry above its head, so it is a complete redundant copy of the
     index) — quarantining any log records that themselves turn out
     corrupt;
   - the value log, incrementally from a persistent cursor; a corrupt
     record that the index still references is quarantined (explicit
     Corrupt on read), a stale one is left for GC to reclaim.

   A shard marked [Degraded] by earlier detection is rebuilt outright.
   The budget is a target, not a hard cap: the pass stops after the
   artifact that crosses it, so one oversized run can overshoot.  The
   overshoot is carried as a deficit into the next pass (its target
   shrinks by the excess), so long-run scrub bandwidth converges to
   [budget_bytes] per pass even when single artifacts outweigh it.

   The table/floor/rebuild leg starts spending against at most half the
   budget and begins at a persistent shard rotor, so when the per-shard
   runs outweigh the budget, successive passes still cover every shard
   in turn; the value-log leg is then guaranteed the remaining slice
   regardless of how far the table leg overshot — neither leg can starve
   the other. *)

let scrub t clock ~budget_bytes : Store_intf.scrub_report =
  if budget_bytes <= 0 then invalid_arg "Store.scrub";
  Fault_point.with_site Fault_point.Scrub @@ fun () ->
  Obs.Trace.begin_span clock ~cat:"scrub" "scrub";
  (* the previous pass's overshoot shrinks this pass's target *)
  let target_bytes = max 1 (budget_bytes - t.scrub_deficit) in
  let spent = ref 0 in
  let scanned_entries = ref 0 in
  let detected = ref 0 and repaired = ref 0 in
  let q0 = t.nquarantined in
  let rebuild i =
    Shard.rebuild_from_vlog t.shards.(i) clock;
    incr repaired;
    (* the rebuild streamed the live log *)
    spent := !spent + Vlog.live_bytes t.vlog;
    t.health.(i) <- Store_intf.Scrubbing
  in
  let nshards = Array.length t.shards in
  let table_budget = max 1 (target_bytes / 2) in
  let next_start = ref t.scrub_shard in
  for k = 0 to nshards - 1 do
    let i = (t.scrub_shard + k) mod nshards in
    let shard = t.shards.(i) in
    if !spent < table_budget then begin
      next_start := (i + 1) mod nshards;
      if t.health.(i) = Store_intf.Healthy then
        t.health.(i) <- Store_intf.Scrubbing;
      (* floors: cheap enough to verify for every covered shard *)
      let _, flen = Manifest.floor_range t.manifest ~shard:i in
      incr scanned_entries;
      spent := !spent + flen;
      if not (Manifest.floor_intact t.manifest ~shard:i) then begin
        incr detected;
        let mt, ab = Shard.floors shard in
        if Manifest.repair_floor t.manifest clock ~shard:i ~mt_floor:mt
             ~absorb_floor:ab
        then incr repaired
      end;
      if t.health.(i) = Store_intf.Degraded then rebuild i
      else begin
        List.iter
          (fun tbl ->
            if !spent < table_budget then begin
              incr scanned_entries;
              spent := !spent + Kv_common.Linear_table.byte_size tbl;
              let slots_ok =
                Kv_common.Linear_table.slots_intact ~charge_read:true tbl
                  clock
              in
              let art_ok =
                Kv_common.Linear_table.mph_intact ~charge_read:true tbl
                  clock
              in
              if not (slots_ok && art_ok) then begin
                incr detected;
                if slots_ok then begin
                  (* MPH-artifact-only rot: the slot array still verifies,
                     so the index is re-serialized from its DRAM mirror
                     into a fresh allocation — one small write instead of
                     a full shard rebuild *)
                  Kv_common.Linear_table.rebuild_mph_artifact tbl clock;
                  incr repaired
                end
                else t.health.(i) <- Store_intf.Degraded
              end
            end)
          (Shard.persistent_tables shard);
        if t.health.(i) = Store_intf.Degraded && !spent < table_budget
        then rebuild i
      end
    end
  done;
  t.scrub_shard <- !next_start;
  (* the value log, incrementally from the cursor (wrapping at the tail) *)
  Vlog.flush t.vlog clock;
  let head = Vlog.head t.vlog in
  let hi = Vlog.persisted t.vlog in
  let cursor = ref (max t.scrub_cursor head) in
  if !cursor >= hi then cursor := head;
  (* the log leg is guaranteed its slice even when one shard's runs
     overshot the table leg past the whole budget — otherwise a store
     whose smallest run outweighs the budget never advances the cursor *)
  let vlog_budget = target_bytes - min !spent table_budget in
  let scan_bytes = ref 0 in
  while !scan_bytes < vlog_budget && !cursor < hi do
    let loc = !cursor in
    let bytes = Vlog.entry_bytes ~vlen:(Vlog.vlen_at t.vlog loc) in
    incr scanned_entries;
    spent := !spent + bytes;
    scan_bytes := !scan_bytes + bytes;
    if not (Vlog.intact t.vlog clock loc) then begin
      incr detected;
      (* untrusted key: only used to place conservative containment *)
      let key = Vlog.key_at t.vlog loc in
      match Shard.lookup (shard_of t key) clock key with
      | Some cur, _ when cur = loc -> quarantine t clock key
      | _, Shard.Hit_corrupt ->
        (* already quarantined (containment in place) — damaged runs are
           the table pass's job, so nothing more to do here *)
        ()
      | _ -> () (* stale record: nothing references it; GC reclaims it *)
    end;
    cursor := loc + 1
  done;
  (* one bulk read covers the scanned log slice *)
  if !scan_bytes > 0 then
    Device.charge_read_bytes t.dev clock ~len:!scan_bytes ~hint:Pmem_sim.Device.Bulk;
  t.scrub_cursor <- !cursor;
  t.scrub_deficit <- max 0 (!spent - target_bytes);
  (* shards this pass covered (and did not leave degraded) are healthy *)
  Array.iteri
    (fun i h ->
      if h = Store_intf.Scrubbing then t.health.(i) <- Store_intf.Healthy)
    t.health;
  let quarantined = t.nquarantined - q0 in
  Obs.Counters.add_int c_scrub_scanned_bytes !spent;
  Obs.Counters.add_int c_scrub_scanned !scanned_entries;
  Obs.Counters.add_int c_scrub_detected !detected;
  Obs.Counters.add_int c_scrub_repaired !repaired;
  Obs.Trace.end_span clock ~cat:"scrub" "scrub";
  { Store_intf.sr_scanned_bytes = !spent;
    sr_scanned_entries = !scanned_entries;
    sr_detected = !detected;
    sr_repaired = !repaired;
    sr_quarantined = quarantined }

(* {2 Full scan.} *)

let iter t clock f =
  (* newest-version-wins sweep over every structure, oldest tables masked
     by newer ones via a seen-set *)
  let seen = Hashtbl.create 4096 in
  let visit key loc =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      (* tombstones and quarantine markers both mask older versions and
         carry no servable location *)
      if Types.is_live loc then f key loc
    end
  in
  Array.iter
    (fun shard ->
      Hashtbl.reset seen;
      Shard.iter_newest_first shard clock visit)
    t.shards

let cache_stats t =
  match t.cache with
  | None -> None
  | Some c -> Some (Cache.used_bytes c, Cache.capacity_bytes c)

let dram_footprint t =
  Array.fold_left (fun acc s -> acc +. Shard.dram_footprint s) 0.0 t.shards
  +. Vlog.dram_footprint t.vlog
  +. (match t.cache with Some c -> Cache.dram_footprint c | None -> 0.0)

let pmem_footprint t =
  Array.fold_left (fun acc s -> acc +. Shard.pmem_footprint s) 0.0 t.shards
  +. Manifest.footprint_bytes t.manifest

type totals = {
  flushes : int;
  upper_compactions : int;
  last_compactions : int;
  abi_dumps : int;
  absorbs : int;
  stall_ns : float;
  manifest_updates : int;
}

let totals t =
  let acc =
    { flushes = 0;
      upper_compactions = 0;
      last_compactions = 0;
      abi_dumps = 0;
      absorbs = 0;
      stall_ns = 0.0;
      manifest_updates = Manifest.updates t.manifest }
  in
  Array.fold_left
    (fun acc s ->
      let c = Shard.counters s in
      { acc with
        flushes = acc.flushes + c.Shard.flushes;
        upper_compactions = acc.upper_compactions + c.Shard.upper_compactions;
        last_compactions = acc.last_compactions + c.Shard.last_compactions;
        abi_dumps = acc.abi_dumps + c.Shard.abi_dumps;
        absorbs = acc.absorbs + c.Shard.absorbs;
        stall_ns = acc.stall_ns +. c.Shard.stall_ns })
    acc t.shards

let check_invariants t =
  let rec go i =
    if i >= Array.length t.shards then Ok ()
    else begin
      match Shard.check_invariants t.shards.(i) with
      | Ok () -> go (i + 1)
      | Error msg -> Error (Printf.sprintf "shard %d: %s" i msg)
    end
  in
  go 0

let store ?(name = "ChameleonDB") t : Kv_common.Store_intf.store =
  (module struct
    let name = name
    let write clock key spec = write t clock key spec

    (* ChameleonDB's vlog already coalesces appends into an open DRAM
       batch flushed at [vlog_batch_bytes]; forcing an extra fence per
       group here would only slow loads down. *)
    let write_batch = Kv_common.Store_intf.sequential_write_batch write

    let read clock key = read t clock key
    let delete clock key = delete t clock key
    let scan clock ~start ~limit = scan t clock ~start ~limit
    let flush clock = flush_all t clock
    let maintenance clock = ignore (gc t clock ())
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t
    let scrub clock ~budget_bytes = scrub t clock ~budget_bytes
    let health () = health t
    let shard_degraded key = shard_degraded t key
    let dram_footprint () = dram_footprint t
    let pmem_footprint () = pmem_footprint t
    let device = t.dev
    let vlog = t.vlog

    let fault_points =
      Fault_point.
        [ Foreground; Flush; Last_level_merge; Gc; Manifest_update;
          Recovery; Scrub ]
      @ (match t.cfg.Config.compaction with
        | Config.Direct -> [ Fault_point.Direct_compaction ]
        | Config.Level_by_level -> [ Fault_point.Upper_compaction ])
      @
      if t.cfg.Config.gpm_enabled && t.cfg.Config.abi_enabled then
        [ Fault_point.Abi_dump ]
      else []
  end)

