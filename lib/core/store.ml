module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Hash = Kv_common.Hash
module Fault_point = Kv_common.Fault_point
module Store_intf = Kv_common.Store_intf

let c_gc_relocations = Obs.Counters.counter "gc.relocations"
let c_gc_reclaimed = Obs.Counters.counter "gc.reclaimed_bytes"

type t = {
  cfg : Config.t;
  dev : Device.t;
  vlog : Vlog.t;
  shards : Shard.t array;
  gpm : Modes.Gpm.t;
  manifest : Manifest.t;
  cache : Cache.t option;
}

let create ?(cfg = Config.default) ?dev () =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Chameleondb.Store.create: " ^ msg));
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  let vlog =
    Vlog.create ~materialize:cfg.Config.materialize_values
      ~batch_bytes:cfg.Config.vlog_batch_bytes dev
  in
  let manifest = Manifest.create ~shards:cfg.Config.shards dev in
  { cfg;
    dev;
    vlog;
    shards =
      Array.init cfg.Config.shards (fun id ->
          Shard.create ~manifest ~cfg ~id dev vlog);
    gpm = Modes.Gpm.create ~cfg;
    manifest;
    cache =
      (if cfg.Config.cache_bytes > 0 then
         Some
           (Cache.create ~negative:cfg.Config.cache_negative
              ~shards:cfg.Config.shards
              ~capacity_bytes:cfg.Config.cache_bytes ())
       else None) }

let cfg t = t.cfg
let shards t = t.shards
let device t = t.dev
let vlog t = t.vlog
let gpm t = t.gpm
let gpm_active t = Modes.Gpm.active t.gpm

let signals t =
  Modes.Signals.of_gpm ~write_intensive:t.cfg.Config.write_intensive t.gpm

let shard_of t key =
  t.shards.(Hash.shard_of ~hash:(Hash.mix64 key) ~shards:t.cfg.Config.shards)

let suspend_compactions t =
  t.cfg.Config.abi_enabled
  && (t.cfg.Config.write_intensive || Modes.Gpm.active t.gpm)

(* dumping the ABI as an un-merged level is a Get-Protect-Mode action;
   Write-Intensive Mode merges a full ABI into the last level instead *)
let can_dump t = t.cfg.Config.abi_enabled && Modes.Gpm.active t.gpm

(* Every put/delete must drop any cached entry for the key in the same
   breath as the index insert, or a later cached read would serve a stale
   location.  The cost is attributed to the index-insert stage: the cache
   probe is index maintenance riding on the already-computed key hash. *)
let cache_invalidate ?(attributed = true) t clock key =
  match t.cache with
  | None -> ()
  | Some cache ->
    let attr = attributed && Obs.Attribution.enabled () in
    let t0 = if attr then Clock.now clock else 0.0 in
    Cache.invalidate cache clock key;
    if attr then
      Obs.Attribution.add Obs.Attribution.Put_index_insert
        (Clock.now clock -. t0)

let write t clock key spec =
  (match spec with
  | Store_intf.Sized vlen when vlen < 0 ->
    invalid_arg "Store.put: negative value length"
  | _ -> ());
  Obs.Trace.begin_span clock ~cat:"op" "put";
  let shard = shard_of t key in
  let loc =
    match spec with
    | Store_intf.Sized vlen -> Vlog.append t.vlog clock key ~vlen
    | Store_intf.Payload v -> Vlog.append_value t.vlog clock key v
  in
  cache_invalidate t clock key;
  Shard.put shard clock key loc ~suspend_compactions:(suspend_compactions t)
    ~can_dump:(can_dump t);
  Obs.Trace.end_span clock ~cat:"op" "put"

let put t clock key ~vlen = write t clock key (Store_intf.Sized vlen)

let delete t clock key =
  Obs.Trace.begin_span clock ~cat:"op" "delete";
  let shard = shard_of t key in
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  cache_invalidate ~attributed:false t clock key;
  Shard.put shard clock key Types.tombstone
    ~suspend_compactions:(suspend_compactions t) ~can_dump:(can_dump t);
  Obs.Trace.end_span clock ~cat:"op" "delete"

let stage_of_hit : Shard.hit_stage -> Store_intf.read_stage = function
  | Shard.Hit_memtable -> Store_intf.Memtable
  | Shard.Hit_abi -> Store_intf.Abi
  | Shard.Hit_dump -> Store_intf.Dump
  | Shard.Hit_upper -> Store_intf.Upper
  | Shard.Hit_last -> Store_intf.Last
  | Shard.Miss -> Store_intf.Miss

(* Index walk + log read, byte-for-byte the pre-cache get path: with the
   cache disabled this is the whole read, so [cache_bytes = 0] reproduces
   pre-cache latencies exactly. *)
let slow_read t clock key : Store_intf.read_result =
  let shard = shard_of t key in
  if not (Modes.Gpm.active t.gpm) then
    Shard.drain_dumps_if_idle shard ~now:(Clock.now clock);
  match Shard.get shard clock key with
  | None, stage -> { loc = None; stage = stage_of_hit stage; value = None }
  | Some loc, stage ->
    let k, _vlen, value = Vlog.read_entry t.vlog clock loc in
    if Int64.equal k key then
      { loc = Some loc; stage = stage_of_hit stage; value }
    else { loc = None; stage = Store_intf.Miss; value = None }
    (* defensive: corrupt index entry *)

let read t clock key : Store_intf.read_result =
  Obs.Trace.begin_span clock ~cat:"op" "get";
  let t0 = Clock.now clock in
  let result =
    match t.cache with
    | None -> slow_read t clock key
    | Some cache -> begin
      let attr = Obs.Attribution.enabled () in
      let c0 = if attr then Clock.now clock else 0.0 in
      let outcome = Cache.find cache clock key in
      if attr then
        Obs.Attribution.add Obs.Attribution.Get_cache (Clock.now clock -. c0);
      match outcome with
      | Cache.Hit { loc; vlen = _; value } ->
        { Store_intf.loc = Some loc; stage = Store_intf.Cache; value }
      | Cache.Negative ->
        { Store_intf.loc = None; stage = Store_intf.Cache; value = None }
      | Cache.Miss ->
        let r = slow_read t clock key in
        let f0 = if attr then Clock.now clock else 0.0 in
        (match r.Store_intf.loc with
        | Some loc ->
          Cache.insert cache clock key ~loc
            ~vlen:(Vlog.vlen_at t.vlog loc)
            ?value:r.Store_intf.value ()
        | None -> Cache.insert_negative cache clock key);
        if attr then
          Obs.Attribution.add Obs.Attribution.Get_cache
            (Clock.now clock -. f0);
        r
    end
  in
  Modes.Gpm.record_get t.gpm (Clock.now clock -. t0);
  Obs.Trace.end_span clock ~cat:"op" "get";
  result

let get t clock key = (read t clock key).Store_intf.loc

let flush_all t clock =
  Array.iter (fun shard -> Shard.force_flush shard clock) t.shards;
  Manifest.record_update t.manifest clock

let wait_background t clock =
  Array.iter
    (fun shard ->
      ignore (Clock.wait_until clock (Shard.background_free_at shard)))
    t.shards

let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  Array.iter Shard.lose_volatile t.shards;
  (* the read cache is volatile: it must not survive into recovery, or a
     cached location could resurrect state the crash rolled back *)
  Option.iter Cache.clear t.cache

let recover t clock =
  Fault_point.with_site Fault_point.Recovery @@ fun () ->
  Obs.Trace.begin_span clock ~cat:"recovery" "recover";
  let t0 = Clock.now clock in
  let marks = Array.map Shard.persisted_mark t.shards in
  let lo = Array.fold_left min (Vlog.persisted t.vlog) marks in
  Vlog.iter_range t.vlog clock ~lo ~hi:(Vlog.persisted t.vlog)
    (fun loc key vlen ->
      let shard_ix =
        Hash.shard_of ~hash:(Hash.mix64 key) ~shards:t.cfg.Config.shards
      in
      if loc >= marks.(shard_ix) then begin
        let index_loc = if vlen < 0 then Types.tombstone else loc in
        Shard.replay t.shards.(shard_ix) clock key index_loc
      end);
  let restart_ns = Clock.now clock -. t0 in
  Obs.Trace.end_span clock ~cat:"recovery" "recover";
  (* ABI rebuild proceeds in the background after service resumes *)
  Array.iter
    (fun shard -> Shard.schedule_abi_rebuild shard ~start_at:(Clock.now clock))
    t.shards;
  restart_ns

(* {2 Value-log garbage collection.}

   The paper leaves log GC out of scope; this is the natural extension for
   a log-structured store.  A pass scans the oldest log entries: an entry is
   live iff the index still resolves its key to that exact location.  Live
   entries are copied to the log tail through the ordinary put path (so the
   copy is crash-consistent by construction: recovery simply replays it);
   dead entries — superseded versions, tombstone records already reflected
   in the persistent index — are dropped.  After the batch is flushed, the
   log head advances and the prefix is reclaimed. *)

type gc_stats = {
  gc_scanned : int;
  gc_live : int;
  gc_dead : int;
  gc_reclaimed_bytes : int;
}

let gc t clock ?max_entries () =
  let max_entries =
    match max_entries with
    | Some n -> n
    | None -> t.cfg.Config.gc_max_entries
  in
  Fault_point.with_site Fault_point.Gc @@ fun () ->
  Obs.Trace.begin_span clock ~cat:"gc" "gc";
  (* flush the open batch so the scan limit can include the current tail *)
  Vlog.flush t.vlog clock;
  let head = Vlog.head t.vlog in
  let limit = min (Vlog.persisted t.vlog) (head + max_entries) in
  let scanned = ref 0 and live = ref 0 and dead = ref 0 in
  Vlog.iter_range t.vlog clock ~lo:head ~hi:limit (fun loc key vlen ->
      incr scanned;
      let shard = shard_of t key in
      match Shard.raw_lookup shard clock key with
      | Some cur when cur = loc ->
        incr live;
        Obs.Counters.incr c_gc_relocations;
        let fresh = Vlog.copy_entry t.vlog clock loc in
        (* keep any cached entry pointing at the key's current version:
           the old location is about to be reclaimed *)
        Option.iter
          (fun cache ->
            Cache.relocate cache clock key ~expect:loc ~loc:fresh)
          t.cache;
        Shard.put shard clock key fresh
          ~suspend_compactions:(suspend_compactions t)
          ~can_dump:(can_dump t)
      | Some cur when Types.is_tombstone cur && vlen < 0 ->
        (* the key is currently deleted and this is a deletion record: it
           must survive, or a crash could resurrect an older version still
           sitting in the persistent index *)
        incr live;
        Obs.Counters.incr c_gc_relocations;
        let _fresh = Vlog.append t.vlog clock key ~vlen:(-1) in
        Shard.put shard clock key Types.tombstone
          ~suspend_compactions:(suspend_compactions t)
          ~can_dump:(can_dump t)
      | Some _ | None -> incr dead);
  (* the copies must be durable before the originals are reclaimed *)
  Vlog.flush t.vlog clock;
  let reclaimed =
    Vlog.bytes_upto t.vlog limit - Vlog.bytes_upto t.vlog head
  in
  Vlog.advance_head t.vlog limit;
  Manifest.record_update t.manifest clock;
  Obs.Counters.add_int c_gc_reclaimed reclaimed;
  Obs.Trace.end_span clock ~cat:"gc" "gc";
  { gc_scanned = !scanned;
    gc_live = !live;
    gc_dead = !dead;
    gc_reclaimed_bytes = reclaimed }

(* {2 Full scan.} *)

let iter t clock f =
  (* newest-version-wins sweep over every structure, oldest tables masked
     by newer ones via a seen-set *)
  let seen = Hashtbl.create 4096 in
  let visit key loc =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if not (Types.is_tombstone loc) then f key loc
    end
  in
  Array.iter
    (fun shard ->
      Hashtbl.reset seen;
      Shard.iter_newest_first shard clock visit)
    t.shards

let cache_stats t =
  match t.cache with
  | None -> None
  | Some c -> Some (Cache.used_bytes c, Cache.capacity_bytes c)

let dram_footprint t =
  Array.fold_left (fun acc s -> acc +. Shard.dram_footprint s) 0.0 t.shards
  +. Vlog.dram_footprint t.vlog
  +. (match t.cache with Some c -> Cache.dram_footprint c | None -> 0.0)

let pmem_footprint t =
  Array.fold_left (fun acc s -> acc +. Shard.pmem_footprint s) 0.0 t.shards
  +. Manifest.footprint_bytes t.manifest

type totals = {
  flushes : int;
  upper_compactions : int;
  last_compactions : int;
  abi_dumps : int;
  absorbs : int;
  stall_ns : float;
  manifest_updates : int;
}

let totals t =
  let acc =
    { flushes = 0;
      upper_compactions = 0;
      last_compactions = 0;
      abi_dumps = 0;
      absorbs = 0;
      stall_ns = 0.0;
      manifest_updates = Manifest.updates t.manifest }
  in
  Array.fold_left
    (fun acc s ->
      let c = Shard.counters s in
      { acc with
        flushes = acc.flushes + c.Shard.flushes;
        upper_compactions = acc.upper_compactions + c.Shard.upper_compactions;
        last_compactions = acc.last_compactions + c.Shard.last_compactions;
        abi_dumps = acc.abi_dumps + c.Shard.abi_dumps;
        absorbs = acc.absorbs + c.Shard.absorbs;
        stall_ns = acc.stall_ns +. c.Shard.stall_ns })
    acc t.shards

let check_invariants t =
  let rec go i =
    if i >= Array.length t.shards then Ok ()
    else begin
      match Shard.check_invariants t.shards.(i) with
      | Ok () -> go (i + 1)
      | Error msg -> Error (Printf.sprintf "shard %d: %s" i msg)
    end
  in
  go 0

let store ?(name = "ChameleonDB") t : Kv_common.Store_intf.store =
  (module struct
    let name = name
    let write clock key spec = write t clock key spec
    let read clock key = read t clock key
    let delete clock key = delete t clock key
    let flush clock = flush_all t clock
    let maintenance clock = ignore (gc t clock ())
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t
    let dram_footprint () = dram_footprint t
    let pmem_footprint () = pmem_footprint t
    let device = t.dev
    let vlog = t.vlog

    let fault_points =
      Fault_point.
        [ Foreground; Flush; Last_level_merge; Gc; Manifest_update;
          Recovery ]
      @ (match t.cfg.Config.compaction with
        | Config.Direct -> [ Fault_point.Direct_compaction ]
        | Config.Level_by_level -> [ Fault_point.Upper_compaction ])
      @
      if t.cfg.Config.gpm_enabled && t.cfg.Config.abi_enabled then
        [ Fault_point.Abi_dump ]
      else []
  end)

