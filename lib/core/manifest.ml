module Device = Pmem_sim.Device
module Clock = Pmem_sim.Clock
module Fault_point = Kv_common.Fault_point

type t = {
  dev : Device.t;
  mutable nupdates : int;
  shards : int;
  floors_off : int; (* device offset of the floor records; -1 when shards=0 *)
}

let record_bytes = 64
let floor_bytes = 16

(* Encoding of a shard's floor record: two little-endian int64s,
   [mt_floor] then [absorb_floor] (-1L = none). *)
let encode_floor ~mt_floor ~absorb_floor =
  let b = Bytes.create floor_bytes in
  Bytes.set_int64_le b 0 (Int64.of_int mt_floor);
  Bytes.set_int64_le b 8
    (match absorb_floor with None -> -1L | Some f -> Int64.of_int f);
  b

let create ?(shards = 0) dev =
  let floors_off =
    if shards = 0 then -1
    else begin
      let off = Device.alloc dev (shards * floor_bytes) in
      (* Zero floors are the correct initial state (replay from the log
         origin); persist them on a scratch clock, as table construction
         at create time does elsewhere. *)
      let clock = Clock.create () in
      for s = 0 to shards - 1 do
        Device.write_bytes dev clock
          ~off:(off + (s * floor_bytes))
          (encode_floor ~mt_floor:0 ~absorb_floor:None)
      done;
      Device.persist dev clock ~off ~len:(shards * floor_bytes);
      off
    end
  in
  { dev; nupdates = 0; shards; floors_off }

let record_update t clock =
  Fault_point.with_site Fault_point.Manifest_update (fun () ->
      t.nupdates <- t.nupdates + 1;
      Device.charge_append t.dev clock ~len:record_bytes)

let set_floors t clock ~shard ~mt_floor ~absorb_floor =
  if shard < 0 || shard >= t.shards then invalid_arg "Manifest.set_floors";
  Fault_point.with_site Fault_point.Manifest_update (fun () ->
      t.nupdates <- t.nupdates + 1;
      let off = t.floors_off + (shard * floor_bytes) in
      Device.write_bytes t.dev clock ~off
        (encode_floor ~mt_floor ~absorb_floor);
      Device.persist t.dev clock ~off ~len:floor_bytes)

let floors t ~shard =
  if shard < 0 || shard >= t.shards then invalid_arg "Manifest.floors";
  let off = t.floors_off + (shard * floor_bytes) in
  let mt = Int64.to_int (Device.peek_u64 t.dev ~off) in
  let ab = Device.peek_u64 t.dev ~off:(off + 8) in
  (mt, if Int64.compare ab 0L < 0 then None else Some (Int64.to_int ab))

let shards t = t.shards
let updates t = t.nupdates

let footprint_bytes t =
  float_of_int ((t.nupdates * record_bytes) + (max 0 t.shards * floor_bytes))
