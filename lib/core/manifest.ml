module Device = Pmem_sim.Device
module Clock = Pmem_sim.Clock
module Crc32c = Pmem_sim.Crc32c
module Cost_model = Pmem_sim.Cost_model
module Fault_point = Kv_common.Fault_point

type t = {
  dev : Device.t;
  mutable nupdates : int;
  shards : int;
  floors_off : int; (* device offset of the floor records; -1 when shards=0 *)
}

let record_bytes = 64
let floor_bytes = 24

(* Floor-record checksum.  The CRC covers both watermarks AND the shard
   index, so a record blitted to the wrong slot (or a misdirected write)
   fails verification instead of feeding another shard's floors into
   recovery. *)
let floor_crc ~shard ~mt ~ab =
  Crc32c.int (Crc32c.int64 (Crc32c.int64 Crc32c.empty mt) ab) shard

(* Encoding of a shard's floor record: two little-endian int64s,
   [mt_floor] then [absorb_floor] (-1L = none), then a 4 B CRC32C (padded
   to 8 B) binding the watermarks to the shard index. *)
let encode_floor ~shard ~mt_floor ~absorb_floor =
  let b = Bytes.create floor_bytes in
  let mt = Int64.of_int mt_floor in
  let ab = match absorb_floor with None -> -1L | Some f -> Int64.of_int f in
  Bytes.set_int64_le b 0 mt;
  Bytes.set_int64_le b 8 ab;
  Bytes.set_int64_le b 16
    (Int64.logand (Int64.of_int32 (floor_crc ~shard ~mt ~ab)) 0xFFFFFFFFL);
  b

let create ?(shards = 0) dev =
  let floors_off =
    if shards = 0 then -1
    else begin
      let off = Device.alloc dev (shards * floor_bytes) in
      (* Zero floors are the correct initial state (replay from the log
         origin); persist them on a scratch clock, as table construction
         at create time does elsewhere. *)
      let clock = Clock.create () in
      for s = 0 to shards - 1 do
        Device.write_bytes dev clock
          ~off:(off + (s * floor_bytes))
          (encode_floor ~shard:s ~mt_floor:0 ~absorb_floor:None)
      done;
      Device.persist dev clock ~off ~len:(shards * floor_bytes);
      off
    end
  in
  { dev; nupdates = 0; shards; floors_off }

let record_update t clock =
  Fault_point.with_site Fault_point.Manifest_update (fun () ->
      t.nupdates <- t.nupdates + 1;
      Device.charge_append t.dev clock ~len:record_bytes)

let floor_range t ~shard =
  if shard < 0 || shard >= t.shards then invalid_arg "Manifest.floor_range";
  (t.floors_off + (shard * floor_bytes), floor_bytes)

let set_floors t clock ~shard ~mt_floor ~absorb_floor =
  if shard < 0 || shard >= t.shards then invalid_arg "Manifest.set_floors";
  Fault_point.with_site Fault_point.Manifest_update (fun () ->
      t.nupdates <- t.nupdates + 1;
      let off = t.floors_off + (shard * floor_bytes) in
      Clock.advance clock
        (Cost_model.crc_ns_per_byte *. float_of_int floor_bytes);
      Device.write_bytes t.dev clock ~off
        (encode_floor ~shard ~mt_floor ~absorb_floor);
      Device.persist t.dev clock ~off ~len:floor_bytes)

(* Uncharged verification of one floor record against media state: the
   record must sit on un-poisoned units and its stored CRC must match the
   recomputed one. *)
let floor_intact t ~shard =
  let off, len = floor_range t ~shard in
  (not (Device.poisoned_in t.dev ~off ~len))
  &&
  let mt = Device.peek_u64 t.dev ~off in
  let ab = Device.peek_u64 t.dev ~off:(off + 8) in
  let stored = Int64.to_int32 (Device.peek_u64 t.dev ~off:(off + 16)) in
  Int32.equal stored (floor_crc ~shard ~mt ~ab)

let floors t ~shard =
  if shard < 0 || shard >= t.shards then invalid_arg "Manifest.floors";
  if not (floor_intact t ~shard) then
    (* Conservative fallback: a corrupt floor record means we no longer
       know how much of the log this shard may skip, so it skips nothing.
       Replaying from the origin is idempotent, just slower. *)
    (0, None)
  else begin
    let off = t.floors_off + (shard * floor_bytes) in
    let mt = Int64.to_int (Device.peek_u64 t.dev ~off) in
    let ab = Device.peek_u64 t.dev ~off:(off + 8) in
    (mt, if Int64.compare ab 0L < 0 then None else Some (Int64.to_int ab))
  end

(* Scrub support: verify a floor record, and if damaged rewrite it from
   the caller's in-DRAM truth (clearing any poison by the full-unit
   rewrite plus an explicit heal for the general case). *)
let repair_floor t clock ~shard ~mt_floor ~absorb_floor =
  if floor_intact t ~shard then false
  else begin
    let off, len = floor_range t ~shard in
    Device.clear_poison t.dev ~off ~len;
    set_floors t clock ~shard ~mt_floor ~absorb_floor;
    true
  end

let shards t = t.shards
let updates t = t.nupdates

let footprint_bytes t =
  float_of_int ((t.nupdates * record_bytes) + (max 0 t.shards * floor_bytes))
