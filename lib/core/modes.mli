(** Execution-mode controllers.

    Write-Intensive Mode is a static configuration switch (handled in
    {!Shard}); the dynamic Get-Protect Mode (Section 2.4) lives here: a
    controller watches a sliding window of get latencies and raises
    [active] when the windowed p99 crosses the configured threshold,
    lowering it once the tail subsides below the threshold again. *)

module Gpm : sig
  type t

  val create : cfg:Config.t -> t

  val record_get : t -> float -> unit
  (** Feed one get latency (simulated ns); re-evaluates the window
      periodically. *)

  val active : t -> bool
  (** Whether compactions are currently suspended. *)

  val activations : t -> int
  (** Times the mode has switched on (for experiments). *)

  val current_p99 : t -> float
  (** Most recently evaluated windowed p99 (0 before the first window). *)
end

(** Mode state exported upward (to [lib/service]'s admission controller)
    without exposing the store's concrete type: a write-burst admission
    policy tightens puts while Get-Protect is active and relaxes them under
    Write-Intensive Mode. *)
module Signals : sig
  type t = {
    write_intensive : bool;       (** static WIM configuration switch *)
    get_protect_active : unit -> bool;  (** live {!Gpm.active} probe *)
    get_p99_ns : unit -> float;   (** live windowed get p99 *)
    shard_degraded : Kv_common.Types.key -> bool;
        (** is the shard owning the key serving with unrepaired
            corruption?  Admission throttles writes into such shards *)
    degraded_fraction : unit -> float;
        (** fraction of shards currently degraded (health telemetry) *)
  }

  val none : t
  (** Inert signals (stores without mode controllers or shard health). *)

  val of_gpm : write_intensive:bool -> Gpm.t -> t
  (** Mode signals from a GPM controller; health fields stay inert (the
      store overrides them with live probes). *)
end
