type compaction_scheme = Direct | Level_by_level

type index_kind = Probe | Mph

type t = {
  shards : int;
  memtable_slots : int;
  levels : int;
  ratio : int;
  lf_min : float;
  lf_max : float;
  abi_slots_factor : int;
  abi_load_factor : float;
  last_level_load_factor : float;
  compaction : compaction_scheme;
  write_intensive : bool;
  gpm_enabled : bool;
  gpm_threshold_ns : float;
  gpm_max_dumps : int;
  vlog_batch_bytes : int;
  materialize_values : bool;
  abi_enabled : bool;
  cache_bytes : int;
  cache_negative : bool;
  gc_max_entries : int;
  scrub_budget_bytes : int;
  index_kind : index_kind;
  seed : int;
}

let default =
  { shards = 256;
    memtable_slots = 512;
    levels = 4;
    ratio = 4;
    lf_min = 0.65;
    lf_max = 0.85;
    abi_slots_factor = 64;
    abi_load_factor = 0.90;
    last_level_load_factor = 0.75;
    compaction = Direct;
    write_intensive = false;
    gpm_enabled = false;
    gpm_threshold_ns = 2000.0;
    gpm_max_dumps = 1;
    vlog_batch_bytes = 4096;
    materialize_values = false;
    abi_enabled = true;
    cache_bytes = 0;
    cache_negative = true;
    gc_max_entries = 100_000;
    scrub_budget_bytes = 1 lsl 20;
    index_kind = Probe;
    seed = 7 }

let scaled ?shards ?memtable_slots t =
  let t = match shards with Some s -> { t with shards = s } | None -> t in
  match memtable_slots with
  | Some m -> { t with memtable_slots = m }
  | None -> t

let upper_levels t = t.levels - 1

let rec pow base = function 0 -> 1 | n -> base * pow base (n - 1)

let max_upper_entries t = pow t.ratio (t.levels - 1) * t.memtable_slots

let validate t =
  if t.shards <= 0 then Error "shards must be positive"
  else if t.memtable_slots < 8 then Error "memtable_slots too small"
  else if t.levels < 2 then Error "need at least two levels"
  else if t.ratio < 2 then Error "ratio must be >= 2"
  else if not (0.0 < t.lf_min && t.lf_min <= t.lf_max && t.lf_max < 1.0) then
    Error "load-factor band must satisfy 0 < min <= max < 1"
  else if t.cache_bytes < 0 then Error "cache_bytes must be >= 0"
  else if t.gc_max_entries <= 0 then Error "gc_max_entries must be positive"
  else if t.scrub_budget_bytes <= 0 then
    Error "scrub_budget_bytes must be positive"
  else begin
    (* the ABI must accommodate the worst-case upper-level content *)
    let abi_capacity =
      t.abi_load_factor
      *. float_of_int (t.abi_slots_factor * t.memtable_slots)
    in
    let worst = t.lf_max *. float_of_int (max_upper_entries t) in
    if abi_capacity < worst then
      Error
        (Printf.sprintf
           "ABI too small: capacity %.0f < worst-case upper content %.0f"
           abi_capacity worst)
    else Ok ()
  end
