module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Flat_table = Kv_common.Flat_table
module Linear_table = Kv_common.Linear_table
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Fault_point = Kv_common.Fault_point
module Hash = Kv_common.Hash

type hit_stage =
  | Hit_memtable
  | Hit_abi
  | Hit_dump
  | Hit_upper
  | Hit_last
  | Miss
  | Hit_corrupt
      (* a table block the probe needed failed verification: fail closed,
         never serve around it — and the shard needs scrub attention *)
  | Hit_quarantined
      (* the newest version is quarantined (index marker): containment is
         already in place, the read answers an explicit error *)

(* Unified observability counters (Obs.Counters registry); the per-shard
   [counters] record below stays the per-instance view consumed by
   [Store.totals] and [Report]. *)
let c_flushes = Obs.Counters.counter "shard.flushes"
let c_upper_compactions = Obs.Counters.counter "shard.upper_compactions"
let c_last_compactions = Obs.Counters.counter "shard.last_compactions"
let c_abi_dumps = Obs.Counters.counter "shard.abi_dumps"
let c_absorbs = Obs.Counters.counter "shard.absorbs"
let c_put_stall_ns = Obs.Counters.counter "put.stall_ns"
let c_flush_bytes = Obs.Counters.counter "flush.bytes"
let c_compaction_bytes = Obs.Counters.counter "compaction.bytes"
let c_memtable_hits = Obs.Counters.counter "get.memtable_hits"
let c_abi_hits = Obs.Counters.counter "get.abi_hits"
let c_rebuilds = Obs.Counters.counter "shard.vlog_rebuilds"

(* Background work is traced on a per-shard virtual thread. *)
let bg_tid id = 1000 + id

type counters = {
  mutable flushes : int;
  mutable upper_compactions : int;
  mutable last_compactions : int;
  mutable abi_dumps : int;
  mutable absorbs : int;
  mutable stall_ns : float;
}

type t = {
  id : int;
  cfg : Config.t;
  dev : Device.t;
  vlog : Vlog.t;
  manifest : Manifest.t option;
  memtable : Memtable.t;
  lv : Levels.t;
  mutable abi : Flat_table.t;
  mutable dumps : Linear_table.t list; (* newest first *)
  mutable bg_free_at : float;
  mutable abi_ready_at : float;
  mutable mt_floor : int;
      (* log length when the MemTable was last empty: entries beyond it may
         live only in the MemTable *)
  mutable absorb_floor : int option;
      (* log length at the first ABI absorption since the ABI was last made
         persistent (dump or last-level compaction) *)
  mutable next_seq : int; (* recency tags for persistent tables *)
  mutable last_bg_compacted : bool;
      (* whether the most recent background job ran a compaction: decides
         if a put stalling behind it is attributed to flush or compaction *)
  mutable notify_quarantine : Kv_common.Types.key -> unit;
      (* the store hooks cache invalidation and counters in here; shard-
         internal repair (rebuild-from-vlog) quarantines through it *)
  ctr : counters;
}

let abi_slots cfg = cfg.Config.abi_slots_factor * cfg.Config.memtable_slots

let make_abi cfg =
  Flat_table.create ~load_factor:cfg.Config.abi_load_factor
    ~slots:(abi_slots cfg) ()

let create ?manifest ~cfg ~id dev vlog =
  { id;
    cfg;
    dev;
    vlog;
    manifest;
    memtable = Memtable.create ~cfg ~shard_id:id;
    lv = Levels.create ~cfg;
    abi = make_abi cfg;
    dumps = [];
    bg_free_at = 0.0;
    abi_ready_at = 0.0;
    mt_floor = 0;
    absorb_floor = None;
    next_seq = 1;
    last_bg_compacted = false;
    notify_quarantine = (fun _ -> ());
    ctr =
      { flushes = 0;
        upper_compactions = 0;
        last_compactions = 0;
        abi_dumps = 0;
        absorbs = 0;
        stall_ns = 0.0 } }

let counters t = t.ctr
let levels t = t.lv
let abi_count t = Flat_table.count t.abi
let memtable_count t = Memtable.count t.memtable
let dump_count t = List.length t.dumps
let abi_ready_at t = t.abi_ready_at
let background_free_at t = t.bg_free_at

let persisted_mark t =
  match t.absorb_floor with
  | None -> t.mt_floor
  | Some f -> min f t.mt_floor

let fresh_tag t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let build_table t clock ~slots entries =
  let tbl = Linear_table.build t.dev clock ~slots entries in
  Linear_table.set_tag tbl (fresh_tag t);
  tbl

(* The last level is one dense run, rebuilt wholesale by every merge.
   [Probe] (default) keys it in sorted order so range scans can cursor it
   (sorting rides on the rewrite, charged at [sort_per_key_ns]); [Mph]
   lays the slots out under a minimal perfect hash built at merge time,
   so a point get costs exactly one device read (scans then fall back to
   the snapshot path). *)
let build_last_table t clock entries =
  let tbl =
    match t.cfg.Config.index_kind with
    | Config.Probe -> Linear_table.build_sorted t.dev clock entries
    | Config.Mph ->
      Linear_table.build_mph t.dev clock ~seed:t.cfg.Config.seed entries
  in
  Linear_table.set_tag tbl (fresh_tag t);
  tbl

let merge_entries = Kv_common.Merge.newest_first

let abi_iter_source t visit = Flat_table.iter t.abi visit

let table_iter_source clock tbl visit = Linear_table.iter tbl clock visit

let round_up_to v m = (v + m - 1) / m * m

let set_notify_quarantine t f = t.notify_quarantine <- f
let floors t = (t.mt_floor, t.absorb_floor)

let owns t key =
  Hash.shard_of ~hash:(Hash.mix64 key) ~shards:t.cfg.Config.shards = t.id

(* Every persistent run this shard holds (dumps, upper levels, last), for
   the scrubber's whole-run verification. *)
let persistent_tables t =
  t.dumps
  @ Levels.upper_tables_newest_first t.lv ()
  @ (match Levels.last t.lv with Some tbl -> [ tbl ] | None -> [])

(* Verify compaction inputs before trusting their slots.  The streaming
   [iter] a merge performs already pays the device traffic, so only the
   CRC pass is charged here ([charge_read] stays false). *)
let sources_intact bg tables =
  List.for_all (fun tbl -> Linear_table.intact tbl bg) tables

(* Repair path: rebuild this shard's entire index from the value log.
   Every live index entry points at a log location >= the log head (GC
   maintains this), so replaying [head, persisted) reconstructs a complete
   index no matter which table run was damaged.  The result is one fresh
   last-level table; the MemTable, ABI, dumps and upper levels are all
   dropped — their content is re-derived from the log.  Corrupt log
   records owned by this shard whose version is still newest are
   quarantined: indexed as {!Types.corrupt_marker} so reads answer an
   explicit error rather than a silent miss or a stale version. *)
let rebuild_from_vlog t bg =
  Fault_point.with_site Fault_point.Scrub @@ fun () ->
  Obs.Counters.incr c_rebuilds;
  Obs.Trace.begin_span bg ~tid:(bg_tid t.id) ~cat:"bg" "vlog-rebuild";
  Vlog.flush t.vlog bg;
  let newest = Hashtbl.create 1024 in
  let corrupt_seen = Hashtbl.create 8 in
  Vlog.iter_range t.vlog bg ~lo:(Vlog.head t.vlog)
    ~hi:(Vlog.persisted t.vlog)
    ~on_corrupt:(fun _loc key _vlen ->
      (* untrusted key: used only to place a conservative quarantine *)
      if owns t key then begin
        Hashtbl.replace newest key Types.corrupt_marker;
        Hashtbl.replace corrupt_seen key ()
      end)
    (fun loc key vlen ->
      if owns t key then begin
        Hashtbl.replace newest key
          (if vlen = Types.corrupt_marker then Types.corrupt_marker
           else if vlen < 0 then Types.tombstone
           else loc);
        (* a later valid record supersedes the rot; a later quarantine
           record means the containment is already durable and counted *)
        Hashtbl.remove corrupt_seen key
      end);
  (* Make fresh quarantines durable in the log, as [Store.quarantine]
     would: without the marker record, the next scan of the still-corrupt
     entry would count the same incident again. *)
  Hashtbl.iter
    (fun k () ->
      if Hashtbl.find_opt newest k = Some Types.corrupt_marker then
        ignore (Vlog.append t.vlog bg k ~vlen:Types.corrupt_marker))
    corrupt_seen;
  Vlog.flush t.vlog bg;
  let entries =
    Hashtbl.fold
      (fun k l acc -> if Types.is_tombstone l then acc else (k, l) :: acc)
      newest []
  in
  let live = List.length entries in
  (* Build the replacement run BEFORE dropping anything: a crash at the
     build's persist must leave the old structures (and old floors) in
     place, from which recovery proceeds as if the rebuild never started. *)
  let fresh =
    if live = 0 then None
    else begin
      let tbl = build_last_table t bg entries in
      Obs.Counters.add_int c_compaction_bytes (Linear_table.byte_size tbl);
      Some tbl
    end
  in
  Memtable.reset t.memtable;
  Flat_table.clear t.abi;
  List.iter Linear_table.free t.dumps;
  t.dumps <- [];
  Levels.clear_upper_range t.lv ~upto:(Config.upper_levels t.cfg - 1);
  (match Levels.last t.lv with Some old -> Linear_table.free old | None -> ());
  Levels.set_last t.lv fresh;
  t.absorb_floor <- None;
  t.mt_floor <- Vlog.persisted t.vlog;
  (match t.manifest with
  | Some m when Manifest.shards m > t.id ->
    Manifest.set_floors m bg ~shard:t.id ~mt_floor:t.mt_floor
      ~absorb_floor:None
  | Some _ | None -> ());
  (* report quarantines only for keys whose final log version really is
     the corrupt record (later intact versions supersede earlier rot) *)
  Hashtbl.iter
    (fun k () ->
      if Hashtbl.find_opt newest k = Some Types.corrupt_marker then
        t.notify_quarantine k)
    corrupt_seen;
  Obs.Trace.end_span bg ~tid:(bg_tid t.id) ~cat:"bg" "vlog-rebuild"

(* {2 Last-level compaction (leveled), Direct flavour: fed from the ABI
   (Fig. 8) plus any GPM-dumped tables, merged with the old last level.
   Clears the upper levels, the dumps and the ABI. } *)

let last_level_compact t bg =
  let source_tables =
    (if t.cfg.Config.abi_enabled then []
     else Levels.upper_tables_newest_first t.lv ())
    @ t.dumps
    @ (match Levels.last t.lv with None -> [] | Some tbl -> [ tbl ])
  in
  if not (sources_intact bg source_tables) then
    (* merging unverifiable slots would launder corruption into a fresh
       run; rebuild the shard from the value log instead *)
    rebuild_from_vlog t bg
  else begin
  Fault_point.with_site Fault_point.Last_level_merge @@ fun () ->
  t.ctr.last_compactions <- t.ctr.last_compactions + 1;
  Obs.Counters.incr c_last_compactions;
  Obs.Trace.begin_span bg ~tid:(bg_tid t.id) ~cat:"compaction" "compact:last";
  (* write-ahead order: absorbed ABI entries may reference log records from
     the open batch; they must be durable before a persistent table points
     at them, or a crash truncates the log under the new last level.
     (Found by the crash checker; test_fault's WIM sweep keeps the
     regression.) *)
  Vlog.flush t.vlog bg;
  let upper_sources =
    if t.cfg.Config.abi_enabled then [ abi_iter_source t ]
    else
      (* ablation: without the ABI the upper levels are re-read from the
         device, ordered newest first *)
      List.map (table_iter_source bg) (Levels.upper_tables_newest_first t.lv ())
  in
  let dump_sources = List.map (table_iter_source bg) t.dumps in
  let last_source =
    match Levels.last t.lv with
    | None -> []
    | Some tbl -> [ table_iter_source bg tbl ]
  in
  let entries =
    merge_entries ~drop_tombstones:true
      (upper_sources @ dump_sources @ last_source)
  in
  (* charge the DRAM-side sequential scan of the ABI *)
  if t.cfg.Config.abi_enabled then
    Clock.advance bg
      (float_of_int (Flat_table.count t.abi)
      *. Pmem_sim.Cost_model.scan_per_entry_ns);
  let fresh = build_last_table t bg entries in
  Obs.Counters.add_int c_compaction_bytes (Linear_table.byte_size fresh);
  (match Levels.last t.lv with Some old -> Linear_table.free old | None -> ());
  Levels.set_last t.lv (Some fresh);
  List.iter Linear_table.free t.dumps;
  t.dumps <- [];
  Levels.clear_upper_range t.lv ~upto:(Config.upper_levels t.cfg - 1);
  Flat_table.clear t.abi;
  t.absorb_floor <- None;
  Obs.Trace.end_span bg ~tid:(bg_tid t.id) ~cat:"compaction" "compact:last"
  end

(* {2 Size-tiered Direct Compaction among upper levels: merge levels
   [0, target-1] into a single level-[target] table.} *)

let direct_merge_upper t bg ~target =
  let sources = Levels.upper_tables_newest_first t.lv ~upto:(target - 1) () in
  if not (sources_intact bg sources) then rebuild_from_vlog t bg
  else begin
  Fault_point.with_site Fault_point.Direct_compaction @@ fun () ->
  t.ctr.upper_compactions <- t.ctr.upper_compactions + 1;
  Obs.Counters.incr c_upper_compactions;
  Obs.Trace.begin_span bg ~tid:(bg_tid t.id) ~cat:"compaction" "compact:upper";
  let entries =
    merge_entries (List.map (table_iter_source bg) sources)
  in
  let slots = Levels.table_slots ~cfg:t.cfg ~level:target in
  let fresh = build_table t bg ~slots entries in
  Obs.Counters.add_int c_compaction_bytes (Linear_table.byte_size fresh);
  Levels.clear_upper_range t.lv ~upto:(target - 1);
  Levels.add_table t.lv ~level:target fresh;
  Obs.Trace.end_span bg ~tid:(bg_tid t.id) ~cat:"compaction" "compact:upper"
  end

(* {2 Level-by-level compaction cascade (Fig. 15 ablation).} *)

let rec cascade_compact t bg ~level =
  let u = Config.upper_levels t.cfg in
  let tables = (Levels.upper t.lv).(level) in
  if level + 1 <= u - 1 then begin
    if not (sources_intact bg tables) then rebuild_from_vlog t bg
    else begin
      Fault_point.with_site Fault_point.Upper_compaction (fun () ->
          t.ctr.upper_compactions <- t.ctr.upper_compactions + 1;
          Obs.Counters.incr c_upper_compactions;
          let entries =
            merge_entries (List.map (table_iter_source bg) tables)
          in
          let slots = Levels.table_slots ~cfg:t.cfg ~level:(level + 1) in
          let fresh = build_table t bg ~slots entries in
          Obs.Counters.add_int c_compaction_bytes
            (Linear_table.byte_size fresh);
          List.iter Linear_table.free tables;
          (Levels.upper t.lv).(level) <- [];
          Levels.add_table t.lv ~level:(level + 1) fresh);
      if Levels.level_len t.lv (level + 1) >= t.cfg.Config.ratio then
        cascade_compact t bg ~level:(level + 1)
    end
  end
  else begin
    (* merging the deepest upper level into the last level: a full cascade
       has emptied every other upper level, so afterwards the ABI can simply
       be cleared.  Absorbed (DRAM-only) entries require the ABI-fed direct
       path instead. *)
    match t.absorb_floor with
    | Some _ -> last_level_compact t bg
    | None ->
      let last_tables =
        match Levels.last t.lv with None -> [] | Some tbl -> [ tbl ]
      in
      if not (sources_intact bg (tables @ last_tables)) then
        rebuild_from_vlog t bg
      else begin
      Fault_point.with_site Fault_point.Last_level_merge @@ fun () ->
      t.ctr.last_compactions <- t.ctr.last_compactions + 1;
      Obs.Counters.incr c_last_compactions;
      let last_source = List.map (table_iter_source bg) last_tables in
      let entries =
        merge_entries ~drop_tombstones:true
          (List.map (table_iter_source bg) tables @ last_source)
      in
      let fresh = build_last_table t bg entries in
      Obs.Counters.add_int c_compaction_bytes (Linear_table.byte_size fresh);
      (match Levels.last t.lv with
      | Some old -> Linear_table.free old
      | None -> ());
      Levels.set_last t.lv (Some fresh);
      List.iter Linear_table.free tables;
      (Levels.upper t.lv).(level) <- [];
      if Levels.upper_entry_count t.lv = 0 then Flat_table.clear t.abi
      end
  end

let maybe_compact t bg =
  if Levels.l0_full t.lv then begin
    match t.cfg.Config.compaction with
    | Config.Level_by_level -> cascade_compact t bg ~level:0
    | Config.Direct ->
      let u = Config.upper_levels t.cfg in
      let rec find k =
        if k > u - 1 then None
        else if Levels.level_len t.lv k < t.cfg.Config.ratio - 1 then Some k
        else find (k + 1)
      in
      (match find 1 with
      | Some target -> direct_merge_upper t bg ~target
      | None -> last_level_compact t bg)
  end

(* {2 ABI room management.} *)

let abi_has_room_for t n =
  float_of_int (Flat_table.count t.abi + n)
  <= Flat_table.threshold t.abi *. float_of_int (Flat_table.slots t.abi)

let dump_abi t bg =
  Fault_point.with_site Fault_point.Abi_dump @@ fun () ->
  t.ctr.abi_dumps <- t.ctr.abi_dumps + 1;
  Obs.Counters.incr c_abi_dumps;
  Obs.Trace.begin_span bg ~tid:(bg_tid t.id) ~cat:"bg" "abi-dump";
  (* same write-ahead order as [last_level_compact]: absorbed entries'
     log records must be durable before the dumped table is *)
  Vlog.flush t.vlog bg;
  let entries = ref [] in
  Flat_table.iter t.abi (fun k l -> entries := (k, l) :: !entries);
  Clock.advance bg
    (float_of_int (Flat_table.count t.abi)
    *. Pmem_sim.Cost_model.scan_per_entry_ns);
  (* size the dumped table at a moderate load factor: it will serve point
     lookups (mostly misses) until it is merged, and linear-probing miss
     chains explode near full occupancy *)
  let slots =
    max t.cfg.Config.memtable_slots
      (round_up_to
         (int_of_float
            (Float.ceil (float_of_int (List.length !entries) /. 0.6)))
         t.cfg.Config.memtable_slots)
  in
  let tbl = build_table t bg ~slots !entries in
  t.dumps <- tbl :: t.dumps;
  Flat_table.clear t.abi;
  t.absorb_floor <- None;
  Obs.Trace.end_span bg ~tid:(bg_tid t.id) ~cat:"bg" "abi-dump"

let ensure_abi_room t bg ~incoming ~can_dump =
  if not (abi_has_room_for t incoming) then begin
    if can_dump && List.length t.dumps < t.cfg.Config.gpm_max_dumps then
      dump_abi t bg
    else last_level_compact t bg
  end

(* Run background work: the caller (a put that filled the MemTable) waits
   for any previous background job, then [f] runs on the background clock
   starting at the caller's current time.  A stall is attributed to the kind
   of work the caller waited behind — whatever the previous background job
   was doing. *)
let with_background t clock ~label f =
  let stall = Clock.wait_until clock t.bg_free_at in
  t.ctr.stall_ns <- t.ctr.stall_ns +. stall;
  if stall > 0.0 then begin
    Obs.Counters.add c_put_stall_ns stall;
    if Obs.Attribution.enabled () then
      Obs.Attribution.add
        (if t.last_bg_compacted then Obs.Attribution.Put_compaction_stall
         else Obs.Attribution.Put_flush_stall)
        stall
  end;
  let compactions_before =
    t.ctr.upper_compactions + t.ctr.last_compactions
  in
  let bg = Clock.create ~at:(Clock.now clock) () in
  Obs.Trace.begin_span bg ~tid:(bg_tid t.id) ~cat:"bg" label;
  f bg;
  Obs.Trace.end_span bg ~tid:(bg_tid t.id) ~cat:"bg" label;
  t.last_bg_compacted <-
    t.ctr.upper_compactions + t.ctr.last_compactions > compactions_before;
  t.bg_free_at <- Clock.now bg

(* {2 Flush (normal mode): Fig. 7 — persist the MemTable as an L0 table and
   mirror its entries into the ABI.} *)

let flush t clock =
  t.ctr.flushes <- t.ctr.flushes + 1;
  Obs.Counters.incr c_flushes;
  let entries = Memtable.entries t.memtable in
  (* the operation that triggered this flush has already appended its log
     entry but not yet inserted into the fresh MemTable: the recovery floor
     must stay below that entry *)
  let floor' = max t.mt_floor (Vlog.length t.vlog - 1) in
  with_background t clock ~label:"flush" (fun bg ->
      Fault_point.with_site Fault_point.Flush @@ fun () ->
      Vlog.flush t.vlog bg;
      (* record the structural change first: the manifest append must not
         queue behind this flush's own large writes *)
      (match t.manifest with
      | Some m -> Manifest.record_update m bg
      | None -> ());
      if t.cfg.Config.abi_enabled then
        ensure_abi_room t bg ~incoming:(List.length entries) ~can_dump:false;
      let tbl =
        build_table t bg ~slots:t.cfg.Config.memtable_slots entries
      in
      Obs.Counters.add_int c_flush_bytes (Linear_table.byte_size tbl);
      Levels.add_table t.lv ~level:0 tbl;
      (* mirror the flushed entries into the ABI (Fig. 7) *)
      if t.cfg.Config.abi_enabled then
        List.iter (fun (k, l) -> Flat_table.put_exn t.abi bg k l) entries;
      maybe_compact t bg;
      (* drain GPM dumps once compactions are allowed again *)
      if t.dumps <> [] then last_level_compact t bg;
      (* persist the recovery floors last: everything they stand for —
         the vlog batch, the L0 table, compaction results — is durable by
         now, so a crash tearing this very record in either direction is
         safe (old floor = replay more, new floor = exactly enough) *)
      match t.manifest with
      | Some m ->
        Manifest.set_floors m bg ~shard:t.id ~mt_floor:floor'
          ~absorb_floor:t.absorb_floor
      | None -> ());
  Memtable.reset t.memtable;
  t.mt_floor <- floor'

(* {2 Absorb (Write-Intensive Mode / active GPM): move the MemTable into the
   ABI without touching the LSM structure.} *)

let absorb t clock ~can_dump =
  t.ctr.absorbs <- t.ctr.absorbs + 1;
  Obs.Counters.incr c_absorbs;
  let entries = Memtable.entries t.memtable in
  if not (abi_has_room_for t (List.length entries)) then
    with_background t clock ~label:"abi-room" (fun bg ->
        ensure_abi_room t bg ~incoming:(List.length entries) ~can_dump);
  (* establish the floor only after the room check: a dump or compaction
     in there clears [absorb_floor], and setting it first would leave the
     entries inserted below covered by no floor at all — lost on crash.
     (Found by the crash checker; test_fault keeps the regression.) *)
  if t.absorb_floor = None then t.absorb_floor <- Some t.mt_floor;
  List.iter (fun (k, l) -> Flat_table.put_exn t.abi clock k l) entries;
  Memtable.reset t.memtable;
  t.mt_floor <- max t.mt_floor (Vlog.length t.vlog - 1)

let rec put t clock key loc ~suspend_compactions ~can_dump =
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  match Memtable.put t.memtable clock key loc with
  | `Ok ->
    if attr then
      Obs.Attribution.add Obs.Attribution.Put_index_insert
        (Clock.now clock -. t0)
  | `Full ->
    if attr then
      Obs.Attribution.add Obs.Attribution.Put_index_insert
        (Clock.now clock -. t0);
    if suspend_compactions then absorb t clock ~can_dump
    else flush t clock;
    put t clock key loc ~suspend_compactions ~can_dump

let force_flush t clock =
  if Memtable.count t.memtable > 0 then flush t clock
  else
    with_background t clock ~label:"vlog-flush" (fun bg ->
        Vlog.flush t.vlog bg)

(* {2 Get path.} *)

let resolve stage = function
  | Some loc when Types.is_corrupt loc ->
    (* a marker the index stores is containment already in place; a probe
       that itself failed verification keeps the Hit_corrupt stage *)
    (None, if stage = Hit_corrupt then Hit_corrupt else Hit_quarantined)
  | Some loc when Types.is_tombstone loc -> (None, stage)
  | Some loc -> (Some loc, stage)
  | None -> (None, Miss)

let probe_tables clock tables key =
  let rec go = function
    | [] -> Linear_table.Absent
    | tbl :: rest ->
      (match Linear_table.get tbl clock key with
      | Linear_table.Found loc -> Linear_table.Found loc
      | Linear_table.Absent -> go rest
      | Linear_table.Corrupted ->
        (* the key may live in the damaged block: fail closed rather than
           fall through to an older (stale) version *)
        Linear_table.Corrupted)
  in
  go tables

let probe_last t clock key =
  match Levels.last t.lv with
  | Some tbl ->
    (match Linear_table.get tbl clock key with
    | Linear_table.Found loc -> (Some loc, Hit_last)
    | Linear_table.Absent -> (None, Miss)
    | Linear_table.Corrupted -> (Some Types.corrupt_marker, Hit_corrupt))
  | None -> (None, Miss)

(* Degraded path (ABI still rebuilding after restart): consult every
   persistent table in recency order, like Pmem-LSM-NF would. *)
let degraded_lookup t clock key =
  let candidates =
    List.sort
      (fun a b -> compare (Linear_table.tag b) (Linear_table.tag a))
      (Levels.upper_tables_newest_first t.lv () @ t.dumps)
  in
  match probe_tables clock candidates key with
  | Linear_table.Found loc -> (Some loc, Hit_upper)
  | Linear_table.Corrupted -> (Some Types.corrupt_marker, Hit_corrupt)
  | Linear_table.Absent -> probe_last t clock key

(* Raw index lookup: the stored location, tombstones included.  Each probe
   stage's clock delta is attributed so the harness can decompose the get
   latency (memtable / ABI / persistent-level probes; the log read is
   charged separately by [Vlog.read]). *)
let lookup t clock key =
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  let mt = Memtable.get t.memtable clock key in
  if attr then
    Obs.Attribution.add Obs.Attribution.Get_memtable (Clock.now clock -. t0);
  match mt with
  | Some loc ->
    Obs.Counters.incr c_memtable_hits;
    (Some loc, Hit_memtable)
  | None ->
    if (not t.cfg.Config.abi_enabled) || Clock.now clock < t.abi_ready_at
    then begin
      let t1 = if attr then Clock.now clock else 0.0 in
      let r = degraded_lookup t clock key in
      if attr then
        Obs.Attribution.add Obs.Attribution.Get_level_probe
          (Clock.now clock -. t1);
      r
    end
    else begin
      let t1 = if attr then Clock.now clock else 0.0 in
      let hit = Flat_table.get t.abi clock key in
      if attr then
        Obs.Attribution.add Obs.Attribution.Get_abi (Clock.now clock -. t1);
      match hit with
      | Some loc ->
        Obs.Counters.incr c_abi_hits;
        (Some loc, Hit_abi)
      | None ->
        let t2 = if attr then Clock.now clock else 0.0 in
        match probe_tables clock t.dumps key with
        | Linear_table.Found loc ->
          if attr then
            Obs.Attribution.add Obs.Attribution.Get_level_probe
              (Clock.now clock -. t2);
          (Some loc, Hit_dump)
        | Linear_table.Corrupted ->
          if attr then
            Obs.Attribution.add Obs.Attribution.Get_level_probe
              (Clock.now clock -. t2);
          (Some Types.corrupt_marker, Hit_corrupt)
        | Linear_table.Absent ->
          if attr then
            Obs.Attribution.add Obs.Attribution.Get_level_probe
              (Clock.now clock -. t2);
          (* the last-level window gets its own stage when the run is
             MPH-indexed, so the experiment can read the one-device-read
             path straight off the attribution table *)
          let t3 = if attr then Clock.now clock else 0.0 in
          let mph_last =
            match Levels.last t.lv with
            | Some tbl -> Linear_table.is_mph tbl
            | None -> false
          in
          let r = probe_last t clock key in
          if attr then
            Obs.Attribution.add
              (if mph_last then Obs.Attribution.Get_mph
               else Obs.Attribution.Get_level_probe)
              (Clock.now clock -. t3);
          r
    end

let raw_lookup t clock key = fst (lookup t clock key)

let get t clock key =
  let loc, stage = lookup t clock key in
  resolve stage loc

(* Gradually merge GPM-dumped tables once the burst has subsided: runs on
   the background clock whenever it is idle, without blocking the caller
   (Section 2.4: "the dumped tables will gradually be merged with the last
   level table after the put burst subsides"). *)
let drain_dumps_if_idle t ~now =
  if t.dumps <> [] && t.bg_free_at <= now then begin
    let bg = Clock.create ~at:now () in
    Obs.Trace.begin_span bg ~tid:(bg_tid t.id) ~cat:"bg" "drain-dumps";
    last_level_compact t bg;
    Obs.Trace.end_span bg ~tid:(bg_tid t.id) ~cat:"bg" "drain-dumps";
    t.last_bg_compacted <- true;
    t.bg_free_at <- Clock.now bg
  end

(* {2 Crash and recovery.} *)

(* Crash: MemTable and ABI contents are lost; the log floors come back
   from the manifest's device-backed records — [absorb_floor] in
   particular, because it is exactly what tells recovery how far back to
   scan for the absorbed entries that no longer exist anywhere in DRAM.
   Floors are persisted lazily (at flush), so the recovered values may
   trail the in-DRAM ones; that only means replaying more of the log,
   which is idempotent.  Without a manifest (standalone shard tests) the
   DRAM floors are assumed recoverable, clamped to the persisted log. *)
let lose_volatile t =
  Memtable.reset t.memtable;
  t.abi <- make_abi t.cfg;
  t.bg_free_at <- 0.0;
  (match t.manifest with
  | Some m when Manifest.shards m > t.id ->
    let mt, ab = Manifest.floors m ~shard:t.id in
    t.mt_floor <- min mt (Vlog.persisted t.vlog);
    t.absorb_floor <-
      (match ab with Some f -> Some (min f t.mt_floor) | None -> None)
  | Some _ | None ->
    t.mt_floor <- min t.mt_floor (Vlog.persisted t.vlog);
    (match t.absorb_floor with
    | Some f -> t.absorb_floor <- Some (min f t.mt_floor)
    | None -> ()))

let rec replay t clock key loc =
  match Memtable.put t.memtable clock key loc with
  | `Ok -> ()
  | `Full ->
    if t.absorb_floor = None then t.absorb_floor <- Some t.mt_floor;
    let entries = Memtable.entries t.memtable in
    if not (abi_has_room_for t (List.length entries)) then
      last_level_compact t clock;
    List.iter (fun (k, l) -> Flat_table.put_exn t.abi clock k l) entries;
    Memtable.reset t.memtable;
    replay t clock key loc

(* Rebuild the ABI from the persistent upper tables (background, after
   restart).  Dumped tables participate in version resolution but only keys
   living in upper tables enter the ABI, preserving the pre-crash masking
   relationship between the ABI and the dumps. *)
let schedule_abi_rebuild t ~start_at =
  let bg = Clock.create ~at:(Float.max start_at t.bg_free_at) () in
  Obs.Trace.begin_span bg ~tid:(bg_tid t.id) ~cat:"bg" "abi-rebuild";
  let upper =
    if t.cfg.Config.abi_enabled then Levels.upper_tables_newest_first t.lv ()
    else []
  in
  if upper <> [] then begin
    let in_upper = Hashtbl.create 256 in
    List.iter
      (fun tbl -> Linear_table.iter tbl bg (fun k _ -> Hashtbl.replace in_upper k ()))
      upper;
    let ordered =
      List.sort
        (fun a b -> compare (Linear_table.tag b) (Linear_table.tag a))
        (upper @ t.dumps)
    in
    let seen = Hashtbl.create 256 in
    List.iter
      (fun tbl ->
        Linear_table.iter tbl bg (fun k loc ->
            if Hashtbl.mem in_upper k && not (Hashtbl.mem seen k) then begin
              Hashtbl.add seen k ();
              (* never clobber an entry the recovery replay already put in
                 the ABI: replayed log-tail versions are newer than any
                 table *)
              if Flat_table.get t.abi bg k = None then
                Flat_table.put_exn t.abi bg k loc
            end))
      ordered
  end;
  Obs.Trace.end_span bg ~tid:(bg_tid t.id) ~cat:"bg" "abi-rebuild";
  t.bg_free_at <- Clock.now bg;
  t.abi_ready_at <- Clock.now bg

(* Visit every entry reachable in this shard, newest structure first:
   MemTable, then ABI, then dumps and upper tables by recency, then the
   last level.  The caller deduplicates by key; tombstones are passed
   through so deletions can mask older versions. *)
let iter_newest_first t clock f =
  Flat_table.iter (Memtable.table t.memtable) f;
  if t.cfg.Config.abi_enabled then Flat_table.iter t.abi f;
  let tables =
    List.sort
      (fun a b -> compare (Linear_table.tag b) (Linear_table.tag a))
      (Levels.upper_tables_newest_first t.lv () @ t.dumps)
  in
  List.iter (fun tbl -> Linear_table.iter tbl clock f) tables;
  match Levels.last t.lv with
  | Some tbl -> Linear_table.iter tbl clock f
  | None -> ()

(* {2 Range scan.}

   One ordered stream per shard, sources listed newest first so the merge
   resolves versions exactly as [iter_newest_first] does: MemTable, ABI,
   dumps and upper tables by recency tag, last level.  The unordered DRAM
   and hashed-run sources are snapshotted and sorted up front (charged per
   entry visited plus the sort); only the sorted last level streams lazily
   through its cursor, so a short scan pays for the units it touches.
   Hashed runs are checksum-verified before their slots are trusted; a
   failing run makes its stream — and therefore the merge — fail-stop. *)

module Scan = Kv_common.Scan

let scan_stream t clock ~start =
  let snap iter = Scan.of_iter clock ~start iter in
  let run_source tbl =
    if Linear_table.intact tbl clock then
      snap (fun f -> Linear_table.iter tbl clock f)
    else fun () -> Scan.Error
  in
  let mem = snap (fun f -> Flat_table.iter (Memtable.table t.memtable) f) in
  let abi =
    if t.cfg.Config.abi_enabled then [ snap (fun f -> Flat_table.iter t.abi f) ]
    else []
  in
  let tables =
    List.sort
      (fun a b -> compare (Linear_table.tag b) (Linear_table.tag a))
      (Levels.upper_tables_newest_first t.lv () @ t.dumps)
  in
  let last =
    match Levels.last t.lv with
    | None -> []
    | Some tbl when Linear_table.is_sorted tbl ->
      [ Scan.of_cursor (Linear_table.cursor tbl clock ~start) ]
    | Some tbl -> [ run_source tbl ]
  in
  Scan.merge ((mem :: abi) @ List.map run_source tables @ last)

(* {2 Footprints and invariants.} *)

let dram_footprint t =
  Memtable.footprint_bytes t.memtable
  +. Flat_table.footprint_bytes t.abi
  +.
  match Levels.last t.lv with
  | Some tbl -> float_of_int (Linear_table.dram_bytes tbl)
  | None -> 0.0

let pmem_footprint t =
  float_of_int
    (Levels.pmem_bytes t.lv
    + List.fold_left (fun a tbl -> a + Linear_table.byte_size tbl) 0 t.dumps)

let check_invariants t =
  let cfg = t.cfg in
  let u = Config.upper_levels cfg in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_levels k =
    if k >= u then Ok ()
    else begin
      let len = Levels.level_len t.lv k in
      let cap = cfg.Config.ratio in
      if len > cap then err "level %d has %d tables (max %d)" k len cap
      else check_levels (k + 1)
    end
  in
  match check_levels 0 with
  | Error _ as e -> e
  | Ok () ->
    let lf = Memtable.load_factor_threshold t.memtable in
    if lf < cfg.Config.lf_min -. 1e-9 || lf > cfg.Config.lf_max +. 1e-9 then
      err "memtable load factor %.3f outside [%.2f, %.2f]" lf cfg.Config.lf_min
        cfg.Config.lf_max
    else begin
      (* every key in an upper-level table must be reachable without
         touching the upper levels: via the ABI, or — after a GPM dump
         cleared the ABI — via a dumped table *)
      let scratch = Clock.create () in
      let missing = ref None in
      if t.cfg.Config.abi_enabled then
        List.iter
          (fun tbl ->
            Linear_table.iter tbl scratch (fun k _ ->
                if
                  !missing = None
                  && Flat_table.get t.abi scratch k = None
                  && probe_tables scratch t.dumps k = Linear_table.Absent
                then missing := Some k))
          (Levels.upper_tables_newest_first t.lv ());
      match !missing with
      | Some k -> err "upper-level key %Ld missing from ABI and dumps" k
      | None -> Ok ()
    end
