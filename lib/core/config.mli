(** ChameleonDB configuration (Table 1 of the paper).

    The paper's deployment uses 16384 shards with 8 KB MemTables (128 MB
    total), 4 levels, a between-level ratio of 4, load factors randomized in
    [0.65, 0.85] and a 512 KB-per-shard ABI (8 GB total).  {!default} keeps
    every ratio but scales the shard count down so experiments with millions
    (rather than a billion) of keys exercise the same level dynamics. *)

type compaction_scheme =
  | Direct         (** multi-level Direct Compaction (Section 2.1, Fig. 5b) *)
  | Level_by_level (** classic two-adjacent-levels compaction (ablation) *)

type index_kind =
  | Probe (** sorted last-level run, fence search + slot probe (default) *)
  | Mph
      (** CompassDB-style minimal-perfect-hash last-level run: gets
          evaluate the MPH in DRAM and issue exactly one device read;
          construction rides on the merge (see [Kv_common.Mph]) *)

type t = {
  shards : int;           (** number of index shards *)
  memtable_slots : int;   (** slots per MemTable (16 B each; 512 = 8 KB) *)
  levels : int;           (** LSM levels including the last level *)
  ratio : int;            (** between-level ratio r *)
  lf_min : float;         (** randomized MemTable load-factor band, low *)
  lf_max : float;         (** randomized MemTable load-factor band, high *)
  abi_slots_factor : int; (** ABI slots = factor x memtable_slots *)
  abi_load_factor : float;
  last_level_load_factor : float; (** target fill of the last-level table *)
  compaction : compaction_scheme;
  write_intensive : bool; (** Write-Intensive Mode (Section 2.3) *)
  gpm_enabled : bool;     (** dynamic Get-Protect Mode (Section 2.4) *)
  gpm_threshold_ns : float; (** tail-latency trigger (2000 ns in Sec. 3.6) *)
  gpm_max_dumps : int;    (** ABIs dumpable as un-merged levels (default 1) *)
  vlog_batch_bytes : int; (** storage-log batch size (4 KB, Section 2.5) *)
  materialize_values : bool;
      (** retain value payloads so {!Store.read} can return them (default
          false: accounting-only log, memory-bounded for large benchmark
          sweeps) *)
  abi_enabled : bool;
      (** ablation switch: with the ABI disabled, gets walk the levels in
          the Pmem and last-level compactions read the upper tables from
          the device — i.e. the store degenerates to Pmem-LSM-NF *)
  cache_bytes : int;
      (** DRAM read-cache capacity in bytes, split across per-shard
          segments (0 = no cache, the default; the read path is then
          byte-for-byte the pre-cache one) *)
  cache_negative : bool;
      (** also cache misses (negative caching), so repeated gets of absent
          keys are answered from DRAM (default true; only meaningful with
          [cache_bytes > 0]) *)
  gc_max_entries : int;
      (** log entries one {!Store.gc} pass scans by default (100k) *)
  scrub_budget_bytes : int;
      (** artifact bytes one {!Store.scrub} pass verifies by default
          (1 MiB); the scrubber stops scanning once the budget is spent *)
  index_kind : index_kind;
      (** last-level index structure (default [Probe]; [Mph] trades merge-
          time construction for one-device-read gets) *)
  seed : int;             (** randomized-load-factor seed *)
}

val default : t
(** 256 shards, 512-slot MemTables, 4 levels, r = 4, ABI factor 64 —
    the paper's ratios at 1/64 scale. *)

val scaled : ?shards:int -> ?memtable_slots:int -> t -> t
(** Convenience resizing that keeps everything else. *)

val upper_levels : t -> int
(** Levels above the last one ([levels - 1]). *)

val max_upper_entries : t -> int
(** Upper-bound on entries resident in the upper levels of one shard when
    the last-level compaction triggers: [r^(levels-1) x memtable_slots]
    slot-equivalents.  The ABI must be able to hold this. *)

val validate : t -> (unit, string) result
(** Check structural constraints (ABI big enough, ratios sane). *)
