(** One ChameleonDB shard: MemTable + multi-level persistent index + ABI.

    The shard implements the paper's data path:

    - {b put}: into the MemTable; when full, either {e flush} (persist as an
      L0 table, mirror the entries into the ABI, then compact if needed) or
      {e absorb} directly into the ABI when Write-Intensive Mode or an
      active Get-Protect Mode suspends LSM maintenance;
    - {b get}: MemTable -> ABI -> GPM-dumped tables -> last level.  Upper
      Pmem tables are consulted only while the ABI is still being rebuilt
      after a restart (degraded window), exactly as in Section 3.3;
    - {b compaction}: size-tiered in the upper levels, leveled into the last
      level, merged in one Direct Compaction step fed from the ABI (Fig. 8),
      or level-by-level for the Fig. 15 ablation.

    Flush/compaction work is charged to a per-shard background clock; a put
    that finds the MemTable full while background work is still running
    stalls until it completes — the source of put tail latency. *)

type t

type hit_stage =
  | Hit_memtable
  | Hit_abi
  | Hit_dump
  | Hit_upper
  | Hit_last
  | Miss
  | Hit_corrupt
      (** a table block the probe needed failed verification — fail
          closed; the shard needs scrub attention *)
  | Hit_quarantined
      (** the newest version carries the quarantine marker: containment
          already in place, the read answers an explicit error *)

type counters = {
  mutable flushes : int;
  mutable upper_compactions : int;
  mutable last_compactions : int;
  mutable abi_dumps : int;
  mutable absorbs : int;
  mutable stall_ns : float; (** put time spent waiting on background work *)
}

val create :
  ?manifest:Manifest.t -> cfg:Config.t -> id:int -> Pmem_sim.Device.t ->
  Kv_common.Vlog.t -> t
(** When [manifest] is given, every flush records a structural-change entry
    on the background clock. *)

val put :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc ->
  suspend_compactions:bool -> can_dump:bool -> unit
(** Insert an index entry (the value is already in the log at [loc]).
    [suspend_compactions] is true under Write-Intensive Mode or an active
    Get-Protect Mode: the MemTable is absorbed into the ABI instead of
    being flushed.  [can_dump] is true only under an active GPM: a full ABI
    is then dumped as an un-merged Pmem table (Fig. 9) rather than merged
    into the last level (the Write-Intensive Mode behaviour). *)

val get :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  Kv_common.Types.loc option * hit_stage
(** [None] when absent or deleted; the stage says which structure answered. *)

val raw_lookup :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc option
(** The stored location without tombstone filtering — the GC's liveness
    test ([Some loc] with [loc] equal to the scanned position means the log
    entry is the key's current version). *)

val lookup :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  Kv_common.Types.loc option * hit_stage
(** {!raw_lookup} plus the answering stage.  [Hit_corrupt] with
    [Some corrupt_marker] means a table block failed verification mid-probe
    (liveness unknowable); a stored quarantine marker comes back as
    [Some corrupt_marker] with the structure's own stage (only {!get}'s
    [resolve] maps it to [Hit_quarantined]). *)

val owns : t -> Kv_common.Types.key -> bool
(** Does this shard's hash partition contain [key]? *)

val floors : t -> int * int option
(** Current in-DRAM [(mt_floor, absorb_floor)] — what the manifest record
    should say; the scrubber repairs damaged records from these. *)

val persistent_tables : t -> Kv_common.Linear_table.t list
(** Every persistent run the shard holds (dumps, upper levels, last), for
    whole-run scrub verification. *)

val set_notify_quarantine : t -> (Kv_common.Types.key -> unit) -> unit
(** Hook invoked for every key the shard quarantines internally (during a
    value-log rebuild); the store uses it to invalidate cached entries and
    count quarantines. *)

val rebuild_from_vlog : t -> Pmem_sim.Clock.t -> unit
(** Repair: drop every index structure and rebuild the shard from the
    value log (all live entries sit above the log head, so the log is a
    complete redundant copy of the index).  Corrupt log records that are
    still a key's newest version are quarantined to
    [Types.corrupt_marker].  Runs under the [Scrub] fault site. *)

val force_flush : t -> Pmem_sim.Clock.t -> unit
(** Flush the MemTable regardless of load factor (shutdown / checkpoint). *)

val drain_dumps_if_idle : t -> now:float -> unit
(** If GPM-dumped ABI tables exist and the background thread is idle, merge
    them into the last level (called by the store once the Get-Protect Mode
    deactivates). *)

val persisted_mark : t -> int
(** Log index below which every entry of this shard is recoverable from
    persistent index structures alone. *)

val replay : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc -> unit
(** Recovery path: reinsert a log entry without triggering flushes — the
    MemTable overflows into the ABI as in absorb mode. *)

val lose_volatile : t -> unit
(** Crash: clear MemTable and ABI state (persistent tables survive). *)

val schedule_abi_rebuild : t -> start_at:float -> unit
(** After recovery: rebuild the ABI from the upper tables on the background
    clock; gets take the degraded multi-level path until it finishes. *)

val abi_ready_at : t -> float
val background_free_at : t -> float
val counters : t -> counters
val levels : t -> Levels.t
val abi_count : t -> int
val memtable_count : t -> int
val dump_count : t -> int

val iter_newest_first :
  t -> Pmem_sim.Clock.t ->
  (Kv_common.Types.key -> Kv_common.Types.loc -> unit) -> unit
(** Visit every reachable entry, newest structure first (MemTable, ABI,
    dumps/upper tables by recency, last level).  The caller deduplicates by
    key; tombstones are passed through. *)

val scan_stream :
  t -> Pmem_sim.Clock.t -> start:Kv_common.Types.key -> Kv_common.Scan.stream
(** Ordered merge stream over this shard from the first key [>= start]:
    newest version per key, tombstones and markers still present (the
    store's scan filters them after the cross-shard merge).  Unordered
    sources (MemTable, ABI, hashed runs) are snapshotted and sorted up
    front; the sorted last level streams lazily through its cursor.  A run
    that fails verification makes the stream fail-stop with
    [Scan.Error]. *)

val dram_footprint : t -> float
val pmem_footprint : t -> float

val check_invariants : t -> (unit, string) result
(** Structural invariants for tests: level occupancies within bounds, ABI
    covers the upper-level keys once ready, load factors within band. *)
