module Gpm = struct
  type t = {
    enabled : bool;
    threshold_ns : float;
    window : float array;
    mutable filled : int;
    mutable idx : int;
    mutable since_eval : int;
    mutable is_active : bool;
    mutable nactivations : int;
    mutable p99 : float;
  }

  let window_size = 512
  let eval_every = 64

  (* hysteresis: deactivate only once the tail has clearly subsided, so the
     mode does not flap on/off within one burst *)
  let release_fraction = 0.6

  let create ~cfg =
    { enabled = cfg.Config.gpm_enabled;
      threshold_ns = cfg.Config.gpm_threshold_ns;
      window = Array.make window_size 0.0;
      filled = 0;
      idx = 0;
      since_eval = 0;
      is_active = false;
      nactivations = 0;
      p99 = 0.0 }

  let evaluate t =
    let n = t.filled in
    if n >= 64 then begin
      let sample = Array.sub t.window 0 n in
      Array.sort compare sample;
      let i = min (n - 1) (int_of_float (0.99 *. float_of_int n)) in
      t.p99 <- sample.(i);
      if t.p99 > t.threshold_ns then begin
        if not t.is_active then begin
          t.is_active <- true;
          t.nactivations <- t.nactivations + 1
        end
      end
      else if t.p99 < release_fraction *. t.threshold_ns then
        t.is_active <- false
    end

  let record_get t lat =
    if t.enabled then begin
      t.window.(t.idx) <- lat;
      t.idx <- (t.idx + 1) mod window_size;
      if t.filled < window_size then t.filled <- t.filled + 1;
      t.since_eval <- t.since_eval + 1;
      if t.since_eval >= eval_every then begin
        t.since_eval <- 0;
        evaluate t
      end
    end

  let active t = t.enabled && t.is_active
  let activations t = t.nactivations
  let current_p99 t = t.p99
end

(* Mode state exported to layers above the store.  The serving layer's
   admission controller keys its write budget off these without depending
   on the store's concrete type: tighten puts while the store is protecting
   reads (GPM active), relax them when it is configured to absorb writes
   (Write-Intensive Mode). *)
module Signals = struct
  type t = {
    write_intensive : bool;
    get_protect_active : unit -> bool;
    get_p99_ns : unit -> float;
    shard_degraded : Kv_common.Types.key -> bool;
    degraded_fraction : unit -> float;
  }

  let none =
    { write_intensive = false;
      get_protect_active = (fun () -> false);
      get_p99_ns = (fun () -> 0.0);
      shard_degraded = (fun _ -> false);
      degraded_fraction = (fun () -> 0.0) }

  let of_gpm ~write_intensive gpm =
    { none with
      write_intensive;
      get_protect_active = (fun () -> Gpm.active gpm);
      get_p99_ns = (fun () -> Gpm.current_p99 gpm) }
end
