(** ChameleonDB: the public key-value store API.

    A store is a set of hash-partitioned shards over a shared value log on
    one simulated Optane device.  All operations charge simulated time to
    the caller's clock; the experiment harness runs many clocks against one
    store to model threads.

    {[
      let dev = Pmem_sim.Device.create Pmem_sim.Cost_model.optane in
      let db = Store.create ~dev () in
      let clock = Pmem_sim.Clock.create () in
      Store.write db clock 42L (Kv_common.Store_intf.Sized 8);
      assert ((Store.read db clock 42L).Kv_common.Store_intf.loc <> None)
    ]} *)

type t

val create : ?cfg:Config.t -> ?dev:Pmem_sim.Device.t -> unit -> t
(** Build a store.  Raises [Invalid_argument] if the configuration fails
    {!Config.validate}. *)

val cfg : t -> Config.t

val shards : t -> Shard.t array
(** Read-only view of the shards, for tooling ([Report]) and tests. *)

val device : t -> Pmem_sim.Device.t
val vlog : t -> Kv_common.Vlog.t

val manifest : t -> Manifest.t
(** The structural-change manifest (exposed for the media-fault sweep and
    tests, which corrupt its floor records). *)

val write :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  Kv_common.Store_intf.value_spec -> unit
(** Append the value to the storage log, invalidate any cached entry, and
    index the key.  [Sized] charges for an accounting-only payload;
    [Payload] carries real bytes (retained when
    {!Config.t.materialize_values} is set — identical device traffic
    either way).  May trigger flushes and compactions whose cost lands on
    the shard's background clock; the write stalls only when it must wait
    for previous background work.  Raises [Invalid_argument] on a negative
    [Sized] length. *)

val read :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  Kv_common.Store_intf.read_result
(** The get path: DRAM read-cache probe first (when
    {!Config.t.cache_bytes} > 0), then index lookup plus a log read of the
    value on a hit.  The result carries the log location ([None] for
    absent or deleted keys), the answering structure, and the payload when
    the store materializes values.  Feeds the Get-Protect Mode latency
    monitor.  With the cache disabled the path is byte-for-byte the
    pre-cache one. *)

val scan :
  t -> Pmem_sim.Clock.t -> start:Kv_common.Types.key -> limit:int ->
  (Kv_common.Types.key * Kv_common.Types.loc) list
(** Ordered range scan: up to [limit] live entries with key [>= start] in
    ascending {!Kv_common.Types.key_compare} order, newest version of each
    key, tombstones and quarantined keys suppressed.  Built as a k-way
    merge of per-shard streams (MemTable/ABI/run snapshots plus a lazy
    cursor over the sorted last level).  A corrupt run fail-stops the
    scan at the damage and degrades the owning shard.  Raises
    [Invalid_argument] on a negative limit. *)

val delete : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
(** Tombstone write: a header-only log entry plus an index tombstone. *)

val flush_all : t -> Pmem_sim.Clock.t -> unit
(** Flush every MemTable and the log batch (clean checkpoint). *)

val wait_background : t -> Pmem_sim.Clock.t -> unit
(** Advance the clock past all outstanding background compaction work. *)

val crash : t -> unit
(** Power failure: unpersisted device writes revert, the log's open batch
    is dropped, MemTables and ABIs are lost. *)

val recover : t -> Pmem_sim.Clock.t -> float
(** Replay the persisted log tail to rebuild MemTables (and absorbed ABIs);
    returns the simulated restart time (ns).  ABI rebuild from the upper
    tables then proceeds in the background; gets run degraded (multi-level)
    until it completes, as in Section 3.3. *)

val gpm_active : t -> bool
val gpm : t -> Modes.Gpm.t

val signals : t -> Modes.Signals.t
(** Live mode signals for the serving layer's admission controller,
    including per-shard health probes. *)

(** {1 Integrity}

    Every durable artifact (log records, table runs, manifest floors)
    carries a CRC32C verified on read, replay and rewrite.  Detection
    marks the owning shard [Degraded]; the scrubber repairs (rebuilding
    damaged runs from the value log) or contains (quarantining keys whose
    newest log record is lost — reads answer an explicit [Corrupt], never
    wrong data and never a silent miss). *)

val scrub :
  t -> Pmem_sim.Clock.t -> budget_bytes:int ->
  Kv_common.Store_intf.scrub_report
(** One background integrity pass over up to [budget_bytes] of durable
    artifacts (the budget is a target: the pass stops after the artifact
    that crosses it, and the overshoot is carried as a deficit into the
    next pass so long-run scrub bandwidth converges to [budget_bytes] per
    pass).  Verifies manifest floors and table runs for as
    many shards as half the budget covers — round-robin from a persistent
    rotor, so successive passes cover every shard even when one shard's
    runs outweigh the budget — then spends the rest on a cursor-tracked
    slice of the value log; rebuilds shards with damaged runs from the
    log; quarantines unrepairable keys.  Raises [Invalid_argument] on a
    non-positive budget. *)

val quarantine : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
(** Mark the key's index entry with the corrupt marker and append a
    durable quarantine record: subsequent reads answer [Corrupt] until a
    fresh write supersedes the key.  (Exposed for tests; normally driven
    by {!scrub} and GC.) *)

val health : t -> Kv_common.Store_intf.health
(** Worst health across the shards. *)

val shard_degraded : t -> Kv_common.Types.key -> bool
val degraded_fraction : t -> float

(** {1 Value-log garbage collection}

    An extension beyond the paper (which leaves log GC out of scope): a GC
    pass scans the oldest log prefix, copies still-live entries to the tail
    through the ordinary put path (crash-consistent by construction) and
    reclaims the prefix. *)

type gc_stats = {
  gc_scanned : int;           (** entries examined *)
  gc_live : int;              (** copied to the tail *)
  gc_dead : int;              (** superseded/deleted, dropped *)
  gc_reclaimed_bytes : int;   (** log bytes reclaimed *)
}

val gc : t -> Pmem_sim.Clock.t -> ?max_entries:int -> unit -> gc_stats
(** Run one GC pass over up to [max_entries] (default
    {!Config.t.gc_max_entries}) of the oldest live log prefix.  Live
    entries a pass relocates keep any cached read-cache entry pointing at
    the key's current location. *)

val cache_stats : t -> (int * int) option
(** [(used_bytes, capacity_bytes)] of the DRAM read cache, or [None] when
    the cache is disabled. *)

val iter :
  t -> Pmem_sim.Clock.t ->
  (Kv_common.Types.key -> Kv_common.Types.loc -> unit) -> unit
(** Full scan: apply [f] to every live key exactly once, with its current
    log location (deleted keys are skipped).  Order is unspecified. *)

val dram_footprint : t -> float
val pmem_footprint : t -> float

type totals = {
  flushes : int;
  upper_compactions : int;
  last_compactions : int;
  abi_dumps : int;
  absorbs : int;
  stall_ns : float;
  manifest_updates : int;
}

val totals : t -> totals
(** Aggregated shard counters. *)

val check_invariants : t -> (unit, string) result

val store : ?name:string -> t -> Kv_common.Store_intf.store
(** First-class store for the harness and the fault checker.
    [maintenance] runs one {!gc} pass; [fault_points] reflects the
    configuration (compaction flavour, GPM). *)
