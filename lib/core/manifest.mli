(** Persistent root metadata.

    The manifest records, per shard, which persistent tables exist and the
    log watermarks.  Table existence remains simulated (the OCaml-side
    table handles {e are} the recovered metadata, charged via
    {!record_update}), but the {e recovery floors} — the log watermarks
    that bound how much of the value log a shard must replay after a crash
    — are real device-backed records: 24 B per shard (two watermarks plus
    a CRC32C binding them to the shard index), written and persisted under
    the [Manifest_update] fault site, re-read by {!floors} during crash
    recovery.  A crash between a structural change and its floor persist
    leaves a stale (smaller) floor, which is safe: replaying more of the
    log than necessary is idempotent.  The same argument makes corruption
    containable: a floor record that fails verification is treated as
    [(0, None)] — replay from the origin — rather than trusted. *)

type t

val create : ?shards:int -> Pmem_sim.Device.t -> t
(** Allocates and zero-persists the per-shard floor region when
    [shards > 0] (default 0: accounting-only manifest, no floor region). *)

val record_update : t -> Pmem_sim.Clock.t -> unit
(** One structural change: a small appended persist (64 B), charged under
    the [Manifest_update] fault site. *)

val set_floors :
  t -> Pmem_sim.Clock.t -> shard:int -> mt_floor:int ->
  absorb_floor:int option -> unit
(** Persist shard's recovery floors (a checksummed 24 B in-place write +
    persist, [Manifest_update] site).  Call only after the state the
    floors stand for is itself durable. *)

val floors : t -> shard:int -> int * int option
(** [(mt_floor, absorb_floor)] as last persisted (uncharged read; recovery
    charges its device traffic elsewhere).  A record that fails its
    checksum — or sits on poisoned media — answers the conservative
    [(0, None)]: replay from the log origin, never trust damaged floors. *)

val floor_intact : t -> shard:int -> bool
(** Uncharged: does the shard's floor record verify against the media? *)

val floor_range : t -> shard:int -> int * int
(** [(device offset, length)] of a shard's floor record — the media-fault
    injector corrupts through this. *)

val repair_floor :
  t -> Pmem_sim.Clock.t -> shard:int -> mt_floor:int ->
  absorb_floor:int option -> bool
(** Scrub path: if the shard's floor record fails verification, clear any
    poison and rewrite it from the caller's in-DRAM floors; returns
    whether a repair happened. *)

val shards : t -> int
val updates : t -> int
val footprint_bytes : t -> float
