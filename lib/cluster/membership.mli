(** Node failure and rejoin.

    {!kill} crashes a node's store through the real [Fault.Node] crash
    model (torn tail, lost DRAM); the node stays a ring member, so
    surviving replicas keep serving its vshards at quorum.
    {!start_rejoin} recovers the store and opens a chunked catch-up that
    streams stamped log entries above the node's durable floor from each
    live peer; {!step} drains it incrementally so catch-up competes with
    foreground traffic on both service loops.

    Catch-up survives its donors: a donor that crashes mid-stream leaves
    the plan (surviving owners cover its entries when the write quorum
    spans the replica set), a donor partitioned away from the joiner is
    swapped for a reachable pending peer, and the new donor's log is
    re-streamed from the durable floor — idempotent, thanks to the stamp
    filter and the joiner's stale-stamp skip.  With every pending peer
    unreachable the catch-up stalls and retries until the partition
    heals. *)

val kill : ?tear:bool -> seed:int -> Router.t -> int -> unit

type catchup

val node : catchup -> int
val floor : catchup -> int
val scanned : catchup -> int

val shipped : catchup -> int
(** Entries streamed from peers (each pays a real log read). *)

val applied : catchup -> int
(** Shipped entries the joiner actually applied (the rest were already
    superseded by writes it took while [Syncing]). *)

val switches : catchup -> int
(** Donors abandoned mid-stream (crashed or partitioned away); each
    switch restarts the next donor's log from the durable floor. *)

val stalls : catchup -> int
(** Ticks that found no reachable pending donor (waiting out a
    partition). *)

val restart_ns : catchup -> float

val start_rejoin : Router.t -> now:float -> int -> catchup
(** Recover the node at simulated time [now] (restart charged on its
    service loop) and plan catch-up from every live peer; the node is
    [Syncing] until {!step} reports completion. *)

val step : Router.t -> catchup -> now:float -> chunk:int -> bool
(** Stream up to [chunk] owned entries from the current peer at time
    [now].  Returns [true] once all peers are drained — the joiner is
    then [Up] and readable again. *)
