(* Node failure and rejoin.

   A kill puts the node's store through the real crash model — torn tail
   writes, dropped DRAM state — at node granularity ([Fault.Node]).  The
   node stays a ring member while down: its vshards keep their owner
   lists, writes continue at the surviving replicas (acked as long as the
   quorum holds), and reads skip it.

   Rejoin recovers the store (charged restart time on the node's service
   loop), computes the durable floor (the highest stamp surviving in the
   node's own log) and then catches up by streaming stamped entries above
   that floor from each live peer's value log — chunked, so catch-up
   traffic interleaves with foreground service on both the joiner's and
   the sources' clocks and shows up in the latency timeline.  The joiner
   serves writes while [Syncing] (so it does not fall further behind) and
   is readable again only once every peer has been drained.

   Donors are not trusted to survive the stream.  Each chunk re-validates
   the current donor: a donor that crashed leaves the plan (its log
   cannot be read, and the surviving owners cover its entries when the
   write quorum spans the replica set); a donor that is merely
   partitioned away from the joiner ({!Fault.Netem.reachable} in either
   direction) is abandoned for a reachable pending peer and retried
   later.  Either way the joiner re-selects and RESTARTS the new donor's
   log from the durable floor — the stamp filter plus the joiner-side
   stale-stamp skip make re-streaming idempotent, so a donor switch
   costs duplicate shipping work, never duplicate application.  When no
   pending peer is reachable the catch-up stalls (counted) and the tick
   retries until the partition heals. *)

module Clock = Pmem_sim.Clock
module Store_intf = Kv_common.Store_intf
module Vlog = Kv_common.Vlog
module Netem = Fault.Netem

let kill ?tear ~seed router nid = Node.kill ?tear ~seed (Router.node router nid)

type catchup = {
  c_node : int;
  c_floor : int;
  mutable c_pending : int list; (* source peers not yet drained *)
  mutable c_current : int option; (* donor the cursor points into *)
  mutable c_loc : int; (* log cursor into the current donor *)
  mutable c_flushed : bool; (* current donor's open batch pushed out? *)
  mutable c_scanned : int; (* peer log entries considered *)
  mutable c_shipped : int; (* entries streamed over the network *)
  mutable c_applied : int; (* entries the joiner actually applied *)
  mutable c_switches : int; (* donors abandoned mid-stream *)
  mutable c_stalls : int; (* ticks with no reachable donor *)
  mutable c_restart_ns : float;
}

let node cu = cu.c_node
let floor cu = cu.c_floor
let scanned cu = cu.c_scanned
let shipped cu = cu.c_shipped
let applied cu = cu.c_applied
let switches cu = cu.c_switches
let stalls cu = cu.c_stalls
let restart_ns cu = cu.c_restart_ns

let start_rejoin router ~now nid =
  let n = Router.node router nid in
  ignore (Clock.wait_until (Node.rx n) now);
  let dt = Node.rejoin n (Node.rx n) in
  let peers =
    List.filter
      (fun p -> p <> nid && Node.status (Router.node router p) = Node.Up)
      (Ring.members (Router.ring router))
  in
  { c_node = nid;
    c_floor = Node.durable_floor n;
    c_pending = peers;
    c_current = None;
    c_loc = 0;
    c_flushed = false;
    c_scanned = 0;
    c_shipped = 0;
    c_applied = 0;
    c_switches = 0;
    c_stalls = 0;
    c_restart_ns = dt }

(* abandon the current donor: the next one streams from its log head
   again (floor-filtered), so nothing the joiner needs is lost *)
let switch cu =
  (match cu.c_current with
  | Some _ -> cu.c_switches <- cu.c_switches + 1
  | None -> ());
  cu.c_current <- None;
  cu.c_loc <- 0;
  cu.c_flushed <- false

let finish router cu =
  Node.set_status (Router.node router cu.c_node) Node.Up;
  (* the joiner was timing out while down — let reads come back to it
     now instead of waiting out the accrual decay *)
  Detector.clear (Router.detector router) ~node:cu.c_node;
  true

(* Stream up to [chunk] entries from the current donor.  The donor
   filters by stamp and ownership against its DRAM metadata (free), then
   pays a real log read per shipped entry; the joiner pays the real write
   path.  Both charges land on the respective service loops, competing
   with foreground requests.  Returns [true] when catch-up is complete
   (the joiner flips to [Up]). *)
let step router cu ~now ~chunk =
  let alive p = Node.status (Router.node router p) = Node.Up in
  (* crashed peers leave the plan *)
  if List.exists (fun p -> not (alive p)) cu.c_pending then begin
    cu.c_pending <- List.filter alive cu.c_pending;
    match cu.c_current with
    | Some d when not (alive d) -> switch cu
    | _ -> ()
  end;
  if cu.c_pending = [] then finish router cu
  else begin
    let reachable p =
      match Router.netem router with
      | None -> true
      | Some nm ->
          Netem.reachable nm ~now ~src:(Netem.Node p)
            ~dst:(Netem.Node cu.c_node)
          && Netem.reachable nm ~now ~src:(Netem.Node cu.c_node)
               ~dst:(Netem.Node p)
    in
    (match cu.c_current with
    | Some d when reachable d -> ()
    | Some _ -> switch cu (* donor partitioned away: pick another *)
    | None -> ());
    (match cu.c_current with
    | None -> cu.c_current <- List.find_opt reachable cu.c_pending
    | Some _ -> ());
    match cu.c_current with
    | None ->
        (* every pending peer is unreachable: wait out the partition *)
        cu.c_stalls <- cu.c_stalls + 1;
        false
    | Some peer ->
        let p = Router.node router peer
        and n = Router.node router cu.c_node in
        let prx = Node.rx p and nrx = Node.rx n in
        ignore (Clock.wait_until prx now);
        ignore (Clock.wait_until nrx now);
        let vlog = Store_intf.vlog (Node.store p) in
        if not cu.c_flushed then begin
          Vlog.flush vlog prx;
          cu.c_flushed <- true
        end;
        let ring = Router.ring router in
        let budget = ref chunk in
        let shipped = ref [] in
        while !budget > 0 && cu.c_loc < Vlog.persisted vlog do
          let loc = cu.c_loc in
          cu.c_loc <- cu.c_loc + 1;
          cu.c_scanned <- cu.c_scanned + 1;
          let stamp = Node.stamp_at p loc in
          if
            stamp > cu.c_floor
            && List.mem cu.c_node
                 (Ring.owners_of_key ring (Vlog.key_at vlog loc))
          then begin
            decr budget;
            match Vlog.read vlog prx loc with
            | Error `Corrupt -> () (* nothing trustworthy to ship *)
            | Ok (key, vlen) ->
                cu.c_shipped <- cu.c_shipped + 1;
                let action =
                  if vlen < 0 then Node.Delete else Node.Put vlen
                in
                shipped := (stamp, key, action) :: !shipped
          end
        done;
        (* the chunk lands on the joiner as one grouped apply: fresh puts
           share a single write_batch group commit on the joiner's loop *)
        cu.c_applied <-
          cu.c_applied + Node.apply_batch n nrx (List.rev !shipped);
        if cu.c_loc >= Vlog.persisted vlog then begin
          cu.c_pending <- List.filter (( <> ) peer) cu.c_pending;
          cu.c_current <- None;
          cu.c_loc <- 0;
          cu.c_flushed <- false
        end;
        if cu.c_pending = [] then finish router cu else false
  end
