(* Node failure and rejoin.

   A kill puts the node's store through the real crash model — torn tail
   writes, dropped DRAM state — at node granularity ([Fault.Node]).  The
   node stays a ring member while down: its vshards keep their owner
   lists, writes continue at the surviving replicas (acked as long as the
   quorum holds), and reads skip it.

   Rejoin recovers the store (charged restart time on the node's service
   loop), computes the durable floor (the highest stamp surviving in the
   node's own log) and then catches up by streaming stamped entries above
   that floor from each live peer's value log — chunked, so catch-up
   traffic interleaves with foreground service on both the joiner's and
   the sources' clocks and shows up in the latency timeline.  The joiner
   serves writes while [Syncing] (so it does not fall further behind) and
   is readable again only once every peer has been drained. *)

module Clock = Pmem_sim.Clock
module Store_intf = Kv_common.Store_intf
module Vlog = Kv_common.Vlog

let kill ?tear ~seed router nid = Node.kill ?tear ~seed (Router.node router nid)

type catchup = {
  c_node : int;
  c_floor : int;
  mutable c_peers : int list; (* remaining source peers *)
  mutable c_loc : int; (* log cursor into the current peer *)
  mutable c_flushed : bool; (* current peer's open batch pushed out? *)
  mutable c_scanned : int; (* peer log entries considered *)
  mutable c_shipped : int; (* entries streamed over the network *)
  mutable c_applied : int; (* entries the joiner actually applied *)
  mutable c_restart_ns : float;
}

let node cu = cu.c_node
let floor cu = cu.c_floor
let scanned cu = cu.c_scanned
let shipped cu = cu.c_shipped
let applied cu = cu.c_applied
let restart_ns cu = cu.c_restart_ns

let start_rejoin router ~now nid =
  let n = Router.node router nid in
  ignore (Clock.wait_until (Node.rx n) now);
  let dt = Node.rejoin n (Node.rx n) in
  let peers =
    List.filter
      (fun p -> p <> nid && Node.status (Router.node router p) = Node.Up)
      (Ring.members (Router.ring router))
  in
  { c_node = nid;
    c_floor = Node.durable_floor n;
    c_peers = peers;
    c_loc = 0;
    c_flushed = false;
    c_scanned = 0;
    c_shipped = 0;
    c_applied = 0;
    c_restart_ns = dt }

(* Stream up to [chunk] entries from the current peer.  The peer filters
   by stamp and ownership against its DRAM metadata (free), then pays a
   real log read per shipped entry; the joiner pays the real write path.
   Both charges land on the respective service loops, competing with
   foreground requests.  Returns [true] when catch-up is complete (the
   joiner flips to [Up]). *)
let step router cu ~now ~chunk =
  match cu.c_peers with
  | [] ->
      Node.set_status (Router.node router cu.c_node) Node.Up;
      true
  | peer :: rest ->
      let p = Router.node router peer and n = Router.node router cu.c_node in
      let prx = Node.rx p and nrx = Node.rx n in
      ignore (Clock.wait_until prx now);
      ignore (Clock.wait_until nrx now);
      let vlog = Store_intf.vlog (Node.store p) in
      if not cu.c_flushed then begin
        Vlog.flush vlog prx;
        cu.c_flushed <- true
      end;
      let ring = Router.ring router in
      let budget = ref chunk in
      let shipped = ref [] in
      while !budget > 0 && cu.c_loc < Vlog.persisted vlog do
        let loc = cu.c_loc in
        cu.c_loc <- cu.c_loc + 1;
        cu.c_scanned <- cu.c_scanned + 1;
        let stamp = Node.stamp_at p loc in
        if
          stamp > cu.c_floor
          && List.mem cu.c_node (Ring.owners_of_key ring (Vlog.key_at vlog loc))
        then begin
          decr budget;
          match Vlog.read vlog prx loc with
          | Error `Corrupt -> () (* nothing trustworthy to ship *)
          | Ok (key, vlen) ->
              cu.c_shipped <- cu.c_shipped + 1;
              let action = if vlen < 0 then Node.Delete else Node.Put vlen in
              shipped := (stamp, key, action) :: !shipped
        end
      done;
      (* the chunk lands on the joiner as one grouped apply: fresh puts
         share a single write_batch group commit on the joiner's loop *)
      cu.c_applied <-
        cu.c_applied + Node.apply_batch n nrx (List.rev !shipped);
      if cu.c_loc >= Vlog.persisted vlog then begin
        cu.c_peers <- rest;
        cu.c_loc <- 0;
        cu.c_flushed <- false
      end;
      (match cu.c_peers with
      | [] ->
          Node.set_status n Node.Up;
          true
      | _ -> false)
