(** Discrete-event cluster runs: open- and/or closed-loop load through
    the {!Router} merged with scripted kill / rejoin / migration events
    under one virtual time, plus the end-of-run replica-divergence audit
    against a DRAM oracle of quorum-acked mutations. *)

type event =
  | Kill of int
  | Rejoin of int
  | Migrate of { vshard : int; from_ : int; to_ : int }

type timed = { at : float; ev : event }

type window = {
  w_start : float;
  mutable w_gets : int;
  mutable w_puts : int;
  mutable w_errs : int;
  w_get_h : Metrics.Histogram.t;
  w_put_h : Metrics.Histogram.t;
}

type result = {
  r_reqs : int;            (** frames processed *)
  r_ops : int;             (** primitive ops (batches expanded) *)
  r_errs : int;            (** [Err] replies (quorum / unavailable) *)
  r_corrupt_conns : int;   (** connections reset on a corrupt frame *)
  r_end_ns : float;        (** completion time of the last request *)
  r_get_h : Metrics.Histogram.t;
  r_put_h : Metrics.Histogram.t;
  r_windows : window list; (** latency timeline, ascending start time *)
  r_catchups : Membership.catchup list;
  r_migrations : Migration.t list;
  r_acked : int;           (** distinct quorum-acked keys in the oracle *)
}

type oracle

val oracle : unit -> oracle

val preload : Router.t -> oracle -> n_keys:int -> vlen:int -> float
(** Load keys [0, n_keys) through the router (stamped, replicated,
    oracle-recorded); returns the simulated finish time.  Raises on a
    refused write — preload must be clean. *)

type cfg = {
  window_ns : float;  (** latency-timeline bucket width *)
  chunk : int;        (** catch-up / migration entries per tick *)
  tick_ns : float;    (** pacing between chunks *)
  seed : int;         (** tear seed for kills *)
}

val default_cfg : cfg

val run :
  ?cfg:cfg ->
  ?start_at:float ->
  ?arrivals:Service.Server.arrival array ->
  ?closed:Service.Server.closed ->
  events:timed list ->
  Router.t -> oracle -> result
(** Process the merged event stream to completion (arrivals drained,
    closed connections done, catch-ups and migrations finished).
    Latency is measured from intended arrival time. *)

type mismatch = {
  mm_key : Kv_common.Types.key;
  mm_node : int;
  mm_expected : string;
  mm_got : string;
}

val divergence : Router.t -> oracle -> int * mismatch list
(** Audit every acked key against every [Up] owner on throwaway clocks:
    [(replica checks performed, mismatches)].  An empty mismatch list is
    the "no quorum-acked write lost, no divergence" guarantee. *)

val scan_divergence : Router.t -> oracle -> int * mismatch list
(** Audit the scan path: one {!Router.submit_scan} fan-out over the whole
    keyspace must reproduce exactly the oracle's live Put keys in
    ascending order with the acked value lengths.  Returns [(expected
    entries, mismatches)]; [mm_node] is -1 on scan mismatches (they are
    router-level, not attributable to one replica). *)
