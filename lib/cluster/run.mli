(** Discrete-event cluster runs: open- and/or closed-loop load through
    the {!Router} merged with scripted kill / rejoin / migration events
    under one virtual time, plus the end-of-run replica-divergence audit
    against a DRAM oracle of quorum-acked mutations. *)

type event =
  | Kill of int
  | Rejoin of int
  | Migrate of { vshard : int; from_ : int; to_ : int }

type timed = { at : float; ev : event }

type window = {
  w_start : float;
  mutable w_gets : int;
  mutable w_puts : int;
  mutable w_errs : int;
  w_get_h : Metrics.Histogram.t;
  w_put_h : Metrics.Histogram.t;
}

(** Full invocation history for the partition-aware audit, recorded when
    [run ~record_history:true]: every single-op write (acked or not, with
    its minted stamp) and every single-op read (with the stamp of the
    version it answered from).  Batches and scans are not recorded — the
    chaos workloads issue single ops only, which keeps the issued-stamp
    upper bound in {!history_check} sound. *)
type hist_ev =
  | H_write of {
      hw_at : float;      (** issue (intended arrival) time *)
      hw_fin : float;     (** client-side completion *)
      hw_key : Kv_common.Types.key;
      hw_stamp : int;     (** minted stamp, even when unacked *)
      hw_acked : bool;
    }
  | H_read of {
      hr_at : float;
      hr_fin : float;
      hr_key : Kv_common.Types.key;
      hr_stamp : int;     (** version the answer came from; -1 = none *)
      hr_ok : bool;       (** false for [Err] replies *)
    }

type result = {
  r_reqs : int;            (** frames processed *)
  r_ops : int;             (** primitive ops (batches expanded) *)
  r_errs : int;            (** [Err] replies (quorum / unavailable) *)
  r_corrupt_conns : int;   (** connections reset on a corrupt frame *)
  r_end_ns : float;        (** completion time of the last request *)
  r_get_h : Metrics.Histogram.t;
  r_put_h : Metrics.Histogram.t;
  r_windows : window list; (** latency timeline, ascending start time *)
  r_catchups : Membership.catchup list;
  r_migrations : Migration.t list;
  r_acked : int;           (** distinct quorum-acked keys in the oracle *)
  r_history : hist_ev list;
      (** issue order; empty unless [run ~record_history:true] *)
}

type oracle

val oracle : unit -> oracle

val preload : Router.t -> oracle -> n_keys:int -> vlen:int -> float
(** Load keys [0, n_keys) through the router (stamped, replicated,
    oracle-recorded); returns the simulated finish time.  Raises on a
    refused write — preload must be clean. *)

type cfg = {
  window_ns : float;  (** latency-timeline bucket width *)
  chunk : int;        (** catch-up / migration entries per tick *)
  tick_ns : float;    (** pacing between chunks *)
  seed : int;         (** tear seed for kills *)
}

val default_cfg : cfg

val run :
  ?cfg:cfg ->
  ?start_at:float ->
  ?arrivals:Service.Server.arrival array ->
  ?closed:Service.Server.closed ->
  ?record_history:bool ->
  events:timed list ->
  Router.t -> oracle -> result
(** Process the merged event stream to completion (arrivals drained,
    closed connections done, catch-ups and migrations finished).
    Latency is measured from intended arrival time.  Arrival frames may
    carry a {!Service.Proto.hdr} envelope ([Tagged]); the header's
    request id and deadline are passed through to {!Router.call}. *)

type mismatch = {
  mm_key : Kv_common.Types.key;
  mm_node : int;
  mm_expected : string;
  mm_got : string;
}

val divergence : Router.t -> oracle -> int * mismatch list
(** Audit every acked key against every [Up] owner on throwaway clocks:
    [(replica checks performed, mismatches)].  An empty mismatch list is
    the "no quorum-acked write lost, no divergence" guarantee. *)

val scan_divergence : Router.t -> oracle -> int * mismatch list
(** Audit the scan path: one {!Router.call} [Scan] fan-out over the whole
    keyspace must reproduce exactly the oracle's live Put keys in
    ascending order with the acked value lengths.  Returns [(expected
    entries, mismatches)]; [mm_node] is -1 on scan mismatches (they are
    router-level, not attributable to one replica). *)

val chaos_divergence : Router.t -> oracle -> int * int * mismatch list
(** Partition-aware variant of {!divergence}: on every [Up] owner of
    every acked key, the replica's version must be [>=] the acked stamp
    (acked writes survive), and when equal the stored effect must match
    the acked action.  A strictly newer version is unacked-write residue
    — legal under message loss, counted, never a mismatch.  Returns
    [(replica checks, residue count, mismatches)].  Detach the netem
    injector ({!Router.set_netem}) before calling. *)

val history_check : hist_ev list -> int * string list
(** Client-observable consistency over a recorded history: acked stamps
    strictly increase per key in issue order; every OK read answers from
    a stamp no older than the newest acked write to its key that finished
    before the read was issued (no stale read) and no newer than the
    newest stamp issued to its key (no phantom version).  Keys only the
    preload wrote are skipped — their stamps are not in the history.
    Returns [(reads checked, violation descriptions)].  Sound when the
    workload issues single ops and the write quorum covers all replicas,
    as the chaos gates configure. *)
