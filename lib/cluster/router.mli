(** Request router: the client-facing front of the cluster.  Routes
    {!Service.Proto} requests to the owners of each key's vshard,
    assigns global version stamps from a sequencer, applies writes to
    every live owner and acks at [write_quorum], probes [read_quorum]
    replicas and answers from the freshest.  A per-vshard route cache is
    deliberately not refreshed at migration cutover, so stale routing
    surfaces as one counted [Not_owner] redirect round-trip — never as
    an answer from a non-owner. *)

type costs = {
  byte_ns : float;   (** per-byte frame handling cost at a node *)
  frame_ns : float;  (** fixed per-frame handling cost at a node *)
  net_ns : float;    (** one-way network hop *)
}

val default_costs : costs

type t

val create :
  ?costs:costs -> write_quorum:int -> read_quorum:int ->
  Ring.t -> Node.t array -> t
(** Raises [Invalid_argument] when a quorum is outside [1, replicas] or
    node ids do not index the array. *)

val ring : t -> Ring.t
val nodes : t -> Node.t array
val node : t -> int -> Node.t
val write_quorum : t -> int
val read_quorum : t -> int

val last_stamp : t -> int
(** Newest stamp the sequencer has issued. *)

val invalidate_route : t -> vshard:int -> unit

val add_dual : t -> vshard:int -> int -> unit
(** Register an extra write target for a vshard (migration dual-write).
    Dual targets receive every write but do not count toward the write
    quorum. *)

val remove_dual : t -> vshard:int -> int -> unit

(** {1 Stats} *)

val ops : t -> int
val redirects : t -> int

val quorum_failures : t -> int
(** Writes refused (and applied nowhere) for lack of a live quorum. *)

val unavailable : t -> int
(** Reads refused because no owner was [Up], plus scans refused because
    some vshard had no [Up] owner (a partial scan would be a silent gap). *)

val misrouted : t -> int
(** Requests executed by a non-owner — must stay 0; counted so the
    migration experiment can assert it. *)

val replica_applies : t -> int
val degraded_reads : t -> int

val scans : t -> int
(** [Scan] requests fanned out across the nodes (including refused
    ones — see {!unavailable}). *)

type outcome = {
  reply : Service.Proto.reply;
  finish : float;  (** client-side completion time *)
  acked : (Kv_common.Types.key * int * Node.action) list;
      (** quorum-acked mutations with their stamps, for the oracle *)
}

val submit_write :
  t -> at:float -> bytes:int -> Kv_common.Types.key -> Node.action -> outcome

val submit_read : t -> at:float -> bytes:int -> Kv_common.Types.key -> outcome

val call : t -> at:float -> bytes:int -> Service.Proto.req -> outcome
(** The one typed entry point: route any {!Service.Proto.req} — including
    [Batch] frames, whose inner ops route individually and fold — and
    return its outcome.  [bytes] is the encoded frame size, charged at
    each contacted node.  Scans fan out to every [Up] node; the replies
    are reconciled per key (freshest owner replica by version stamp, ties
    to the lower node id, non-owner leftovers discarded) and merged in
    key order through {!Kv_common.Scan}, answering [Values] with
    (key, vlen, None) entries — refused as [Err "unavailable"] when any
    vshard has no [Up] owner, since a partial scan would be
    indistinguishable from a complete one. *)

val submit : t -> at:float -> bytes:int -> Service.Proto.req -> outcome
  [@@ocaml.deprecated "use Router.call"]
(** @deprecated Alias for {!call}; will be removed next PR. *)

val submit_scan :
  t -> at:float -> bytes:int -> start:Kv_common.Types.key -> limit:int ->
  outcome
  [@@ocaml.deprecated "use Router.call with a Proto.Scan request"]
(** @deprecated [call] with a [Proto.Scan]; will be removed next PR. *)
