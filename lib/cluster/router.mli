(** Request router: the client-facing front of the cluster.  Routes
    {!Service.Proto} requests to the owners of each key's vshard,
    assigns global version stamps from a sequencer, applies writes to
    every live owner and acks at [write_quorum], probes [read_quorum]
    replicas and answers from the freshest.  A per-vshard route cache is
    deliberately not refreshed at migration cutover, so stale routing
    surfaces as one counted [Not_owner] redirect round-trip — never as
    an answer from a non-owner.

    Every router<->node exchange goes through one RPC primitive that
    consults an optional {!Fault.Netem} injector: frames can be dropped,
    delayed, duplicated, reordered or cut by partitions, and fail-slow
    nodes inflate their service episodes.  Under the {!defensive}
    policy every attempt carries a deadline, writes retry idempotently
    with exponential backoff + jitter (nodes dedup by request id, so a
    write acked after k retries applied exactly once), reads hedge to
    another [Up] replica after a p99-based delay, and a per-node accrual
    {!Detector} steers reads away from suspected replicas.  Under
    {!default_policy} the path is cost-identical to the pre-netem
    router: one delivery per frame, no deadline, no retries. *)

type costs = {
  byte_ns : float;   (** per-byte frame handling cost at a node *)
  frame_ns : float;  (** fixed per-frame handling cost at a node *)
  net_ns : float;    (** one-way network hop *)
}

val default_costs : costs

type policy = {
  deadline_ns : float;
      (** per-attempt ack deadline; [infinity] = wait forever *)
  max_retries : int;      (** extra attempts after the first *)
  backoff_ns : float;     (** base backoff before retry k is [2^k] of this *)
  backoff_jitter : float; (** uniform +/- fraction applied to each backoff *)
  hedge : bool;           (** duplicate slow reads to a spare replica *)
  hedge_floor_ns : float;
      (** lower bound on the hedge delay, so a cold detector cannot
          hedge every read *)
  route_around : bool;
      (** prefer unsuspected replicas when picking read targets *)
}

val default_policy : policy
(** Infinite deadline, no retries, no hedging — the zero-fault fast path
    is cost-identical to the pre-netem router. *)

val defensive : policy
(** 500 us deadline, 4 retries with 100 us exponential backoff and 0.5
    jitter, hedging with an 8 us floor, route-around on. *)

type t

val create :
  ?costs:costs -> ?policy:policy -> ?netem:Fault.Netem.t -> ?seed:int ->
  write_quorum:int -> read_quorum:int ->
  Ring.t -> Node.t array -> t
(** Raises [Invalid_argument] when a quorum is outside [1, replicas] or
    node ids do not index the array.  [seed] drives backoff jitter. *)

val ring : t -> Ring.t
val nodes : t -> Node.t array
val node : t -> int -> Node.t
val write_quorum : t -> int
val read_quorum : t -> int
val policy : t -> policy

val detector : t -> Detector.t
(** The per-node accrual failure detector the RPC layer feeds. *)

val netem : t -> Fault.Netem.t option

val set_netem : t -> Fault.Netem.t option -> unit
(** Attach or detach the fault injector.  Audits detach it so their
    probe traffic sees a perfect network. *)

val last_stamp : t -> int
(** Newest stamp the sequencer has issued. *)

val invalidate_route : t -> vshard:int -> unit

val add_dual : t -> vshard:int -> int -> unit
(** Register an extra write target for a vshard (migration dual-write).
    Dual targets receive every write but do not count toward the write
    quorum. *)

val remove_dual : t -> vshard:int -> int -> unit

(** {1 Stats} *)

val ops : t -> int
val redirects : t -> int

val quorum_failures : t -> int
(** Writes refused (and applied nowhere) for lack of a live quorum. *)

val unavailable : t -> int
(** Reads refused because no owner was [Up] or no probe answered within
    its retry budget, plus scans refused because some vshard had no [Up]
    owner or a node never answered (a partial scan would be a silent
    gap). *)

val misrouted : t -> int
(** Requests executed by a non-owner — must stay 0; counted so the
    migration experiment can assert it. *)

val replica_applies : t -> int
val degraded_reads : t -> int

val scans : t -> int
(** [Scan] requests fanned out across the nodes (including refused
    ones — see {!unavailable}). *)

val retries : t -> int
(** Retry rounds taken after timed-out attempts (also counted as
    [router.retries]). *)

val timeouts : t -> int
(** RPC attempts that missed their deadline ([router.rpc_timeouts]). *)

val hedges : t -> int
(** Reads duplicated to a spare replica ([router.hedges]). *)

val hedge_wins : t -> int
(** Hedged reads where the spare acked first ([router.hedge_wins]). *)

val late_acks : t -> int
(** Acks that arrived after the client gave up ([router.late_acks]) —
    the work itself still completed on the node. *)

val routed_around : t -> int
(** Suspected replicas skipped when picking read targets
    ([router.routed_around]). *)

type outcome = {
  reply : Service.Proto.reply;
  finish : float;  (** client-side completion time *)
  acked : (Kv_common.Types.key * int * Node.action) list;
      (** quorum-acked mutations with their stamps, for the oracle *)
  stamp : int;
      (** write: the minted stamp, even when the attempt timed out
          unacked (the history audit's issued-stamp bound needs it);
          read: the answering replica's version; -1 when nothing was
          minted or observed *)
}

val submit_write :
  ?req_id:int -> ?deadline:float ->
  t -> at:float -> bytes:int -> Kv_common.Types.key -> Node.action -> outcome

val submit_read :
  ?deadline:float ->
  t -> at:float -> bytes:int -> Kv_common.Types.key -> outcome

val call :
  ?hdr:Service.Proto.hdr ->
  t -> at:float -> bytes:int -> Service.Proto.req -> outcome
(** The one typed entry point: route any {!Service.Proto.req} — including
    [Batch] frames, whose inner ops route individually and fold — and
    return its outcome.  [bytes] is the encoded frame size, charged at
    each contacted node.  An [hdr] envelope supplies the request id
    (single writes only: batch inner ops mint their own ids, since
    sharing one across keys would dedup sibling ops) and a deadline
    override.  Scans fan out to every [Up] node; the replies are
    reconciled per key (freshest owner replica by version stamp, ties to
    the lower node id, non-owner leftovers discarded) and merged in key
    order through {!Kv_common.Scan}, answering [Values] with
    (key, vlen, None) entries — refused as [Err "unavailable"] when any
    vshard has no [Up] owner, since a partial scan would be
    indistinguishable from a complete one. *)
