(* Request router: the client-facing front of the cluster.

   Speaks the existing [Service.Proto] messages, routes each op to the
   owners of its key's vshard, and enforces quorum semantics:

   - Writes take a fresh stamp from a global sequencer and are applied to
     every live owner (plus any migration dual-write targets); the client
     is acked when the [write_quorum]-th owner's apply completes.  Fewer
     live owners than the quorum fails the write without applying it
     anywhere (fail-fast, so a failed write never leaves partial state
     the oracle cannot predict).

   - Reads probe the first [read_quorum] [Up] owners in preference order
     and answer from the replica holding the highest version stamp, at
     the time the slowest probe returns — freshness is decided by stamp
     comparison, not by which replica happens to answer first.

   The router keeps a per-vshard route cache that is deliberately NOT
   refreshed at migration cutover: the first request after cutover goes
   to the old owner, which refuses with [Not_owner] (the node-side
   ownership check), and the router re-resolves and retries.  Stale
   routing therefore costs one observable redirect round-trip and is
   counted — it can never be served by a non-owner. *)

module Clock = Pmem_sim.Clock
module Proto = Service.Proto
module Types = Kv_common.Types

type costs = { byte_ns : float; frame_ns : float; net_ns : float }

(* one-way network hop ~1.5 us: same order as the service layer's frame
   costs, big enough that a redirect round-trip is visible in p99 *)
let default_costs = { byte_ns = 0.25; frame_ns = 120.0; net_ns = 1500.0 }

type t = {
  ring : Ring.t;
  nodes : Node.t array; (* indexed by node id *)
  write_quorum : int;
  read_quorum : int;
  costs : costs;
  mutable stamp : int; (* global version sequencer *)
  route_cache : int list option array; (* vshard -> cached owners *)
  dual : (int, int list) Hashtbl.t; (* vshard -> extra write targets *)
  (* stats *)
  mutable ops : int;
  mutable gets : int;
  mutable writes : int;
  mutable redirects : int;
  mutable quorum_failures : int;
  mutable unavailable : int;
  mutable misrouted : int;
  mutable replica_applies : int;
  mutable degraded_reads : int; (* reads probing fewer than read_quorum *)
  mutable scans : int; (* Scan requests fanned out across the nodes *)
}

let create ?(costs = default_costs) ~write_quorum ~read_quorum ring nodes =
  let n_owners = Ring.replicas ring in
  if write_quorum < 1 || write_quorum > n_owners then
    invalid_arg "Router.create: write_quorum out of range";
  if read_quorum < 1 || read_quorum > n_owners then
    invalid_arg "Router.create: read_quorum out of range";
  Array.iter
    (fun n ->
      if Node.id n >= Array.length nodes || nodes.(Node.id n) != n then
        invalid_arg "Router.create: node ids must index the array")
    nodes;
  { ring;
    nodes;
    write_quorum;
    read_quorum;
    costs;
    stamp = 0;
    route_cache = Array.make (Ring.vshards ring) None;
    dual = Hashtbl.create 8;
    ops = 0;
    gets = 0;
    writes = 0;
    redirects = 0;
    quorum_failures = 0;
    unavailable = 0;
    misrouted = 0;
    replica_applies = 0;
    degraded_reads = 0;
    scans = 0 }

let ring t = t.ring
let nodes t = t.nodes
let node t id = t.nodes.(id)
let write_quorum t = t.write_quorum
let read_quorum t = t.read_quorum
let last_stamp t = t.stamp
let ops t = t.ops
let redirects t = t.redirects
let quorum_failures t = t.quorum_failures
let unavailable t = t.unavailable
let misrouted t = t.misrouted
let replica_applies t = t.replica_applies
let degraded_reads t = t.degraded_reads
let scans t = t.scans

let invalidate_route t ~vshard = t.route_cache.(vshard) <- None

(* migration dual-write registration *)
let add_dual t ~vshard nid =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.dual vshard) in
  if not (List.mem nid cur) then Hashtbl.replace t.dual vshard (nid :: cur)

let remove_dual t ~vshard nid =
  match Hashtbl.find_opt t.dual vshard with
  | None -> ()
  | Some cur -> (
      match List.filter (( <> ) nid) cur with
      | [] -> Hashtbl.remove t.dual vshard
      | rest -> Hashtbl.replace t.dual vshard rest)

(* Occupy node [nid]'s service loop for one frame arriving at [ready];
   run [f] on its clock and return (result, ack time at the client). *)
let on_node t nid ~ready ~bytes f =
  let n = t.nodes.(nid) in
  let rxc = Node.rx n in
  ignore (Clock.wait_until rxc ready);
  Clock.advance rxc (t.costs.frame_ns +. (t.costs.byte_ns *. float_of_int bytes));
  let r = f n rxc in
  (r, Clock.now rxc +. t.costs.net_ns)

(* Resolve a vshard's owners through the route cache.  A stale cache
   entry costs one observable bounce: the old first owner handles the
   frame, refuses with [Not_owner], and the client retries after the
   extra round-trip.  Returns (owners, time the retried frame departs). *)
let resolve t ~at ~bytes vshard =
  let real = Ring.owners t.ring vshard in
  match t.route_cache.(vshard) with
  | Some cached when cached = real -> (real, at)
  | None ->
      t.route_cache.(vshard) <- Some real;
      (real, at)
  | Some cached ->
      t.redirects <- t.redirects + 1;
      t.route_cache.(vshard) <- Some real;
      let depart =
        match
          List.find_opt (fun nid -> Node.status t.nodes.(nid) <> Node.Down) cached
        with
        | Some nid ->
            let (), bounced =
              on_node t nid ~ready:(at +. t.costs.net_ns) ~bytes (fun _ _ -> ())
            in
            bounced
        | None -> at +. (2.0 *. t.costs.net_ns)
      in
      (real, depart)

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

type outcome = {
  reply : Proto.reply;
  finish : float; (* client-side completion time *)
  acked : (Types.key * int * Node.action) list;
      (* quorum-acked mutations, for the oracle *)
}

let submit_write t ~at ~bytes key action =
  t.writes <- t.writes + 1;
  let vshard = Ring.vshard_of t.ring key in
  let owners, depart = resolve t ~at ~bytes vshard in
  let extras =
    List.filter
      (fun nid -> not (List.mem nid owners))
      (Option.value ~default:[] (Hashtbl.find_opt t.dual vshard))
  in
  let live = List.filter (fun nid -> Node.status t.nodes.(nid) <> Node.Down) in
  let live_owners = live owners in
  if List.length live_owners < t.write_quorum then begin
    t.quorum_failures <- t.quorum_failures + 1;
    { reply = Proto.Err "quorum";
      finish = depart +. (2.0 *. t.costs.net_ns);
      acked = [] }
  end
  else begin
    t.stamp <- t.stamp + 1;
    let stamp = t.stamp in
    let apply_on nid =
      let applied, ack =
        on_node t nid ~ready:(depart +. t.costs.net_ns) ~bytes (fun n rxc ->
            Node.apply n rxc ~stamp key action)
      in
      if applied then t.replica_applies <- t.replica_applies + 1;
      ack
    in
    let owner_acks = List.map apply_on live_owners in
    List.iter (fun nid -> ignore (apply_on nid)) (live extras);
    let sorted = List.sort compare owner_acks in
    let finish = List.nth sorted (t.write_quorum - 1) in
    { reply = Proto.Ok; finish = max at finish; acked = [ (key, stamp, action) ] }
  end

let reply_of_read n result =
  let module S = Kv_common.Store_intf in
  match result with
  | { S.value = Some v; _ } -> Proto.Value v
  | { S.stage = S.Corrupt; _ } -> Proto.Corrupted
  | { S.loc = Some loc; _ } ->
      Proto.Hit (Kv_common.Vlog.vlen_at (S.vlog (Node.store n)) loc)
  | { S.loc = None; _ } -> Proto.Miss

let submit_read t ~at ~bytes key =
  t.gets <- t.gets + 1;
  let vshard = Ring.vshard_of t.ring key in
  let owners, depart = resolve t ~at ~bytes vshard in
  let readable =
    List.filter (fun nid -> Node.status t.nodes.(nid) = Node.Up) owners
  in
  let probes = take t.read_quorum readable in
  if probes = [] then begin
    t.unavailable <- t.unavailable + 1;
    { reply = Proto.Err "unavailable";
      finish = depart +. (2.0 *. t.costs.net_ns);
      acked = [] }
  end
  else begin
    if List.length probes < t.read_quorum then
      t.degraded_reads <- t.degraded_reads + 1;
    let answers =
      List.map
        (fun nid ->
          let (n, result), ack =
            on_node t nid ~ready:(depart +. t.costs.net_ns) ~bytes (fun n rxc ->
                if not (List.mem nid (Ring.owners t.ring vshard)) then
                  t.misrouted <- t.misrouted + 1;
                (n, Node.read n rxc key))
          in
          let version = Option.value ~default:(-1) (Node.version n key) in
          (version, reply_of_read n result, ack))
        probes
    in
    let finish =
      List.fold_left (fun acc (_, _, ack) -> max acc ack) at answers
    in
    let _, best, _ =
      List.fold_left
        (fun ((bv, _, _) as acc) ((v, _, _) as cand) ->
          if v > bv then cand else acc)
        (List.hd answers) (List.tl answers)
    in
    { reply = best; finish; acked = [] }
  end

(* An ordered scan crosses every vshard, so the router fans it out: every
   [Up] node scans its local store (charged on its own service loop), the
   replies are reconciled per key — the freshest owner replica wins, by
   version stamp, ties to the lower node id; leftovers on nodes that no
   longer own the key's vshard are discarded — and the winner-filtered
   per-node streams are merged in key order through {!Kv_common.Scan}.
   Completeness needs every vshard to have at least one [Up] owner;
   otherwise the scan is refused as unavailable rather than answered with
   a silent gap. *)
let fan_scan t ~at ~bytes ~start ~limit =
  t.scans <- t.scans + 1;
  let covered = ref true in
  for v = 0 to Ring.vshards t.ring - 1 do
    if
      not
        (List.exists
           (fun nid -> Node.status t.nodes.(nid) = Node.Up)
           (Ring.owners t.ring v))
    then covered := false
  done;
  if not !covered then begin
    t.unavailable <- t.unavailable + 1;
    { reply = Proto.Err "unavailable";
      finish = at +. (2.0 *. t.costs.net_ns);
      acked = [] }
  end
  else begin
    let module S = Kv_common.Store_intf in
    let up =
      List.filter
        (fun nid -> Node.status t.nodes.(nid) = Node.Up)
        (List.init (Array.length t.nodes) Fun.id)
    in
    let replies =
      List.map
        (fun nid ->
          let entries, ack =
            on_node t nid ~ready:(at +. t.costs.net_ns) ~bytes (fun n rxc ->
                S.scan (Node.store n) rxc ~start ~limit)
          in
          (nid, entries, ack))
        up
    in
    let finish =
      List.fold_left (fun acc (_, _, ack) -> max acc ack) at replies
    in
    (* per-key reconciliation: (stamp, node) of the freshest owner copy *)
    let best : (Types.key, int * int) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (nid, entries, _) ->
        List.iter
          (fun (key, _loc) ->
            if List.mem nid (Ring.owners_of_key t.ring key) then begin
              let stamp =
                Option.value ~default:(-1) (Node.version t.nodes.(nid) key)
              in
              match Hashtbl.find_opt best key with
              | Some (s, n) when s > stamp || (s = stamp && n <= nid) -> ()
              | _ -> Hashtbl.replace best key (stamp, nid)
            end)
          entries)
      replies;
    let streams =
      List.map
        (fun (nid, entries, _) ->
          Kv_common.Scan.of_sorted
            (List.filter
               (fun (key, _) ->
                 match Hashtbl.find_opt best key with
                 | Some (_, winner) -> winner = nid
                 | None -> false)
               entries))
        replies
    in
    let entries, _status =
      Kv_common.Scan.take (Kv_common.Scan.merge streams) ~limit
    in
    let values =
      List.map
        (fun (key, loc) ->
          let _, nid = Hashtbl.find best key in
          let n = t.nodes.(nid) in
          (key, Kv_common.Vlog.vlen_at (S.vlog (Node.store n)) loc, None))
        entries
    in
    { reply = Proto.Values values; finish; acked = [] }
  end

let vlen_of_payload v = Bytes.length v

(* The one typed entry point: route any request.  Batches route each
   inner op (all charged against the batch frame's arrival time) and
   fold their outcomes. *)
let rec call t ~at ~bytes req =
  t.ops <- t.ops + 1;
  match req with
  | Proto.Get k -> submit_read t ~at ~bytes k
  | Proto.Put (k, v) ->
      submit_write t ~at ~bytes k (Node.Put (vlen_of_payload v))
  | Proto.Delete k -> submit_write t ~at ~bytes k Node.Delete
  | Proto.Scan (start, limit) -> fan_scan t ~at ~bytes ~start ~limit
  | Proto.Batch reqs ->
      let outcomes =
        List.map
          (fun r ->
            call t ~at ~bytes:(Bytes.length (Proto.encode_request r)) r)
          reqs
      in
      { reply = Proto.Replies (List.map (fun o -> o.reply) outcomes);
        finish = List.fold_left (fun acc o -> max acc o.finish) at outcomes;
        acked = List.concat_map (fun o -> o.acked) outcomes }

(* Deprecated aliases (one PR of grace): both are [call] in disguise. *)
let submit = call

let submit_scan t ~at ~bytes ~start ~limit =
  call t ~at ~bytes (Proto.Scan (start, limit))
