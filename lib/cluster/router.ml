(* Request router: the client-facing front of the cluster.

   Speaks the existing [Service.Proto] messages, routes each op to the
   owners of its key's vshard, and enforces quorum semantics:

   - Writes take a fresh stamp from a global sequencer and are applied to
     every live owner (plus any migration dual-write targets); the client
     is acked when the [write_quorum]-th owner's apply completes.  Fewer
     live owners than the quorum fails the write without applying it
     anywhere (fail-fast, so a failed write never leaves partial state
     the oracle cannot predict).

   - Reads probe the first [read_quorum] [Up] owners in preference order
     and answer from the replica holding the highest version stamp, at
     the time the slowest probe returns — freshness is decided by stamp
     comparison, not by which replica happens to answer first.

   Every router<->node exchange goes through one RPC primitive that asks
   the optional [Fault.Netem] injector what happens to each frame.  Under
   the default policy the path is exactly the perfect-network one (one
   delivery per frame after [net_ns], no deadline); under a defensive
   [policy] every attempt carries a deadline, writes retry idempotently
   with exponential backoff + jitter (nodes dedup by request id), reads
   hedge to another [Up] replica after a p99-based delay, and a per-node
   accrual failure detector ({!Detector}) steers reads away from
   suspected (partitioned or fail-slow) replicas.

   The router keeps a per-vshard route cache that is deliberately NOT
   refreshed at migration cutover: the first request after cutover goes
   to the old owner, which refuses with [Not_owner] (the node-side
   ownership check), and the router re-resolves and retries.  Stale
   routing therefore costs one observable redirect round-trip and is
   counted — it can never be served by a non-owner. *)

module Clock = Pmem_sim.Clock
module Proto = Service.Proto
module Netem = Fault.Netem
module Rng = Workload.Rng
module Types = Kv_common.Types

type costs = { byte_ns : float; frame_ns : float; net_ns : float }

(* one-way network hop ~1.5 us: same order as the service layer's frame
   costs, big enough that a redirect round-trip is visible in p99 *)
let default_costs = { byte_ns = 0.25; frame_ns = 120.0; net_ns = 1500.0 }

type policy = {
  deadline_ns : float;
  max_retries : int;
  backoff_ns : float;
  backoff_jitter : float;
  hedge : bool;
  hedge_floor_ns : float;
  route_around : bool;
}

(* PR-9 semantics: wait forever, never retry, never hedge — the
   zero-fault fast path is cost-identical to the pre-netem router *)
let default_policy =
  { deadline_ns = infinity;
    max_retries = 0;
    backoff_ns = 0.0;
    backoff_jitter = 0.0;
    hedge = false;
    hedge_floor_ns = 0.0;
    route_around = false }

(* deadline ~300x the healthy round trip, so only loss and partitions
   trip it; hedge floor just above the healthy round trip *)
let defensive =
  { deadline_ns = 500_000.0;
    max_retries = 4;
    backoff_ns = 100_000.0;
    backoff_jitter = 0.5;
    hedge = true;
    hedge_floor_ns = 8_000.0;
    route_around = true }

type t = {
  ring : Ring.t;
  nodes : Node.t array; (* indexed by node id *)
  write_quorum : int;
  read_quorum : int;
  costs : costs;
  policy : policy;
  mutable netem : Netem.t option;
  detector : Detector.t;
  rng : Rng.t; (* backoff jitter *)
  mutable stamp : int; (* global version sequencer *)
  mutable next_req_id : int;
  route_cache : int list option array; (* vshard -> cached owners *)
  dual : (int, int list) Hashtbl.t; (* vshard -> extra write targets *)
  (* stats *)
  mutable ops : int;
  mutable gets : int;
  mutable writes : int;
  mutable redirects : int;
  mutable quorum_failures : int;
  mutable unavailable : int;
  mutable misrouted : int;
  mutable replica_applies : int;
  mutable degraded_reads : int; (* reads answered by fewer than read_quorum *)
  mutable scans : int; (* Scan requests fanned out across the nodes *)
  mutable retries : int;
  mutable timeouts : int; (* RPC attempts that missed their deadline *)
  mutable hedges : int;
  mutable hedge_wins : int;
  mutable late_acks : int; (* acks that arrived after the client gave up *)
  mutable routed_around : int; (* suspected replicas skipped by reads *)
}

let c_retries = Obs.Counters.counter "router.retries"
let c_timeouts = Obs.Counters.counter "router.rpc_timeouts"
let c_hedges = Obs.Counters.counter "router.hedges"
let c_hedge_wins = Obs.Counters.counter "router.hedge_wins"
let c_late_acks = Obs.Counters.counter "router.late_acks"
let c_routed_around = Obs.Counters.counter "router.routed_around"

let create ?(costs = default_costs) ?(policy = default_policy) ?netem
    ?(seed = 0) ~write_quorum ~read_quorum ring nodes =
  let n_owners = Ring.replicas ring in
  if write_quorum < 1 || write_quorum > n_owners then
    invalid_arg "Router.create: write_quorum out of range";
  if read_quorum < 1 || read_quorum > n_owners then
    invalid_arg "Router.create: read_quorum out of range";
  Array.iter
    (fun n ->
      if Node.id n >= Array.length nodes || nodes.(Node.id n) != n then
        invalid_arg "Router.create: node ids must index the array")
    nodes;
  { ring;
    nodes;
    write_quorum;
    read_quorum;
    costs;
    policy;
    netem;
    detector = Detector.create ~n:(Array.length nodes) ();
    rng = Rng.create ~seed:(seed + 0x7e7e);
    stamp = 0;
    next_req_id = 0;
    route_cache = Array.make (Ring.vshards ring) None;
    dual = Hashtbl.create 8;
    ops = 0;
    gets = 0;
    writes = 0;
    redirects = 0;
    quorum_failures = 0;
    unavailable = 0;
    misrouted = 0;
    replica_applies = 0;
    degraded_reads = 0;
    scans = 0;
    retries = 0;
    timeouts = 0;
    hedges = 0;
    hedge_wins = 0;
    late_acks = 0;
    routed_around = 0 }

let ring t = t.ring
let nodes t = t.nodes
let node t id = t.nodes.(id)
let write_quorum t = t.write_quorum
let read_quorum t = t.read_quorum
let policy t = t.policy
let detector t = t.detector
let netem t = t.netem
let set_netem t nm = t.netem <- nm
let last_stamp t = t.stamp
let ops t = t.ops
let redirects t = t.redirects
let quorum_failures t = t.quorum_failures
let unavailable t = t.unavailable
let misrouted t = t.misrouted
let replica_applies t = t.replica_applies
let degraded_reads t = t.degraded_reads
let scans t = t.scans
let retries t = t.retries
let timeouts t = t.timeouts
let hedges t = t.hedges
let hedge_wins t = t.hedge_wins
let late_acks t = t.late_acks
let routed_around t = t.routed_around

let fresh_req_id t =
  t.next_req_id <- t.next_req_id + 1;
  t.next_req_id

let invalidate_route t ~vshard = t.route_cache.(vshard) <- None

(* migration dual-write registration *)
let add_dual t ~vshard nid =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.dual vshard) in
  if not (List.mem nid cur) then Hashtbl.replace t.dual vshard (nid :: cur)

let remove_dual t ~vshard nid =
  match Hashtbl.find_opt t.dual vshard with
  | None -> ()
  | Some cur -> (
      match List.filter (( <> ) nid) cur with
      | [] -> Hashtbl.remove t.dual vshard
      | rest -> Hashtbl.replace t.dual vshard rest)

(* -- the RPC primitive ----------------------------------------------- *)

(* One request/reply exchange with node [nid]: the request frame departs
   the client at [depart], every netem delivery of it occupies the node's
   serialized loop in arrival order (a node cannot tell a duplicate from
   a fresh frame — dedup is the handler's job, so [f] runs per delivery),
   and each completion's reply crosses netem back.  Returns the earliest
   client-side ack with that delivery's handler result, or [None] when
   nothing acked by [give_up] — the work a timed-out attempt started is
   NOT cancelled; it completes on the node and its late ack is counted.
   Fail-slow inflation stretches the whole service episode on the node's
   clock, so a slow node backs up honestly.

   Ops are processed in intended-arrival order, so a delivery at or
   before the loop clock's position queues behind it (wait_until +
   advance).  Out-of-band deliveries — retries departing after a
   deadline + backoff, hedges — can land far past that position, and
   jumping the serialized loop forward over idle time it would have
   spent serving later-processed (but earlier-arriving) requests
   manufactures phantom queueing that snowballs into every subsequent op
   timing out.  Those execute on a positioned copy of the loop clock
   instead: they pay every device and service cost, they just do not
   teleport the loop. *)
let rpc ?(oob = false) t nid ~depart ~bytes ~give_up f =
  let arrivals =
    match t.netem with
    | None -> [ depart +. t.costs.net_ns ]
    | Some nm ->
        Netem.send nm ~now:depart ~src:Netem.Client ~dst:(Netem.Node nid)
          ~net_ns:t.costs.net_ns
  in
  let best = ref None in
  List.iter
    (fun arr ->
      let n = t.nodes.(nid) in
      let rxc =
        let real = Node.rx n in
        if oob && arr > Clock.now real then begin
          let c = Clock.copy real in
          ignore (Clock.wait_until c arr);
          c
        end
        else begin
          ignore (Clock.wait_until real arr);
          real
        end
      in
      let t0 = Clock.now rxc in
      Clock.advance rxc
        (t.costs.frame_ns +. (t.costs.byte_ns *. float_of_int bytes));
      let r = f n rxc in
      (match t.netem with
      | Some nm ->
          let factor = Netem.slow_factor nm ~now:t0 ~node:nid in
          if factor > 1.0 then
            Clock.advance rxc ((factor -. 1.0) *. (Clock.now rxc -. t0))
      | None -> ());
      let done_at = Clock.now rxc in
      let acks =
        match t.netem with
        | None -> [ done_at +. t.costs.net_ns ]
        | Some nm ->
            Netem.send nm ~now:done_at ~src:(Netem.Node nid) ~dst:Netem.Client
              ~net_ns:t.costs.net_ns
      in
      List.iter
        (fun ack ->
          match !best with
          | Some (b, _) when b <= ack -> ()
          | _ -> best := Some (ack, r))
        acks)
    arrivals;
  match !best with
  | Some (ack, r) when ack <= give_up ->
      Detector.observe_ack t.detector ~node:nid ~rtt_ns:(ack -. depart);
      Some (ack, r)
  | Some _ ->
      t.late_acks <- t.late_acks + 1;
      Obs.Counters.incr c_late_acks;
      Detector.observe_timeout t.detector ~node:nid;
      None
  | None ->
      if give_up < infinity then Detector.observe_timeout t.detector ~node:nid;
      None

let rpc_timed_out t ~depart ~give_up =
  t.timeouts <- t.timeouts + 1;
  Obs.Counters.incr c_timeouts;
  if Obs.Attribution.enabled () then
    Obs.Attribution.add Rpc_timeout (give_up -. depart)

(* exponential backoff with +/- [backoff_jitter] uniform jitter *)
let backoff_delay t k =
  let base = t.policy.backoff_ns *. (2.0 ** float_of_int k) in
  let j = t.policy.backoff_jitter in
  let d =
    if j <= 0.0 then base
    else base *. (1.0 -. j +. (2.0 *. j *. Rng.float t.rng))
  in
  if Obs.Attribution.enabled () then Obs.Attribution.add Rpc_backoff d;
  d

(* hedge delay: the p99 a healthy replica should beat, floored so a cold
   detector cannot hedge every read *)
let hedge_delay t =
  Float.max t.policy.hedge_floor_ns (Detector.rtt_p99 t.detector)

(* Resolve a vshard's owners through the route cache.  A stale cache
   entry costs one observable bounce: the old first owner handles the
   frame, refuses with [Not_owner], and the client retries after the
   extra round-trip.  The bounce is a real exchange, so netem applies; a
   lost bounce costs the deadline before the client re-resolves.
   Returns (owners, time the retried frame departs). *)
let resolve t ~at ~bytes vshard =
  let real = Ring.owners t.ring vshard in
  match t.route_cache.(vshard) with
  | Some cached when cached = real -> (real, at)
  | None ->
      t.route_cache.(vshard) <- Some real;
      (real, at)
  | Some cached ->
      t.redirects <- t.redirects + 1;
      t.route_cache.(vshard) <- Some real;
      let fallback =
        at +. Float.min (2.0 *. t.costs.net_ns) t.policy.deadline_ns
      in
      let depart =
        match
          List.find_opt (fun nid -> Node.status t.nodes.(nid) <> Node.Down) cached
        with
        | Some nid -> (
            let give_up = at +. t.policy.deadline_ns in
            match rpc t nid ~depart:at ~bytes ~give_up (fun _ _ -> ()) with
            | Some (bounced, ()) -> bounced
            | None -> Float.min give_up fallback)
        | None -> at +. (2.0 *. t.costs.net_ns)
      in
      (real, depart)

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

type outcome = {
  reply : Proto.reply;
  finish : float; (* client-side completion time *)
  acked : (Types.key * int * Node.action) list;
      (* quorum-acked mutations, for the oracle *)
  stamp : int;
      (* write: the minted stamp (even when unacked, for the history
         audit's issued-bound); read: the answering replica's version;
         -1 when nothing was minted / observed *)
}

let submit_write ?req_id ?deadline t ~at ~bytes key action =
  t.writes <- t.writes + 1;
  let deadline = Option.value deadline ~default:t.policy.deadline_ns in
  let vshard = Ring.vshard_of t.ring key in
  let owners, depart = resolve t ~at ~bytes vshard in
  let extras =
    List.filter
      (fun nid -> not (List.mem nid owners))
      (Option.value ~default:[] (Hashtbl.find_opt t.dual vshard))
  in
  let live = List.filter (fun nid -> Node.status t.nodes.(nid) <> Node.Down) in
  let live_owners = live owners in
  if List.length live_owners < t.write_quorum then begin
    t.quorum_failures <- t.quorum_failures + 1;
    { reply = Proto.Err "quorum";
      finish = depart +. (2.0 *. t.costs.net_ns);
      acked = [];
      stamp = -1 }
  end
  else begin
    t.stamp <- t.stamp + 1;
    let stamp = t.stamp in
    let req_id = match req_id with Some r -> r | None -> fresh_req_id t in
    let apply_f n rxc =
      if Node.apply ~req_id n rxc ~stamp key action then
        t.replica_applies <- t.replica_applies + 1
    in
    let acks = ref [] in
    (* retry loop: each round contacts the owners that have not acked
       yet, with the same stamp and request id — the node-side dedup and
       the stamp comparison make replays exactly-once *)
    let rec attempt k ~depart pending =
      let give_up = depart +. deadline in
      let still =
        List.filter
          (fun nid ->
            match rpc ~oob:(k > 0) t nid ~depart ~bytes ~give_up apply_f with
            | Some (ack, ()) ->
                acks := ack :: !acks;
                false
            | None ->
                rpc_timed_out t ~depart ~give_up;
                true)
          pending
      in
      if List.length !acks >= t.write_quorum then `Acked
      else if k >= t.policy.max_retries || deadline = infinity then
        `Timed_out give_up
      else begin
        t.retries <- t.retries + 1;
        Obs.Counters.incr c_retries;
        attempt (k + 1) ~depart:(give_up +. backoff_delay t k) still
      end
    in
    match attempt 0 ~depart live_owners with
    | `Acked ->
        (* dual-write extras are best-effort: never retried, never part
           of the quorum — migration's copy pass covers any gap *)
        List.iter
          (fun nid ->
            ignore (rpc t nid ~depart ~bytes ~give_up:infinity apply_f))
          (live extras);
        let sorted = List.sort compare !acks in
        let finish = List.nth sorted (t.write_quorum - 1) in
        { reply = Proto.Ok;
          finish = max at finish;
          acked = [ (key, stamp, action) ];
          stamp }
    | `Timed_out give_up ->
        (* the write may live on a minority of owners (counted residue in
           the chaos audit); it was never acked, so the oracle ignores it *)
        let finish =
          if give_up < infinity then give_up
          else depart +. (2.0 *. t.costs.net_ns)
        in
        { reply = Proto.Err "timeout";
          finish = max at finish;
          acked = [];
          stamp }
  end

let reply_of_read n result =
  let module S = Kv_common.Store_intf in
  match result with
  | { S.value = Some v; _ } -> Proto.Value v
  | { S.stage = S.Corrupt; _ } -> Proto.Corrupted
  | { S.loc = Some loc; _ } ->
      Proto.Hit (Kv_common.Vlog.vlen_at (S.vlog (Node.store n)) loc)
  | { S.loc = None; _ } -> Proto.Miss

let submit_read ?deadline t ~at ~bytes key =
  t.gets <- t.gets + 1;
  let deadline = Option.value deadline ~default:t.policy.deadline_ns in
  let vshard = Ring.vshard_of t.ring key in
  let owners, depart = resolve t ~at ~bytes vshard in
  let readable =
    List.filter (fun nid -> Node.status t.nodes.(nid) = Node.Up) owners
  in
  if readable = [] then begin
    t.unavailable <- t.unavailable + 1;
    { reply = Proto.Err "unavailable";
      finish = depart +. (2.0 *. t.costs.net_ns);
      acked = [];
      stamp = -1 }
  end
  else begin
    if List.length readable < t.read_quorum then
      t.degraded_reads <- t.degraded_reads + 1;
    (* preference order: suspected replicas (partitioned, fail-slow) go
       to the back so the quorum is filled from healthy ones first *)
    let ordered =
      if t.policy.route_around then begin
        let healthy, suspect =
          List.partition
            (fun nid -> not (Detector.suspected t.detector ~node:nid))
            readable
        in
        let want = min t.read_quorum (List.length readable) in
        List.iter
          (fun nid ->
            if not (List.mem nid (take want (healthy @ suspect))) then begin
              t.routed_around <- t.routed_around + 1;
              Obs.Counters.incr c_routed_around
            end)
          (take want readable);
        healthy @ suspect
      end
      else readable
    in
    let want = min t.read_quorum (List.length readable) in
    let targets = take want ordered in
    let spares =
      ref (List.filter (fun nid -> not (List.mem nid targets)) ordered)
    in
    let take_spare () =
      match !spares with
      | [] -> None
      | s :: rest ->
          spares := rest;
          Some s
    in
    let read_f nid n rxc =
      if not (List.mem nid (Ring.owners t.ring vshard)) then
        t.misrouted <- t.misrouted + 1;
      let result = Node.read n rxc key in
      let version = Option.value ~default:(-1) (Node.version n key) in
      (version, reply_of_read n result)
    in
    (* one probe, hedged: if the primary has not acked within the hedge
       delay, duplicate the read to a spare replica and take whichever
       acks first (both are owners, so either answer is quorum-valid) *)
    let probe ~oob ~depart nid =
      let give_up = depart +. deadline in
      let res = rpc ~oob t nid ~depart ~bytes ~give_up (read_f nid) in
      let hd = hedge_delay t in
      let want_hedge =
        t.policy.hedge
        && (match res with
           | None -> true
           | Some (ack, _) -> ack -. depart > hd)
      in
      if not want_hedge then res
      else
        match take_spare () with
        | None -> res
        | Some spare -> (
            t.hedges <- t.hedges + 1;
            Obs.Counters.incr c_hedges;
            if Obs.Attribution.enabled () then
              Obs.Attribution.add Rpc_hedge hd;
            let hdepart = depart +. hd in
            let hres =
              rpc ~oob:true t spare ~depart:hdepart ~bytes
                ~give_up:(hdepart +. deadline) (read_f spare)
            in
            match (res, hres) with
            | None, Some _ ->
                t.hedge_wins <- t.hedge_wins + 1;
                Obs.Counters.incr c_hedge_wins;
                hres
            | Some (a, _), Some (ha, _) when ha < a ->
                t.hedge_wins <- t.hedge_wins + 1;
                Obs.Counters.incr c_hedge_wins;
                hres
            | _ -> res)
    in
    let rec attempt k ~depart pending answers =
      let give_up = depart +. deadline in
      let answers, failed =
        List.fold_left
          (fun (answers, failed) nid ->
            match probe ~oob:(k > 0) ~depart nid with
            | Some (ack, (version, rep)) ->
                ((version, rep, ack) :: answers, failed)
            | None ->
                rpc_timed_out t ~depart ~give_up;
                (answers, nid :: failed))
          (answers, []) pending
      in
      if failed = [] || k >= t.policy.max_retries || deadline = infinity then
        (answers, failed, give_up)
      else begin
        t.retries <- t.retries + 1;
        Obs.Counters.incr c_retries;
        attempt (k + 1) ~depart:(give_up +. backoff_delay t k)
          (List.rev failed) answers
      end
    in
    let answers, failed, last_give_up = attempt 0 ~depart targets [] in
    match answers with
    | [] ->
        t.unavailable <- t.unavailable + 1;
        let finish =
          if last_give_up < infinity then last_give_up
          else depart +. (2.0 *. t.costs.net_ns)
        in
        { reply = Proto.Err "timeout";
          finish = max at finish;
          acked = [];
          stamp = -1 }
    | first :: rest ->
        if failed <> [] then t.degraded_reads <- t.degraded_reads + 1;
        let finish =
          List.fold_left (fun acc (_, _, ack) -> max acc ack) at answers
        in
        let version, best, _ =
          List.fold_left
            (fun ((bv, _, _) as acc) ((v, _, _) as cand) ->
              if v > bv then cand else acc)
            first rest
        in
        { reply = best; finish; acked = []; stamp = version }
  end

(* An ordered scan crosses every vshard, so the router fans it out: every
   [Up] node scans its local store (charged on its own service loop), the
   replies are reconciled per key — the freshest owner replica wins, by
   version stamp, ties to the lower node id; leftovers on nodes that no
   longer own the key's vshard are discarded — and the winner-filtered
   per-node streams are merged in key order through {!Kv_common.Scan}.
   Completeness needs every vshard to have at least one [Up] owner AND an
   answer from every [Up] node (per-node exchanges retry on timeout);
   otherwise the scan is refused rather than answered with a silent
   gap. *)
let fan_scan t ~at ~bytes ~start ~limit =
  t.scans <- t.scans + 1;
  let covered = ref true in
  for v = 0 to Ring.vshards t.ring - 1 do
    if
      not
        (List.exists
           (fun nid -> Node.status t.nodes.(nid) = Node.Up)
           (Ring.owners t.ring v))
    then covered := false
  done;
  if not !covered then begin
    t.unavailable <- t.unavailable + 1;
    { reply = Proto.Err "unavailable";
      finish = at +. (2.0 *. t.costs.net_ns);
      acked = [];
      stamp = -1 }
  end
  else begin
    let module S = Kv_common.Store_intf in
    let up =
      List.filter
        (fun nid -> Node.status t.nodes.(nid) = Node.Up)
        (List.init (Array.length t.nodes) Fun.id)
    in
    let rec scan_node k ~depart nid =
      let give_up = depart +. t.policy.deadline_ns in
      match
        rpc ~oob:(k > 0) t nid ~depart ~bytes ~give_up (fun n rxc ->
            S.scan (Node.store n) rxc ~start ~limit)
      with
      | Some (ack, entries) -> Some (nid, entries, ack)
      | None ->
          rpc_timed_out t ~depart ~give_up;
          if k >= t.policy.max_retries || t.policy.deadline_ns = infinity then
            None
          else begin
            t.retries <- t.retries + 1;
            Obs.Counters.incr c_retries;
            scan_node (k + 1) ~depart:(give_up +. backoff_delay t k) nid
          end
    in
    let replies = List.filter_map (scan_node 0 ~depart:at) up in
    if List.length replies < List.length up then begin
      (* a node never answered: a partial fan-out would be a silent gap *)
      t.unavailable <- t.unavailable + 1;
      let finish =
        List.fold_left
          (fun acc (_, _, ack) -> max acc ack)
          (at +. (2.0 *. t.costs.net_ns))
          replies
      in
      { reply = Proto.Err "timeout"; finish; acked = []; stamp = -1 }
    end
    else begin
      let finish =
        List.fold_left (fun acc (_, _, ack) -> max acc ack) at replies
      in
      (* per-key reconciliation: (stamp, node) of the freshest owner copy *)
      let best : (Types.key, int * int) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun (nid, entries, _) ->
          List.iter
            (fun (key, _loc) ->
              if List.mem nid (Ring.owners_of_key t.ring key) then begin
                let stamp =
                  Option.value ~default:(-1) (Node.version t.nodes.(nid) key)
                in
                match Hashtbl.find_opt best key with
                | Some (s, n) when s > stamp || (s = stamp && n <= nid) -> ()
                | _ -> Hashtbl.replace best key (stamp, nid)
              end)
            entries)
        replies;
      let streams =
        List.map
          (fun (nid, entries, _) ->
            Kv_common.Scan.of_sorted
              (List.filter
                 (fun (key, _) ->
                   match Hashtbl.find_opt best key with
                   | Some (_, winner) -> winner = nid
                   | None -> false)
                 entries))
          replies
      in
      let entries, _status =
        Kv_common.Scan.take (Kv_common.Scan.merge streams) ~limit
      in
      let values =
        List.map
          (fun (key, loc) ->
            let _, nid = Hashtbl.find best key in
            let n = t.nodes.(nid) in
            (key, Kv_common.Vlog.vlen_at (S.vlog (Node.store n)) loc, None))
          entries
      in
      { reply = Proto.Values values; finish; acked = []; stamp = -1 }
    end
  end

let vlen_of_payload v = Bytes.length v

(* The one typed entry point: route any request.  Batches route each
   inner op (all charged against the batch frame's arrival time) and
   fold their outcomes.  A [Proto.hdr] envelope supplies the request id
   (single writes only — batch inner ops mint their own, since sharing
   one id across keys would dedup sibling ops) and a per-attempt
   deadline override. *)
let rec call ?hdr t ~at ~bytes req =
  t.ops <- t.ops + 1;
  let req_id = Option.map (fun h -> h.Proto.h_req_id) hdr in
  let deadline = Option.map (fun h -> h.Proto.h_deadline_ns) hdr in
  match req with
  | Proto.Get k -> submit_read ?deadline t ~at ~bytes k
  | Proto.Put (k, v) ->
      submit_write ?req_id ?deadline t ~at ~bytes k
        (Node.Put (vlen_of_payload v))
  | Proto.Delete k -> submit_write ?req_id ?deadline t ~at ~bytes k Node.Delete
  | Proto.Scan (start, limit) -> fan_scan t ~at ~bytes ~start ~limit
  | Proto.Batch reqs ->
      let inner_hdr =
        Option.map (fun h -> { h with Proto.h_req_id = 0 }) hdr
      in
      let outcomes =
        List.map
          (fun r ->
            let hdr =
              Option.map
                (fun h -> { h with Proto.h_req_id = fresh_req_id t })
                inner_hdr
            in
            call ?hdr t ~at ~bytes:(Bytes.length (Proto.encode_request r)) r)
          reqs
      in
      { reply = Proto.Replies (List.map (fun o -> o.reply) outcomes);
        finish = List.fold_left (fun acc o -> max acc o.finish) at outcomes;
        acked = List.concat_map (fun o -> o.acked) outcomes;
        stamp = -1 }
