(* Rendezvous-hash (HRW) placement over a fixed set of virtual shards.

   Keys hash to one of [vshards] virtual shards; each virtual shard ranks
   every member node by a per-(vshard, node) hash score and is owned by
   the top [replicas] nodes.  HRW needs no token ring or rebalancing
   metadata: adding or removing a node moves exactly the 1/N slice of
   vshards whose top-score set changes, and every router computes the
   same owners from the member list alone.

   Migration overlays an explicit per-vshard owner override on top of the
   HRW ranking (set at cutover, so placement changes are deliberate and
   observable rather than emergent). *)

module Hash = Kv_common.Hash

type t = {
  vshards : int;
  replicas : int;
  mutable members : int list; (* sorted node ids *)
  overrides : (int, int list) Hashtbl.t; (* vshard -> explicit owners *)
}

let create ~vshards ~replicas ~nodes () =
  if vshards <= 0 then invalid_arg "Ring.create: vshards <= 0";
  if replicas <= 0 then invalid_arg "Ring.create: replicas <= 0";
  if List.length nodes < replicas then
    invalid_arg "Ring.create: fewer nodes than replicas";
  { vshards;
    replicas;
    members = List.sort_uniq compare nodes;
    overrides = Hashtbl.create 16 }

let vshards t = t.vshards
let replicas t = t.replicas
let members t = t.members

let add_node t id =
  if not (List.mem id t.members) then
    t.members <- List.sort compare (id :: t.members)

let remove_node t id = t.members <- List.filter (( <> ) id) t.members

(* keys are pre-mixed with a salt so vshard routing is independent of the
   store-internal shard hash (which uses the high bits of mix64 key) *)
let vshard_salt = 0x5DEECE66DL

let vshard_of t key =
  Hash.shard_of
    ~hash:(Hash.mix64 (Int64.logxor key vshard_salt))
    ~shards:t.vshards

let score ~vshard ~node =
  Hash.mix64
    (Int64.logxor
       (Hash.mix64 (Int64.of_int (vshard + 1)))
       (Hash.mix64 (Int64.of_int ((node + 1) * 0x9E3779B9))))

let preference t vshard =
  List.stable_sort
    (fun a b -> compare (score ~vshard ~node:b) (score ~vshard ~node:a))
    t.members

let set_override t ~vshard owners =
  if List.length owners <> t.replicas then
    invalid_arg "Ring.set_override: wrong owner count";
  Hashtbl.replace t.overrides vshard owners

let clear_override t ~vshard = Hashtbl.remove t.overrides vshard
let override t ~vshard = Hashtbl.find_opt t.overrides vshard

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let owners t vshard =
  match Hashtbl.find_opt t.overrides vshard with
  | Some o -> o
  | None -> take t.replicas (preference t vshard)

let owners_of_key t key = owners t (vshard_of t key)
