(* One cluster node: a full store instance plus the replication metadata
   the cluster layer needs on top of it.

   The store itself is unmodified — crashes, recovery, checksums and the
   device cost model all behave exactly as in single-node runs.  The node
   wrapper adds:

   - [versions]: per-key newest applied version stamp (DRAM).  Quorum
     reads compare stamps across replicas; applies are idempotent (an
     entry with a stamp <= the current one is skipped), which is what
     makes catch-up streaming and migration dual-writes safe to replay.

   - [stamps]: vlog location -> stamp, mirroring the store's value log.
     Stamps are assigned by the router's global sequencer and applied in
     stamp order, so the array is monotone over cluster-written locations
     — the durable floor and catch-up scans exploit that.

   Both are DRAM state: a node crash loses them (the array is truncated
   to the persisted log prefix, [versions] is rebuilt from it on rejoin),
   exactly as a real replica would rebuild its session state from its
   durable log. *)

module Clock = Pmem_sim.Clock
module Store_intf = Kv_common.Store_intf
module Vlog = Kv_common.Vlog
module Types = Kv_common.Types

type status = Up | Down | Syncing

let status_name = function
  | Up -> "up"
  | Down -> "down"
  | Syncing -> "syncing"

type action = Put of int | Delete

type t = {
  id : int;
  store : Store_intf.store;
  rx : Clock.t; (* the node's serialized service loop *)
  versions : (Types.key, int) Hashtbl.t;
  mutable stamps : int array; (* vlog loc -> stamp; -1 = non-cluster entry *)
  mutable nstamps : int;
  mutable status : status;
  mutable kills : int;
  mutable restart_ns : float; (* total simulated restart time across rejoins *)
  seen_reqs : (int, unit) Hashtbl.t; (* request ids already processed *)
  mutable dedup_hits : int;
}

let c_dedup = Obs.Counters.counter "node.dedup_hits"

let create ~id store =
  { id;
    store;
    rx = Clock.create ();
    versions = Hashtbl.create 4096;
    stamps = Array.make 4096 (-1);
    nstamps = 0;
    status = Up;
    kills = 0;
    restart_ns = 0.0;
    seen_reqs = Hashtbl.create 4096;
    dedup_hits = 0 }

let id t = t.id
let store t = t.store
let rx t = t.rx
let status t = t.status
let set_status t s = t.status <- s
let kills t = t.kills
let restart_ns t = t.restart_ns
let dedup_hits t = t.dedup_hits
let version t key = Hashtbl.find_opt t.versions key
let live_keys t = Hashtbl.length t.versions
let iter_versions t f = Hashtbl.iter f t.versions

let set_stamp t loc stamp =
  let cap = Array.length t.stamps in
  if loc >= cap then begin
    let grown = Array.make (max (cap * 2) (loc + 1)) (-1) in
    Array.blit t.stamps 0 grown 0 t.nstamps;
    t.stamps <- grown
  end;
  t.stamps.(loc) <- stamp;
  if loc >= t.nstamps then t.nstamps <- loc + 1

let stamp_at t loc = if loc < t.nstamps then t.stamps.(loc) else -1

(* Apply a stamped mutation.  Returns [false] (and charges nothing) when
   the node already holds this version or a newer one — catch-up and
   dual-write replays hit this path — or when the request id was already
   processed (a duplicated or retried delivery: the dedup guard that
   makes "ack after k retries applies exactly once" hold even before the
   stamp comparison could catch it). *)
let apply ?req_id t clock ~stamp key action =
  match req_id with
  | Some r when Hashtbl.mem t.seen_reqs r ->
      t.dedup_hits <- t.dedup_hits + 1;
      Obs.Counters.incr c_dedup;
      false
  | _ ->
  (match req_id with
  | Some r -> Hashtbl.replace t.seen_reqs r ()
  | None -> ());
  let cur = Option.value ~default:(-1) (Hashtbl.find_opt t.versions key) in
  if stamp <= cur then false
  else begin
    (match action with
    | Put vlen -> Store_intf.write t.store clock key (Sized vlen)
    | Delete -> Store_intf.delete t.store clock key);
    set_stamp t (Vlog.length (Store_intf.vlog t.store) - 1) stamp;
    Hashtbl.replace t.versions key stamp;
    true
  end

(* Grouped apply for catch-up streaming: the fresh puts in [entries]
   commit as one [write_batch] — one persist fence where the store has
   one — with stamps mapped onto the group's log locations in order.
   Deletes, and anything stale, take the single-op [apply] semantics.
   Returns how many entries were actually applied. *)
let apply_batch t clock entries =
  let applied = ref 0 in
  let cur key = Option.value ~default:(-1) (Hashtbl.find_opt t.versions key) in
  let pending = ref [] in
  (* newest pending stamp per key, so intra-group duplicates keep the
     same skip rule the sequential path has *)
  let pending_ver : (Types.key, int) Hashtbl.t = Hashtbl.create 16 in
  let effective key =
    max (cur key) (Option.value ~default:(-1) (Hashtbl.find_opt pending_ver key))
  in
  let flush_pending () =
    match List.rev !pending with
    | [] -> ()
    | group ->
      pending := [];
      Hashtbl.reset pending_ver;
      let vlog = Store_intf.vlog t.store in
      let base = Vlog.length vlog in
      Store_intf.write_batch t.store clock
        (List.map (fun (_, key, vlen) -> (key, Store_intf.Sized vlen)) group);
      List.iteri
        (fun i (stamp, key, _) ->
          set_stamp t (base + i) stamp;
          Hashtbl.replace t.versions key stamp;
          incr applied)
        group
  in
  List.iter
    (fun (stamp, key, action) ->
      if stamp > effective key then
        match action with
        | Put vlen ->
          pending := (stamp, key, vlen) :: !pending;
          Hashtbl.replace pending_ver key stamp
        | Delete ->
          (* order matters: anything buffered lands before the delete *)
          flush_pending ();
          if apply t clock ~stamp key Delete then incr applied)
    entries;
  flush_pending ();
  !applied

let read t clock key = Store_intf.read t.store clock key

(* Local space reclamation after a shard migrates away: a plain store
   delete, deliberately unstamped so it can never propagate through
   catch-up and delete live data on the shard's new owners. *)
let forget t clock key =
  Store_intf.delete t.store clock key;
  Hashtbl.remove t.versions key

(* -- crash / rejoin ------------------------------------------------- *)

let kill ?tear ~seed t =
  Fault.Node.kill ?tear ~seed t.store;
  t.status <- Down;
  t.kills <- t.kills + 1;
  (* the log dropped its unpersisted tail; locations above it will be
     reused, so the stamp mirror must forget them too *)
  t.nstamps <- min t.nstamps (Vlog.length (Store_intf.vlog t.store));
  Hashtbl.reset t.versions;
  (* the dedup table is DRAM session state: a crashed node cannot tell a
     retry from a fresh request — the stamp comparison still can *)
  Hashtbl.reset t.seen_reqs

(* Highest stamp the node is known to hold contiguously: the end of the
   longest non-decreasing stamped prefix of its log.  During normal
   service applies land in stamp order so this is simply the newest
   surviving stamp; if the node crashed mid-catch-up, replayed middle
   stamps interleave with fresh high ones and the prefix stops at the
   pre-crash data — a conservative floor, never an overstated one. *)
let durable_floor t =
  let floor = ref (-1) in
  (try
     for loc = 0 to t.nstamps - 1 do
       let s = t.stamps.(loc) in
       if s >= 0 then
         if s >= !floor then floor := s else raise Exit
     done
   with Exit -> ());
  !floor

let rejoin t clock =
  let dt = Fault.Node.rejoin t.store clock in
  t.restart_ns <- t.restart_ns +. dt;
  (* rebuild the version map from the surviving stamped log prefix;
     ascending location order means the last write per key wins, and a
     tombstone is a version like any other *)
  let vlog = Store_intf.vlog t.store in
  for loc = Vlog.head vlog to min t.nstamps (Vlog.length vlog) - 1 do
    if t.stamps.(loc) >= 0 then
      Hashtbl.replace t.versions (Vlog.key_at vlog loc) t.stamps.(loc)
  done;
  t.status <- Syncing;
  dt

(* Stream this node's stamped entries with stamp > [floor] to [f], in
   stamp order, charging honest log reads to [clock] (the peer serves
   catch-up from its own service loop).  Returns the number streamed. *)
let stream_since t clock ~floor f =
  let vlog = Store_intf.vlog t.store in
  Vlog.flush vlog clock;
  let streamed = ref 0 in
  for loc = Vlog.head vlog to min t.nstamps (Vlog.persisted vlog) - 1 do
    let stamp = t.stamps.(loc) in
    if stamp > floor then
      match Vlog.read vlog clock loc with
      | Ok (key, vlen) ->
          incr streamed;
          f ~stamp ~key ~action:(if vlen < 0 then Delete else Put vlen)
      | Error `Corrupt -> () (* damaged record: nothing trustworthy to ship *)
  done;
  !streamed
