(* Live shard migration: move one vshard from [m_from] to [m_to] without
   a service gap.

   Three stages, all under load:

   1. Dual-write ([start]): the destination is registered as an extra
      write target for the vshard, so every new write lands on it as
      well as on the current owners.  Reads still go to the old owners
      only — the destination is not yet authoritative.

   2. Copy ([step], chunked): the source walks a snapshot of its keys in
      the vshard, reads each through its real read path and applies it
      to the destination with the key's current stamp.  The per-node
      version check makes copy and dual-write commute: whichever lands
      second is a no-op, so no ordering coordination is needed.

   3. Cutover + cleanup: once the copy cursor drains, the ring's owner
      list swaps [m_from] for [m_to] (an explicit override) and the
      dual-write registration is dropped.  The router's route cache is
      deliberately left stale: the next request for the vshard bounces
      off the old owner with [Not_owner] and is retried — one observable
      redirect, never a wrong answer.  [cleanup_step] then reclaims the
      moved keys on the source with unstamped local deletes. *)

module Types = Kv_common.Types

type phase = Copying | Serving | Cleaned

type t = {
  m_vshard : int;
  m_from : int;
  m_to : int;
  m_keys : Types.key array; (* snapshot of the source's keys in the vshard *)
  mutable m_cursor : int;
  mutable m_cleanup : int; (* second cursor, for source cleanup *)
  mutable m_copied : int;
  mutable m_stalls : int; (* copy ticks skipped: src/dst partitioned *)
  mutable m_phase : phase;
}

let vshard t = t.m_vshard
let from_node t = t.m_from
let to_node t = t.m_to
let phase t = t.m_phase
let copied t = t.m_copied
let stalls t = t.m_stalls
let total t = Array.length t.m_keys

let start router ~vshard ~from_ ~to_ =
  let ring = Router.ring router in
  let owners = Ring.owners ring vshard in
  if not (List.mem from_ owners) then
    invalid_arg "Migration.start: source does not own the vshard";
  if List.mem to_ owners then
    invalid_arg "Migration.start: destination already owns the vshard";
  Router.add_dual router ~vshard to_;
  let src = Router.node router from_ in
  let keys = ref [] in
  Node.iter_versions src (fun key _ ->
      if Ring.vshard_of ring key = vshard then keys := key :: !keys);
  let arr = Array.of_list !keys in
  Array.sort compare arr; (* deterministic copy order *)
  { m_vshard = vshard;
    m_from = from_;
    m_to = to_;
    m_keys = arr;
    m_cursor = 0;
    m_cleanup = 0;
    m_copied = 0;
    m_stalls = 0;
    m_phase = Copying }

let cutover router t =
  let ring = Router.ring router in
  let owners =
    List.map
      (fun nid -> if nid = t.m_from then t.m_to else nid)
      (Ring.owners ring t.m_vshard)
  in
  Ring.set_override ring ~vshard:t.m_vshard owners;
  Router.remove_dual router ~vshard:t.m_vshard t.m_to;
  (* route cache left stale on purpose: the next request redirects *)
  t.m_phase <- Serving

(* Copy up to [chunk] keys; on drain, cut over.  Returns [true] once the
   vshard is serving from the destination. *)
let step router t ~now ~chunk =
  match t.m_phase with
  | Serving | Cleaned -> true
  | Copying
    when (match Router.netem router with
         | None -> false
         | Some nm ->
             not
               (Fault.Netem.reachable nm ~now ~src:(Fault.Netem.Node t.m_from)
                  ~dst:(Fault.Netem.Node t.m_to))) ->
      (* copy stream cut by a partition: stall this tick and retry —
         dual-writes keep landing (or failing observably) through the
         router, so cutover simply waits for the link to heal *)
      t.m_stalls <- t.m_stalls + 1;
      false
  | Copying ->
      let src = Router.node router t.m_from
      and dst = Router.node router t.m_to in
      let srx = Node.rx src and drx = Node.rx dst in
      ignore (Pmem_sim.Clock.wait_until srx now);
      ignore (Pmem_sim.Clock.wait_until drx now);
      let budget = ref chunk in
      let module S = Kv_common.Store_intf in
      while !budget > 0 && t.m_cursor < Array.length t.m_keys do
        let key = t.m_keys.(t.m_cursor) in
        t.m_cursor <- t.m_cursor + 1;
        decr budget;
        match Node.version src key with
        | None -> () (* forgotten since the snapshot *)
        | Some stamp -> (
            (* a real read on the source, a real write on the dest *)
            match Node.read src srx key with
            | { S.stage = S.Corrupt; _ } -> () (* scrub territory, skip *)
            | { S.loc = Some loc; _ } ->
                let vlen =
                  Kv_common.Vlog.vlen_at (S.vlog (Node.store src)) loc
                in
                if Node.apply dst drx ~stamp key (Node.Put vlen) then
                  t.m_copied <- t.m_copied + 1
            | { S.loc = None; _ } ->
                (* tombstoned key: ship the deletion at its stamp *)
                if Node.apply dst drx ~stamp key Node.Delete then
                  t.m_copied <- t.m_copied + 1)
      done;
      if t.m_cursor >= Array.length t.m_keys then cutover router t;
      t.m_phase <> Copying

(* Reclaim up to [chunk] moved keys on the source (unstamped local
   deletes).  Returns [true] when cleanup is done. *)
let cleanup_step router t ~now ~chunk =
  match t.m_phase with
  | Copying -> false
  | Cleaned -> true
  | Serving ->
      let src = Router.node router t.m_from in
      let srx = Node.rx src in
      ignore (Pmem_sim.Clock.wait_until srx now);
      let budget = ref chunk in
      while !budget > 0 && t.m_cleanup < Array.length t.m_keys do
        let key = t.m_keys.(t.m_cleanup) in
        t.m_cleanup <- t.m_cleanup + 1;
        decr budget;
        if Node.version src key <> None then Node.forget src srx key
      done;
      if t.m_cleanup >= Array.length t.m_keys then t.m_phase <- Cleaned;
      t.m_phase = Cleaned
