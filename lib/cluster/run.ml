(* Discrete-event cluster runs: open-loop (and optionally closed-loop)
   load through the router, interleaved with scripted fault and
   migration events, under one global virtual time.

   The loop merges three time-ordered sources — the pre-computed arrival
   schedule (encoded [Proto] frames, decoded here per connection), the
   closed-loop connections' next-issue times, and an internal queue of
   continuation events (catch-up chunks, migration copy/cleanup chunks,
   scripted kills/rejoins/migrations) — and processes whichever is
   earliest.  Latency is measured from intended arrival time, so queueing
   behind a recovering node or a migration copy burst is visible (no
   coordinated omission).

   A DRAM oracle records every quorum-ACKED mutation (key, stamp,
   action).  Failed writes apply nowhere by construction, so the oracle
   is exact: at the end of the run {!divergence} asserts that every [Up]
   owner of every acked key agrees with it — the "no acked write lost,
   no replica divergence" check the cluster experiments gate on. *)

module Clock = Pmem_sim.Clock
module Histogram = Metrics.Histogram
module Proto = Service.Proto
module Server = Service.Server
module Types = Kv_common.Types
module S = Kv_common.Store_intf

type event =
  | Kill of int
  | Rejoin of int
  | Migrate of { vshard : int; from_ : int; to_ : int }

type timed = { at : float; ev : event }

type window = {
  w_start : float;
  mutable w_gets : int;
  mutable w_puts : int;
  mutable w_errs : int;
  w_get_h : Histogram.t;
  w_put_h : Histogram.t;
}

(* Full invocation history for the partition-aware audit: every single-op
   write (acked or not, with its minted stamp) and every single-op read
   (with the stamp of the version it answered from).  Batches and scans
   are not recorded — the chaos workloads issue single ops only, which is
   what makes the issued-stamp upper bound in {!history_check} sound. *)
type hist_ev =
  | H_write of {
      hw_at : float;      (* issue (intended arrival) time *)
      hw_fin : float;     (* client-side completion *)
      hw_key : Types.key;
      hw_stamp : int;     (* minted stamp, even when unacked *)
      hw_acked : bool;
    }
  | H_read of {
      hr_at : float;
      hr_fin : float;
      hr_key : Types.key;
      hr_stamp : int;     (* version the answer came from; -1 = none *)
      hr_ok : bool;       (* false for Err replies *)
    }

type result = {
  r_reqs : int;           (* frames processed *)
  r_ops : int;            (* primitive ops (batches expanded) *)
  r_errs : int;           (* Err replies (quorum / unavailable) *)
  r_corrupt_conns : int;  (* connections dropped on a corrupt frame *)
  r_end_ns : float;       (* completion of the last request *)
  r_get_h : Histogram.t;
  r_put_h : Histogram.t;
  r_windows : window list;
  r_catchups : Membership.catchup list; (* completed, newest last *)
  r_migrations : Migration.t list;
  r_acked : int;          (* oracle size: distinct quorum-acked keys *)
  r_history : hist_ev list; (* issue order; [] unless [record_history] *)
}

(* oracle: key -> (stamp, expected liveness, expected vlen) *)
type oracle = (Types.key, int * Node.action) Hashtbl.t

let oracle () : oracle = Hashtbl.create 65536

let oracle_note (orc : oracle) acked =
  List.iter
    (fun (key, stamp, action) ->
      match Hashtbl.find_opt orc key with
      | Some (s, _) when s >= stamp -> ()
      | _ -> Hashtbl.replace orc key (stamp, action))
    acked

(* Preload through the router: sequential stamped, replicated writes, so
   every replica starts with its owned slice and the oracle knows the
   whole universe. *)
let preload router (orc : oracle) ~n_keys ~vlen =
  let t = ref 0.0 in
  let payload = Bytes.create vlen in
  let bytes =
    Bytes.length (Proto.encode_request (Proto.Put (1L, payload)))
  in
  for i = 0 to n_keys - 1 do
    let key = Workload.Keyspace.key_of_index i in
    let o = Router.submit_write router ~at:!t ~bytes key (Node.Put vlen) in
    (match o.Router.reply with
    | Proto.Ok -> ()
    | r -> Format.kasprintf failwith "preload refused: %a" Proto.pp_reply r);
    oracle_note orc o.Router.acked;
    t := o.Router.finish
  done;
  !t

type cfg = {
  window_ns : float;     (* latency-timeline bucket width *)
  chunk : int;           (* catch-up / migration entries per tick *)
  tick_ns : float;       (* pacing between chunks *)
  seed : int;            (* tear seed for kills *)
}

let default_cfg =
  { window_ns = 2e6; chunk = 1024; tick_ns = 50_000.0; seed = 1 }

type internal =
  | Ext of event
  | Catchup_tick of Membership.catchup
  | Migrate_tick of Migration.t
  | Cleanup_tick of Migration.t

let run ?(cfg = default_cfg) ?(start_at = 0.0) ?(arrivals = [||]) ?closed
    ?(record_history = false) ~events router (orc : oracle) =
  let pending = ref (List.map (fun t -> (t.at, Ext t.ev)) events) in
  let sort_pending () =
    pending := List.sort (fun (a, _) (b, _) -> compare a b) !pending
  in
  sort_pending ();
  let push at it =
    pending :=
      List.merge
        (fun (a, _) (b, _) -> compare a b)
        !pending
        [ (at, it) ]
  in
  (* closed-loop connections: next issue time per conn, None = done *)
  let n_closed = match closed with Some c -> c.Server.conns | None -> 0 in
  let closed_next = Array.make (max n_closed 1) (Some start_at) in
  if n_closed = 0 then closed_next.(0) <- None;
  let decoders : (int, Proto.decoder) Hashtbl.t = Hashtbl.create 64 in
  let decoder_for conn =
    match Hashtbl.find_opt decoders conn with
    | Some d -> d
    | None ->
        let d = Proto.decoder () in
        Hashtbl.add decoders conn d;
        d
  in
  let windows : (int, window) Hashtbl.t = Hashtbl.create 256 in
  let window_at at =
    let idx = int_of_float (at /. cfg.window_ns) in
    match Hashtbl.find_opt windows idx with
    | Some w -> w
    | None ->
        let w =
          { w_start = float_of_int idx *. cfg.window_ns;
            w_gets = 0;
            w_puts = 0;
            w_errs = 0;
            w_get_h = Histogram.create ();
            w_put_h = Histogram.create () }
        in
        Hashtbl.add windows idx w;
        w
  in
  let get_h = Histogram.create () and put_h = Histogram.create () in
  let reqs = ref 0
  and ops = ref 0
  and errs = ref 0
  and corrupt = ref 0
  and end_ns = ref 0.0 in
  let catchups = ref [] and migrations = ref [] in
  let history = ref [] in
  let rec is_err = function
    | Proto.Err _ -> true
    | Proto.Replies rs -> List.exists is_err rs
    | _ -> false
  in
  let submit_one ?hdr ~at ~bytes req =
    incr reqs;
    ops := !ops + Proto.ops_in_req req;
    let o = Router.call ?hdr router ~at ~bytes req in
    oracle_note orc o.Router.acked;
    if record_history then begin
      match req with
      | Proto.Put (k, _) | Proto.Delete k ->
          history :=
            H_write
              { hw_at = at; hw_fin = o.Router.finish; hw_key = k;
                hw_stamp = o.Router.stamp; hw_acked = o.Router.acked <> [] }
            :: !history
      | Proto.Get k ->
          history :=
            H_read
              { hr_at = at; hr_fin = o.Router.finish; hr_key = k;
                hr_stamp = o.Router.stamp;
                hr_ok = not (is_err o.Router.reply) }
            :: !history
      | Proto.Scan _ | Proto.Batch _ -> ()
    end;
    let lat = o.Router.finish -. at in
    let w = window_at at in
    if Proto.puts_in_req req > 0 then begin
      Histogram.record put_h lat;
      Histogram.record w.w_put_h lat;
      w.w_puts <- w.w_puts + 1
    end
    else begin
      Histogram.record get_h lat;
      Histogram.record w.w_get_h lat;
      w.w_gets <- w.w_gets + 1
    end;
    if is_err o.Router.reply then begin
      incr errs;
      w.w_errs <- w.w_errs + 1
    end;
    if o.Router.finish > !end_ns then end_ns := o.Router.finish;
    o.Router.finish
  in
  let handle_arrival (a : Server.arrival) =
    let d = decoder_for a.Server.conn in
    Proto.feed_bytes d a.Server.frame;
    let rec drain () =
      match Proto.next d with
      | `Await -> ()
      | `Corrupt _ ->
          incr corrupt;
          Hashtbl.replace decoders a.Server.conn (Proto.decoder ())
      | `Msg (Proto.Reply _) ->
          incr corrupt;
          Hashtbl.replace decoders a.Server.conn (Proto.decoder ())
      | `Msg (Proto.Request req) ->
          ignore
            (submit_one ~at:a.Server.at
               ~bytes:(Bytes.length a.Server.frame)
               req);
          drain ()
      | `Msg (Proto.Tagged (hdr, req)) ->
          ignore
            (submit_one ~hdr ~at:a.Server.at
               ~bytes:(Bytes.length a.Server.frame)
               req);
          drain ()
    in
    drain ()
  in
  let handle_internal now = function
    | Ext (Kill nid) -> Membership.kill ~seed:(cfg.seed + nid) router nid
    | Ext (Rejoin nid) ->
        let cu = Membership.start_rejoin router ~now nid in
        push (now +. cfg.tick_ns) (Catchup_tick cu)
    | Ext (Migrate { vshard; from_; to_ }) ->
        let m = Migration.start router ~vshard ~from_ ~to_ in
        migrations := !migrations @ [ m ];
        push (now +. cfg.tick_ns) (Migrate_tick m)
    | Catchup_tick cu ->
        if Membership.step router cu ~now ~chunk:cfg.chunk then
          catchups := !catchups @ [ cu ]
        else push (now +. cfg.tick_ns) (Catchup_tick cu)
    | Migrate_tick m ->
        if Migration.step router m ~now ~chunk:cfg.chunk then
          push (now +. cfg.tick_ns) (Cleanup_tick m)
        else push (now +. cfg.tick_ns) (Migrate_tick m)
    | Cleanup_tick m ->
        if not (Migration.cleanup_step router m ~now ~chunk:cfg.chunk) then
          push (now +. cfg.tick_ns) (Cleanup_tick m)
  in
  let handle_closed conn now =
    match closed with
    | None -> closed_next.(conn) <- None
    | Some c -> (
        match c.Server.gen ~conn ~now with
        | None -> closed_next.(conn) <- None
        | Some req ->
            let bytes = Bytes.length (Proto.encode_request req) in
            let fin = submit_one ~at:now ~bytes req in
            closed_next.(conn) <- Some fin)
  in
  let ai = ref 0 in
  let next_closed () =
    let best = ref None in
    for c = 0 to n_closed - 1 do
      match (closed_next.(c), !best) with
      | Some t, Some (_, bt) when t < bt -> best := Some (c, t)
      | Some t, None -> best := Some (c, t)
      | _ -> ()
    done;
    !best
  in
  let rec loop () =
    let arr =
      if !ai < Array.length arrivals then
        Some arrivals.(!ai).Server.at
      else None
    in
    let pend = match !pending with (t, _) :: _ -> Some t | [] -> None in
    let clsd = next_closed () in
    let min3 =
      List.fold_left
        (fun acc x ->
          match (acc, x) with
          | None, v -> v
          | v, None -> v
          | Some a, Some b -> if b < a then Some b else Some a)
        None
        [ arr; pend; Option.map snd clsd ]
    in
    match min3 with
    | None -> ()
    | Some t ->
        (if arr = Some t then begin
           handle_arrival arrivals.(!ai);
           incr ai
         end
         else if pend = Some t then begin
           match !pending with
           | (_, it) :: rest ->
               pending := rest;
               handle_internal t it
           | [] -> assert false
         end
         else
           match clsd with
           | Some (c, _) -> handle_closed c t
           | None -> assert false);
        loop ()
  in
  loop ();
  let ws =
    List.sort
      (fun a b -> compare a.w_start b.w_start)
      (Hashtbl.fold (fun _ w acc -> w :: acc) windows [])
  in
  { r_reqs = !reqs;
    r_ops = !ops;
    r_errs = !errs;
    r_corrupt_conns = !corrupt;
    r_end_ns = !end_ns;
    r_get_h = get_h;
    r_put_h = put_h;
    r_windows = ws;
    r_catchups = !catchups;
    r_migrations = !migrations;
    r_acked = Hashtbl.length orc;
    r_history = List.rev !history }

(* -- divergence check ----------------------------------------------- *)

type mismatch = {
  mm_key : Types.key;
  mm_node : int;
  mm_expected : string;
  mm_got : string;
}

(* Audit every quorum-acked key against every [Up] owner: presence must
   match the oracle's last acked action, and a present value must carry
   the acked length.  Probe reads run on throwaway clocks after the run,
   so the audit charges nothing to the service loops. *)
let divergence router (orc : oracle) =
  let ring = Router.ring router in
  let probes =
    Array.map (fun n -> Clock.copy (Node.rx n)) (Router.nodes router)
  in
  let mismatches = ref [] and checked = ref 0 in
  Hashtbl.iter
    (fun key (_stamp, action) ->
      List.iter
        (fun nid ->
          let n = Router.node router nid in
          if Node.status n = Node.Up then begin
            incr checked;
            let r = Node.read n probes.(nid) key in
            let got =
              match r with
              | { S.stage = S.Corrupt; _ } -> "corrupt"
              | { S.loc = Some loc; _ } ->
                  Printf.sprintf "present(%d)"
                    (Kv_common.Vlog.vlen_at (S.vlog (Node.store n)) loc)
              | { S.loc = None; _ } -> "absent"
            in
            let expected =
              match action with
              | Node.Put vlen -> Printf.sprintf "present(%d)" vlen
              | Node.Delete -> "absent"
            in
            if got <> expected then
              mismatches :=
                { mm_key = key; mm_node = nid; mm_expected = expected;
                  mm_got = got }
                :: !mismatches
          end)
        (Ring.owners_of_key ring key))
    orc;
  (!checked, List.rev !mismatches)

(* Scan-path audit: one router fan-out over the whole keyspace must
   reproduce exactly the oracle's live Put set, in ascending key order,
   with the acked value lengths.  Runs through the real [Router.call] scan
   path after the run, so its node-side scan costs land past the measured
   window.  [mm_node] is -1: a scan mismatch is a router-level divergence,
   not attributable to one replica. *)
let scan_divergence router (orc : oracle) =
  let expected =
    List.sort
      (fun (a, _) (b, _) -> Types.key_compare a b)
      (Hashtbl.fold
         (fun key (_stamp, action) acc ->
           match action with
           | Node.Put vlen -> (key, vlen) :: acc
           | Node.Delete -> acc)
         orc [])
  in
  let limit = max 1 (List.length expected) in
  let o = Router.call router ~at:0.0 ~bytes:0 (Proto.Scan (0L, limit)) in
  let got =
    match o.Router.reply with
    | Proto.Values vs -> List.map (fun (k, vlen, _) -> (k, vlen)) vs
    | _ -> []
  in
  let present vlen = Printf.sprintf "present(%d)" vlen in
  let mismatches = ref [] in
  let note mm = mismatches := mm :: !mismatches in
  let rec walk exp got =
    match (exp, got) with
    | [], [] -> ()
    | (k, vlen) :: e, [] ->
      note
        { mm_key = k; mm_node = -1; mm_expected = present vlen;
          mm_got = "absent" };
      walk e []
    | [], (k, vlen) :: g ->
      note
        { mm_key = k; mm_node = -1; mm_expected = "absent";
          mm_got = present vlen };
      walk [] g
    | ((ke, ve) :: e as exp'), ((kg, vg) :: g as got') ->
      let c = Types.key_compare ke kg in
      if c = 0 then begin
        if ve <> vg then
          note
            { mm_key = ke; mm_node = -1; mm_expected = present ve;
              mm_got = present vg };
        walk e g
      end
      else if c < 0 then begin
        note
          { mm_key = ke; mm_node = -1; mm_expected = present ve;
            mm_got = "absent" };
        walk e got'
      end
      else begin
        note
          { mm_key = kg; mm_node = -1; mm_expected = "absent";
            mm_got = present vg };
        walk exp' g
      end
  in
  walk expected got;
  (List.length expected, List.rev !mismatches)

(* -- partition-aware audits ------------------------------------------ *)

(* Under message loss and partitions the exact-presence audit above is
   too strong: a write that timed out unacked may still have landed on a
   minority of owners, so a replica can legitimately hold a NEWER version
   than the oracle's last acked one.  What must still hold on every [Up]
   owner of every acked key, after partitions heal and catch-up
   completes:

   - version >= the acked stamp (an acked write is never lost), and
   - when the versions are equal, the stored effect matches the acked
     action (presence and value length).

   A strictly newer version is counted as [residue] — unacked-write
   residue, legal and reported, never a failure by itself. *)
let chaos_divergence router (orc : oracle) =
  let ring = Router.ring router in
  let probes =
    Array.map (fun n -> Clock.copy (Node.rx n)) (Router.nodes router)
  in
  let mismatches = ref [] and checked = ref 0 and residue = ref 0 in
  Hashtbl.iter
    (fun key (stamp, action) ->
      List.iter
        (fun nid ->
          let n = Router.node router nid in
          if Node.status n = Node.Up then begin
            incr checked;
            let ver = Option.value ~default:(-1) (Node.version n key) in
            if ver > stamp then incr residue
            else if ver < stamp then
              mismatches :=
                { mm_key = key; mm_node = nid;
                  mm_expected = Printf.sprintf "stamp >= %d" stamp;
                  mm_got = Printf.sprintf "stamp %d (acked write lost)" ver }
                :: !mismatches
            else begin
              let r = Node.read n probes.(nid) key in
              let got =
                match r with
                | { S.stage = S.Corrupt; _ } -> "corrupt"
                | { S.loc = Some loc; _ } ->
                    Printf.sprintf "present(%d)"
                      (Kv_common.Vlog.vlen_at (S.vlog (Node.store n)) loc)
                | { S.loc = None; _ } -> "absent"
              in
              let expected =
                match action with
                | Node.Put vlen -> Printf.sprintf "present(%d)" vlen
                | Node.Delete -> "absent"
              in
              if got <> expected then
                mismatches :=
                  { mm_key = key; mm_node = nid; mm_expected = expected;
                    mm_got = got }
                  :: !mismatches
            end
          end)
        (Ring.owners_of_key ring key))
    orc;
  (!checked, !residue, List.rev !mismatches)

(* Client-observable consistency over the recorded history:

   - acked writes to one key carry strictly increasing stamps in issue
     order (the global sequencer mints in issue order, so a violation
     means an ack was forged or replayed);

   - every OK read answered from a stamp at least as new as the newest
     acked write to that key that FINISHED before the read was issued
     (no stale read under real-time order), and no newer than the
     newest stamp ISSUED to that key before the read finished (no
     phantom version).  Keys the history never wrote are skipped —
     their preload stamps are not recorded, so neither bound is known.

   Sound when the workload issues single ops only (see {!hist_ev}) and
   the write quorum covers all replicas, which is how the chaos gates
   configure the cluster. *)
let history_check (history : hist_ev list) =
  let by_key : (Types.key, hist_ev list ref) Hashtbl.t =
    Hashtbl.create 4096
  in
  let writes_of key =
    match Hashtbl.find_opt by_key key with
    | Some l -> List.rev !l
    | None -> []
  in
  let reads_checked = ref 0 and violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let last_acked : (Types.key, int) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (function
      | H_write w ->
          (if w.hw_acked then begin
             (match Hashtbl.find_opt last_acked w.hw_key with
             | Some s when w.hw_stamp <= s ->
                 note "key %Ld: acked stamp %d issued after acked %d"
                   w.hw_key w.hw_stamp s
             | _ -> ());
             Hashtbl.replace last_acked w.hw_key w.hw_stamp
           end);
          (match Hashtbl.find_opt by_key w.hw_key with
          | Some l -> l := H_write w :: !l
          | None -> Hashtbl.add by_key w.hw_key (ref [ H_write w ]))
      | H_read r ->
          if r.hr_ok then begin
            match writes_of r.hr_key with
            | [] -> () (* only preload wrote it: bounds unknown *)
            | ws ->
                incr reads_checked;
                let lo, hi =
                  List.fold_left
                    (fun (lo, hi) ev ->
                      match ev with
                      | H_write w ->
                          ( (if w.hw_acked && w.hw_fin <= r.hr_at then
                               max lo w.hw_stamp
                             else lo),
                            if w.hw_at <= r.hr_fin then max hi w.hw_stamp
                            else hi )
                      | H_read _ -> (lo, hi))
                    (-1, -1) ws
                in
                if r.hr_stamp < lo then
                  note
                    "key %Ld: read issued at %.0f saw stamp %d, acked %d \
                     had finished (stale read)"
                    r.hr_key r.hr_at r.hr_stamp lo;
                if hi >= 0 && r.hr_stamp > hi then
                  note
                    "key %Ld: read finished at %.0f saw stamp %d, newest \
                     issued was %d (phantom version)"
                    r.hr_key r.hr_fin r.hr_stamp hi
          end)
    history;
  (!reads_checked, List.rev !violations)
