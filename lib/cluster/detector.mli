(** Per-node accrual-style failure detection for the defensive RPC path.

    Every RPC outcome feeds it: an ack decays the node's suspicion score
    (and, when the round-trip was within the normal band, updates the
    cluster-wide latency statistics), a timeout accrues it.  A node whose
    score crosses the threshold is {e suspected} — the router prefers
    other replicas for reads ({!Router}'s route-around) until catch-up or
    recovering latency clears it.  A fail-slow node accrues too: acks
    slower than [slow_ratio] times the running mean bump the score, so
    gray failures are suspected without a single timeout.

    The normal-band round-trip histogram doubles as the hedge-delay
    estimator: {!rtt_p99} is the p99 a healthy replica should beat, and a
    read still unanswered past it is worth hedging to another replica. *)

type t

val create : ?threshold:float -> ?slow_ratio:float -> n:int -> unit -> t
(** [n] nodes, all unsuspected.  [threshold] (default 2.0) is the
    suspicion score at which a node counts as suspected; [slow_ratio]
    (default 4.0) is the multiple of the running mean round-trip beyond
    which an ack is treated as a slow-path signal rather than as normal
    latency. *)

val observe_ack : t -> node:int -> rtt_ns:float -> unit
val observe_timeout : t -> node:int -> unit

val score : t -> node:int -> float
val suspected : t -> node:int -> bool

val clear : t -> node:int -> unit
(** Forget the node's suspicion (called when it finishes catch-up). *)

val rtt_p99 : t -> float
(** p99 of normal-band round trips across the cluster; 0 before any ack.
    The router's hedge delay is [max hedge_floor (rtt_p99)]. *)

val suspicions : t -> int
(** Upward threshold crossings (also counted as
    [detector.suspicions]). *)
