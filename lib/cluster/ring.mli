(** Rendezvous-hash (HRW) placement over a fixed set of virtual shards.

    A key hashes to one of {!vshards} virtual shards; each virtual shard
    is owned by the {!replicas} member nodes with the highest
    per-(vshard, node) hash scores.  Placement is a pure function of the
    member list, so every router and node computes identical owners with
    no shared metadata; an explicit per-vshard override (set by migration
    at cutover) takes precedence over the HRW ranking. *)

type t

val create : vshards:int -> replicas:int -> nodes:int list -> unit -> t
(** Raises [Invalid_argument] on non-positive sizes or fewer nodes than
    replicas. *)

val vshards : t -> int
val replicas : t -> int

val members : t -> int list
(** Current member node ids, sorted. *)

val add_node : t -> int -> unit
val remove_node : t -> int -> unit

val vshard_of : t -> Kv_common.Types.key -> int
(** The virtual shard owning [key], in [0, vshards).  Salted so it is
    independent of the store-internal shard hash. *)

val preference : t -> int -> int list
(** All members ranked by HRW score for the given vshard (descending). *)

val owners : t -> int -> int list
(** The [replicas] owners of a vshard: the override when one is set,
    otherwise the HRW top-[replicas] prefix of {!preference}. *)

val owners_of_key : t -> Kv_common.Types.key -> int list

val set_override : t -> vshard:int -> int list -> unit
(** Pin a vshard's owner list (migration cutover).  Raises
    [Invalid_argument] unless exactly [replicas] owners are given. *)

val clear_override : t -> vshard:int -> unit
val override : t -> vshard:int -> int list option
