(* Accrual-style failure detection.

   One float score per node: timeouts add a full point, acks halve it.
   An ack slower than [slow_ratio] times the running-mean round trip
   still halves the score but adds 1.25 back, so sustained slow service
   converges to 2.5 — past the default threshold after three slow acks
   (the fail-slow signal) — while an isolated straggler decays away.  Only normal-band
   acks update the mean and the histogram, so a fail-slow episode cannot
   drag the hedge-delay estimate up to its own inflated latency. *)

module Histogram = Metrics.Histogram

type t = {
  scores : float array;
  threshold : float;
  slow_ratio : float;
  mutable mean_rtt : float; (* EWMA of normal-band acks; 0 = no ack yet *)
  hist : Histogram.t; (* normal-band round trips, cluster-wide *)
  mutable suspicions : int;
}

let c_suspicions = Obs.Counters.counter "detector.suspicions"
let c_slow_acks = Obs.Counters.counter "detector.slow_acks"

let create ?(threshold = 2.0) ?(slow_ratio = 4.0) ~n () =
  if n < 1 then invalid_arg "Detector.create";
  { scores = Array.make n 0.0;
    threshold;
    slow_ratio;
    mean_rtt = 0.0;
    hist = Histogram.create ();
    suspicions = 0 }

let score t ~node = t.scores.(node)
let suspected t ~node = t.scores.(node) >= t.threshold
let suspicions t = t.suspicions
let rtt_p99 t = Histogram.percentile t.hist 99.0

let note_crossing t node was =
  if (not was) && suspected t ~node then begin
    t.suspicions <- t.suspicions + 1;
    Obs.Counters.incr c_suspicions
  end

let observe_ack t ~node ~rtt_ns =
  let was = suspected t ~node in
  let slow = t.mean_rtt > 0.0 && rtt_ns > t.slow_ratio *. t.mean_rtt in
  if slow then begin
    t.scores.(node) <- (t.scores.(node) /. 2.0) +. 1.25;
    Obs.Counters.incr c_slow_acks
  end
  else begin
    t.scores.(node) <- t.scores.(node) /. 2.0;
    t.mean_rtt <-
      (if t.mean_rtt = 0.0 then rtt_ns
       else (0.98 *. t.mean_rtt) +. (0.02 *. rtt_ns));
    Histogram.record t.hist rtt_ns
  end;
  note_crossing t node was

let observe_timeout t ~node =
  let was = suspected t ~node in
  t.scores.(node) <- t.scores.(node) +. 1.0;
  note_crossing t node was

let clear t ~node = t.scores.(node) <- 0.0
