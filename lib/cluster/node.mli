(** One cluster node: an unmodified store instance plus the DRAM
    replication metadata the cluster layer keeps about it — a per-key
    version map (for quorum reads and idempotent applies) and a vlog
    location -> stamp mirror (for the durable floor and catch-up
    streaming).  A node crash loses both; rejoin rebuilds them from the
    surviving persisted log prefix. *)

type status =
  | Up
  | Down     (** crashed; owns its vshards on paper but serves nothing *)
  | Syncing  (** recovered and accepting writes, not yet read-serving *)

val status_name : status -> string

type action = Put of int | Delete

type t

val create : id:int -> Kv_common.Store_intf.store -> t

val id : t -> int
val store : t -> Kv_common.Store_intf.store

val rx : t -> Pmem_sim.Clock.t
(** The node's serialized service loop — all request execution, catch-up
    serving and migration copy work charge here, so they compete. *)

val status : t -> status
val set_status : t -> status -> unit

val kills : t -> int
val restart_ns : t -> float

val version : t -> Kv_common.Types.key -> int option
(** Newest stamp applied for [key] ([None] if the node never saw it). *)

val live_keys : t -> int

val iter_versions :
  t -> (Kv_common.Types.key -> int -> unit) -> unit
(** Iterate the per-key version map (order unspecified). *)

val stamp_at : t -> Kv_common.Types.loc -> int
(** Stamp recorded for a vlog location; -1 for non-cluster entries. *)

val apply :
  ?req_id:int ->
  t -> Pmem_sim.Clock.t -> stamp:int -> Kv_common.Types.key -> action -> bool
(** Apply a stamped mutation through the store's real write path.
    Returns [false] without charging when the node already holds this
    version or newer (idempotent replay for catch-up and dual-writes), or
    when [req_id] was already processed — the request-id dedup that makes
    duplicated deliveries and router retries apply exactly once.  The
    dedup table is DRAM session state (lost on {!kill}); the stamp
    comparison remains the durable idempotence guard. *)

val dedup_hits : t -> int
(** Deliveries skipped by the request-id dedup table (also counted as
    [node.dedup_hits]). *)

val apply_batch :
  t -> Pmem_sim.Clock.t ->
  (int * Kv_common.Types.key * action) list -> int
(** Apply a group of stamped [(stamp, key, action)] mutations in list
    order.  Runs of fresh puts commit through {!STORE.write_batch} — one
    persist fence where the store has one — with stamps mapped onto the
    group's log locations; deletes and stale entries keep the single-op
    {!apply} semantics.  Returns how many were actually applied. *)

val read :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  Kv_common.Store_intf.read_result

val forget : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
(** Local, unstamped delete (migration source cleanup): removes the key
    from the store and the version map without minting a version, so the
    tombstone can never propagate through catch-up. *)

val kill : ?tear:bool -> seed:int -> t -> unit
(** Crash the node through {!Fault.Node.kill} (torn tail writes by
    default): status [Down], version map lost, stamp mirror truncated to
    the surviving persisted log prefix. *)

val durable_floor : t -> int
(** Highest stamp surviving in the node's persisted log (-1 if none) —
    the catch-up floor after a crash. *)

val rejoin : t -> Pmem_sim.Clock.t -> float
(** Recover the store ({!Fault.Node.rejoin}), rebuild the version map
    from the stamped log prefix, and enter [Syncing].  Returns the
    simulated restart time (ns). *)

val stream_since :
  t -> Pmem_sim.Clock.t -> floor:int ->
  (stamp:int -> key:Kv_common.Types.key -> action:action -> unit) -> int
(** Stream this node's stamped, persisted entries with stamp > [floor]
    in stamp order, charging honest log reads to [clock].  Returns the
    count streamed.  The rejoin path calls this on a live peer. *)
