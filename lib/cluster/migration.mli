(** Live shard migration: move one vshard between nodes under load.

    {!start} registers the destination as a dual-write target and
    snapshots the source's keys; {!step} copies them chunk by chunk
    through real read/write paths (idempotent against concurrent
    dual-writes via the per-key stamp check) and cuts the ring over when
    the copy drains — leaving the router's route cache stale so the
    switch surfaces as one counted [Not_owner] redirect, never a wrong
    answer.  {!cleanup_step} then reclaims the moved keys on the source
    with unstamped local deletes. *)

type phase =
  | Copying  (** dual-writes on, copy in flight, reads still at source *)
  | Serving  (** cutover done: destination owns the vshard *)
  | Cleaned  (** source space reclaimed *)

type t

val vshard : t -> int
val from_node : t -> int
val to_node : t -> int
val phase : t -> phase
val copied : t -> int

val stalls : t -> int
(** Copy ticks skipped because the source could not reach the
    destination ({!Fault.Netem} partition); the copy resumes when the
    link heals. *)

val total : t -> int
(** Keys in the copy snapshot. *)

val start : Router.t -> vshard:int -> from_:int -> to_:int -> t
(** Begin dual-writing and snapshot the copy set.  Raises
    [Invalid_argument] unless [from_] owns the vshard and [to_] does
    not. *)

val step : Router.t -> t -> now:float -> chunk:int -> bool
(** Copy up to [chunk] keys at time [now]; cuts over on drain.  Returns
    [true] once the destination is serving. *)

val cleanup_step : Router.t -> t -> now:float -> chunk:int -> bool
(** After cutover: reclaim up to [chunk] moved keys on the source.
    Returns [true] when done. *)
