(** Sharded DRAM read cache for the hot get path.

    The paper's central premise is that Optane random reads cost ~3x DRAM,
    so even a one-hop ABI hit still pays a Pmem log read for the value.
    This cache sits {e below the index} inside [Store.read]: it maps keys
    to their current log location, value length and (when the store
    materializes payloads) the value bytes, so a hit skips both the index
    probe and the Pmem log read entirely.

    Structure: one segment per store shard, selected with the store's own
    shard hash, so invalidation traffic stays on the same partition as the
    index write it rides along with.  Each segment is a CLOCK
    (second-chance) ring bounded by its byte-capacity share; entries charge
    a fixed overhead plus the value size, whether or not payload bytes are
    literally retained (the simulation synthesizes payloads from keys, but
    a real cache would hold them — the footprint must be honest).

    Coherence contract (enforced by [Store]): every index-moving event
    covers the cache — puts and deletes invalidate in-line, GC relocation
    rewrites cached locations via {!relocate}, and a crash {!clear}s the
    cache entirely (it is volatile).  Flushes, absorbs and compactions move
    index entries between structures but never change a key's log location,
    so they need no cache action.

    Optionally the cache also remembers {e misses} (negative caching): a
    repeated get of an absent key is answered from DRAM without walking the
    index.  Negative entries obey the same invalidation rules, so a
    re-inserted key is never masked.

    All operations charge simulated time to the supplied clock; the
    attribution of those charges to stages is the caller's business. *)

type t

type outcome =
  | Hit of { loc : Kv_common.Types.loc; vlen : int; value : bytes option }
      (** [value] is [Some] only when the entry was filled from a
          materialized read. *)
  | Negative  (** the key is cached as known-absent *)
  | Miss

val create : ?negative:bool -> shards:int -> capacity_bytes:int -> unit -> t
(** [negative] (default true) enables caching of misses.  [capacity_bytes]
    is split evenly across [shards] segments; it must be positive (a store
    with [cache_bytes = 0] simply constructs no cache).  Raises
    [Invalid_argument] on a non-positive capacity or shard count. *)

val find : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> outcome
(** Probe the cache: charges a hash + one DRAM probe, plus a DRAM row read
    and payload copy on a positive hit.  Sets the CLOCK reference bit. *)

val insert :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  loc:Kv_common.Types.loc -> vlen:int -> ?value:bytes -> unit -> unit
(** Fill after a successful slow-path read.  Evicts via CLOCK until the
    entry fits its segment's share; an entry larger than the whole segment
    is not cached. *)

val insert_negative : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
(** Fill after a slow-path miss.  No-op unless negative caching is on. *)

val invalidate : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
(** Drop any entry (positive or negative) for [key].  Called in-line by
    every put and delete. *)

val relocate :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  expect:Kv_common.Types.loc -> loc:Kv_common.Types.loc -> unit
(** GC relocation hook: if [key] is cached at exactly [expect], repoint it
    to [loc].  Any other state is left untouched. *)

val clear : t -> unit
(** Crash: the cache is volatile — drop everything.  Charges nothing (the
    power is off). *)

val used_bytes : t -> int
(** Charged bytes currently resident, across all segments. *)

val capacity_bytes : t -> int
(** Configured capacity (the sum of the per-segment shares). *)

val dram_footprint : t -> float
(** Resident DRAM bytes = {!used_bytes}; bounded by {!capacity_bytes}. *)

val negative_enabled : t -> bool

val entry_overhead_bytes : int
(** Per-entry metadata charge (key, location, length, ring bookkeeping). *)
