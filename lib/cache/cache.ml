module Clock = Pmem_sim.Clock
module Cost = Pmem_sim.Cost_model
module Types = Kv_common.Types
module Hash = Kv_common.Hash

let c_hits = Obs.Counters.counter "cache.hits"
let c_misses = Obs.Counters.counter "cache.misses"
let c_negative_hits = Obs.Counters.counter "cache.negative_hits"
let c_fills = Obs.Counters.counter "cache.fills"
let c_evictions = Obs.Counters.counter "cache.evictions"
let c_invalidations = Obs.Counters.counter "cache.invalidations"
let c_relocations = Obs.Counters.counter "cache.relocations"

let entry_overhead_bytes = 32

type entry = {
  key : Types.key;
  mutable loc : Types.loc; (* meaningful only when [negative] is false *)
  vlen : int;
  value : bytes option;
  negative : bool;
  charge : int;
  mutable refbit : bool;
}

(* One CLOCK ring: a hashtable resolves keys to slots; the hand sweeps the
   slot array giving referenced entries a second chance.  Slots freed by
   eviction or invalidation are recycled through a free list, so the array
   only grows toward the segment's capacity-implied entry count. *)
type seg = {
  tbl : (Types.key, int) Hashtbl.t;
  mutable slots : entry option array;
  mutable free : int list;
  mutable hand : int;
  mutable used : int; (* charged bytes *)
  capacity : int;
}

type outcome =
  | Hit of { loc : Types.loc; vlen : int; value : bytes option }
  | Negative
  | Miss

type t = {
  segs : seg array;
  negative : bool;
  capacity_bytes : int;
}

let seg_create capacity =
  { tbl = Hashtbl.create 64;
    slots = [||];
    free = [];
    hand = 0;
    used = 0;
    capacity }

let create ?(negative = true) ~shards ~capacity_bytes () =
  if shards <= 0 then invalid_arg "Cache.create: shards must be positive";
  if capacity_bytes <= 0 then
    invalid_arg "Cache.create: capacity must be positive";
  let per = capacity_bytes / shards in
  { segs = Array.init shards (fun _ -> seg_create per);
    negative;
    capacity_bytes = per * shards }

let seg_of t key =
  t.segs.(Hash.shard_of ~hash:(Hash.mix64 key) ~shards:(Array.length t.segs))

let drop_slot seg slot =
  match seg.slots.(slot) with
  | None -> ()
  | Some e ->
    Hashtbl.remove seg.tbl e.key;
    seg.slots.(slot) <- None;
    seg.free <- slot :: seg.free;
    seg.used <- seg.used - e.charge

(* Sweep the hand until [need] bytes fit; every examined slot costs one
   DRAM access.  Terminates because each full revolution clears all
   reference bits, after which occupied slots are reclaimed. *)
let rec evict_for seg clock need =
  if seg.used + need > seg.capacity && seg.used > 0 then begin
    let n = Array.length seg.slots in
    let i = seg.hand in
    seg.hand <- (i + 1) mod n;
    (match seg.slots.(i) with
    | None -> ()
    | Some e ->
      Clock.advance clock Cost.dram_hit_ns;
      if e.refbit then e.refbit <- false
      else begin
        drop_slot seg i;
        Obs.Counters.incr c_evictions
      end);
    evict_for seg clock need
  end

let alloc_slot seg =
  match seg.free with
  | s :: rest ->
    seg.free <- rest;
    s
  | [] ->
    let n = Array.length seg.slots in
    let cap = max 8 (2 * n) in
    let slots = Array.make cap None in
    Array.blit seg.slots 0 slots 0 n;
    seg.slots <- slots;
    seg.free <- List.init (cap - n - 1) (fun i -> n + 1 + i);
    n

let place seg clock e =
  (match Hashtbl.find_opt seg.tbl e.key with
  | Some slot -> drop_slot seg slot
  | None -> ());
  if e.charge <= seg.capacity then begin
    evict_for seg clock e.charge;
    let slot = alloc_slot seg in
    seg.slots.(slot) <- Some e;
    Hashtbl.replace seg.tbl e.key slot;
    seg.used <- seg.used + e.charge
  end

let find t clock key =
  let seg = seg_of t key in
  Clock.advance clock (Cost.hash_ns +. Cost.dram_hit_ns);
  match Hashtbl.find_opt seg.tbl key with
  | None ->
    Obs.Counters.incr c_misses;
    Miss
  | Some slot -> begin
    match seg.slots.(slot) with
    | None ->
      Obs.Counters.incr c_misses;
      Miss
    | Some e ->
      e.refbit <- true;
      if e.negative then begin
        Obs.Counters.incr c_negative_hits;
        Negative
      end
      else begin
        Obs.Counters.incr c_hits;
        (* serve from DRAM: a row read plus the payload copy *)
        Clock.advance clock
          (Cost.dram_read_ns
          +. (Cost.memcpy_ns_per_byte *. float_of_int (max e.vlen 0)));
        Hit
          { loc = e.loc; vlen = e.vlen; value = Option.map Bytes.copy e.value }
      end
  end

let insert t clock key ~loc ~vlen ?value () =
  let seg = seg_of t key in
  Clock.advance clock
    (Cost.hash_ns +. Cost.dram_hit_ns
    +. (Cost.memcpy_ns_per_byte *. float_of_int (max vlen 0)));
  Obs.Counters.incr c_fills;
  place seg clock
    { key;
      loc;
      vlen;
      value = Option.map Bytes.copy value;
      negative = false;
      charge = entry_overhead_bytes + max vlen 0;
      refbit = true }

let insert_negative t clock key =
  if t.negative then begin
    let seg = seg_of t key in
    Clock.advance clock (Cost.hash_ns +. Cost.dram_hit_ns);
    Obs.Counters.incr c_fills;
    place seg clock
      { key;
        loc = Types.tombstone;
        vlen = -1;
        value = None;
        negative = true;
        charge = entry_overhead_bytes;
        refbit = true }
  end

let invalidate t clock key =
  let seg = seg_of t key in
  (* the caller's index insert hashed the key already; one probe suffices *)
  Clock.advance clock Cost.dram_hit_ns;
  match Hashtbl.find_opt seg.tbl key with
  | Some slot ->
    drop_slot seg slot;
    Obs.Counters.incr c_invalidations
  | None -> ()

let relocate t clock key ~expect ~loc =
  let seg = seg_of t key in
  Clock.advance clock Cost.dram_hit_ns;
  match Hashtbl.find_opt seg.tbl key with
  | Some slot -> begin
    match seg.slots.(slot) with
    | Some e when (not e.negative) && e.loc = expect ->
      e.loc <- loc;
      Obs.Counters.incr c_relocations
    | Some _ | None -> ()
  end
  | None -> ()

let clear t =
  Array.iter
    (fun seg ->
      Hashtbl.reset seg.tbl;
      seg.slots <- [||];
      seg.free <- [];
      seg.hand <- 0;
      seg.used <- 0)
    t.segs

let used_bytes t = Array.fold_left (fun a s -> a + s.used) 0 t.segs
let capacity_bytes t = t.capacity_bytes
let dram_footprint t = float_of_int (used_bytes t)
let negative_enabled t = t.negative
