(* Simulated serving pipeline: per-connection decoders feeding a request
   queue, multiplexed onto simulated worker threads.

   The engine is a discrete-event simulation in the same style as
   [Harness.Runner]: the worker whose clock is smallest acts next, so
   shared-device queueing emerges from the Pmem model.  On top of that it
   adds the service dimension the closed-loop runner cannot express:
   requests arrive at *intended* times fixed by the load generator, wait in
   a scheduler queue while workers are busy, and their service latency is
   measured from the intended arrival — queueing delay included — so tails
   are free of coordinated omission.

   Pipeline per request: RX decode (per-connection, serialized on a
   connection clock) -> admission -> scheduler queue -> worker dispatch
   (FIFO or shard-affinity, with request batching) -> store execution ->
   reply encode.  Every stage is attributed via [Obs.Attribution] and the
   queue depth is tracked in [Obs.Counters]. *)

module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Store_intf = Kv_common.Store_intf
module Vlog = Kv_common.Vlog
module Hash = Kv_common.Hash
module Histogram = Metrics.Histogram

let c_depth = Obs.Counters.counter "service.queue_depth"
let c_enqueued = Obs.Counters.counter "service.enqueued"
let c_corrupt = Obs.Counters.counter "service.corrupt_frames"
let c_batches = Obs.Counters.counter "service.dispatch_batches"
let c_group_commits = Obs.Counters.counter "service.group_commits"
let c_grouped_writes = Obs.Counters.counter "service.grouped_writes"

type sched = Fifo | Shard_affinity

let sched_name = function
  | Fifo -> "fifo"
  | Shard_affinity -> "shard-affinity"

type costs = {
  byte_ns : float;      (* codec cost per wire byte (RX and TX) *)
  frame_ns : float;     (* fixed per-frame codec cost *)
  dispatch_ns : float;  (* scheduler hand-off, paid once per worker batch *)
}

let default_costs = { byte_ns = 0.25; frame_ns = 120.0; dispatch_ns = 200.0 }

type arrival = { at : float; conn : int; frame : bytes }

type closed = { conns : int; gen : conn:int -> now:float -> Proto.req option }

type window = {
  w_start : float;
  w_reqs : int;
  w_writes : int;
  w_shed : int;
  w_gets : int;
  w_get_p99 : float;  (* windowed p99 get *service* latency *)
}

type stats = {
  submitted : int;       (* requests decoded off connections *)
  executed : int;        (* requests that reached the store *)
  ops_executed : int;    (* primitive ops (batches count their size) *)
  shed : int;            (* rejected by admission control *)
  corrupt : int;         (* connections dropped on codec corruption *)
  start_ns : float;
  end_ns : float;
  service : Histogram.t;     (* finish - intended, all executed requests *)
  get_service : Histogram.t; (* subset: read-only requests *)
  put_service : Histogram.t; (* subset: requests containing a write *)
  queue_wait : Histogram.t;  (* dispatch - ready *)
  get_execute : Histogram.t; (* store-execution stage of read-only reqs *)
  max_depth : int;
  windows : window list;
  counters : (string * float) list;
}

let throughput_mops s =
  let ns = s.end_ns -. s.start_ns in
  if ns <= 0.0 then 0.0 else float_of_int s.ops_executed /. ns *. 1000.0

let shed_rate s =
  let total = s.executed + s.shed in
  if total = 0 then 0.0 else float_of_int s.shed /. float_of_int total

(* ------------------------------------------------------------------ *)

type item = {
  i_intended : float;
  i_ready : float;   (* RX decode complete; eligible for dispatch *)
  i_req : Proto.req;
  i_conn : int;
}

type conn_state = {
  mutable rx_ns : float;      (* connection RX clock *)
  mutable dead : bool;
  decoder : Proto.decoder;
}

(* window accumulator *)
type wacc = {
  mutable a_reqs : int;
  mutable a_writes : int;
  mutable a_shed : int;
  mutable a_gets : int;
  a_get_hist : Histogram.t;
}

let rec first_key = function
  | Proto.Get k | Proto.Put (k, _) | Proto.Delete k | Proto.Scan (k, _) -> k
  | Proto.Batch [] -> 0L
  | Proto.Batch (r :: _) -> first_key r

let run ?(costs = default_costs) ?(sched = Fifo) ?admission ?(batch_max = 8)
    ?(linger_ns = 0.0) ?(window_ns = 2_000_000.0) ?(arrivals = [||]) ?closed
    ~store ~workers ~start_at () =
  if workers <= 0 then invalid_arg "Server.run: workers <= 0";
  if batch_max <= 0 then invalid_arg "Server.run: batch_max <= 0";
  if linger_ns < 0.0 then invalid_arg "Server.run: linger_ns < 0";
  let dev = Store_intf.device store in
  let prev_threads = Device.active_threads dev in
  Device.set_active_threads dev workers;
  let counters_before = Obs.Counters.snapshot () in
  let attr = Obs.Attribution.enabled () in
  let clocks = Array.init workers (fun _ -> Clock.create ~at:start_at ()) in
  (* scheduler queues: one shared for FIFO, one per worker for affinity *)
  let nqueues = match sched with Fifo -> 1 | Shard_affinity -> workers in
  let queues : item Queue.t array = Array.init nqueues (fun _ -> Queue.create ()) in
  let depth = ref 0 and max_depth = ref 0 in
  let conns : (int, conn_state) Hashtbl.t = Hashtbl.create 64 in
  let conn_state c =
    match Hashtbl.find_opt conns c with
    | Some s -> s
    | None ->
      let s = { rx_ns = start_at; dead = false; decoder = Proto.decoder () } in
      Hashtbl.add conns c s;
      s
  in
  (* closed-loop connections inject their next request on completion *)
  let pending : arrival list ref = ref [] in
  let push_pending a =
    let rec ins = function
      | [] -> [ a ]
      | b :: rest when b.at <= a.at -> b :: ins rest
      | rest -> a :: rest
    in
    pending := ins !pending
  in
  (match closed with
  | None -> ()
  | Some { conns = n; gen } ->
    for c = 0 to n - 1 do
      (* closed connections use ids above any open-loop conn id *)
      let conn = 1_000_000 + c in
      match gen ~conn ~now:start_at with
      | Some req ->
        push_pending { at = start_at; conn; frame = Proto.encode_request req }
      | None -> ()
    done);
  let closed_gen conn ~now =
    match closed with
    | Some { gen; _ } when conn >= 1_000_000 -> (
      match gen ~conn ~now with
      | Some req ->
        push_pending { at = now; conn; frame = Proto.encode_request req }
      | None -> ())
    | _ -> ()
  in
  (* stats *)
  let submitted = ref 0 and executed = ref 0 and ops_executed = ref 0 in
  let shed = ref 0 and corrupt = ref 0 in
  let service = Histogram.create () in
  let get_service = Histogram.create () in
  let put_service = Histogram.create () in
  let queue_wait = Histogram.create () in
  let get_execute = Histogram.create () in
  let end_ns = ref start_at in
  let windows : (int, wacc) Hashtbl.t = Hashtbl.create 128 in
  let wacc_of t =
    let ix = int_of_float ((t -. start_at) /. window_ns) in
    match Hashtbl.find_opt windows ix with
    | Some w -> w
    | None ->
      let w =
        { a_reqs = 0; a_writes = 0; a_shed = 0; a_gets = 0;
          a_get_hist = Histogram.create () }
      in
      Hashtbl.add windows ix w;
      w
  in
  (* routing *)
  let queue_of req =
    match sched with
    | Fifo -> queues.(0)
    | Shard_affinity ->
      queues.(Hash.shard_of ~hash:(Hash.mix64 (first_key req)) ~shards:workers)
  in
  let enqueue item =
    Queue.push item (queue_of item.i_req);
    incr depth;
    if !depth > !max_depth then max_depth := !depth;
    Obs.Counters.incr c_enqueued;
    Obs.Counters.add c_depth 1.0
  in
  (* ---------------- ingest: RX decode + admission at arrival ----------- *)
  let ingest (a : arrival) =
    let cs = conn_state a.conn in
    if not cs.dead then begin
      cs.rx_ns <- Float.max cs.rx_ns a.at;
      cs.rx_ns <-
        cs.rx_ns +. (costs.byte_ns *. float_of_int (Bytes.length a.frame));
      Proto.feed_bytes cs.decoder a.frame;
      (* a corrupt stream gets one final Err reply (charged on the RX
         clock, as shed replies are), then the connection closes: the
         decoder state is sticky, so nothing after it can be trusted *)
      let reject msg =
        let rb = Proto.encode_reply (Proto.Err msg) in
        cs.rx_ns <-
          cs.rx_ns +. costs.frame_ns
          +. (costs.byte_ns *. float_of_int (Bytes.length rb));
        if cs.rx_ns > !end_ns then end_ns := cs.rx_ns;
        cs.dead <- true;
        incr corrupt;
        Obs.Counters.incr c_corrupt
      in
      let rec drain () =
        match Proto.next cs.decoder with
        | `Await -> ()
        | `Corrupt m -> reject m
        | `Msg (Proto.Reply _) ->
          (* a client pushing replies at the server is a protocol error *)
          reject "unexpected reply"
        | `Msg (Proto.Request req | Proto.Tagged (_, req)) ->
          cs.rx_ns <- cs.rx_ns +. costs.frame_ns;
          incr submitted;
          let intended = a.at in
          let ready = cs.rx_ns in
          if attr then Obs.Attribution.add Svc_decode (ready -. intended);
          let admitted =
            match admission with
            | None -> true
            | Some adm -> Admission.admit adm ~now:ready req
          in
          if admitted then
            enqueue
              { i_intended = intended; i_ready = ready; i_req = req;
                i_conn = a.conn }
          else begin
            (* shed: the reply is encoded and sent straight back from the
               RX path; the request never occupies a worker *)
            let rb = Proto.encode_reply Proto.Shed in
            cs.rx_ns <-
              cs.rx_ns +. costs.frame_ns
              +. (costs.byte_ns *. float_of_int (Bytes.length rb));
            incr shed;
            let w = wacc_of intended in
            w.a_shed <- w.a_shed + 1;
            if cs.rx_ns > !end_ns then end_ns := cs.rx_ns;
            closed_gen a.conn ~now:cs.rx_ns
          end;
          drain ()
      in
      drain ()
    end
  in
  (* merged arrival stream: the pre-sorted open-loop array + the dynamic
     closed-loop list *)
  let ai = ref 0 in
  let n_arrivals = Array.length arrivals in
  let next_arrival_at () =
    let open_at =
      if !ai < n_arrivals then Some arrivals.(!ai).at else None
    in
    let closed_at = match !pending with [] -> None | a :: _ -> Some a.at in
    match (open_at, closed_at) with
    | None, x -> x
    | x, None -> x
    | Some a, Some b -> Some (Float.min a b)
  in
  let pop_arrival () =
    let take_open () =
      let a = arrivals.(!ai) in
      incr ai;
      a
    in
    match !pending with
    | [] -> take_open ()
    | p :: rest ->
      if !ai < n_arrivals && arrivals.(!ai).at <= p.at then take_open ()
      else begin
        pending := rest;
        p
      end
  in
  let ingest_until t =
    let rec go () =
      match next_arrival_at () with
      | Some at when at <= t ->
        ingest (pop_arrival ());
        go ()
      | _ -> ()
    in
    go ()
  in
  (* ---------------- dispatch + execute on the min-clock worker --------- *)
  let queue_for w =
    match sched with
    | Fifo -> if Queue.is_empty queues.(0) then None else Some queues.(0)
    | Shard_affinity ->
      if not (Queue.is_empty queues.(w)) then Some queues.(w)
      else begin
        (* steal from the deepest backlog *)
        let best = ref (-1) and best_n = ref 0 in
        Array.iteri
          (fun i q ->
            let n = Queue.length q in
            if n > !best_n then begin
              best := i;
              best_n := n
            end)
          queues;
        if !best >= 0 then Some queues.(!best) else None
      end
  in
  let pick w =
    match queue_for w with
    | None -> None
    | Some q ->
      let rec take acc n =
        if n = 0 || Queue.is_empty q then List.rev acc
        else take (Queue.pop q :: acc) (n - 1)
      in
      let batch = take [] batch_max in
      depth := !depth - List.length batch;
      Obs.Counters.add c_depth (-.float_of_int (List.length batch));
      Obs.Counters.incr c_batches;
      Some batch
  in
  let exec_one clock req =
    let rec go top req =
      match req with
      | Proto.Get k -> (
        match Store_intf.read store clock k with
        | { Store_intf.loc = Some loc; _ } ->
          Proto.Hit (Vlog.vlen_at (Store_intf.vlog store) loc)
        | { Store_intf.stage = Store_intf.Corrupt; _ } -> Proto.Corrupted
        | _ -> Proto.Miss)
      | Proto.Put (k, v) ->
        Store_intf.write store clock k
          (Store_intf.Sized (Bytes.length v));
        Proto.Ok
      | Proto.Delete k ->
        Store_intf.delete store clock k;
        Proto.Ok
      | Proto.Scan (start, limit) ->
        (* accounting path: answer key + length, never materialize *)
        let vlog = Store_intf.vlog store in
        Proto.Values
          (List.map
             (fun (k, loc) -> (k, Vlog.vlen_at vlog loc, None))
             (Store_intf.scan store clock ~start ~limit))
      | Proto.Batch reqs ->
        if top then Proto.Replies (List.map (go false) reqs)
        else Proto.Err "nested batch"
    in
    go true req
  in
  (* Per-op service accounting.  Every op inside a [Batch] frame carries
     the frame's intended-arrival stamp — one [service] sample per
     primitive op, all measured from the frame's intended arrival — so a
     grouped commit cannot hide queueing behind batch size (the
     coordinated-omission rule from the open-loop design, applied inside
     the frame). *)
  let record_done item ~dispatched ~t_exec ~finish =
    if finish > !end_ns then end_ns := finish;
    incr executed;
    let nops = Proto.ops_in_req item.i_req in
    ops_executed := !ops_executed + nops;
    let lat = finish -. item.i_intended in
    let record_op sub =
      Histogram.record service lat;
      if Proto.puts_in_req sub > 0 then Histogram.record put_service lat
      else Histogram.record get_service lat
    in
    (match item.i_req with
    | Proto.Batch reqs -> List.iter record_op reqs
    | req -> record_op req);
    let writes = Proto.puts_in_req item.i_req in
    let w = wacc_of item.i_intended in
    w.a_reqs <- w.a_reqs + 1;
    if writes > 0 then w.a_writes <- w.a_writes + 1
    else begin
      Histogram.record get_execute (t_exec -. dispatched);
      w.a_gets <- w.a_gets + 1;
      Histogram.record w.a_get_hist lat
    end;
    closed_gen item.i_conn ~now:finish
  in
  (* A frame the group committer can absorb: a lone Put, or a Batch of
     nothing but Puts.  Its reply is known up front (all acks), so the
     whole run of frames can share one [write_batch] persist fence. *)
  let groupable req =
    match req with
    | Proto.Put (k, v) ->
      Some ([ (k, Store_intf.Sized (Bytes.length v)) ], Proto.Ok)
    | Proto.Batch reqs ->
      let rec all acc = function
        | [] -> Some (List.rev acc)
        | Proto.Put (k, v) :: tl ->
          all ((k, Store_intf.Sized (Bytes.length v)) :: acc) tl
        | _ -> None
      in
      (match all [] reqs with
      | Some (_ :: _ as puts) ->
        Some (puts, Proto.Replies (List.map (fun _ -> Proto.Ok) reqs))
      | _ -> None)
    | _ -> None
  in
  let process w (batch : item list) =
    let clock = clocks.(w) in
    if Obs.Trace.enabled () then Obs.Trace.set_tid w;
    Clock.advance clock costs.dispatch_ns;
    let wait_ready item =
      ignore (Clock.wait_until clock item.i_ready)
    in
    let note_qwait item ~dispatched =
      let qwait = dispatched -. item.i_ready in
      Histogram.record queue_wait qwait;
      if attr then Obs.Attribution.add Svc_queue qwait
    in
    let encode_finish item reply ~dispatched ~t_exec =
      let rb = Proto.encode_reply reply in
      let t0 = Clock.now clock in
      Clock.advance clock
        (costs.frame_ns +. (costs.byte_ns *. float_of_int (Bytes.length rb)));
      let finish = Clock.now clock in
      if attr then Obs.Attribution.add Svc_encode (finish -. t0);
      record_done item ~dispatched ~t_exec ~finish
    in
    let exec_single item =
      wait_ready item;
      let dispatched = Clock.now clock in
      note_qwait item ~dispatched;
      let reply = exec_one clock item.i_req in
      let t_exec = Clock.now clock in
      if attr then Obs.Attribution.add Svc_execute (t_exec -. dispatched);
      encode_finish item reply ~dispatched ~t_exec
    in
    (* Group commit: a run of write-only frames — possibly from different
       connections — executes as one [write_batch], paying one store
       group commit (one persist fence where the store has one) for the
       whole run.  Acks are encoded after the fence, in frame order. *)
    let exec_group group =
      List.iter (fun (item, _) -> wait_ready item) group;
      let dispatched = Clock.now clock in
      List.iter (fun (item, _) -> note_qwait item ~dispatched) group;
      let puts = List.concat_map (fun (_, (puts, _)) -> puts) group in
      Store_intf.write_batch store clock puts;
      (match group with
      | _ :: _ :: _ ->
        Obs.Counters.incr c_group_commits;
        Obs.Counters.add c_grouped_writes (float_of_int (List.length puts))
      | _ -> ());
      let t_exec = Clock.now clock in
      if attr then Obs.Attribution.add Svc_execute (t_exec -. dispatched);
      List.iter
        (fun (item, (_, reply)) -> encode_finish item reply ~dispatched ~t_exec)
        group
    in
    let rec go = function
      | [] -> ()
      | item :: rest -> (
        match groupable item.i_req with
        | None ->
          exec_single item;
          go rest
        | Some pr ->
          let rec grab acc rest =
            match rest with
            | next :: tl -> (
              match groupable next.i_req with
              | Some pr2 -> grab ((next, pr2) :: acc) tl
              | None -> (List.rev acc, rest))
            | [] -> (List.rev acc, [])
          in
          let group, rest = grab [ (item, pr) ] rest in
          exec_group group;
          go rest)
    in
    go batch
  in
  let min_clock_worker () =
    let best = ref 0 and best_t = ref (Clock.now clocks.(0)) in
    for i = 1 to workers - 1 do
      if Clock.now clocks.(i) < !best_t then begin
        best := i;
        best_t := Clock.now clocks.(i)
      end
    done;
    !best
  in
  (* Linger: with a short queue, hold off dispatch until the oldest
     queued item has waited [linger_ns] since it became ready, ingesting
     arrivals meanwhile so the dispatch batch (and thus the group
     commit) can fill.  A full batch, or the deadline, dispatches. *)
  let linger w tw =
    linger_ns > 0.0 && !depth > 0 && !depth < batch_max
    &&
    match queue_for w with
    | None -> false
    | Some q -> (
      match Queue.peek_opt q with
      | None -> false
      | Some oldest ->
        let deadline = oldest.i_ready +. linger_ns in
        tw < deadline
        && begin
             let until =
               match next_arrival_at () with
               | Some t when t < deadline -> Float.max t tw
               | _ -> deadline
             in
             ignore (Clock.wait_until clocks.(w) until);
             true
           end)
  in
  let rec loop () =
    let w = min_clock_worker () in
    let tw = Clock.now clocks.(w) in
    ingest_until tw;
    if linger w tw then loop ()
    else
      match pick w with
      | Some batch ->
        process w batch;
        loop ()
      | None -> (
        match next_arrival_at () with
        | Some t ->
          (* idle until the next arrival lands *)
          ignore (Clock.wait_until clocks.(w) (Float.max t tw));
          loop ()
        | None -> ())
  in
  loop ();
  Device.set_active_threads dev prev_threads;
  let windows =
    Hashtbl.fold (fun ix w acc -> (ix, w) :: acc) windows []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (ix, w) ->
           { w_start = start_at +. (float_of_int ix *. window_ns);
             w_reqs = w.a_reqs;
             w_writes = w.a_writes;
             w_shed = w.a_shed;
             w_gets = w.a_gets;
             w_get_p99 = Histogram.percentile w.a_get_hist 99.0 })
  in
  { submitted = !submitted;
    executed = !executed;
    ops_executed = !ops_executed;
    shed = !shed;
    corrupt = !corrupt;
    start_ns = start_at;
    end_ns = !end_ns;
    service;
    get_service;
    put_service;
    queue_wait;
    get_execute;
    max_depth = !max_depth;
    windows;
    counters =
      Obs.Counters.diff_snapshots ~after:(Obs.Counters.snapshot ())
        ~before:counters_before }
