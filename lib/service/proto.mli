(** Compact binary wire codec for the KV serving layer.

    Frame layout: 1-byte magic, 4-byte little-endian body length, body.
    A body is one tagged message: a request (get / put / delete / batch)
    or a reply.  The same framing runs in both directions and on both
    paths — the simulated scheduler ({!Server}) and the real Unix-socket
    endpoint ({!Endpoint}) — so the bytes a load generator synthesises are
    exactly the bytes a live client sends.

    Decoding is incremental and total: {!feed} accepts chunks split at any
    byte boundary, {!next} yields messages as they complete, and malformed
    input (bad magic, unknown tag, oversized or truncated frame, trailing
    garbage, nested batch) poisons the decoder with [`Corrupt] instead of
    raising. *)

type key = Kv_common.Types.key

type req =
  | Get of key
  | Put of key * bytes
  | Delete of key
  | Batch of req list  (** one frame, several ops; may not nest *)
  | Scan of key * int
      (** ordered range scan: start key (inclusive) and entry limit; the
          limit must lie in [1, {!max_batch}] so one reply frame always
          fits the result *)

type reply =
  | Ok                 (** put / delete acknowledged *)
  | Value of bytes     (** get hit with materialized payload *)
  | Hit of int         (** get hit, value length only (accounting stores) *)
  | Miss
  | Shed               (** rejected by admission control *)
  | Corrupted          (** the key's newest record failed verification:
                           an explicit integrity error, not a miss *)
  | Not_owner of int
      (** routing refusal: this node does not own the key's shard; the
          payload is a redirect hint — the id of a node that does.  A node
          never answers for a range it does not own, so stale routing
          tables surface as an explicit redirect, not wrong data. *)
  | Err of string
  | Replies of reply list  (** one per batched op; may not nest *)
  | Values of (key * int * bytes option) list
      (** scan result, ascending key order: (key, value length, payload);
          the payload is [None] when the store answers locations without
          materialising values (accounting stores) *)

type hdr = {
  h_req_id : int;
      (** unique per client op (u32 on the wire): nodes deduplicate write
          applies by it, so a duplicated or retried frame can never
          double-apply *)
  h_deadline_ns : float;
      (** per-attempt latency budget the router enforces; must be finite
          or [infinity], never negative *)
}

type msg =
  | Request of req
  | Tagged of hdr * req
      (** a request carrying the defensive-RPC envelope *)
  | Reply of reply

val max_body_bytes : int
(** Frames larger than this are rejected as corrupt (1 MiB). *)

val max_batch : int
(** Maximum ops per batch frame. *)

val header_bytes : int
(** Frame header size (magic + length). *)

(** {1 Encoding} — total for well-formed values; raises [Invalid_argument]
    on nested batches or bodies over {!max_body_bytes}. *)

val encode_request : req -> bytes
val encode_reply : reply -> bytes

val encode_tagged : hdr -> req -> bytes
(** A request frame with the defensive-RPC envelope (request id +
    deadline) ahead of the request body. *)

val encode : msg -> bytes

(** {1 Incremental decoding} *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> off:int -> len:int -> unit
(** Append a chunk.  Chunks may split frames at any byte.  Raises
    [Invalid_argument] on an out-of-bounds slice; never raises on content. *)

val feed_bytes : decoder -> bytes -> unit

val next : decoder -> [ `Msg of msg | `Await | `Corrupt of string ]
(** Pull the next complete message.  [`Await] means feed more bytes.
    [`Corrupt] is sticky: the connection must be dropped. *)

val decoded_count : decoder -> int
(** Messages successfully decoded so far. *)

(** {1 Utilities} *)

val ops_in_req : req -> int
(** Number of primitive ops (1 for singles, batch size for batches). *)

val puts_in_req : req -> int
(** Number of write ops (puts + deletes), the admission-control unit. *)

val pp_req : Format.formatter -> req -> unit
val pp_reply : Format.formatter -> reply -> unit
