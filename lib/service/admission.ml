(* Write-burst admission control.

   A token bucket refilled in simulated time meters the write ops a frame
   carries; gets are never shed (the whole point of Get-Protect Mode is
   that reads keep flowing).  The store's mode signals modulate the cost of
   a write token draw: while Get-Protect is active each write costs more
   (the store is busy defending its read tail, so the front door tightens),
   and under Write-Intensive Mode each write costs less (the store is
   configured to absorb bursts).  A request that cannot draw its tokens is
   shed immediately with a [Proto.Shed] reply rather than queued — an
   open-loop queue under sustained overload otherwise grows without
   bound. *)

module Signals = Chameleondb.Modes.Signals

let c_shed = Obs.Counters.counter "service.shed"
let c_admitted = Obs.Counters.counter "service.admitted"

type t = {
  signals : Signals.t;
  burst : float;            (* bucket capacity, tokens *)
  rate_per_ns : float;      (* refill rate *)
  gpm_write_cost : float;   (* per-write tokens while Get-Protect active *)
  wim_write_cost : float;   (* per-write tokens under Write-Intensive Mode *)
  degraded_write_cost : float;  (* multiplier for writes to degraded shards *)
  mutable tokens : float;
  mutable last_ns : float;
  mutable admitted : int;
  mutable shed : int;
}

let create ?(signals = Signals.none) ?(burst = 512.0)
    ?(rate_mops = 1.0) ?(gpm_write_cost = 4.0) ?(wim_write_cost = 0.5)
    ?(degraded_write_cost = 4.0) () =
  if burst <= 0.0 then invalid_arg "Admission.create: burst <= 0";
  if rate_mops <= 0.0 then invalid_arg "Admission.create: rate <= 0";
  if degraded_write_cost < 1.0 then
    invalid_arg "Admission.create: degraded_write_cost < 1";
  { signals;
    burst;
    (* 1 Mops/s = one token per 1000 simulated ns *)
    rate_per_ns = rate_mops /. 1000.0;
    gpm_write_cost;
    wim_write_cost;
    degraded_write_cost;
    tokens = burst;
    last_ns = 0.0;
    admitted = 0;
    shed = 0 }

let refill t ~now =
  if now > t.last_ns then begin
    t.tokens <-
      Float.min t.burst (t.tokens +. ((now -. t.last_ns) *. t.rate_per_ns));
    t.last_ns <- now
  end

let write_cost t =
  if t.signals.Signals.get_protect_active () then t.gpm_write_cost
  else if t.signals.Signals.write_intensive then t.wim_write_cost
  else 1.0

(* Tokens a request's writes must draw: writes into shards serving with
   unrepaired corruption pay the degraded multiplier, so the scrubber's
   repair traffic is not raced by a write flood into the same shard. *)
let rec write_tokens t = function
  | Proto.Get _ | Proto.Scan _ -> 0.0
  | Proto.Put (k, _) | Proto.Delete k ->
    let base = write_cost t in
    if t.signals.Signals.shard_degraded k then base *. t.degraded_write_cost
    else base
  | Proto.Batch reqs ->
    List.fold_left (fun acc r -> acc +. write_tokens t r) 0.0 reqs

let admit t ~now req =
  let writes = Proto.puts_in_req req in
  if writes = 0 then begin
    t.admitted <- t.admitted + 1;
    Obs.Counters.incr c_admitted;
    true
  end
  else begin
    refill t ~now;
    let cost = write_tokens t req in
    if t.tokens >= cost then begin
      t.tokens <- t.tokens -. cost;
      t.admitted <- t.admitted + 1;
      Obs.Counters.incr c_admitted;
      true
    end
    else begin
      t.shed <- t.shed + 1;
      Obs.Counters.incr c_shed;
      false
    end
  end

let admitted t = t.admitted
let shed t = t.shed

let shed_rate t =
  let total = t.admitted + t.shed in
  if total = 0 then 0.0 else float_of_int t.shed /. float_of_int total
