(** Token-bucket admission control for write bursts.

    Wired to the store's mode signals ({!Chameleondb.Modes.Signals}):
    while Get-Protect Mode is active, each write draws more tokens (the
    store is defending its read tail, so the front door tightens); under
    Write-Intensive Mode each write draws fewer (the store absorbs
    bursts).  Gets are always admitted.  A request that cannot pay is shed
    at arrival with a {!Proto.Shed} reply — never queued — which bounds
    queue growth under sustained open-loop overload. *)

type t

val create :
  ?signals:Chameleondb.Modes.Signals.t ->
  ?burst:float ->
  ?rate_mops:float ->
  ?gpm_write_cost:float ->
  ?wim_write_cost:float ->
  ?degraded_write_cost:float ->
  unit ->
  t
(** [burst] is the bucket capacity in tokens (default 512); [rate_mops]
    the refill rate in million write-tokens per simulated second (default
    1.0); a write costs 1 token normally, [gpm_write_cost] (default 4)
    while Get-Protect is active, [wim_write_cost] (default 0.5) under
    Write-Intensive Mode.  A write whose key lands in a shard the health
    signals report degraded pays [degraded_write_cost] times its base
    token cost (default 4, must be >= 1): writes into shards serving with
    unrepaired corruption are throttled so repair traffic is not raced. *)

val admit : t -> now:float -> Proto.req -> bool
(** Whether the request may enter the queue at simulated time [now].
    Batches pay for all their writes at once, or are shed whole. *)

val admitted : t -> int
val shed : t -> int

val shed_rate : t -> float
(** Shed requests / total requests seen, in [0, 1]. *)
