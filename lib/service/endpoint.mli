(** Real serving path: {!Proto} frames over a Unix-domain socket.

    A select loop multiplexes client connections, each with its own
    incremental decoder; corrupt input earns an [Err] reply and a closed
    connection.  Backs `ckv serve` / `ckv client`. *)

type backend = Proto.req -> Proto.reply

val backend_of_store :
  ?redirect:(Kv_common.Types.key -> int option) ->
  clock:Pmem_sim.Clock.t -> Kv_common.Store_intf.store -> backend
(** Executes against any packed store through the unified
    [read]/[write] API.  Gets reply [Value] when the read (or the vlog)
    surfaces a materialized payload, [Hit vlen] otherwise; puts carry
    their real bytes as a [Payload] spec.

    [redirect] makes the endpoint routing-aware: when it returns
    [Some node] for a key, the op is refused with {!Proto.Not_owner}
    carrying that node id as the redirect hint — this endpoint does not
    own the key's shard.  Batch frames check per inner op. *)

val serve :
  ?backlog:int ->
  ?max_requests:int ->
  ?on_ready:(unit -> unit) ->
  path:string ->
  backend ->
  int
(** Bind [path] (unlinking any stale socket), accept clients, and serve
    until [max_requests] requests have been answered (default: forever).
    Returns the number of requests served.  [on_ready] fires after the
    socket is listening. *)

(** {1 Client} *)

type client

val connect : string -> client

val request : client -> Proto.req -> Proto.reply
(** Send one request and block for its reply.  Raises [Failure] on a
    corrupt stream or closed connection. *)

val close : client -> unit

(** {1 Auto-batching}

    Pipelined client-side write buffering: {!submit}ted requests
    accumulate until a count, byte, or linger threshold {!flush}es them
    as one [Proto.Batch] frame, sent without blocking for the reply.
    {!drain} collects one reply per submitted request, in submit order.
    Time comes from the injectable [now] function (wall clock by
    default), so linger behaviour is deterministic under a fake clock. *)

type batcher

val batcher :
  ?max_count:int ->
  ?max_bytes:int ->
  ?linger:float ->
  ?now:(unit -> float) ->
  client ->
  batcher
(** [max_count] (default 16, capped at {!Proto.max_batch}) and
    [max_bytes] (default 64 KiB of encoded request bytes) flush from
    inside {!submit}; [linger] (seconds on [now]'s clock, default 0)
    flushes from {!tick} once the oldest buffered request has waited
    that long. *)

val submit : batcher -> Proto.req -> unit
(** Buffer one request (itself not a [Batch]), flushing if a size
    threshold is reached. *)

val tick : batcher -> unit
(** Flush if the linger deadline has passed.  Call from the client's
    idle loop. *)

val deadline : batcher -> float option
(** When the open buffer will linger-flush ([None] if empty). *)

val flush : batcher -> unit
(** Send the open buffer now: one frame for the whole group (a bare
    request when only one is buffered). *)

val drain : batcher -> Proto.reply list
(** {!flush}, then block until every in-flight frame is answered.
    Returns one reply per submitted request in submit order; a
    whole-frame failure (e.g. [Err]) is replicated to each of its
    requests. *)

val pending : batcher -> int
(** Requests buffered but not yet flushed. *)

val inflight : batcher -> int
(** Flushed frames not yet drained. *)
