(** Real serving path: {!Proto} frames over a Unix-domain socket.

    A select loop multiplexes client connections, each with its own
    incremental decoder; corrupt input earns an [Err] reply and a closed
    connection.  Backs `ckv serve` / `ckv client`. *)

type backend = Proto.req -> Proto.reply

val backend_of_store :
  ?redirect:(Kv_common.Types.key -> int option) ->
  clock:Pmem_sim.Clock.t -> Kv_common.Store_intf.store -> backend
(** Executes against any packed store through the unified
    [read]/[write] API.  Gets reply [Value] when the read (or the vlog)
    surfaces a materialized payload, [Hit vlen] otherwise; puts carry
    their real bytes as a [Payload] spec.

    [redirect] makes the endpoint routing-aware: when it returns
    [Some node] for a key, the op is refused with {!Proto.Not_owner}
    carrying that node id as the redirect hint — this endpoint does not
    own the key's shard.  Batch frames check per inner op. *)

val serve :
  ?backlog:int ->
  ?max_requests:int ->
  ?on_ready:(unit -> unit) ->
  path:string ->
  backend ->
  int
(** Bind [path] (unlinking any stale socket), accept clients, and serve
    until [max_requests] requests have been answered (default: forever).
    Returns the number of requests served.  [on_ready] fires after the
    socket is listening. *)

(** {1 Client} *)

type client

val connect : string -> client

val request : client -> Proto.req -> Proto.reply
(** Send one request and block for its reply.  Raises [Failure] on a
    corrupt stream or closed connection. *)

val close : client -> unit
