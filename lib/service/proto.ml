(* Compact binary wire codec.

   Frame layout:  magic 0xC7 | body length (u32 LE) | body
   Body layout:   tag byte | tag-specific payload

   The decoder is incremental: feed it arbitrary byte chunks (network
   reads, torn at any split point) and pull complete messages as they
   become available.  Malformed input — bad magic, unknown tag, length
   overflow, truncated or over-long body, nested batch — marks the decoder
   corrupt; it never raises on hostile bytes, and a corrupt connection
   stays corrupt (the transport must drop it). *)

type key = Kv_common.Types.key

type req =
  | Get of key
  | Put of key * bytes
  | Delete of key
  | Batch of req list
  | Scan of key * int  (* start key, limit (1..max_batch) *)

type reply =
  | Ok
  | Value of bytes
  | Hit of int
  | Miss
  | Shed
  | Corrupted
  | Not_owner of int
  | Err of string
  | Replies of reply list
  | Values of (key * int * bytes option) list
      (* (key, vlen, value) per scanned entry; value is [None] when the
         server answers locations without materialising payloads *)

(* Defensive-RPC envelope: a request id for node-side write dedup and a
   latency budget the router turns into per-attempt deadlines. *)
type hdr = { h_req_id : int; h_deadline_ns : float }

type msg = Request of req | Tagged of hdr * req | Reply of reply

let magic = '\xC7'
let header_bytes = 5
let max_body_bytes = 1 lsl 20
let max_batch = 1024

(* tags *)
let t_get = 0x01
let t_put = 0x02
let t_delete = 0x03
let t_batch = 0x04
let t_scan = 0x05
let t_tagged = 0x06
let t_ok = 0x11
let t_value = 0x12
let t_hit = 0x13
let t_miss = 0x14
let t_shed = 0x15
let t_err = 0x16
let t_replies = 0x17
let t_corrupted = 0x18
let t_not_owner = 0x19
let t_values = 0x1A

(* ------------------------------ encoding ------------------------------ *)

let add_u32 b n = Buffer.add_int32_le b (Int32.of_int n)

let rec add_req ?(top = true) b = function
  | Get key ->
    Buffer.add_uint8 b t_get;
    Buffer.add_int64_le b key
  | Put (key, v) ->
    Buffer.add_uint8 b t_put;
    Buffer.add_int64_le b key;
    add_u32 b (Bytes.length v);
    Buffer.add_bytes b v
  | Delete key ->
    Buffer.add_uint8 b t_delete;
    Buffer.add_int64_le b key
  | Batch reqs ->
    if not top then invalid_arg "Proto: nested Batch";
    if List.length reqs > max_batch then invalid_arg "Proto: batch too large";
    Buffer.add_uint8 b t_batch;
    Buffer.add_uint16_le b (List.length reqs);
    List.iter (add_req ~top:false b) reqs
  | Scan (key, limit) ->
    if limit < 1 || limit > max_batch then
      invalid_arg "Proto: scan limit out of range";
    Buffer.add_uint8 b t_scan;
    Buffer.add_int64_le b key;
    Buffer.add_uint16_le b limit

let rec add_reply ?(top = true) b = function
  | Ok -> Buffer.add_uint8 b t_ok
  | Value v ->
    Buffer.add_uint8 b t_value;
    add_u32 b (Bytes.length v);
    Buffer.add_bytes b v
  | Hit vlen ->
    Buffer.add_uint8 b t_hit;
    add_u32 b vlen
  | Miss -> Buffer.add_uint8 b t_miss
  | Shed -> Buffer.add_uint8 b t_shed
  | Corrupted -> Buffer.add_uint8 b t_corrupted
  | Not_owner node ->
    if node < 0 || node > 0xFFFF then invalid_arg "Proto: node id out of range";
    Buffer.add_uint8 b t_not_owner;
    Buffer.add_uint16_le b node
  | Err m ->
    Buffer.add_uint8 b t_err;
    add_u32 b (String.length m);
    Buffer.add_string b m
  | Replies rs ->
    if not top then invalid_arg "Proto: nested Replies";
    if List.length rs > max_batch then invalid_arg "Proto: batch too large";
    Buffer.add_uint8 b t_replies;
    Buffer.add_uint16_le b (List.length rs);
    List.iter (add_reply ~top:false b) rs
  | Values entries ->
    if List.length entries > max_batch then
      invalid_arg "Proto: too many scan entries";
    Buffer.add_uint8 b t_values;
    Buffer.add_uint16_le b (List.length entries);
    List.iter
      (fun (key, vlen, v) ->
        if vlen < 0 || vlen > max_body_bytes then
          invalid_arg "Proto: scan entry vlen out of range";
        Buffer.add_int64_le b key;
        add_u32 b vlen;
        match v with
        | None -> Buffer.add_uint8 b 0
        | Some v ->
          Buffer.add_uint8 b 1;
          add_u32 b (Bytes.length v);
          Buffer.add_bytes b v)
      entries

let frame body =
  let n = Buffer.length body in
  if n > max_body_bytes then invalid_arg "Proto: frame body too large";
  let b = Buffer.create (header_bytes + n) in
  Buffer.add_char b magic;
  add_u32 b n;
  Buffer.add_buffer b body;
  Buffer.to_bytes b

let encode_request req =
  let b = Buffer.create 32 in
  add_req b req;
  frame b

let encode_reply reply =
  let b = Buffer.create 32 in
  add_reply b reply;
  frame b

let add_hdr b { h_req_id; h_deadline_ns } =
  if h_req_id < 0 || h_req_id > 0xFFFFFFFF then
    invalid_arg "Proto: request id out of range";
  if Float.is_nan h_deadline_ns || h_deadline_ns < 0.0 then
    invalid_arg "Proto: deadline out of range";
  Buffer.add_uint8 b t_tagged;
  add_u32 b h_req_id;
  Buffer.add_int64_le b (Int64.bits_of_float h_deadline_ns)

let encode_tagged hdr req =
  let b = Buffer.create 48 in
  add_hdr b hdr;
  add_req b req;
  frame b

let encode msg =
  match msg with
  | Request r -> encode_request r
  | Tagged (hdr, r) -> encode_tagged hdr r
  | Reply r -> encode_reply r

(* ------------------------------ decoding ------------------------------ *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type cursor = { cbuf : Bytes.t; mutable cpos : int; climit : int }

let need c n what =
  if c.climit - c.cpos < n then corrupt "truncated %s" what

let read_u8 c what =
  need c 1 what;
  let v = Char.code (Bytes.get c.cbuf c.cpos) in
  c.cpos <- c.cpos + 1;
  v

let read_key c =
  need c 8 "key";
  let v = Bytes.get_int64_le c.cbuf c.cpos in
  c.cpos <- c.cpos + 8;
  v

let read_u16 c what =
  need c 2 what;
  let v = Bytes.get_uint16_le c.cbuf c.cpos in
  c.cpos <- c.cpos + 2;
  v

let read_u32 c what =
  need c 4 what;
  let v = Int32.to_int (Bytes.get_int32_le c.cbuf c.cpos) in
  c.cpos <- c.cpos + 4;
  if v < 0 || v > max_body_bytes then corrupt "%s length %d out of range" what v;
  v

let read_bytes c n what =
  need c n what;
  let v = Bytes.sub c.cbuf c.cpos n in
  c.cpos <- c.cpos + n;
  v

let rec parse_req ?(top = true) c =
  match read_u8 c "request tag" with
  | t when t = t_get -> Get (read_key c)
  | t when t = t_put ->
    let key = read_key c in
    let n = read_u32 c "value" in
    Put (key, read_bytes c n "value")
  | t when t = t_delete -> Delete (read_key c)
  | t when t = t_batch ->
    if not top then corrupt "nested batch";
    let n = read_u16 c "batch count" in
    if n > max_batch then corrupt "batch count %d out of range" n;
    Batch (List.init n (fun _ -> parse_req ~top:false c))
  | t when t = t_scan ->
    let key = read_key c in
    let limit = read_u16 c "scan limit" in
    if limit < 1 || limit > max_batch then
      corrupt "scan limit %d out of range" limit;
    Scan (key, limit)
  | t -> corrupt "unknown request tag 0x%02x" t

let rec parse_reply ?(top = true) c =
  match read_u8 c "reply tag" with
  | t when t = t_ok -> Ok
  | t when t = t_value ->
    let n = read_u32 c "value" in
    Value (read_bytes c n "value")
  | t when t = t_hit -> Hit (read_u32 c "hit length")
  | t when t = t_miss -> Miss
  | t when t = t_shed -> Shed
  | t when t = t_corrupted -> Corrupted
  | t when t = t_not_owner -> Not_owner (read_u16 c "owner node id")
  | t when t = t_err ->
    let n = read_u32 c "error" in
    Err (Bytes.to_string (read_bytes c n "error"))
  | t when t = t_replies ->
    if not top then corrupt "nested batch reply";
    let n = read_u16 c "reply count" in
    if n > max_batch then corrupt "reply count %d out of range" n;
    Replies (List.init n (fun _ -> parse_reply ~top:false c))
  | t when t = t_values ->
    let n = read_u16 c "scan entry count" in
    if n > max_batch then corrupt "scan entry count %d out of range" n;
    Values
      (List.init n (fun _ ->
           let key = read_key c in
           let vlen = read_u32 c "scan entry vlen" in
           match read_u8 c "scan entry flag" with
           | 0 -> (key, vlen, None)
           | 1 ->
             let n = read_u32 c "scan entry value" in
             (key, vlen, Some (read_bytes c n "scan entry value"))
           | f -> corrupt "scan entry flag %d invalid" f))
  | t -> corrupt "unknown reply tag 0x%02x" t

let parse_hdr c =
  ignore (read_u8 c "header tag");
  need c 4 "request id";
  let h_req_id =
    Int32.to_int (Bytes.get_int32_le c.cbuf c.cpos) land 0xFFFFFFFF
  in
  c.cpos <- c.cpos + 4;
  need c 8 "deadline";
  let h_deadline_ns = Int64.float_of_bits (Bytes.get_int64_le c.cbuf c.cpos) in
  c.cpos <- c.cpos + 8;
  if Float.is_nan h_deadline_ns || h_deadline_ns < 0.0 then
    corrupt "deadline out of range";
  { h_req_id; h_deadline_ns }

let parse_body buf ~pos ~len =
  let c = { cbuf = buf; cpos = pos; climit = pos + len } in
  let tag = Char.code (Bytes.get buf pos) in
  let msg =
    if tag = t_tagged then
      let hdr = parse_hdr c in
      Tagged (hdr, parse_req c)
    else if tag <= t_scan then Request (parse_req c)
    else Reply (parse_reply c)
  in
  if c.cpos <> c.climit then
    corrupt "%d trailing bytes in frame" (c.climit - c.cpos);
  msg

type decoder = {
  mutable acc : Bytes.t;   (* accumulation buffer *)
  mutable start : int;     (* first unconsumed byte *)
  mutable fill : int;      (* end of valid data *)
  mutable error : string option;
  mutable decoded : int;
}

let decoder () =
  { acc = Bytes.create 512; start = 0; fill = 0; error = None; decoded = 0 }

let decoded_count d = d.decoded

let feed d b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Proto.feed";
  if d.error = None && len > 0 then begin
    let pending = d.fill - d.start in
    if d.fill + len > Bytes.length d.acc then begin
      (* compact, growing if the pending prefix plus input still overflows *)
      let cap = max (Bytes.length d.acc) (((pending + len) * 2) + 64) in
      let fresh =
        if cap > Bytes.length d.acc then Bytes.create cap else d.acc
      in
      Bytes.blit d.acc d.start fresh 0 pending;
      d.acc <- fresh;
      d.start <- 0;
      d.fill <- pending
    end;
    Bytes.blit b off d.acc d.fill len;
    d.fill <- d.fill + len
  end

let feed_bytes d b = feed d b ~off:0 ~len:(Bytes.length b)

let next d =
  match d.error with
  | Some m -> `Corrupt m
  | None -> (
    let pending = d.fill - d.start in
    if pending < 1 then `Await
    else if Bytes.get d.acc d.start <> magic then begin
      let m =
        Printf.sprintf "bad magic 0x%02x" (Char.code (Bytes.get d.acc d.start))
      in
      d.error <- Some m;
      `Corrupt m
    end
    else if pending < header_bytes then `Await
    else begin
      let blen = Int32.to_int (Bytes.get_int32_le d.acc (d.start + 1)) in
      if blen <= 0 || blen > max_body_bytes then begin
        let m = Printf.sprintf "frame length %d out of range" blen in
        d.error <- Some m;
        `Corrupt m
      end
      else if pending < header_bytes + blen then `Await
      else begin
        match
          parse_body d.acc ~pos:(d.start + header_bytes) ~len:blen
        with
        | msg ->
          d.start <- d.start + header_bytes + blen;
          if d.start = d.fill then begin
            d.start <- 0;
            d.fill <- 0
          end;
          d.decoded <- d.decoded + 1;
          `Msg msg
        | exception Corrupt m ->
          d.error <- Some m;
          `Corrupt m
      end
    end)

(* ------------------------------ utilities ----------------------------- *)

let rec ops_in_req = function
  | Get _ | Put _ | Delete _ | Scan _ -> 1
  | Batch reqs -> List.fold_left (fun a r -> a + ops_in_req r) 0 reqs

let rec puts_in_req = function
  | Get _ | Scan _ -> 0
  | Put _ | Delete _ -> 1
  | Batch reqs -> List.fold_left (fun a r -> a + puts_in_req r) 0 reqs

let rec pp_req ppf = function
  | Get k -> Format.fprintf ppf "Get(%Ld)" k
  | Put (k, v) -> Format.fprintf ppf "Put(%Ld,%dB)" k (Bytes.length v)
  | Delete k -> Format.fprintf ppf "Delete(%Ld)" k
  | Scan (k, n) -> Format.fprintf ppf "Scan(%Ld,%d)" k n
  | Batch rs ->
    Format.fprintf ppf "Batch[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         pp_req)
      rs

let rec pp_reply ppf = function
  | Ok -> Format.fprintf ppf "Ok"
  | Value v -> Format.fprintf ppf "Value(%dB)" (Bytes.length v)
  | Hit n -> Format.fprintf ppf "Hit(%d)" n
  | Miss -> Format.fprintf ppf "Miss"
  | Shed -> Format.fprintf ppf "Shed"
  | Corrupted -> Format.fprintf ppf "Corrupted"
  | Not_owner node -> Format.fprintf ppf "NotOwner(%d)" node
  | Err m -> Format.fprintf ppf "Err(%s)" m
  | Values es -> Format.fprintf ppf "Values(%d)" (List.length es)
  | Replies rs ->
    Format.fprintf ppf "Replies[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         pp_reply)
      rs
