(* Load generation for the serving layer.

   Open-loop schedules fix every request's intended arrival time *before*
   the run: a Poisson process (exponential gaps) or a square wave that
   alternates between a base and a burst rate.  Because the schedule never
   waits for the server, a slow server piles requests into the queue and
   the recorded service latency (measured from the intended arrival by
   [Server]) captures the full queueing delay — no coordinated omission.

   Closed-loop mode is the classic benchmark shape for comparison: each
   connection issues its next request only when the previous reply lands.

   Arrivals carry pre-encoded wire frames so every generated request
   exercises the [Proto] codec end to end. *)

module Rng = Workload.Rng

type process =
  | Poisson of { rate_mops : float }
  | Square of {
      base_mops : float;
      burst_mops : float;
      period_ns : float;
      duty : float;  (* fraction of each period spent at burst rate *)
    }

let rate_at process ~elapsed_ns =
  match process with
  | Poisson { rate_mops } -> rate_mops
  | Square { base_mops; burst_mops; period_ns; duty } ->
    let phase = Float.rem elapsed_ns period_ns /. period_ns in
    if phase < duty then burst_mops else base_mops

let process_name = function
  | Poisson { rate_mops } -> Printf.sprintf "poisson %.2f Mreq/s" rate_mops
  | Square { base_mops; burst_mops; period_ns; duty } ->
    Printf.sprintf "square %.2f/%.2f Mreq/s period %.1f ms duty %.2f"
      base_mops burst_mops (period_ns /. 1e6) duty

(* Exponential inter-arrival gap for the instantaneous rate: 1 Mreq/s means
   one request per 1000 simulated ns on average. *)
let gap rng ~rate_mops =
  let mean = 1000.0 /. rate_mops in
  let u = 1.0 -. Rng.float rng in
  -.mean *. log u

let open_loop ?(seed = 42) ?(conns = 4) ?(conn_base = 0) ~process ~reqgen
    ~duration_ns ~start_at () =
  if conns <= 0 then invalid_arg "Loadgen.open_loop: conns <= 0";
  if duration_ns <= 0.0 then invalid_arg "Loadgen.open_loop: duration <= 0";
  let rng = Rng.create ~seed in
  let acc = ref [] in
  let t = ref start_at in
  let i = ref 0 in
  (* first arrival one mean gap in, so the very start is not synchronized *)
  t := !t +. gap rng ~rate_mops:(rate_at process ~elapsed_ns:0.0);
  while !t < start_at +. duration_ns do
    let req = reqgen rng in
    acc :=
      { Server.at = !t;
        conn = conn_base + (!i mod conns);
        frame = Proto.encode_request req }
      :: !acc;
    incr i;
    let r = rate_at process ~elapsed_ns:(!t -. start_at) in
    t := !t +. gap rng ~rate_mops:r
  done;
  let arr = Array.of_list (List.rev !acc) in
  arr

let merge streams =
  let all = Array.concat streams in
  Array.stable_sort
    (fun a b -> compare a.Server.at b.Server.at)
    all;
  all

let closed_loop ?(seed = 42) ~conns ~reqs_per_conn ~reqgen () =
  if conns <= 0 then invalid_arg "Loadgen.closed_loop: conns <= 0";
  let rngs = Hashtbl.create conns in
  let remaining = Hashtbl.create conns in
  let gen ~conn ~now:_ =
    let left =
      match Hashtbl.find_opt remaining conn with
      | Some n -> n
      | None ->
        Hashtbl.replace remaining conn reqs_per_conn;
        reqs_per_conn
    in
    if left <= 0 then None
    else begin
      Hashtbl.replace remaining conn (left - 1);
      let rng =
        match Hashtbl.find_opt rngs conn with
        | Some r -> r
        | None ->
          let r = Rng.create ~seed:(seed + conn) in
          Hashtbl.add rngs conn r;
          r
      in
      Some (reqgen rng)
    end
  in
  { Server.conns; gen }

(* Standard request generator: uniform keys over a preloaded universe,
   [get_frac] reads, writes carrying [vlen]-byte values. *)
let mixed_reqgen ~n_keys ~get_frac ~vlen =
  if n_keys <= 0 then invalid_arg "Loadgen.mixed_reqgen: n_keys <= 0";
  let payload = Bytes.make vlen 'v' in
  fun rng ->
    let key = Workload.Keyspace.key_of_index (Rng.int rng n_keys) in
    if Rng.float rng < get_frac then Proto.Get key else Proto.Put (key, payload)
