(** Simulated serving pipeline: connections, scheduler queue, workers.

    Requests arrive as wire frames ({!Proto}) at intended times fixed by
    the load generator.  Each connection RX-decodes its frames on its own
    clock, admission control ({!Admission}) may shed writes at the door,
    and admitted requests wait in a scheduler queue until a simulated
    worker dispatches them (FIFO or shard-affinity with work stealing),
    executes them against the store, and encodes the reply.

    Service latency is measured from the *intended* arrival — queueing
    included — so open-loop tails are free of coordinated omission. *)

type sched =
  | Fifo             (** single shared queue, oldest-first *)
  | Shard_affinity   (** per-worker queues routed by key shard; idle
                         workers steal from the deepest backlog *)

val sched_name : sched -> string

type costs = {
  byte_ns : float;      (** codec cost per wire byte (RX and TX) *)
  frame_ns : float;     (** fixed per-frame codec cost *)
  dispatch_ns : float;  (** scheduler hand-off, paid once per worker batch *)
}

val default_costs : costs

type arrival = {
  at : float;      (** intended arrival, simulated ns *)
  conn : int;      (** connection id; frames on a conn decode in order *)
  frame : bytes;   (** raw wire bytes — may be a partial or corrupt frame *)
}

type closed = {
  conns : int;
  gen : conn:int -> now:float -> Proto.req option;
  (** Closed-loop clients: each connection issues its next request when
      the previous reply lands; [None] retires the connection. *)
}

type window = {
  w_start : float;
  w_reqs : int;
  w_writes : int;
  w_shed : int;
  w_gets : int;
  w_get_p99 : float;  (** windowed p99 get {e service} latency, ns *)
}

type stats = {
  submitted : int;       (** requests decoded off connections *)
  executed : int;        (** requests that reached the store *)
  ops_executed : int;    (** primitive ops (batches count their size) *)
  shed : int;            (** rejected by admission control *)
  corrupt : int;         (** connections dropped on codec corruption *)
  start_ns : float;
  end_ns : float;
  service : Metrics.Histogram.t;      (** finish − intended, all requests *)
  get_service : Metrics.Histogram.t;  (** read-only requests *)
  put_service : Metrics.Histogram.t;  (** requests containing a write *)
  queue_wait : Metrics.Histogram.t;   (** dispatch − RX-ready *)
  get_execute : Metrics.Histogram.t;  (** store-execution stage of gets *)
  max_depth : int;                    (** peak scheduler-queue depth *)
  windows : window list;
  counters : (string * float) list;   (** Obs counter deltas for this run *)
}

val throughput_mops : stats -> float
val shed_rate : stats -> float

val run :
  ?costs:costs ->
  ?sched:sched ->
  ?admission:Admission.t ->
  ?batch_max:int ->
  ?linger_ns:float ->
  ?window_ns:float ->
  ?arrivals:arrival array ->
  ?closed:closed ->
  store:Kv_common.Store_intf.store ->
  workers:int ->
  start_at:float ->
  unit ->
  stats
(** Drive the serving pipeline to completion: all open-loop [arrivals]
    (must be sorted by [at]) plus any [closed] connections.  [workers]
    simulated threads execute requests; [batch_max] bounds how many queued
    requests one dispatch hands a worker.  [linger_ns] (default 0: off)
    lets a worker with a short queue hold dispatch until the oldest queued
    request has waited that long, so the dispatch batch — and the group
    commit it becomes — can fill.  Runs of write-only frames inside one
    dispatch execute as a single {!Kv_common.Store_intf.write_batch}
    group commit (one persist fence where the store has one); every op
    inside a [Batch] frame is timed from the frame's intended arrival,
    one service sample per primitive op.  [window_ns] sets the bucketing
    for {!stats.windows}. *)
