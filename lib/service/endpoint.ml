(* Real serving path: the same Proto frames over a Unix-domain socket.

   This is deliberately small — a select loop, one Proto decoder per
   connection, a backend function that executes requests against a store.
   It exists so the wire codec is proven against a live byte stream (torn
   reads, pipelined frames, hostile input) and so `ckv serve` / `ckv
   client` give the repo a runnable server, not only a simulated one.

   Execution uses a free-running simulated clock per server: the cost
   model still meters device traffic, but wall-clock scheduling is the
   OS's business here, not ours. *)

type backend = Proto.req -> Proto.reply

let backend_of_store ?redirect ~clock store =
  let module S = Kv_common.Store_intf in
  let vlog = S.vlog store in
  (* routing-aware serving: when a redirect function says another node owns
     the key, refuse with an explicit Not_owner hint instead of answering —
     a node must never serve a range it does not own *)
  let not_owner k =
    match redirect with None -> None | Some f -> f k
  in
  let rec exec ~top req =
    match req with
    | Proto.Get k when not_owner k <> None ->
      Proto.Not_owner (Option.get (not_owner k))
    | Proto.Put (k, _) when not_owner k <> None ->
      Proto.Not_owner (Option.get (not_owner k))
    | Proto.Delete k when not_owner k <> None ->
      Proto.Not_owner (Option.get (not_owner k))
    | Proto.Get k -> (
      match S.read store clock k with
      | { S.value = Some v; _ } -> Proto.Value v
      | { S.loc = Some loc; _ } -> (
        (* stores that don't surface payloads in [read] may still
           materialize them in the vlog *)
        match Kv_common.Vlog.value_at vlog clock loc with
        | Ok (Some v) -> Proto.Value v
        | Ok None -> Proto.Hit (Kv_common.Vlog.vlen_at vlog loc)
        | Error `Corrupt -> Proto.Corrupted)
      | { S.stage = S.Corrupt; _ } -> Proto.Corrupted
      | { S.loc = None; _ } -> Proto.Miss)
    | Proto.Scan _ when redirect <> None ->
      (* a scan spans the whole keyspace; a routed node owning only some
         shards cannot answer it alone *)
      Proto.Err "scan unsupported on routed node"
    | Proto.Scan (start, limit) -> (
      let entries = S.scan store clock ~start ~limit in
      let materialize (k, loc) =
        match Kv_common.Vlog.value_at vlog clock loc with
        | Ok (Some v) -> Some (k, Bytes.length v, Some v)
        | Ok None -> Some (k, Kv_common.Vlog.vlen_at vlog loc, None)
        | Error `Corrupt -> None
      in
      let out = List.map materialize entries in
      (* a corrupt record fails the whole scan closed, like a corrupt get *)
      if List.exists Option.is_none out then Proto.Corrupted
      else Proto.Values (List.filter_map Fun.id out))
    | Proto.Put (k, v) ->
      S.write store clock k (S.Payload v);
      Proto.Ok
    | Proto.Delete k ->
      S.delete store clock k;
      Proto.Ok
    | Proto.Batch reqs ->
      if not top then Proto.Err "nested batch"
      else begin
        (* a put-only batch on an unrouted endpoint is a group commit:
           one [write_batch] (one persist fence where the store has one)
           covers the whole frame *)
        let rec puts acc = function
          | [] -> Some (List.rev acc)
          | Proto.Put (k, v) :: tl when not_owner k = None ->
            puts ((k, S.Payload v) :: acc) tl
          | _ -> None
        in
        match puts [] reqs with
        | Some (_ :: _ as items) ->
          S.write_batch store clock items;
          Proto.Replies (List.map (fun _ -> Proto.Ok) reqs)
        | _ -> Proto.Replies (List.map (exec ~top:false) reqs)
      end
  in
  exec ~top:true

(* ------------------------------- server ------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  dec : Proto.decoder;
}

let write_all fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = Unix.write fd b !off (n - !off) in
    if k <= 0 then raise Exit;
    off := !off + k
  done

let serve ?(backlog = 16) ?(max_requests = max_int) ?on_ready ~path backend =
  (match Sys.os_type with
  | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd backlog;
  (match on_ready with Some f -> f () | None -> ());
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let served = ref 0 in
  let buf = Bytes.create 4096 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with _ -> ()
  in
  let handle_readable c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn c
    | n ->
      Proto.feed c.dec buf ~off:0 ~len:n;
      let rec drain () =
        match Proto.next c.dec with
        | `Await -> ()
        | `Corrupt m ->
          (try write_all c.fd (Proto.encode_reply (Proto.Err m))
           with _ -> ());
          close_conn c
        | `Msg (Proto.Reply _) ->
          (try
             write_all c.fd
               (Proto.encode_reply (Proto.Err "unexpected reply"))
           with _ -> ());
          close_conn c
        | `Msg (Proto.Request req | Proto.Tagged (_, req)) ->
          (* the single-node endpoint serves a tagged request like a bare
             one: the envelope is for the cluster router's retry path *)
          let reply = try backend req with _ -> Proto.Err "backend failure" in
          (match try write_all c.fd (Proto.encode_reply reply); true
                 with _ -> close_conn c; false
           with
          | true ->
            incr served;
            drain ()
          | false -> ())
      in
      drain ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn c
  in
  (try
     while !served < max_requests do
       let fds = lfd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
       let readable, _, _ = Unix.select fds [] [] (-1.0) in
       List.iter
         (fun fd ->
           if fd = lfd then begin
             let cfd, _ = Unix.accept lfd in
             Hashtbl.replace conns cfd { fd = cfd; dec = Proto.decoder () }
           end
           else
             match Hashtbl.find_opt conns fd with
             | Some c -> handle_readable c
             | None -> ())
         readable
     done
   with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) conns;
  (try Unix.close lfd with _ -> ());
  (try Unix.unlink path with _ -> ());
  !served

(* ------------------------------- client ------------------------------- *)

type client = {
  cfd : Unix.file_descr;
  cdec : Proto.decoder;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { cfd = fd; cdec = Proto.decoder () }

let await_reply c =
  let buf = Bytes.create 4096 in
  let rec await () =
    match Proto.next c.cdec with
    | `Msg (Proto.Reply r) -> r
    | `Msg (Proto.Request _ | Proto.Tagged _) ->
      failwith "Endpoint.request: server sent request"
    | `Corrupt m -> failwith ("Endpoint.request: corrupt reply: " ^ m)
    | `Await ->
      let n = Unix.read c.cfd buf 0 (Bytes.length buf) in
      if n = 0 then failwith "Endpoint.request: connection closed";
      Proto.feed c.cdec buf ~off:0 ~len:n;
      await ()
  in
  await ()

let request c req =
  write_all c.cfd (Proto.encode_request req);
  await_reply c

let close c = try Unix.close c.cfd with _ -> ()

(* --------------------------- auto-batching ---------------------------- *)

(* Pipelined client-side write buffering (Viper's per-client buffers over
   the wire): submitted requests accumulate until a count, byte, or
   linger threshold flushes them as one [Proto.Batch] frame, sent without
   blocking for the reply.  Replies are collected by [drain], one per
   submitted request, in submit order. *)

type frame_shape = Single | Grouped of int

type batcher = {
  b_client : client;
  b_max_count : int;
  b_max_bytes : int;
  b_linger : float;                      (* seconds on [b_now]'s clock *)
  b_now : unit -> float;
  mutable b_queue : Proto.req list;      (* pending, newest first *)
  mutable b_count : int;
  mutable b_bytes : int;
  mutable b_opened : float;              (* when the open buffer started *)
  b_inflight : frame_shape Queue.t;      (* flushed frames awaiting reply *)
}

let batcher ?(max_count = 16) ?(max_bytes = 64 * 1024) ?(linger = 0.0)
    ?(now = Unix.gettimeofday) client =
  if max_count <= 0 || max_count > Proto.max_batch then
    invalid_arg "Endpoint.batcher: max_count out of range";
  if max_bytes <= 0 then invalid_arg "Endpoint.batcher: max_bytes <= 0";
  if linger < 0.0 then invalid_arg "Endpoint.batcher: linger < 0";
  { b_client = client;
    b_max_count = max_count;
    b_max_bytes = max_bytes;
    b_linger = linger;
    b_now = now;
    b_queue = [];
    b_count = 0;
    b_bytes = 0;
    b_opened = 0.0;
    b_inflight = Queue.create () }

let pending b = b.b_count
let inflight b = Queue.length b.b_inflight

let flush b =
  match List.rev b.b_queue with
  | [] -> ()
  | reqs ->
    let frame, shape =
      match reqs with
      | [ req ] -> (req, Single)
      | reqs -> (Proto.Batch reqs, Grouped (List.length reqs))
    in
    write_all b.b_client.cfd (Proto.encode_request frame);
    Queue.push shape b.b_inflight;
    b.b_queue <- [];
    b.b_count <- 0;
    b.b_bytes <- 0

let submit b req =
  (match req with
  | Proto.Batch _ -> invalid_arg "Endpoint.submit: nested batch"
  | _ -> ());
  if b.b_count = 0 then b.b_opened <- b.b_now ();
  b.b_queue <- req :: b.b_queue;
  b.b_count <- b.b_count + 1;
  b.b_bytes <- b.b_bytes + Bytes.length (Proto.encode_request req);
  if b.b_count >= b.b_max_count || b.b_bytes >= b.b_max_bytes then flush b

let deadline b = if b.b_count = 0 then None else Some (b.b_opened +. b.b_linger)

let tick b =
  if b.b_count > 0 && b.b_now () -. b.b_opened >= b.b_linger then flush b

let drain b =
  flush b;
  let out = ref [] in
  while not (Queue.is_empty b.b_inflight) do
    let shape = Queue.pop b.b_inflight in
    let reply = await_reply b.b_client in
    match (shape, reply) with
    | Single, r -> out := r :: !out
    | Grouped n, Proto.Replies rs when List.length rs = n ->
      List.iter (fun r -> out := r :: !out) rs
    | Grouped n, r ->
      (* a whole-frame failure (Err, Shed) answers for each of its ops *)
      for _ = 1 to n do
        out := r :: !out
      done
  done;
  List.rev !out
