(** Open- and closed-loop load generation for the serving layer.

    Open-loop schedules fix every intended arrival time before the run
    (Poisson or square-wave burst process), so service latency recorded by
    {!Server} from those times is free of coordinated omission.  Arrivals
    carry pre-encoded {!Proto} frames, exercising the codec end to end. *)

type process =
  | Poisson of { rate_mops : float }
      (** exponential gaps at [rate_mops] million requests/s *)
  | Square of {
      base_mops : float;
      burst_mops : float;
      period_ns : float;
      duty : float;  (** fraction of each period spent at the burst rate *)
    }

val rate_at : process -> elapsed_ns:float -> float
val process_name : process -> string

val open_loop :
  ?seed:int ->
  ?conns:int ->
  ?conn_base:int ->
  process:process ->
  reqgen:(Workload.Rng.t -> Proto.req) ->
  duration_ns:float ->
  start_at:float ->
  unit ->
  Server.arrival array
(** Deterministic arrival schedule covering [duration_ns], requests spread
    round-robin over [conns] connections numbered from [conn_base]. *)

val merge : Server.arrival array list -> Server.arrival array
(** Merge schedules (e.g. a steady get stream and a bursty put stream on
    disjoint connection ranges) into one stream sorted by arrival time. *)

val closed_loop :
  ?seed:int ->
  conns:int ->
  reqs_per_conn:int ->
  reqgen:(Workload.Rng.t -> Proto.req) ->
  unit ->
  Server.closed
(** Classic closed-loop clients for comparison: each connection issues its
    next request when the previous reply lands, [reqs_per_conn] times. *)

val mixed_reqgen :
  n_keys:int -> get_frac:float -> vlen:int -> Workload.Rng.t -> Proto.req
(** Uniform keys over a preloaded universe of [n_keys]; [get_frac] reads,
    writes carrying [vlen]-byte values. *)
