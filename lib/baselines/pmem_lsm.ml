module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Bloom = Kv_common.Bloom
module Flat_table = Kv_common.Flat_table
module Linear_table = Kv_common.Linear_table
module Config = Chameleondb.Config
module Memtable = Chameleondb.Memtable
module Levels = Chameleondb.Levels
module Manifest = Chameleondb.Manifest
module Fault_point = Kv_common.Fault_point

type variant = Nf | F | Pink

let variant_name = function
  | Nf -> "Pmem-LSM-NF"
  | F -> "Pmem-LSM-F"
  | Pink -> "Pmem-LSM-PinK"

(* Shared observability counters (same registry names as the ChameleonDB
   shard, so stage tallies are directly comparable across stores). *)
let c_flushes = Obs.Counters.counter "shard.flushes"
let c_flush_bytes = Obs.Counters.counter "flush.bytes"
let c_compaction_bytes = Obs.Counters.counter "compaction.bytes"
let c_put_stall_ns = Obs.Counters.counter "put.stall_ns"
let c_memtable_hits = Obs.Counters.counter "get.memtable_hits"
let c_bloom_fp = Obs.Counters.counter "bloom.false_positives"

(* Per-level false-positive counters, registered on first use (the global
   [c_bloom_fp] keeps its historical name for existing reports). *)
let fp_level_cache = Hashtbl.create 8

let c_bloom_fp_level level =
  match Hashtbl.find_opt fp_level_cache level with
  | Some c -> c
  | None ->
    let c =
      Obs.Counters.counter (Printf.sprintf "bloom.false_positives.L%d" level)
    in
    Hashtbl.add fp_level_cache level c;
    c

let bg_tid id = 1000 + id

type shard = {
  id : int;
  memtable : Memtable.t;
  lv : Levels.t;
  blooms : (int, Bloom.t) Hashtbl.t; (* keyed by table tag (F variant) *)
  mutable next_seq : int;
  mutable bg_free_at : float;
  mutable mt_floor : int;
  mutable last_bg_compacted : bool;
}

type t = {
  variant : variant;
  cfg : Config.t;
  bloom_bits : int;
  dev : Device.t;
  vlog : Vlog.t;
  manifest : Manifest.t;
  shards : shard array;
  mutable in_recovery : bool;
}

let create ?(cfg = Config.default) ?(bloom_bits = 10) ?dev variant =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  let vlog = Vlog.create ~batch_bytes:cfg.Config.vlog_batch_bytes dev in
  { variant;
    cfg;
    bloom_bits;
    dev;
    vlog;
    manifest = Manifest.create ~shards:cfg.Config.shards dev;
    in_recovery = false;
    shards =
      Array.init cfg.Config.shards (fun id ->
          { id;
            memtable = Memtable.create ~cfg ~shard_id:id;
            lv = Levels.create ~cfg;
            blooms = Hashtbl.create 16;
            next_seq = 1;
            bg_free_at = 0.0;
            mt_floor = 0;
            last_bg_compacted = false }) }

let shard_of t key =
  t.shards.(Kv_common.Hash.shard_of
              ~hash:(Kv_common.Hash.mix64 key)
              ~shards:t.cfg.Config.shards)

(* {2 Table construction, with variant-specific extras.} *)

let register_table t shard clock tbl entries =
  Linear_table.set_tag tbl shard.next_seq;
  shard.next_seq <- shard.next_seq + 1;
  (match t.variant with
  | F ->
    let bloom =
      Bloom.create
        ~expected:(max 16 (List.length entries))
        ~bits_per_key:t.bloom_bits
    in
    List.iter (fun (k, _) -> Bloom.add bloom clock k) entries;
    (* filter block persisted alongside the table, as in LevelDB *)
    Device.charge_append t.dev clock
      ~len:(int_of_float (Bloom.footprint_bytes bloom));
    Hashtbl.replace shard.blooms (Linear_table.tag tbl) bloom
  | Pink ->
    (* copy the fresh table into its pinned DRAM mirror *)
    Clock.advance clock
      (Cost_model.memcpy_ns_per_byte
      *. float_of_int (Linear_table.byte_size tbl))
  | Nf -> ());
  tbl

let build_table t shard clock ~slots entries =
  register_table t shard clock (Linear_table.build t.dev clock ~slots entries)
    entries

(* The last level is the ordered run, as in ChameleonDB: built dense and
   key-sorted during the wholesale merge rewrite so range scans cursor it. *)
let build_last_table t shard clock entries =
  register_table t shard clock
    (Linear_table.build_sorted t.dev clock entries)
    entries

let drop_table shard tbl =
  Hashtbl.remove shard.blooms (Linear_table.tag tbl);
  Linear_table.free tbl

(* Read a table's entries for compaction: PinK reads its DRAM mirror, the
   other variants stream from the Pmem. *)
let table_entries t clock tbl =
  let acc = ref [] in
  (match t.variant with
  | Pink ->
    Clock.advance clock
      (Cost_model.memcpy_ns_per_byte
      *. float_of_int (Linear_table.byte_size tbl));
    Linear_table.iter_silent tbl (fun k l -> acc := (k, l) :: !acc)
  | Nf | F -> Linear_table.iter tbl clock (fun k l -> acc := (k, l) :: !acc));
  List.rev !acc

let merge_newest_first ?drop_tombstones clock per_table_entries =
  Kv_common.Merge.newest_first ?drop_tombstones
    ~on_entry:(fun () -> Clock.advance clock Cost_model.key_compare_ns)
    (List.map Kv_common.Merge.of_list per_table_entries)

(* {2 Level-by-level size-tiered compaction with a leveled last level.} *)

let rec cascade t shard bg ~level =
  let u = Config.upper_levels t.cfg in
  let tables = (Levels.upper shard.lv).(level) in
  let sources = List.map (table_entries t bg) tables in
  if level + 1 <= u - 1 then begin
    Fault_point.with_site Fault_point.Upper_compaction (fun () ->
        let entries = merge_newest_first bg sources in
        let slots = Levels.table_slots ~cfg:t.cfg ~level:(level + 1) in
        let fresh = build_table t shard bg ~slots entries in
        Obs.Counters.add_int c_compaction_bytes (Linear_table.byte_size fresh);
        List.iter (drop_table shard) tables;
        (Levels.upper shard.lv).(level) <- [];
        Levels.add_table shard.lv ~level:(level + 1) fresh);
    if Levels.level_len shard.lv (level + 1) >= t.cfg.Config.ratio then
      cascade t shard bg ~level:(level + 1)
  end
  else begin
    Fault_point.with_site Fault_point.Last_level_merge @@ fun () ->
    let last_entries =
      match Levels.last shard.lv with
      | None -> []
      | Some tbl ->
        (* the last level is never pinned: always a Pmem read *)
        let acc = ref [] in
        Linear_table.iter tbl bg (fun k l -> acc := (k, l) :: !acc);
        [ List.rev !acc ]
    in
    let entries =
      merge_newest_first ~drop_tombstones:true bg (sources @ last_entries)
    in
    let fresh = build_last_table t shard bg entries in
    Obs.Counters.add_int c_compaction_bytes (Linear_table.byte_size fresh);
    (match Levels.last shard.lv with
    | Some old -> drop_table shard old
    | None -> ());
    Levels.set_last shard.lv (Some fresh);
    List.iter (drop_table shard) tables;
    (Levels.upper shard.lv).(level) <- []
  end

let flush t shard clock =
  let stall = Clock.wait_until clock shard.bg_free_at in
  if stall > 0.0 then begin
    Obs.Counters.add c_put_stall_ns stall;
    if Obs.Attribution.enabled () then
      Obs.Attribution.add
        (if shard.last_bg_compacted then Obs.Attribution.Put_compaction_stall
         else Obs.Attribution.Put_flush_stall)
        stall
  end;
  Obs.Counters.incr c_flushes;
  let entries = Memtable.entries shard.memtable in
  (* keep the floor below the log entry of the put that triggered us *)
  let floor' = max shard.mt_floor (Vlog.length t.vlog - 1) in
  let bg = Clock.create ~at:(Clock.now clock) () in
  Obs.Trace.begin_span bg ~tid:(bg_tid shard.id) ~cat:"bg" "flush";
  Fault_point.with_site Fault_point.Flush (fun () ->
      Vlog.flush t.vlog bg;
      let tbl =
        build_table t shard bg ~slots:t.cfg.Config.memtable_slots entries
      in
      Obs.Counters.add_int c_flush_bytes (Linear_table.byte_size tbl);
      Levels.add_table shard.lv ~level:0 tbl;
      shard.last_bg_compacted <- false;
      if Levels.l0_full shard.lv then begin
        Obs.Trace.begin_span bg ~tid:(bg_tid shard.id) ~cat:"compaction"
          "compact";
        cascade t shard bg ~level:0;
        Obs.Trace.end_span bg ~tid:(bg_tid shard.id) ~cat:"compaction"
          "compact";
        shard.last_bg_compacted <- true
      end;
      (* persist the recovery floor last, once everything it stands for is
         durable — except while recovery itself replays the log: entries
         past the replay point are in no table yet, so advancing the
         persisted floor mid-replay would lose them if recovery crashed *)
      if not t.in_recovery then
        Manifest.set_floors t.manifest bg ~shard:shard.id ~mt_floor:floor'
          ~absorb_floor:None);
  Obs.Trace.end_span bg ~tid:(bg_tid shard.id) ~cat:"bg" "flush";
  shard.bg_free_at <- Clock.now bg;
  Memtable.reset shard.memtable;
  shard.mt_floor <- floor'

let rec shard_put t shard clock key loc =
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  match Memtable.put shard.memtable clock key loc with
  | `Ok ->
    if attr then
      Obs.Attribution.add Obs.Attribution.Put_index_insert
        (Clock.now clock -. t0)
  | `Full ->
    if attr then
      Obs.Attribution.add Obs.Attribution.Put_index_insert
        (Clock.now clock -. t0);
    flush t shard clock;
    shard_put t shard clock key loc

let put t clock key ~vlen =
  Obs.Trace.begin_span clock ~cat:"op" "put";
  let loc = Vlog.append t.vlog clock key ~vlen in
  shard_put t (shard_of t key) clock key loc;
  Obs.Trace.end_span clock ~cat:"op" "put"

let delete t clock key =
  Obs.Trace.begin_span clock ~cat:"op" "delete";
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  shard_put t (shard_of t key) clock key Types.tombstone;
  Obs.Trace.end_span clock ~cat:"op" "delete"

(* {2 Get path: MemTable, then every table level by level.} *)

let probe_table t shard clock ~level tbl key =
  match t.variant with
  | Pink ->
    (* DRAM mirror probe: not subject to media corruption *)
    let result, probes = Linear_table.get_silent tbl key in
    Clock.advance clock
      (Cost_model.dram_read_ns
      +. (float_of_int (max 0 (probes - 1)) *. Cost_model.dram_hit_ns));
    (match result with
    | Some loc -> Linear_table.Found loc
    | None -> Linear_table.Absent)
  | Nf -> Linear_table.get tbl clock key
  | F ->
    let bloom = Hashtbl.find_opt shard.blooms (Linear_table.tag tbl) in
    let maybe_present =
      match bloom with
      | Some b -> Bloom.mem ~level b clock key
      | None -> true
    in
    if maybe_present then begin
      let r = Linear_table.get tbl clock key in
      if r = Linear_table.Absent && bloom <> None then begin
        Obs.Counters.incr c_bloom_fp;
        Obs.Counters.incr (c_bloom_fp_level level)
      end;
      r
    end
    else Linear_table.Absent

(* The last level is never pinned in DRAM: even PinK probes it on the
   device (the F variant still consults its filter first). *)
let probe_last t shard clock ~level tbl key =
  match t.variant with
  | Nf | Pink -> Linear_table.get tbl clock key
  | F ->
    let bloom = Hashtbl.find_opt shard.blooms (Linear_table.tag tbl) in
    let maybe_present =
      match bloom with
      | Some b -> Bloom.mem ~level b clock key
      | None -> true
    in
    if maybe_present then begin
      let r = Linear_table.get tbl clock key in
      if r = Linear_table.Absent && bloom <> None then begin
        Obs.Counters.incr c_bloom_fp;
        Obs.Counters.incr (c_bloom_fp_level level)
      end;
      r
    end
    else Linear_table.Absent

let shard_get t shard clock key =
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  let mt = Memtable.get shard.memtable clock key in
  if attr then
    Obs.Attribution.add Obs.Attribution.Get_memtable (Clock.now clock -. t0);
  match mt with
  | Some loc ->
    Obs.Counters.incr c_memtable_hits;
    (`Hit loc, 0)
  | None ->
    let t1 = if attr then Clock.now clock else 0.0 in
    let of_probe = function
      | Linear_table.Found loc -> `Hit loc
      | Linear_table.Absent -> `Miss
      | Linear_table.Corrupted -> `Corrupt
    in
    let u = Config.upper_levels t.cfg in
    (* walk the levels by index (same newest-first order as the flattened
       [upper_tables_newest_first]) so filter probes carry their level *)
    let rec go_level n level =
      if level >= u then
        match Levels.last shard.lv with
        | Some tbl ->
          (of_probe (probe_last t shard clock ~level:u tbl key), n + 1)
        | None -> (`Miss, n)
      else begin
        let rec go_tables n = function
          | [] -> go_level n (level + 1)
          | tbl :: rest ->
            (* a corrupt block fails the whole probe closed: falling through
               to an older level could resurrect a superseded version *)
            (match probe_table t shard clock ~level tbl key with
            | Linear_table.Found loc -> (`Hit loc, n + 1)
            | Linear_table.Corrupted -> (`Corrupt, n + 1)
            | Linear_table.Absent -> go_tables (n + 1) rest)
        in
        go_tables n (Levels.upper shard.lv).(level)
      end
    in
    let r = go_level 0 0 in
    if attr then
      Obs.Attribution.add Obs.Attribution.Get_level_probe
        (Clock.now clock -. t1);
    r

let resolve = function
  | `Hit loc when Types.is_tombstone loc -> `Miss
  | r -> r

let probe_with_level t clock key =
  Obs.Trace.begin_span clock ~cat:"op" "get";
  let result, probed = shard_get t (shard_of t key) clock key in
  let result =
    match resolve result with
    | `Hit loc -> (
      match Vlog.read t.vlog clock loc with
      | Ok (k, _) -> if Int64.equal k key then `Hit loc else `Corrupt
      | Error `Corrupt -> `Corrupt)
    | (`Miss | `Corrupt) as r -> r
  in
  Obs.Trace.end_span clock ~cat:"op" "get";
  (result, probed)

let get_with_level t clock key =
  match probe_with_level t clock key with
  | `Hit loc, probed -> (Some loc, probed)
  | (`Miss | `Corrupt), probed -> (None, probed)

let get t clock key = fst (get_with_level t clock key)

let flush_all t clock =
  Array.iter
    (fun shard ->
      if Memtable.count shard.memtable > 0 then flush t shard clock)
    t.shards;
  Vlog.flush t.vlog clock

(* {2 Range scan: per-shard merge streams, newest source first — MemTable,
   upper tables by recency, last level — then a cross-shard min-merge.
   Upper (hashed) runs are snapshotted and sorted; PinK reads its DRAM
   mirrors, the other variants stream from Pmem with verification.  The
   sorted last level streams lazily through its cursor.} *)

module Scan = Kv_common.Scan

let scan t clock ~start ~limit =
  if limit < 0 then invalid_arg "Pmem_lsm.scan: negative limit";
  Obs.Trace.begin_span clock ~cat:"op" "scan";
  let run_stream tbl =
    match t.variant with
    | Pink ->
      (* DRAM mirror read: not subject to media faults *)
      Scan.of_iter clock ~start (fun f ->
          List.iter (fun (k, l) -> f k l) (table_entries t clock tbl))
    | Nf | F ->
      if Linear_table.intact tbl clock then
        Scan.of_iter clock ~start (fun f -> Linear_table.iter tbl clock f)
      else fun () -> Scan.Error
  in
  let shard_stream shard =
    let mem =
      Scan.of_iter clock ~start (fun f ->
          Flat_table.iter (Memtable.table shard.memtable) f)
    in
    let upper =
      List.map run_stream (Levels.upper_tables_newest_first shard.lv ())
    in
    let last =
      match Levels.last shard.lv with
      | None -> []
      | Some tbl when Linear_table.is_sorted tbl ->
        [ Scan.of_cursor (Linear_table.cursor tbl clock ~start) ]
      | Some tbl -> [ run_stream tbl ]
    in
    Scan.merge ((mem :: upper) @ last)
  in
  let merged =
    Scan.merge (Array.to_list (Array.map shard_stream t.shards))
  in
  let entries, _status = Scan.take (Scan.live merged) ~limit in
  Obs.Trace.end_span clock ~cat:"op" "scan";
  entries

(* {2 Crash and recovery: only MemTables are volatile (plus the PinK DRAM
   mirrors and the F filters, both rebuilt by scanning the tables).} *)

let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  Array.iter
    (fun shard ->
      Memtable.reset shard.memtable;
      shard.bg_free_at <- 0.0;
      (* the recovery floor comes back from the manifest's device-backed
         record, not from the DRAM copy *)
      let mt, _ = Manifest.floors t.manifest ~shard:shard.id in
      shard.mt_floor <- min mt (Vlog.persisted t.vlog))
    t.shards

let recover t clock =
  Fault_point.with_site Fault_point.Recovery @@ fun () ->
  t.in_recovery <- true;
  Fun.protect ~finally:(fun () -> t.in_recovery <- false) @@ fun () ->
  let t0 = Clock.now clock in
  let marks = Array.map (fun s -> s.mt_floor) t.shards in
  let lo = Array.fold_left min (Vlog.persisted t.vlog) marks in
  Vlog.iter_range t.vlog clock ~lo ~hi:(Vlog.persisted t.vlog)
    (fun loc key vlen ->
      let ix =
        Kv_common.Hash.shard_of
          ~hash:(Kv_common.Hash.mix64 key)
          ~shards:t.cfg.Config.shards
      in
      if loc >= marks.(ix) then begin
        let index_loc = if vlen < 0 then Types.tombstone else loc in
        match Memtable.put t.shards.(ix).memtable clock key index_loc with
        | `Ok -> ()
        | `Full ->
          (* recovered tail exceeds one MemTable: flush as usual *)
          flush t t.shards.(ix) clock;
          (match
             Memtable.put t.shards.(ix).memtable clock key index_loc
           with
          | `Ok -> ()
          | `Full -> assert false)
      end);
  (* variant-specific rebuild work *)
  Array.iter
    (fun shard ->
      let tables =
        Levels.upper_tables_newest_first shard.lv ()
        @ (match Levels.last shard.lv with Some tbl -> [ tbl ] | None -> [])
      in
      match t.variant with
      | Nf -> ()
      | Pink ->
        (* re-read upper tables into DRAM *)
        List.iter
          (fun tbl ->
            Device.charge_read_bytes t.dev clock
              ~len:(Linear_table.byte_size tbl)
              ~hint:Bulk)
          (Levels.upper_tables_newest_first shard.lv ())
      | F ->
        (* filter blocks are persistent: recovery reads them back from the
           device (contents reconstructed without CPU-cost charging) *)
        List.iter
          (fun tbl ->
            let bloom =
              Bloom.create
                ~expected:(max 16 (Linear_table.count tbl))
                ~bits_per_key:t.bloom_bits
            in
            Linear_table.iter_silent tbl (fun k _ -> Bloom.add_silent bloom k);
            Device.charge_read_bytes t.dev clock
              ~len:(int_of_float (Bloom.footprint_bytes bloom))
              ~hint:Bulk;
            Hashtbl.replace shard.blooms (Linear_table.tag tbl) bloom)
          tables)
    t.shards;
  Clock.now clock -. t0

let dram_footprint t =
  Array.fold_left
    (fun acc shard ->
      let base = acc +. Memtable.footprint_bytes shard.memtable in
      match t.variant with
      | Nf -> base
      | F ->
        Hashtbl.fold
          (fun _ bloom a -> a +. Bloom.footprint_bytes bloom)
          shard.blooms base
      | Pink ->
        (* DRAM mirrors of the upper levels *)
        List.fold_left
          (fun a tbl -> a +. float_of_int (Linear_table.byte_size tbl))
          base
          (Levels.upper_tables_newest_first shard.lv ()))
    (Vlog.dram_footprint t.vlog)
    t.shards

let check_invariants t =
  let u = Config.upper_levels t.cfg in
  let bad = ref None in
  Array.iter
    (fun shard ->
      for k = 0 to u - 1 do
        let len = Levels.level_len shard.lv k in
        if !bad = None && len > t.cfg.Config.ratio then
          bad :=
            Some
              (Printf.sprintf "shard %d: level %d has %d tables (max %d)"
                 shard.id k len t.cfg.Config.ratio)
      done)
    t.shards;
  match !bad with Some msg -> Error msg | None -> Ok ()

let store t : Kv_common.Store_intf.store =
  (module struct
    let name = variant_name t.variant

    let write clock key spec =
      put t clock key ~vlen:(Kv_common.Store_intf.spec_vlen spec)

    let write_batch = Kv_common.Store_intf.sequential_write_batch write

    let read clock key : Kv_common.Store_intf.read_result =
      match fst (probe_with_level t clock key) with
      | `Hit loc ->
        { loc = Some loc; stage = Kv_common.Store_intf.Index; value = None }
      | `Miss ->
        { loc = None; stage = Kv_common.Store_intf.Miss; value = None }
      | `Corrupt ->
        { loc = None; stage = Kv_common.Store_intf.Corrupt; value = None }

    let delete clock key = delete t clock key
    let scan clock ~start ~limit = scan t clock ~start ~limit
    let flush clock = flush_all t clock
    let maintenance _ = ()
    let scrub _ ~budget_bytes:_ = Kv_common.Store_intf.empty_scrub_report
    let health () = Kv_common.Store_intf.Healthy
    let shard_degraded _ = false
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t
    let dram_footprint () = dram_footprint t
    let pmem_footprint () = Device.used_bytes t.dev
    let device = t.dev
    let vlog = t.vlog

    let fault_points =
      Fault_point.
        [ Foreground; Flush; Upper_compaction; Last_level_merge;
          Manifest_update; Recovery ]
  end)

