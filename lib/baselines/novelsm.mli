(** NoveLSM model (Kannan et al., ATC'18): a LevelDB-style leveled LSM tree
    whose mutable MemTable is a skiplist kept {e in the Pmem} (Section 3.7).

    The model reproduces the paper's three attributed costs:
    - direct insertion of small KV items into an in-Pmem skiplist (sub-256 B
      writes -> write amplification, random Pmem reads on the get path);
    - leveled compaction at every level (high write amplification);
    - Bloom filters at {e all} levels plus comparison-based sorting during
      compaction (CPU bottleneck against Pmem bandwidth).

    As in the paper's experiments, all levels are placed in the Pmem and a
    single background thread performs compaction. *)

type t

val create :
  ?memtable_cap:int -> ?l0_runs:int -> ?levels:int -> ?ratio:int ->
  ?dev:Pmem_sim.Device.t -> unit -> t
(** Defaults: 8192-entry MemTable, 4 L0 runs, 4 levels, ratio 8. *)

val put : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> vlen:int -> unit
val get : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc option
val delete : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
val flush_all : t -> Pmem_sim.Clock.t -> unit

val crash : t -> unit
val recover : t -> Pmem_sim.Clock.t -> float

val check_invariants : t -> (unit, string) result

val store : t -> Kv_common.Store_intf.store
(** First-class store for the harness and the crash checker. *)
