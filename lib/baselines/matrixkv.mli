(** MatrixKV model (Yao et al., ATC'20): a RocksDB-style leveled LSM tree
    whose L0 is a multi-sublevel "matrix container" in the Pmem
    (Section 3.7).

    The model reproduces the costs the paper measures:
    - RowTable metadata written to the Pmem alongside every flushed sublevel
      (significant relative traffic for small values);
    - no Bloom filters at L0: gets check the sublevels one-by-one (cross-row
      hints spare the binary search, not the probe);
    - leveled compaction below L0 (high write amplification) with filters
      and comparison sorting (CPU cost). *)

type t

val create :
  ?memtable_cap:int -> ?l0_sublevels:int -> ?levels:int -> ?ratio:int ->
  ?dev:Pmem_sim.Device.t -> unit -> t
(** Defaults: 8192-entry DRAM MemTable, 8 L0 sublevels, 4 levels, ratio 8. *)

val put : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> vlen:int -> unit
val get : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc option
val delete : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
val flush_all : t -> Pmem_sim.Clock.t -> unit

val crash : t -> unit
val recover : t -> Pmem_sim.Clock.t -> float

val check_invariants : t -> (unit, string) result

val store : t -> Kv_common.Store_intf.store
(** First-class store for the harness and the crash checker. *)
