(** Pmem-Hash baseline: CCEH persistent hash table over a per-operation-
    persisted value log (Section 3.2).

    Every put performs in-place sub-256 B writes (log entry and 16 B index
    slot, each individually fenced), so the media write amplification is
    large and put throughput is the worst in the comparison; recovery, in
    exchange, only rebuilds the small DRAM directory. *)

type t

val create : ?dev:Pmem_sim.Device.t -> unit -> t

val put : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> vlen:int -> unit
val get : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc option
val delete : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit

val crash : t -> unit
val recover : t -> Pmem_sim.Clock.t -> float

val cceh : t -> Kv_common.Cceh.t
val check_invariants : t -> (unit, string) result

val store : t -> Kv_common.Store_intf.store
(** First-class store for the harness and the crash checker. *)
