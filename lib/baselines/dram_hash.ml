module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Robinhood = Kv_common.Robinhood

type t = {
  dev : Device.t;
  vlog : Vlog.t;
  mutable index : Robinhood.t;
}

let create ?dev () =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  { dev; vlog = Vlog.create dev; index = Robinhood.create () }

let put t clock key ~vlen =
  let loc = Vlog.append t.vlog clock key ~vlen in
  Robinhood.put t.index clock key loc

(* Distinguishes a detected-corrupt log record from a plain miss so the
   store-level read can answer an explicit error instead of wrong data. *)
let probe t clock key =
  match Robinhood.get t.index clock key with
  | Some loc when not (Types.is_tombstone loc) -> (
    match Vlog.read t.vlog clock loc with
    | Ok (k, _) -> if Int64.equal k key then `Hit loc else `Corrupt
    | Error `Corrupt -> `Corrupt)
  | Some _ | None -> `Miss

let get t clock key =
  match probe t clock key with `Hit loc -> Some loc | `Miss | `Corrupt -> None

let delete t clock key =
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  ignore (Robinhood.delete t.index clock key)

let count t = Robinhood.count t.index

module Scan = Kv_common.Scan

(* A hash index has no order: a scan pays a full snapshot of the index —
   walk every entry, sort, then serve the range.  Tombstones survive into
   the stream and are dropped by [Scan.live]. *)
let scan t clock ~start ~limit =
  if limit < 0 then invalid_arg "Dram_hash.scan: negative limit";
  let snap = Scan.of_iter clock ~start (fun f -> Robinhood.iter t.index f) in
  let entries, _status = Scan.take (Scan.live snap) ~limit in
  entries

(* Honest crash semantics: the whole index is DRAM, so a power failure
   loses every entry — by design.  What survives is exactly the persisted
   prefix of the log. *)
let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  t.index <- Robinhood.create ()

(* Recovery is a full scan of the persisted log — the design's whole
   restart cost.  Replaying into a partially rebuilt index is restartable:
   a crash during recovery drops the index again and the next recovery
   rescans from the head. *)
let recover t clock =
  Kv_common.Fault_point.with_site Kv_common.Fault_point.Recovery @@ fun () ->
  let t0 = Clock.now clock in
  Vlog.iter_range t.vlog clock ~lo:(Vlog.head t.vlog)
    ~hi:(Vlog.persisted t.vlog) (fun loc key vlen ->
      if vlen < 0 then ignore (Robinhood.delete t.index clock key)
      else Robinhood.put t.index clock key loc);
  Clock.now clock -. t0

(* Every live index entry must point at a log record for its own key. *)
let check_invariants t =
  let bad = ref None in
  Robinhood.iter t.index (fun key loc ->
      if !bad = None && not (Types.is_tombstone loc) then
        if
          loc < Vlog.head t.vlog
          || loc >= Vlog.length t.vlog
          || not (Int64.equal (Vlog.key_at t.vlog loc) key)
        then bad := Some key);
  match !bad with
  | Some k -> Error (Printf.sprintf "index entry for %Ld is dangling" k)
  | None -> Ok ()

let store t : Kv_common.Store_intf.store =
  (module struct
    let name = "Dram-Hash"
    let write clock key spec =
      put t clock key ~vlen:(Kv_common.Store_intf.spec_vlen spec)

    let read clock key : Kv_common.Store_intf.read_result =
      match probe t clock key with
      | `Hit loc ->
        { loc = Some loc; stage = Kv_common.Store_intf.Index; value = None }
      | `Miss ->
        { loc = None; stage = Kv_common.Store_intf.Miss; value = None }
      | `Corrupt ->
        { loc = None; stage = Kv_common.Store_intf.Corrupt; value = None }

    let delete clock key = delete t clock key
    let scan clock ~start ~limit = scan t clock ~start ~limit
    let flush clock = Vlog.flush t.vlog clock
    let maintenance _ = ()
    let scrub _ ~budget_bytes:_ = Kv_common.Store_intf.empty_scrub_report
    let health () = Kv_common.Store_intf.Healthy
    let shard_degraded _ = false
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t

    let dram_footprint () =
      Robinhood.footprint_bytes t.index +. Vlog.dram_footprint t.vlog

    let pmem_footprint () = Device.used_bytes t.dev
    let device = t.dev
    let vlog = t.vlog
    let fault_points = Kv_common.Fault_point.[ Foreground; Recovery ]
  end)

