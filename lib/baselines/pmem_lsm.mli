(** Pmem-LSM baselines: a legacy sharded LSM-tree KV store on the Pmem
    (Section 3.2), with hashed-key placement as in LSM-trie.

    Three variants, differing only in how gets avoid (or fail to avoid)
    multi-level Pmem probing:

    - {b NF} — no Bloom filters: every get walks the levels in the Pmem.
    - {b F} — an in-DRAM Bloom filter per table: gets skip most tables, but
      puts pay the filter-construction CPU cost at every flush/compaction
      (the paper measures a 2-3x put-throughput hit).
    - {b PinK} — upper levels pinned in DRAM (PinK-style): gets and
      compaction reads of upper tables cost DRAM time, while every table is
      still written through to the Pmem for persistence.  No filters.

    Unlike ChameleonDB there is no ABI: the multi-level structure is always
    maintained (size-tiered above, leveled into the last level) and is on
    the read path. *)

type variant = Nf | F | Pink

val variant_name : variant -> string

type t

val create :
  ?cfg:Chameleondb.Config.t -> ?bloom_bits:int -> ?dev:Pmem_sim.Device.t ->
  variant -> t
(** [bloom_bits] (default 10) sets bits-per-key of the F variant's filters
    (the abl-bloom sweep). *)

val put : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> vlen:int -> unit

val get : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc option

val get_with_level :
  t -> Pmem_sim.Clock.t -> Kv_common.Types.key ->
  Kv_common.Types.loc option * int
(** Also reports the number of persistent tables probed (Fig. 2 uses the
    per-level breakdown). *)

val delete : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit
val flush_all : t -> Pmem_sim.Clock.t -> unit

val crash : t -> unit
val recover : t -> Pmem_sim.Clock.t -> float

val dram_footprint : t -> float
val check_invariants : t -> (unit, string) result

val store : t -> Kv_common.Store_intf.store
(** First-class store for the harness and the crash checker. *)
