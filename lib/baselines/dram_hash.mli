(** Dram-Hash baseline: a volatile robin-hood hash index over the
    persistent value log (Section 3.2).

    Best put/get throughput (no LSM maintenance, all index traffic in DRAM)
    at the price of the largest DRAM footprint and a restart that must scan
    the {e entire} log to rebuild the index — the design ChameleonDB's ABI
    borrows speed from while bounding both costs. *)

type t

val create : ?dev:Pmem_sim.Device.t -> unit -> t

val put : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> vlen:int -> unit
val get : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> Kv_common.Types.loc option
val delete : t -> Pmem_sim.Clock.t -> Kv_common.Types.key -> unit

val count : t -> int
val crash : t -> unit
val recover : t -> Pmem_sim.Clock.t -> float
(** Full log scan; returns restart time (ns). *)

val check_invariants : t -> (unit, string) result

val store : t -> Kv_common.Store_intf.store
(** First-class store for the harness and the crash checker. *)
