module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Bloom = Kv_common.Bloom
module Flat_table = Kv_common.Flat_table
module Linear_table = Kv_common.Linear_table

(* Pmem bytes of RowTable metadata per entry in a flushed L0 sublevel
   (forward pointers + cross-row hints; ~45% of KV-pair size at 64 B
   values in the paper). *)
let rowtable_meta_per_entry = 32

type t = {
  memtable_cap : int;
  l0_sublevels : int;
  nlevels : int; (* lower levels below L0 *)
  ratio : int;
  dev : Device.t;
  vlog : Vlog.t;
  mutable memtable : Flat_table.t;
  mutable l0 : Linear_table.t list; (* newest first, no filters *)
  lower : Linear_table.t option array;
  blooms : (int, Bloom.t) Hashtbl.t; (* lower levels only *)
  mutable next_seq : int;
  mutable bg_free_at : float;
  mutable mt_floor : int;
}

let fresh_memtable cap = Flat_table.create ~load_factor:0.75 ~slots:(cap * 2) ()

let create ?(memtable_cap = 8192) ?(l0_sublevels = 8) ?(levels = 4)
    ?(ratio = 8) ?dev () =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  { memtable_cap;
    l0_sublevels;
    nlevels = levels - 1;
    ratio;
    dev;
    vlog = Vlog.create dev;
    memtable = fresh_memtable memtable_cap;
    l0 = [];
    lower = Array.make (max 1 (levels - 1)) None;
    blooms = Hashtbl.create 16;
    next_seq = 1;
    bg_free_at = 0.0;
    mt_floor = 0 }

let rec pow b = function 0 -> 1 | n -> b * pow b (n - 1)
let level_cap t k = t.l0_sublevels * t.memtable_cap * pow t.ratio k

let build_run ?(with_bloom = true) ?(with_rowtable = false) t clock entries =
  let n = List.length entries in
  let slots = max 64 (n * 4 / 3) in
  Clock.advance clock (float_of_int n *. Cost_model.sort_per_key_ns);
  let tbl = Linear_table.build t.dev clock ~slots entries in
  Linear_table.set_tag tbl t.next_seq;
  t.next_seq <- t.next_seq + 1;
  if with_rowtable then
    (* RowTable metadata is persisted next to the sublevel *)
    Device.charge_append t.dev clock ~len:(n * rowtable_meta_per_entry);
  if with_bloom then begin
    let bloom = Bloom.create ~expected:(max 16 n) ~bits_per_key:10 in
    List.iter (fun (k, _) -> Bloom.add bloom clock k) entries;
    Hashtbl.replace t.blooms (Linear_table.tag tbl) bloom
  end;
  tbl

let drop_run t tbl =
  Hashtbl.remove t.blooms (Linear_table.tag tbl);
  Linear_table.free tbl

let read_run clock tbl =
  let acc = ref [] in
  Linear_table.iter tbl clock (fun k l -> acc := (k, l) :: !acc);
  List.rev !acc

let merge_newest_first ?drop_tombstones clock sources =
  Kv_common.Merge.newest_first ?drop_tombstones
    ~on_entry:(fun () -> Clock.advance clock Cost_model.key_compare_ns)
    (List.map Kv_common.Merge.of_list sources)

let rec compact_lower t bg ~k =
  match t.lower.(k) with
  | None -> ()
  | Some run when Linear_table.count run <= level_cap t k -> ()
  | Some run ->
    if k + 1 >= t.nlevels then ()
    else begin
      let below =
        match t.lower.(k + 1) with
        | None -> []
        | Some tbl -> [ read_run bg tbl ]
      in
      let entries =
        merge_newest_first bg
          ~drop_tombstones:(k + 1 = t.nlevels - 1)
          (read_run bg run :: below)
      in
      let fresh = build_run t bg entries in
      drop_run t run;
      (match t.lower.(k + 1) with Some old -> drop_run t old | None -> ());
      t.lower.(k) <- None;
      t.lower.(k + 1) <- Some fresh;
      compact_lower t bg ~k:(k + 1)
    end

(* Column compaction: merge every L0 sublevel into L1 (leveled). *)
let compact_l0 t bg =
  let sources = List.map (read_run bg) t.l0 in
  let below =
    match t.lower.(0) with None -> [] | Some tbl -> [ read_run bg tbl ]
  in
  let entries =
    merge_newest_first bg ~drop_tombstones:(t.nlevels = 1) (sources @ below)
  in
  let fresh = build_run t bg entries in
  List.iter (drop_run t) t.l0;
  t.l0 <- [];
  (match t.lower.(0) with Some old -> drop_run t old | None -> ());
  t.lower.(0) <- Some fresh;
  compact_lower t bg ~k:0

let flush t clock =
  ignore (Clock.wait_until clock t.bg_free_at);
  let bg = Clock.create ~at:(Clock.now clock) () in
  Vlog.flush t.vlog bg;
  let entries = ref [] in
  Flat_table.iter t.memtable (fun k l -> entries := (k, l) :: !entries);
  let tbl =
    build_run ~with_bloom:false ~with_rowtable:true t bg (List.rev !entries)
  in
  t.l0 <- tbl :: t.l0;
  t.memtable <- fresh_memtable t.memtable_cap;
  if List.length t.l0 > t.l0_sublevels then compact_l0 t bg;
  t.bg_free_at <- Clock.now bg;
  (* keep the floor below the log entry of the put that triggered us *)
  t.mt_floor <- max t.mt_floor (Vlog.length t.vlog - 1)

let rec insert t clock key loc =
  if Flat_table.count t.memtable >= t.memtable_cap then flush t clock;
  match Flat_table.put t.memtable clock key loc with
  | `Ok -> ()
  | `Full ->
    flush t clock;
    insert t clock key loc

let put t clock key ~vlen =
  let loc = Vlog.append t.vlog clock key ~vlen in
  insert t clock key loc

let delete t clock key =
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  insert t clock key Types.tombstone

let probe_l0 _t clock tbl key =
  (* cross-row hints: a couple of DRAM hint lookups, then the Pmem probe *)
  Clock.advance clock (2.0 *. Cost_model.dram_hit_ns);
  Linear_table.get tbl clock key

let probe_lower t clock ~level tbl key =
  let bloom = Hashtbl.find_opt t.blooms (Linear_table.tag tbl) in
  let maybe =
    match bloom with Some b -> Bloom.mem ~level b clock key | None -> true
  in
  if maybe then Linear_table.get tbl clock key else Linear_table.Absent

let resolve = function
  | `Hit loc when Types.is_tombstone loc -> `Miss
  | r -> r

(* A corrupt run block fails the probe closed (no fall-through to an older
   level); a corrupt log record answers [`Corrupt], never wrong data. *)
let probe t clock key =
  let raw =
    match Flat_table.get t.memtable clock key with
    | Some loc -> `Hit loc
    | None ->
      let rec sublevels = function
        | [] -> `Miss
        | tbl :: rest ->
          (match probe_l0 t clock tbl key with
          | Linear_table.Found loc -> `Hit loc
          | Linear_table.Corrupted -> `Corrupt
          | Linear_table.Absent -> sublevels rest)
      in
      (match sublevels t.l0 with
      | (`Hit _ | `Corrupt) as r -> r
      | `Miss ->
        let rec lower k =
          if k >= t.nlevels then `Miss
          else begin
            match t.lower.(k) with
            | Some tbl ->
              (match probe_lower t clock ~level:(k + 1) tbl key with
              | Linear_table.Found loc -> `Hit loc
              | Linear_table.Corrupted -> `Corrupt
              | Linear_table.Absent -> lower (k + 1))
            | None -> lower (k + 1)
          end
        in
        lower 0)
  in
  match resolve raw with
  | `Hit loc -> (
    match Vlog.read t.vlog clock loc with
    | Ok (k, _) -> if Int64.equal k key then `Hit loc else `Corrupt
    | Error `Corrupt -> `Corrupt)
  | (`Miss | `Corrupt) as r -> r

let get t clock key =
  match probe t clock key with `Hit loc -> Some loc | `Miss | `Corrupt -> None

let flush_all t clock =
  if Flat_table.count t.memtable > 0 then flush t clock;
  Vlog.flush t.vlog clock

module Scan = Kv_common.Scan

(* Hash-bucketed runs have no internal order, so every source pays a full
   snapshot; newest-first source order gives the merge correct shadowing
   (memtable, then L0 sublevels newest first, then L1..Ln). *)
let scan t clock ~start ~limit =
  if limit < 0 then invalid_arg "Matrixkv.scan: negative limit";
  let run_stream tbl =
    if Linear_table.intact tbl clock then
      Scan.of_iter clock ~start (fun f -> Linear_table.iter tbl clock f)
    else fun () -> Scan.Error
  in
  let mem = Scan.of_iter clock ~start (fun f -> Flat_table.iter t.memtable f) in
  let lower =
    List.filter_map
      (Option.map run_stream)
      (Array.to_list t.lower)
  in
  let merged = Scan.merge ((mem :: List.map run_stream t.l0) @ lower) in
  let entries, _status = Scan.take (Scan.live merged) ~limit in
  entries

let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  t.memtable <- fresh_memtable t.memtable_cap;
  t.mt_floor <- min t.mt_floor (Vlog.persisted t.vlog)

let recover t clock =
  let t0 = Clock.now clock in
  Vlog.iter_range t.vlog clock ~lo:t.mt_floor ~hi:(Vlog.persisted t.vlog)
    (fun loc key vlen ->
      let index_loc = if vlen < 0 then Types.tombstone else loc in
      insert t clock key index_loc);
  Clock.now clock -. t0

let check_invariants _t = Ok ()

let store t : Kv_common.Store_intf.store =
  (module struct
    let name = "MatrixKV"
    let write clock key spec =
      put t clock key ~vlen:(Kv_common.Store_intf.spec_vlen spec)

    let write_batch = Kv_common.Store_intf.sequential_write_batch write

    let read clock key : Kv_common.Store_intf.read_result =
      match probe t clock key with
      | `Hit loc ->
        { loc = Some loc; stage = Kv_common.Store_intf.Index; value = None }
      | `Miss ->
        { loc = None; stage = Kv_common.Store_intf.Miss; value = None }
      | `Corrupt ->
        { loc = None; stage = Kv_common.Store_intf.Corrupt; value = None }

    let delete clock key = delete t clock key
    let scan clock ~start ~limit = scan t clock ~start ~limit
    let flush clock = flush_all t clock
    let maintenance _ = ()
    let scrub _ ~budget_bytes:_ = Kv_common.Store_intf.empty_scrub_report
    let health () = Kv_common.Store_intf.Healthy
    let shard_degraded _ = false
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t

    let dram_footprint () =
      Hashtbl.fold
        (fun _ b acc -> acc +. Bloom.footprint_bytes b)
        t.blooms
        (Flat_table.footprint_bytes t.memtable +. Vlog.dram_footprint t.vlog)

    let pmem_footprint () = Device.used_bytes t.dev
    let device = t.dev
    let vlog = t.vlog
    let fault_points = Kv_common.Fault_point.[ Foreground; Recovery ]
  end)

