(* Hybrid-Viper: a Viper-style hybrid DRAM/PMem store (Benson et al.,
   VLDB 2021).  A volatile DRAM hash index maps keys to records in a
   CRC32C-checked PMem value log; every put is durable when it is acked
   — Viper persists each record with ntstores plus a fence — so unlike
   Dram-Hash there is no open-batch window in which acked writes can be
   lost.  Viper's per-client write buffers are realized one layer up:
   the service's group commit and the client auto-batcher hand the store
   whole groups, and [write_batch] appends the group and pays a single
   persist fence for all of it.

   The price is the other side of ChameleonDB's instant-restart
   tradeoff: the index is DRAM-only, so recovery must replay the entire
   persisted log before serving.  [last_restart_ns] records what that
   cost the most recent [recover]; the `batch` experiment reports the
   gap against ChameleonDB's persisted last level. *)

module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Robinhood = Kv_common.Robinhood

let c_group_commits = Obs.Counters.counter "hybrid_viper.group_commits"
let c_group_ops = Obs.Counters.counter "hybrid_viper.group_ops"

type t = {
  dev : Device.t;
  vlog : Vlog.t;
  mutable index : Robinhood.t;
  mutable last_restart_ns : float;
}

(* [buffer_bytes] sizes the log's staging buffer: a group larger than
   this still persists with one fence per [buffer_bytes] of data, which
   is the honest device behaviour for a bounded per-client buffer. *)
let create ?dev ?(buffer_bytes = 64 * 1024) () =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  { dev;
    vlog = Vlog.create ~batch_bytes:buffer_bytes dev;
    index = Robinhood.create ();
    last_restart_ns = 0.0 }

(* One put = one record append + its own persist fence (Viper's
   ntstore+fence discipline).  The ack implies durability. *)
let put t clock key ~vlen =
  let loc = Vlog.append t.vlog clock key ~vlen in
  Vlog.flush t.vlog clock;
  Robinhood.put t.index clock key loc

(* Group commit: stage the whole group in the write buffer, then one
   fence covers every record.  Log-append order is list order, so a
   crash mid-flush can only lose a suffix of the group. *)
let put_batch t clock items =
  Obs.Counters.incr c_group_commits;
  List.iter
    (fun (key, spec) ->
      Obs.Counters.incr c_group_ops;
      let vlen = Kv_common.Store_intf.spec_vlen spec in
      let loc = Vlog.append t.vlog clock key ~vlen in
      Robinhood.put t.index clock key loc)
    items;
  let attr = Obs.Attribution.enabled () in
  let t0 = if attr then Clock.now clock else 0.0 in
  Vlog.flush t.vlog clock;
  if attr then Obs.Attribution.add Put_group_commit (Clock.now clock -. t0)

let probe t clock key =
  match Robinhood.get t.index clock key with
  | Some loc when not (Types.is_tombstone loc) -> (
    match Vlog.read t.vlog clock loc with
    | Ok (k, _) -> if Int64.equal k key then `Hit loc else `Corrupt
    | Error `Corrupt -> `Corrupt)
  | Some _ | None -> `Miss

let get t clock key =
  match probe t clock key with `Hit loc -> Some loc | `Miss | `Corrupt -> None

let delete t clock key =
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  Vlog.flush t.vlog clock;
  ignore (Robinhood.delete t.index clock key)

let count t = Robinhood.count t.index

module Scan = Kv_common.Scan

(* No order in a hash index: scans snapshot and sort, as in Dram-Hash. *)
let scan t clock ~start ~limit =
  if limit < 0 then invalid_arg "Hybrid_viper.scan: negative limit";
  let snap = Scan.of_iter clock ~start (fun f -> Robinhood.iter t.index f) in
  let entries, _status = Scan.take (Scan.live snap) ~limit in
  entries

(* Power failure drops the DRAM index entirely; the persisted log prefix
   (every acked op, since each ack followed a fence) is all that
   survives. *)
let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  t.index <- Robinhood.create ()

(* The forfeited instant restart: recovery is a full CRC-verified scan
   of the persisted log, newest record wins.  Restartable — a crash
   during replay drops the partial index and the next recovery rescans
   from the head. *)
let recover t clock =
  Kv_common.Fault_point.with_site Kv_common.Fault_point.Recovery @@ fun () ->
  let t0 = Clock.now clock in
  Vlog.iter_range t.vlog clock ~lo:(Vlog.head t.vlog)
    ~hi:(Vlog.persisted t.vlog) (fun loc key vlen ->
      if vlen < 0 then ignore (Robinhood.delete t.index clock key)
      else Robinhood.put t.index clock key loc);
  let dt = Clock.now clock -. t0 in
  t.last_restart_ns <- dt;
  dt

let last_restart_ns t = t.last_restart_ns

let check_invariants t =
  let bad = ref None in
  Robinhood.iter t.index (fun key loc ->
      if !bad = None && not (Types.is_tombstone loc) then
        if
          loc < Vlog.head t.vlog
          || loc >= Vlog.length t.vlog
          || not (Int64.equal (Vlog.key_at t.vlog loc) key)
        then bad := Some key);
  match !bad with
  | Some k -> Error (Printf.sprintf "index entry for %Ld is dangling" k)
  | None -> Ok ()

let store t : Kv_common.Store_intf.store =
  (module struct
    let name = "Hybrid-Viper"
    let write clock key spec =
      put t clock key ~vlen:(Kv_common.Store_intf.spec_vlen spec)

    let write_batch clock items = put_batch t clock items

    let read clock key : Kv_common.Store_intf.read_result =
      match probe t clock key with
      | `Hit loc ->
        { loc = Some loc; stage = Kv_common.Store_intf.Index; value = None }
      | `Miss ->
        { loc = None; stage = Kv_common.Store_intf.Miss; value = None }
      | `Corrupt ->
        { loc = None; stage = Kv_common.Store_intf.Corrupt; value = None }

    let delete clock key = delete t clock key
    let scan clock ~start ~limit = scan t clock ~start ~limit
    let flush clock = Vlog.flush t.vlog clock
    let maintenance _ = ()
    let scrub _ ~budget_bytes:_ = Kv_common.Store_intf.empty_scrub_report
    let health () = Kv_common.Store_intf.Healthy
    let shard_degraded _ = false
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t

    let dram_footprint () =
      Robinhood.footprint_bytes t.index +. Vlog.dram_footprint t.vlog

    let pmem_footprint () = Device.used_bytes t.dev
    let device = t.dev
    let vlog = t.vlog
    let fault_points = Kv_common.Fault_point.[ Foreground; Recovery ]
  end)
