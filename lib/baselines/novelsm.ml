module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Bloom = Kv_common.Bloom
module Skiplist = Kv_common.Skiplist
module Linear_table = Kv_common.Linear_table

type t = {
  memtable_cap : int;
  l0_runs : int;
  nlevels : int; (* lower levels L1..nlevels *)
  ratio : int;
  dev : Device.t;
  vlog : Vlog.t;
  memtable : Skiplist.t;
  mutable l0 : Linear_table.t list; (* newest first *)
  lower : Linear_table.t option array; (* index 0 = L1 *)
  blooms : (int, Bloom.t) Hashtbl.t;
  mutable next_seq : int;
  mutable bg_free_at : float;
  mutable mt_floor : int;
}

let create ?(memtable_cap = 8192) ?(l0_runs = 4) ?(levels = 4) ?(ratio = 8)
    ?dev () =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  { memtable_cap;
    l0_runs;
    nlevels = levels - 1;
    ratio;
    dev;
    vlog = Vlog.create dev;
    memtable = Skiplist.create dev;
    l0 = [];
    lower = Array.make (max 1 (levels - 1)) None;
    blooms = Hashtbl.create 16;
    next_seq = 1;
    bg_free_at = 0.0;
    mt_floor = 0 }

let rec pow b = function 0 -> 1 | n -> b * pow b (n - 1)

(* Capacity (entries) of lower level k (0-based: k = 0 is L1). *)
let level_cap t k = t.l0_runs * t.memtable_cap * pow t.ratio k

let build_run t clock entries =
  let n = List.length entries in
  let slots = max 64 (n * 4 / 3) in
  (* comparison-sorted run construction plus filter build: the CPU costs the
     paper blames for NoveLSM's low Pmem bandwidth utilization *)
  Clock.advance clock (float_of_int n *. Cost_model.sort_per_key_ns);
  let tbl = Linear_table.build t.dev clock ~slots entries in
  Linear_table.set_tag tbl t.next_seq;
  t.next_seq <- t.next_seq + 1;
  let bloom = Bloom.create ~expected:(max 16 n) ~bits_per_key:10 in
  List.iter (fun (k, _) -> Bloom.add bloom clock k) entries;
  Hashtbl.replace t.blooms (Linear_table.tag tbl) bloom;
  tbl

let drop_run t tbl =
  Hashtbl.remove t.blooms (Linear_table.tag tbl);
  Linear_table.free tbl

let read_run clock tbl =
  let acc = ref [] in
  Linear_table.iter tbl clock (fun k l -> acc := (k, l) :: !acc);
  List.rev !acc

let merge_newest_first ?drop_tombstones clock sources =
  Kv_common.Merge.newest_first ?drop_tombstones
    ~on_entry:(fun () -> Clock.advance clock Cost_model.key_compare_ns)
    (List.map Kv_common.Merge.of_list sources)

(* Leveled compaction: merge level [k]'s run into level [k+1], rewriting the
   whole lower run (write amplification ~ ratio per level). *)
let rec compact_lower t bg ~k =
  match t.lower.(k) with
  | None -> ()
  | Some run when Linear_table.count run <= level_cap t k -> ()
  | Some run ->
    if k + 1 >= t.nlevels then () (* deepest level may exceed its target *)
    else begin
      let below =
        match t.lower.(k + 1) with
        | None -> []
        | Some tbl -> [ read_run bg tbl ]
      in
      let entries =
        merge_newest_first bg
          ~drop_tombstones:(k + 1 = t.nlevels - 1)
          (read_run bg run :: below)
      in
      let fresh = build_run t bg entries in
      drop_run t run;
      (match t.lower.(k + 1) with Some old -> drop_run t old | None -> ());
      t.lower.(k) <- None;
      t.lower.(k + 1) <- Some fresh;
      compact_lower t bg ~k:(k + 1)
    end

let compact_l0 t bg =
  let sources = List.map (read_run bg) t.l0 in
  let below =
    match t.lower.(0) with None -> [] | Some tbl -> [ read_run bg tbl ]
  in
  let entries =
    merge_newest_first bg ~drop_tombstones:(t.nlevels = 1) (sources @ below)
  in
  let fresh = build_run t bg entries in
  List.iter (drop_run t) t.l0;
  t.l0 <- [];
  (match t.lower.(0) with Some old -> drop_run t old | None -> ());
  t.lower.(0) <- Some fresh;
  compact_lower t bg ~k:0

let flush t clock =
  ignore (Clock.wait_until clock t.bg_free_at);
  let bg = Clock.create ~at:(Clock.now clock) () in
  Vlog.flush t.vlog bg;
  let entries = ref [] in
  Skiplist.iter t.memtable (fun k l -> entries := (k, l) :: !entries);
  (* the immutable in-Pmem MemTable is streamed out during the flush *)
  Device.charge_read_bytes t.dev bg
    ~len:(Skiplist.byte_size t.memtable)
    ~hint:Bulk;
  let tbl = build_run t bg (List.rev !entries) in
  t.l0 <- tbl :: t.l0;
  Skiplist.clear t.memtable;
  if List.length t.l0 > t.l0_runs then compact_l0 t bg;
  t.bg_free_at <- Clock.now bg;
  (* keep the floor below the log entry of the put that triggered us *)
  t.mt_floor <- max t.mt_floor (Vlog.length t.vlog - 1)

let put t clock key ~vlen =
  let loc = Vlog.append t.vlog clock key ~vlen in
  if Skiplist.count t.memtable >= t.memtable_cap then flush t clock;
  Skiplist.put t.memtable clock key loc

let delete t clock key =
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  if Skiplist.count t.memtable >= t.memtable_cap then flush t clock;
  Skiplist.put t.memtable clock key Types.tombstone

let probe_run t clock ~level tbl key =
  let bloom = Hashtbl.find_opt t.blooms (Linear_table.tag tbl) in
  let maybe =
    match bloom with Some b -> Bloom.mem ~level b clock key | None -> true
  in
  if maybe then begin
    (* binary-search index block before touching data *)
    Clock.advance clock
      (Float.log2 (float_of_int (max 2 (Linear_table.count tbl)))
      *. Cost_model.key_compare_ns);
    Linear_table.get tbl clock key
  end
  else Linear_table.Absent

let resolve = function
  | `Hit loc when Types.is_tombstone loc -> `Miss
  | r -> r

(* A corrupt run block fails the probe closed (no fall-through to an older
   level); a corrupt log record answers [`Corrupt], never wrong data. *)
let probe t clock key =
  let raw =
    match Skiplist.get t.memtable clock key with
    | Some loc -> `Hit loc
    | None ->
      let rec probe_list = function
        | [] -> `Miss
        | tbl :: rest ->
          (match probe_run t clock ~level:0 tbl key with
          | Linear_table.Found loc -> `Hit loc
          | Linear_table.Corrupted -> `Corrupt
          | Linear_table.Absent -> probe_list rest)
      in
      (match probe_list t.l0 with
      | (`Hit _ | `Corrupt) as r -> r
      | `Miss ->
        let rec lower k =
          if k >= t.nlevels then `Miss
          else begin
            match t.lower.(k) with
            | Some tbl ->
              (match probe_run t clock ~level:(k + 1) tbl key with
              | Linear_table.Found loc -> `Hit loc
              | Linear_table.Corrupted -> `Corrupt
              | Linear_table.Absent -> lower (k + 1))
            | None -> lower (k + 1)
          end
        in
        lower 0)
  in
  match resolve raw with
  | `Hit loc -> (
    match Vlog.read t.vlog clock loc with
    | Ok (k, _) -> if Int64.equal k key then `Hit loc else `Corrupt
    | Error `Corrupt -> `Corrupt)
  | (`Miss | `Corrupt) as r -> r

let get t clock key =
  match probe t clock key with `Hit loc -> Some loc | `Miss | `Corrupt -> None

let flush_all t clock =
  if Skiplist.count t.memtable > 0 then flush t clock;
  Vlog.flush t.vlog clock

module Scan = Kv_common.Scan

(* Hash-bucketed runs have no internal order, so every source pays a full
   snapshot; newest-first source order gives the merge correct shadowing
   (memtable, then L0 newest first, then L1..Ln). *)
let scan t clock ~start ~limit =
  if limit < 0 then invalid_arg "Novelsm.scan: negative limit";
  let run_stream tbl =
    if Linear_table.intact tbl clock then
      Scan.of_iter clock ~start (fun f -> Linear_table.iter tbl clock f)
    else fun () -> Scan.Error
  in
  let mem = Scan.of_iter clock ~start (fun f -> Skiplist.iter t.memtable f) in
  let lower =
    List.filter_map
      (Option.map run_stream)
      (Array.to_list t.lower)
  in
  let merged = Scan.merge ((mem :: List.map run_stream t.l0) @ lower) in
  let entries, _status = Scan.take (Scan.live merged) ~limit in
  entries

let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog;
  (* the skiplist MemTable itself is persistent in NoveLSM; we conservatively
     replay it from the log (equivalent content, same scan cost bound) *)
  Skiplist.clear t.memtable;
  t.mt_floor <- min t.mt_floor (Vlog.persisted t.vlog)

let recover t clock =
  let t0 = Clock.now clock in
  Vlog.iter_range t.vlog clock ~lo:t.mt_floor ~hi:(Vlog.persisted t.vlog)
    (fun loc key vlen ->
      let index_loc = if vlen < 0 then Types.tombstone else loc in
      if Skiplist.count t.memtable >= t.memtable_cap then flush t clock;
      Skiplist.put t.memtable clock key index_loc);
  Clock.now clock -. t0

let check_invariants _t = Ok ()

let store t : Kv_common.Store_intf.store =
  (module struct
    let name = "NoveLSM"
    let write clock key spec =
      put t clock key ~vlen:(Kv_common.Store_intf.spec_vlen spec)

    let write_batch = Kv_common.Store_intf.sequential_write_batch write

    let read clock key : Kv_common.Store_intf.read_result =
      match probe t clock key with
      | `Hit loc ->
        { loc = Some loc; stage = Kv_common.Store_intf.Index; value = None }
      | `Miss ->
        { loc = None; stage = Kv_common.Store_intf.Miss; value = None }
      | `Corrupt ->
        { loc = None; stage = Kv_common.Store_intf.Corrupt; value = None }

    let delete clock key = delete t clock key
    let scan clock ~start ~limit = scan t clock ~start ~limit
    let flush clock = flush_all t clock
    let maintenance _ = ()
    let scrub _ ~budget_bytes:_ = Kv_common.Store_intf.empty_scrub_report
    let health () = Kv_common.Store_intf.Healthy
    let shard_degraded _ = false
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t

    let dram_footprint () =
      Hashtbl.fold
        (fun _ b acc -> acc +. Bloom.footprint_bytes b)
        t.blooms (Vlog.dram_footprint t.vlog)

    let pmem_footprint () = Device.used_bytes t.dev
    let device = t.dev
    let vlog = t.vlog
    let fault_points = Kv_common.Fault_point.[ Foreground; Recovery ]
  end)

