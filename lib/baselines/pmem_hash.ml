module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Cceh = Kv_common.Cceh

type t = {
  dev : Device.t;
  vlog : Vlog.t;
  index : Cceh.t;
}

let create ?dev () =
  let dev =
    match dev with
    | Some d -> d
    | None -> Device.create Pmem_sim.Cost_model.optane
  in
  { dev; vlog = Vlog.create ~fenced:true dev; index = Cceh.create dev }

let put t clock key ~vlen =
  let loc = Vlog.append t.vlog clock key ~vlen in
  Cceh.put t.index clock key loc

(* Distinguishes a detected-corrupt log record from a plain miss so the
   store-level read can answer an explicit error instead of wrong data. *)
let probe t clock key =
  match Cceh.get t.index clock key with
  | Some loc when not (Types.is_tombstone loc) -> (
    match Vlog.read t.vlog clock loc with
    | Ok (k, _) -> if Int64.equal k key then `Hit loc else `Corrupt
    | Error `Corrupt -> `Corrupt)
  | Some _ | None -> `Miss

let get t clock key =
  match probe t clock key with `Hit loc -> Some loc | `Miss | `Corrupt -> None

let delete t clock key =
  let _loc = Vlog.append t.vlog clock key ~vlen:(-1) in
  ignore (Cceh.delete t.index clock key)

(* Honest crash semantics: both the log (fenced, so every completed append
   is already durable) and the CCEH table (each slot write is individually
   persisted) live on the device; a crash loses only in-flight stores.
   The only volatile state is the CCEH directory, a DRAM cache of
   per-segment metadata. *)
let crash t =
  Device.crash t.dev;
  Vlog.crash t.vlog

(* Recovery replays the persisted table: one metadata read per segment
   rebuilds the directory; slot data needs no replay.  Idempotent — the
   rebuild reads only persisted state. *)
let recover t clock =
  Kv_common.Fault_point.with_site Kv_common.Fault_point.Recovery @@ fun () ->
  let t0 = Clock.now clock in
  Cceh.recover t.index clock;
  Clock.now clock -. t0

let cceh t = t.index

module Scan = Kv_common.Scan

(* CCEH keeps nothing in key order: a scan bulk-reads every distinct
   segment, sorts the survivors, and serves the range — the honest cost a
   pmem hash index pays for ordered access. *)
let scan t clock ~start ~limit =
  if limit < 0 then invalid_arg "Pmem_hash.scan: negative limit";
  let snap = Scan.of_iter clock ~start (fun f -> Cceh.iter t.index clock f) in
  let entries, _status = Scan.take (Scan.live snap) ~limit in
  entries

let check_invariants t =
  if Cceh.count t.index < 0 then Error "CCEH count negative"
  else if Cceh.segments t.index < 1 then Error "CCEH has no segments"
  else Ok ()

let store t : Kv_common.Store_intf.store =
  (module struct
    let name = "Pmem-Hash"
    let write clock key spec =
      put t clock key ~vlen:(Kv_common.Store_intf.spec_vlen spec)

    let write_batch = Kv_common.Store_intf.sequential_write_batch write

    let read clock key : Kv_common.Store_intf.read_result =
      match probe t clock key with
      | `Hit loc ->
        { loc = Some loc; stage = Kv_common.Store_intf.Index; value = None }
      | `Miss ->
        { loc = None; stage = Kv_common.Store_intf.Miss; value = None }
      | `Corrupt ->
        { loc = None; stage = Kv_common.Store_intf.Corrupt; value = None }

    let delete clock key = delete t clock key
    let scan clock ~start ~limit = scan t clock ~start ~limit
    let flush clock = Vlog.flush t.vlog clock
    let maintenance _ = ()
    let scrub _ ~budget_bytes:_ = Kv_common.Store_intf.empty_scrub_report
    let health () = Kv_common.Store_intf.Healthy
    let shard_degraded _ = false
    let crash () = crash t
    let recover clock = ignore (recover t clock)
    let check_invariants () = check_invariants t

    let dram_footprint () =
      Cceh.dram_footprint t.index +. Vlog.dram_footprint t.vlog

    let pmem_footprint () = Device.used_bytes t.dev
    let device = t.dev
    let vlog = t.vlog
    let fault_points = Kv_common.Fault_point.[ Foreground; Recovery ]
  end)

