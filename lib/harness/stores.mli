(** Store zoo and experiment scaling.

    The paper loads one billion keys into stores with 16384 shards; we run
    the same ratios at reduced scale (see DESIGN.md).  [scale] centralizes
    the knobs so every experiment sizes itself consistently, and [--quick]
    maps to {!quick}. *)

type scale = {
  shards : int;
  memtable_slots : int;
  load_keys : int;     (** unique keys loaded before read-side experiments *)
  sweep_ops : int;     (** operations per measurement sweep *)
  threads : int list;  (** thread counts for throughput sweeps *)
  vlen : int;          (** value size (8 B in the paper's main runs) *)
}

val default : scale
val quick : scale

val chameleon_cfg : scale -> Chameleondb.Config.t
(** ChameleonDB (and Pmem-LSM) configuration at this scale. *)

type spec = {
  name : string;
  make : unit -> Kv_common.Store_intf.store;
      (** fresh store on a fresh simulated device *)
}

val all : ?cache_bytes:int -> scale -> spec list
(** The stores of the main evaluation: ChameleonDB, ChameleonDB-MPH,
    Pmem-LSM-PinK, Pmem-LSM-NF, Pmem-LSM-F, Pmem-Hash, Dram-Hash.
    [cache_bytes] (default 0 = disabled) sizes the ChameleonDB variants'
    DRAM read cache; the baselines have none, as in the paper. *)

val chameleon :
  ?f:(Chameleondb.Config.t -> Chameleondb.Config.t) -> ?name:string ->
  scale -> spec
(** ChameleonDB with a config tweak (modes, compaction scheme, ablations);
    [name] labels the variant in reports and the crash sweep. *)

val chameleon_mph : ?cache_bytes:int -> scale -> spec
(** ChameleonDB with the perfect-hash last-level index
    ([Config.index_kind = Mph]); named "ChameleonDB-MPH". *)

val find : ?cache_bytes:int -> scale -> string -> spec

val load_group : int
(** Group size bulk loads commit with (32). *)

val load_unique :
  store:Kv_common.Store_intf.store -> threads:int -> start_at:float ->
  n:int -> vlen:int -> Runner.result
(** Load [n] unique keys (indices [0, n)) through
    {!Runner.run_write_batches} groups of {!load_group}, then
    flush.  Stores with a real group commit pay one persist fence per
    group; the rest take the sequential [write_batch] fallback, so the
    op stream is identical. *)

val settled_cursor :
  store:Kv_common.Store_intf.store -> Runner.result -> float
(** Time to start the next measurement phase: past the run's end {e and}
    past any background device backlog it left behind. *)

val sustained_mops :
  store:Kv_common.Store_intf.store -> Runner.result -> float
(** Throughput over the settled duration — the honest number for write
    workloads, where foreground clocks can finish while compaction backlog
    is still queued on the device. *)

val uniform_get_gen :
  seed:int -> universe:int -> unit -> Kv_common.Types.op
(** Shared generator of uniform random gets over loaded keys (use with
    {!Runner.run_ops}, which bounds the count). *)
