(** Discrete-event multi-thread driver.

    [threads] virtual clocks run against one store; at every step the
    thread with the smallest clock executes its next operation, so accesses
    to the shared device bandwidth servers are processed in global time
    order — throughput saturation and cross-thread interference emerge from
    the device model rather than being scripted. *)

type result = {
  ops : int;
  seed : int option;
      (** RNG seed the workload generator was built from, when the caller
          supplied one — printed in reports so any run reproduces from a
          single [--seed N] flag *)
  start_ns : float;
  end_ns : float;              (** max over thread clocks at completion *)
  latency : Metrics.Histogram.t;
  get_latency : Metrics.Histogram.t; (** subset: Get ops only *)
  put_latency : Metrics.Histogram.t; (** subset: Put / RMW / Delete ops *)
  scan_latency : Metrics.Histogram.t; (** subset: Scan ops only *)
  device_delta : Pmem_sim.Stats.t;   (** device counters over the run *)
  attribution : Obs.Attribution.snapshot;
      (** per-stage time accumulated during the run (all zero unless
          [Obs.Attribution] was enabled) *)
  counters : (string * float) list;
      (** per-run {!Obs.Counters} deltas (snapshot-and-diff around the run,
          so consecutive runs in one process never leak into each other) *)
}

val sim_ns : result -> float
val throughput_mops : result -> float

val run :
  ?seed:int ->
  store:Kv_common.Store_intf.store ->
  threads:int ->
  start_at:float ->
  gen:(thread:int -> now:float -> Kv_common.Types.op option) ->
  unit ->
  result
(** Drive the store until every thread's generator returns [None].  [gen]
    receives the issuing thread id and its current simulated time (so
    generators can be phase/burst aware).  The device's active-thread count
    is set for the duration of the run. *)

val run_ops :
  ?seed:int ->
  store:Kv_common.Store_intf.store ->
  threads:int ->
  start_at:float ->
  ops:int ->
  next:(unit -> Kv_common.Types.op) ->
  unit ->
  result
(** Convenience: issue exactly [ops] operations drawn from a single shared
    sequence (the min-clock thread takes the next one). *)

val run_write_batches :
  ?seed:int ->
  store:Kv_common.Store_intf.store ->
  threads:int ->
  start_at:float ->
  ops:int ->
  group:int ->
  next:(unit -> Kv_common.Types.key * Kv_common.Store_intf.value_spec) ->
  unit ->
  result
(** Bulk writer: commit exactly [ops] puts in {!STORE.write_batch} groups
    of up to [group] (the min-clock thread takes the next group).  Per-op
    latency is the group commit latency amortized over its members, so
    the histograms stay comparable with {!run_ops}. *)

val attribution_table : name:string -> result -> string
(** Render the per-stage get/put latency attribution recorded during the
    run: mean simulated ns per op and share of the end-to-end mean for each
    instrumented stage, an "(other)" row for uninstrumented remainder, and
    the end-to-end mean itself.  Meaningful only if [Obs.Attribution] was
    enabled for the run. *)

val summary :
  name:string -> ?user_bytes:float -> ?dram_bytes:float -> result ->
  Metrics.Summary.t
