(** Shared plumbing for the cluster experiment family: build and preload
    an N-node cluster, then run the three reported scenarios — scaling
    curve, node kill + rejoin, live shard migration — each ending in the
    oracle divergence audit.  Used by both the [cluster] experiment and
    [ckv cluster], so tables and benchmark JSON come from identical
    runs. *)

type setup = {
  router : Cluster.Router.t;
  orc : Cluster.Run.oracle;
  t0 : float;    (** preload finish time *)
  n_keys : int;  (** preloaded key universe *)
}

val build :
  Stores.scale -> n:int -> replicas:int -> wq:int -> rq:int ->
  ?vshards:int -> ?n_keys:int -> unit -> setup

type scaling_point = {
  sp_nodes : int;
  sp_replicas : int;
  sp_ops : int;
  sp_sim_ns : float;
  sp_mops : float;
  sp_get_p99 : float;
  sp_put_p99 : float;
}

val scaling :
  ?seed:int -> ?get_frac:float -> Stores.scale -> int list ->
  scaling_point list
(** Closed-loop 90/10 throughput per node count (8 conns/node).  Each
    point runs its own fresh cluster and must pass the divergence audit
    (raises otherwise). *)

type scenario = {
  sc_label : string;
  sc_setup : setup;
  sc_probe_mops : float;  (** closed-loop capacity before the open phase *)
  sc_rate_mops : float;   (** offered open-loop rate (half of capacity) *)
  sc_start : float;       (** open-loop phase start *)
  sc_duration_ns : float;
  sc_result : Cluster.Run.result;
  sc_marks : (float * string) list;  (** timeline annotations *)
  sc_checked : int;
  sc_mismatches : Cluster.Run.mismatch list;
      (** replica-divergence mismatches followed by scan-audit mismatches
          ({!Cluster.Run.scan_divergence}); empty = both audits clean *)
}

val victim : int
(** Node id the failover scenario kills. *)

val failover : ?seed:int -> Stores.scale -> scenario
(** 4 nodes, 2 replicas, write quorum 2: kill {!victim} at 30% of the
    open-loop phase (real crash, torn tail), rejoin at 55% with chunked
    catch-up competing with traffic. *)

val rebalance : ?seed:int -> Stores.scale -> scenario
(** Same cluster shape: at 30% of the run, migrate the first vshard
    node 0 owns to a non-owner — dual-write, chunked copy, cutover
    (surfacing one [Not_owner] redirect), source cleanup. *)
