(** Shared plumbing for the cluster experiment family: build and preload
    an N-node cluster, then run the three reported scenarios — scaling
    curve, node kill + rejoin, live shard migration — each ending in the
    oracle divergence audit.  Used by both the [cluster] experiment and
    [ckv cluster], so tables and benchmark JSON come from identical
    runs. *)

type setup = {
  router : Cluster.Router.t;
  orc : Cluster.Run.oracle;
  t0 : float;    (** preload finish time *)
  n_keys : int;  (** preloaded key universe *)
}

val build :
  Stores.scale -> n:int -> replicas:int -> wq:int -> rq:int ->
  ?vshards:int -> ?n_keys:int ->
  ?policy:Cluster.Router.policy -> ?rseed:int -> unit -> setup
(** [policy] defaults to {!Cluster.Router.default_policy}; [rseed] seeds
    the router's backoff jitter. *)

type scaling_point = {
  sp_nodes : int;
  sp_replicas : int;
  sp_ops : int;
  sp_sim_ns : float;
  sp_mops : float;
  sp_get_p99 : float;
  sp_put_p99 : float;
}

val scaling :
  ?seed:int -> ?get_frac:float -> Stores.scale -> int list ->
  scaling_point list
(** Closed-loop 90/10 throughput per node count (8 conns/node).  Each
    point runs its own fresh cluster and must pass the divergence audit
    (raises otherwise). *)

type scenario = {
  sc_label : string;
  sc_setup : setup;
  sc_probe_mops : float;  (** closed-loop capacity before the open phase *)
  sc_rate_mops : float;   (** offered open-loop rate (half of capacity) *)
  sc_start : float;       (** open-loop phase start *)
  sc_duration_ns : float;
  sc_result : Cluster.Run.result;
  sc_marks : (float * string) list;  (** timeline annotations *)
  sc_checked : int;
  sc_residue : int;
      (** replicas holding unacked-newer versions (loss runs only) *)
  sc_mismatches : Cluster.Run.mismatch list;
      (** replica-divergence mismatches followed by scan-audit mismatches
          ({!Cluster.Run.scan_divergence}); empty = both audits clean.
          With [loss] > 0 the partition-aware
          {!Cluster.Run.chaos_divergence} is used instead and the scan
          audit is skipped (a timed-out scan is legal under loss). *)
}

val victim : int
(** Node id the failover scenario kills. *)

val failover : ?seed:int -> ?loss:float -> Stores.scale -> scenario
(** 4 nodes, 2 replicas, write quorum 2: kill {!victim} at 30% of the
    open-loop phase (real crash, torn tail), rejoin at 55% with chunked
    catch-up competing with traffic.  [loss] > 0 runs the open phase
    under that i.i.d. frame-drop rate with the defensive router policy. *)

val rebalance : ?seed:int -> ?loss:float -> Stores.scale -> scenario
(** Same cluster shape: at 30% of the run, migrate the first vshard
    node 0 owns to a non-owner — dual-write, chunked copy, cutover
    (surfacing one [Not_owner] redirect), source cleanup. *)

(** {1 Chaos sweep}

    5 nodes, 2 replicas, write quorum 2 (spanning the replica set — the
    precondition for the partition-aware audits), defensive router
    policy.  Each cell probes a clean closed-loop capacity, then offers
    an open-loop 90/10 mix at half of it while the netem injector drops
    [loss] of all frames and cuts a scripted partition over [35%, 60%)
    of the phase: nodes 3 and 4 against the client plus nodes 0-2,
    symmetric or asymmetric (minority to majority dropped — the
    gray-failure shape: requests land, acks vanish). *)

type partition_kind = P_none | P_sym | P_asym

val partition_name : partition_kind -> string

type chaos_cell = {
  cc_label : string;
  cc_loss : float;
  cc_partition : partition_kind;
  cc_hedge : bool;
  cc_rate_mops : float;        (** offered open-loop rate *)
  cc_duration_ns : float;
  cc_issued : int;             (** single ops issued over the open phase *)
  cc_ok : int;                 (** of those, acked / answered OK *)
  cc_availability : float;
  cc_goodput_mops : float;
  cc_get_p99 : float;          (** whole open phase, OK gets *)
  cc_event_get_p99 : float;    (** inside the fault window, OK gets *)
  cc_event_availability : float;
  cc_retries : int;
  cc_timeouts : int;
  cc_hedges : int;
  cc_hedge_wins : int;
  cc_late_acks : int;
  cc_routed_around : int;
  cc_suspicions : int;
  cc_dedup_hits : int;         (** node-side request-id dedup skips *)
  cc_checked : int;            (** chaos-divergence replica checks *)
  cc_residue : int;            (** unacked-newer versions (legal) *)
  cc_mismatches : Cluster.Run.mismatch list;  (** must be empty *)
  cc_reads_checked : int;
  cc_violations : string list; (** must be empty (stale/phantom reads) *)
}

val cell_clean : chaos_cell -> bool
(** No acked-write loss and no history violations. *)

val chaos_cell :
  ?seed:int -> ?loss:float -> ?partition:partition_kind -> ?hedge:bool ->
  ?rate:float -> ?fail_slow:float -> Stores.scale -> chaos_cell
(** One cell.  [rate] pins the offered load (matched-pair comparisons);
    default is half the cell's own probed capacity.  [fail_slow] inflates
    node 1's service time by that factor over the fault window. *)

val chaos_sweep : ?seed:int -> Stores.scale -> chaos_cell list
(** The reported grid: loss in {0.001, 0.01} x {none, sym, asym}
    partition x hedge on/off. *)

val fail_slow_pair :
  ?seed:int -> ?factor:float -> Stores.scale -> chaos_cell * chaos_cell
(** (no-hedge cell, hedged cell) at the same pinned offered rate with
    node 1 serving [factor] slower over the fault window; the gate
    compares [cc_event_get_p99]. *)

val overhead_pair : ?seed:int -> Stores.scale -> float * float
(** Zero-fault closed-loop throughput: (default policy without injector,
    defensive policy with an empty injector attached).  Gate: within 5%.
    Raises on a divergence mismatch. *)
