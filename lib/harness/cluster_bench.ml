(* Shared plumbing for the cluster experiment family.

   Builds N-node clusters (one full store per node, each on its own
   simulated device), preloads them through the router, and runs the
   three scenarios the evaluation reports: a closed-loop throughput
   scaling curve, a node kill + rejoin timeline, and a live shard
   migration timeline — each ending in the oracle divergence audit.
   Both the `cluster` experiment (pretty tables) and `ckv cluster`
   (benchmark JSON, CI gate) drive these entry points, so the numbers
   they report come from identical runs. *)

module Histogram = Metrics.Histogram
module Loadgen = Service.Loadgen
module Run = Cluster.Run
module Netem = Fault.Netem
module Router = Cluster.Router

type setup = {
  router : Cluster.Router.t;
  orc : Run.oracle;
  t0 : float; (* preload finish time *)
  n_keys : int;
}

let build scale ~n ~replicas ~wq ~rq ?(vshards = 64) ?n_keys
    ?(policy = Cluster.Router.default_policy) ?(rseed = 0) () =
  let n_keys =
    Option.value n_keys ~default:(scale.Stores.load_keys / 2)
  in
  let nodes =
    Array.init n (fun i ->
        let spec =
          Stores.chameleon ~name:(Printf.sprintf "node%d" i) scale
        in
        Cluster.Node.create ~id:i (spec.Stores.make ()))
  in
  let ring =
    Cluster.Ring.create ~vshards ~replicas ~nodes:(List.init n Fun.id) ()
  in
  let router =
    Cluster.Router.create ~policy ~seed:rseed ~write_quorum:wq ~read_quorum:rq
      ring nodes
  in
  let orc = Run.oracle () in
  let t0 = Run.preload router orc ~n_keys ~vlen:scale.Stores.vlen in
  { router; orc; t0; n_keys }

let mops (r : Run.result) ~since =
  if r.Run.r_end_ns <= since then 0.0
  else float_of_int r.Run.r_ops /. (r.Run.r_end_ns -. since) *. 1000.0

(* -- scaling curve --------------------------------------------------- *)

type scaling_point = {
  sp_nodes : int;
  sp_replicas : int;
  sp_ops : int;
  sp_sim_ns : float;
  sp_mops : float;
  sp_get_p99 : float;
  sp_put_p99 : float;
}

let scaling ?(seed = 7) ?(get_frac = 0.9) scale node_counts =
  List.map
    (fun n ->
      let replicas = min 2 n in
      let s = build scale ~n ~replicas ~wq:replicas ~rq:1 () in
      let conns = 8 * n in
      let closed =
        Loadgen.closed_loop ~seed ~conns
          ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / conns))
          ~reqgen:
            (Loadgen.mixed_reqgen ~n_keys:s.n_keys ~get_frac
               ~vlen:scale.Stores.vlen)
          ()
      in
      let r = Run.run ~start_at:s.t0 ~closed ~events:[] s.router s.orc in
      let checked, mms = Run.divergence s.router s.orc in
      if mms <> [] then
        failwith
          (Printf.sprintf "cluster scaling: %d/%d divergent replica reads"
             (List.length mms) checked);
      let scan_checked, scan_mms = Run.scan_divergence s.router s.orc in
      if scan_mms <> [] then
        failwith
          (Printf.sprintf "cluster scaling: %d/%d divergent scan entries"
             (List.length scan_mms) scan_checked);
      { sp_nodes = n;
        sp_replicas = replicas;
        sp_ops = r.Run.r_ops;
        sp_sim_ns = r.Run.r_end_ns -. s.t0;
        sp_mops = mops r ~since:s.t0;
        sp_get_p99 = Histogram.percentile r.Run.r_get_h 99.0;
        sp_put_p99 = Histogram.percentile r.Run.r_put_h 99.0 })
    node_counts

(* -- timeline scenarios ---------------------------------------------- *)

type scenario = {
  sc_label : string;
  sc_setup : setup;
  sc_probe_mops : float; (* closed-loop capacity before the open phase *)
  sc_rate_mops : float;  (* offered open-loop rate *)
  sc_start : float;      (* open-loop phase start *)
  sc_duration_ns : float;
  sc_result : Run.result;
  sc_marks : (float * string) list; (* event annotations for the timeline *)
  sc_checked : int;
  sc_residue : int; (* unacked-write residue (loss runs only; see below) *)
  sc_mismatches : Run.mismatch list;
}

(* Common shape: build a 4-node, 2-replica cluster, probe its closed-loop
   capacity, then offer an open-loop 90/10 mix at half that capacity
   while [mk_events] injects faults or migrations.  With [loss] > 0 the
   open phase runs under that frame-drop rate through a seeded netem
   injector and the defensive router policy; the end-of-run audit then
   uses the partition-aware {!Run.chaos_divergence} (a replica may hold
   unacked residue) and the scan audit is skipped — under loss a timed-out
   scan is legal, so entry-exact comparison would be noise. *)
let scenario ~seed ~label ~mk_events ?(loss = 0.0) scale =
  let n = 4 in
  let policy =
    if loss > 0.0 then Cluster.Router.defensive
    else Cluster.Router.default_policy
  in
  let s = build scale ~n ~replicas:2 ~wq:2 ~rq:1 ~policy ~rseed:seed () in
  let reqgen =
    Loadgen.mixed_reqgen ~n_keys:s.n_keys ~get_frac:0.9
      ~vlen:scale.Stores.vlen
  in
  let probe_closed =
    Loadgen.closed_loop ~seed ~conns:16
      ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / 64))
      ~reqgen ()
  in
  let probe =
    Run.run ~start_at:s.t0 ~closed:probe_closed ~events:[] s.router s.orc
  in
  let cap = mops probe ~since:s.t0 in
  let t1 = probe.Run.r_end_ns in
  let rate = 0.5 *. cap in
  let duration_ns =
    float_of_int scale.Stores.sweep_ops /. rate *. 1000.0
  in
  let arrivals =
    Loadgen.open_loop ~seed:(seed + 100) ~conns:8
      ~process:(Loadgen.Poisson { rate_mops = rate })
      ~reqgen ~duration_ns ~start_at:t1 ()
  in
  if loss > 0.0 then begin
    let nm = Netem.create ~seed () in
    Netem.add_rule nm ~from_ns:t1 (Netem.Loss loss);
    Cluster.Router.set_netem s.router (Some nm)
  end;
  let events, marks = mk_events s ~t1 ~duration_ns in
  let cfg =
    { Run.window_ns = duration_ns /. 40.0;
      chunk = 512;
      tick_ns = 25_000.0;
      seed }
  in
  let r = Run.run ~cfg ~start_at:t1 ~arrivals ~events s.router s.orc in
  Cluster.Router.set_netem s.router None;
  let checked, residue, mms =
    if loss > 0.0 then Run.chaos_divergence s.router s.orc
    else
      let checked, mms = Run.divergence s.router s.orc in
      (checked, 0, mms)
  in
  (* the scan path must agree with the oracle too: one full-keyspace
     fan-out, reconciled per key, compared entry by entry *)
  let scan_mms =
    if loss > 0.0 then []
    else snd (Run.scan_divergence s.router s.orc)
  in
  let mms = mms @ scan_mms in
  { sc_label = label;
    sc_setup = s;
    sc_probe_mops = cap;
    sc_rate_mops = rate;
    sc_start = t1;
    sc_duration_ns = duration_ns;
    sc_result = r;
    sc_marks = marks;
    sc_checked = checked;
    sc_residue = residue;
    sc_mismatches = mms }

let victim = 1 (* the node the failover scenario kills *)

let failover ?(seed = 1) ?loss scale =
  scenario ~seed ~label:"failover" ?loss scale
    ~mk_events:(fun _s ~t1 ~duration_ns ->
      let kill_at = t1 +. (0.30 *. duration_ns) in
      let rejoin_at = t1 +. (0.55 *. duration_ns) in
      ( [ { Run.at = kill_at; ev = Run.Kill victim };
          { Run.at = rejoin_at; ev = Run.Rejoin victim } ],
        [ (kill_at, Printf.sprintf "kill node%d" victim);
          (rejoin_at, Printf.sprintf "rejoin node%d" victim) ] ))

(* First vshard owned by node 0, migrated to a non-owner. *)
let pick_migration router =
  let ring = Cluster.Router.ring router in
  let n_nodes = Array.length (Cluster.Router.nodes router) in
  let rec find v =
    if v >= Cluster.Ring.vshards ring then
      failwith "cluster rebalance: node0 owns no vshard"
    else if List.mem 0 (Cluster.Ring.owners ring v) then v
    else find (v + 1)
  in
  let vshard = find 0 in
  let owners = Cluster.Ring.owners ring vshard in
  let rec dest i =
    if i >= n_nodes then failwith "cluster rebalance: no destination node"
    else if List.mem i owners then dest (i + 1)
    else i
  in
  (vshard, dest 0)

let rebalance ?(seed = 2) ?loss scale =
  scenario ~seed ~label:"rebalance" ?loss scale
    ~mk_events:(fun s ~t1 ~duration_ns ->
      let vshard, to_ = pick_migration s.router in
      let at = t1 +. (0.30 *. duration_ns) in
      ( [ { Run.at; ev = Run.Migrate { vshard; from_ = 0; to_ } } ],
        [ (at, Printf.sprintf "migrate vshard %d: node0 -> node%d" vshard to_) ]
      ))

(* -- chaos sweep ------------------------------------------------------ *)

(* The chaos cells run a 5-node, 2-replica cluster with write quorum 2 —
   the write quorum spans the replica set, which is what makes the
   partition-aware audits sound (see {!Run.history_check}) — under the
   defensive router policy with hedging toggled per cell. *)

type partition_kind = P_none | P_sym | P_asym

let partition_name = function
  | P_none -> "none"
  | P_sym -> "sym"
  | P_asym -> "asym"

type chaos_cell = {
  cc_label : string;
  cc_loss : float;
  cc_partition : partition_kind;
  cc_hedge : bool;
  cc_rate_mops : float;   (* offered open-loop rate *)
  cc_duration_ns : float;
  cc_issued : int;        (* single ops issued over the open phase *)
  cc_ok : int;            (* of those, acked / answered OK *)
  cc_availability : float;
  cc_goodput_mops : float; (* OK ops per simulated time *)
  cc_get_p99 : float;      (* whole open phase, OK gets *)
  cc_event_get_p99 : float; (* inside the fault window, OK gets *)
  cc_event_availability : float;
  cc_retries : int;
  cc_timeouts : int;
  cc_hedges : int;
  cc_hedge_wins : int;
  cc_late_acks : int;
  cc_routed_around : int;
  cc_suspicions : int;
  cc_dedup_hits : int;
  cc_checked : int;       (* chaos-divergence replica checks *)
  cc_residue : int;       (* replicas holding unacked-newer versions *)
  cc_mismatches : Run.mismatch list; (* must be [] — acked-write loss *)
  cc_reads_checked : int;
  cc_violations : string list; (* must be [] — stale/phantom reads *)
}

let cell_clean c = c.cc_mismatches = [] && c.cc_violations = []

(* Per-window stats out of the recorded history: ops issued in
   [w0, w1), how many completed OK, and the OK-get latency histogram. *)
let window_stats history ~w0 ~w1 =
  let issued = ref 0 and ok = ref 0 in
  let get_h = Histogram.create () in
  List.iter
    (function
      | Run.H_read { hr_at; hr_fin; hr_ok; _ }
        when hr_at >= w0 && hr_at < w1 ->
          incr issued;
          if hr_ok then begin
            incr ok;
            Histogram.record get_h (hr_fin -. hr_at)
          end
      | Run.H_write { hw_at; hw_acked; _ } when hw_at >= w0 && hw_at < w1 ->
          incr issued;
          if hw_acked then incr ok
      | _ -> ())
    history;
  (!issued, !ok, get_h)

let total_dedup_hits router =
  Array.fold_left
    (fun acc n -> acc + Cluster.Node.dedup_hits n)
    0
    (Router.nodes router)

(* One chaos cell: probe a clean closed-loop capacity, then run the open
   phase at half of it under [loss] i.i.d. frame drops (whole phase) and
   a scripted partition over [35%, 60%) of the phase — the two highest
   nodes against the client plus the rest; asymmetric cuts only
   minority -> majority, the gray-failure shape where requests land but
   acks vanish.  The netem injector is detached before the audits, whose
   probe traffic must see a perfect network.  [rate] pins the offered
   load (for matched-pair comparisons); by default it is derived from
   the probe. *)
let chaos_cell ?(seed = 1) ?(loss = 0.01) ?(partition = P_asym)
    ?(hedge = true) ?rate ?fail_slow scale =
  let n = 5 in
  let policy = { Router.defensive with hedge; route_around = hedge } in
  let s = build scale ~n ~replicas:2 ~wq:2 ~rq:1 ~policy ~rseed:seed () in
  let reqgen =
    Loadgen.mixed_reqgen ~n_keys:s.n_keys ~get_frac:0.9
      ~vlen:scale.Stores.vlen
  in
  let probe_closed =
    Loadgen.closed_loop ~seed ~conns:16
      ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / 64))
      ~reqgen ()
  in
  let probe =
    Run.run ~start_at:s.t0 ~closed:probe_closed ~events:[] s.router s.orc
  in
  let cap = mops probe ~since:s.t0 in
  let t1 = probe.Run.r_end_ns in
  let rate = match rate with Some r -> r | None -> 0.5 *. cap in
  let duration_ns = float_of_int scale.Stores.sweep_ops /. rate *. 1000.0 in
  let arrivals =
    Loadgen.open_loop ~seed:(seed + 100) ~conns:8
      ~process:(Loadgen.Poisson { rate_mops = rate })
      ~reqgen ~duration_ns ~start_at:t1 ()
  in
  let w0 = t1 +. (0.35 *. duration_ns)
  and w1 = t1 +. (0.60 *. duration_ns) in
  let nm = Netem.create ~seed () in
  if loss > 0.0 then Netem.add_rule nm ~from_ns:t1 (Netem.Loss loss);
  let minority = [ Netem.Node (n - 2); Netem.Node (n - 1) ] in
  let majority =
    Netem.Client :: List.init (n - 2) (fun i -> Netem.Node i)
  in
  (match partition with
  | P_none -> ()
  | P_sym ->
      Netem.add_rule nm ~from_ns:w0 ~until_ns:w1
        (Netem.Partition { a = minority; b = majority; symmetric = true })
  | P_asym ->
      Netem.add_rule nm ~from_ns:w0 ~until_ns:w1
        (Netem.Partition { a = minority; b = majority; symmetric = false }));
  (match fail_slow with
  | Some factor ->
      Netem.add_rule nm ~from_ns:w0 ~until_ns:w1
        (Netem.Fail_slow { node = 1; factor })
  | None -> ());
  let dedup0 = total_dedup_hits s.router in
  let retries0 = Router.retries s.router
  and timeouts0 = Router.timeouts s.router
  and hedges0 = Router.hedges s.router
  and hedge_wins0 = Router.hedge_wins s.router
  and late0 = Router.late_acks s.router
  and around0 = Router.routed_around s.router in
  let susp0 = Cluster.Detector.suspicions (Router.detector s.router) in
  Router.set_netem s.router (Some nm);
  let cfg =
    { Run.window_ns = duration_ns /. 40.0;
      chunk = 512;
      tick_ns = 25_000.0;
      seed }
  in
  let r =
    Run.run ~cfg ~start_at:t1 ~arrivals ~record_history:true ~events:[]
      s.router s.orc
  in
  Router.set_netem s.router None;
  let checked, residue, mms = Run.chaos_divergence s.router s.orc in
  let reads_checked, violations = Run.history_check r.Run.r_history in
  let issued, ok, get_h =
    window_stats r.Run.r_history ~w0:t1 ~w1:(t1 +. duration_ns)
  in
  let ev_issued, ev_ok, ev_get_h = window_stats r.Run.r_history ~w0 ~w1 in
  let label =
    Printf.sprintf "loss=%.3f part=%s hedge=%s%s" loss
      (partition_name partition)
      (if hedge then "on" else "off")
      (match fail_slow with
      | Some f -> Printf.sprintf " slow=%gx" f
      | None -> "")
  in
  { cc_label = label;
    cc_loss = loss;
    cc_partition = partition;
    cc_hedge = hedge;
    cc_rate_mops = rate;
    cc_duration_ns = duration_ns;
    cc_issued = issued;
    cc_ok = ok;
    cc_availability =
      (if issued = 0 then 1.0 else float_of_int ok /. float_of_int issued);
    cc_goodput_mops = float_of_int ok /. duration_ns *. 1000.0;
    cc_get_p99 = Histogram.percentile get_h 99.0;
    cc_event_get_p99 = Histogram.percentile ev_get_h 99.0;
    cc_event_availability =
      (if ev_issued = 0 then 1.0
       else float_of_int ev_ok /. float_of_int ev_issued);
    cc_retries = Router.retries s.router - retries0;
    cc_timeouts = Router.timeouts s.router - timeouts0;
    cc_hedges = Router.hedges s.router - hedges0;
    cc_hedge_wins = Router.hedge_wins s.router - hedge_wins0;
    cc_late_acks = Router.late_acks s.router - late0;
    cc_routed_around = Router.routed_around s.router - around0;
    cc_suspicions =
      Cluster.Detector.suspicions (Router.detector s.router) - susp0;
    cc_dedup_hits = total_dedup_hits s.router - dedup0;
    cc_checked = checked;
    cc_residue = residue;
    cc_mismatches = mms;
    cc_reads_checked = reads_checked;
    cc_violations = violations }

(* The reported sweep: loss rate x partition scenario x hedge on/off.
   Every cell must end audit-clean. *)
let chaos_sweep ?(seed = 1) scale =
  List.concat_map
    (fun loss ->
      List.concat_map
        (fun partition ->
          List.map
            (fun hedge -> chaos_cell ~seed ~loss ~partition ~hedge scale)
            [ true; false ])
        [ P_none; P_sym; P_asym ])
    [ 0.001; 0.01 ]

(* Matched pair for the fail-slow gate: node 1 serves 10x slower over the
   fault window; both cells run fresh clusters at the SAME offered rate
   (pinned from the no-hedge cell's own probe via a first throwaway
   probe), one with hedging + route-around, one with neither.  The gate
   compares OK-get p99 inside the window. *)
let fail_slow_pair ?(seed = 1) ?(factor = 10.0) scale =
  (* pin the rate: one cheap probe on a throwaway cluster *)
  let s = build scale ~n:5 ~replicas:2 ~wq:2 ~rq:1 ~rseed:seed () in
  let reqgen =
    Loadgen.mixed_reqgen ~n_keys:s.n_keys ~get_frac:0.9
      ~vlen:scale.Stores.vlen
  in
  let probe =
    Run.run ~start_at:s.t0
      ~closed:
        (Loadgen.closed_loop ~seed ~conns:16
           ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / 64))
           ~reqgen ())
      ~events:[] s.router s.orc
  in
  let rate = 0.5 *. mops probe ~since:s.t0 in
  let cell hedge =
    chaos_cell ~seed ~loss:0.0 ~partition:P_none ~hedge ~rate
      ~fail_slow:factor scale
  in
  (cell false, cell true)

(* Zero-fault overhead check: closed-loop throughput under the defensive
   policy with an (empty) injector attached, against the default policy
   with none — the deadline/hedge/detector machinery must cost nearly
   nothing when the network is clean.  Returns (default mops, defensive
   mops). *)
let overhead_pair ?(seed = 7) scale =
  let run_one policy netem =
    let s = build scale ~n:5 ~replicas:2 ~wq:2 ~rq:1 ~policy ~rseed:seed () in
    Router.set_netem s.router netem;
    let closed =
      Loadgen.closed_loop ~seed ~conns:16
        ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / 64))
        ~reqgen:
          (Loadgen.mixed_reqgen ~n_keys:s.n_keys ~get_frac:0.9
             ~vlen:scale.Stores.vlen)
        ()
    in
    let r = Run.run ~start_at:s.t0 ~closed ~events:[] s.router s.orc in
    Router.set_netem s.router None;
    let checked, mms = Run.divergence s.router s.orc in
    if mms <> [] then
      failwith
        (Printf.sprintf "cluster chaos overhead: %d/%d divergent reads"
           (List.length mms) checked);
    mops r ~since:s.t0
  in
  let base = run_one Router.default_policy None in
  let defended =
    run_one Router.defensive (Some (Netem.create ~seed ()))
  in
  (base, defended)
