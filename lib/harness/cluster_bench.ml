(* Shared plumbing for the cluster experiment family.

   Builds N-node clusters (one full store per node, each on its own
   simulated device), preloads them through the router, and runs the
   three scenarios the evaluation reports: a closed-loop throughput
   scaling curve, a node kill + rejoin timeline, and a live shard
   migration timeline — each ending in the oracle divergence audit.
   Both the `cluster` experiment (pretty tables) and `ckv cluster`
   (benchmark JSON, CI gate) drive these entry points, so the numbers
   they report come from identical runs. *)

module Histogram = Metrics.Histogram
module Loadgen = Service.Loadgen
module Run = Cluster.Run

type setup = {
  router : Cluster.Router.t;
  orc : Run.oracle;
  t0 : float; (* preload finish time *)
  n_keys : int;
}

let build scale ~n ~replicas ~wq ~rq ?(vshards = 64) ?n_keys () =
  let n_keys =
    Option.value n_keys ~default:(scale.Stores.load_keys / 2)
  in
  let nodes =
    Array.init n (fun i ->
        let spec =
          Stores.chameleon ~name:(Printf.sprintf "node%d" i) scale
        in
        Cluster.Node.create ~id:i (spec.Stores.make ()))
  in
  let ring =
    Cluster.Ring.create ~vshards ~replicas ~nodes:(List.init n Fun.id) ()
  in
  let router = Cluster.Router.create ~write_quorum:wq ~read_quorum:rq ring nodes in
  let orc = Run.oracle () in
  let t0 = Run.preload router orc ~n_keys ~vlen:scale.Stores.vlen in
  { router; orc; t0; n_keys }

let mops (r : Run.result) ~since =
  if r.Run.r_end_ns <= since then 0.0
  else float_of_int r.Run.r_ops /. (r.Run.r_end_ns -. since) *. 1000.0

(* -- scaling curve --------------------------------------------------- *)

type scaling_point = {
  sp_nodes : int;
  sp_replicas : int;
  sp_ops : int;
  sp_sim_ns : float;
  sp_mops : float;
  sp_get_p99 : float;
  sp_put_p99 : float;
}

let scaling ?(seed = 7) ?(get_frac = 0.9) scale node_counts =
  List.map
    (fun n ->
      let replicas = min 2 n in
      let s = build scale ~n ~replicas ~wq:replicas ~rq:1 () in
      let conns = 8 * n in
      let closed =
        Loadgen.closed_loop ~seed ~conns
          ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / conns))
          ~reqgen:
            (Loadgen.mixed_reqgen ~n_keys:s.n_keys ~get_frac
               ~vlen:scale.Stores.vlen)
          ()
      in
      let r = Run.run ~start_at:s.t0 ~closed ~events:[] s.router s.orc in
      let checked, mms = Run.divergence s.router s.orc in
      if mms <> [] then
        failwith
          (Printf.sprintf "cluster scaling: %d/%d divergent replica reads"
             (List.length mms) checked);
      let scan_checked, scan_mms = Run.scan_divergence s.router s.orc in
      if scan_mms <> [] then
        failwith
          (Printf.sprintf "cluster scaling: %d/%d divergent scan entries"
             (List.length scan_mms) scan_checked);
      { sp_nodes = n;
        sp_replicas = replicas;
        sp_ops = r.Run.r_ops;
        sp_sim_ns = r.Run.r_end_ns -. s.t0;
        sp_mops = mops r ~since:s.t0;
        sp_get_p99 = Histogram.percentile r.Run.r_get_h 99.0;
        sp_put_p99 = Histogram.percentile r.Run.r_put_h 99.0 })
    node_counts

(* -- timeline scenarios ---------------------------------------------- *)

type scenario = {
  sc_label : string;
  sc_setup : setup;
  sc_probe_mops : float; (* closed-loop capacity before the open phase *)
  sc_rate_mops : float;  (* offered open-loop rate *)
  sc_start : float;      (* open-loop phase start *)
  sc_duration_ns : float;
  sc_result : Run.result;
  sc_marks : (float * string) list; (* event annotations for the timeline *)
  sc_checked : int;
  sc_mismatches : Run.mismatch list;
}

(* Common shape: build a 4-node, 2-replica cluster, probe its closed-loop
   capacity, then offer an open-loop 90/10 mix at half that capacity
   while [mk_events] injects faults or migrations. *)
let scenario ~seed ~label ~mk_events scale =
  let n = 4 in
  let s = build scale ~n ~replicas:2 ~wq:2 ~rq:1 () in
  let reqgen =
    Loadgen.mixed_reqgen ~n_keys:s.n_keys ~get_frac:0.9
      ~vlen:scale.Stores.vlen
  in
  let probe_closed =
    Loadgen.closed_loop ~seed ~conns:16
      ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / 64))
      ~reqgen ()
  in
  let probe =
    Run.run ~start_at:s.t0 ~closed:probe_closed ~events:[] s.router s.orc
  in
  let cap = mops probe ~since:s.t0 in
  let t1 = probe.Run.r_end_ns in
  let rate = 0.5 *. cap in
  let duration_ns =
    float_of_int scale.Stores.sweep_ops /. rate *. 1000.0
  in
  let arrivals =
    Loadgen.open_loop ~seed:(seed + 100) ~conns:8
      ~process:(Loadgen.Poisson { rate_mops = rate })
      ~reqgen ~duration_ns ~start_at:t1 ()
  in
  let events, marks = mk_events s ~t1 ~duration_ns in
  let cfg =
    { Run.window_ns = duration_ns /. 40.0;
      chunk = 512;
      tick_ns = 25_000.0;
      seed }
  in
  let r = Run.run ~cfg ~start_at:t1 ~arrivals ~events s.router s.orc in
  let checked, mms = Run.divergence s.router s.orc in
  (* the scan path must agree with the oracle too: one full-keyspace
     fan-out, reconciled per key, compared entry by entry *)
  let _scan_checked, scan_mms = Run.scan_divergence s.router s.orc in
  let mms = mms @ scan_mms in
  { sc_label = label;
    sc_setup = s;
    sc_probe_mops = cap;
    sc_rate_mops = rate;
    sc_start = t1;
    sc_duration_ns = duration_ns;
    sc_result = r;
    sc_marks = marks;
    sc_checked = checked;
    sc_mismatches = mms }

let victim = 1 (* the node the failover scenario kills *)

let failover ?(seed = 1) scale =
  scenario ~seed ~label:"failover" scale ~mk_events:(fun _s ~t1 ~duration_ns ->
      let kill_at = t1 +. (0.30 *. duration_ns) in
      let rejoin_at = t1 +. (0.55 *. duration_ns) in
      ( [ { Run.at = kill_at; ev = Run.Kill victim };
          { Run.at = rejoin_at; ev = Run.Rejoin victim } ],
        [ (kill_at, Printf.sprintf "kill node%d" victim);
          (rejoin_at, Printf.sprintf "rejoin node%d" victim) ] ))

(* First vshard owned by node 0, migrated to a non-owner. *)
let pick_migration router =
  let ring = Cluster.Router.ring router in
  let n_nodes = Array.length (Cluster.Router.nodes router) in
  let rec find v =
    if v >= Cluster.Ring.vshards ring then
      failwith "cluster rebalance: node0 owns no vshard"
    else if List.mem 0 (Cluster.Ring.owners ring v) then v
    else find (v + 1)
  in
  let vshard = find 0 in
  let owners = Cluster.Ring.owners ring vshard in
  let rec dest i =
    if i >= n_nodes then failwith "cluster rebalance: no destination node"
    else if List.mem i owners then dest (i + 1)
    else i
  in
  (vshard, dest 0)

let rebalance ?(seed = 2) scale =
  scenario ~seed ~label:"rebalance" scale ~mk_events:(fun s ~t1 ~duration_ns ->
      let vshard, to_ = pick_migration s.router in
      let at = t1 +. (0.30 *. duration_ns) in
      ( [ { Run.at; ev = Run.Migrate { vshard; from_ = 0; to_ } } ],
        [ (at, Printf.sprintf "migrate vshard %d: node0 -> node%d" vshard to_) ]
      ))
