(** Windowed time-series runner for the burst experiments (Figs. 15, 16).

    Like {!Runner.run}, but operation completions are bucketed into fixed
    simulated-time windows, yielding per-window throughput and per-window
    get tail latency. *)

type window = {
  t_start : float;          (** window start, simulated ns *)
  ops : int;                (** operations completed in the window *)
  puts : int;
  gets : int;
  get_p99 : float;          (** p99 get latency within the window (0 if no gets) *)
  get_p50 : float;
}

val run :
  store:Kv_common.Store_intf.store ->
  threads:int ->
  start_at:float ->
  window_ns:float ->
  gen:(thread:int -> now:float -> Kv_common.Types.op option) ->
  unit ->
  window list
(** Windows are returned in time order; empty trailing windows are
    omitted. *)
