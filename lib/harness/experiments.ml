module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Stats = Pmem_sim.Stats
module Types = Kv_common.Types
module Store_intf = Kv_common.Store_intf
module Table = Metrics.Table_fmt
module Histogram = Metrics.Histogram
module Config = Chameleondb.Config

type exp = { id : string; title : string; run : Stores.scale -> unit }

let pr fmt = Format.printf fmt

(* ------------------------------------------------------------------ *)
(* Figure 1: raw random-write throughput vs access size and threads.   *)
(* ------------------------------------------------------------------ *)

let fig1 _scale =
  let sizes = [ 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 131072 ] in
  let threads = [ 1; 2; 4; 8; 16 ] in
  let tbl =
    Table.create ~title:"Fig 1: random ntstore write throughput (user GB/s)"
      ~columns:
        (("size", Table.Left)
        :: List.map (fun t -> (Printf.sprintf "%dthr" t, Table.Right)) threads)
  in
  List.iter
    (fun size ->
      let row =
        List.map
          (fun nthreads ->
            let dev = Device.create Cost_model.optane in
            Device.set_active_threads dev nthreads;
            let rng = Workload.Rng.create ~seed:(size + nthreads) in
            let clocks =
              Array.init nthreads (fun _ -> Clock.create ())
            in
            let ops_per_thread = max 400 (1 lsl 22 / size / nthreads) in
            let remaining = Array.make nthreads ops_per_thread in
            let total = ref 0 in
            let alive = ref nthreads in
            while !alive > 0 do
              (* min-clock thread issues one random aligned write *)
              let best = ref (-1) and best_t = ref infinity in
              Array.iteri
                (fun i c ->
                  if remaining.(i) > 0 && Clock.now c < !best_t then begin
                    best := i;
                    best_t := Clock.now c
                  end)
                clocks;
              let i = !best in
              let off = Workload.Rng.int rng 1_000_000 * 256 in
              Device.charge_write_at dev clocks.(i) ~off ~len:size;
              remaining.(i) <- remaining.(i) - 1;
              if remaining.(i) = 0 then decr alive;
              incr total
            done;
            let wall =
              Array.fold_left (fun a c -> Float.max a (Clock.now c)) 0.0 clocks
            in
            let user_bytes = float_of_int (!total * size) in
            Table.cell_f (user_bytes /. wall))
          threads
      in
      Table.add_row tbl (Table.cell_bytes (float_of_int size) :: row))
    sizes;
  Table.print tbl;
  pr "Shape check: throughput roughly doubles 64B->128B->256B and is flat@.";
  pr "above 256B; high thread counts degrade slightly (iMC contention).@.@."

(* ------------------------------------------------------------------ *)
(* Figure 2: per-level read latency of a 7-level LSM on three devices. *)
(* ------------------------------------------------------------------ *)

let fig2 scale =
  let profiles =
    [ ("SATA-SSD", Cost_model.sata_ssd);
      ("PCIe-SSD", Cost_model.nvme_ssd);
      ("Optane", Cost_model.optane) ]
  in
  let tbl =
    Table.create
      ~title:
        "Fig 2: get latency by tables probed, 7-level Pmem-LSM-F (filter vs \
         read)"
      ~columns:
        [ ("device", Table.Left); ("depth", Table.Right);
          ("gets", Table.Right); ("filter", Table.Right);
          ("table+log read", Table.Right); ("filter share", Table.Right) ]
  in
  List.iter
    (fun (name, profile) ->
      let dev = Device.create profile in
      let cfg =
        { (Stores.chameleon_cfg scale) with
          Config.shards = 8;
          memtable_slots = 128;
          levels = 7 }
      in
      let lsm = Baselines.Pmem_lsm.create ~cfg ~dev Baselines.Pmem_lsm.F in
      let store = Baselines.Pmem_lsm.store lsm in
      let n = scale.Stores.load_keys / 4 in
      let r =
        Stores.load_unique ~store ~threads:4 ~start_at:0.0 ~n
          ~vlen:scale.Stores.vlen
      in
      (* measure gets grouped by how many tables were consulted *)
      let by_depth = Hashtbl.create 16 in
      let clock =
        Clock.create ~at:(Stores.settled_cursor ~store r) ()
      in
      let rng = Workload.Rng.create ~seed:2 in
      for _ = 1 to scale.Stores.sweep_ops / 8 do
        let key =
          Workload.Keyspace.key_of_index (Workload.Rng.int rng n)
        in
        let t0 = Clock.now clock in
        let _, depth = Baselines.Pmem_lsm.get_with_level lsm clock key in
        let lat = Clock.now clock -. t0 in
        let sum, cnt =
          match Hashtbl.find_opt by_depth depth with
          | Some (s, c) -> (s, c)
          | None -> (0.0, 0)
        in
        Hashtbl.replace by_depth depth (sum +. lat, cnt + 1)
      done;
      let depths =
        List.sort compare
          (Hashtbl.fold (fun d _ acc -> d :: acc) by_depth [])
      in
      List.iter
        (fun d ->
          let sum, cnt = Hashtbl.find by_depth d in
          let avg = sum /. float_of_int cnt in
          let filter = float_of_int d *. Cost_model.bloom_check_ns in
          let read = Float.max 0.0 (avg -. filter) in
          Table.add_row tbl
            [ name; string_of_int d; string_of_int cnt; Table.cell_ns filter;
              Table.cell_ns read;
              Printf.sprintf "%.0f%%" (100.0 *. filter /. avg) ])
        depths;
      Table.add_rule tbl)
    profiles;
  Table.print tbl;
  pr "Shape check: the filter share is noise on SSDs but grows to rival the@.";
  pr "table read itself on Optane at deeper levels (Challenge 2).@.@."

(* ------------------------------------------------------------------ *)
(* Overall comparison machinery shared by Table 4 and Figure 3.        *)
(* ------------------------------------------------------------------ *)

type overall = {
  o_name : string;
  put_mops : float;
  get_mops : float;
  med_get_ns : float;
  wa : float;
  dram : float;
  restart_ns : float;
}

let collect_overall scale =
  let tmax = List.fold_left max 1 scale.Stores.threads in
  List.map
    (fun spec ->
      let store = spec.Stores.make () in
      let before = Stats.copy (Device.stats (Store_intf.device store)) in
      let load =
        Stores.load_unique ~store ~threads:tmax ~start_at:0.0
          ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
      in
      let after = Stats.copy (Device.stats (Store_intf.device store)) in
      let delta = Stats.diff ~after ~before in
      (* snapshot sustained put throughput now: quiesce_at moves with later
         phases *)
      let put_mops = Stores.sustained_mops ~store load in
      let cursor = Stores.settled_cursor ~store load in
      let gets =
        Runner.run_ops ~store ~threads:tmax ~start_at:cursor
          ~ops:scale.Stores.sweep_ops
          ~next:
            (Stores.uniform_get_gen ~seed:11
               ~universe:scale.Stores.load_keys)
          ()
      in
      let dram = Store_intf.dram_footprint store in
      (* crash from a dirty state: a tail of un-checkpointed puts, as after
         the paper's billion-key load *)
      let extra = scale.Stores.sweep_ops / 8 in
      let i = ref scale.Stores.load_keys in
      let dirty =
        Runner.run_ops ~store ~threads:tmax
          ~start_at:(Stores.settled_cursor ~store gets)
          ~ops:extra
          ~next:(fun () ->
            incr i;
            Types.Put (Workload.Keyspace.key_of_index !i, scale.Stores.vlen))
          ()
      in
      let cursor = Stores.settled_cursor ~store dirty in
      Store_intf.crash store;
      let rclock = Clock.create ~at:cursor () in
      Store_intf.recover store rclock;
      let restart_ns = Clock.now rclock -. cursor in
      (* the paper's write amplification: media bytes per logical KV byte *)
      let logical_bytes =
        float_of_int
          (scale.Stores.load_keys
          * Kv_common.Vlog.entry_bytes ~vlen:scale.Stores.vlen)
      in
      { o_name = spec.Stores.name;
        put_mops;
        get_mops = Runner.throughput_mops gets;
        med_get_ns = Histogram.median gets.Runner.get_latency;
        wa = delta.Stats.media_write_bytes /. logical_bytes;
        dram;
        restart_ns })
    (Stores.all scale)

let tab4 scale =
  let rows = collect_overall scale in
  let tbl =
    Table.create ~title:"Table 4: overall comparison"
      ~columns:
        [ ("metric", Table.Left); ("ChameleonDB", Table.Right);
          ("Pmem-LSM-PinK", Table.Right); ("Pmem-LSM-NF", Table.Right);
          ("Pmem-LSM-F", Table.Right); ("Pmem-Hash", Table.Right);
          ("Dram-Hash", Table.Right) ]
  in
  let cells f = List.map f rows in
  Table.add_row tbl
    ("Put Thr (Mops/s)" :: cells (fun r -> Table.cell_f r.put_mops));
  Table.add_row tbl
    ("Get Thr (Mops/s)" :: cells (fun r -> Table.cell_f r.get_mops));
  Table.add_row tbl
    ("DRAM Footprint" :: cells (fun r -> Table.cell_bytes r.dram));
  Table.add_row tbl
    ("Restart Time" :: cells (fun r -> Table.cell_ns r.restart_ns));
  Table.add_row tbl
    ("Write Amplification" :: cells (fun r -> Table.cell_f r.wa));
  Table.add_row tbl
    ("Median Get" :: cells (fun r -> Table.cell_ns r.med_get_ns));
  Table.print tbl;
  pr
    "Shape check: every store except ChameleonDB has at least one bad cell@.";
  pr "(Dram-Hash: footprint+restart, Pmem-Hash: puts, LSMs: gets).@.@."

let fig3 scale =
  let rows = collect_overall scale in
  let worst f = List.fold_left (fun a r -> Float.max a (f r)) 1e-9 rows in
  let w_wa = worst (fun r -> r.wa)
  and w_lat = worst (fun r -> r.med_get_ns)
  and w_dram = worst (fun r -> r.dram)
  and w_restart = worst (fun r -> r.restart_ns) in
  let tbl =
    Table.create
      ~title:
        "Fig 3: four measures normalized to the worst store (smaller = \
         better)"
      ~columns:
        [ ("store", Table.Left); ("write amp", Table.Right);
          ("read latency", Table.Right); ("memory size", Table.Right);
          ("recovery time", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ r.o_name;
          Table.cell_f (r.wa /. w_wa);
          Table.cell_f (r.med_get_ns /. w_lat);
          Table.cell_f (r.dram /. w_dram);
          Table.cell_f (r.restart_ns /. w_restart) ])
    rows;
  Table.print tbl;
  pr "Shape check: ChameleonDB is the only store without a ~1.0 (worst)@.";
  pr "entry in any measure.@.@."

(* ------------------------------------------------------------------ *)
(* Figure 10: put throughput vs threads.                               *)
(* ------------------------------------------------------------------ *)

let fig10 scale =
  let tbl =
    Table.create ~title:"Fig 10: put throughput (Mops/s) vs threads"
      ~columns:
        (("store", Table.Left)
        :: List.map
             (fun t -> (Printf.sprintf "%dthr" t, Table.Right))
             scale.Stores.threads)
  in
  List.iter
    (fun spec ->
      let row =
        List.map
          (fun threads ->
            let store = spec.Stores.make () in
            let r =
              Stores.load_unique ~store ~threads ~start_at:0.0
                ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
            in
            Table.cell_f (Stores.sustained_mops ~store r))
          scale.Stores.threads
      in
      Table.add_row tbl (spec.Stores.name :: row))
    (Stores.all scale);
  Table.print tbl;
  pr "Shape check: Dram-Hash > ChameleonDB ~ PinK ~ NF >> F >> Pmem-Hash;@.";
  pr "paper headlines: ~3.3x over Pmem-LSM-F, ~6.4x over Pmem-Hash(CCEH).@.@."

(* ------------------------------------------------------------------ *)
(* Figure 11 + Table 2: put latency CDF and tails.                     *)
(* ------------------------------------------------------------------ *)

let tail_table ~title hists =
  let tbl =
    Table.create ~title
      ~columns:
        [ ("store", Table.Left); ("p50", Table.Right); ("p99", Table.Right);
          ("p99.9", Table.Right); ("p99.99", Table.Right);
          ("max", Table.Right) ]
  in
  List.iter
    (fun (name, h) ->
      Table.add_row tbl
        [ name;
          Table.cell_ns (Histogram.percentile h 50.0);
          Table.cell_ns (Histogram.percentile h 99.0);
          Table.cell_ns (Histogram.percentile h 99.9);
          Table.cell_ns (Histogram.percentile h 99.99);
          Table.cell_ns (Histogram.max_value h) ])
    hists;
  Table.print tbl

let cdf_table ~title hists =
  let percentiles = [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 99.99 ] in
  let tbl =
    Table.create ~title
      ~columns:
        (("percentile", Table.Left)
        :: List.map (fun (n, _) -> (n, Table.Right)) hists)
  in
  List.iter
    (fun p ->
      Table.add_row tbl
        (Printf.sprintf "p%g" p
        :: List.map
             (fun (_, h) -> Table.cell_ns (Histogram.percentile h p))
             hists))
    percentiles;
  Table.print tbl

let fig11 scale =
  let hists =
    List.map
      (fun spec ->
        let store = spec.Stores.make () in
        let r =
          Stores.load_unique ~store ~threads:8 ~start_at:0.0
            ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
        in
        (spec.Stores.name, r.Runner.put_latency))
      (Stores.all scale)
  in
  cdf_table ~title:"Fig 11: put latency CDF (8 threads, unique-key load)"
    hists;
  tail_table ~title:"Table 2: tail put latency" hists;
  pr "Shape check: Pmem-Hash median ~10x ChameleonDB's; Dram-Hash has the@.";
  pr "largest max (rehash pause); F-variant stalls on filter-building@.";
  pr "compactions.@.@."

(* ------------------------------------------------------------------ *)
(* Figure 12: get throughput vs threads.                               *)
(* ------------------------------------------------------------------ *)

let fig12 scale =
  let tbl =
    Table.create ~title:"Fig 12: get throughput (Mops/s) vs threads"
      ~columns:
        (("store", Table.Left)
        :: List.map
             (fun t -> (Printf.sprintf "%dthr" t, Table.Right))
             scale.Stores.threads)
  in
  List.iter
    (fun spec ->
      let store = spec.Stores.make () in
      let load =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0
          ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
      in
      let cursor = ref (Stores.settled_cursor ~store load) in
      let row =
        List.map
          (fun threads ->
            let r =
              Runner.run_ops ~store ~threads ~start_at:!cursor
                ~ops:scale.Stores.sweep_ops
                ~next:
                  (Stores.uniform_get_gen ~seed:(threads + 77)
                     ~universe:scale.Stores.load_keys)
                ()
            in
            cursor := Stores.settled_cursor ~store r;
            Table.cell_f (Runner.throughput_mops r))
          scale.Stores.threads
      in
      Table.add_row tbl (spec.Stores.name :: row))
    (Stores.all scale);
  Table.print tbl;
  pr "Shape check: Dram-Hash highest; ChameleonDB next (1.5-4.3x the@.";
  pr "other stores); NF lowest.@.@."

(* ------------------------------------------------------------------ *)
(* Figure 13 + Table 3: get latency CDF and tails.                     *)
(* ------------------------------------------------------------------ *)

let fig13 scale =
  let hists =
    List.map
      (fun spec ->
        let store = spec.Stores.make () in
        let load =
          Stores.load_unique ~store ~threads:8 ~start_at:0.0
            ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
        in
        let r =
          Runner.run_ops ~store ~threads:1
            ~start_at:(Stores.settled_cursor ~store load)
            ~ops:(scale.Stores.sweep_ops / 2)
            ~next:
              (Stores.uniform_get_gen ~seed:5
                 ~universe:scale.Stores.load_keys)
            ()
        in
        (spec.Stores.name, r.Runner.get_latency))
      (Stores.all scale)
  in
  cdf_table ~title:"Fig 13: get latency CDF (1 thread, uniform random)" hists;
  tail_table ~title:"Table 3: tail get latency" hists;
  (* ChameleonDB's two-stage curve: hit-stage breakdown *)
  let cfg = Stores.chameleon_cfg scale in
  let db = Chameleondb.Store.create ~cfg () in
  let store = Chameleondb.Store.store db in
  let load =
    Stores.load_unique ~store ~threads:8 ~start_at:0.0
      ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
  in
  let clock = Clock.create ~at:(Stores.settled_cursor ~store load) () in
  let rng = Workload.Rng.create ~seed:5 in
  let stages = Hashtbl.create 8 in
  for _ = 1 to scale.Stores.sweep_ops / 2 do
    let key =
      Workload.Keyspace.key_of_index
        (Workload.Rng.int rng scale.Stores.load_keys)
    in
    let r = Chameleondb.Store.read db clock key in
    let label =
      match r.Kv_common.Store_intf.stage with
      | Kv_common.Store_intf.Upper -> "upper(degraded)"
      | Kv_common.Store_intf.Last -> "last-level"
      | stage -> Kv_common.Store_intf.stage_name stage
    in
    Hashtbl.replace stages label
      (1 + Option.value ~default:0 (Hashtbl.find_opt stages label))
  done;
  pr "ChameleonDB get hit-stage breakdown (the two CDF stages):@.";
  Hashtbl.iter (fun k v -> pr "  %-16s %d@." k v) stages;
  pr
    "Shape check: ChameleonDB's median sits well below the LSM variants and@.";
  pr "Pmem-Hash; only Dram-Hash is lower.@.@."

(* ------------------------------------------------------------------ *)
(* Figure 14: YCSB workloads, normalized to Pmem-Hash.                 *)
(* ------------------------------------------------------------------ *)

let fig14 scale =
  let mixes = Workload.Ycsb.all in
  let results = Hashtbl.create 64 in
  List.iter
    (fun spec ->
      List.iter
        (fun mix ->
          let store = spec.Stores.make () in
          let load =
            Stores.load_unique ~store ~threads:8 ~start_at:0.0
              ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
          in
          let thr =
            match mix with
            | Workload.Ycsb.Load -> Stores.sustained_mops ~store load
            | _ ->
              let gen =
                Workload.Ycsb.create ~seed:3 ~vlen:scale.Stores.vlen ~mix
                  ~loaded:scale.Stores.load_keys ()
              in
              let r =
                Runner.run_ops ~store ~threads:8
                  ~start_at:(Stores.settled_cursor ~store load)
                  ~ops:scale.Stores.sweep_ops
                  ~next:(fun () -> Workload.Ycsb.next gen)
                  ()
              in
              Runner.throughput_mops r
          in
          Hashtbl.replace results (spec.Stores.name, mix) thr)
        mixes)
    (Stores.all scale);
  let tbl =
    Table.create
      ~title:"Fig 14: YCSB throughput normalized to Pmem-Hash (8 threads)"
      ~columns:
        (("workload", Table.Left) :: ("Pmem-Hash Mops", Table.Right)
        :: List.filter_map
             (fun spec ->
               if spec.Stores.name = "Pmem-Hash" then None
               else Some (spec.Stores.name, Table.Right))
             (Stores.all scale))
  in
  List.iter
    (fun mix ->
      let base = Hashtbl.find results ("Pmem-Hash", mix) in
      Table.add_row tbl
        (Workload.Ycsb.name mix
        :: Table.cell_f base
        :: List.filter_map
             (fun spec ->
               if spec.Stores.name = "Pmem-Hash" then None
               else
                 Some
                   (Table.cell_f
                      (Hashtbl.find results (spec.Stores.name, mix) /. base)))
             (Stores.all scale)))
    mixes;
  Table.print tbl;
  pr "Shape check: ChameleonDB beats everything but Dram-Hash on all mixes@.";
  pr "except D, where the LSM family ties (MemTable hits).@.@."

(* ------------------------------------------------------------------ *)
(* Figure 15: compaction-scheme and Write-Intensive-Mode ablation.     *)
(* ------------------------------------------------------------------ *)

let fig15 scale =
  let variants =
    [ ("Level-by-Level",
       fun cfg -> { cfg with Config.compaction = Config.Level_by_level });
      ("Direct", fun cfg -> cfg);
      ("Direct+WIM", fun cfg -> { cfg with Config.write_intensive = true }) ]
  in
  let tbl =
    Table.create
      ~title:"Fig 15: put throughput during a unique-key load (16 threads)"
      ~columns:
        [ ("configuration", Table.Left); ("Mops/s", Table.Right);
          ("index media bytes", Table.Right); ("compactions", Table.Right);
          ("restart after crash", Table.Right) ]
  in
  List.iter
    (fun (name, f) ->
      let cfg = f (Stores.chameleon_cfg scale) in
      let db = Chameleondb.Store.create ~cfg () in
      let store = Chameleondb.Store.store db in
      let before = Stats.copy (Device.stats (Store_intf.device store)) in
      let i = ref 0 in
      let r =
        (* no clean shutdown: the crash below must find a dirty store; 16
           threads so the media (not the issuing cores) is the bottleneck
           that the modes relieve *)
        Runner.run_ops ~store ~threads:16 ~start_at:0.0
          ~ops:scale.Stores.load_keys
          ~next:(fun () ->
            let key = Workload.Keyspace.key_of_index !i in
            incr i;
            Types.Put (key, scale.Stores.vlen))
          ()
      in
      let after = Stats.copy (Device.stats (Store_intf.device store)) in
      let delta = Stats.diff ~after ~before in
      let log_bytes =
        float_of_int
          (Kv_common.Vlog.bytes_upto (Chameleondb.Store.vlog db)
             (Kv_common.Vlog.length (Chameleondb.Store.vlog db)))
      in
      let index_media = delta.Stats.media_write_bytes -. log_bytes in
      let totals = Chameleondb.Store.totals db in
      let put_mops = Stores.sustained_mops ~store r in
      Chameleondb.Store.crash db;
      let rclock = Clock.create ~at:r.Runner.end_ns () in
      let restart = Chameleondb.Store.recover db rclock in
      Table.add_row tbl
        [ name;
          Table.cell_f put_mops;
          Table.cell_bytes index_media;
          string_of_int
            (totals.Chameleondb.Store.upper_compactions
            + totals.Chameleondb.Store.last_compactions);
          Table.cell_ns restart ])
    variants;
  Table.print tbl;
  pr "Shape check: Direct > Level-by-Level by a few percent; adding WIM@.";
  pr "gains tens of percent more but pays a much longer (yet still@.";
  pr "bounded, cf. Dram-Hash) restart.@.@."

(* ------------------------------------------------------------------ *)
(* Figure 16: get tail latency under put bursts, with/without GPM.     *)
(* ------------------------------------------------------------------ *)

let fig16 scale =
  let stores =
    [ ("Pmem-Hash", (Stores.find scale "Pmem-Hash").Stores.make);
      ("ChamDB (no GPM)", (Stores.chameleon scale).Stores.make);
      ("ChamDB (GPM)",
       (Stores.chameleon
          ~f:(fun cfg -> { cfg with Config.gpm_enabled = true })
          scale)
         .Stores.make) ]
  in
  let threads = 8 in
  let gets_a = scale.Stores.sweep_ops / threads in
  let burst = scale.Stores.load_keys / 4 / threads in
  List.iter
    (fun (name, make) ->
      let store = make () in
      let load =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0
          ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
      in
      (* phase plan per thread: gets, burst puts, gets, burst puts, gets *)
      let plan = [| gets_a; burst; gets_a; burst; gets_a |] in
      let rngs =
        Array.init threads (fun i -> Workload.Rng.create ~seed:(100 + i))
      in
      let progress = Array.make threads (0, 0) in
      let fresh = ref scale.Stores.load_keys in
      let gen ~thread ~now:_ =
        let phase, k = progress.(thread) in
        if phase >= Array.length plan then None
        else begin
          let phase, k =
            if k >= plan.(phase) then (phase + 1, 0) else (phase, k)
          in
          if phase >= Array.length plan then begin
            progress.(thread) <- (phase, 0);
            None
          end
          else begin
            progress.(thread) <- (phase, k + 1);
            let burst = phase mod 2 = 1 in
            (* during a burst most requests are fresh-key puts, but gets
               keep flowing so their tail latency is observable *)
            if burst && Workload.Rng.int rngs.(thread) 100 < 80 then begin
              let ix = !fresh in
              incr fresh;
              Some
                (Types.Put
                   (Workload.Keyspace.key_of_index ix, scale.Stores.vlen))
            end
            else
              Some
                (Types.Get
                   (Workload.Keyspace.key_of_index
                      (Workload.Rng.int rngs.(thread) scale.Stores.load_keys)))
          end
        end
      in
      let windows =
        Timeline.run ~store ~threads
          ~start_at:(Stores.settled_cursor ~store load)
          ~window_ns:2_000_000.0 ~gen ()
      in
      let base_p99 =
        match windows with w :: _ -> w.Timeline.get_p99 | [] -> 0.0
      in
      let peak =
        List.fold_left
          (fun a w -> Float.max a w.Timeline.get_p99)
          0.0 windows
      in
      (* sustained burst tail: median window-p99 over burst windows *)
      let burst_p99s =
        List.filter_map
          (fun w ->
            if w.Timeline.puts * 4 > w.Timeline.ops then
              Some w.Timeline.get_p99
            else None)
          windows
        |> List.sort compare
      in
      let sustained =
        match burst_p99s with
        | [] -> 0.0
        | l -> List.nth l (List.length l / 2)
      in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf
               "Fig 16 [%s]: windowed get p99 and throughput (2ms windows)"
               name)
          ~columns:
            [ ("t (ms)", Table.Right); ("ops", Table.Right);
              ("puts", Table.Right); ("get p99", Table.Right) ]
      in
      let nw = List.length windows in
      let stride = max 1 (nw / 18) in
      List.iteri
        (fun i w ->
          if i mod stride = 0 then
            Table.add_row tbl
              [ Printf.sprintf "%.1f" (w.Timeline.t_start /. 1e6);
                string_of_int w.Timeline.ops;
                string_of_int w.Timeline.puts;
                Table.cell_ns w.Timeline.get_p99 ])
        windows;
      Table.print tbl;
      pr
        "  %s: baseline p99 = %s, burst sustained p99 = %s (%.2fx), \
         transient peak = %s@.@."
        name (Table.cell_ns base_p99) (Table.cell_ns sustained)
        (if base_p99 > 0.0 then sustained /. base_p99 else 0.0)
        (Table.cell_ns peak))
    stores;
  pr "Shape check: Pmem-Hash spikes hardest and longest; GPM cuts@.";
  pr "ChameleonDB's burst peak relative to no-GPM.@.@."

(* ------------------------------------------------------------------ *)
(* Figure 17: vs NoveLSM and MatrixKV across value sizes.              *)
(* ------------------------------------------------------------------ *)

let fig17 scale =
  let value_sizes = [ 64; 256; 1024; 4096; 16384; 65536 ] in
  let write_budget = 3 * scale.Stores.load_keys * 80 / 4 in
  let read_budget = write_budget / 4 in
  (* LSM structures sized so the scaled data set traverses several leveled
     compaction rounds, as the paper's 64 GB does *)
  let mk_stores n =
    let cap = max 1024 (n / 24) in
    [ ("ChameleonDB",
       (Stores.chameleon
          ~f:(fun cfg -> { cfg with Config.shards = 8 })
          scale)
         .Stores.make ());
      ("NoveLSM",
       Baselines.Novelsm.store
         (Baselines.Novelsm.create ~memtable_cap:cap ~l0_runs:4 ~ratio:8 ()));
      ("MatrixKV",
       (* finer-grained column compactions: small L0, frequent leveled
          rewrites below — the paper measures MatrixKV writing even more
          media bytes than NoveLSM *)
       Baselines.Matrixkv.store
         (Baselines.Matrixkv.create
            ~memtable_cap:(max 512 (n / 64))
            ~l0_sublevels:2 ~ratio:8 ())) ]
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 17: value-size sweep vs NoveLSM/MatrixKV (write %s, read %s)"
           (Table.cell_bytes (float_of_int write_budget))
           (Table.cell_bytes (float_of_int read_budget)))
      ~columns:
        [ ("vsize", Table.Right); ("store", Table.Left);
          ("put Kops/s", Table.Right); ("Pmem W bytes", Table.Right);
          ("W GB/s", Table.Right); ("get Kops/s", Table.Right);
          ("Pmem R bytes", Table.Right); ("R GB/s", Table.Right) ]
  in
  List.iter
    (fun vlen ->
      let n = max 4_000 (write_budget / (16 + vlen)) in
      let nreads = max 2_000 (read_budget / (16 + vlen)) in
      List.iter
        (fun (name, store) ->
          let before = Stats.copy (Device.stats (Store_intf.device store)) in
          let load =
            Stores.load_unique ~store ~threads:1 ~start_at:0.0 ~n ~vlen
          in
          let mid = Stats.copy (Device.stats (Store_intf.device store)) in
          let wdelta = Stats.diff ~after:mid ~before in
          let put_kops = Stores.sustained_mops ~store load *. 1000.0 in
          let put_duration =
            Stores.settled_cursor ~store load -. load.Runner.start_ns
          in
          let gets =
            Runner.run_ops ~store ~threads:1
              ~start_at:(Stores.settled_cursor ~store load) ~ops:nreads
              ~next:(Stores.uniform_get_gen ~seed:9 ~universe:n)
              ()
          in
          let rdelta =
            Stats.diff
              ~after:(Stats.copy (Device.stats (Store_intf.device store)))
              ~before:mid
          in
          Table.add_row tbl
            [ Table.cell_bytes (float_of_int vlen);
              name;
              Table.cell_f put_kops;
              Table.cell_bytes wdelta.Stats.media_write_bytes;
              Table.cell_f (wdelta.Stats.media_write_bytes /. put_duration);
              Table.cell_f (Runner.throughput_mops gets *. 1000.0);
              Table.cell_bytes rdelta.Stats.media_read_bytes;
              Table.cell_f
                (rdelta.Stats.media_read_bytes /. Runner.sim_ns gets) ])
        (mk_stores n);
      Table.add_rule tbl)
    value_sizes;
  Table.print tbl;
  pr "Shape check: ChameleonDB wins puts and gets at every value size;@.";
  pr "NoveLSM/MatrixKV write many times more media bytes (leveled@.";
  pr "compaction, in-Pmem skiplist, RowTable metadata).@.@."

(* ------------------------------------------------------------------ *)
(* Tables 1 and 5: configuration and workload definitions.             *)
(* ------------------------------------------------------------------ *)

let tab1 scale =
  let cfg = Stores.chameleon_cfg scale in
  let tbl =
    Table.create ~title:"Table 1: ChameleonDB configuration (scaled)"
      ~columns:[ ("parameter", Table.Left); ("value", Table.Left) ]
  in
  Table.add_row tbl
    [ "# of Shards";
      Printf.sprintf "%d (paper: 16384)" cfg.Config.shards ];
  Table.add_row tbl
    [ "MemTable Size";
      Printf.sprintf "%dB per shard (paper: 8KB)"
        (cfg.Config.memtable_slots * 16) ];
  Table.add_row tbl
    [ "# of Levels"; Printf.sprintf "%d (including last)" cfg.Config.levels ];
  Table.add_row tbl
    [ "Between-level Ratio"; string_of_int cfg.Config.ratio ];
  Table.add_row tbl
    [ "Load Factor";
      Printf.sprintf "randomly from %.2f to %.2f" cfg.Config.lf_min
        cfg.Config.lf_max ];
  Table.add_row tbl
    [ "ABI Size";
      Printf.sprintf "%dB per shard (paper: 512KB)"
        (cfg.Config.abi_slots_factor * cfg.Config.memtable_slots * 16) ];
  Table.add_row tbl
    [ "Log batch"; Printf.sprintf "%dB" cfg.Config.vlog_batch_bytes ];
  Table.print tbl

let tab5 _scale =
  let tbl =
    Table.create ~title:"Table 5: YCSB workloads"
      ~columns:[ ("workload", Table.Left); ("description", Table.Left) ]
  in
  List.iter
    (fun mix ->
      Table.add_row tbl
        [ Workload.Ycsb.name mix; Workload.Ycsb.description mix ])
    Workload.Ycsb.all;
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* Write-amplification formula check (Section 2.5).                    *)
(* ------------------------------------------------------------------ *)

let wa_check scale =
  let cfg = Stores.chameleon_cfg scale in
  let db = Chameleondb.Store.create ~cfg () in
  let store = Chameleondb.Store.store db in
  let before = Stats.copy (Device.stats (Store_intf.device store)) in
  let _ =
    Stores.load_unique ~store ~threads:4 ~start_at:0.0
      ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
  in
  let delta =
    Stats.diff
      ~after:(Stats.copy (Device.stats (Store_intf.device store)))
      ~before
  in
  let vlog = Chameleondb.Store.vlog db in
  let log_bytes =
    float_of_int (Kv_common.Vlog.bytes_upto vlog (Kv_common.Vlog.length vlog))
  in
  let index_media = delta.Stats.media_write_bytes -. log_bytes in
  let index_user = float_of_int (scale.Stores.load_keys * 16) in
  let measured = index_media /. index_user in
  let l = float_of_int cfg.Config.levels
  and r = float_of_int cfg.Config.ratio in
  let f = (cfg.Config.lf_min +. cfg.Config.lf_max) /. 2.0 in
  let formula = (l -. 1.0 +. r) /. f in
  let tbl =
    Table.create ~title:"WA: index write amplification vs formula (l-1+r)/f"
      ~columns:[ ("quantity", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row tbl [ "measured index WA"; Table.cell_f measured ];
  Table.add_row tbl [ "formula (l-1+r)/f"; Table.cell_f formula ];
  Table.add_row tbl
    [ "index media bytes"; Table.cell_bytes index_media ];
  Table.add_row tbl [ "log bytes"; Table.cell_bytes log_bytes ];
  Table.print tbl;
  pr "Shape check: measured within ~2x of the closed form (the formula@.";
  pr "assumes a full steady-state cycle; edges and dedup shift it).@.@."

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper.                                         *)
(* ------------------------------------------------------------------ *)

let abl_abi scale =
  let variants =
    [ ("ABI enabled", fun cfg -> cfg);
      ("ABI disabled",
       fun cfg -> { cfg with Config.abi_enabled = false }) ]
  in
  let tbl =
    Table.create ~title:"abl-abi: gets with and without the ABI"
      ~columns:
        [ ("configuration", Table.Left); ("get Mops/s", Table.Right);
          ("median get", Table.Right); ("p99 get", Table.Right) ]
  in
  List.iter
    (fun (name, f) ->
      let spec = Stores.chameleon ~f scale in
      let store = spec.Stores.make () in
      let load =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0
          ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
      in
      let r =
        Runner.run_ops ~store ~threads:8
          ~start_at:(Stores.settled_cursor ~store load)
          ~ops:scale.Stores.sweep_ops
          ~next:(Stores.uniform_get_gen ~seed:4 ~universe:scale.Stores.load_keys)
          ()
      in
      Table.add_row tbl
        [ name;
          Table.cell_f (Runner.throughput_mops r);
          Table.cell_ns (Histogram.median r.Runner.get_latency);
          Table.cell_ns (Histogram.percentile r.Runner.get_latency 99.0) ])
    variants;
  Table.print tbl;
  pr "Shape check: without the ABI the store degenerates to multi-level@.";
  pr "Pmem probing (Pmem-LSM-NF-like latency).@.@."

let abl_shards scale =
  let variants =
    [ ("randomized LF [0.65,0.85]", fun cfg -> cfg);
      ("fixed LF 0.75",
       fun cfg -> { cfg with Config.lf_min = 0.75; lf_max = 0.75 }) ]
  in
  let tbl =
    Table.create
      ~title:"abl-shards: compaction staggering via randomized load factors"
      ~columns:
        [ ("configuration", Table.Left); ("Mops/s", Table.Right);
          ("worst window Mops/s", Table.Right);
          ("window stddev", Table.Right) ]
  in
  List.iter
    (fun (name, f) ->
      let spec = Stores.chameleon ~f scale in
      let store = spec.Stores.make () in
      let i = ref 0 in
      let n = scale.Stores.load_keys in
      let gen ~thread:_ ~now:_ =
        if !i >= n then None
        else begin
          let key = Workload.Keyspace.key_of_index !i in
          incr i;
          Some (Types.Put (key, scale.Stores.vlen))
        end
      in
      let windows =
        Timeline.run ~store ~threads:8 ~start_at:0.0 ~window_ns:1_000_000.0
          ~gen ()
      in
      let rates =
        List.map (fun w -> float_of_int w.Timeline.ops /. 1000.0) windows
      in
      let total = List.fold_left ( +. ) 0.0 rates in
      let mean = total /. float_of_int (List.length rates) in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 rates
        /. float_of_int (List.length rates)
      in
      let worst = List.fold_left Float.min infinity rates in
      Table.add_row tbl
        [ name; Table.cell_f mean; Table.cell_f worst;
          Table.cell_f (sqrt var) ])
    variants;
  Table.print tbl;
  pr "Shape check: fixed load factors synchronize shard compactions,@.";
  pr "deepening the worst windows.@.@."

let abl_bloom scale =
  let tbl =
    Table.create ~title:"abl-bloom: Pmem-LSM-F bits-per-key sweep"
      ~columns:
        [ ("bits/key", Table.Right); ("put Mops/s", Table.Right);
          ("get Mops/s", Table.Right); ("median get", Table.Right) ]
  in
  List.iter
    (fun bits ->
      let cfg = Stores.chameleon_cfg scale in
      let lsm =
        Baselines.Pmem_lsm.create ~cfg ~bloom_bits:bits Baselines.Pmem_lsm.F
      in
      let store = Baselines.Pmem_lsm.store lsm in
      let load =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0
          ~n:(scale.Stores.load_keys / 2) ~vlen:scale.Stores.vlen
      in
      let gets =
        Runner.run_ops ~store ~threads:8
          ~start_at:(Stores.settled_cursor ~store load)
          ~ops:(scale.Stores.sweep_ops / 2)
          ~next:
            (Stores.uniform_get_gen ~seed:6
               ~universe:(scale.Stores.load_keys / 2))
          ()
      in
      Table.add_row tbl
        [ string_of_int bits;
          Table.cell_f (Stores.sustained_mops ~store load);
          Table.cell_f (Runner.throughput_mops gets);
          Table.cell_ns (Histogram.median gets.Runner.get_latency) ])
    [ 4; 8; 12; 16 ];
  Table.print tbl;
  pr "Shape check: more bits cut false-positive probes (gets improve@.";
  pr "slightly) but construction cost stays the put bottleneck.@.@."

let abl_gc scale =
  let cfg = Stores.chameleon_cfg scale in
  let db = Chameleondb.Store.create ~cfg () in
  let n = scale.Stores.load_keys / 2 in
  (* three write rounds: 2/3 of the log is superseded garbage *)
  let clock = Clock.create () in
  for round = 1 to 3 do
    ignore round;
    for i = 0 to n - 1 do
      Chameleondb.Store.write db clock
        (Workload.Keyspace.key_of_index i)
        (Kv_common.Store_intf.Sized scale.Stores.vlen)
    done
  done;
  let vlog = Chameleondb.Store.vlog db in
  let tbl =
    Table.create ~title:"abl-gc: value-log garbage collection passes"
      ~columns:
        [ ("pass", Table.Right); ("scanned", Table.Right);
          ("live", Table.Right); ("dead", Table.Right);
          ("reclaimed", Table.Right); ("log live bytes", Table.Right);
          ("pass cost", Table.Right) ]
  in
  Table.add_row tbl
    [ "-"; "-"; "-"; "-"; "-";
      Table.cell_bytes (float_of_int (Kv_common.Vlog.live_bytes vlog)); "-" ];
  let continue = ref true in
  let pass = ref 0 in
  while !continue && !pass < 20 do
    incr pass;
    let t0 = Clock.now clock in
    let s = Chameleondb.Store.gc db clock ~max_entries:(n / 2) () in
    Table.add_row tbl
      [ string_of_int !pass;
        string_of_int s.Chameleondb.Store.gc_scanned;
        string_of_int s.Chameleondb.Store.gc_live;
        string_of_int s.Chameleondb.Store.gc_dead;
        Table.cell_bytes (float_of_int s.Chameleondb.Store.gc_reclaimed_bytes);
        Table.cell_bytes (float_of_int (Kv_common.Vlog.live_bytes vlog));
        Table.cell_ns (Clock.now clock -. t0) ];
    if s.Chameleondb.Store.gc_scanned = 0 then continue := false;
    (* stop once the head has chased the tail down to ~the live set *)
    if Kv_common.Vlog.live_bytes vlog < 2 * n * (16 + scale.Stores.vlen) then
      continue := false
  done;
  (* data intact after collection *)
  let missing = ref 0 in
  for i = 0 to n - 1 do
    if
      (Chameleondb.Store.read db clock (Workload.Keyspace.key_of_index i))
        .Kv_common.Store_intf.loc = None
    then incr missing
  done;
  Table.print tbl;
  pr "Post-GC verification: %d of %d keys missing (must be 0).@." !missing n;
  pr "Shape check: dead fraction ~2/3 on early passes; live bytes converge@.";
  pr "to one version per key.@.@."

let abl_ratio scale =
  let tbl =
    Table.create ~title:"abl-ratio: between-level ratio r"
      ~columns:
        [ ("r", Table.Right); ("put Mops/s", Table.Right);
          ("index WA", Table.Right); ("median get", Table.Right);
          ("compactions", Table.Right) ]
  in
  List.iter
    (fun r ->
      let base = Stores.chameleon_cfg scale in
      let cfg =
        { base with
          Config.ratio = r;
          (* keep the ABI large enough for the worst-case upper content *)
          abi_slots_factor = 2 * r * r * r }
      in
      let db = Chameleondb.Store.create ~cfg () in
      let store = Chameleondb.Store.store db in
      let before = Stats.copy (Device.stats (Store_intf.device store)) in
      let load =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0
          ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
      in
      let delta =
        Stats.diff
          ~after:(Stats.copy (Device.stats (Store_intf.device store)))
          ~before
      in
      let vlog = Chameleondb.Store.vlog db in
      let log_bytes =
        float_of_int (Kv_common.Vlog.bytes_upto vlog (Kv_common.Vlog.length vlog))
      in
      let index_wa =
        (delta.Stats.media_write_bytes -. log_bytes)
        /. float_of_int (scale.Stores.load_keys * 16)
      in
      let put_mops = Stores.sustained_mops ~store load in
      let gets =
        Runner.run_ops ~store ~threads:1
          ~start_at:(Stores.settled_cursor ~store load)
          ~ops:(scale.Stores.sweep_ops / 4)
          ~next:(Stores.uniform_get_gen ~seed:8 ~universe:scale.Stores.load_keys)
          ()
      in
      let totals = Chameleondb.Store.totals db in
      Table.add_row tbl
        [ string_of_int r;
          Table.cell_f put_mops;
          Table.cell_f index_wa;
          Table.cell_ns (Histogram.median gets.Runner.get_latency);
          string_of_int
            (totals.Chameleondb.Store.upper_compactions
            + totals.Chameleondb.Store.last_compactions) ])
    [ 2; 4; 8 ];
  Table.print tbl;
  pr "Shape check: WA follows (l-1+r)/f — larger r costs more write@.";
  pr "amplification in the leveled last level but fewer compactions.@.@."

let abl_batch scale =
  let tbl =
    Table.create ~title:"abl-batch: storage-log batch size"
      ~columns:
        [ ("batch", Table.Right); ("put Mops/s", Table.Right);
          ("put p99", Table.Right); ("put p99.9", Table.Right) ]
  in
  List.iter
    (fun batch ->
      let cfg =
        { (Stores.chameleon_cfg scale) with Config.vlog_batch_bytes = batch }
      in
      let db = Chameleondb.Store.create ~cfg () in
      let store = Chameleondb.Store.store db in
      let r =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0
          ~n:(scale.Stores.load_keys / 2) ~vlen:scale.Stores.vlen
      in
      Table.add_row tbl
        [ Table.cell_bytes (float_of_int batch);
          Table.cell_f (Stores.sustained_mops ~store r);
          Table.cell_ns (Histogram.percentile r.Runner.put_latency 99.0);
          Table.cell_ns (Histogram.percentile r.Runner.put_latency 99.9) ])
    [ 256; 1024; 4096; 16384 ];
  Table.print tbl;
  pr "Shape check: tiny batches persist more often (higher per-op cost);@.";
  pr "large batches amortize better but lengthen the unpersisted tail.@.@."

let abl_device scale =
  (* the paper's thesis is device-specific: on a slow block device the
     Bloom-filter LSM is the right design and the ABI buys little, while on
     Optane the filter checks dominate and the ABI wins.  Run ChameleonDB
     and Pmem-LSM-F on both profiles. *)
  let tbl =
    Table.create ~title:"abl-device: design fit vs device (1-thread gets)"
      ~columns:
        [ ("device", Table.Left); ("store", Table.Left);
          ("median get", Table.Right); ("get Kops/s", Table.Right);
          ("Cham advantage", Table.Right) ]
  in
  List.iter
    (fun (dev_name, profile) ->
      let run make =
        let dev = Device.create profile in
        let store = make dev in
        (* load past the compaction cycle so most keys live in the last
           level, as in the main experiments *)
        let load =
          Stores.load_unique ~store ~threads:4 ~start_at:0.0
            ~n:scale.Stores.load_keys ~vlen:scale.Stores.vlen
        in
        Runner.run_ops ~store ~threads:1
          ~start_at:(Stores.settled_cursor ~store load)
          ~ops:(scale.Stores.sweep_ops / 8)
          ~next:
            (Stores.uniform_get_gen ~seed:14
               ~universe:scale.Stores.load_keys)
          ()
      in
      let cfg =
        { (Stores.chameleon_cfg scale) with Config.shards = 8 }
      in
      let cham =
        run (fun dev ->
            Chameleondb.Store.store (Chameleondb.Store.create ~cfg ~dev ()))
      in
      let f =
        run (fun dev ->
            Baselines.Pmem_lsm.store
              (Baselines.Pmem_lsm.create ~cfg ~dev Baselines.Pmem_lsm.F))
      in
      let kops r = Runner.throughput_mops r *. 1000.0 in
      Table.add_row tbl
        [ dev_name; "ChameleonDB";
          Table.cell_ns (Histogram.median cham.Runner.get_latency);
          Table.cell_f (kops cham);
          Printf.sprintf "%.2fx" (kops cham /. kops f) ];
      Table.add_row tbl
        [ dev_name; "Pmem-LSM-F";
          Table.cell_ns (Histogram.median f.Runner.get_latency);
          Table.cell_f (kops f); "" ];
      Table.add_rule tbl)
    [ ("Optane", Cost_model.optane); ("NVMe-SSD", Cost_model.nvme_ssd) ];
  Table.print tbl;
  pr "Shape check: the ABI's advantage over the filtered LSM is large on@.";
  pr "Optane and nearly vanishes on the SSD, where device reads dwarf@.";
  pr "filter checks (the paper's Fig. 2 argument inverted).@.@."

(* ------------------------------------------------------------------ *)
(* Service: Fig 16's burst scenario re-run open-loop through the       *)
(* serving layer (wire codec, scheduler queue, admission control).     *)
(* ------------------------------------------------------------------ *)

let service scale =
  let workers = 8 in
  let vlen = scale.Stores.vlen in
  let n_keys = scale.Stores.load_keys in
  let reqgen_get = Service.Loadgen.mixed_reqgen ~n_keys ~get_frac:1.0 ~vlen in
  let reqgen_put = Service.Loadgen.mixed_reqgen ~n_keys ~get_frac:0.0 ~vlen in
  let mk ~gpm () =
    let cfg = Stores.chameleon_cfg scale in
    let cfg = if gpm then { cfg with Config.gpm_enabled = true } else cfg in
    let db = Chameleondb.Store.create ~cfg () in
    let store = Chameleondb.Store.store db in
    let load =
      Stores.load_unique ~store ~threads:workers ~start_at:0.0 ~n:n_keys ~vlen
    in
    (db, store, Stores.settled_cursor ~store load)
  in
  (* capacity probe: closed-loop gets saturate the worker pool, giving the
     Mreq/s the offered open-loop rates are expressed against *)
  let _, pstore, pt0 = mk ~gpm:false () in
  let conns = workers * 4 in
  let probe =
    Service.Server.run ~store:pstore ~workers ~start_at:pt0
      ~closed:
        (Service.Loadgen.closed_loop ~conns
           ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / conns / 4))
           ~reqgen:reqgen_get ())
      ()
  in
  let cap = Service.Server.throughput_mops probe in
  pr "Closed-loop capacity probe: %.2f Mreq/s over %d workers (get p99 %s)@.@."
    cap workers
    (Table.cell_ns (Histogram.percentile probe.Service.Server.get_service 99.0));
  (* open-loop offered load: a steady get stream at 60%% of capacity plus a
     square wave of put bursts that pushes the total past capacity during
     each burst, as in Fig 16 *)
  let get_rate = 0.6 *. cap in
  let burst_rate = 0.9 *. cap in
  let base_rate = 0.05 *. cap in
  let avg_rate = get_rate +. (0.25 *. burst_rate) +. (0.75 *. base_rate) in
  let duration_ns =
    float_of_int scale.Stores.sweep_ops /. avg_rate *. 1000.0
  in
  let period_ns = duration_ns /. 4.0 in
  let window_ns = Float.max 100_000.0 (duration_ns /. 64.0) in
  let run_variant ~gpm ~admit ~sched () =
    let db, store, t0 = mk ~gpm () in
    let gets =
      Service.Loadgen.open_loop ~seed:21 ~conns:4
        ~process:(Service.Loadgen.Poisson { rate_mops = get_rate })
        ~reqgen:reqgen_get ~duration_ns ~start_at:t0 ()
    in
    let puts =
      Service.Loadgen.open_loop ~seed:22 ~conns:4 ~conn_base:100
        ~process:
          (Service.Loadgen.Square
             { base_mops = base_rate; burst_mops = burst_rate; period_ns;
               duty = 0.25 })
        ~reqgen:reqgen_put ~duration_ns ~start_at:t0 ()
    in
    let arrivals = Service.Loadgen.merge [ gets; puts ] in
    let admission =
      if admit then
        Some
          (Service.Admission.create
             ~signals:(Chameleondb.Store.signals db)
             ~burst:512.0
             ~rate_mops:(Float.max 0.1 (0.4 *. cap))
             ())
      else None
    in
    Service.Server.run ?admission ~sched ~store ~workers ~start_at:t0
      ~window_ns ~arrivals ()
  in
  let variants =
    [ ("no GPM", false, false); ("GPM", true, false);
      ("GPM+admission", true, true) ]
  in
  let results =
    List.map
      (fun (name, gpm, admit) ->
        (name, run_variant ~gpm ~admit ~sched:Service.Server.Fifo ()))
      variants
  in
  (* burst-window tail: windows where writes dominate, as in fig16 *)
  let burst_p99 s =
    let l =
      List.filter_map
        (fun w ->
          if w.Service.Server.w_writes * 4 > w.Service.Server.w_reqs
             && w.Service.Server.w_gets > 0
          then Some w.Service.Server.w_get_p99
          else None)
        s.Service.Server.windows
      |> List.sort compare
    in
    match l with [] -> 0.0 | _ -> List.nth l (List.length l / 2)
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "service: open-loop burst scenario (%d workers, %.2f Mreq/s gets, \
            %.2f Mreq/s put bursts)"
           workers get_rate burst_rate)
      ~columns:
        [ ("configuration", Table.Left); ("reqs", Table.Right);
          ("Mops/s", Table.Right); ("shed", Table.Right);
          ("maxQ", Table.Right); ("get p50", Table.Right);
          ("get p99", Table.Right); ("burst get p99", Table.Right);
          ("put p99", Table.Right) ]
  in
  List.iter
    (fun (name, s) ->
      Table.add_row tbl
        [ name;
          string_of_int s.Service.Server.submitted;
          Table.cell_f (Service.Server.throughput_mops s);
          Printf.sprintf "%.1f%%" (100.0 *. Service.Server.shed_rate s);
          string_of_int s.Service.Server.max_depth;
          Table.cell_ns
            (Histogram.percentile s.Service.Server.get_service 50.0);
          Table.cell_ns
            (Histogram.percentile s.Service.Server.get_service 99.0);
          Table.cell_ns (burst_p99 s);
          Table.cell_ns
            (Histogram.percentile s.Service.Server.put_service 99.0) ])
    results;
  Table.print tbl;
  (* windowed timeline for the two extremes *)
  List.iter
    (fun (name, s) ->
      if name <> "GPM" then begin
        let tbl =
          Table.create
            ~title:
              (Printf.sprintf "service [%s]: windowed get service p99" name)
            ~columns:
              [ ("t (ms)", Table.Right); ("reqs", Table.Right);
                ("writes", Table.Right); ("shed", Table.Right);
                ("get p99", Table.Right) ]
        in
        let nw = List.length s.Service.Server.windows in
        let stride = max 1 (nw / 16) in
        List.iteri
          (fun i w ->
            if i mod stride = 0 then
              Table.add_row tbl
                [ Printf.sprintf "%.1f"
                    ((w.Service.Server.w_start -. s.Service.Server.start_ns)
                    /. 1e6);
                  string_of_int w.Service.Server.w_reqs;
                  string_of_int w.Service.Server.w_writes;
                  string_of_int w.Service.Server.w_shed;
                  Table.cell_ns w.Service.Server.w_get_p99 ])
          s.Service.Server.windows;
        Table.print tbl
      end)
    results;
  (* SLO attainment on get service latency, queueing included *)
  Table.print
    (Metrics.Slo.table ~title:"service: get SLO attainment (service latency)"
       ~targets:
         [ Metrics.Slo.target ~name:"5us" ~ns:5_000.0;
           Metrics.Slo.target ~name:"20us" ~ns:20_000.0;
           Metrics.Slo.target ~name:"100us" ~ns:100_000.0 ]
       (List.map (fun (n, s) -> (n, s.Service.Server.get_service)) results));
  (* scheduler comparison at the protected configuration *)
  let sched_tbl =
    Table.create ~title:"service: scheduler comparison (GPM+admission)"
      ~columns:
        [ ("scheduler", Table.Left); ("Mops/s", Table.Right);
          ("get p99", Table.Right); ("queue wait p99", Table.Right);
          ("maxQ", Table.Right) ]
  in
  List.iter
    (fun sched ->
      let s = run_variant ~gpm:true ~admit:true ~sched () in
      Table.add_row sched_tbl
        [ Service.Server.sched_name sched;
          Table.cell_f (Service.Server.throughput_mops s);
          Table.cell_ns
            (Histogram.percentile s.Service.Server.get_service 99.0);
          Table.cell_ns
            (Histogram.percentile s.Service.Server.queue_wait 99.0);
          string_of_int s.Service.Server.max_depth ])
    [ Service.Server.Fifo; Service.Server.Shard_affinity ];
  Table.print sched_tbl;
  let p99 name =
    burst_p99 (List.assoc name results)
  in
  let shed = Service.Server.shed_rate (List.assoc "GPM+admission" results) in
  pr
    "Shape check: burst-window get p99 — no GPM %s vs GPM %s vs \
     GPM+admission %s;@."
    (Table.cell_ns (p99 "no GPM"))
    (Table.cell_ns (p99 "GPM"))
    (Table.cell_ns (p99 "GPM+admission"));
  pr "GPM must cut the burst tail materially and admission sheds a bounded@.";
  pr "fraction (%.1f%% here) rather than letting the queue run away.@.@."
    (100.0 *. shed)

(* ------------------------------------------------------------------ *)
(* batch: end-to-end write batching — client batches, server group     *)
(* commit, and the Hybrid-Viper store's single-fence batch path.       *)
(* ------------------------------------------------------------------ *)

(* All-put request generator: batch <= 1 emits bare Put frames, larger
   sizes emit [Proto.Batch] frames whose inner ops all share the frame's
   intended arrival (coordinated-omission-free per-op timing). *)
let batch_reqgen ~n_keys ~vlen ~batch =
  let payload = Bytes.make vlen 'v' in
  fun rng ->
    let put () =
      Service.Proto.Put
        (Workload.Keyspace.key_of_index (Workload.Rng.int rng n_keys), payload)
    in
    if batch <= 1 then put ()
    else Service.Proto.Batch (List.init batch (fun _ -> put ()))

let batch_exp scale =
  let workers = 8 in
  let vlen = scale.Stores.vlen in
  let n_keys = scale.Stores.load_keys in
  let mk () =
    let store = (Stores.find scale "Hybrid-Viper").Stores.make () in
    let load =
      Stores.load_unique ~store ~threads:workers ~start_at:0.0 ~n:n_keys ~vlen
    in
    (store, Stores.settled_cursor ~store load)
  in
  (* capacity probe: closed-loop single-put frames — every ack pays a
     full persist fence, the floor the batched runs amortize away *)
  let pstore, pt0 = mk () in
  let conns = workers * 4 in
  let probe =
    Service.Server.run ~store:pstore ~workers ~start_at:pt0
      ~closed:
        (Service.Loadgen.closed_loop ~conns
           ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / conns / 4))
           ~reqgen:(batch_reqgen ~n_keys ~vlen ~batch:1) ())
      ()
  in
  let cap = Service.Server.throughput_mops probe in
  pr "Closed-loop put capacity at batch 1: %.2f Mops/s over %d workers@.@."
    cap workers;
  let ops_target = scale.Stores.sweep_ops in
  let counter s n =
    Option.value ~default:0.0 (List.assoc_opt n s.Service.Server.counters)
  in
  let run_cell ~batch ~linger_ns ~rate =
    let store, t0 = mk () in
    let frame_rate = rate /. float_of_int (max 1 batch) in
    let duration_ns = float_of_int ops_target /. rate *. 1000.0 in
    let arrivals =
      Service.Loadgen.open_loop ~seed:31 ~conns:8
        ~process:(Service.Loadgen.Poisson { rate_mops = frame_rate })
        ~reqgen:(batch_reqgen ~n_keys ~vlen ~batch)
        ~duration_ns ~start_at:t0 ()
    in
    Service.Server.run ~store ~workers ~start_at:t0 ~linger_ns ~arrivals ()
  in
  let batches = [ 1; 4; 16; 64 ] in
  let rates = [ 0.5 *. cap; 1.5 *. cap; 3.0 *. cap ] in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "batch: Hybrid-Viper put throughput and intended-arrival tail vs \
            client batch size (%d workers, offered rates x%s of batch-1 \
            capacity)"
           workers "{0.5,1.5,3}")
      ~columns:
        [ ("batch", Table.Right); ("offered", Table.Right);
          ("Mops/s", Table.Right); ("put p50", Table.Right);
          ("put p99", Table.Right); ("fences/op", Table.Right) ]
  in
  let knee = Hashtbl.create 8 in
  List.iter
    (fun batch ->
      List.iter
        (fun rate ->
          let s = run_cell ~batch ~linger_ns:0.0 ~rate in
          let mops = Service.Server.throughput_mops s in
          if rate > 2.0 *. cap then Hashtbl.replace knee batch mops;
          let fences =
            counter s "vlog.batch_flushes"
            /. Float.max 1.0 (float_of_int s.Service.Server.ops_executed)
          in
          Table.add_row tbl
            [ string_of_int batch;
              Printf.sprintf "%.2f" rate;
              Table.cell_f mops;
              Table.cell_ns
                (Histogram.percentile s.Service.Server.put_service 50.0);
              Table.cell_ns
                (Histogram.percentile s.Service.Server.put_service 99.0);
              Table.cell_f fences ])
        rates;
      Table.add_rule tbl)
    batches;
  Table.print tbl;
  (* server-side group commit: the same single-put frames, but the
     dispatcher lingers to coalesce queued writes into one write_batch.
     Run near capacity, where the queue is shallow — overload groups by
     itself, linger is what buys grouping before the queue builds up *)
  let lgr_tbl =
    Table.create
      ~title:
        "batch: server group commit on single-put frames (linger sweep at \
         0.9x capacity)"
      ~columns:
        [ ("linger", Table.Right); ("Mops/s", Table.Right);
          ("put p99", Table.Right); ("grouped", Table.Right);
          ("fences/op", Table.Right) ]
  in
  List.iter
    (fun linger_ns ->
      let s = run_cell ~batch:1 ~linger_ns ~rate:(0.9 *. cap) in
      let grouped =
        counter s "service.grouped_writes"
        /. Float.max 1.0 (float_of_int s.Service.Server.ops_executed)
      in
      let fences =
        counter s "vlog.batch_flushes"
        /. Float.max 1.0 (float_of_int s.Service.Server.ops_executed)
      in
      Table.add_row lgr_tbl
        [ Table.cell_ns linger_ns;
          Table.cell_f (Service.Server.throughput_mops s);
          Table.cell_ns
            (Histogram.percentile s.Service.Server.put_service 99.0);
          Printf.sprintf "%.0f%%" (100.0 *. grouped);
          Table.cell_f fences ])
    [ 0.0; 500.0; 2_000.0; 8_000.0 ];
  Table.print lgr_tbl;
  (* Fig 3's write column with the hybrid in the zoo: bulk-load put
     throughput per store, normalized to ChameleonDB *)
  let wtbl =
    Table.create
      ~title:"batch: write column across the zoo (batched bulk load)"
      ~columns:
        [ ("store", Table.Left); ("put Mops/s", Table.Right);
          ("vs ChameleonDB", Table.Right) ]
  in
  let wload = max 1 (n_keys / 2) in
  let writes =
    List.map
      (fun spec ->
        let store = spec.Stores.make () in
        let r =
          Stores.load_unique ~store ~threads:workers ~start_at:0.0 ~n:wload
            ~vlen
        in
        (spec.Stores.name, Stores.sustained_mops ~store r))
      (Stores.all scale)
  in
  let base =
    Option.value ~default:1.0 (List.assoc_opt "ChameleonDB" writes)
  in
  List.iter
    (fun (name, mops) ->
      Table.add_row wtbl
        [ name; Table.cell_f mops; Printf.sprintf "%.2fx" (mops /. base) ])
    writes;
  Table.print wtbl;
  (* restart-time gap: the hybrid's DRAM index costs a full log replay on
     recovery, ChameleonDB restarts from its persistent levels *)
  let rtbl =
    Table.create
      ~title:"batch: restart time after crash (index recovery)"
      ~columns:
        [ ("store", Table.Left); ("keys", Table.Right);
          ("restart", Table.Right); ("vs ChameleonDB", Table.Right) ]
  in
  let restart name =
    let spec = Stores.find scale name in
    let store = spec.Stores.make () in
    let load =
      Stores.load_unique ~store ~threads:workers ~start_at:0.0 ~n:n_keys ~vlen
    in
    let t0 = Stores.settled_cursor ~store load in
    Store_intf.crash store;
    let c = Clock.create ~at:t0 () in
    Store_intf.recover store c;
    Clock.now c -. t0
  in
  let cham_rt = restart "ChameleonDB" in
  let restarts =
    ("ChameleonDB", cham_rt) :: [ ("Hybrid-Viper", restart "Hybrid-Viper") ]
  in
  List.iter
    (fun (name, rt) ->
      Table.add_row rtbl
        [ name; string_of_int n_keys; Table.cell_ns rt;
          Printf.sprintf "%.1fx" (rt /. Float.max 1.0 cham_rt) ])
    restarts;
  Table.print rtbl;
  let m b = Option.value ~default:0.0 (Hashtbl.find_opt knee b) in
  pr
    "Shape check: at 3x the per-op-fence capacity, throughput climbs \
     monotonically@.";
  pr "with batch size (x%.2f at 4, x%.2f at 16, x%.2f at 64 vs batch 1) —@."
    (m 4 /. Float.max 0.001 (m 1))
    (m 16 /. Float.max 0.001 (m 1))
    (m 64 /. Float.max 0.001 (m 1));
  pr "one fence per group, with the knee where fences stop dominating; \
     server@.";
  pr "linger buys the same amortization without client cooperation, and \
     the@.";
  pr "hybrid pays for its DRAM index with a full-log-replay restart.@.@."

(* ------------------------------------------------------------------ *)
(* Extension: DRAM read cache — zipfian theta x capacity sweep.        *)
(* ------------------------------------------------------------------ *)

(* The cache sits between the index and the value log (see DESIGN.md):
   a hit skips both the shard descent and the vlog read, so the win
   scales with skew.  Each cell is a fresh store so eviction state never
   leaks between configurations; the cache is warmed with half a sweep
   before measuring, as a steady-state server would be. *)
let cache_sweep scale =
  let thetas = [ 0.8; 0.99; 1.1 ] in
  let sizes_mb = [ 0; 16; 64 ] in
  let universe = scale.Stores.load_keys in
  let tbl =
    Table.create
      ~title:
        "Extension: DRAM read cache, zipfian get sweep (hit ratio vs \
         latency)"
      ~columns:
        [ ("theta", Table.Right); ("cache", Table.Right);
          ("hit ratio", Table.Right); ("get mean", Table.Right);
          ("get p99", Table.Right); ("cache DRAM", Table.Right) ]
  in
  let means = Hashtbl.create 16 in
  List.iter
    (fun theta ->
      List.iter
        (fun mb ->
          let cache_bytes = mb * 1024 * 1024 in
          let cfg = { (Stores.chameleon_cfg scale) with Config.cache_bytes } in
          let db = Chameleondb.Store.create ~cfg () in
          let store = Chameleondb.Store.store db in
          let load =
            Stores.load_unique ~store ~threads:1 ~start_at:0.0 ~n:universe
              ~vlen:scale.Stores.vlen
          in
          let z = Workload.Zipf.create ~theta ~n:universe () in
          let rng = Workload.Rng.create ~seed:7 in
          let next () =
            Types.Get
              (Workload.Keyspace.key_of_index
                 (Workload.Zipf.scrambled z rng ~universe))
          in
          let warm =
            Runner.run_ops ~store ~threads:1
              ~start_at:(Stores.settled_cursor ~store load)
              ~ops:(scale.Stores.sweep_ops / 2) ~next ()
          in
          let r =
            Runner.run_ops ~seed:7 ~store ~threads:1
              ~start_at:(Stores.settled_cursor ~store warm)
              ~ops:scale.Stores.sweep_ops ~next ()
          in
          let counter name =
            match List.assoc_opt name r.Runner.counters with
            | Some v -> v
            | None -> 0.0
          in
          let hits = counter "cache.hits" in
          let probes = hits +. counter "cache.misses" in
          let hit_ratio = if probes > 0.0 then hits /. probes else 0.0 in
          let mean = Histogram.mean r.Runner.get_latency in
          Hashtbl.replace means (theta, mb) mean;
          let cache_dram =
            match Chameleondb.Store.cache_stats db with
            | Some (used, _) -> Table.cell_bytes (float_of_int used)
            | None -> "-"
          in
          Table.add_row tbl
            [ Printf.sprintf "%.2f" theta;
              (if mb = 0 then "off" else Printf.sprintf "%d MB" mb);
              Printf.sprintf "%.1f%%" (100.0 *. hit_ratio);
              Table.cell_ns mean;
              Table.cell_ns (Histogram.percentile r.Runner.get_latency 99.0);
              cache_dram ])
        sizes_mb;
      Table.add_rule tbl)
    thetas;
  Table.print tbl;
  let base = Hashtbl.find means (0.99, 0) in
  let cached = Hashtbl.find means (0.99, 64) in
  pr
    "Shape check: at theta 0.99 a 64 MB cache must cut the get mean by \
     >= 1.5x@.";
  pr "(here %s -> %s, %.2fx); hotter skew widens the gap, cooler skew@."
    (Table.cell_ns base) (Table.cell_ns cached)
    (base /. Float.max 1.0 cached);
  pr "narrows it, and the off column reproduces the uncached path.@.@."

(* ------------------------------------------------------------------ *)
(* Extension: integrity — corruption rate x scrub budget sweep.        *)
(* ------------------------------------------------------------------ *)

(* Media faults (poisoned units and bit rot, alternating) are injected
   into a loaded store's log records, then a uniform get workload runs on
   the foreground clock while the scrubber runs periodic passes on a
   background clock at the cell's byte budget.  A poisoned 256 B unit
   takes adjacent records with it, so the detection target is the
   *measured* corrupt-record count after injection, not the injection
   count.  Reported per cell: scrub passes and simulated time until
   every corrupt record is detected, the contained fraction
   (quarantined / corrupt), the get p99 measured while scrubbing, and
   the largest single pass's scanned bytes — which must respect the
   budget up to one artifact (the documented target-not-cap semantics:
   a shard rebuild streams the live log, a run verification reads the
   whole run). *)
let integrity scale =
  let universe = scale.Stores.load_keys in
  let rates = [ 0.001; 0.004 ] in
  let budgets = [ 64 * 1024; 256 * 1024; 1024 * 1024 ] in
  let tbl =
    Table.create ~title:"Integrity: media-fault rate x scrub byte budget"
      ~columns:
        [ ("rate", Table.Right); ("budget", Table.Right);
          ("injected", Table.Right); ("corrupt", Table.Right);
          ("passes", Table.Right);
          ("detect time", Table.Right); ("contained", Table.Right);
          ("get p99", Table.Right); ("max pass", Table.Right) ]
  in
  let budget_ok = ref true in
  List.iter
    (fun rate ->
      List.iter
        (fun budget ->
          let cfg =
            { (Stores.chameleon_cfg scale) with
              Config.scrub_budget_bytes = budget }
          in
          let db = Chameleondb.Store.create ~cfg () in
          let store = Chameleondb.Store.store db in
          let load =
            Stores.load_unique ~store ~threads:1 ~start_at:0.0 ~n:universe
              ~vlen:scale.Stores.vlen
          in
          let start = Stores.settled_cursor ~store load in
          let clock = Clock.create ~at:start () in
          let bg = Clock.create ~at:start () in
          let vlog = Chameleondb.Store.vlog db in
          let dev = Chameleondb.Store.device db in
          let rng = Workload.Rng.create ~seed:(budget + universe) in
          let persisted = Kv_common.Vlog.persisted vlog in
          let nfaults =
            max 1 (int_of_float (rate *. float_of_int persisted))
          in
          let chosen = Hashtbl.create nfaults in
          while Hashtbl.length chosen < nfaults do
            let loc = Workload.Rng.int rng persisted in
            if not (Hashtbl.mem chosen loc) then begin
              if Hashtbl.length chosen land 1 = 0 then begin
                let off, len = Kv_common.Vlog.entry_range vlog loc in
                Device.inject_poison dev ~off ~len
              end
              else Kv_common.Vlog.corrupt_entry vlog loc;
              Hashtbl.replace chosen loc ()
            end
          done;
          (* poison collateral: a 256 B unit spans ~6 records, so count
             what is actually corrupt — that is the detection target and
             the containment denominator *)
          let corrupt =
            let probe = Clock.create ~at:start () in
            let head = Kv_common.Vlog.head vlog in
            let n = ref 0 in
            for loc = head to persisted - 1 do
              if not (Kv_common.Vlog.intact vlog probe loc) then incr n
            done;
            max 1 !n
          in
          let detected = ref 0 and quarantined = ref 0 in
          let passes = ref 0 in
          let detect_time = ref nan in
          let max_pass = ref 0 in
          let scrub_pass () =
            (* overshoot bound: the budget plus the one artifact that can
               cross it (a rebuild streams the live log; a shard's runs
               are verified whole once its pass began) *)
            let slack =
              Kv_common.Vlog.live_bytes vlog
              + Array.fold_left
                  (fun acc sh ->
                    max acc
                      (List.fold_left
                         (fun a t -> a + Kv_common.Linear_table.byte_size t)
                         4096
                         (Chameleondb.Shard.persistent_tables sh)))
                  0 (Chameleondb.Store.shards db)
            in
            let r = Chameleondb.Store.scrub db bg ~budget_bytes:budget in
            incr passes;
            detected := !detected + r.Store_intf.sr_detected;
            quarantined := !quarantined + r.Store_intf.sr_quarantined;
            if r.Store_intf.sr_scanned_bytes > !max_pass then
              max_pass := r.Store_intf.sr_scanned_bytes;
            if r.Store_intf.sr_scanned_bytes > budget + slack then
              budget_ok := false;
            if Float.is_nan !detect_time && !detected >= corrupt then
              detect_time := Clock.now bg -. start
          in
          let gets = Histogram.create () in
          let ops = scale.Stores.sweep_ops in
          let per_pass = max 1 (ops / 20) in
          for op = 1 to ops do
            let key =
              Workload.Keyspace.key_of_index (Workload.Rng.int rng universe)
            in
            let t0 = Clock.now clock in
            ignore (Chameleondb.Store.read db clock key);
            Histogram.record gets (Clock.now clock -. t0);
            if op mod per_pass = 0 then scrub_pass ()
          done;
          (* drain: scrub until every injected fault has been detected *)
          let guard = ref 0 in
          while Float.is_nan !detect_time && !guard < 10_000 do
            incr guard;
            scrub_pass ()
          done;
          Table.add_row tbl
            [ Printf.sprintf "%.2f%%" (100.0 *. rate);
              Table.cell_bytes (float_of_int budget);
              string_of_int nfaults;
              string_of_int corrupt;
              string_of_int !passes;
              (if Float.is_nan !detect_time then "never"
               else Table.cell_ns !detect_time);
              Printf.sprintf "%.0f%%"
                (100.0 *. float_of_int !quarantined /. float_of_int corrupt);
              Table.cell_ns (Histogram.percentile gets 99.0);
              Table.cell_bytes (float_of_int !max_pass) ])
        budgets;
      Table.add_rule tbl)
    rates;
  Table.print tbl;
  pr
    "Shape check: every corrupt record is detected (no \"never\" rows) and@.";
  pr
    "containment reaches ~100%%; larger budgets detect in less time;@.";
  pr "per-pass scanned bytes respect the budget up to one artifact (%s).@.@."
    (if !budget_ok then "holds" else "VIOLATED")

(* ------------------------------------------------------------------ *)
(* Extension: cluster layer — scaling, failover, live migration.       *)
(* ------------------------------------------------------------------ *)

let cluster_timeline sc =
  let r = sc.Cluster_bench.sc_result in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "cluster [%s]: windowed latency timeline"
           sc.Cluster_bench.sc_label)
      ~columns:
        [ ("t (ms)", Table.Right); ("gets", Table.Right);
          ("puts", Table.Right); ("errs", Table.Right);
          ("get p99", Table.Right); ("put p99", Table.Right);
          ("event", Table.Left) ]
  in
  let nw = List.length r.Cluster.Run.r_windows in
  let stride = max 1 (nw / 20) in
  let marks = ref sc.Cluster_bench.sc_marks in
  List.iteri
    (fun i w ->
      let open Cluster.Run in
      (* annotate the first window at or after each scripted event *)
      let note = ref "" in
      (match !marks with
      | (at, label) :: rest
        when at < w.w_start +. (sc.Cluster_bench.sc_duration_ns /. 40.0) ->
          note := label;
          marks := rest
      | _ -> ());
      if i mod stride = 0 || !note <> "" then
        Table.add_row tbl
          [ Printf.sprintf "%.1f"
              ((w.w_start -. sc.Cluster_bench.sc_start) /. 1e6);
            string_of_int w.w_gets;
            string_of_int w.w_puts;
            string_of_int w.w_errs;
            Table.cell_ns (Histogram.percentile w.w_get_h 99.0);
            Table.cell_ns (Histogram.percentile w.w_put_h 99.0);
            !note ])
    r.Cluster.Run.r_windows;
  Table.print tbl

let cluster scale =
  (* scaling curve: fresh cluster per node count, closed-loop 90/10 *)
  let counts = [ 1; 2; 4; 8 ] in
  let points = Cluster_bench.scaling scale counts in
  let tbl =
    Table.create
      ~title:
        "cluster: closed-loop throughput vs node count (90/10 mix, 2-way \
         replication, write quorum = replicas)"
      ~columns:
        [ ("nodes", Table.Right); ("replicas", Table.Right);
          ("ops", Table.Right); ("Mops/s", Table.Right);
          ("vs 1 node", Table.Right); ("get p99", Table.Right);
          ("put p99", Table.Right) ]
  in
  let base =
    match points with p :: _ -> p.Cluster_bench.sp_mops | [] -> 1.0
  in
  List.iter
    (fun p ->
      let open Cluster_bench in
      Table.add_row tbl
        [ string_of_int p.sp_nodes; string_of_int p.sp_replicas;
          string_of_int p.sp_ops; Table.cell_f p.sp_mops;
          Printf.sprintf "%.2fx" (p.sp_mops /. base);
          Table.cell_ns p.sp_get_p99; Table.cell_ns p.sp_put_p99 ])
    points;
  Table.print tbl;
  (* node kill + rejoin under open-loop load *)
  let fo = Cluster_bench.failover ~seed:1 scale in
  let r = fo.Cluster_bench.sc_result in
  pr
    "Failover: 4 nodes, capacity %.2f Mops/s, offered %.2f Mops/s; kill \
     node%d at 30%%, rejoin at 55%%.@."
    fo.Cluster_bench.sc_probe_mops fo.Cluster_bench.sc_rate_mops
    Cluster_bench.victim;
  cluster_timeline fo;
  let router = fo.Cluster_bench.sc_setup.Cluster_bench.router in
  (match r.Cluster.Run.r_catchups with
  | cu :: _ ->
      pr
        "Catch-up: floor stamp %d; scanned %d peer entries, shipped %d, \
         applied %d; restart %s.@."
        (Cluster.Membership.floor cu)
        (Cluster.Membership.scanned cu)
        (Cluster.Membership.shipped cu)
        (Cluster.Membership.applied cu)
        (Table.cell_ns (Cluster.Membership.restart_ns cu))
  | [] -> pr "Catch-up: NONE COMPLETED (unexpected).@.");
  pr
    "Write availability: %d quorum failures while down (fail-fast, never \
     acked), %d reads degraded.@."
    (Cluster.Router.quorum_failures router)
    (Cluster.Router.degraded_reads router);
  pr "Divergence audit: %d replica reads, %d mismatches (%s).@.@."
    fo.Cluster_bench.sc_checked
    (List.length fo.Cluster_bench.sc_mismatches)
    (if fo.Cluster_bench.sc_mismatches = [] then "no acked write lost"
     else "ACKED WRITES LOST");
  (* live shard migration under open-loop load *)
  let rb = Cluster_bench.rebalance ~seed:2 scale in
  let router = rb.Cluster_bench.sc_setup.Cluster_bench.router in
  pr
    "Rebalance: 4 nodes, capacity %.2f Mops/s, offered %.2f Mops/s; %s.@."
    rb.Cluster_bench.sc_probe_mops rb.Cluster_bench.sc_rate_mops
    (match rb.Cluster_bench.sc_marks with
    | (_, label) :: _ -> label
    | [] -> "no migration");
  cluster_timeline rb;
  (match rb.Cluster_bench.sc_result.Cluster.Run.r_migrations with
  | m :: _ ->
      pr "Migration: %d/%d keys copied, phase %s.@."
        (Cluster.Migration.copied m) (Cluster.Migration.total m)
        (match Cluster.Migration.phase m with
        | Cluster.Migration.Copying -> "copying (UNFINISHED)"
        | Cluster.Migration.Serving -> "serving"
        | Cluster.Migration.Cleaned -> "cleaned")
  | [] -> pr "Migration: NONE STARTED (unexpected).@.");
  pr "Routing: %d redirects (stale cache bounced via NotOwner), %d \
      misrouted (must be 0).@."
    (Cluster.Router.redirects router)
    (Cluster.Router.misrouted router);
  pr "Divergence audit: %d replica reads, %d mismatches.@.@."
    rb.Cluster_bench.sc_checked
    (List.length rb.Cluster_bench.sc_mismatches);
  pr
    "Shape check: throughput scales with node count; p99 spikes at the@.";
  pr
    "kill and heals after catch-up; migration costs one redirect and@.";
  pr "zero misroutes; both audits end with zero mismatches.@.@."

(* ------------------------------------------------------------------ *)
(* Extension: network chaos — message-level fault injection, the       *)
(* defensive RPC policy, and the partition-aware consistency audit.    *)
(* ------------------------------------------------------------------ *)

let chaos scale =
  let open Cluster_bench in
  let rec firstn n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: firstn (n - 1) tl
  in
  (* loss x partition x hedge grid *)
  let cells = chaos_sweep ~seed:1 scale in
  let tbl =
    Table.create
      ~title:
        "chaos: loss x partition x hedge (5 nodes, 2 replicas, wq 2; \
         open-loop 90/10 at half capacity; partition over [35%, 60%) of \
         the phase)"
      ~columns:
        [ ("loss", Table.Right); ("part", Table.Left); ("hedge", Table.Left);
          ("avail", Table.Right); ("event avail", Table.Right);
          ("goodput", Table.Right); ("get p99", Table.Right);
          ("event p99", Table.Right); ("retries", Table.Right);
          ("hedges", Table.Right); ("dedup", Table.Right);
          ("residue", Table.Right); ("audit", Table.Left) ]
  in
  List.iter
    (fun c ->
      Table.add_row tbl
        [ Printf.sprintf "%.3f" c.cc_loss; partition_name c.cc_partition;
          (if c.cc_hedge then "on" else "off");
          Printf.sprintf "%.4f" c.cc_availability;
          Printf.sprintf "%.4f" c.cc_event_availability;
          Table.cell_f c.cc_goodput_mops; Table.cell_ns c.cc_get_p99;
          Table.cell_ns c.cc_event_get_p99; string_of_int c.cc_retries;
          string_of_int c.cc_hedges; string_of_int c.cc_dedup_hits;
          string_of_int c.cc_residue;
          (if cell_clean c then "clean"
           else
             Printf.sprintf "%d LOST / %d VIOLATIONS"
               (List.length c.cc_mismatches)
               (List.length c.cc_violations)) ])
    cells;
  Table.print tbl;
  List.iter
    (fun c ->
      List.iter (fun v -> pr "  VIOLATION [%s]: %s@." c.cc_label v)
        (firstn 5 c.cc_violations))
    cells;
  (* fail-slow: hedging + detector vs neither, same offered rate *)
  let slow_off, slow_on = fail_slow_pair ~seed:1 ~factor:10.0 scale in
  let ratio =
    if slow_on.cc_event_get_p99 > 0.0 then
      slow_off.cc_event_get_p99 /. slow_on.cc_event_get_p99
    else infinity
  in
  pr
    "Fail-slow (node1 10x over the window, offered %.2f Mops/s): event \
     get p99 %s without hedging vs %s with hedging + route-around — \
     %.2fx better (%d hedges, %d wins, %d suspicions, %d routed \
     around).@."
    slow_on.cc_rate_mops
    (Table.cell_ns slow_off.cc_event_get_p99)
    (Table.cell_ns slow_on.cc_event_get_p99)
    ratio slow_on.cc_hedges slow_on.cc_hedge_wins slow_on.cc_suspicions
    slow_on.cc_routed_around;
  (* zero-fault overhead of the defensive machinery *)
  let base, defended = overhead_pair ~seed:7 scale in
  pr
    "Zero-fault overhead: %.2f Mops/s default policy vs %.2f Mops/s \
     defensive + empty injector (%.1f%%).@."
    base defended
    (100.0 *. (1.0 -. (defended /. Float.max base 1e-9)));
  pr "@.";
  pr
    "Shape check: every cell's audit is clean (no acked write lost, no@.";
  pr
    "stale or phantom read); retries and dedup absorb loss; hedging@.";
  pr
    "cuts the fail-slow event p99 by >= 2x; the defensive machinery@.";
  pr "costs < 5%% on a clean network.@.@."

(* ------------------------------------------------------------------ *)
(* Extension: ordered range scans — throughput vs scan length plus a   *)
(* DRAM-oracle audit across flush / ABI dump / merge / GC / crash.     *)
(* ------------------------------------------------------------------ *)

let scan_lengths = [ 10; 50; 100; 250; 500 ]

let rec firstn n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: firstn (n - 1) tl

(* Drive one ChameleonDB instance through every structural transition and
   compare [Store.scan] against a DRAM set oracle after each one.  Returns
   (checks, mismatches). *)
let scan_audit ~seed scale =
  let db = Chameleondb.Store.create ~cfg:(Stores.chameleon_cfg scale) () in
  let clock = Clock.create () in
  let oracle : (Types.key, unit) Hashtbl.t = Hashtbl.create 4096 in
  let rng = Workload.Rng.create ~seed in
  let universe = 4_096 in
  let key i = Workload.Keyspace.key_of_index i in
  let put i =
    Chameleondb.Store.write db clock (key i) (Store_intf.Sized 8);
    Hashtbl.replace oracle (key i) ()
  in
  let del i =
    Chameleondb.Store.delete db clock (key i);
    Hashtbl.remove oracle (key i)
  in
  let checks = ref 0 and mismatches = ref 0 in
  let verify phase ~start ~limit =
    incr checks;
    let want =
      Hashtbl.fold (fun k () acc -> k :: acc) oracle []
      |> List.filter (fun k -> Types.key_compare k start >= 0)
      |> List.sort Types.key_compare |> firstn limit
    in
    let got =
      List.map fst (Chameleondb.Store.scan db clock ~start ~limit)
    in
    if got <> want then begin
      incr mismatches;
      pr "  AUDIT MISMATCH [%s] seed %d start %Lu limit %d: want %d got %d@."
        phase seed start limit (List.length want) (List.length got)
    end
  in
  let audit phase =
    verify phase ~start:0L ~limit:(2 * universe);
    verify phase ~start:(key (universe / 3)) ~limit:64;
    verify phase ~start:(key (universe - (universe / 8))) ~limit:256;
    verify phase
      ~start:(key (Workload.Rng.int rng universe))
      ~limit:(1 + Workload.Rng.int rng 128)
  in
  (* memtable only *)
  for i = 0 to (universe / 4) - 1 do put i done;
  audit "memtable";
  (* flushed runs *)
  Chameleondb.Store.flush_all db clock;
  audit "flush";
  (* more writes: ABI dumps and merges pending, then drained *)
  for i = universe / 4 to (universe / 2) - 1 do put i done;
  for _ = 1 to universe / 8 do put (Workload.Rng.int rng (universe / 2)) done;
  audit "dump-pending";
  Chameleondb.Store.wait_background db clock;
  audit "merged";
  (* rest of the universe plus deletes, through another merge round *)
  for i = universe / 2 to universe - 1 do put i done;
  for i = 0 to universe - 1 do if i mod 5 = 0 then del i done;
  Chameleondb.Store.flush_all db clock;
  Chameleondb.Store.wait_background db clock;
  audit "delete+merge";
  (* value-log GC relocates live entries *)
  ignore (Chameleondb.Store.gc db clock ());
  audit "gc";
  (* crash and recover from pmem state *)
  Chameleondb.Store.flush_all db clock;
  Chameleondb.Store.crash db;
  ignore (Chameleondb.Store.recover db clock);
  audit "crash+recover";
  (!checks, !mismatches)

let scan_exp scale =
  let specs =
    List.map (Stores.find scale)
      [ "ChameleonDB"; "Pmem-LSM-PinK"; "Pmem-LSM-NF"; "Pmem-LSM-F" ]
  in
  let tbl =
    Table.create
      ~title:"scan: ordered range-scan throughput vs scan length (8 threads, \
              zipfian start keys)"
      ~columns:
        [ ("store", Table.Left); ("len", Table.Right);
          ("scans", Table.Right); ("kscans/s", Table.Right);
          ("Mkeys/s", Table.Right); ("p50", Table.Right);
          ("p99", Table.Right) ]
  in
  let universe = scale.Stores.load_keys in
  List.iter
    (fun spec ->
      let store = spec.Stores.make () in
      let load =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0 ~n:universe
          ~vlen:scale.Stores.vlen
      in
      let cursor = ref (Stores.settled_cursor ~store load) in
      List.iter
        (fun len ->
          let rng = Workload.Rng.create ~seed:((7 * len) + 1) in
          let zipf = Workload.Zipf.create ~n:universe () in
          let next () =
            let ix = Workload.Zipf.scrambled zipf rng ~universe in
            Types.Scan (Workload.Keyspace.key_of_index ix, len)
          in
          let ops = max 400 (scale.Stores.sweep_ops / (4 * len)) in
          let r =
            Runner.run_ops ~store ~threads:8 ~start_at:!cursor ~ops ~next ()
          in
          cursor := r.Runner.end_ns;
          let ns = Runner.sim_ns r in
          Table.add_row tbl
            [ spec.Stores.name; string_of_int len; string_of_int ops;
              Table.cell_f (float_of_int ops /. ns *. 1e6);
              Table.cell_f (float_of_int (ops * len) /. ns *. 1e3);
              Table.cell_ns
                (Histogram.percentile r.Runner.scan_latency 50.0);
              Table.cell_ns
                (Histogram.percentile r.Runner.scan_latency 99.0) ])
        scan_lengths)
    specs;
  Table.print tbl;
  pr "Scan audit: DRAM set oracle vs Store.scan after every structural@.";
  pr "transition (memtable, flush, ABI dump, merge, deletes, GC, crash).@.";
  List.iter
    (fun seed ->
      let checks, mismatches = scan_audit ~seed scale in
      pr "  seed %3d: %d ordered-scan checks, %d mismatches%s@." seed checks
        mismatches
        (if mismatches = 0 then "" else "  << ORDER VIOLATION"))
    [ 1; 11; 101 ];
  pr "Shape check: per-scan cost grows sublinearly with length (seek@.";
  pr "dominates short scans); ChameleonDB tracks Pmem-LSM within a small@.";
  pr "factor since both serve scans from sorted runs; audit shows 0@.";
  pr "mismatches at every seed.@.@."

(* ------------------------------------------------------------------ *)
(* mph: perfect-hash last level — one Pmem read per get.               *)
(* ------------------------------------------------------------------ *)

let mph_exp scale =
  let universe = scale.Stores.load_keys in
  let names = [ "ChameleonDB"; "ChameleonDB-MPH"; "Pmem-LSM-F" ] in
  let tbl =
    Table.create
      ~title:"mph: last-level index — uniform gets, hit and miss mixes (8 \
              threads)"
      ~columns:
        [ ("store", Table.Left); ("mix", Table.Left);
          ("get Mops/s", Table.Right); ("p50", Table.Right);
          ("p99", Table.Right); ("reads/get", Table.Right);
          ("bloom/get", Table.Right); ("DRAM B/key", Table.Right) ]
  in
  Obs.Attribution.enable ();
  let built = ref [] and attr = ref [] in
  List.iter
    (fun name ->
      let spec = Stores.find scale name in
      let store = spec.Stores.make () in
      Obs.Attribution.reset ();
      let cb = Obs.Counters.snapshot () in
      let load =
        Stores.load_unique ~store ~threads:8 ~start_at:0.0 ~n:universe
          ~vlen:scale.Stores.vlen
      in
      let cdelta =
        Obs.Counters.diff_snapshots ~after:(Obs.Counters.snapshot ())
          ~before:cb
      in
      let c n = Option.value ~default:0.0 (List.assoc_opt n cdelta) in
      if c "mph.builds" > 0.0 then
        built :=
          !built
          @ [ Printf.sprintf
                "%s construction: %.0f MPH builds over %.0f keys, %.2f \
                 displacement attempts/key, %.0f seed restarts"
                name (c "mph.builds") (c "mph.build_keys")
                (c "mph.build_attempts"
                /. Float.max 1.0 (c "mph.build_keys"))
                (c "mph.build_restarts") ];
      let cursor = ref (Stores.settled_cursor ~store load) in
      let dram_per_key =
        Store_intf.dram_footprint store /. float_of_int universe
      in
      let sweep mix next =
        let r =
          Runner.run_ops ~store ~threads:8 ~start_at:!cursor
            ~ops:scale.Stores.sweep_ops ~next ()
        in
        cursor := r.Runner.end_ns;
        let ops = float_of_int r.Runner.ops in
        let cnt n =
          Option.value ~default:0.0 (List.assoc_opt n r.Runner.counters)
        in
        Table.add_row tbl
          [ name; mix;
            Table.cell_f (Runner.throughput_mops r);
            Table.cell_ns (Histogram.percentile r.Runner.get_latency 50.0);
            Table.cell_ns (Histogram.percentile r.Runner.get_latency 99.0);
            Table.cell_f
              (float_of_int r.Runner.device_delta.Stats.read_ops /. ops);
            Table.cell_f (cnt "bloom.probes" /. ops);
            Table.cell_f dram_per_key ];
        r
      in
      let hit = sweep "hit" (Stores.uniform_get_gen ~seed:9 ~universe) in
      let rng = Workload.Rng.create ~seed:10 in
      let _miss =
        sweep "miss" (fun () ->
            Types.Get
              (Workload.Keyspace.key_of_index
                 (universe + Workload.Rng.int rng universe)))
      in
      attr := !attr @ [ Runner.attribution_table ~name hit ])
    names;
  Obs.Attribution.disable ();
  Table.print tbl;
  List.iter (fun line -> pr "%s@." line) !built;
  pr "@.";
  List.iter (fun t -> pr "%s@." t) !attr;
  pr "Shape check: the MPH variant answers a last-level hit with one index@.";
  pr "device read (reads/get ~2 = slot + log, vs fence-probe chains), needs@.";
  pr "no Bloom checks at any level, and keeps only the 4 B/bucket@.";
  pr "displacement array in DRAM; misses stay safe — the probed slot's key@.";
  pr "mismatch answers Absent, never a wrong value.@.@."

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)
(* ------------------------------------------------------------------ *)

let all =
  [ { id = "tab1"; title = "Table 1: configuration"; run = tab1 };
    { id = "tab5"; title = "Table 5: YCSB workload definitions"; run = tab5 };
    { id = "fig1"; title = "Fig 1: raw write throughput vs access size";
      run = fig1 };
    { id = "fig2"; title = "Fig 2: multi-level read latency by device";
      run = fig2 };
    { id = "fig10"; title = "Fig 10: put throughput vs threads"; run = fig10 };
    { id = "fig11"; title = "Fig 11 + Table 2: put latency CDF and tails";
      run = fig11 };
    { id = "fig12"; title = "Fig 12: get throughput vs threads"; run = fig12 };
    { id = "fig13"; title = "Fig 13 + Table 3: get latency CDF and tails";
      run = fig13 };
    { id = "tab4"; title = "Table 4: overall comparison"; run = tab4 };
    { id = "fig3"; title = "Fig 3: normalized four-measure comparison";
      run = fig3 };
    { id = "fig14"; title = "Fig 14: YCSB workloads"; run = fig14 };
    { id = "fig15"; title = "Fig 15: Direct Compaction and WIM"; run = fig15 };
    { id = "fig16"; title = "Fig 16: put bursts and Get-Protect Mode";
      run = fig16 };
    { id = "fig17"; title = "Fig 17: vs NoveLSM and MatrixKV"; run = fig17 };
    { id = "wa"; title = "Write-amplification formula check"; run = wa_check };
    { id = "abl-abi"; title = "Ablation: ABI disabled"; run = abl_abi };
    { id = "abl-shards"; title = "Ablation: randomized load factors";
      run = abl_shards };
    { id = "abl-bloom"; title = "Ablation: Bloom bits-per-key sweep";
      run = abl_bloom };
    { id = "abl-gc"; title = "Extension: value-log garbage collection";
      run = abl_gc };
    { id = "abl-ratio"; title = "Ablation: between-level ratio"; run = abl_ratio };
    { id = "abl-batch"; title = "Ablation: log batch size"; run = abl_batch };
    { id = "abl-device"; title = "Ablation: design fit across devices";
      run = abl_device };
    { id = "service";
      title = "Service: open-loop bursts through the serving layer";
      run = service };
    { id = "batch";
      title = "Extension: end-to-end write batching and group commit";
      run = batch_exp };
    { id = "cache";
      title = "Extension: DRAM read cache sweep (zipfian theta x size)";
      run = cache_sweep };
    { id = "integrity";
      title = "Extension: media-fault rate x scrub budget sweep";
      run = integrity };
    { id = "cluster";
      title = "Extension: cluster scaling, failover and live migration";
      run = cluster };
    { id = "chaos";
      title = "Extension: network chaos — fault injection, defensive RPC, \
               partition-aware audit";
      run = chaos };
    { id = "scan";
      title = "Extension: ordered range scans — throughput vs length + \
               oracle audit";
      run = scan_exp };
    { id = "mph";
      title = "Extension: perfect-hash last level — one Pmem read per get";
      run = mph_exp } ]

let ids () = List.map (fun e -> e.id) all

let run_ids ~scale requested =
  List.iter
    (fun id ->
      if not (List.exists (fun e -> e.id = id) all) then
        invalid_arg ("unknown experiment id: " ^ id))
    requested;
  List.iter
    (fun e ->
      if requested = [] || List.mem e.id requested then begin
        pr "@.### %s — %s ###@.@." e.id e.title;
        e.run scale
      end)
    all
