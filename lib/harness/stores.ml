module Config = Chameleondb.Config
module Store_intf = Kv_common.Store_intf
module Types = Kv_common.Types

type scale = {
  shards : int;
  memtable_slots : int;
  load_keys : int;
  sweep_ops : int;
  threads : int list;
  vlen : int;
}

(* One full shard cycle (everything compacted to the last level once) is
   shards x memtable_slots x r^(levels-1) x load_factor ~= shards x slots x
   48 keys; the load must exceed ~2 cycles so that, as in the paper's
   billion-key steady state, most keys reside in the last level. *)
let default =
  { shards = 32;
    memtable_slots = 128;
    load_keys = 500_000;
    sweep_ops = 200_000;
    threads = [ 1; 2; 4; 8; 16 ];
    vlen = 8 }

let quick =
  { shards = 8;
    memtable_slots = 128;
    load_keys = 125_000;
    sweep_ops = 50_000;
    threads = [ 1; 4; 16 ];
    vlen = 8 }

let chameleon_cfg scale =
  { Config.default with
    Config.shards = scale.shards;
    memtable_slots = scale.memtable_slots }

type spec = { name : string; make : unit -> Store_intf.store }

let chameleon ?(f = fun cfg -> cfg) ?(name = "ChameleonDB") scale =
  { name;
    make =
      (fun () -> Chameleondb.Store.store ~name
          (Chameleondb.Store.create ~cfg:(f (chameleon_cfg scale)) ())) }

let chameleon_mph ?(cache_bytes = 0) scale =
  chameleon ~name:"ChameleonDB-MPH"
    ~f:(fun cfg ->
      { cfg with Config.index_kind = Config.Mph; cache_bytes })
    scale

let all ?(cache_bytes = 0) scale =
  let cfg = chameleon_cfg scale in
  [ chameleon ~f:(fun cfg -> { cfg with Config.cache_bytes }) scale;
    chameleon_mph ~cache_bytes scale;
    { name = "Pmem-LSM-PinK";
      make =
        (fun () -> Baselines.Pmem_lsm.store
            (Baselines.Pmem_lsm.create ~cfg Baselines.Pmem_lsm.Pink)) };
    { name = "Pmem-LSM-NF";
      make =
        (fun () -> Baselines.Pmem_lsm.store
            (Baselines.Pmem_lsm.create ~cfg Baselines.Pmem_lsm.Nf)) };
    { name = "Pmem-LSM-F";
      make =
        (fun () -> Baselines.Pmem_lsm.store
            (Baselines.Pmem_lsm.create ~cfg Baselines.Pmem_lsm.F)) };
    { name = "Pmem-Hash";
      make =
        (fun () -> Baselines.Pmem_hash.store (Baselines.Pmem_hash.create ())) };
    { name = "Dram-Hash";
      make =
        (fun () -> Baselines.Dram_hash.store (Baselines.Dram_hash.create ())) };
    { name = "Hybrid-Viper";
      make =
        (fun () ->
          Baselines.Hybrid_viper.store (Baselines.Hybrid_viper.create ())) }
  ]

let find ?cache_bytes scale name =
  match List.find_opt (fun s -> s.name = name) (all ?cache_bytes scale) with
  | Some s -> s
  | None -> invalid_arg ("Stores.find: unknown store " ^ name)

(* Bulk loads go through [write_batch] groups: stores with a group
   commit (Hybrid-Viper) pay one fence per group, the rest take the
   sequential fallback — identical op stream either way. *)
let load_group = 32

let load_unique ~store ~threads ~start_at ~n ~vlen =
  let i = ref 0 in
  let next () =
    let key = Workload.Keyspace.key_of_index !i in
    incr i;
    (key, Store_intf.Sized vlen)
  in
  let r =
    Runner.run_write_batches ~store ~threads ~start_at ~ops:n
      ~group:load_group ~next ()
  in
  let clock = Pmem_sim.Clock.create ~at:r.Runner.end_ns () in
  Store_intf.flush store clock;
  r

let settled_cursor ~store r =
  Float.max r.Runner.end_ns
    (Pmem_sim.Device.quiesce_at (Store_intf.device store))

let sustained_mops ~store r =
  let ns = settled_cursor ~store r -. r.Runner.start_ns in
  if ns <= 0.0 then 0.0 else float_of_int r.Runner.ops /. ns *. 1000.0

let uniform_get_gen ~seed ~universe =
  let rng = Workload.Rng.create ~seed in
  fun () ->
    Types.Get (Workload.Keyspace.key_of_index (Workload.Rng.int rng universe))
