module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Store_intf = Kv_common.Store_intf
module Histogram = Metrics.Histogram

type window = {
  t_start : float;
  ops : int;
  puts : int;
  gets : int;
  get_p99 : float;
  get_p50 : float;
}

type bucket = {
  mutable b_ops : int;
  mutable b_puts : int;
  mutable b_gets : int;
  b_get_hist : Histogram.t;
}

let fresh_bucket () =
  { b_ops = 0; b_puts = 0; b_gets = 0; b_get_hist = Histogram.create () }

let run ~store ~threads ~start_at ~window_ns ~gen () =
  let dev = Store_intf.device store in
  let prev_threads = Device.active_threads dev in
  Device.set_active_threads dev threads;
  let clocks = Array.init threads (fun _ -> Clock.create ~at:start_at ()) in
  let alive = Array.make threads true in
  let nalive = ref threads in
  let buckets : (int, bucket) Hashtbl.t = Hashtbl.create 256 in
  let bucket_of t =
    let ix = int_of_float ((t -. start_at) /. window_ns) in
    match Hashtbl.find_opt buckets ix with
    | Some b -> b
    | None ->
      let b = fresh_bucket () in
      Hashtbl.add buckets ix b;
      b
  in
  while !nalive > 0 do
    (* min-clock thread *)
    let best = ref (-1) and best_t = ref infinity in
    Array.iteri
      (fun i c ->
        if alive.(i) && Clock.now c < !best_t then begin
          best := i;
          best_t := Clock.now c
        end)
      clocks;
    let i = !best in
    let clock = clocks.(i) in
    match gen ~thread:i ~now:(Clock.now clock) with
    | None ->
      alive.(i) <- false;
      decr nalive
    | Some op ->
      let t0 = Clock.now clock in
      Store_intf.apply store clock op;
      let t1 = Clock.now clock in
      let b = bucket_of t1 in
      b.b_ops <- b.b_ops + 1;
      (match op with
      | Types.Get _ ->
        b.b_gets <- b.b_gets + 1;
        Histogram.record b.b_get_hist (t1 -. t0)
      | Types.Scan _ -> () (* counted in b_ops; neither a get nor a put *)
      | Types.Put _ | Types.Delete _ | Types.Read_modify_write _ ->
        b.b_puts <- b.b_puts + 1)
  done;
  Device.set_active_threads dev prev_threads;
  Hashtbl.fold (fun ix b acc -> (ix, b) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (ix, b) ->
         { t_start = start_at +. (float_of_int ix *. window_ns);
           ops = b.b_ops;
           puts = b.b_puts;
           gets = b.b_gets;
           get_p99 = Histogram.percentile b.b_get_hist 99.0;
           get_p50 = Histogram.percentile b.b_get_hist 50.0 })
