module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Stats = Pmem_sim.Stats
module Types = Kv_common.Types
module Store_intf = Kv_common.Store_intf
module Histogram = Metrics.Histogram

type result = {
  ops : int;
  seed : int option;
  start_ns : float;
  end_ns : float;
  latency : Histogram.t;
  get_latency : Histogram.t;
  put_latency : Histogram.t;
  scan_latency : Histogram.t;
  device_delta : Stats.t;
  attribution : Obs.Attribution.snapshot;
  counters : (string * float) list;
}

let sim_ns r = r.end_ns -. r.start_ns

let throughput_mops r =
  let ns = sim_ns r in
  if ns <= 0.0 then 0.0 else float_of_int r.ops /. ns *. 1000.0

let min_clock_thread clocks alive =
  let best = ref (-1) and best_t = ref infinity in
  Array.iteri
    (fun i c ->
      if alive.(i) && Clock.now c < !best_t then begin
        best := i;
        best_t := Clock.now c
      end)
    clocks;
  !best

let run ?seed ~store ~threads ~start_at ~gen () =
  let dev = Store_intf.device store in
  let before = Stats.copy (Device.stats dev) in
  let attr_before = Obs.Attribution.snapshot () in
  let counters_before = Obs.Counters.snapshot () in
  let prev_threads = Device.active_threads dev in
  Device.set_active_threads dev threads;
  let clocks = Array.init threads (fun _ -> Clock.create ~at:start_at ()) in
  let alive = Array.make threads true in
  let latency = Histogram.create () in
  let get_latency = Histogram.create () in
  let put_latency = Histogram.create () in
  let scan_latency = Histogram.create () in
  let ops = ref 0 in
  let nalive = ref threads in
  while !nalive > 0 do
    let i = min_clock_thread clocks alive in
    let clock = clocks.(i) in
    match gen ~thread:i ~now:(Clock.now clock) with
    | None ->
      alive.(i) <- false;
      decr nalive
    | Some op ->
      if Obs.Trace.enabled () then Obs.Trace.set_tid i;
      let t0 = Clock.now clock in
      Store_intf.apply store clock op;
      let lat = Clock.now clock -. t0 in
      Histogram.record latency lat;
      (match op with
      | Types.Get _ -> Histogram.record get_latency lat
      | Types.Scan _ -> Histogram.record scan_latency lat
      | Types.Put _ | Types.Delete _ | Types.Read_modify_write _ ->
        Histogram.record put_latency lat);
      incr ops
  done;
  Device.set_active_threads dev prev_threads;
  let end_ns =
    Array.fold_left (fun acc c -> Float.max acc (Clock.now c)) start_at clocks
  in
  { ops = !ops;
    seed;
    start_ns = start_at;
    end_ns;
    latency;
    get_latency;
    put_latency;
    scan_latency;
    device_delta = Stats.diff ~after:(Device.stats dev) ~before;
    attribution =
      Obs.Attribution.diff ~after:(Obs.Attribution.snapshot ())
        ~before:attr_before;
    counters =
      Obs.Counters.diff_snapshots ~after:(Obs.Counters.snapshot ())
        ~before:counters_before }

let run_ops ?seed ~store ~threads ~start_at ~ops ~next () =
  let remaining = ref ops in
  let gen ~thread:_ ~now:_ =
    if !remaining <= 0 then None
    else begin
      decr remaining;
      Some (next ())
    end
  in
  run ?seed ~store ~threads ~start_at ~gen ()

(* Bulk writer: the same discrete-event skeleton as [run], but each
   thread step commits one [write_batch] group of up to [group] puts.
   Per-op latency is the group's commit latency amortized over its
   members, so histograms stay per-op comparable with [run_ops]. *)
let run_write_batches ?seed ~store ~threads ~start_at ~ops ~group ~next () =
  if group <= 0 then invalid_arg "Runner.run_write_batches: group <= 0";
  let dev = Store_intf.device store in
  let before = Stats.copy (Device.stats dev) in
  let attr_before = Obs.Attribution.snapshot () in
  let counters_before = Obs.Counters.snapshot () in
  let prev_threads = Device.active_threads dev in
  Device.set_active_threads dev threads;
  let clocks = Array.init threads (fun _ -> Clock.create ~at:start_at ()) in
  let alive = Array.make threads true in
  let latency = Histogram.create () in
  let put_latency = Histogram.create () in
  let done_ops = ref 0 in
  let remaining = ref ops in
  let nalive = ref threads in
  while !nalive > 0 do
    let i = min_clock_thread clocks alive in
    let clock = clocks.(i) in
    if !remaining <= 0 then begin
      alive.(i) <- false;
      decr nalive
    end
    else begin
      let n = min group !remaining in
      remaining := !remaining - n;
      let items = List.init n (fun _ -> next ()) in
      if Obs.Trace.enabled () then Obs.Trace.set_tid i;
      let t0 = Clock.now clock in
      Store_intf.write_batch store clock items;
      let per_op = (Clock.now clock -. t0) /. float_of_int n in
      for _ = 1 to n do
        Histogram.record latency per_op;
        Histogram.record put_latency per_op
      done;
      done_ops := !done_ops + n
    end
  done;
  Device.set_active_threads dev prev_threads;
  let end_ns =
    Array.fold_left (fun acc c -> Float.max acc (Clock.now c)) start_at clocks
  in
  { ops = !done_ops;
    seed;
    start_ns = start_at;
    end_ns;
    latency;
    get_latency = Histogram.create ();
    put_latency;
    scan_latency = Histogram.create ();
    device_delta = Stats.diff ~after:(Device.stats dev) ~before;
    attribution =
      Obs.Attribution.diff ~after:(Obs.Attribution.snapshot ())
        ~before:attr_before;
    counters =
      Obs.Counters.diff_snapshots ~after:(Obs.Counters.snapshot ())
        ~before:counters_before }

(* Per-stage latency attribution table.  For each op kind the instrumented
   stage means must reconcile with the measured end-to-end mean; whatever
   the stages did not cover is shown as "(other)". *)
let attribution_table ~name r =
  let tbl =
    Metrics.Table_fmt.create
      ~title:(Printf.sprintf "%s: per-stage latency attribution" name)
      ~columns:
        [ ("op", Metrics.Table_fmt.Left); ("stage", Metrics.Table_fmt.Left);
          ("mean/op", Metrics.Table_fmt.Right);
          ("share", Metrics.Table_fmt.Right) ]
  in
  let section (op : [ `Get | `Put | `Svc | `Scan | `Rpc ]) hist =
    let n = Histogram.count hist in
    if n > 0 then begin
      let nf = float_of_int n in
      let mean = Histogram.mean hist in
      let op_name =
        match op with
        | `Get -> "get"
        | `Put -> "put"
        | `Svc -> "svc"
        | `Scan -> "scan"
        | `Rpc -> "rpc"
      in
      let covered = ref 0.0 in
      List.iter
        (fun stage ->
          if Obs.Attribution.op_of stage = op then begin
            let per_op =
              Obs.Attribution.stage_ns r.attribution stage /. nf
            in
            covered := !covered +. per_op;
            let share =
              if mean > 0.0 then
                Printf.sprintf "%5.1f%%" (100.0 *. per_op /. mean)
              else "-"
            in
            Metrics.Table_fmt.add_row tbl
              [ op_name; Obs.Attribution.name stage;
                Metrics.Table_fmt.cell_ns per_op; share ]
          end)
        Obs.Attribution.all;
      let other = mean -. !covered in
      let share =
        if mean > 0.0 then Printf.sprintf "%5.1f%%" (100.0 *. other /. mean)
        else "-"
      in
      Metrics.Table_fmt.add_row tbl
        [ op_name; "(other)"; Metrics.Table_fmt.cell_ns other; share ];
      Metrics.Table_fmt.add_row tbl
        [ op_name; "= end-to-end mean"; Metrics.Table_fmt.cell_ns mean;
          "100.0%" ];
      Metrics.Table_fmt.add_rule tbl
    end
  in
  section `Get r.get_latency;
  section `Put r.put_latency;
  section `Scan r.scan_latency;
  Metrics.Table_fmt.render tbl

let summary ~name ?(user_bytes = 0.0) ?dram_bytes r =
  let dram_bytes = match dram_bytes with Some b -> b | None -> 0.0 in
  Metrics.Summary.make ~name ~ops:r.ops ~sim_ns:(sim_ns r) ~latency:r.latency
    ~pmem_write_bytes:r.device_delta.Stats.media_write_bytes
    ~pmem_read_bytes:r.device_delta.Stats.media_read_bytes ~user_bytes
    ~dram_bytes ()
