(* Bechamel micro-benchmarks: one Test.make per paper table/figure, each
   timing (in real wall-clock time) the hot operation that experiment
   stresses.  These measure the cost of the simulation itself; the simulated
   performance numbers come from the experiment harness. *)

open Bechamel
module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Store_intf = Kv_common.Store_intf
module Config = Chameleondb.Config

let small_scale =
  { Harness.Stores.quick with
    Harness.Stores.shards = 8;
    memtable_slots = 128;
    load_keys = 20_000 }

let loaded_handle store =
  let _ =
    Harness.Stores.load_unique ~store ~threads:1 ~start_at:0.0
      ~n:small_scale.Harness.Stores.load_keys ~vlen:8
  in
  store

let put_test ~name store =
  let store = loaded_handle store in
  let clock = Clock.create ~at:1e12 () in
  let i = ref small_scale.Harness.Stores.load_keys in
  Test.make ~name
    (Staged.stage (fun () ->
         incr i;
         Store_intf.write store clock
           (Workload.Keyspace.key_of_index !i)
           (Store_intf.Sized 8)))

let get_test ~name store =
  let store = loaded_handle store in
  let clock = Clock.create ~at:1e12 () in
  let rng = Workload.Rng.create ~seed:13 in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore
           (Store_intf.read store clock
              (Workload.Keyspace.key_of_index
                 (Workload.Rng.int rng small_scale.Harness.Stores.load_keys)))))

let chameleon_make ?(f = fun c -> c) () =
  (Harness.Stores.chameleon ~f small_scale).Harness.Stores.make ()

let lsm_make variant =
  Baselines.Pmem_lsm.store
    (Baselines.Pmem_lsm.create
       ~cfg:(Harness.Stores.chameleon_cfg small_scale)
       variant)

let tests () =
  let dev = Device.create Pmem_sim.Cost_model.optane in
  let dev_clock = Clock.create () in
  let rng = Workload.Rng.create ~seed:1 in
  let ycsb =
    Workload.Ycsb.create ~mix:Workload.Ycsb.A
      ~loaded:small_scale.Harness.Stores.load_keys ()
  in
  let ycsb_handle = loaded_handle (chameleon_make ()) in
  let ycsb_clock = Clock.create ~at:1e12 () in
  [ Test.make ~name:"fig1/device-256B-write"
      (Staged.stage (fun () ->
           Device.charge_write_at dev dev_clock
             ~off:(Workload.Rng.int rng 100_000 * 256)
             ~len:256));
    get_test ~name:"fig2/pmem-lsm-f-get" (lsm_make Baselines.Pmem_lsm.F);
    put_test ~name:"fig10/chameleondb-put" (chameleon_make ());
    put_test ~name:"fig11-tab2/pmem-hash-put"
      (Baselines.Pmem_hash.store (Baselines.Pmem_hash.create ()));
    get_test ~name:"fig12/chameleondb-get" (chameleon_make ());
    get_test ~name:"fig13-tab3/dram-hash-get"
      (Baselines.Dram_hash.store (Baselines.Dram_hash.create ()));
    put_test ~name:"tab4-fig3/pmem-lsm-pink-put"
      (lsm_make Baselines.Pmem_lsm.Pink);
    Test.make ~name:"fig14/ycsb-a-op"
      (Staged.stage (fun () ->
           Store_intf.apply ycsb_handle ycsb_clock (Workload.Ycsb.next ycsb)));
    put_test ~name:"fig15/chameleondb-wim-put"
      (chameleon_make ~f:(fun c -> { c with Config.write_intensive = true }) ());
    get_test ~name:"fig16/chameleondb-gpm-get"
      (chameleon_make ~f:(fun c -> { c with Config.gpm_enabled = true }) ());
    put_test ~name:"fig17/novelsm-put"
      (Baselines.Novelsm.store (Baselines.Novelsm.create ()));
    put_test ~name:"fig17/matrixkv-put"
      (Baselines.Matrixkv.store (Baselines.Matrixkv.create ()));
    get_test ~name:"wa/pmem-lsm-nf-get" (lsm_make Baselines.Pmem_lsm.Nf) ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"chameleondb" (tests ()))
  in
  let results = Analyze.all ols instance raw in
  let tbl =
    Metrics.Table_fmt.create
      ~title:"Bechamel micro-benchmarks (real ns per simulated operation)"
      ~columns:
        [ ("benchmark", Metrics.Table_fmt.Left);
          ("ns/op", Metrics.Table_fmt.Right);
          ("r^2", Metrics.Table_fmt.Right) ]
  in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Metrics.Table_fmt.cell_f e
        | _ -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "n/a"
      in
      Metrics.Table_fmt.add_row tbl [ name; est; r2 ])
    rows;
  Metrics.Table_fmt.print tbl
