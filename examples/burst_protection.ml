(* Get-Protect Mode demo: a put burst arrives while readers are latency
   sensitive; with GPM, ChameleonDB suspends compactions and dumps the ABI
   instead of merging it, keeping the read tail flat (Section 2.4 /
   Fig. 16).

   Run with:  dune exec examples/burst_protection.exe *)

module Store = Chameleondb.Store
module Config = Chameleondb.Config
module Clock = Pmem_sim.Clock
module Types = Kv_common.Types
module Table = Metrics.Table_fmt

let loaded = 120_000
let threads = 8

let run_with ~gpm =
  let cfg =
    { Config.default with
      Config.shards = 16;
      gpm_enabled = gpm;
      gpm_threshold_ns = 2_500.0 }
  in
  let db = Store.create ~cfg () in
  let store = Store.store db in
  let load =
    Harness.Stores.load_unique ~store ~threads ~start_at:0.0 ~n:loaded
      ~vlen:8
  in
  (* each thread: a get phase, a put burst (80% fresh inserts), a get phase *)
  let plan = [| 4_000; 4_000; 4_000 |] in
  let rngs = Array.init threads (fun i -> Workload.Rng.create ~seed:(7 + i)) in
  let progress = Array.make threads (0, 0) in
  let fresh = ref loaded in
  let gen ~thread ~now:_ =
    let phase, k = progress.(thread) in
    let phase, k = if k >= plan.(min phase 2) then (phase + 1, 0) else (phase, k) in
    if phase >= Array.length plan then None
    else begin
      progress.(thread) <- (phase, k + 1);
      if phase = 1 && Workload.Rng.int rngs.(thread) 100 < 80 then begin
        incr fresh;
        Some (Types.Put (Workload.Keyspace.key_of_index !fresh, 8))
      end
      else
        Some
          (Types.Get
             (Workload.Keyspace.key_of_index
                (Workload.Rng.int rngs.(thread) loaded)))
    end
  in
  let windows =
    Harness.Timeline.run ~store ~threads
      ~start_at:(Harness.Stores.settled_cursor ~store load)
      ~window_ns:1_000_000.0 ~gen ()
  in
  (db, windows)

let summarize name windows db =
  let base =
    match windows with w :: _ -> w.Harness.Timeline.get_p99 | [] -> 0.0
  in
  let peak =
    List.fold_left
      (fun a w -> Float.max a w.Harness.Timeline.get_p99)
      0.0 windows
  in
  let t = Store.totals db in
  Printf.printf
    "%-12s baseline get p99 %-8s peak %-8s (%.1fx) | absorbs=%d dumps=%d \
     compactions=%d\n"
    name (Table.cell_ns base) (Table.cell_ns peak)
    (if base > 0.0 then peak /. base else 0.0)
    t.Store.absorbs t.Store.abi_dumps
    (t.Store.upper_compactions + t.Store.last_compactions)

let () =
  Printf.printf
    "A put burst lands on a loaded store while gets keep flowing.\n\n";
  let db_off, w_off = run_with ~gpm:false in
  let db_on, w_on = run_with ~gpm:true in
  summarize "GPM off" w_off db_off;
  summarize "GPM on" w_on db_on;
  Printf.printf "\nWindowed get p99 during the run (1 ms windows):\n";
  Printf.printf "%8s %14s %14s\n" "window" "GPM off" "GPM on";
  let arr_off = Array.of_list w_off and arr_on = Array.of_list w_on in
  for i = 0 to min (Array.length arr_off) (Array.length arr_on) - 1 do
    if i mod 2 = 0 then
      Printf.printf "%8d %14s %14s\n" i
        (Table.cell_ns arr_off.(i).Harness.Timeline.get_p99)
        (Table.cell_ns arr_on.(i).Harness.Timeline.get_p99)
  done
