(* Serving-layer loopback: encode requests to wire bytes, push them through
   the simulated server (decode -> admission -> queue -> workers -> reply),
   and read the coordinated-omission-free service latency out the other end.

   The scenario is a small open-loop version of Fig. 16: a steady Poisson
   stream of gets shares the server with a square wave of put bursts.  Run
   once unprotected and once with Get-Protect Mode plus admission control.

   Run with:  dune exec examples/server_loopback.exe *)

module Store = Chameleondb.Store
module Config = Chameleondb.Config
module Clock = Pmem_sim.Clock
module Table = Metrics.Table_fmt
module Histogram = Metrics.Histogram

let loaded = 60_000
let workers = 4

let run_with ~protect =
  let cfg =
    { Config.default with Config.shards = 16; gpm_enabled = protect }
  in
  let db = Store.create ~cfg () in
  let store = Store.store db in
  let load =
    Harness.Stores.load_unique ~store ~threads:workers ~start_at:0.0 ~n:loaded
      ~vlen:8
  in
  let t0 = Harness.Stores.settled_cursor ~store load in
  (* 2 ms of offered load: gets at 2 Mreq/s all along, puts bursting to
     4 Mreq/s for a quarter of each 0.5 ms period *)
  let gets =
    Service.Loadgen.open_loop ~seed:1 ~conns:4
      ~process:(Service.Loadgen.Poisson { rate_mops = 2.0 })
      ~reqgen:(Service.Loadgen.mixed_reqgen ~n_keys:loaded ~get_frac:1.0 ~vlen:8)
      ~duration_ns:2_000_000.0 ~start_at:t0 ()
  in
  let puts =
    Service.Loadgen.open_loop ~seed:2 ~conns:4 ~conn_base:100
      ~process:
        (Service.Loadgen.Square
           { base_mops = 0.2; burst_mops = 10.0; period_ns = 500_000.0;
             duty = 0.25 })
      ~reqgen:(Service.Loadgen.mixed_reqgen ~n_keys:loaded ~get_frac:0.0 ~vlen:8)
      ~duration_ns:2_000_000.0 ~start_at:t0 ()
  in
  let admission =
    if protect then
      Some
        (Service.Admission.create ~signals:(Store.signals db) ~burst:256.0
           ~rate_mops:1.0 ())
    else None
  in
  Service.Server.run ?admission ~sched:Service.Server.Shard_affinity ~store
    ~workers ~start_at:t0
    ~arrivals:(Service.Loadgen.merge [ gets; puts ])
    ()

let () =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "loopback serving: %d workers, open-loop gets + put bursts" workers)
      ~columns:
        [ ("configuration", Table.Left); ("requests", Table.Right);
          ("shed", Table.Right); ("get p50", Table.Right);
          ("get p99", Table.Right); ("get p99.9", Table.Right);
          ("max queue", Table.Right) ]
  in
  let row name s =
    Table.add_row tbl
      [ name;
        string_of_int s.Service.Server.submitted;
        Printf.sprintf "%.1f%%" (100.0 *. Service.Server.shed_rate s);
        Table.cell_ns (Histogram.percentile s.Service.Server.get_service 50.0);
        Table.cell_ns (Histogram.percentile s.Service.Server.get_service 99.0);
        Table.cell_ns (Histogram.percentile s.Service.Server.get_service 99.9);
        string_of_int s.Service.Server.max_depth ]
  in
  let plain = run_with ~protect:false in
  let protected_ = run_with ~protect:true in
  row "unprotected" plain;
  row "GPM + admission" protected_;
  Table.print tbl;
  Printf.printf
    "\nService latency is measured from each request's intended arrival, so\n\
     the unprotected burst windows show the full queueing delay; protection\n\
     sheds part of the bursts and keeps the get tail flat.\n"
