(* Quickstart: the ChameleonDB public API in one minute.

   Run with:  dune exec examples/quickstart.exe *)

module Store = Chameleondb.Store
module SI = Kv_common.Store_intf
module Config = Chameleondb.Config
module Clock = Pmem_sim.Clock

let () =
  (* A store lives on a simulated Optane Pmem device; every operation is
     charged simulated nanoseconds on a clock you control. *)
  (* scale the shard count to the ~100k keys this demo inserts, so the
     full flush/compaction machinery is exercised (Config.default keeps the
     paper's 16384-shard ratios and would need millions of keys) *)
  let cfg = Config.scaled ~shards:32 ~memtable_slots:128 Config.default in
  let db = Store.create ~cfg () in
  let clock = Clock.create () in

  (* Insert some keys (8-byte keys, values live in the Pmem storage log). *)
  Store.write db clock 42L (SI.Sized 64);
  Store.write db clock 7L (SI.Sized 128);
  Store.write db clock 42L (SI.Sized 64);
  (* update: newest version wins *)
  (match (Store.read db clock 42L).SI.loc with
  | Some loc -> Printf.printf "42L -> log location %d\n" loc
  | None -> assert false);

  (* Delete writes a tombstone; the key disappears. *)
  Store.delete db clock 7L;
  assert ((Store.read db clock 7L).SI.loc = None);

  (* Load enough data to exercise flushes and compactions. *)
  for i = 0 to 99_999 do
    Store.write db clock (Workload.Keyspace.key_of_index i) (SI.Sized 8)
  done;
  let t = Store.totals db in
  Printf.printf
    "loaded 100k keys in %.1f simulated ms: %d flushes, %d tiered \
     compactions, %d last-level compactions\n"
    (Clock.now clock /. 1e6)
    t.Store.flushes t.Store.upper_compactions t.Store.last_compactions;
  Printf.printf "DRAM footprint: %.1f MB (mostly the ABI), Pmem: %.1f MB\n"
    (Store.dram_footprint db /. 1e6)
    (Store.pmem_footprint db /. 1e6);

  (* Reads check at most the MemTable, the in-DRAM ABI and the last-level
     table — never the upper Pmem levels. *)
  let t0 = Clock.now clock in
  let hits = ref 0 in
  for i = 0 to 9_999 do
    if (Store.read db clock (Workload.Keyspace.key_of_index i)).SI.loc <> None
    then
      incr hits
  done;
  Printf.printf "10k gets: %d hits, %.0f ns average simulated latency\n"
    !hits
    ((Clock.now clock -. t0) /. 10_000.0);

  (* Stores can also carry real payloads (opt-in, Config.materialize_values):
     the benchmarks use the accounting-only mode to stay memory-bounded. *)
  let small =
    Store.create
      ~cfg:{ (Config.scaled ~shards:4 ~memtable_slots:64 Config.default)
             with Config.materialize_values = true }
      ()
  in
  Store.write small clock 99L
    (Kv_common.Store_intf.Payload (Bytes.of_string "a real payload"));
  (match (Store.read small clock 99L).Kv_common.Store_intf.value with
  | Some v -> Printf.printf "materialized value: %S\n" (Bytes.to_string v)
  | None -> assert false);

  (* Value-log garbage collection (an extension beyond the paper): update a
     slice of keys, then reclaim the superseded log prefix. *)
  for i = 0 to 19_999 do
    Store.write db clock (Workload.Keyspace.key_of_index i) (SI.Sized 8)
  done;
  let stats = Store.gc db clock ~max_entries:20_000 () in
  Printf.printf "GC pass: scanned %d, copied %d live, reclaimed %.1f KB\n"
    stats.Store.gc_scanned stats.Store.gc_live
    (float_of_int stats.Store.gc_reclaimed_bytes /. 1024.0);

  (* Power failure: volatile state (MemTables, ABI) is lost; the persistent
     multi-level index and the log survive. Recovery replays only the log
     tail. *)
  Store.crash db;
  let restart = Store.recover db clock in
  Printf.printf "crash + recover: restart took %.2f simulated ms\n"
    (restart /. 1e6);
  assert ((Store.read db clock 42L).SI.loc <> None);
  print_endline "quickstart OK"
