(* Run a YCSB mix against every store design and compare throughput — a
   miniature of the paper's Fig. 14.

   Usage:  dune exec examples/ycsb_run.exe -- [A|B|C|D|F|LOAD] [ops]
   Default: workload B, 50k requests over a 100k-key store. *)

module Table = Metrics.Table_fmt

let parse_mix = function
  | "LOAD" -> Workload.Ycsb.Load
  | "A" -> Workload.Ycsb.A
  | "B" -> Workload.Ycsb.B
  | "C" -> Workload.Ycsb.C
  | "D" -> Workload.Ycsb.D
  | "F" -> Workload.Ycsb.F
  | s -> failwith ("unknown workload: " ^ s ^ " (use LOAD|A|B|C|D|F)")

let () =
  let mix =
    if Array.length Sys.argv > 1 then parse_mix Sys.argv.(1)
    else Workload.Ycsb.B
  in
  let ops =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 50_000
  in
  let scale =
    { Harness.Stores.quick with Harness.Stores.load_keys = 100_000 }
  in
  let threads = 8 in
  Printf.printf "%s (%s), %d requests, %d threads, %d-key store\n\n"
    (Workload.Ycsb.name mix)
    (Workload.Ycsb.description mix)
    ops threads scale.Harness.Stores.load_keys;
  let tbl =
    Table.create ~title:"YCSB throughput"
      ~columns:
        [ ("store", Table.Left); ("Mops/s", Table.Right);
          ("p50", Table.Right); ("p99", Table.Right) ]
  in
  List.iter
    (fun spec ->
      let store = spec.Harness.Stores.make () in
      let load =
        Harness.Stores.load_unique ~store ~threads ~start_at:0.0
          ~n:scale.Harness.Stores.load_keys ~vlen:8
      in
      let r =
        match mix with
        | Workload.Ycsb.Load -> load
        | _ ->
          let gen =
            Workload.Ycsb.create ~mix ~loaded:scale.Harness.Stores.load_keys ()
          in
          Harness.Runner.run_ops ~store ~threads
            ~start_at:(Harness.Stores.settled_cursor ~store load)
            ~ops
            ~next:(fun () -> Workload.Ycsb.next gen)
            ()
      in
      Table.add_row tbl
        [ spec.Harness.Stores.name;
          Table.cell_f (Harness.Runner.throughput_mops r);
          Table.cell_ns (Metrics.Histogram.percentile r.Harness.Runner.latency 50.0);
          Table.cell_ns (Metrics.Histogram.percentile r.Harness.Runner.latency 99.0) ])
    (Harness.Stores.all scale);
  Table.print tbl
