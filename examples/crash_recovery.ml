(* Crash-recovery walkthrough: why ChameleonDB restarts fast, what
   Write-Intensive Mode trades away, and how the post-restart degraded
   window behaves (Sections 2.3 and 3.3 of the paper).

   Run with:  dune exec examples/crash_recovery.exe *)

module Store = Chameleondb.Store
module Config = Chameleondb.Config
module Store_intf = Kv_common.Store_intf
module Clock = Pmem_sim.Clock

let n = 150_000

(* sized so the load passes through last-level compactions: most of the
   index is persistent at crash time, as in the paper's billion-key runs *)
let cfg = Config.scaled ~shards:16 ~memtable_slots:128 Config.default

let load_and_crash ~cfg label =
  let db = Store.create ~cfg () in
  let clock = Clock.create () in
  for i = 0 to n - 1 do
    Store.write db clock (Workload.Keyspace.key_of_index i) (Store_intf.Sized 8)
  done;
  Store.crash db;
  let restart = Store.recover db clock in
  Printf.printf "%-28s restart %8s\n" label (Metrics.Table_fmt.cell_ns restart);
  (db, clock)

let () =
  Printf.printf "Loading %d keys into each store, then pulling the plug.\n\n"
    n;

  (* 1. Normal mode: only the MemTables need replaying. *)
  let db, clock = load_and_crash ~cfg "ChameleonDB (normal)" in

  (* The ABI rebuild runs in the background: gets are answered from the
     persistent levels (degraded, Pmem-LSM-NF-like) until it finishes. *)
  (* probe recently inserted keys: they live in the upper levels, the part
     of the index the ABI covers *)
  (* pick keys old enough to have been flushed out of the MemTables (the
     crash tail was just replayed into them) but recent enough to still be
     in the upper levels rather than the last level *)
  let degraded = ref 0 and dram = ref 0 and last = ref 0 in
  for i = n - 30_000 to n - 29_801 do
    match Store.read db clock (Workload.Keyspace.key_of_index i) with
    | { Store_intf.loc = Some _; stage = Store_intf.Upper; _ } ->
      incr degraded
    | { loc = Some _; stage = Store_intf.Abi | Store_intf.Memtable; _ } ->
      incr dram
    | { loc = Some _; stage = Store_intf.Last; _ } -> incr last
    | _ -> ()
  done;
  Printf.printf
    "  first 200 gets after restart: %d answered from upper Pmem levels \
     (degraded window), %d from the DRAM index, %d from the last level\n"
    !degraded !dram !last;
  Printf.printf
    "  (the ABI rebuild races the degraded gets; at this scale it wins \
     within microseconds)\n";
  Store.wait_background db clock;
  let dram2 = ref 0 in
  for i = n - 30_000 to n - 25_001 do
    match Store.read db clock (Workload.Keyspace.key_of_index i) with
    | { Store_intf.loc = Some _;
        stage = Store_intf.Abi | Store_intf.Memtable;
        _ } ->
      incr dram2
    | _ -> ()
  done;
  Printf.printf
    "  after the ABI rebuild: %d of 5000 recent-key gets hit the DRAM index\n\n"
    !dram2;

  (* 2. Write-Intensive Mode: higher put throughput, longer restart. *)
  let _ =
    load_and_crash
      ~cfg:{ cfg with Config.write_intensive = true }
      "ChameleonDB (WIM)"
  in

  (* 3. Dram-Hash for contrast: the whole log must be scanned. *)
  let dh = Baselines.Dram_hash.create () in
  let clock = Clock.create () in
  for i = 0 to n - 1 do
    Baselines.Dram_hash.put dh clock (Workload.Keyspace.key_of_index i) ~vlen:8
  done;
  Baselines.Dram_hash.crash dh;
  let restart = Baselines.Dram_hash.recover dh clock in
  Printf.printf "%-28s restart %8s   (full log scan)\n" "Dram-Hash"
    (Metrics.Table_fmt.cell_ns restart);
  print_endline "\ncrash_recovery OK"
