(* Shared model-based checker: drives any store with a deterministic
   random operation stream mirrored into a reference model, validating every
   get against it — including across crash/recovery, where the model rolls
   back exactly the entries whose log records were not yet persisted. *)

module Clock = Pmem_sim.Clock
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Store_intf = Kv_common.Store_intf

(* Reference model: per-key history of (log location, is_delete), newest
   first.  Presence = newest surviving record is not a delete. *)
type model = (Types.key, (int * bool) list) Hashtbl.t

let model_put m key loc ~deleted =
  let hist = Option.value ~default:[] (Hashtbl.find_opt m key) in
  Hashtbl.replace m key ((loc, deleted) :: hist)

let model_mem m key =
  match Hashtbl.find_opt m key with
  | Some ((_, deleted) :: _) -> not deleted
  | Some [] | None -> false

let model_crash m ~persisted =
  Hashtbl.iter
    (fun key hist ->
      Hashtbl.replace m key (List.filter (fun (loc, _) -> loc < persisted) hist))
    (Hashtbl.copy m)

let check_key store clock m key ~context =
  let expect = model_mem m key in
  let got = (Store_intf.read store clock key).Store_intf.loc <> None in
  if expect <> got then
    Alcotest.failf "%s: key %Ld expected %s, store says %s" context key
      (if expect then "present" else "absent")
      (if got then "present" else "absent")

(* Drive [ops] random operations (puts/updates/deletes/gets) over a key
   universe; optionally crash and recover every [crash_every] operations. *)
let run ?(ops = 20_000) ?(universe = 2_000) ?crash_every ~seed store =
  let rng = Workload.Rng.create ~seed in
  let m : model = Hashtbl.create (2 * universe) in
  let clock = Clock.create () in
  let key_at i = Workload.Keyspace.key_of_index i in
  for step = 1 to ops do
    let key = key_at (Workload.Rng.int rng universe) in
    (match Workload.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
      Store_intf.write store clock key (Store_intf.Sized 8);
      model_put m key (Vlog.length (Store_intf.vlog store) - 1) ~deleted:false
    | 5 ->
      Store_intf.delete store clock key;
      model_put m key (Vlog.length (Store_intf.vlog store) - 1) ~deleted:true
    | 6 | 7 | 8 | 9 ->
      check_key store clock m key ~context:(Printf.sprintf "step %d" step)
    | _ -> assert false);
    (match crash_every with
    | Some n when step mod n = 0 ->
      Store_intf.crash store;
      model_crash m ~persisted:(Vlog.persisted (Store_intf.vlog store));
      Store_intf.recover store clock
    | Some _ | None -> ())
  done;
  (* final sweep over the whole universe *)
  for i = 0 to universe - 1 do
    check_key store clock m (key_at i) ~context:"final sweep"
  done
