module Proto = Service.Proto
module Server = Service.Server
module Loadgen = Service.Loadgen
module Admission = Service.Admission
module Endpoint = Service.Endpoint
module Rng = Workload.Rng
module Histogram = Metrics.Histogram

let mk_store () =
  let cfg =
    { Chameleondb.Config.default with
      Chameleondb.Config.shards = 4;
      memtable_slots = 64 }
  in
  let db = Chameleondb.Store.create ~cfg () in
  (db, Chameleondb.Store.store db)

(* --------------------------------- Proto -------------------------------- *)

let sample_reqs =
  [ Proto.Get 1L;
    Proto.Get Int64.min_int;
    Proto.Put (42L, Bytes.of_string "hello");
    Proto.Put (7L, Bytes.empty);
    Proto.Delete 0xdeadbeefL;
    Proto.Batch
      [ Proto.Put (1L, Bytes.of_string "a"); Proto.Get 2L; Proto.Delete 3L ];
    Proto.Batch [];
    Proto.Scan (0L, 1);
    Proto.Scan (0xfeedfaceL, 100);
    Proto.Scan (Int64.minus_one, Proto.max_batch) ]

let sample_replies =
  [ Proto.Ok;
    Proto.Value (Bytes.of_string "payload");
    Proto.Value Bytes.empty;
    Proto.Hit 123;
    Proto.Miss;
    Proto.Shed;
    Proto.Err "bad things";
    Proto.Not_owner 3;
    Proto.Replies [ Proto.Ok; Proto.Miss; Proto.Hit 9; Proto.Err "x" ];
    Proto.Replies [ Proto.Not_owner 0 ];
    Proto.Replies [];
    Proto.Values [];
    Proto.Values [ (5L, 3, Some (Bytes.of_string "abc")); (6L, 7, None) ];
    Proto.Values [ (Int64.max_int, 0, Some Bytes.empty) ] ]

let sample_msgs =
  List.map (fun r -> Proto.Request r) sample_reqs
  @ List.map (fun r -> Proto.Reply r) sample_replies

let test_roundtrip () =
  List.iter
    (fun msg ->
      let d = Proto.decoder () in
      Proto.feed_bytes d (Proto.encode msg);
      (match Proto.next d with
      | `Msg got ->
        Alcotest.(check bool)
          (Format.asprintf "roundtrip %a"
             (fun ppf -> function
               | Proto.Request r | Proto.Tagged (_, r) -> Proto.pp_req ppf r
               | Proto.Reply r -> Proto.pp_reply ppf r)
             msg)
          true (got = msg)
      | `Await -> Alcotest.fail "decoder starved on a complete frame"
      | `Corrupt m -> Alcotest.fail ("corrupt: " ^ m));
      Alcotest.(check bool) "drained" true (Proto.next d = `Await))
    sample_msgs

let test_incremental_all_split_points () =
  (* every message, split at every byte boundary, must decode identically *)
  List.iter
    (fun msg ->
      let b = Proto.encode msg in
      for split = 0 to Bytes.length b do
        let d = Proto.decoder () in
        Proto.feed d b ~off:0 ~len:split;
        (* nothing complete yet unless the split covers the whole frame *)
        if split < Bytes.length b then
          Alcotest.(check bool) "await" true (Proto.next d = `Await);
        Proto.feed d b ~off:split ~len:(Bytes.length b - split);
        match Proto.next d with
        | `Msg got -> Alcotest.(check bool) "msg equal" true (got = msg)
        | _ -> Alcotest.fail "no message after full frame"
      done)
    sample_msgs

let test_byte_at_a_time_pipeline () =
  (* several frames back to back, fed one byte at a time *)
  let frames = List.map Proto.encode sample_msgs in
  let all = Bytes.concat Bytes.empty frames in
  let d = Proto.decoder () in
  let got = ref [] in
  Bytes.iter
    (fun ch ->
      Proto.feed_bytes d (Bytes.make 1 ch);
      let rec drain () =
        match Proto.next d with
        | `Msg m ->
          got := m :: !got;
          drain ()
        | `Await -> ()
        | `Corrupt m -> Alcotest.fail ("corrupt: " ^ m)
      in
      drain ())
    all;
  Alcotest.(check int) "all decoded" (List.length sample_msgs)
    (List.length !got);
  Alcotest.(check bool) "in order" true (List.rev !got = sample_msgs)

let test_corrupt_rejected () =
  (* bad magic *)
  let d = Proto.decoder () in
  Proto.feed_bytes d (Bytes.of_string "\x00\x01\x02\x03\x04\x05");
  (match Proto.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (* corrupt is sticky, even if good bytes follow *)
  Proto.feed_bytes d (Proto.encode_request (Proto.Get 1L));
  (match Proto.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt decoder recovered");
  (* truncated body: length says 100, only tag arrives; decoder must wait,
     and a frame whose body disagrees with its length must be rejected *)
  let d = Proto.decoder () in
  let b = Buffer.create 16 in
  Buffer.add_char b '\xC7';
  Buffer.add_int32_le b 2l;
  Buffer.add_uint8 b 0x01;
  (* get tag but only 1 of the promised 2 bytes of body: parse fails *)
  Buffer.add_uint8 b 0x00;
  Proto.feed_bytes d (Buffer.to_bytes b);
  (match Proto.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "short get body accepted");
  (* oversized length *)
  let d = Proto.decoder () in
  let b = Buffer.create 8 in
  Buffer.add_char b '\xC7';
  Buffer.add_int32_le b 0x7fffffffl;
  Proto.feed_bytes d (Buffer.to_bytes b);
  match Proto.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized frame accepted"

let test_fuzz_never_raises () =
  (* hostile bytes in random chunk sizes: the decoder may await or go
     corrupt, but must never raise and must stay corrupt once poisoned *)
  let rng = Rng.create ~seed:1234 in
  for _trial = 1 to 200 do
    let n = 1 + Rng.int rng 300 in
    let b =
      Bytes.init n (fun _ ->
          (* bias towards the magic byte so framing paths get exercised *)
          if Rng.int rng 4 = 0 then '\xC7'
          else Char.chr (Rng.int rng 256))
    in
    let d = Proto.decoder () in
    let corrupted = ref false in
    let off = ref 0 in
    while !off < n do
      let len = min (1 + Rng.int rng 16) (n - !off) in
      Proto.feed d b ~off:!off ~len;
      off := !off + len;
      let rec drain () =
        match Proto.next d with
        | `Msg _ -> drain ()
        | `Await ->
          if !corrupted then Alcotest.fail "corrupt state was not sticky"
        | `Corrupt _ -> corrupted := true
      in
      drain ()
    done
  done

let test_fuzz_bitflip_roundtrips () =
  (* flip one byte of a valid frame: decode must reject or produce some
     message without raising; flipping payload bytes may legally still
     decode *)
  let rng = Rng.create ~seed:99 in
  List.iter
    (fun msg ->
      let orig = Proto.encode msg in
      for _ = 1 to 50 do
        let b = Bytes.copy orig in
        let i = Rng.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Rng.int rng 255)));
        let d = Proto.decoder () in
        Proto.feed_bytes d b;
        match Proto.next d with
        | `Msg _ | `Await | `Corrupt _ -> ()
      done)
    sample_msgs

let test_encode_rejects_nesting () =
  Alcotest.check_raises "nested batch" (Invalid_argument "Proto: nested Batch")
    (fun () ->
      ignore (Proto.encode_request (Proto.Batch [ Proto.Batch [] ])));
  match
    Proto.encode_reply (Proto.Replies [ Proto.Replies [] ])
  with
  | _ -> Alcotest.fail "nested replies accepted"
  | exception Invalid_argument _ -> ()

let test_scan_frame_validation () =
  (* encode refuses out-of-range scan limits *)
  List.iter
    (fun limit ->
      match Proto.encode_request (Proto.Scan (1L, limit)) with
      | _ -> Alcotest.failf "scan limit %d accepted" limit
      | exception Invalid_argument _ -> ())
    [ 0; -1; Proto.max_batch + 1 ];
  (* decode refuses a scan frame whose limit field is zero: take a valid
     frame and smash the u16 limit (last two bytes of the body) *)
  let b = Proto.encode_request (Proto.Scan (1L, 2)) in
  Bytes.set_uint16_le b (Bytes.length b - 2) 0;
  let d = Proto.decoder () in
  Proto.feed_bytes d b;
  (match Proto.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "zero-limit scan frame accepted");
  (* decode refuses a Values entry whose has-value flag is neither 0 nor 1:
     flag byte sits right after the key (8) + vlen (4) of the first entry *)
  let v = Proto.encode_reply (Proto.Values [ (9L, 4, None) ]) in
  Bytes.set v (Proto.header_bytes + 1 + 2 + 8 + 4) '\x07';
  let d = Proto.decoder () in
  Proto.feed_bytes d v;
  match Proto.next d with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad has-value flag accepted"

(* -------------------------------- Server -------------------------------- *)

let preload db n =
  let clock = Pmem_sim.Clock.create () in
  for i = 0 to n - 1 do
    Chameleondb.Store.write db clock (Workload.Keyspace.key_of_index i)
      (Kv_common.Store_intf.Sized 8)
  done;
  Pmem_sim.Clock.now clock

let test_server_executes_all () =
  let db, store = mk_store () in
  let t0 = preload db 2_000 in
  let arrivals =
    Loadgen.open_loop ~seed:7 ~conns:3
      ~process:(Loadgen.Poisson { rate_mops = 1.0 })
      ~reqgen:(Loadgen.mixed_reqgen ~n_keys:2_000 ~get_frac:0.8 ~vlen:8)
      ~duration_ns:2_000_000.0 ~start_at:t0 ()
  in
  let s = Server.run ~store ~workers:4 ~start_at:t0 ~arrivals () in
  Alcotest.(check int) "all submitted" (Array.length arrivals) s.Server.submitted;
  Alcotest.(check int) "all executed" s.Server.submitted s.Server.executed;
  Alcotest.(check int) "none shed" 0 s.Server.shed;
  Alcotest.(check int) "none corrupt" 0 s.Server.corrupt;
  Alcotest.(check bool) "latency recorded" true
    (Histogram.count s.Server.service = s.Server.executed);
  Alcotest.(check bool) "time advanced" true (s.Server.end_ns > t0)

let test_server_batch_request () =
  let db, store = mk_store () in
  let t0 = preload db 100 in
  let k i = Workload.Keyspace.key_of_index i in
  let req =
    Proto.Batch
      [ Proto.Put (k 0, Bytes.of_string "x"); Proto.Get (k 0);
        Proto.Delete (k 0); Proto.Get (k 200) ]
  in
  let arrivals =
    [| { Server.at = t0; conn = 0; frame = Proto.encode_request req } |]
  in
  let s = Server.run ~store ~workers:1 ~start_at:t0 ~arrivals () in
  Alcotest.(check int) "one request" 1 s.Server.executed;
  Alcotest.(check int) "four ops" 4 s.Server.ops_executed

let test_server_corrupt_conn_isolated () =
  let db, store = mk_store () in
  let t0 = preload db 100 in
  let good i at =
    { Server.at; conn = 0;
      frame =
        Proto.encode_request
          (Proto.Get (Workload.Keyspace.key_of_index i)) }
  in
  let arrivals =
    [| good 0 t0;
       { Server.at = t0 +. 10.0; conn = 1;
         frame = Bytes.of_string "garbage bytes" };
       (* later frames on the poisoned connection are dropped... *)
       { (good 1 (t0 +. 20.0)) with Server.conn = 1 };
       (* ...but other connections keep flowing *)
       good 2 (t0 +. 30.0) |]
  in
  let s = Server.run ~store ~workers:2 ~start_at:t0 ~arrivals () in
  Alcotest.(check int) "one corrupt conn" 1 s.Server.corrupt;
  Alcotest.(check int) "good conn served" 2 s.Server.executed

let test_server_open_loop_queueing () =
  (* offered load far above capacity: service latency must grow well past
     execution latency (queueing measured from intended arrival), which a
     closed-loop run never shows *)
  let db, store = mk_store () in
  let t0 = preload db 2_000 in
  let reqgen = Loadgen.mixed_reqgen ~n_keys:2_000 ~get_frac:1.0 ~vlen:8 in
  let over =
    Server.run ~store ~workers:1 ~start_at:t0
      ~arrivals:
        (Loadgen.open_loop ~seed:3 ~process:(Loadgen.Poisson { rate_mops = 50.0 })
           ~reqgen ~duration_ns:500_000.0 ~start_at:t0 ())
      ()
  in
  let p99_service = Histogram.percentile over.Server.get_service 99.0 in
  let p99_exec = Histogram.percentile over.Server.get_execute 99.0 in
  Alcotest.(check bool) "queueing dominates under overload" true
    (p99_service > 5.0 *. p99_exec);
  Alcotest.(check bool) "queue depth grew" true (over.Server.max_depth > 10)

let test_server_closed_loop () =
  let db, store = mk_store () in
  let t0 = preload db 1_000 in
  let s =
    Server.run ~store ~workers:2 ~start_at:t0
      ~closed:
        (Loadgen.closed_loop ~conns:4 ~reqs_per_conn:250
           ~reqgen:(Loadgen.mixed_reqgen ~n_keys:1_000 ~get_frac:0.9 ~vlen:8)
           ())
      ()
  in
  Alcotest.(check int) "4x250 requests" 1_000 s.Server.executed;
  (* closed loop cannot out-run the server: queue stays near the number of
     connections *)
  Alcotest.(check bool) "bounded queue" true (s.Server.max_depth <= 4)

let test_scheduler_modes_equivalent_work () =
  let run sched =
    let db, store = mk_store () in
    let t0 = preload db 1_000 in
    let s =
      Server.run ~sched ~store ~workers:4 ~start_at:t0
        ~arrivals:
          (Loadgen.open_loop ~seed:5
             ~process:(Loadgen.Poisson { rate_mops = 2.0 })
             ~reqgen:(Loadgen.mixed_reqgen ~n_keys:1_000 ~get_frac:0.5 ~vlen:8)
             ~duration_ns:1_000_000.0 ~start_at:t0 ())
        ()
    in
    s.Server.executed
  in
  Alcotest.(check int) "same work either scheduler" (run Server.Fifo)
    (run Server.Shard_affinity)

(* ------------------------------- Admission ------------------------------ *)

let test_admission_sheds_writes_not_reads () =
  let adm = Admission.create ~burst:4.0 ~rate_mops:0.001 () in
  let put = Proto.Put (1L, Bytes.empty) in
  (* burst capacity admits the first 4 writes, then the bucket is dry *)
  for _ = 1 to 4 do
    Alcotest.(check bool) "burst admitted" true (Admission.admit adm ~now:0.0 put)
  done;
  Alcotest.(check bool) "write shed when dry" false
    (Admission.admit adm ~now:0.0 put);
  Alcotest.(check bool) "get still admitted" true
    (Admission.admit adm ~now:0.0 (Proto.Get 1L));
  (* refill: 0.001 Mops/s = 1 token per 1e6 ns *)
  Alcotest.(check bool) "write admitted after refill" true
    (Admission.admit adm ~now:1_100_000.0 put);
  Alcotest.(check int) "shed count" 1 (Admission.shed adm)

let test_admission_gpm_costs_more () =
  let active = ref false in
  let signals =
    { Chameleondb.Modes.Signals.none with
      Chameleondb.Modes.Signals.get_protect_active = (fun () -> !active) }
  in
  let count_admitted () =
    let adm =
      Admission.create ~signals ~burst:8.0 ~rate_mops:0.0001 ~gpm_write_cost:4.0
        ()
    in
    let n = ref 0 in
    for _ = 1 to 20 do
      if Admission.admit adm ~now:0.0 (Proto.Put (1L, Bytes.empty)) then incr n
    done;
    !n
  in
  active := false;
  let normal = count_admitted () in
  active := true;
  let protected_ = count_admitted () in
  Alcotest.(check int) "normal: 8 tokens, 8 writes" 8 normal;
  Alcotest.(check int) "gpm: 8 tokens at cost 4, 2 writes" 2 protected_

let test_server_with_admission_bounds_queue () =
  let db, store = mk_store () in
  let t0 = preload db 1_000 in
  let reqgen = Loadgen.mixed_reqgen ~n_keys:1_000 ~get_frac:0.0 ~vlen:8 in
  let arrivals =
    Loadgen.open_loop ~seed:8 ~process:(Loadgen.Poisson { rate_mops = 40.0 })
      ~reqgen ~duration_ns:400_000.0 ~start_at:t0 ()
  in
  let unprotected =
    let db2, store2 = mk_store () in
    let t2 = preload db2 1_000 in
    ignore db2;
    Server.run ~store:store2 ~workers:1 ~start_at:t2
      ~arrivals:
        (Loadgen.open_loop ~seed:8
           ~process:(Loadgen.Poisson { rate_mops = 40.0 })
           ~reqgen ~duration_ns:400_000.0 ~start_at:t2 ())
      ()
  in
  ignore db;
  let adm = Admission.create ~burst:32.0 ~rate_mops:1.0 () in
  let s = Server.run ~admission:adm ~store ~workers:1 ~start_at:t0 ~arrivals () in
  Alcotest.(check bool) "some shed under overload" true (s.Server.shed > 0);
  Alcotest.(check bool) "queue bounded vs unprotected" true
    (s.Server.max_depth < unprotected.Server.max_depth / 2);
  Alcotest.(check int) "shed + executed = submitted" s.Server.submitted
    (s.Server.executed + s.Server.shed)

(* ------------------------------- Loadgen -------------------------------- *)

let test_open_loop_schedule_sorted_and_deterministic () =
  let mk () =
    Loadgen.open_loop ~seed:11 ~conns:4
      ~process:(Loadgen.Poisson { rate_mops = 1.0 })
      ~reqgen:(Loadgen.mixed_reqgen ~n_keys:100 ~get_frac:0.5 ~vlen:8)
      ~duration_ns:1_000_000.0 ~start_at:42.0 ()
  in
  let a = mk () and b = mk () in
  Alcotest.(check int) "deterministic count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "deterministic frames" true (x = b.(i)))
    a;
  Alcotest.(check bool) "~1000 arrivals at 1 Mreq/s over 1 ms" true
    (Array.length a > 700 && Array.length a < 1300);
  let sorted = ref true in
  Array.iteri
    (fun i x -> if i > 0 then sorted := !sorted && a.(i - 1).Server.at <= x.Server.at)
    a;
  Alcotest.(check bool) "sorted by time" true !sorted;
  Alcotest.(check bool) "after start" true (a.(0).Server.at > 42.0)

let test_square_wave_rates () =
  let p =
    Loadgen.Square
      { base_mops = 1.0; burst_mops = 10.0; period_ns = 1000.0; duty = 0.3 }
  in
  Alcotest.(check (float 0.0)) "burst phase" 10.0 (Loadgen.rate_at p ~elapsed_ns:100.0);
  Alcotest.(check (float 0.0)) "base phase" 1.0 (Loadgen.rate_at p ~elapsed_ns:500.0);
  Alcotest.(check (float 0.0)) "next period bursts again" 10.0
    (Loadgen.rate_at p ~elapsed_ns:1250.0)

let test_same_seed_identical_streams () =
  (* the cluster experiments lean on this: two runs with the same seed
     must see byte-identical request streams, for Poisson and for the
     bursty square wave alike *)
  let mk process seed =
    Loadgen.open_loop ~seed ~conns:3 ~process
      ~reqgen:(Loadgen.mixed_reqgen ~n_keys:500 ~get_frac:0.7 ~vlen:8)
      ~duration_ns:800_000.0 ~start_at:10.0 ()
  in
  let identical a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y ->
           x.Server.at = y.Server.at
           && x.Server.conn = y.Server.conn
           && Bytes.equal x.Server.frame y.Server.frame)
         a b
  in
  List.iter
    (fun (name, process) ->
      let a = mk process 21 and b = mk process 21 and c = mk process 22 in
      Alcotest.(check bool)
        (name ^ ": same seed is byte-identical")
        true (identical a b);
      Alcotest.(check bool)
        (name ^ ": different seed differs")
        false (identical a c))
    [ ("poisson", Loadgen.Poisson { rate_mops = 1.5 });
      ( "square",
        Loadgen.Square
          { base_mops = 0.5; burst_mops = 5.0; period_ns = 100_000.0;
            duty = 0.3 } ) ]

let test_merge_interleaves () =
  let mk base =
    Array.init 5 (fun i ->
        { Server.at = base +. (float_of_int i *. 10.0); conn = 0;
          frame = Bytes.empty })
  in
  let m = Loadgen.merge [ mk 0.0; mk 3.0 ] in
  Alcotest.(check int) "all kept" 10 (Array.length m);
  let sorted = ref true in
  Array.iteri
    (fun i x -> if i > 0 then sorted := !sorted && m.(i - 1).Server.at <= x.Server.at)
    m;
  Alcotest.(check bool) "sorted" true !sorted

(* ------------------------------- Endpoint ------------------------------- *)

let test_endpoint_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckv-test-%d.sock" (Unix.getpid ()))
  in
  let db, _store = mk_store () in
  ignore db;
  let cfg =
    { Chameleondb.Config.default with
      Chameleondb.Config.shards = 4;
      memtable_slots = 64;
      materialize_values = true }
  in
  let sdb = Chameleondb.Store.create ~cfg () in
  let clock = Pmem_sim.Clock.create () in
  let backend =
    Endpoint.backend_of_store ~clock (Chameleondb.Store.store sdb)
  in
  let server = Thread.create (fun () -> Endpoint.serve ~max_requests:5 ~path backend) () in
  let rec wait_sock n =
    if n = 0 then Alcotest.fail "socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.05;
      wait_sock (n - 1)
    end
  in
  wait_sock 100;
  let c = Endpoint.connect path in
  Alcotest.(check bool) "put ok" true
    (Endpoint.request c (Proto.Put (5L, Bytes.of_string "abc")) = Proto.Ok);
  Alcotest.(check bool) "get returns value" true
    (Endpoint.request c (Proto.Get 5L) = Proto.Value (Bytes.of_string "abc"));
  Alcotest.(check bool) "miss" true
    (Endpoint.request c (Proto.Get 6L) = Proto.Miss);
  Alcotest.(check bool) "delete ok" true
    (Endpoint.request c (Proto.Delete 5L) = Proto.Ok);
  Alcotest.(check bool) "deleted is miss" true
    (Endpoint.request c (Proto.Get 5L) = Proto.Miss);
  Endpoint.close c;
  ignore (Thread.join server)

let test_endpoint_batch_and_malformed_inner () =
  (* Batch end-to-end over the socket: one frame in, per-op replies out.
     Then a batch frame whose inner op carries an unknown tag: the server
     must answer [Err] and close that connection (sticky corrupt), while
     continuing to serve fresh connections. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckv-test-batch-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    { Chameleondb.Config.default with
      Chameleondb.Config.shards = 4;
      memtable_slots = 64;
      materialize_values = true }
  in
  let sdb = Chameleondb.Store.create ~cfg () in
  let clock = Pmem_sim.Clock.create () in
  let backend =
    Endpoint.backend_of_store ~clock (Chameleondb.Store.store sdb)
  in
  (* corrupt frames do not count as served requests, so exactly two good
     requests let the server exit *)
  let server =
    Thread.create (fun () -> Endpoint.serve ~max_requests:2 ~path backend) ()
  in
  let rec wait_sock n =
    if n = 0 then Alcotest.fail "socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.05;
      wait_sock (n - 1)
    end
  in
  wait_sock 100;
  (* 1: a pipelined batch gets one reply per inner op, in order *)
  let c = Endpoint.connect path in
  (match
     Endpoint.request c
       (Proto.Batch
          [ Proto.Put (9L, Bytes.of_string "vv"); Proto.Get 9L;
            Proto.Delete 9L; Proto.Get 9L ])
   with
  | Proto.Replies [ Proto.Ok; Proto.Value v; Proto.Ok; Proto.Miss ] ->
    Alcotest.(check string) "batch get sees the batch put" "vv"
      (Bytes.to_string v)
  | r -> Alcotest.failf "unexpected batch reply: %a" Proto.pp_reply r);
  Endpoint.close c;
  (* 2: same frame, inner op tag smashed to an unknown value *)
  let frame = Proto.encode_request (Proto.Batch [ Proto.Get 1L ]) in
  Bytes.set frame (Bytes.length frame - 9) '\xEE';
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let off = ref 0 in
  while !off < Bytes.length frame do
    off := !off + Unix.write fd frame !off (Bytes.length frame - !off)
  done;
  let d = Proto.decoder () in
  let buf = Bytes.create 1024 in
  let rec read_reply () =
    match Proto.next d with
    | `Msg (Proto.Reply r) -> r
    | `Msg (Proto.Request _ | Proto.Tagged _) ->
      Alcotest.fail "server sent a request"
    | `Corrupt m -> Alcotest.fail ("client decoder corrupt: " ^ m)
    | `Await ->
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n = 0 then Alcotest.fail "connection closed before the Err reply";
      Proto.feed d buf ~off:0 ~len:n;
      read_reply ()
  in
  (match read_reply () with
  | Proto.Err _ -> ()
  | r -> Alcotest.failf "malformed batch earned %a, not Err" Proto.pp_reply r);
  (* the poisoned connection is closed, not resumed *)
  let rec read_eof () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | _ -> read_eof ()
  in
  read_eof ();
  Unix.close fd;
  (* 3: the server still serves fresh connections afterwards *)
  let c2 = Endpoint.connect path in
  Alcotest.(check bool) "server survives the poisoned connection" true
    (Endpoint.request c2 (Proto.Get 1L) = Proto.Miss);
  Endpoint.close c2;
  ignore (Thread.join server)

let test_endpoint_redirect () =
  (* routing-aware backend: keys the redirect function disowns earn an
     explicit [Not_owner] hint — standalone and inside a batch — and are
     never executed against the store *)
  let cfg =
    { Chameleondb.Config.default with
      Chameleondb.Config.shards = 4;
      memtable_slots = 64 }
  in
  let sdb = Chameleondb.Store.create ~cfg () in
  let clock = Pmem_sim.Clock.create () in
  let redirect k = if k = 5L then Some 3 else None in
  let backend =
    Endpoint.backend_of_store ~redirect ~clock (Chameleondb.Store.store sdb)
  in
  Alcotest.(check bool) "get refused" true
    (backend (Proto.Get 5L) = Proto.Not_owner 3);
  Alcotest.(check bool) "put refused" true
    (backend (Proto.Put (5L, Bytes.of_string "x")) = Proto.Not_owner 3);
  Alcotest.(check bool) "delete refused" true
    (backend (Proto.Delete 5L) = Proto.Not_owner 3);
  Alcotest.(check bool) "owned keys still served" true
    (backend (Proto.Put (6L, Bytes.of_string "y")) = Proto.Ok);
  (match backend (Proto.Batch [ Proto.Get 5L; Proto.Get 6L ]) with
  | Proto.Replies [ Proto.Not_owner 3; (Proto.Hit _ | Proto.Value _) ] -> ()
  | r -> Alcotest.failf "batch redirect: %a" Proto.pp_reply r);
  (* the refused put really did not land *)
  let module S = Kv_common.Store_intf in
  let got = S.read (Chameleondb.Store.store sdb) clock 5L in
  Alcotest.(check bool) "refused put never landed" true (got.S.loc = None);
  (* scans cannot be range-partitioned by a hash router: refused outright *)
  match backend (Proto.Scan (0L, 10)) with
  | Proto.Err _ -> ()
  | r -> Alcotest.failf "routed scan earned %a, not Err" Proto.pp_reply r

let test_backend_scan () =
  (* scan through the endpoint backend: ordered, value-carrying, limit
     honoured; starts past the last key return an empty Values *)
  let cfg =
    { Chameleondb.Config.default with
      Chameleondb.Config.shards = 4;
      memtable_slots = 64;
      materialize_values = true }
  in
  let sdb = Chameleondb.Store.create ~cfg () in
  let clock = Pmem_sim.Clock.create () in
  let backend =
    Endpoint.backend_of_store ~clock (Chameleondb.Store.store sdb)
  in
  let keys = [ 40L; 10L; 30L; 20L; 50L ] in
  List.iter
    (fun k ->
      Alcotest.(check bool) "put ok" true
        (backend (Proto.Put (k, Bytes.of_string (Printf.sprintf "v%Ld" k)))
        = Proto.Ok))
    keys;
  (match backend (Proto.Scan (15L, 3)) with
  | Proto.Values entries ->
    Alcotest.(check (list int64)) "ordered keys from start" [ 20L; 30L; 40L ]
      (List.map (fun (k, _, _) -> k) entries);
    List.iter
      (fun (k, vlen, v) ->
        let want = Printf.sprintf "v%Ld" k in
        Alcotest.(check int) "vlen matches" (String.length want) vlen;
        match v with
        | Some b -> Alcotest.(check string) "value carried" want (Bytes.to_string b)
        | None -> Alcotest.fail "materialized store returned no value")
      entries
  | r -> Alcotest.failf "scan earned %a" Proto.pp_reply r);
  match backend (Proto.Scan (51L, 5)) with
  | Proto.Values [] -> ()
  | r -> Alcotest.failf "past-the-end scan earned %a" Proto.pp_reply r

(* ----------------------------- counters diff ----------------------------- *)

let test_run_counters_isolated () =
  (* two consecutive Server.run calls: the second result's counter deltas
     must not include the first run's traffic *)
  Obs.Counters.reset_all ();
  let run () =
    let db, store = mk_store () in
    let t0 = preload db 500 in
    ignore db;
    Server.run ~store ~workers:2 ~start_at:t0
      ~arrivals:
        (Loadgen.open_loop ~seed:4
           ~process:(Loadgen.Poisson { rate_mops = 1.0 })
           ~reqgen:(Loadgen.mixed_reqgen ~n_keys:500 ~get_frac:0.5 ~vlen:8)
           ~duration_ns:500_000.0 ~start_at:t0 ())
      ()
  in
  let a = run () in
  let b = run () in
  let enq r =
    match List.assoc_opt "service.enqueued" r.Server.counters with
    | Some v -> v
    | None -> 0.0
  in
  Alcotest.(check bool) "first run counted" true (enq a > 0.0);
  Alcotest.(check (float 1.0)) "second run counts only itself"
    (float_of_int b.Server.executed)
    (enq b)

let () =
  Alcotest.run "service"
    [ ( "proto",
        [ Alcotest.test_case "roundtrip all variants" `Quick test_roundtrip;
          Alcotest.test_case "incremental decode at every split" `Quick
            test_incremental_all_split_points;
          Alcotest.test_case "byte-at-a-time pipeline" `Quick
            test_byte_at_a_time_pipeline;
          Alcotest.test_case "corrupt frames rejected" `Quick
            test_corrupt_rejected;
          Alcotest.test_case "fuzz: hostile bytes never raise" `Quick
            test_fuzz_never_raises;
          Alcotest.test_case "fuzz: bit flips never raise" `Quick
            test_fuzz_bitflip_roundtrips;
          Alcotest.test_case "encode rejects nesting" `Quick
            test_encode_rejects_nesting;
          Alcotest.test_case "scan/values frame validation" `Quick
            test_scan_frame_validation ] );
      ( "server",
        [ Alcotest.test_case "executes every arrival" `Quick
            test_server_executes_all;
          Alcotest.test_case "batch request counts its ops" `Quick
            test_server_batch_request;
          Alcotest.test_case "corrupt connection is isolated" `Quick
            test_server_corrupt_conn_isolated;
          Alcotest.test_case "open loop measures queueing" `Quick
            test_server_open_loop_queueing;
          Alcotest.test_case "closed loop self-limits" `Quick
            test_server_closed_loop;
          Alcotest.test_case "schedulers do the same work" `Quick
            test_scheduler_modes_equivalent_work ] );
      ( "admission",
        [ Alcotest.test_case "sheds writes, spares reads" `Quick
            test_admission_sheds_writes_not_reads;
          Alcotest.test_case "GPM raises the write cost" `Quick
            test_admission_gpm_costs_more;
          Alcotest.test_case "bounds the queue under overload" `Quick
            test_server_with_admission_bounds_queue ] );
      ( "loadgen",
        [ Alcotest.test_case "deterministic sorted schedule" `Quick
            test_open_loop_schedule_sorted_and_deterministic;
          Alcotest.test_case "square wave rates" `Quick test_square_wave_rates;
          Alcotest.test_case "same seed, byte-identical streams" `Quick
            test_same_seed_identical_streams;
          Alcotest.test_case "merge interleaves streams" `Quick
            test_merge_interleaves ] );
      ( "endpoint",
        [ Alcotest.test_case "unix socket roundtrip" `Quick
            test_endpoint_roundtrip;
          Alcotest.test_case "batch over socket, malformed inner op" `Quick
            test_endpoint_batch_and_malformed_inner;
          Alcotest.test_case "redirect refuses disowned keys" `Quick
            test_endpoint_redirect;
          Alcotest.test_case "scan through the backend" `Quick
            test_backend_scan ] );
      ( "counters",
        [ Alcotest.test_case "runs do not leak into each other" `Quick
            test_run_counters_isolated ] ) ]
