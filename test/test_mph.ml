module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module CM = Pmem_sim.Cost_model
module Stats = Pmem_sim.Stats
module Types = Kv_common.Types
module Mph = Kv_common.Mph
module LT = Kv_common.Linear_table

let key i = Workload.Keyspace.key_of_index i
let dev () = Device.create CM.optane
let seeds = [ 1; 11; 101 ]
let keys_of n = Array.init n key

let counter name =
  match Obs.Counters.find name with Some v -> v | None -> 0.0

(* ------------------------------ Construction ----------------------------- *)

let check_injective ~what t keys =
  let n = Array.length keys in
  let hit = Array.make (max 1 n) false in
  Array.iter
    (fun k ->
      let s = Mph.eval t k in
      if s < 0 || s >= n then
        Alcotest.failf "%s: slot %d out of range [0,%d)" what s n;
      if hit.(s) then Alcotest.failf "%s: slot %d assigned twice" what s;
      hit.(s) <- true)
    keys

let test_injective_all_sizes () =
  List.iter
    (fun seed ->
      List.iter
        (fun n ->
          let keys = keys_of n in
          let t, attempts = Mph.build ~seed keys in
          Alcotest.(check int) "n recorded" n (Mph.n t);
          Alcotest.(check bool) "attempts non-negative" true (attempts >= 0);
          check_injective ~what:(Printf.sprintf "seed %d n %d" seed n) t keys)
        [ 0; 1; 2; 3; 7; 64; 1_000 ])
    seeds

let test_large_build_converges () =
  (* regression: quick-scale last-level runs are tens of thousands of keys;
     construction must converge without burning through seed restarts *)
  let n = 60_000 in
  let keys = keys_of n in
  List.iter
    (fun seed ->
      let restarts0 = counter "mph.build_restarts" in
      let t, attempts = Mph.build ~seed keys in
      check_injective ~what:(Printf.sprintf "large build seed %d" seed) t keys;
      let apk = float_of_int attempts /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "attempts/key sane (%.2f)" apk)
        true (apk < 20.0);
      Alcotest.(check bool) "few restarts" true
        (counter "mph.build_restarts" -. restarts0 < 4.0))
    seeds

let test_deterministic_in_key_set () =
  let keys = keys_of 2_000 in
  let shuffled = Array.copy keys in
  (* deterministic shuffle *)
  let rng = Workload.Rng.create ~seed:7 in
  for i = Array.length shuffled - 1 downto 1 do
    let j = Workload.Rng.int rng (i + 1) in
    let tmp = shuffled.(i) in
    shuffled.(i) <- shuffled.(j);
    shuffled.(j) <- tmp
  done;
  let a, _ = Mph.build ~seed:11 keys in
  let b, _ = Mph.build ~seed:11 shuffled in
  Alcotest.(check bool) "same function from any input order" true
    (Mph.equal a b);
  Alcotest.(check bool) "identical artifact bytes" true
    (Bytes.equal (Mph.serialize a) (Mph.serialize b));
  Array.iter
    (fun k ->
      Alcotest.(check int) "same slot" (Mph.eval a k) (Mph.eval b k))
    keys

let test_eval_total_for_non_members () =
  let n = 1_000 in
  let t, _ = Mph.build ~seed:1 (keys_of n) in
  for i = n to n + 499 do
    let s = Mph.eval t (key i) in
    if s < 0 || s >= n then
      Alcotest.failf "non-member slot %d out of range [0,%d)" s n
  done

let test_zero_and_one_key () =
  let empty, attempts0 = Mph.build ~seed:3 [||] in
  Alcotest.(check int) "empty n" 0 (Mph.n empty);
  Alcotest.(check int) "empty build needs no attempts" 0 attempts0;
  Alcotest.(check int) "empty evals to 0" 0 (Mph.eval empty 42L);
  let one, _ = Mph.build ~seed:3 [| key 9 |] in
  Alcotest.(check int) "singleton maps to slot 0" 0 (Mph.eval one (key 9))

let test_build_counters_reconcile () =
  let builds0 = counter "mph.builds" in
  let keys0 = counter "mph.build_keys" in
  let attempts0 = counter "mph.build_attempts" in
  let n = 5_000 in
  let _, attempts = Mph.build ~seed:11 (keys_of n) in
  Alcotest.(check (float 0.0)) "one build" 1.0 (counter "mph.builds" -. builds0);
  Alcotest.(check (float 0.0)) "keys counted" (float_of_int n)
    (counter "mph.build_keys" -. keys0);
  Alcotest.(check (float 0.0)) "attempts counter matches return"
    (float_of_int attempts)
    (counter "mph.build_attempts" -. attempts0)

(* ------------------------------ Serialization ---------------------------- *)

let test_serialize_roundtrip () =
  List.iter
    (fun n ->
      let keys = keys_of n in
      let t, _ = Mph.build ~seed:101 keys in
      let b = Mph.serialize t in
      Alcotest.(check int) "length as declared" (Mph.serialized_bytes t)
        (Bytes.length b);
      Alcotest.(check bool) "verifies" true (Mph.verify b);
      match Mph.deserialize b with
      | None -> Alcotest.fail "round-trip failed"
      | Some t' ->
        Alcotest.(check bool) "equal after round-trip" true (Mph.equal t t');
        Array.iter
          (fun k ->
            Alcotest.(check int) "same slot after round-trip" (Mph.eval t k)
              (Mph.eval t' k))
          keys)
    [ 0; 1; 5; 1_000 ]

let test_deserialize_rejects_damage () =
  let t, _ = Mph.build ~seed:1 (keys_of 100) in
  let b = Mph.serialize t in
  (* bit rot in the displacement area: CRC must catch it *)
  let rotted = Bytes.copy b in
  Bytes.set rotted 40 (Char.chr (Char.code (Bytes.get rotted 40) lxor 0x10));
  Alcotest.(check bool) "bit rot rejected" true (Mph.deserialize rotted = None);
  (* bad magic *)
  let bad = Bytes.copy b in
  Bytes.set_int64_le bad 0 0L;
  Alcotest.(check bool) "bad magic rejected" true (Mph.deserialize bad = None);
  (* truncation *)
  Alcotest.(check bool) "truncation rejected" true
    (Mph.deserialize (Bytes.sub b 0 (Bytes.length b - 8)) = None)

(* ------------------------- Last-level run integration -------------------- *)

let test_lt_mph_one_device_read () =
  let d = dev () in
  let c = Clock.create () in
  let n = 500 in
  let entries = List.init n (fun i -> (key i, i)) in
  let t = LT.build_mph d c ~seed:1 entries in
  Alcotest.(check bool) "is_mph" true (LT.is_mph t);
  Alcotest.(check int) "count" n (LT.count t);
  Alcotest.(check bool) "mirror counted in DRAM" true (LT.dram_bytes t > 0);
  (* hit: exactly one device read *)
  let before = (Device.stats d).Stats.read_ops in
  (match LT.get t c (key 7) with
  | LT.Found 7 -> ()
  | _ -> Alcotest.fail "hit lost");
  Alcotest.(check int) "one read per hit" 1
    ((Device.stats d).Stats.read_ops - before);
  (* miss: also exactly one device read (slot key mismatch answers Absent) *)
  let before = (Device.stats d).Stats.read_ops in
  Alcotest.(check bool) "miss answers Absent" true
    (LT.get t c (key (n + 3)) = LT.Absent);
  Alcotest.(check int) "one read per miss" 1
    ((Device.stats d).Stats.read_ops - before)

let test_lt_mph_missing_keys_never_lie () =
  List.iter
    (fun seed ->
      let d = dev () in
      let c = Clock.create () in
      let n = 2_000 in
      let t = LT.build_mph d c ~seed (List.init n (fun i -> (key i, i))) in
      for i = 0 to n - 1 do
        match LT.get t c (key i) with
        | LT.Found v when v = i -> ()
        | _ -> Alcotest.failf "member %d wrong under seed %d" i seed
      done;
      for i = n to (2 * n) - 1 do
        if LT.get t c (key i) <> LT.Absent then
          Alcotest.failf "non-member %d not Absent under seed %d" i seed
      done)
    seeds

let test_lt_mph_empty_and_single () =
  let d = dev () in
  let c = Clock.create () in
  let empty = LT.build_mph d c ~seed:1 [] in
  Alcotest.(check int) "empty count" 0 (LT.count empty);
  Alcotest.(check bool) "empty get" true (LT.get empty c 1L = LT.Absent);
  let one = LT.build_mph d c ~seed:1 [ (key 5, 55) ] in
  Alcotest.(check bool) "single hit" true (LT.get one c (key 5) = LT.Found 55);
  Alcotest.(check bool) "single miss" true (LT.get one c (key 6) = LT.Absent)

let test_lt_mph_artifact_corruption_repair () =
  let d = dev () in
  let c = Clock.create () in
  let t = LT.build_mph d c ~seed:1 (List.init 400 (fun i -> (key i, i))) in
  let off, len =
    match LT.mph_media_range t with
    | Some r -> r
    | None -> Alcotest.fail "mph run without artifact range"
  in
  Device.inject_poison d ~off ~len:(min len 256);
  Alcotest.(check bool) "artifact damage detected" false (LT.mph_intact t c);
  Alcotest.(check bool) "slots unaffected" true (LT.slots_intact t c);
  Alcotest.(check bool) "whole-run verdict fails" false (LT.intact t c);
  (* gets keep working off the DRAM mirror while damaged *)
  Alcotest.(check bool) "get during damage" true
    (LT.get t c (key 3) = LT.Found 3);
  LT.rebuild_mph_artifact t c;
  Alcotest.(check bool) "artifact repaired" true (LT.mph_intact t c);
  Alcotest.(check bool) "whole run intact again" true (LT.intact t c);
  Alcotest.(check bool) "repair re-verifies" true
    (match LT.mph_media_range t with
    | Some (off', _) -> off' <> off || not (Device.poisoned_in d ~off ~len:1)
    | None -> false)

let test_lt_mph_slot_corruption_fail_stop () =
  let d = dev () in
  let c = Clock.create () in
  let t = LT.build_mph d c ~seed:1 (List.init 400 (fun i -> (key i, i))) in
  let off, len = LT.media_range t in
  Device.inject_poison d ~off ~len;
  Alcotest.(check bool) "slot damage detected" false (LT.slots_intact t c);
  for i = 0 to 9 do
    if LT.get t c (key i) <> LT.Corrupted then
      Alcotest.failf "poisoned slot read for key %d did not fail stop" i
  done

(* -------------------------------- Registry ------------------------------- *)

let () =
  Alcotest.run "mph"
    [ ( "construction",
        [ Alcotest.test_case "injective at all sizes" `Quick
            test_injective_all_sizes;
          Alcotest.test_case "large builds converge" `Quick
            test_large_build_converges;
          Alcotest.test_case "deterministic in the key set" `Quick
            test_deterministic_in_key_set;
          Alcotest.test_case "total for non-members" `Quick
            test_eval_total_for_non_members;
          Alcotest.test_case "zero and one key" `Quick test_zero_and_one_key;
          Alcotest.test_case "counters reconcile" `Quick
            test_build_counters_reconcile ] );
      ( "artifact",
        [ Alcotest.test_case "serialize round-trip" `Quick
            test_serialize_roundtrip;
          Alcotest.test_case "damage rejected" `Quick
            test_deserialize_rejects_damage ] );
      ( "last-level run",
        [ Alcotest.test_case "one device read per get" `Quick
            test_lt_mph_one_device_read;
          Alcotest.test_case "missing keys never lie" `Quick
            test_lt_mph_missing_keys_never_lie;
          Alcotest.test_case "empty and single-key runs" `Quick
            test_lt_mph_empty_and_single;
          Alcotest.test_case "artifact corruption repaired in place" `Quick
            test_lt_mph_artifact_corruption_repair;
          Alcotest.test_case "slot corruption fail-stops" `Quick
            test_lt_mph_slot_corruption_fail_stop ] ) ]
