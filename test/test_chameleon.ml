module C = Chameleondb
module Config = C.Config
module Store = C.Store
module Shard = C.Shard
module Memtable = C.Memtable
module Levels = C.Levels
module Modes = C.Modes
module Manifest = C.Manifest
module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module SI = Kv_common.Store_intf

let key i = Workload.Keyspace.key_of_index i

let put db c k ~vlen = Store.write db c k (SI.Sized vlen)
let get db c k = (Store.read db c k).SI.loc

let write_bytes db c k v = Store.write db c k (SI.Payload v)
let read_value db c k = (Store.read db c k).SI.value
let read_stage db c k = (Store.read db c k).SI.stage

(* a small but structurally complete configuration *)
let small_cfg =
  { Config.default with Config.shards = 4; memtable_slots = 32 }

let mk ?(cfg = small_cfg) () = Store.create ~cfg ()

(* enough unique keys to push every shard through last-level compactions *)
let full_cycle_keys cfg =
  cfg.Config.shards * Config.max_upper_entries cfg * 3 / 4

let load db clock n =
  for i = 0 to n - 1 do
    put db clock (key i) ~vlen:8
  done

(* --------------------------------- Config -------------------------------- *)

let test_config_default_valid () =
  Alcotest.(check bool) "default ok" true (Config.validate Config.default = Ok ())

let test_config_rejections () =
  let bad f =
    match Config.validate (f Config.default) with
    | Error _ -> true
    | Ok () -> false
  in
  Alcotest.(check bool) "shards" true (bad (fun c -> { c with Config.shards = 0 }));
  Alcotest.(check bool) "memtable" true
    (bad (fun c -> { c with Config.memtable_slots = 4 }));
  Alcotest.(check bool) "levels" true (bad (fun c -> { c with Config.levels = 1 }));
  Alcotest.(check bool) "ratio" true (bad (fun c -> { c with Config.ratio = 1 }));
  Alcotest.(check bool) "lf band" true
    (bad (fun c -> { c with Config.lf_min = 0.9; lf_max = 0.8 }));
  Alcotest.(check bool) "abi too small" true
    (bad (fun c -> { c with Config.abi_slots_factor = 2 }))

let test_config_derived () =
  Alcotest.(check int) "upper levels" 3 (Config.upper_levels Config.default);
  Alcotest.(check int) "max upper entries"
    (64 * Config.default.Config.memtable_slots)
    (Config.max_upper_entries Config.default);
  let s = Config.scaled ~shards:7 ~memtable_slots:64 Config.default in
  Alcotest.(check int) "scaled shards" 7 s.Config.shards;
  Alcotest.(check int) "scaled slots" 64 s.Config.memtable_slots

let test_store_create_rejects_invalid () =
  Alcotest.(check bool) "invalid cfg raises" true
    (try
       ignore (Store.create ~cfg:{ Config.default with Config.ratio = 0 } ());
       false
     with Invalid_argument _ -> true)

(* -------------------------------- Memtable ------------------------------- *)

let test_memtable_lf_band () =
  for shard_id = 0 to 20 do
    let m = Memtable.create ~cfg:Config.default ~shard_id in
    let lf = Memtable.load_factor_threshold m in
    Alcotest.(check bool) "within band" true
      (lf >= Config.default.Config.lf_min -. 1e-9
      && lf <= Config.default.Config.lf_max +. 1e-9)
  done

let test_memtable_reset_redraws () =
  let m = Memtable.create ~cfg:Config.default ~shard_id:0 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 20 do
    Hashtbl.replace seen (Memtable.load_factor_threshold m) ();
    Memtable.reset m
  done;
  Alcotest.(check bool) "thresholds vary across flushes" true
    (Hashtbl.length seen > 3)

let test_memtable_room () =
  let m = Memtable.create ~cfg:small_cfg ~shard_id:1 in
  let c = Clock.create () in
  Alcotest.(check bool) "room when empty" true (Memtable.has_room_for m 10);
  let i = ref 0 in
  while not (Memtable.is_full m) do
    incr i;
    ignore (Memtable.put m c (key !i) !i)
  done;
  Alcotest.(check bool) "no room when full" false (Memtable.has_room_for m 5);
  Alcotest.(check int) "entries snapshot" (Memtable.count m)
    (List.length (Memtable.entries m))

(* --------------------------------- Levels -------------------------------- *)

let test_levels_slots () =
  Alcotest.(check int) "L0 table" 32
    (Levels.table_slots ~cfg:small_cfg ~level:0);
  Alcotest.(check int) "L2 table" (32 * 16)
    (Levels.table_slots ~cfg:small_cfg ~level:2)

let test_levels_structure () =
  let lv = Levels.create ~cfg:small_cfg in
  let dev = Device.create Pmem_sim.Cost_model.optane in
  let c = Clock.create () in
  Alcotest.(check bool) "not full" false (Levels.l0_full lv);
  for i = 1 to 4 do
    let tbl = Kv_common.Linear_table.build dev c ~slots:32 [ (key i, i) ] in
    Kv_common.Linear_table.set_tag tbl i;
    Levels.add_table lv ~level:0 tbl
  done;
  Alcotest.(check bool) "full at ratio" true (Levels.l0_full lv);
  Alcotest.(check int) "entry count" 4 (Levels.upper_entry_count lv);
  (* newest first ordering *)
  (match Levels.upper_tables_newest_first lv () with
  | first :: _ ->
    Alcotest.(check int) "newest first" 4 (Kv_common.Linear_table.tag first)
  | [] -> Alcotest.fail "no tables");
  Alcotest.(check bool) "pmem bytes" true (Levels.pmem_bytes lv > 0);
  Levels.clear_upper_range lv ~upto:0;
  Alcotest.(check int) "cleared" 0 (Levels.level_len lv 0)

(* ----------------------------------- GPM --------------------------------- *)

let gpm_cfg = { small_cfg with Config.gpm_enabled = true }

let test_gpm_activates_and_releases () =
  let g = Modes.Gpm.create ~cfg:gpm_cfg in
  Alcotest.(check bool) "starts inactive" false (Modes.Gpm.active g);
  for _ = 1 to 256 do
    Modes.Gpm.record_get g 10_000.0
  done;
  Alcotest.(check bool) "activates on slow tail" true (Modes.Gpm.active g);
  Alcotest.(check int) "one activation" 1 (Modes.Gpm.activations g);
  (* hysteresis: needs clearly low tail to release *)
  for _ = 1 to 1024 do
    Modes.Gpm.record_get g 300.0
  done;
  Alcotest.(check bool) "releases once subsided" false (Modes.Gpm.active g);
  Alcotest.(check bool) "p99 tracked" true (Modes.Gpm.current_p99 g > 0.0)

let test_gpm_disabled_never_active () =
  let g = Modes.Gpm.create ~cfg:small_cfg in
  for _ = 1 to 1000 do
    Modes.Gpm.record_get g 1e9
  done;
  Alcotest.(check bool) "stays off" false (Modes.Gpm.active g)

(* -------------------------------- Manifest ------------------------------- *)

let test_manifest () =
  let dev = Device.create Pmem_sim.Cost_model.optane in
  let m = Manifest.create dev in
  let c = Clock.create () in
  Manifest.record_update m c;
  Manifest.record_update m c;
  Alcotest.(check int) "updates" 2 (Manifest.updates m);
  Alcotest.(check bool) "persisted to device" true
    ((Device.stats dev).Pmem_sim.Stats.media_write_bytes > 0.0);
  Alcotest.(check bool) "footprint" true (Manifest.footprint_bytes m > 0.0)

(* ------------------------------- Store basics ---------------------------- *)

let test_store_crud () =
  let db = mk () in
  let c = Clock.create () in
  Alcotest.(check bool) "missing" true (get db c 1L = None);
  put db c 1L ~vlen:8;
  Alcotest.(check bool) "present" true (get db c 1L <> None);
  Store.delete db c 1L;
  Alcotest.(check bool) "deleted" true (get db c 1L = None);
  put db c 1L ~vlen:8;
  Alcotest.(check bool) "reinserted" true (get db c 1L <> None)

let test_store_update_returns_newest () =
  let db = mk () in
  let c = Clock.create () in
  put db c 5L ~vlen:8;
  let l1 = get db c 5L in
  put db c 5L ~vlen:8;
  let l2 = get db c 5L in
  Alcotest.(check bool) "newer location" true (l2 > l1)

let test_store_negative_vlen_rejected () =
  let db = mk () in
  let c = Clock.create () in
  Alcotest.check_raises "negative vlen"
    (Invalid_argument "Store.put: negative value length") (fun () ->
      put db c 1L ~vlen:(-3))

let test_store_full_cycle_correct () =
  let db = mk () in
  let c = Clock.create () in
  let n = 2 * full_cycle_keys small_cfg in
  load db c n;
  let t = Store.totals db in
  Alcotest.(check bool) "flushes happened" true (t.Store.flushes > 0);
  Alcotest.(check bool) "upper compactions happened" true
    (t.Store.upper_compactions > 0);
  Alcotest.(check bool) "last-level compactions happened" true
    (t.Store.last_compactions > 0);
  for i = 0 to n - 1 do
    if get db c (key i) = None then
      Alcotest.failf "key %d missing after compactions" i
  done;
  (match Store.check_invariants db with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_store_updates_survive_compactions () =
  let db = mk () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg in
  load db c n;
  (* update a subset, then push more data through to force compactions *)
  let probe = [ 0; 7; 99; n / 2; n - 1 ] in
  let updated_locs =
    List.map
      (fun i ->
        put db c (key i) ~vlen:16;
        (i, Option.get (get db c (key i))))
      probe
  in
  for i = n to 2 * n do
    put db c (key i) ~vlen:8
  done;
  List.iter
    (fun (i, loc) ->
      match get db c (key i) with
      | Some l ->
        Alcotest.(check bool)
          (Printf.sprintf "key %d kept newest version" i)
          true (l >= loc)
      | None -> Alcotest.failf "key %d lost" i)
    updated_locs

let test_store_deletes_survive_compactions () =
  let db = mk () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg in
  load db c n;
  Store.delete db c (key 3);
  Store.delete db c (key (n / 2));
  for i = n to 2 * n do
    put db c (key i) ~vlen:8
  done;
  Alcotest.(check bool) "deleted stays deleted" true
    (get db c (key 3) = None);
  Alcotest.(check bool) "deleted stays deleted 2" true
    (get db c (key (n / 2)) = None)

let test_store_get_stages () =
  let db = mk () in
  let c = Clock.create () in
  load db c (2 * full_cycle_keys small_cfg);
  let stages = Hashtbl.create 8 in
  for i = 0 to 2 * full_cycle_keys small_cfg - 1 do
    let r = Store.read db c (key i) in
    Alcotest.(check bool) "found" true (r.SI.loc <> None);
    Hashtbl.replace stages r.SI.stage ()
  done;
  Alcotest.(check bool) "some last-level hits" true
    (Hashtbl.mem stages SI.Last);
  Alcotest.(check bool) "some DRAM-index hits" true
    (Hashtbl.mem stages SI.Abi || Hashtbl.mem stages SI.Memtable)

(* ---------------------------- Crash and recovery ------------------------- *)

let test_recovery_normal () =
  let db = mk () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg in
  load db c n;
  Store.crash db;
  let persisted = Vlog.persisted (Store.vlog db) in
  let rc = Clock.create ~at:(Clock.now c) () in
  let restart = Store.recover db rc in
  Alcotest.(check bool) "restart time positive" true (restart >= 0.0);
  (* every key whose log entry persisted must be readable *)
  for i = 0 to persisted - 1 do
    let k = Vlog.key_at (Store.vlog db) i in
    if get db rc k = None then
      Alcotest.failf "persisted key at loc %d missing after recovery" i
  done

let test_recovery_degraded_then_ready () =
  let db = mk () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg / 2 in
  load db c n;
  (* checkpoint so the whole data set survives the crash; the ABI is still
     volatile, so recovery serves degraded until its rebuild completes *)
  Store.flush_all db c;
  Store.crash db;
  let rc = Clock.create ~at:(Clock.now c) () in
  ignore (Store.recover db rc);
  (* immediately after recovery: gets run degraded but must be correct *)
  let stage = read_stage db rc (key 0) in
  Alcotest.(check bool) "answered" true (stage <> SI.Miss);
  (* after the ABI rebuild completes, gets go through the ABI again *)
  Store.wait_background db rc;
  let late = Clock.create ~at:(Clock.now rc +. 1e9) () in
  let hit_dram = ref false in
  for i = 0 to n - 1 do
    match Store.read db late (key i) with
    | { SI.loc = Some _; stage = SI.Abi | SI.Memtable; _ } ->
      hit_dram := true
    | { loc = Some _; _ } -> ()
    | { loc = None; _ } -> Alcotest.failf "key %d missing" i
  done;
  Alcotest.(check bool) "ABI serving after rebuild" true !hit_dram

let test_recovery_wim_preserves_absorbed () =
  (* regression: absorbed (DRAM-only) entries must be recovered from the
     log via the absorb floor, which has to survive the crash *)
  let cfg = { small_cfg with Config.write_intensive = true } in
  let db = mk ~cfg () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg in
  load db c n;
  let t = Store.totals db in
  Alcotest.(check bool) "absorptions happened" true (t.Store.absorbs > 0);
  Store.crash db;
  let persisted = Vlog.persisted (Store.vlog db) in
  let rc = Clock.create ~at:(Clock.now c) () in
  let restart = Store.recover db rc in
  for i = 0 to persisted - 1 do
    let k = Vlog.key_at (Store.vlog db) i in
    if get db rc k = None then
      Alcotest.failf "WIM: persisted key at loc %d lost" i
  done;
  (* WIM restart scans a long log tail: far slower than a normal restart *)
  let db2 = mk () in
  let c2 = Clock.create () in
  load db2 c2 n;
  Store.crash db2;
  let rc2 = Clock.create ~at:(Clock.now c2) () in
  let restart_normal = Store.recover db2 rc2 in
  Alcotest.(check bool)
    (Printf.sprintf "WIM restart (%.0f) >> normal (%.0f)" restart
       restart_normal)
    true
    (restart > 4.0 *. restart_normal)

let test_wim_throughput_and_structure () =
  let cfg = { small_cfg with Config.write_intensive = true } in
  let db = mk ~cfg () in
  let c = Clock.create () in
  (* enough data to fill every shard's ABI at least once *)
  load db c (2 * full_cycle_keys small_cfg);
  let t = Store.totals db in
  Alcotest.(check int) "no flushes in WIM" 0 t.Store.flushes;
  Alcotest.(check int) "no upper compactions" 0 t.Store.upper_compactions;
  Alcotest.(check bool) "ABI-full last compactions only" true
    (t.Store.last_compactions > 0)

(* ------------------------------ GPM dump path ---------------------------- *)

let test_shard_gpm_dump_and_drain () =
  let cfg = { small_cfg with Config.gpm_max_dumps = 1 } in
  let dev = Device.create Pmem_sim.Cost_model.optane in
  let vlog = Vlog.create dev in
  let shard = Shard.create ~cfg ~id:0 dev vlog in
  let c = Clock.create () in
  (* absorb until the ABI fills and dumps once *)
  let i = ref 0 in
  while Shard.dump_count shard = 0 do
    incr i;
    let loc = Vlog.append vlog c (key !i) ~vlen:8 in
    Shard.put shard c (key !i) loc ~suspend_compactions:true ~can_dump:true
  done;
  Alcotest.(check int) "one dump" 1 (Shard.dump_count shard);
  (match Shard.check_invariants shard with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invariants after dump: " ^ e));
  let n_at_dump = !i in
  (* keys from the dumped generation are served from the dump table *)
  let loc, stage = Shard.get shard c (key 1) in
  Alcotest.(check bool) "dump hit" true
    (loc <> None && stage = Shard.Hit_dump);
  (* more absorbs: newer versions land in the fresh ABI and mask the dump *)
  let loc2 = Vlog.append vlog c (key 1) ~vlen:8 in
  Shard.put shard c (key 1) loc2 ~suspend_compactions:true ~can_dump:true;
  let got, stage2 = Shard.get shard c (key 1) in
  Alcotest.(check bool) "ABI masks dump" true
    (got = Some loc2
    && (stage2 = Shard.Hit_abi || stage2 = Shard.Hit_memtable));
  (* a normal-mode flush drains the dump into the last level *)
  Shard.force_flush shard c;
  Alcotest.(check int) "dump drained" 0 (Shard.dump_count shard);
  for j = 1 to n_at_dump do
    let r, _ = Shard.get shard c (key j) in
    if r = None then Alcotest.failf "key %d lost across dump drain" j
  done

let test_shard_drain_dumps_if_idle () =
  let cfg = { small_cfg with Config.gpm_max_dumps = 2 } in
  let dev = Device.create Pmem_sim.Cost_model.optane in
  let vlog = Vlog.create dev in
  let shard = Shard.create ~cfg ~id:0 dev vlog in
  let c = Clock.create () in
  let i = ref 0 in
  while Shard.dump_count shard = 0 do
    incr i;
    let loc = Vlog.append vlog c (key !i) ~vlen:8 in
    Shard.put shard c (key !i) loc ~suspend_compactions:true ~can_dump:true
  done;
  Shard.drain_dumps_if_idle shard ~now:(Clock.now c +. 1e9);
  Alcotest.(check int) "drained opportunistically" 0 (Shard.dump_count shard)

(* ----------------------------- ABI-disabled mode ------------------------- *)

let test_abi_disabled_still_correct () =
  let cfg = { small_cfg with Config.abi_enabled = false } in
  let db = mk ~cfg () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg in
  load db c n;
  for i = 0 to n - 1 do
    match Store.read db c (key i) with
    | { SI.loc = Some _; _ } -> ()
    | { loc = None; _ } -> Alcotest.failf "key %d missing without ABI" i
  done;
  (* and gets never report ABI hits *)
  let r = Store.read db c (key 0) in
  Alcotest.(check bool) "no ABI stage" true
    (r.SI.loc <> None && r.SI.stage <> SI.Abi)

(* ------------------------------- Footprints ------------------------------ *)

let test_footprints () =
  let db = mk () in
  let c = Clock.create () in
  load db c (full_cycle_keys small_cfg);
  let dram = Store.dram_footprint db in
  let pmem = Store.pmem_footprint db in
  Alcotest.(check bool) "dram > 0" true (dram > 0.0);
  Alcotest.(check bool) "pmem > dram (tables + log vs ABI)" true (pmem > 0.0);
  (* ABI dominates the DRAM footprint: footprint ~= shards x abi bytes *)
  let abi_bytes =
    float_of_int
      (small_cfg.Config.shards * small_cfg.Config.abi_slots_factor
      * small_cfg.Config.memtable_slots * 16)
  in
  Alcotest.(check bool) "ABI-dominated" true (dram >= abi_bytes)

(* ------------------------------- Model-based ----------------------------- *)

let test_model_random_ops () =
  let db = mk () in
  Model_check.run ~ops:15_000 ~universe:1_500 ~seed:11 (Store.store db)

let test_model_with_crashes () =
  let db = mk () in
  Model_check.run ~ops:12_000 ~universe:1_000 ~crash_every:2_500 ~seed:23
    (Store.store db)

let test_model_wim_with_crashes () =
  let cfg = { small_cfg with Config.write_intensive = true } in
  let db = mk ~cfg () in
  Model_check.run ~ops:12_000 ~universe:1_000 ~crash_every:3_000 ~seed:31
    (Store.store db)

let prop_small_stores_vs_model =
  QCheck.Test.make ~name:"random op streams match model" ~count:12
    QCheck.small_int
    (fun seed ->
      let db = mk () in
      Model_check.run ~ops:3_000 ~universe:400 ~seed (Store.store db);
      true)


(* ---------------------------------- GC ----------------------------------- *)

let test_gc_reclaims_dead_versions () =
  let db = mk () in
  let c = Clock.create () in
  let n = 4_000 in
  (* write every key three times: 2/3 of the log is dead *)
  for round = 1 to 3 do
    ignore round;
    for i = 0 to n - 1 do
      put db c (key i) ~vlen:8
    done
  done;
  let before = Vlog.live_bytes (Store.vlog db) in
  let stats = Store.gc db c ~max_entries:(2 * n) () in
  Alcotest.(check int) "scanned the prefix" (2 * n) stats.Store.gc_scanned;
  Alcotest.(check bool) "mostly dead" true
    (stats.Store.gc_dead > stats.Store.gc_live);
  Alcotest.(check bool) "bytes reclaimed" true
    (stats.Store.gc_reclaimed_bytes > 0);
  Alcotest.(check bool) "log shrank" true
    (Vlog.live_bytes (Store.vlog db) < before);
  Alcotest.(check int) "head advanced" (2 * n) (Vlog.head (Store.vlog db));
  for i = 0 to n - 1 do
    if get db c (key i) = None then Alcotest.failf "key %d lost by GC" i
  done

let test_gc_preserves_live_prefix () =
  let db = mk () in
  let c = Clock.create () in
  let n = 3_000 in
  for i = 0 to n - 1 do
    put db c (key i) ~vlen:8
  done;
  (* everything in the scanned prefix is live: GC must copy it all *)
  let stats = Store.gc db c ~max_entries:n () in
  Alcotest.(check int) "all live" n stats.Store.gc_live;
  Alcotest.(check int) "none dead" 0 stats.Store.gc_dead;
  for i = 0 to n - 1 do
    if get db c (key i) = None then Alcotest.failf "key %d lost" i
  done

let test_gc_tombstones_survive () =
  let db = mk () in
  let c = Clock.create () in
  let n = 2_000 in
  for i = 0 to n - 1 do
    put db c (key i) ~vlen:8
  done;
  for i = 0 to (n / 2) - 1 do
    Store.delete db c (key i)
  done;
  (* collect the whole current log, then crash: deletions must not be
     resurrected from older versions in the persistent index *)
  let _ = Store.gc db c ~max_entries:(Vlog.length (Store.vlog db)) () in
  for i = 0 to n - 1 do
    let expect_deleted = i < n / 2 in
    let present = get db c (key i) <> None in
    if present = expect_deleted then
      Alcotest.failf "key %d wrong after GC (present=%b)" i present
  done;
  Store.crash db;
  let rc = Clock.create ~at:(Clock.now c) () in
  ignore (Store.recover db rc);
  for i = 0 to n - 1 do
    let expect_deleted = i < n / 2 in
    let present = get db rc (key i) <> None in
    if present = expect_deleted then
      Alcotest.failf "key %d resurrected/lost after GC+crash (present=%b)" i
        present
  done

let test_gc_stats_consistency () =
  let db = mk () in
  let c = Clock.create () in
  let n = 3_000 in
  for round = 1 to 2 do
    ignore round;
    for i = 0 to n - 1 do
      put db c (key i) ~vlen:8
    done
  done;
  for i = 0 to (n / 4) - 1 do
    Store.delete db c (key i)
  done;
  let vl = Store.vlog db in
  let head_before = Vlog.head vl in
  let stats = Store.gc db c ~max_entries:n () in
  Alcotest.(check int) "scanned = live + dead" stats.Store.gc_scanned
    (stats.Store.gc_live + stats.Store.gc_dead);
  Alcotest.(check int) "scanned the requested prefix" n stats.Store.gc_scanned;
  let head_after = Vlog.head vl in
  Alcotest.(check int) "head advanced by scanned entries"
    (head_before + stats.Store.gc_scanned)
    head_after;
  Alcotest.(check int) "reclaimed bytes = head byte advance"
    (Vlog.bytes_upto vl head_after - Vlog.bytes_upto vl head_before)
    stats.Store.gc_reclaimed_bytes;
  (* a second pass over the next prefix stays consistent too *)
  let stats2 = Store.gc db c ~max_entries:n () in
  Alcotest.(check int) "pass 2: scanned = live + dead" stats2.Store.gc_scanned
    (stats2.Store.gc_live + stats2.Store.gc_dead);
  Alcotest.(check int) "pass 2: reclaimed matches head advance"
    (Vlog.bytes_upto vl (Vlog.head vl) - Vlog.bytes_upto vl head_after)
    stats2.Store.gc_reclaimed_bytes

let test_gc_then_crash_preserves_data () =
  let db = mk () in
  let c = Clock.create () in
  let n = 3_000 in
  for round = 1 to 2 do
    ignore round;
    for i = 0 to n - 1 do
      put db c (key i) ~vlen:8
    done
  done;
  let _ = Store.gc db c ~max_entries:n () in
  Store.crash db;
  let rc = Clock.create ~at:(Clock.now c) () in
  ignore (Store.recover db rc);
  for i = 0 to n - 1 do
    if get db rc (key i) = None then
      Alcotest.failf "key %d lost after GC+crash" i
  done

let test_gc_repeated_passes_converge () =
  let db = mk () in
  let c = Clock.create () in
  let n = 2_000 in
  for round = 1 to 4 do
    ignore round;
    for i = 0 to n - 1 do
      put db c (key i) ~vlen:8
    done
  done;
  (* run GC to exhaustion: live bytes converge to ~one version per key *)
  let rec drain guard =
    let before_head = Vlog.head (Store.vlog db) in
    let _ = Store.gc db c ~max_entries:10_000 () in
    if Vlog.head (Store.vlog db) > before_head && guard > 0 then
      drain (guard - 1)
  in
  drain 50;
  let live = Vlog.live_bytes (Store.vlog db) in
  (* one 24 B version per key, within a factor for the copied churn *)
  Alcotest.(check bool)
    (Printf.sprintf "log compacted to ~live set (%d bytes)" live)
    true
    (live < 3 * n * 24);
  for i = 0 to n - 1 do
    if get db c (key i) = None then Alcotest.failf "key %d lost" i
  done

let test_gc_model_random_ops () =
  (* random puts/deletes/gets with periodic GC and crashes, checked against
     a model of the final state *)
  let db = mk () in
  let rng = Workload.Rng.create ~seed:99 in
  let c = Clock.create () in
  let universe = 800 in
  let m = Hashtbl.create universe in
  for step = 1 to 15_000 do
    let i = Workload.Rng.int rng universe in
    (match Workload.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 ->
      put db c (key i) ~vlen:8;
      Hashtbl.replace m (key i) true
    | 6 ->
      Store.delete db c (key i);
      Hashtbl.replace m (key i) false
    | _ ->
      let expect = Option.value ~default:false (Hashtbl.find_opt m (key i)) in
      let got = get db c (key i) <> None in
      if expect <> got then
        Alcotest.failf "step %d: key %d expect %b got %b" step i expect got);
    if step mod 4_000 = 0 then ignore (Store.gc db c ~max_entries:5_000 ())
  done;
  (* GC passes flush the log, so a final flush+crash+recover loses nothing *)
  Store.flush_all db c;
  Store.crash db;
  ignore (Store.recover db c);
  Hashtbl.iter
    (fun k expect ->
      let got = get db c k <> None in
      if expect <> got then
        Alcotest.failf "after crash: key %Ld expect %b got %b" k expect got)
    m

(* -------------------------------- Full scan ------------------------------ *)

let test_iter_visits_live_keys_once () =
  let db = mk () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg in
  load db c n;
  Store.delete db c (key 0);
  Store.delete db c (key (n - 1));
  let seen = Hashtbl.create n in
  Store.iter db c (fun k loc ->
      Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen k);
      Alcotest.(check bool) "valid loc" true (loc >= 0);
      Hashtbl.replace seen k ());
  Alcotest.(check int) "all live keys, deletions excluded" (n - 2)
    (Hashtbl.length seen);
  Alcotest.(check bool) "deleted not visited" false
    (Hashtbl.mem seen (key 0))

let test_iter_sees_updates () =
  let db = mk () in
  let c = Clock.create () in
  let n = 2_000 in
  load db c n;
  put db c (key 7) ~vlen:16;
  let newest = Option.get (get db c (key 7)) in
  let found = ref (-1) in
  Store.iter db c (fun k loc -> if Int64.equal k (key 7) then found := loc);
  Alcotest.(check int) "newest version" newest !found

(* ------------------------------ Ordered scan ----------------------------- *)

let model_scan model ~start ~limit =
  Hashtbl.fold (fun k () acc -> k :: acc) model []
  |> List.filter (fun k -> Types.key_compare k start >= 0)
  |> List.sort Types.key_compare
  |> List.filteri (fun i _ -> i < limit)

let check_scan_matches db c model ~start ~limit label =
  let got = List.map fst (Store.scan db c ~start ~limit) in
  let want = model_scan model ~start ~limit in
  if got <> want then
    Alcotest.failf "%s: scan(%Lu,%d) want %d keys got %d" label start limit
      (List.length want) (List.length got)

let test_scan_across_structures () =
  (* the merged stream must shadow correctly whatever mix of memtable,
     upper runs and last level currently holds the data *)
  let db = mk () in
  let c = Clock.create () in
  let model = Hashtbl.create 1024 in
  let n = full_cycle_keys small_cfg in
  let w i =
    put db c (key i) ~vlen:8;
    Hashtbl.replace model (key i) ()
  in
  let d i =
    Store.delete db c (key i);
    Hashtbl.remove model (key i)
  in
  let audit label =
    check_scan_matches db c model ~start:0L ~limit:(2 * n) label;
    check_scan_matches db c model ~start:(key (n / 3)) ~limit:17 label;
    check_scan_matches db c model ~start:(key (n - 2)) ~limit:64 label
  in
  (* memtable only *)
  for i = 0 to 20 do w i done;
  audit "memtable";
  (* flushed upper runs *)
  Store.flush_all db c;
  audit "flushed";
  (* push through ABI dumps and last-level merges *)
  for i = 0 to n - 1 do w i done;
  audit "mid-compaction";
  Store.wait_background db c;
  audit "merged";
  (* overwrites and deletes spanning old and new versions *)
  for i = 0 to n - 1 do
    if i mod 3 = 0 then w i;
    if i mod 7 = 0 then d i
  done;
  audit "overwrite+delete";
  Store.flush_all db c;
  Store.wait_background db c;
  audit "settled";
  (* GC relocates live vlog entries; key order must be untouched *)
  ignore (Store.gc db c ());
  audit "gc";
  (* crash and recover: scans serve from the recovered structures *)
  Store.flush_all db c;
  Store.crash db;
  ignore (Store.recover db c);
  audit "recovered"

let test_scan_limits_and_bounds () =
  let db = mk () in
  let c = Clock.create () in
  load db c 100;
  Alcotest.(check int) "limit honoured" 5
    (List.length (Store.scan db c ~start:0L ~limit:5));
  Alcotest.(check int) "limit 0 is empty" 0
    (List.length (Store.scan db c ~start:0L ~limit:0));
  (match Store.scan db c ~start:0L ~limit:(-1) with
  | _ -> Alcotest.fail "negative limit accepted"
  | exception Invalid_argument _ -> ());
  (* results are strictly ascending with no duplicates *)
  let keys = List.map fst (Store.scan db c ~start:0L ~limit:200) in
  Alcotest.(check int) "all keys" 100 (List.length keys);
  let rec ascending = function
    | a :: (b :: _ as tl) -> Types.key_compare a b < 0 && ascending tl
    | _ -> true
  in
  Alcotest.(check bool) "strictly ascending" true (ascending keys)


(* ----------------------------- Materialized values ----------------------- *)

let mat_cfg = { small_cfg with Config.materialize_values = true }

let test_put_get_value_roundtrip () =
  let db = mk ~cfg:mat_cfg () in
  let c = Clock.create () in
  write_bytes db c 1L (Bytes.of_string "hello world");
  write_bytes db c 2L (Bytes.of_string "");
  Alcotest.(check (option string)) "roundtrip" (Some "hello world")
    (Option.map Bytes.to_string (read_value db c 1L));
  Alcotest.(check (option string)) "empty value" (Some "")
    (Option.map Bytes.to_string (read_value db c 2L));
  Alcotest.(check bool) "absent" true (read_value db c 3L = None);
  write_bytes db c 1L (Bytes.of_string "v2");
  Alcotest.(check (option string)) "update" (Some "v2")
    (Option.map Bytes.to_string (read_value db c 1L));
  Store.delete db c 1L;
  Alcotest.(check bool) "deleted" true (read_value db c 1L = None)

let test_value_accounting_mode_returns_none () =
  let db = mk () in
  let c = Clock.create () in
  write_bytes db c 1L (Bytes.of_string "x");
  Alcotest.(check bool) "present in index" true (get db c 1L <> None);
  Alcotest.(check bool) "payload not retained" true
    (read_value db c 1L = None)

let test_values_survive_compactions_and_gc () =
  let db = mk ~cfg:mat_cfg () in
  let c = Clock.create () in
  let n = full_cycle_keys small_cfg in
  let content i = Printf.sprintf "value-%d" i in
  for i = 0 to n - 1 do
    write_bytes db c (key i) (Bytes.of_string (content i))
  done;
  (* force compactions with a second round of updates *)
  for i = 0 to n - 1 do
    write_bytes db c (key i) (Bytes.of_string (content (i + 1)))
  done;
  let _ = Store.gc db c ~max_entries:n () in
  for i = 0 to n - 1 do
    match read_value db c (key i) with
    | Some v when Bytes.to_string v = content (i + 1) -> ()
    | Some v ->
      Alcotest.failf "key %d: wrong payload %S" i (Bytes.to_string v)
    | None -> Alcotest.failf "key %d: payload lost" i
  done

let test_values_dropped_on_crash_tail () =
  let db = mk ~cfg:mat_cfg () in
  let c = Clock.create () in
  write_bytes db c 1L (Bytes.of_string "persisted");
  Store.flush_all db c;
  write_bytes db c 2L (Bytes.of_string "volatile");
  Store.crash db;
  ignore (Store.recover db c);
  Alcotest.(check (option string)) "persisted survives" (Some "persisted")
    (Option.map Bytes.to_string (read_value db c 1L));
  Alcotest.(check bool) "unpersisted payload gone" true
    (read_value db c 2L = None)


(* --------------------------------- Report -------------------------------- *)

let test_report_renders () =
  let db = mk () in
  let c = Clock.create () in
  load db c (full_cycle_keys small_cfg);
  let s = C.Report.to_string db in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "ChameleonDB state"; "memtables"; "abi"; "last level"; "log";
      "footprints"; "device" ]


(* ------------------------- Shard-level properties ------------------------ *)

(* Drive one shard directly through random puts/deletes (exercising flush,
   tiered and last-level compactions) and compare against a model map. *)
let shard_model_run ~compaction ~seed ~ops =
  let cfg = { small_cfg with Config.shards = 1; compaction } in
  let dev = Device.create Pmem_sim.Cost_model.optane in
  let vlog = Vlog.create dev in
  let shard = Shard.create ~cfg ~id:0 dev vlog in
  let c = Clock.create () in
  let rng = Workload.Rng.create ~seed in
  let m = Hashtbl.create 256 in
  for _ = 1 to ops do
    let k = key (Workload.Rng.int rng 500) in
    if Workload.Rng.int rng 8 = 0 then begin
      let loc = Vlog.append vlog c k ~vlen:(-1) in
      ignore loc;
      Shard.put shard c k Types.tombstone ~suspend_compactions:false
        ~can_dump:false;
      Hashtbl.replace m k None
    end
    else begin
      let loc = Vlog.append vlog c k ~vlen:8 in
      Shard.put shard c k loc ~suspend_compactions:false ~can_dump:false;
      Hashtbl.replace m k (Some loc)
    end
  done;
  Hashtbl.iter
    (fun k expect ->
      let got, _ = Shard.get shard c k in
      if got <> expect then
        Alcotest.failf "shard model (%s): key %Ld expected %s got %s"
          (match compaction with
          | Config.Direct -> "direct"
          | Config.Level_by_level -> "level-by-level")
          k
          (match expect with Some l -> string_of_int l | None -> "absent")
          (match got with Some l -> string_of_int l | None -> "absent"))
    m;
  match Shard.check_invariants shard with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_shard_model_direct () =
  shard_model_run ~compaction:Config.Direct ~seed:5 ~ops:30_000

let test_shard_model_level_by_level () =
  shard_model_run ~compaction:Config.Level_by_level ~seed:6 ~ops:30_000

let prop_shard_random_configs =
  QCheck.Test.make ~name:"shard correct across random small configs" ~count:8
    QCheck.(triple (int_range 2 4) (int_range 2 4) small_int)
    (fun (levels, ratio, seed) ->
      let cfg =
        { small_cfg with
          Config.shards = 1;
          levels;
          ratio;
          memtable_slots = 32;
          abi_slots_factor = 4 * ratio * ratio * ratio }
      in
      let dev = Device.create Pmem_sim.Cost_model.optane in
      let vlog = Vlog.create dev in
      let shard = Shard.create ~cfg ~id:0 dev vlog in
      let c = Clock.create () in
      let rng = Workload.Rng.create ~seed in
      let m = Hashtbl.create 256 in
      for _ = 1 to 8_000 do
        let k = key (Workload.Rng.int rng 300) in
        let loc = Vlog.append vlog c k ~vlen:8 in
        Shard.put shard c k loc ~suspend_compactions:false ~can_dump:false;
        Hashtbl.replace m k loc
      done;
      Hashtbl.fold
        (fun k expect acc -> acc && fst (Shard.get shard c k) = Some expect)
        m true)

let prop_iter_counts_live_keys =
  QCheck.Test.make ~name:"Store.iter visits exactly the live keys" ~count:8
    QCheck.small_int
    (fun seed ->
      let db = mk () in
      let c = Clock.create () in
      let rng = Workload.Rng.create ~seed in
      let m = Hashtbl.create 256 in
      for _ = 1 to 10_000 do
        let i = Workload.Rng.int rng 1_000 in
        if Workload.Rng.int rng 6 = 0 then begin
          Store.delete db c (key i);
          Hashtbl.remove m (key i)
        end
        else begin
          put db c (key i) ~vlen:8;
          Hashtbl.replace m (key i) ()
        end
      done;
      let seen = Hashtbl.create 256 in
      Store.iter db c (fun k _ -> Hashtbl.replace seen k ());
      Hashtbl.length seen = Hashtbl.length m
      && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem seen k) m true)

let () =
  Alcotest.run "chameleondb"
    [ ( "config",
        [ Alcotest.test_case "default valid" `Quick test_config_default_valid;
          Alcotest.test_case "rejections" `Quick test_config_rejections;
          Alcotest.test_case "derived values" `Quick test_config_derived;
          Alcotest.test_case "store rejects invalid" `Quick
            test_store_create_rejects_invalid ] );
      ( "memtable",
        [ Alcotest.test_case "load-factor band" `Quick test_memtable_lf_band;
          Alcotest.test_case "reset redraws" `Quick test_memtable_reset_redraws;
          Alcotest.test_case "room accounting" `Quick test_memtable_room ] );
      ( "levels",
        [ Alcotest.test_case "table slots" `Quick test_levels_slots;
          Alcotest.test_case "structure" `Quick test_levels_structure ] );
      ( "gpm",
        [ Alcotest.test_case "activates and releases" `Quick
            test_gpm_activates_and_releases;
          Alcotest.test_case "disabled never active" `Quick
            test_gpm_disabled_never_active ] );
      ( "manifest", [ Alcotest.test_case "updates" `Quick test_manifest ] );
      ( "store",
        [ Alcotest.test_case "crud" `Quick test_store_crud;
          Alcotest.test_case "update returns newest" `Quick
            test_store_update_returns_newest;
          Alcotest.test_case "negative vlen rejected" `Quick
            test_store_negative_vlen_rejected;
          Alcotest.test_case "full-cycle correctness" `Quick
            test_store_full_cycle_correct;
          Alcotest.test_case "updates survive compactions" `Quick
            test_store_updates_survive_compactions;
          Alcotest.test_case "deletes survive compactions" `Quick
            test_store_deletes_survive_compactions;
          Alcotest.test_case "get stages" `Quick test_store_get_stages ] );
      ( "recovery",
        [ Alcotest.test_case "normal" `Quick test_recovery_normal;
          Alcotest.test_case "degraded then ready" `Quick
            test_recovery_degraded_then_ready;
          Alcotest.test_case "WIM preserves absorbed entries" `Quick
            test_recovery_wim_preserves_absorbed;
          Alcotest.test_case "WIM structure" `Quick
            test_wim_throughput_and_structure ] );
      ( "gpm-dumps",
        [ Alcotest.test_case "dump, mask and drain" `Quick
            test_shard_gpm_dump_and_drain;
          Alcotest.test_case "idle drain" `Quick
            test_shard_drain_dumps_if_idle ] );
      ( "ablation",
        [ Alcotest.test_case "ABI disabled still correct" `Quick
            test_abi_disabled_still_correct ] );
      ( "footprints", [ Alcotest.test_case "sizes" `Quick test_footprints ] );
      ( "gc",
        [ Alcotest.test_case "reclaims dead versions" `Quick
            test_gc_reclaims_dead_versions;
          Alcotest.test_case "preserves live prefix" `Quick
            test_gc_preserves_live_prefix;
          Alcotest.test_case "tombstones survive" `Quick
            test_gc_tombstones_survive;
          Alcotest.test_case "stats consistency" `Quick
            test_gc_stats_consistency;
          Alcotest.test_case "GC then crash" `Quick
            test_gc_then_crash_preserves_data;
          Alcotest.test_case "repeated passes converge" `Quick
            test_gc_repeated_passes_converge;
          Alcotest.test_case "model with GC and crash" `Quick
            test_gc_model_random_ops ] );
      ( "values",
        [ Alcotest.test_case "roundtrip" `Quick test_put_get_value_roundtrip;
          Alcotest.test_case "accounting mode returns None" `Quick
            test_value_accounting_mode_returns_none;
          Alcotest.test_case "survive compactions and GC" `Quick
            test_values_survive_compactions_and_gc;
          Alcotest.test_case "crash drops unpersisted payloads" `Quick
            test_values_dropped_on_crash_tail ] );
      ( "scan",
        [ Alcotest.test_case "iter visits live keys once" `Quick
            test_iter_visits_live_keys_once;
          Alcotest.test_case "iter sees updates" `Quick
            test_iter_sees_updates;
          Alcotest.test_case "ordered scan across structures" `Quick
            test_scan_across_structures;
          Alcotest.test_case "limits and bounds" `Quick
            test_scan_limits_and_bounds ] );
      ( "shard-model",
        [ Alcotest.test_case "direct compaction" `Quick
            test_shard_model_direct;
          Alcotest.test_case "level-by-level compaction" `Quick
            test_shard_model_level_by_level;
          QCheck_alcotest.to_alcotest prop_shard_random_configs;
          QCheck_alcotest.to_alcotest prop_iter_counts_live_keys ] );
      ( "report",
        [ Alcotest.test_case "renders state" `Quick test_report_renders ] );
      ( "model",
        [ Alcotest.test_case "random ops" `Quick test_model_random_ops;
          Alcotest.test_case "with crashes" `Quick test_model_with_crashes;
          Alcotest.test_case "WIM with crashes" `Quick
            test_model_wim_with_crashes;
          QCheck_alcotest.to_alcotest prop_small_stores_vs_model ] ) ]
