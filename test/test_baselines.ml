module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Stats = Pmem_sim.Stats
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Store_intf = Kv_common.Store_intf
module Config = Chameleondb.Config

let key i = Workload.Keyspace.key_of_index i

let put h c k ~vlen = Store_intf.write h c k (Store_intf.Sized vlen)
let get h c k = (Store_intf.read h c k).Store_intf.loc

let small_cfg = { Config.default with Config.shards = 4; memtable_slots = 32 }

let lsm variant () =
  Baselines.Pmem_lsm.store (Baselines.Pmem_lsm.create ~cfg:small_cfg variant)

let all_stores () =
  [ lsm Baselines.Pmem_lsm.Nf ();
    lsm Baselines.Pmem_lsm.F ();
    lsm Baselines.Pmem_lsm.Pink ();
    Baselines.Pmem_hash.store (Baselines.Pmem_hash.create ());
    Baselines.Dram_hash.store (Baselines.Dram_hash.create ());
    Baselines.Novelsm.store
      (Baselines.Novelsm.create ~memtable_cap:256 ~l0_runs:2 ());
    Baselines.Matrixkv.store
      (Baselines.Matrixkv.create ~memtable_cap:256 ~l0_sublevels:2 ()) ]

(* -------------------------- Generic per-store checks --------------------- *)

let crud_check (h : Store_intf.store) =
  let c = Clock.create () in
  Alcotest.(check bool) ((Store_intf.name h) ^ ": missing") true
    (get h c 1L = None);
  put h c 1L ~vlen:8;
  Alcotest.(check bool) ((Store_intf.name h) ^ ": present") true
    (get h c 1L <> None);
  Store_intf.delete h c 1L;
  Alcotest.(check bool) ((Store_intf.name h) ^ ": deleted") true
    (get h c 1L = None);
  put h c 1L ~vlen:8;
  Alcotest.(check bool) ((Store_intf.name h) ^ ": reinserted") true
    (get h c 1L <> None)

let test_all_crud () = List.iter crud_check (all_stores ())

let bulk_check (h : Store_intf.store) =
  let c = Clock.create () in
  let n = 8_000 in
  for i = 0 to n - 1 do
    put h c (key i) ~vlen:8
  done;
  for i = 0 to n - 1 do
    if get h c (key i) = None then
      Alcotest.failf "%s: key %d lost during load" (Store_intf.name h) i
  done

let test_all_bulk () = List.iter bulk_check (all_stores ())

let crash_check (h : Store_intf.store) =
  let c = Clock.create () in
  let n = 4_000 in
  for i = 0 to n - 1 do
    put h c (key i) ~vlen:8
  done;
  Store_intf.crash h;
  let persisted = Vlog.persisted (Store_intf.vlog h) in
  Store_intf.recover h c;
  for i = 0 to persisted - 1 do
    let k = Vlog.key_at (Store_intf.vlog h) i in
    if get h c k = None then
      Alcotest.failf "%s: persisted entry %d lost across crash"
        (Store_intf.name h) i
  done

let test_all_crash_recover () = List.iter crash_check (all_stores ())

let test_all_model_checked () =
  List.iteri
    (fun i h -> Model_check.run ~ops:6_000 ~universe:600 ~seed:(50 + i) h)
    (all_stores ())

let test_model_with_crashes_lsm_family () =
  List.iteri
    (fun i h ->
      Model_check.run ~ops:6_000 ~universe:500 ~crash_every:1_500
        ~seed:(70 + i) h)
    [ lsm Baselines.Pmem_lsm.Nf ();
      lsm Baselines.Pmem_lsm.F ();
      lsm Baselines.Pmem_lsm.Pink ();
      Baselines.Dram_hash.store (Baselines.Dram_hash.create ());
      Baselines.Novelsm.store
        (Baselines.Novelsm.create ~memtable_cap:256 ~l0_runs:2 ());
      Baselines.Matrixkv.store
        (Baselines.Matrixkv.create ~memtable_cap:256 ~l0_sublevels:2 ()) ]

let test_model_with_crashes_pmem_hash () =
  Model_check.run ~ops:4_000 ~universe:400 ~crash_every:1_000 ~seed:81
    (Baselines.Pmem_hash.store (Baselines.Pmem_hash.create ()))

(* ----------------------------- Design signatures ------------------------- *)

let test_pmem_hash_write_amplification () =
  let h = Baselines.Pmem_hash.store (Baselines.Pmem_hash.create ()) in
  let c = Clock.create () in
  for i = 0 to 999 do
    put h c (key i) ~vlen:8
  done;
  let st = Device.stats (Store_intf.device h) in
  let wa = st.Stats.media_write_bytes /. (1000.0 *. 24.0) in
  Alcotest.(check bool)
    (Printf.sprintf "Pmem-Hash logical WA %.1f > 10" wa)
    true (wa > 10.0)

let test_lsm_write_batching () =
  let h = lsm Baselines.Pmem_lsm.Nf () in
  let c = Clock.create () in
  for i = 0 to 9_999 do
    put h c (key i) ~vlen:8
  done;
  Store_intf.flush h c;
  let st = Device.stats (Store_intf.device h) in
  (* batched index writes: device-level amplification stays ~1 *)
  Alcotest.(check bool) "no RMW amplification" true
    (Stats.write_amplification st < 1.1)

let test_dram_hash_restart_scans_whole_log () =
  let mk n =
    let h = Baselines.Dram_hash.store (Baselines.Dram_hash.create ()) in
    let c = Clock.create () in
    for i = 0 to n - 1 do
      put h c (key i) ~vlen:8
    done;
    Store_intf.flush h c;
    Store_intf.crash h;
    let rc = Clock.create () in
    Store_intf.recover h rc;
    Clock.now rc
  in
  let small = mk 2_000 and large = mk 20_000 in
  Alcotest.(check bool)
    (Printf.sprintf "restart scales with log (%.0f vs %.0f)" small large)
    true
    (large > 5.0 *. small)

let test_lsm_restart_is_bounded () =
  (* LSM stores recover the MemTable tail only: restart must not scale with
     total data *)
  let mk n =
    let h = lsm Baselines.Pmem_lsm.Nf () in
    let c = Clock.create () in
    for i = 0 to n - 1 do
      put h c (key i) ~vlen:8
    done;
    Store_intf.crash h;
    let rc = Clock.create () in
    Store_intf.recover h rc;
    Clock.now rc
  in
  let small = mk 4_000 and large = mk 40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "restart bounded (%.0f vs %.0f)" small large)
    true
    (large < 4.0 *. small)

let test_lsm_variant_footprints () =
  let loaded variant =
    let h = lsm variant () in
    let c = Clock.create () in
    for i = 0 to 9_999 do
      put h c (key i) ~vlen:8
    done;
    Store_intf.dram_footprint h
  in
  let nf = loaded Baselines.Pmem_lsm.Nf in
  let f = loaded Baselines.Pmem_lsm.F in
  let pink = loaded Baselines.Pmem_lsm.Pink in
  Alcotest.(check bool) "NF smallest" true (nf < f && nf < pink);
  Alcotest.(check bool) "PinK largest (pinned upper levels)" true (pink > f)

let test_novelsm_memtable_in_pmem () =
  let store = Baselines.Novelsm.create ~memtable_cap:100_000 () in
  let h = Baselines.Novelsm.store store in
  let c = Clock.create () in
  let before =
    (Device.stats (Store_intf.device h)).Stats.media_write_bytes
  in
  (* stays in the (in-Pmem) MemTable: no flush, yet heavy media writes *)
  for i = 0 to 999 do
    put h c (key i) ~vlen:8
  done;
  let delta =
    (Device.stats (Store_intf.device h)).Stats.media_write_bytes -. before
  in
  Alcotest.(check bool) "skiplist writes amplified" true
    (delta > 1000.0 *. 256.0)

let test_matrixkv_rowtable_traffic () =
  let mk_bytes sublevels =
    let h =
      Baselines.Matrixkv.store
        (Baselines.Matrixkv.create ~memtable_cap:128 ~l0_sublevels:sublevels ())
    in
    let c = Clock.create () in
    for i = 0 to 2_000 do
      put h c (key i) ~vlen:8
    done;
    (Device.stats (Store_intf.device h)).Stats.media_write_bytes
  in
  (* flushing more, smaller sublevels costs more RowTable metadata plus
     compaction rewrites *)
  Alcotest.(check bool) "metadata traffic visible" true
    (mk_bytes 2 > 2_000.0 *. 24.0)

let test_pmem_lsm_get_depth () =
  let store = Baselines.Pmem_lsm.create ~cfg:small_cfg Baselines.Pmem_lsm.Nf in
  let h = Baselines.Pmem_lsm.store store in
  let c = Clock.create () in
  for i = 0 to 9_999 do
    put h c (key i) ~vlen:8
  done;
  let deep = ref 0 in
  for i = 0 to 999 do
    let r, depth = Baselines.Pmem_lsm.get_with_level store c (key i) in
    Alcotest.(check bool) "found" true (r <> None);
    if depth > 1 then incr deep
  done;
  Alcotest.(check bool) "multi-level probing happens" true (!deep > 0)

let test_stores_have_names () =
  let names = List.map (fun h -> (Store_intf.name h)) (all_stores ()) in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))


let flush_durability_check (h : Store_intf.store) =
  let c = Clock.create () in
  let n = 3_000 in
  for i = 0 to n - 1 do
    put h c (key i) ~vlen:8
  done;
  Store_intf.flush h c;
  (* after an explicit flush, a crash must lose nothing *)
  Store_intf.crash h;
  Store_intf.recover h c;
  for i = 0 to n - 1 do
    if get h c (key i) = None then
      Alcotest.failf "%s: key %d lost despite flush" (Store_intf.name h) i
  done

let test_all_flush_durability () =
  List.iter flush_durability_check (all_stores ())

let test_repeated_crashes () =
  (* crash/recover cycles must be idempotent on a clean store *)
  List.iter
    (fun (h : Store_intf.store) ->
      let c = Clock.create () in
      for i = 0 to 499 do
        put h c (key i) ~vlen:8
      done;
      Store_intf.flush h c;
      for _ = 1 to 3 do
        Store_intf.crash h;
        Store_intf.recover h c
      done;
      for i = 0 to 499 do
        if get h c (key i) = None then
          Alcotest.failf "%s: key %d lost across repeated crashes"
            (Store_intf.name h) i
      done)
    (all_stores ())

let test_update_semantics_all () =
  List.iter
    (fun (h : Store_intf.store) ->
      let c = Clock.create () in
      put h c 9L ~vlen:8;
      let l1 = get h c 9L in
      put h c 9L ~vlen:8;
      let l2 = get h c 9L in
      Alcotest.(check bool)
        ((Store_intf.name h) ^ ": update yields newer location")
        true (l2 > l1))
    (all_stores ())

(* every store must answer the same ordered scan over the same history —
   including ChameleonDB, run through the identical op sequence *)
let test_scan_parity_all () =
  let stores =
    Chameleondb.Store.store (Chameleondb.Store.create ~cfg:small_cfg ())
    :: all_stores ()
  in
  let n = 400 in
  let histories =
    List.map
      (fun h ->
        let c = Clock.create () in
        let rng = Workload.Rng.create ~seed:42 in
        for _ = 1 to 3 * n do
          let i = Workload.Rng.int rng n in
          if Workload.Rng.int rng 10 = 0 then Store_intf.delete h c (key i)
          else put h c (key i) ~vlen:8
        done;
        Store_intf.flush h c;
        (h, c))
      stores
  in
  let reference = List.hd histories in
  let scan (h, c) ~start ~limit =
    List.map fst (Store_intf.scan h c ~start ~limit)
  in
  List.iter
    (fun (start, limit) ->
      let want = scan reference ~start ~limit in
      List.iter
        (fun ((h, _) as hc) ->
          let got = scan hc ~start ~limit in
          if got <> want then
            Alcotest.failf "%s: scan(%Lu,%d) diverges (%d vs %d keys)"
              (Store_intf.name h) start limit (List.length got)
              (List.length want))
        (List.tl histories))
    [ (0L, 2 * n); (key (n / 2), 31); (key (n - 1), 10); (key n, 5) ]

let () =
  Alcotest.run "baselines"
    [ ( "correctness",
        [ Alcotest.test_case "crud (all stores)" `Quick test_all_crud;
          Alcotest.test_case "bulk load (all stores)" `Quick test_all_bulk;
          Alcotest.test_case "crash/recover (all stores)" `Quick
            test_all_crash_recover;
          Alcotest.test_case "model-checked (all stores)" `Quick
            test_all_model_checked;
          Alcotest.test_case "model with crashes (log-replay family)" `Quick
            test_model_with_crashes_lsm_family;
          Alcotest.test_case "model with crashes (pmem-hash)" `Quick
            test_model_with_crashes_pmem_hash;
          Alcotest.test_case "flush durability (all stores)" `Quick
            test_all_flush_durability;
          Alcotest.test_case "repeated crashes (all stores)" `Quick
            test_repeated_crashes;
          Alcotest.test_case "update semantics (all stores)" `Quick
            test_update_semantics_all;
          Alcotest.test_case "scan parity (all stores)" `Quick
            test_scan_parity_all ] );
      ( "design-signatures",
        [ Alcotest.test_case "Pmem-Hash write amplification" `Quick
            test_pmem_hash_write_amplification;
          Alcotest.test_case "LSM write batching" `Quick
            test_lsm_write_batching;
          Alcotest.test_case "Dram-Hash restart scales with log" `Quick
            test_dram_hash_restart_scans_whole_log;
          Alcotest.test_case "LSM restart bounded" `Quick
            test_lsm_restart_is_bounded;
          Alcotest.test_case "variant DRAM footprints" `Quick
            test_lsm_variant_footprints;
          Alcotest.test_case "NoveLSM in-Pmem MemTable" `Quick
            test_novelsm_memtable_in_pmem;
          Alcotest.test_case "MatrixKV RowTable traffic" `Quick
            test_matrixkv_rowtable_traffic;
          Alcotest.test_case "multi-level get depth" `Quick
            test_pmem_lsm_get_depth;
          Alcotest.test_case "distinct store names" `Quick
            test_stores_have_names ] ) ]
